(* Weighted-MaxSAT benchmark (no paper analogue; the extension direction
   of the paper's reference [8], Bian et al.): the two exact algorithms
   (descending linear search, Fu–Malik core-guided) are first checked
   against brute-force enumeration on a fuzz corpus, then compared on
   structured weighted workloads.  Writes BENCH_maxsat.json at the repo
   root and fails (exit 1) if any exact answer misses the brute optimum
   or leaves the optimality gap open on a workload instance. *)

module O = Hyqsat.Optimize

let random_clause r ~n ~k =
  let vars = Stats.Rng.sample_without_replacement r k n in
  Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool r)) vars)

let random_wcnf r ~n ~hard ~soft =
  let clause () = random_clause r ~n ~k:(min 3 n) in
  Sat.Wcnf.make ~num_vars:n
    ~hard:(List.init hard (fun _ -> clause ()))
    ~soft:(List.init soft (fun _ -> (1 + Stats.Rng.int r 8, clause ())))

(* correctness sweep: both algorithms must close the gap at the brute
   optimum on every instance (or prove infeasibility when brute does) *)
let fuzz_gate rng ~instances =
  let mismatches = ref 0 in
  for i = 1 to instances do
    let n = 2 + Stats.Rng.int rng 9 in
    let w =
      random_wcnf rng ~n
        ~hard:(Stats.Rng.int rng (n + 1))
        ~soft:(1 + Stats.Rng.int rng (2 * n))
    in
    let check algorithm =
      let r = O.solve ~algorithm w in
      let ok =
        match Sat.Brute.min_cost w with
        | None -> r.O.status = O.Infeasible
        | Some (opt, _) -> (
            r.O.status = O.Optimal && r.O.best_cost = opt && r.O.lower_bound = opt
            &&
            match r.O.best with
            | None -> false
            | Some x -> Sat.Wcnf.hard_satisfied w x && Sat.Wcnf.cost w x = opt)
      in
      if not ok then begin
        incr mismatches;
        Printf.eprintf "bench maxsat: instance %d diverges from brute force (%s)\n" i
          (O.algorithm_label algorithm)
      end
    in
    check O.Linear;
    check O.Core_guided
  done;
  !mismatches

type workload_row = {
  name : string;
  vars : int;
  n_hard : int;
  n_soft : int;
  optimum : int;
  linear_wall : float;
  linear_calls : int;
  core_wall : float;
  core_calls : int;
}

let run_workload name w =
  let time algorithm =
    Bench_util.wall (fun () -> O.solve ~algorithm w)
  in
  let lin, lin_wall = time O.Linear in
  let cg, cg_wall = time O.Core_guided in
  let ok =
    lin.O.status = O.Optimal && cg.O.status = O.Optimal
    && lin.O.best_cost = cg.O.best_cost
  in
  if not ok then begin
    Printf.eprintf
      "bench maxsat: REGRESSION on %s — linear (%s, cost %d/lb %d) vs core-guided (%s, cost %d/lb %d)\n"
      name
      (match lin.O.status with O.Optimal -> "optimal" | _ -> "open")
      lin.O.best_cost lin.O.lower_bound
      (match cg.O.status with O.Optimal -> "optimal" | _ -> "open")
      cg.O.best_cost cg.O.lower_bound;
    exit 1
  end;
  {
    name;
    vars = Sat.Wcnf.num_vars w;
    n_hard = Sat.Wcnf.num_hard w;
    n_soft = Sat.Wcnf.num_soft w;
    optimum = lin.O.best_cost;
    linear_wall = lin_wall;
    linear_calls = lin.O.cdcl_calls;
    core_wall = cg_wall;
    core_calls = cg.O.cdcl_calls;
  }

let json_out ~instances ~mismatches rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"bench\": \"maxsat\",\n";
  Printf.bprintf b "  \"fuzz_instances\": %d,\n" instances;
  Printf.bprintf b "  \"fuzz_mismatches\": %d,\n" mismatches;
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": %S, \"vars\": %d, \"hard\": %d, \"soft\": %d, \"optimum\": %d, \
         \"linear_wall_s\": %.6f, \"linear_cdcl_calls\": %d, \"core_wall_s\": %.6f, \
         \"core_cdcl_calls\": %d}%s\n"
        r.name r.vars r.n_hard r.n_soft r.optimum r.linear_wall r.linear_calls r.core_wall
        r.core_calls
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Weighted MaxSAT: exact optimisers vs brute force and each other"
    "no paper analogue; extension of reference [8] (Bian et al.)";
  let rng = Bench_util.rng_of ctx 91 in
  let instances = match ctx.scale with `Paper -> 400 | `Small -> 120 in
  let mismatches = fuzz_gate rng ~instances in
  Printf.printf "fuzz corpus: %d instances x 2 algorithms, %d mismatches vs brute force\n\n"
    instances mismatches;

  (* one rng per workload: rows stay stable when a sibling changes *)
  let gc_nodes, bp = match ctx.scale with `Paper -> (36, (4, 4)) | `Small -> (18, (4, 3)) in
  let rows =
    [
      run_workload
        (Printf.sprintf "gc-weighted-%d" gc_nodes)
        (Workload.Graph_coloring.weighted (Bench_util.rng_of ctx 92) ~nodes:gc_nodes
           ~edges:(int_of_float (2.394 *. float_of_int gc_nodes))
           ~soft_edges:(max 3 (gc_nodes / 3)));
      (let blocks, steps = bp in
       run_workload
         (Printf.sprintf "bp-weighted-%db%ds" blocks steps)
         (Workload.Block_planning.generate_weighted (Bench_util.rng_of ctx 93) ~blocks
            ~steps));
      run_workload "uf-weighted-16"
        (random_wcnf (Bench_util.rng_of ctx 94) ~n:16 ~hard:35 ~soft:56);
    ]
  in
  Printf.printf "%-20s %6s %6s %6s %8s %12s %8s %12s %8s\n" "workload" "vars" "hard"
    "soft" "optimum" "lin wall(s)" "calls" "cg wall(s)" "calls";
  Bench_util.hr ();
  List.iter
    (fun r ->
      Printf.printf "%-20s %6d %6d %6d %8d %12.4f %8d %12.4f %8d\n" r.name r.vars r.n_hard
        r.n_soft r.optimum r.linear_wall r.linear_calls r.core_wall r.core_calls)
    rows;
  Bench_util.hr ();
  Printf.printf "both algorithms certified the same optimum on all %d workloads\n\n"
    (List.length rows);

  let json = json_out ~instances ~mismatches rows in
  let path = Bench_util.out_path "BENCH_maxsat.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json);
  Printf.printf "wrote %s\n" path;

  (* the gate: an exact optimiser that misses the brute optimum is a
     soundness regression, never a perf artifact *)
  if mismatches > 0 then begin
    Printf.eprintf "bench maxsat: REGRESSION — %d fuzz mismatches vs brute force\n"
      mismatches;
    exit 1
  end
