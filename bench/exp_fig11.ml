(* Figure 11: breakdown of HyQSAT end-to-end time into frontend, QA
   execution, backend and remaining-CDCL shares.  Paper: warm-up stage
   (frontend + QA + backend) ~41% of total; frontend only ~2.2% thanks to
   pipelining; QA small except on few-iteration benchmarks like BP. *)

module Hybrid = Hyqsat.Hybrid_solver

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Figure 11 — HyQSAT time breakdown"
    "frontend ~2.2%, QA small (large on BP), backend modest, remaining CDCL ~59%";
  Printf.printf "%-5s %10s %10s %10s %10s\n" "id" "frontend%" "QA%" "backend%" "CDCL%";
  Bench_util.hr ();
  let cap = Exp_common.iteration_cap ctx in
  List.iter
    (fun spec ->
      let shares =
        List.map
          (fun f ->
            let r =
              Exp_common.solve_hybrid
                ~config:
                  (Exp_common.hybrid_config ~noise:Anneal.Noise.default_2000q
                     ctx.Bench_util.seed)
                ~max_iterations:cap f
            in
            let total = Float.max 1e-12 (Hybrid.end_to_end_time_s r) in
            ( r.Hybrid.frontend_time_s /. total,
              r.Hybrid.qa_time_us *. 1e-6 /. total,
              r.Hybrid.backend_time_s /. total,
              r.Hybrid.cdcl_time_s /. total ))
          (Exp_common.instances ctx spec)
      in
      let avg sel = 100. *. Bench_util.mean (List.map sel shares) in
      Printf.printf "%-5s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n" spec.Workload.Spec.id
        (avg (fun (a, _, _, _) -> a))
        (avg (fun (_, b, _, _) -> b))
        (avg (fun (_, _, c, _) -> c))
        (avg (fun (_, _, _, d) -> d)))
    Workload.Spec.table1
