(* Daemon throughput benchmark (no paper analogue): solve the same uf30
   batch in-process through Service.Batch and over the wire through a live
   `hyqsat serve` daemon on a Unix socket, and report the protocol +
   scheduling overhead per job.  Writes BENCH_serve.json at the repo root.

   Methodology: one untimed warm-up round of each path (pages in the
   solver, the allocator and the socket stack), then the median wall of
   [trials] timed rounds per path.  Medians, not minima — the overhead is
   a *difference* of two measured paths, and subtracting each path's
   luckiest run can (and historically did) go negative.

   The gate is correctness, not speed: every wire round must return
   exactly the outcomes the in-process run returned (the daemon feeds the
   same Batch.process pipeline, so any divergence is a bug), and every
   job must be answered. *)

let instances (ctx : Bench_util.ctx) count =
  let rng = Bench_util.rng_of ctx 91 in
  List.init count (fun i ->
      (Printf.sprintf "uf30-%02d" i, Workload.Uniform.uf rng 30, ctx.seed + (101 * i)))

let json_out ~count ~trials ~direct_wall ~wire_wall ~outcomes =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" count);
  Buffer.add_string b (Printf.sprintf "  \"trials\": %d,\n" trials);
  Buffer.add_string b (Printf.sprintf "  \"direct_wall_s\": %.6f,\n" direct_wall);
  Buffer.add_string b
    (Printf.sprintf "  \"direct_jobs_per_s\": %.3f,\n" (float_of_int count /. direct_wall));
  Buffer.add_string b (Printf.sprintf "  \"wire_wall_s\": %.6f,\n" wire_wall);
  Buffer.add_string b
    (Printf.sprintf "  \"wire_jobs_per_s\": %.3f,\n" (float_of_int count /. wire_wall));
  Buffer.add_string b
    (Printf.sprintf "  \"overhead_ms_per_job\": %.3f,\n"
       (1000. *. (wire_wall -. direct_wall) /. float_of_int count));
  Buffer.add_string b
    (Printf.sprintf "  \"outcomes\": [%s]\n"
       (String.concat ", " (List.map (fun o -> Printf.sprintf "\"%s\"" o) outcomes)));
  Buffer.add_string b "}\n";
  Buffer.contents b

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Daemon wire-protocol throughput"
    "no paper analogue; hyqsat serve overhead vs in-process batch on uf30";
  let count = match ctx.scale with `Paper -> 30 | `Small -> 10 in
  let jobs = instances ctx count in

  (* in-process reference: the exact pipeline the daemon dispatches to *)
  let specs =
    List.mapi
      (fun i (name, f, seed) -> ignore i; Service.Job.make ~name ~seed ~id:i f)
      jobs
  in
  let members ~spec ~seed = Service.Batch.solo "hybrid" ~spec ~seed in
  let direct_once () =
    let (_, direct_results), wall =
      Bench_util.wall (fun () -> Service.Batch.run ~members specs)
    in
    let outcomes =
      List.map (fun r -> r.Service.Batch.record.Service.Telemetry.outcome) direct_results
    in
    (outcomes, wall)
  in

  (* one wire round: fresh daemon on a fresh Unix socket, blocking client;
     daemon start-up and teardown stay outside the timed section *)
  let wire_once () =
    let socket = Filename.temp_file "hyqsat-bench" ".sock" in
    Sys.remove socket;
    let stop = Atomic.make false in
    let ready = Atomic.make false in
    let daemon =
      Thread.create
        (fun () ->
          ignore
            (Server.Daemon.run ~stop
               ~on_ready:(fun _ -> Atomic.set ready true)
               {
                 Server.Daemon.default_config with
                 Server.Daemon.unix_socket = Some socket;
                 dispatch =
                   {
                     Server.Dispatch.default_config with
                     Server.Dispatch.workers = 1;
                     queue_capacity = count + 2;
                     per_client = count + 2;
                     seed = ctx.seed;
                   };
               }))
        ()
    in
    while not (Atomic.get ready) do
      Thread.yield ()
    done;
    let wire_outcomes = Array.make count "" in
    let (), wall =
      Bench_util.wall (fun () ->
          let t = Server.Client.connect_unix socket in
          Server.Client.handshake ~client:"bench-serve" t;
          List.iteri
            (fun i (name, f, seed) ->
              Server.Client.send t
                (Server.Protocol.Submit
                   (Server.Protocol.make_job_spec ~name ~seed ~id:i
                      (Sat.Dimacs.to_string f))))
            jobs;
          let outstanding = ref count in
          while !outstanding > 0 do
            match Server.Client.recv ~timeout_s:300. t with
            | Server.Protocol.Result { id; record; _ } ->
                wire_outcomes.(id) <- record.Service.Telemetry.outcome;
                decr outstanding
            | Server.Protocol.Rejected { id; code; reason; _ } ->
                failwith
                  (Printf.sprintf "bench serve: job %d rejected (%s): %s" id code reason)
            | _ -> ()
          done;
          Server.Client.send t Server.Protocol.Bye;
          Server.Client.close t)
    in
    Atomic.set stop true;
    Thread.join daemon;
    (Array.to_list wire_outcomes, wall)
  in

  let trials = 3 in
  (* warm-up round of each path, untimed *)
  let direct_outcomes, _ = direct_once () in
  ignore (wire_once ());
  let direct_runs = List.init trials (fun _ -> direct_once ()) in
  let wire_runs = List.init trials (fun _ -> wire_once ()) in
  let check_outcomes tag outcomes =
    if outcomes <> direct_outcomes then begin
      Printf.eprintf
        "bench serve: ANSWER MISMATCH — %s outcomes differ from the in-process batch\n" tag;
      List.iteri
        (fun i (d, w) -> if d <> w then Printf.eprintf "  job %d: direct=%s %s=%s\n" i d tag w)
        (List.combine direct_outcomes outcomes);
      exit 1
    end
  in
  List.iter (fun (o, _) -> check_outcomes "direct" o) direct_runs;
  List.iter (fun (o, _) -> check_outcomes "wire" o) wire_runs;
  let direct_wall = Bench_util.median (List.map snd direct_runs) in
  let wire_wall = Bench_util.median (List.map snd wire_runs) in

  Printf.printf "%8s %8s %12s %12s %16s\n" "jobs" "trials" "direct(s)" "wire(s)"
    "overhead/job";
  Bench_util.hr ();
  Printf.printf "%8d %8d %12.3f %12.3f %13.2f ms   (medians)\n\n" count trials direct_wall
    wire_wall
    (1000. *. (wire_wall -. direct_wall) /. float_of_int count);

  let json =
    json_out ~count ~trials ~direct_wall ~wire_wall ~outcomes:direct_outcomes
  in
  let path = Bench_util.out_path "BENCH_serve.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json);
  Printf.printf "wrote %s\n" path;
  Printf.printf "wire outcomes match the in-process batch (%d jobs x %d rounds)\n" count
    trials
