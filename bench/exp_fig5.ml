(* Figure 5: clause visiting frequency during CDCL search, quintiles of
   clauses ranked by visits, split into propagation-step and conflict-step
   visits.  Paper: the top 1/5 of clauses receive ~42% of all visits
   (33% propagation + 9% conflict resolving). *)

let run (ctx : Bench_util.ctx) =
  let n_problems, uf_n =
    match ctx.Bench_util.scale with `Paper -> (100, 200) | `Small -> (10, 70)
  in
  Bench_util.header "Figure 5 — clause visiting frequency (CDCL on UF instances)"
    "top 1/5 of clauses take ~42% of visits (33% propagation + 9% conflict)";
  let prop_share = Array.make 5 0. and confl_share = Array.make 5 0. in
  for p = 1 to n_problems do
    let rng = Bench_util.rng_of ctx (100 + p) in
    let f = Workload.Uniform.uf rng uf_n in
    let solver =
      Cdcl.Solver.create ~config:(Cdcl.Config.with_paper_stats Cdcl.Config.default) f
    in
    ignore (Cdcl.Solver.solve solver);
    let m = Sat.Cnf.num_clauses f in
    let visits =
      Array.init m (fun i ->
          let prop, confl = Cdcl.Solver.clause_visits solver i in
          (prop, confl))
    in
    Array.sort (fun (p1, c1) (p2, c2) -> compare (p2 + c2) (p1 + c1)) visits;
    let total =
      float_of_int (Array.fold_left (fun acc (p, c) -> acc + p + c) 0 visits)
    in
    if total > 0. then
      Array.iteri
        (fun i (prop, confl) ->
          let q = min 4 (i * 5 / m) in
          prop_share.(q) <- prop_share.(q) +. (float_of_int prop /. total /. float_of_int n_problems);
          confl_share.(q) <- confl_share.(q) +. (float_of_int confl /. total /. float_of_int n_problems))
        visits
  done;
  Printf.printf "%-12s %14s %14s %10s\n" "quintile" "propagation" "conflict" "total";
  Bench_util.hr ();
  Array.iteri
    (fun q _ ->
      Printf.printf "%-12s %13.1f%% %13.1f%% %9.1f%%\n"
        (Printf.sprintf "top %d/5" (q + 1))
        (100. *. prop_share.(q))
        (100. *. confl_share.(q))
        (100. *. (prop_share.(q) +. confl_share.(q))))
    prop_share
