(* Table III: scalability — iteration reduction on Chimera grids of
   16/24/32/64 cells per side with a 10% bit-flip noise channel, on the AI
   benchmarks plus a 500-variable problem.  Paper: bigger grids embed (almost)
   everything and the reduction explodes (341x-2.3e6x). *)

module Hybrid = Hyqsat.Hybrid_solver

let grids = [ 16; 24; 32; 64 ]

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Table III — scalability over Chimera grid sizes (10% bit-flip noise)"
    "16x16 gives single-digit reductions; 24x24+ embeds nearly all clauses and jumps to >>100x";
  let ai_sizes, var_n =
    match ctx.Bench_util.scale with
    | `Paper -> ([ ("AI1", 150); ("AI2", 175); ("AI3", 200); ("AI4", 225); ("AI5", 250) ], 500)
    | `Small -> ([ ("AI1", 40); ("AI2", 50); ("AI3", 60) ], 120)
  in
  Printf.printf "%-8s" "bench";
  List.iter (fun g -> Printf.printf " %11s" (Printf.sprintf "%dx%d" g g)) grids;
  print_newline ();
  Bench_util.hr ();
  let row name gen =
    Printf.printf "%-8s" name;
    List.iter
      (fun g ->
        let reds =
          List.init ctx.Bench_util.problems (fun i ->
              let rng = Bench_util.rng_of ctx (Hashtbl.hash (name, g, i)) in
              let f = gen rng in
              let classic = Exp_common.solve_classic f in
              let config =
                Exp_common.hybrid_config ~noise:(Anneal.Noise.bit_flip_only 0.1)
                  ~graph_size:g ctx.Bench_util.seed
              in
              let hybrid =
                Exp_common.solve_hybrid ~config
                  ~max_iterations:(Exp_common.iteration_cap ctx) f
              in
              Exp_common.reduction classic hybrid)
        in
        Printf.printf " %11.2f" (Bench_util.geomean reds))
      grids;
    print_newline ()
  in
  List.iter (fun (name, n) -> row name (fun rng -> Workload.Uniform.uf rng n)) ai_sizes;
  row (Printf.sprintf "Var%d" var_n) (fun rng -> Workload.Uniform.uf rng var_n)
