(* Experiment harness: one experiment per paper table/figure.

   dune exec bench/main.exe                  — run everything at small scale
   dune exec bench/main.exe -- table1 fig13  — run a subset
   dune exec bench/main.exe -- --scale paper — approach paper-scale sizes *)

let experiments =
  [
    ("fig1", Exp_fig1.run);
    ("fig5", Exp_fig5.run);
    ("fig8", Exp_fig8.run);
    ("table1", Exp_table1.run);
    ("fig10", Exp_fig10.run);
    ("table2", Exp_table2.run);
    ("fig11", Exp_fig11.run);
    ("fig12", Exp_fig12.run);
    ("fig13", Exp_fig13.run);
    ("fig14", Exp_fig14.run);
    ("fig15", Exp_fig15.run);
    ("table3", Exp_table3.run);
    ("ablation", Exp_ablation.run);
    ("batch", Exp_batch.run);
    ("anneal", Exp_anneal.run);
    ("serve", Exp_serve.run);
    ("incremental", Exp_incremental.run);
    ("maxsat", Exp_maxsat.run);
    ("cdcl", Exp_cdcl.run);
  ]

let run_selected names scale seed problems trace fault_rate =
  let ctx = { Bench_util.scale; seed; problems; trace; fault_rate } in
  let selected =
    match names with
    | [] -> experiments
    | _ ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S (have: %s)\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf "HyQSAT experiment harness — scale=%s seed=%d problems/bench=%d\n"
    (match scale with `Paper -> "paper" | `Small -> "small")
    seed problems;
  List.iter
    (fun (name, f) ->
      let (), dt = Bench_util.wall (fun () -> f ctx) in
      Printf.printf "[%s finished in %.1f s]\n%!" name dt)
    selected

open Cmdliner

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to run (default: all).")

let scale_arg =
  Arg.(
    value
    & opt (enum [ ("small", `Small); ("paper", `Paper) ]) `Small
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Workload scale: $(b,small) (seconds) or $(b,paper).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let problems_arg =
  Arg.(value & opt int 3 & info [ "problems" ] ~docv:"N" ~doc:"Instances per benchmark.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL observability trace to $(docv) (currently used by $(b,batch)).")

let fault_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "qa-fault-rate" ] ~docv:"P"
        ~doc:
          "QA backend fault-injection rate for the $(b,batch) experiment's resilience smoke \
           (0 disables it).")

let cmd =
  let doc = "regenerate the HyQSAT paper's tables and figures" in
  Cmd.v (Cmd.info "hyqsat-bench" ~doc)
    Term.(
      const run_selected $ names_arg $ scale_arg $ seed_arg $ problems_arg $ trace_arg
      $ fault_rate_arg)

let () = exit (Cmd.eval cmd)
