(* Figure 10: ablation of the backend feedback strategies — iteration
   reduction with only strategy 1, only strategy 2, only strategy 4, and all
   enabled.  Paper: every strategy contributes; strategy 1 contributes least
   (zero-energy full embeddings are rare), strategy 4 dominates on the
   unsatisfiable CFA benchmark. *)

module Backend = Hyqsat.Backend

let variants =
  [
    ("s1 only", { Backend.s1 = true; s2 = false; s4 = false });
    ("s2 only", { Backend.s1 = false; s2 = true; s4 = false });
    ("s4 only", { Backend.s1 = false; s2 = false; s4 = true });
    ("all", Backend.all_enabled);
  ]

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Figure 10 — feedback-strategy ablation (iteration reduction vs classic)"
    "all strategies contribute; s1 smallest; s4 ~= all on the unsatisfiable CFA benchmark";
  let ctx = { ctx with Bench_util.problems = max 2 (ctx.Bench_util.problems - 1) } in
  Printf.printf "%-5s" "id";
  List.iter (fun (name, _) -> Printf.printf " %9s" name) variants;
  print_newline ();
  Bench_util.hr ();
  List.iter
    (fun spec ->
      Printf.printf "%-5s" spec.Workload.Spec.id;
      List.iter
        (fun (_, strategies) ->
          let config = Exp_common.hybrid_config ~strategies ctx.Bench_util.seed in
          let runs = Exp_common.reductions_for ctx spec ~config in
          Printf.printf " %9.2f" (Bench_util.geomean (List.map (fun (_, _, r) -> r) runs)))
        variants;
      print_newline ())
    Workload.Spec.table1;
  (* an extra fully-embeddable row: with every clause on the annealer,
     strategy 1 can finish the search outright (the regime the paper's BP
     row lives in) *)
  Printf.printf "%-5s" "UF-s";
  List.iter
    (fun (_, strategies) ->
      let reds =
        List.init (ctx.Bench_util.problems + 2) (fun i ->
            let rng = Bench_util.rng_of ctx (1000 + i) in
            let f = Workload.Uniform.generate rng ~num_vars:20 ~num_clauses:42 in
            let classic = Exp_common.solve_classic f in
            let config = Exp_common.hybrid_config ~strategies ctx.Bench_util.seed in
            let hybrid = Exp_common.solve_hybrid ~config f in
            Exp_common.reduction classic hybrid)
      in
      Printf.printf " %9.2f" (Bench_util.geomean reds))
    variants;
  print_newline ()
