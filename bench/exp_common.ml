(* Shared benchmark-suite machinery for the Table I/II-style experiments. *)

module Hybrid = Hyqsat.Hybrid_solver

let instances (ctx : Bench_util.ctx) (spec : Workload.Spec.t) =
  List.init ctx.Bench_util.problems (fun i ->
      let rng = Bench_util.rng_of ctx (Hashtbl.hash (spec.Workload.Spec.id, i)) in
      spec.Workload.Spec.generate rng ctx.Bench_util.scale)

let solve_classic ?(config = Cdcl.Config.minisat_like) f =
  Hybrid.run (Hybrid.Classic config) f

let solve_hybrid ?max_iterations ~config f =
  Hybrid.run ?max_iterations (Hybrid.Hybrid config) f

let hybrid_config ?(noise = Anneal.Noise.noise_free) ?(strategies = Hyqsat.Backend.all_enabled)
    ?(queue_mode = Hyqsat.Frontend.Activity_bfs) ?(adjust = true) ?(graph_size = 16) seed =
  Hybrid.make_config ~noise ~strategies ~queue_mode ~adjust_coefficients:adjust
    ~graph:(Chimera.Graph.create ~rows:graph_size ~cols:graph_size)
    ~seed ()

(* cap pathological runs so one outlier cannot stall the whole experiment *)
let iteration_cap (ctx : Bench_util.ctx) =
  match ctx.Bench_util.scale with `Paper -> 2_000_000 | `Small -> 200_000

let reduction classic hybrid =
  Bench_util.ratio classic.Hybrid.iterations hybrid.Hybrid.iterations

(* per-benchmark reductions of hybrid vs classic iteration counts *)
let reductions_for ctx spec ~config =
  List.map
    (fun f ->
      let classic = solve_classic f in
      let hybrid = solve_hybrid ~max_iterations:(iteration_cap ctx) ~config f in
      (classic, hybrid, reduction classic hybrid))
    (instances ctx spec)
