(* Annealing-engine microbenchmark (no paper analogue): throughput of the
   Metropolis kernels, domain-parallel best-of-k reads, and the frontend's
   embedding cache.  Writes BENCH_anneal.json at the repo root — the
   repo's perf trajectory for the QA hot path — and fails (exit 1) if the
   incremental kernel's flips/sec drops more than 2x below the committed
   floor, or if parallel best-of on a multicore machine fails to beat the
   serial path, so CI catches both kernel and pool regressions.

   The spin instance is the full 16x16 Chimera hardware graph (2048 qubits,
   every coupler carries a Gaussian coupling) — the same shape the machine
   layer anneals after embedding, at the hardware's maximum occupancy. *)

module Sampler = Anneal.Sampler
module SI = Anneal.Sparse_ising

(* Committed floor for the incremental kernel on a 2048-spin Chimera
   instance over the full production schedule.  Measured ~65 M flips/s on
   the dev container; the floor is set ~3x below that to absorb slow CI
   machines, and the gate fires at floor / 2 — only a real (>2x)
   regression trips it. *)
let floor_flips_per_sec = 20e6

let chimera_instance seed =
  let g = Chimera.Graph.standard_2000q () in
  let rng = Stats.Rng.create ~seed in
  let n = Chimera.Graph.num_qubits g in
  let h = Array.init n (fun _ -> Stats.Rng.gaussian rng ~mu:0. ~sigma:1.) in
  let couplings = ref [] in
  Chimera.Graph.iter_couplers g (fun i j ->
      couplings := ((i, j), Stats.Rng.gaussian rng ~mu:0. ~sigma:1.) :: !couplings);
  SI.build ~n ~h ~couplings:!couplings ~offset:0.

(* Each trial times one full anneal; the throughput estimate is the
   fastest trial.  Min-of-N is the right estimator on a shared machine —
   scheduler noise only ever adds time, so the minimum is the closest
   observation to the true cost and the ratio between kernels stays stable
   run to run. *)
let time_kernel ~kernel ~schedule ~repeats ising seed =
  let params = Sampler.make_params ~schedule ~kernel () in
  (* warmup run: page in the CSR arrays and settle the branch predictors so
     whichever kernel runs first isn't billed for the cold caches *)
  ignore (Sampler.sample ~params (Stats.Rng.create ~seed:(seed + 7)) ising);
  let rng = Stats.Rng.create ~seed in
  let best = ref infinity in
  for _ = 1 to repeats do
    let (), wall = Bench_util.wall (fun () -> ignore (Sampler.sample ~params rng ising)) in
    if wall < !best then best := wall
  done;
  let flips = float_of_int (schedule.Sampler.sweeps * ising.SI.n) in
  (!best, flips /. Float.max !best 1e-9)

(* Fixed-β sweeps isolate the kernel's regimes: the low-β mixing phase is
   accept-dominated (both kernels pay O(deg) per attempt there — the
   reference in its field scan, the incremental in its push), while β ≥ 1
   is reject-dominated, which is where the O(1) delta read and the exp-free
   threshold table pay off.  The production schedule spends ~55% of its
   sweeps at β ≥ 1. *)
let time_regime ~kernel ~beta ~trials ising seed =
  let sweeps = 512 in
  let schedule = { Sampler.sweeps; beta_min = beta; beta_max = beta } in
  let params = Sampler.make_params ~schedule ~kernel () in
  let best = ref infinity in
  for trial = 0 to trials do
    let rng = Stats.Rng.create ~seed:(seed + trial) in
    let (), wall =
      Bench_util.wall (fun () -> ignore (Sampler.sample ~params rng ising))
    in
    (* trial 0 is the warmup *)
    if trial > 0 && wall < !best then best := wall
  done;
  float_of_int (sweeps * ising.SI.n) /. Float.max !best 1e-9

(* Min-of-N with one untimed warm-up run.  The warm-up spins up the shared
   pool's worker domains, so the first timed trial isn't billed for the
   one-off spawn the persistent pool amortises in production.  The RNG is
   re-seeded per trial, so every trial computes the identical result (the
   sampler's determinism contract) and min-of-N is purely a noise filter. *)
let time_best_of ~domains ~schedule ~reads ~trials ising seed =
  let params = Sampler.make_params ~schedule ~reads () in
  let once () =
    let rng = Stats.Rng.create ~seed in
    let spins = ref [||] in
    let (), wall =
      Bench_util.wall (fun () -> spins := Sampler.sample ~params ~domains rng ising)
    in
    (wall, SI.energy ising !spins)
  in
  ignore (once ());
  let best = ref infinity and energy = ref Float.nan in
  for _ = 1 to max 1 trials do
    let wall, e = once () in
    energy := e;
    if wall < !best then best := wall
  done;
  (!best, !energy)

let cache_exercise () =
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.uf (Stats.Rng.create ~seed:4242) 120 in
  let cache = Hyqsat.Frontend.create_cache g in
  (* 4 distinct conflict-hot queues revisited 6 times each, as warm-up
     iterations revisit the same hot clauses: 4 misses, 20 hits *)
  for round = 0 to 23 do
    let rng = Stats.Rng.create ~seed:(1000 + (round mod 4)) in
    ignore (Hyqsat.Frontend.prepare ~cache rng g f ~activity:(fun _ -> 1.0))
  done;
  Hyqsat.Frontend.cache_stats cache

let json_out ~scale ~n ~sweeps ~repeats ~ref_wall ~ref_fps ~inc_wall ~inc_fps
    ~regimes ~reads ~bo_trials ~serial_wall ~par_rows ~hits ~misses =
  let fin x = if Float.is_finite x then x else 0. in
  let hit_rate =
    if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)
  in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"schema\": 2,\n";
  Printf.bprintf b "  \"experiment\": \"anneal\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n" scale;
  Printf.bprintf b "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.bprintf b "  \"n_spins\": %d,\n" n;
  Printf.bprintf b "  \"sweeps\": %d,\n" sweeps;
  Printf.bprintf b "  \"repeats\": %d,\n" repeats;
  Printf.bprintf b "  \"reference\": { \"wall_s\": %.6f, \"flips_per_sec\": %.0f },\n"
    (fin ref_wall) (fin ref_fps);
  Printf.bprintf b "  \"incremental\": { \"wall_s\": %.6f, \"flips_per_sec\": %.0f },\n"
    (fin inc_wall) (fin inc_fps);
  Printf.bprintf b "  \"kernel_speedup\": %.3f,\n" (fin (inc_fps /. ref_fps));
  Printf.bprintf b "  \"regimes\": [\n";
  List.iteri
    (fun idx (beta, rf, inc) ->
      Printf.bprintf b
        "    { \"beta\": %.2f, \"reference_flips_per_sec\": %.0f, \
         \"incremental_flips_per_sec\": %.0f, \"speedup\": %.3f }%s\n"
        beta (fin rf) (fin inc)
        (fin (inc /. rf))
        (if idx = List.length regimes - 1 then "" else ","))
    regimes;
  Printf.bprintf b "  ],\n";
  (* the best row keeps the schema-1 summary fields alive: the CI trend
     reader and the speedup gate both look at [parallel_speedup] *)
  let best_d, best_wall, best_speedup =
    List.fold_left
      (fun (bd, bw, bs) (d, w, s) -> if s > bs then (d, w, s) else (bd, bw, bs))
      (1, serial_wall, 1.0) par_rows
  in
  Printf.bprintf b
    "  \"best_of\": {\n\
    \    \"reads\": %d, \"trials\": %d, \"serial_wall_s\": %.6f, \
     \"reads_per_sec_serial\": %.2f,\n\
    \    \"parallel\": [\n"
    reads bo_trials (fin serial_wall)
    (fin (float_of_int reads /. serial_wall));
  List.iteri
    (fun idx (d, w, s) ->
      Printf.bprintf b
        "      { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, \
         \"reads_per_sec\": %.2f }%s\n"
        d (fin w) (fin s)
        (fin (float_of_int reads /. w))
        (if idx = List.length par_rows - 1 then "" else ","))
    par_rows;
  Printf.bprintf b
    "    ],\n\
    \    \"parallel_domains\": %d, \"parallel_wall_s\": %.6f, \
     \"parallel_speedup\": %.3f, \"reads_per_sec_parallel\": %.2f\n\
    \  },\n"
    best_d (fin best_wall) (fin best_speedup)
    (fin (float_of_int reads /. best_wall));
  Printf.bprintf b "  \"embed_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f },\n"
    hits misses hit_rate;
  Printf.bprintf b "  \"floor_flips_per_sec\": %.0f\n" floor_flips_per_sec;
  Printf.bprintf b "}\n";
  Buffer.contents b

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Annealing-engine throughput"
    "no paper analogue; incremental-field kernel, domain-parallel reads, embedding cache";
  let repeats, sweeps = match ctx.scale with `Paper -> (40, 256) | `Small -> (10, 256) in
  let schedule = { Sampler.default_schedule with Sampler.sweeps } in
  let ising = chimera_instance ctx.seed in
  let n = ising.SI.n in
  Printf.printf "%d-spin Chimera instance, %d sweeps x %d repeats, %d core(s)\n\n" n sweeps
    repeats
    (Domain.recommended_domain_count ());
  let ref_wall, ref_fps =
    time_kernel ~kernel:`Reference ~schedule ~repeats ising (ctx.seed + 1)
  in
  let inc_wall, inc_fps =
    time_kernel ~kernel:`Incremental ~schedule ~repeats ising (ctx.seed + 1)
  in
  Printf.printf "%-14s %10s %16s\n" "kernel" "wall(s)" "flips/sec";
  Bench_util.hr ();
  Printf.printf "%-14s %10.3f %16.2e\n" "reference" ref_wall ref_fps;
  Printf.printf "%-14s %10.3f %16.2e\n" "incremental" inc_wall inc_fps;
  Printf.printf "%-14s %26.2fx  (full %g->%g schedule)\n\n" "speedup" (inc_fps /. ref_fps)
    schedule.Sampler.beta_min schedule.Sampler.beta_max;
  let regime_betas = [ 1.0; 2.0; 4.0; 8.0 ] in
  let trials = match ctx.scale with `Paper -> 7 | `Small -> 3 in
  let regimes =
    List.map
      (fun beta ->
        let rf = time_regime ~kernel:`Reference ~beta ~trials ising (ctx.seed + 30) in
        let inc = time_regime ~kernel:`Incremental ~beta ~trials ising (ctx.seed + 30) in
        (beta, rf, inc))
      regime_betas
  in
  Printf.printf "fixed-temperature sweeps (reject-dominated sampling regime):\n";
  Printf.printf "%-10s %14s %14s %10s\n" "beta" "ref flips/s" "inc flips/s" "speedup";
  Bench_util.hr ();
  List.iter
    (fun (beta, rf, inc) ->
      Printf.printf "%-10.2f %14.2e %14.2e %9.2fx\n" beta rf inc (inc /. rf))
    regimes;
  print_newline ();
  let reads = 8 in
  let cores = Domain.recommended_domain_count () in
  let bo_trials = match ctx.scale with `Paper -> 5 | `Small -> 3 in
  let serial_wall, e_serial =
    time_best_of ~domains:1 ~schedule ~reads ~trials:bo_trials ising (ctx.seed + 2)
  in
  (* rows run even on a single core: the persistent pool degrades to
     inline serial execution there (the shared pool has 0 workers), so the
     rows document "multi-domain costs ~nothing" instead of the historical
     0.26x spawn-per-call collapse; the >1x gate only makes sense with
     real parallelism and is skipped below when cores < 2 *)
  let domain_counts = [ 2; 4 ] in
  let par_rows =
    List.map
      (fun d ->
        let wall, e = time_best_of ~domains:d ~schedule ~reads ~trials:bo_trials ising (ctx.seed + 2) in
        if abs_float (e_serial -. e) > 1e-9 then
          failwith "bench anneal: best-of energy differs across domain counts";
        (d, wall, serial_wall /. wall))
      domain_counts
  in
  Printf.printf "best-of-%d reads (min of %d trials): serial %.3f s (%.1f reads/s)\n" reads
    bo_trials serial_wall
    (float_of_int reads /. serial_wall);
  List.iter
    (fun (d, wall, speedup) ->
      Printf.printf "  %d domains: %.3f s (%.1f reads/s), speedup %.2fx, energies agree\n" d
        wall
        (float_of_int reads /. wall)
        speedup)
    par_rows;
  if cores < 2 then
    Printf.printf "  (single-core machine: the parallel-speedup gate is skipped)\n";
  print_newline ();
  let hits, misses = cache_exercise () in
  Printf.printf "embed cache: %d hits / %d misses (%.1f %% hit rate)\n" hits misses
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  let scale = match ctx.scale with `Paper -> "paper" | `Small -> "small" in
  let json =
    json_out ~scale ~n ~sweeps ~repeats ~ref_wall ~ref_fps ~inc_wall ~inc_fps ~regimes
      ~reads ~bo_trials ~serial_wall ~par_rows ~hits ~misses
  in
  let path = Bench_util.out_path "BENCH_anneal.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json);
  Printf.printf "wrote %s\n" path;
  if inc_fps < floor_flips_per_sec /. 2.0 then begin
    Printf.eprintf
      "bench anneal: PERF REGRESSION — incremental kernel at %.2e flips/s, more than 2x below \
       the committed floor of %.2e\n"
      inc_fps floor_flips_per_sec;
    exit 1
  end;
  (* parallel-speedup gate: on a multicore machine, best-of through the
     persistent pool must beat the serial path at some domain count — this
     is exactly the regression the pool rework fixed (spawn/join per QA
     call made 4 domains 4x *slower* than serial) *)
  let best_speedup =
    List.fold_left (fun acc (_, _, s) -> Float.max acc s) 0. par_rows
  in
  if cores >= 2 && best_speedup <= 1.0 then begin
    Printf.eprintf
      "bench anneal: PERF REGRESSION — parallel best-of speedup %.2fx <= 1.0 on %d cores; \
       the domain pool is slower than the serial path\n"
      best_speedup cores;
    exit 1
  end
