(* Figure 1: end-to-end time to solve one 3-SAT problem (128 vars, 150
   clauses) with (a) classic CDCL, (b) the all-clauses-on-QA approach with a
   Minorminer-style embedder and 60 noisy samples, (c) HyQSAT. *)

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Figure 1 — end-to-end time, 128 vars / 150 clauses"
    "CDCL ~8000us; QA-only dominated by ~10-17s embedding + 8380us sampling; HyQSAT ~4000us with <16us embedding";
  let rng = Bench_util.rng_of ctx 1 in
  let f = Workload.Uniform.generate rng ~num_vars:128 ~num_clauses:150 in
  let timing = Anneal.Timing.d_wave_2000q in

  (* (a) classic CDCL *)
  let classic =
    Hyqsat.Hybrid_solver.run (Hyqsat.Hybrid_solver.Classic Cdcl.Config.minisat_like) f
  in
  Printf.printf "%-28s total %10.1f us   (CDCL %d iterations)\n" "classic CDCL (MiniSAT-like)"
    (classic.Hyqsat.Hybrid_solver.cdcl_time_s *. 1e6)
    classic.Hyqsat.Hybrid_solver.iterations;

  (* (b) embed the whole formula with the Minorminer-like baseline *)
  let enc = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
  let obj = Qubo.Encode.objective enc in
  let nodes = Qubo.Pbq.vars obj and edges = Qubo.Pbq.edges obj in
  let graph = Chimera.Graph.standard_2000q () in
  let outcome, embed_time =
    Bench_util.wall (fun () ->
        Embed.Minorminer_like.embed ~seed:ctx.Bench_util.seed ~max_rounds:8 ~timeout_s:60.
          graph ~nodes ~edges)
  in
  let qa_sampling_us = Anneal.Timing.multi_sample_us timing ~samples:60 in
  Printf.printf "%-28s total %10.1f us   (embed %.2f s %s + 60 samples %.0f us)\n"
    "QA only (Minorminer embed)"
    ((embed_time *. 1e6) +. qa_sampling_us)
    embed_time
    (match outcome.Embed.Minorminer_like.embedding with
    | Some _ -> "ok"
    | None -> "FAILED")
    qa_sampling_us;

  (* (c) HyQSAT *)
  let hybrid =
    Hyqsat.Hybrid_solver.run (Hyqsat.Hybrid_solver.Hybrid Hyqsat.Hybrid_solver.noisy_config) f
  in
  let frontend_us = hybrid.Hyqsat.Hybrid_solver.frontend_time_s *. 1e6 in
  let per_call_embed_us =
    frontend_us /. float_of_int (max 1 hybrid.Hyqsat.Hybrid_solver.qa_calls)
  in
  Printf.printf
    "%-28s total %10.1f us   (embed %.1f us/call, QA %.0f us, CDCL %d iterations)\n" "HyQSAT"
    (Hyqsat.Hybrid_solver.end_to_end_time_s hybrid *. 1e6)
    per_call_embed_us hybrid.Hyqsat.Hybrid_solver.qa_time_us
    hybrid.Hyqsat.Hybrid_solver.iterations
