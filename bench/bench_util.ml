(* Shared helpers for the experiment harness. *)

type ctx = {
  scale : Workload.Spec.scale;
  seed : int;
  problems : int; (* instances per benchmark *)
  trace : string option; (* JSONL trace output for experiments that support it *)
  fault_rate : float; (* QA fault-injection rate for experiments that support it *)
}

let default_ctx = { scale = `Small; seed = 1; problems = 3; trace = None; fault_rate = 0. }

let rng_of ctx salt = Stats.Rng.create ~seed:(ctx.seed + (salt * 7919))

let header title paper_claim =
  Printf.printf "\n==== %s ====\n" title;
  Printf.printf "paper: %s\n\n" paper_claim

let hr () = print_endline (String.make 78 '-')

(* wall-clock of a thunk, in seconds *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

(* median of a non-empty list: the right estimator when comparing two
   measured paths (e.g. wire vs direct) — the min of each path can come
   from different machine states and their difference go negative *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Float.nan
  else if n land 1 = 1 then a.(n / 2)
  else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* committed BENCH_*.json files live at the repo root (nearest ancestor
   with a dune-project), wherever the bench was launched from *)
let out_path name =
  let rec up d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent
  in
  match up (Sys.getcwd ()) with None -> name | Some root -> Filename.concat root name

(* Bechamel micro-benchmark: returns estimated ns/run *)
let bechamel_ns ?(quota_s = 0.25) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~quota:(Time.second quota_s) ~stabilize:false () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  match Analyze.OLS.estimates (Hashtbl.find results name) with
  | Some (est :: _) -> est
  | _ -> Float.nan

let geomean xs = Stats.Descriptive.geomean (Array.of_list xs)
let mean xs = Stats.Descriptive.mean (Array.of_list xs)
let fmin xs = Stats.Descriptive.min (Array.of_list xs)
let fmax xs = Stats.Descriptive.max (Array.of_list xs)

let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false

(* reduction ratio, guarding zero denominators *)
let ratio a b = float_of_int a /. float_of_int (max 1 b)
