(* Batch-throughput benchmark for the service layer (no paper analogue):
   solve a uf50 batch through Service.Batch at increasing worker counts and
   report wall-clock, throughput and speedup over 1 worker, plus one
   portfolio race to show first-winner cancellation.

   On a W-core machine the batch speedup at `--jobs W` should exceed 2x for
   W >= 4; on fewer cores the scaling columns simply saturate. *)

let uf50_batch (ctx : Bench_util.ctx) count =
  let rng = Bench_util.rng_of ctx 87 in
  List.init count (fun i ->
      let f = Workload.Uniform.uf rng 50 in
      Service.Job.make ~name:(Printf.sprintf "uf50-%02d" i) ~seed:(ctx.seed + (101 * i)) ~id:i f)

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Batch & portfolio service throughput"
    "no paper analogue; service-layer scaling on uf50 batches";
  (* small scale tracks --problems so CI can run a quick traced smoke
     (e.g. --problems 2 gives a 10-instance batch) *)
  let count =
    match ctx.scale with `Paper -> 40 | `Small -> min 20 (max 10 (5 * ctx.problems))
  in
  let jobs = uf50_batch ctx count in
  let obs =
    match ctx.trace with
    | None -> Obs.Ctx.null
    | Some path ->
        let o = Obs.Ctx.create () in
        Obs.Ctx.attach o (Obs.Export.file_jsonl path);
        Obs.Ctx.attach o (Obs.Export.console_tree Format.std_formatter);
        Printf.printf "tracing to %s\n" path;
        o
  in
  let cores = Domain.recommended_domain_count () in
  let worker_counts =
    List.sort_uniq compare [ 1; 2; min 4 cores; cores ] |> List.filter (fun w -> w >= 1)
  in
  Printf.printf "%d uf50 instances, %d core(s) recommended\n\n" count cores;
  Printf.printf "%8s %10s %12s %9s\n" "workers" "wall(s)" "jobs/s" "speedup";
  Bench_util.hr ();
  let base_wall = ref None in
  List.iter
    (fun workers ->
      let members ~seed = Service.Batch.solo "minisat" ~seed in
      let summary, _ = Service.Batch.run ~workers ~obs ~members jobs in
      let wall = summary.Service.Telemetry.wall_time_s in
      if !base_wall = None then base_wall := Some wall;
      let speedup = match !base_wall with Some b when wall > 0. -> b /. wall | _ -> 1. in
      Printf.printf "%8d %10.3f %12.1f %8.2fx\n" workers wall
        summary.Service.Telemetry.throughput_jps speedup)
    worker_counts;
  Bench_util.hr ();
  (* one portfolio race, to exercise cancellation end to end *)
  let f = Workload.Uniform.uf (Bench_util.rng_of ctx 88) 50 in
  let members = Service.Portfolio.members_named ~grid:4 ~seed:ctx.seed [ "minisat"; "kissat"; "walksat" ] in
  let report = Service.Portfolio.race ~obs members f in
  let winner =
    match report.Service.Portfolio.winner with
    | Some w -> w.Service.Portfolio.member
    | None -> "(none)"
  in
  Printf.printf "\nportfolio race on one uf50: winner=%s wall=%.3f s\n" winner
    report.Service.Portfolio.wall_time_s;
  List.iter
    (fun (m : Service.Portfolio.member_report) ->
      Printf.printf "  %-10s %-8s %8d iters %s\n" m.Service.Portfolio.member
        (match m.Service.Portfolio.stats.Service.Portfolio.result with
        | Cdcl.Solver.Sat _ -> "sat"
        | Cdcl.Solver.Unsat -> "unsat"
        | Cdcl.Solver.Unknown _ -> "unknown")
        m.Service.Portfolio.stats.Service.Portfolio.iterations
        (if m.Service.Portfolio.cancelled then "(cancelled)" else ""))
    report.Service.Portfolio.members;
  Obs.Ctx.close obs
