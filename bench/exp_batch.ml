(* Batch-throughput benchmark for the service layer (no paper analogue):
   solve a uf50 batch through Service.Batch at increasing worker counts and
   report wall-clock, throughput and speedup over 1 worker, plus one
   portfolio race to show first-winner cancellation.

   On a W-core machine the batch speedup at `--jobs W` should exceed 2x for
   W >= 4; on fewer cores the scaling columns simply saturate. *)

let uf50_batch (ctx : Bench_util.ctx) count =
  let rng = Bench_util.rng_of ctx 87 in
  List.init count (fun i ->
      let f = Workload.Uniform.uf rng 50 in
      Service.Job.make ~name:(Printf.sprintf "uf50-%02d" i) ~seed:(ctx.seed + (101 * i)) ~id:i f)

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Batch & portfolio service throughput"
    "no paper analogue; service-layer scaling on uf50 batches";
  (* small scale tracks --problems so CI can run a quick traced smoke
     (e.g. --problems 2 gives a 10-instance batch) *)
  let count =
    match ctx.scale with `Paper -> 40 | `Small -> min 20 (max 10 (5 * ctx.problems))
  in
  let jobs = uf50_batch ctx count in
  let obs =
    match ctx.trace with
    | None -> Obs.Ctx.null
    | Some path ->
        let o = Obs.Ctx.create () in
        Obs.Ctx.attach o (Obs.Export.file_jsonl path);
        Obs.Ctx.attach o (Obs.Export.console_tree Format.std_formatter);
        Printf.printf "tracing to %s\n" path;
        o
  in
  let cores = Domain.recommended_domain_count () in
  let worker_counts =
    List.sort_uniq compare [ 1; 2; min 4 cores; cores ] |> List.filter (fun w -> w >= 1)
  in
  Printf.printf "%d uf50 instances, %d core(s) recommended\n\n" count cores;
  Printf.printf "%8s %10s %12s %9s\n" "workers" "wall(s)" "jobs/s" "speedup";
  Bench_util.hr ();
  let base_wall = ref None in
  List.iter
    (fun workers ->
      let members = Service.Batch.solo "minisat" in
      let summary, _ = Service.Batch.run ~workers ~obs ~members jobs in
      let wall = summary.Service.Telemetry.wall_time_s in
      if !base_wall = None then base_wall := Some wall;
      let speedup = match !base_wall with Some b when wall > 0. -> b /. wall | _ -> 1. in
      Printf.printf "%8d %10.3f %12.1f %8.2fx\n" workers wall
        summary.Service.Telemetry.throughput_jps speedup)
    worker_counts;
  Bench_util.hr ();
  (* one portfolio race, to exercise cancellation end to end *)
  let f = Workload.Uniform.uf (Bench_util.rng_of ctx 88) 50 in
  let members = Service.Portfolio.members_named ~grid:4 ~seed:ctx.seed [ "minisat"; "kissat"; "walksat" ] in
  let report = Service.Portfolio.race ~obs members f in
  let winner =
    match report.Service.Portfolio.winner with
    | Some w -> w.Service.Portfolio.member
    | None -> "(none)"
  in
  Printf.printf "\nportfolio race on one uf50: winner=%s wall=%.3f s\n" winner
    report.Service.Portfolio.wall_time_s;
  List.iter
    (fun (m : Service.Portfolio.member_report) ->
      Printf.printf "  %-10s %-8s %8d iters %s\n" m.Service.Portfolio.member
        (match m.Service.Portfolio.stats.Service.Portfolio.result with
        | Cdcl.Solver.Sat _ -> "sat"
        | Cdcl.Solver.Unsat -> "unsat"
        | Cdcl.Solver.Unknown _ -> "unknown")
        m.Service.Portfolio.stats.Service.Portfolio.iterations
        (if m.Service.Portfolio.cancelled then "(cancelled)" else ""))
    report.Service.Portfolio.members;
  (* fault-injection resilience smoke (CI runs this at --qa-fault-rate 0.3):
     certified hybrid jobs against a faulty supervised backend must still
     return only certified-correct answers — failed QA calls degrade the
     warm-up to pure CDCL, they never corrupt the answer *)
  if ctx.fault_rate > 0. then begin
    Printf.printf "\nfault-injection smoke: rate=%.2f, certified hybrid on uf30\n"
      ctx.fault_rate;
    let smoke_obs = if Obs.Ctx.is_null obs then Obs.Ctx.create () else obs in
    let rng = Bench_util.rng_of ctx 89 in
    let qa =
      {
        Service.Job.default_qa with
        Service.Job.backend =
          {
            Anneal.Backend.default_spec with
            Anneal.Backend.faults =
              {
                Anneal.Backend.default_faults with
                Anneal.Backend.fail_rate = ctx.fault_rate;
                fault_seed = ctx.seed + 13;
              };
          };
      }
    in
    let smoke_jobs =
      List.init
        (max 4 ctx.problems)
        (fun i ->
          let f = Workload.Uniform.uf rng 30 in
          Service.Job.make ~name:(Printf.sprintf "fault-uf30-%02d" i) ~certify:true ~qa
            ~seed:(ctx.seed + (211 * i)) ~id:i f)
    in
    let members = Service.Batch.solo ~log_proof:true "hybrid" in
    let summary, results = Service.Batch.run ~workers:2 ~obs:smoke_obs ~members smoke_jobs in
    let records = List.map (fun r -> r.Service.Batch.record) results in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
    let failures = sum (fun r -> r.Service.Telemetry.qa_failures) in
    let degraded = sum (fun r -> r.Service.Telemetry.degraded) in
    let withheld =
      List.filter (fun r -> r.Service.Telemetry.outcome = "unknown:cert-failed") records
    in
    Printf.printf "  jobs %d: sat %d / unsat %d / unknown %d · qa_failures %d · degraded %d\n"
      summary.Service.Telemetry.jobs summary.Service.Telemetry.sat
      summary.Service.Telemetry.unsat summary.Service.Telemetry.unknown failures degraded;
    let fail msg =
      Printf.printf "FAULT SMOKE FAILED: %s\n%!" msg;
      exit 1
    in
    if withheld <> [] then
      fail (Printf.sprintf "%d answers failed certification under faults" (List.length withheld));
    if summary.Service.Telemetry.unknown > 0 then
      fail "faults turned decidable jobs into unknowns";
    if failures = 0 then fail "fault injector never fired (rate > 0)";
    (* the supervision counters must be visible in the Prometheus export
       (and hence in the JSONL trace, whose sinks see the same metrics) *)
    let prom = Obs.Export.prometheus_string (Obs.Ctx.snapshot smoke_obs) in
    let contains sub =
      let n = String.length prom and m = String.length sub in
      let rec go i = i + m <= n && (String.sub prom i m = sub || go (i + 1)) in
      go 0
    in
    List.iter
      (fun metric -> if not (contains metric) then fail (metric ^ " missing from metrics"))
      [ "qa_backend_calls_total"; "qa_failures_total"; "qa_degraded_total" ];
    Printf.printf "  ok: every answer certified; supervision counters exported\n";
    if Obs.Ctx.is_null obs then Obs.Ctx.close smoke_obs
  end;
  Obs.Ctx.close obs
