(* CDCL core throughput: the arena solver (flat clause arena, packed
   blocker watch lists, allocation-free propagate) against the frozen
   pre-arena baseline [Cdcl.Reference] on uniform-random 3-SAT.

   Both engines run the same blocker-literal algorithm, so per instance
   they make bit-identical searches: before timing anything the bench
   asserts equal answers and equal [Solver.stats] and exits non-zero on
   any divergence.  The speedup column therefore isolates the clause-DB
   representation — same propagation count, different seconds.

   The absolute gate is a committed floor on the arena engine's
   propagations/sec (min over timing trials, summed across instances).
   The floor is set ~3x below the rate measured on a dev laptop so that
   slower CI machines pass with margin; the gate fires at floor/2 and
   exits 1 (a genuine representation regression shows up as an
   order-of-magnitude drop, not a 2x one). *)

let floor_props_per_sec = 1.2e6

(* instances that solve almost immediately measure harness overhead, not
   propagation throughput; skip them (selection is deterministic: it
   depends only on the conflict count, identical in both engines) *)
let min_conflicts = 200

type row = {
  name : string;
  vars : int;
  clauses : int;
  answer : string;
  conflicts : int;
  propagations : int;
  wall_arena : float;
  wall_reference : float;
}

let answer_kind = function
  | Cdcl.Solver.Sat _ -> "sat"
  | Cdcl.Solver.Unsat -> "unsat"
  | Cdcl.Solver.Unknown _ -> "unknown"

let run (ctx : Bench_util.ctx) =
  let trials, sizes =
    match ctx.Bench_util.scale with
    | `Paper -> (5, [ (150, 4); (250, 2) ])
    | `Small -> (3, [ (150, 2); (250, 1) ])
  in
  let max_conflicts = 20_000 in
  let config = Cdcl.Config.minisat_like in
  Bench_util.header "bench cdcl — arena CDCL core vs frozen pre-arena baseline"
    "flat clause arena + blocker watches: same search, fewer seconds";
  Printf.printf "%-10s %9s %8s %12s %12s %12s %8s\n" "instance" "conflicts"
    "answer" "arena pr/s" "ref pr/s" "confl/s" "speedup";
  Bench_util.hr ();
  let rows = ref [] in
  let salt = ref 0 in
  List.iter
    (fun (uf_n, count) ->
      for inst = 1 to count do
        (* advance through seeds until the instance is hard enough to time *)
        let rec pick () =
          incr salt;
          let f =
            Workload.Uniform.uf (Bench_util.rng_of ctx (900 + !salt)) uf_n
          in
          let s = Cdcl.Solver.create ~config f in
          let a = Cdcl.Solver.solve ~max_conflicts s in
          let st = Cdcl.Solver.stats s in
          if st.Cdcl.Solver.conflicts < min_conflicts then pick ()
          else (f, a, st)
        in
        let f, a_ans, a_st = pick () in
        let name = Printf.sprintf "uf%d-%d" uf_n inst in
        let run_arena () =
          let s = Cdcl.Solver.create ~config f in
          let a = Cdcl.Solver.solve ~max_conflicts s in
          (a, Cdcl.Solver.stats s)
        in
        let run_reference () =
          let r = Cdcl.Reference.create ~config f in
          let a = Cdcl.Reference.solve ~max_conflicts r in
          (a, Cdcl.Reference.stats r)
        in
        (* correctness first: identical answer and identical stats record,
           otherwise the timing comparison is meaningless *)
        let r_ans, r_st = run_reference () in
        if answer_kind a_ans <> answer_kind r_ans || a_st <> r_st then begin
          Printf.eprintf
            "bench cdcl: DIVERGENCE on %s — arena %s (%d conflicts, %d props) \
             vs reference %s (%d conflicts, %d props); engines must search \
             identically\n"
            name (answer_kind a_ans) a_st.Cdcl.Solver.conflicts
            a_st.Cdcl.Solver.propagations (answer_kind r_ans)
            r_st.Cdcl.Solver.conflicts r_st.Cdcl.Solver.propagations;
          exit 1
        end;
        (* timing: the checks above double as untimed warmup; min-of-trials
           (counts are deterministic, so min wall = peak rate) *)
        let time_min f =
          let best = ref infinity in
          for _ = 1 to trials do
            let _, dt = Bench_util.wall (fun () -> ignore (f ())) in
            if dt < !best then best := dt
          done;
          !best
        in
        let wall_arena = time_min run_arena in
        let wall_reference = time_min run_reference in
        let props = a_st.Cdcl.Solver.propagations in
        let confl = a_st.Cdcl.Solver.conflicts in
        Printf.printf "%-10s %9d %8s %12.3e %12.3e %12.3e %7.2fx\n" name confl
          (answer_kind a_ans)
          (float_of_int props /. wall_arena)
          (float_of_int props /. wall_reference)
          (float_of_int confl /. wall_arena)
          (wall_reference /. wall_arena);
        rows :=
          {
            name;
            vars = Sat.Cnf.num_vars f;
            clauses = Sat.Cnf.num_clauses f;
            answer = answer_kind a_ans;
            conflicts = confl;
            propagations = props;
            wall_arena;
            wall_reference;
          }
          :: !rows
      done)
    sizes;
  let rows = List.rev !rows in
  let total_props =
    List.fold_left (fun acc r -> acc + r.propagations) 0 rows
  in
  let total_confl = List.fold_left (fun acc r -> acc + r.conflicts) 0 rows in
  let sum_arena = List.fold_left (fun acc r -> acc +. r.wall_arena) 0. rows in
  let sum_ref =
    List.fold_left (fun acc r -> acc +. r.wall_reference) 0. rows
  in
  let arena_pps = float_of_int total_props /. sum_arena in
  let ref_pps = float_of_int total_props /. sum_ref in
  let speedup = sum_ref /. sum_arena in
  Bench_util.hr ();
  Printf.printf
    "aggregate: arena %.3e props/s (%.3e conflicts/s), reference %.3e props/s \
     — speedup %.2fx  [floor %.1e, gate at %.1e]\n"
    arena_pps
    (float_of_int total_confl /. sum_arena)
    ref_pps speedup floor_props_per_sec (floor_props_per_sec /. 2.);
  (* JSON artifact *)
  let fin x = if Float.is_finite x then x else 0. in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "{\n  \"schema\": \"hyqsat/bench-cdcl/v1\",\n";
  Printf.bprintf buf "  \"scale\": \"%s\",\n"
    (match ctx.Bench_util.scale with `Paper -> "paper" | `Small -> "small");
  Printf.bprintf buf "  \"max_conflicts\": %d,\n" max_conflicts;
  Printf.bprintf buf "  \"trials\": %d,\n" trials;
  Printf.bprintf buf "  \"floor_props_per_sec\": %.3e,\n" floor_props_per_sec;
  Printf.bprintf buf "  \"instances\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    { \"name\": \"%s\", \"vars\": %d, \"clauses\": %d, \"answer\": \
         \"%s\",\n\
        \      \"conflicts\": %d, \"propagations\": %d,\n\
        \      \"wall_arena_s\": %.6f, \"wall_reference_s\": %.6f,\n\
        \      \"arena_props_per_sec\": %.3e, \"reference_props_per_sec\": \
         %.3e,\n\
        \      \"speedup\": %.3f }%s\n"
        r.name r.vars r.clauses r.answer r.conflicts r.propagations
        r.wall_arena r.wall_reference
        (fin (float_of_int r.propagations /. r.wall_arena))
        (fin (float_of_int r.propagations /. r.wall_reference))
        (fin (r.wall_reference /. r.wall_arena))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf
    "  \"aggregate\": { \"propagations\": %d, \"conflicts\": %d,\n\
    \    \"arena_props_per_sec\": %.3e, \"reference_props_per_sec\": %.3e,\n\
    \    \"arena_conflicts_per_sec\": %.3e, \"speedup\": %.3f }\n}\n"
    total_props total_confl (fin arena_pps) (fin ref_pps)
    (fin (float_of_int total_confl /. sum_arena))
    (fin speedup);
  let path = Bench_util.out_path "BENCH_cdcl.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n" path;
  if arena_pps < floor_props_per_sec /. 2. then begin
    Printf.eprintf
      "bench cdcl: PERF REGRESSION — arena propagation rate %.3e props/s is \
       below half the committed floor (%.3e); the flat-arena representation \
       has regressed\n"
      arena_pps floor_props_per_sec;
    exit 1
  end
