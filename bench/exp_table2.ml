(* Table II: end-to-end running time of MiniSAT-like and KisSAT-like CDCL on
   the host CPU vs HyQSAT on the (noisy) simulated D-Wave 2000Q, plus the
   iteration variance (noisy QA iterations / noise-free iterations).
   Paper: speedups 1.48x-12.62x on most benchmarks, variance near 1. *)

module Hybrid = Hyqsat.Hybrid_solver

let run (ctx : Bench_util.ctx) =
  Bench_util.header
    "Table II — end-to-end time: CDCL on CPU vs HyQSAT on noisy simulated 2000Q"
    "HyQSAT wins 12/14 vs MiniSAT and 13/14 vs KisSAT (1.48x-12.62x); #iteration variance ~1";
  Printf.printf "%-5s %11s %11s %11s %11s %9s %9s %7s\n" "id" "minisat(ms)" "kissat(ms)"
    "hyqsat(ms)" "pipelnd(ms)" "spd(mini)" "spd(kis)" "it-var";
  Bench_util.hr ();
  let cap = Exp_common.iteration_cap ctx in
  List.iter
    (fun spec ->
      let fs = Exp_common.instances ctx spec in
      let mini_t = ref [] and kis_t = ref [] and hyq_t = ref [] and pipe_t = ref []
      and itvar = ref [] in
      List.iter
        (fun f ->
          let mini = Exp_common.solve_classic ~config:Cdcl.Config.minisat_like f in
          let kis = Exp_common.solve_classic ~config:Cdcl.Config.kissat_like f in
          let noisefree =
            Exp_common.solve_hybrid
              ~config:(Exp_common.hybrid_config ctx.Bench_util.seed)
              ~max_iterations:cap f
          in
          let noisy =
            Exp_common.solve_hybrid
              ~config:
                (Exp_common.hybrid_config ~noise:Anneal.Noise.default_2000q
                   ctx.Bench_util.seed)
              ~max_iterations:cap f
          in
          mini_t := mini.Hybrid.cdcl_time_s :: !mini_t;
          kis_t := kis.Hybrid.cdcl_time_s :: !kis_t;
          hyq_t := Hybrid.end_to_end_time_s noisy :: !hyq_t;
          pipe_t := Hybrid.end_to_end_pipelined_s noisy :: !pipe_t;
          itvar :=
            Bench_util.ratio noisy.Hybrid.iterations noisefree.Hybrid.iterations :: !itvar)
        fs;
      let mini = Bench_util.mean !mini_t *. 1e3 in
      let kis = Bench_util.mean !kis_t *. 1e3 in
      let hyq = Bench_util.mean !hyq_t *. 1e3 in
      let pipe = Bench_util.mean !pipe_t *. 1e3 in
      Printf.printf "%-5s %11.3f %11.3f %11.3f %11.3f %9.2f %9.2f %7.2f\n" spec.Workload.Spec.id
        mini kis hyq pipe (mini /. pipe) (kis /. pipe)
        (Bench_util.mean !itvar))
    Workload.Spec.table1
