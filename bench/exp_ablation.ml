(* Extra ablations beyond the paper's figures (DESIGN.md §5): the design
   choices of this implementation that the paper leaves implicit —
   warm-up budget, annealer-consultation period, coefficient adjustment
   inside the solving loop, and the machine-side sample post-processing. *)

module Hybrid = Hyqsat.Hybrid_solver

let uf_suite (ctx : Bench_util.ctx) =
  let sizes = match ctx.Bench_util.scale with `Paper -> [ 150; 200 ] | `Small -> [ 100; 150 ] in
  List.concat_map
    (fun n ->
      List.init ctx.Bench_util.problems (fun i ->
          Workload.Uniform.uf (Bench_util.rng_of ctx (Hashtbl.hash (n, i))) n))
    sizes

let geo_reduction ctx fs config =
  Bench_util.geomean
    (List.map
       (fun f ->
         let classic = Exp_common.solve_classic f in
         let hybrid =
           Exp_common.solve_hybrid ~config ~max_iterations:(Exp_common.iteration_cap ctx) f
         in
         Exp_common.reduction classic hybrid)
       fs)

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Ablations — warm-up budget, QA period, coefficient adjustment"
    "(not a paper figure; design-choice sensitivity on the AI workload)";
  let fs = uf_suite ctx in
  let base = Exp_common.hybrid_config ctx.Bench_util.seed in
  let rows =
    [
      ("default (warm-up = sqrt K)", base);
      ("warm-up x0.5", { base with Hybrid.warmup_fraction = 0.5 });
      ("warm-up x2", { base with Hybrid.warmup_fraction = 2.0 });
      ("qa period 4", { base with Hybrid.qa_period = 4 });
      ("qa period 16", { base with Hybrid.qa_period = 16 });
      ("no coefficient adjustment", { base with Hybrid.adjust_coefficients = false });
      ("random queue", { base with Hybrid.queue_mode = Hyqsat.Frontend.Random });
      ("noisy device", { base with Hybrid.noise = Anneal.Noise.default_2000q });
    ]
  in
  Printf.printf "%-28s %12s\n" "variant" "geomean red";
  Bench_util.hr ();
  List.iter
    (fun (name, config) -> Printf.printf "%-28s %12.2f\n%!" name (geo_reduction ctx fs config))
    rows
