(* Incremental-solving benchmark (no paper analogue): a correlated query
   stream — one formula, many assumption sets — solved warm through a
   retained solver versus cold with a fresh solver per query.  Writes
   BENCH_incremental.json at the repo root and fails (exit 1) if the
   warm path does not at least match the cold path, either in wall
   clock (median of trials) or in total conflicts (deterministic). *)

module Solver = Cdcl.Solver

let queries_of rng ~n ~count ~k =
  List.init count (fun _ ->
      let vars = Stats.Rng.sample_without_replacement rng k n in
      List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool rng)) vars)

(* answers must be pointwise certified-equivalent between the paths:
   sat-ness under the assumptions is semantic, so any divergence is a
   soundness bug, not a perf artifact *)
let satness = function
  | `Sat _ -> "sat"
  | `Unsat | `Unsat_assumptions -> "unsat-under-assumptions"
  | `Unknown -> "unknown"

let run_cold f queries =
  List.map
    (fun a ->
      let s = Solver.create f in
      let answer = satness (Solver.solve_with_assumptions s a) in
      (answer, (Solver.stats s).Solver.conflicts))
    queries

let run_warm f queries =
  let s = Solver.create f in
  let before = ref 0 in
  List.map
    (fun a ->
      let answer = satness (Solver.solve_with_assumptions s a) in
      let total = (Solver.stats s).Solver.conflicts in
      let delta = total - !before in
      before := total;
      (answer, delta))
    queries

let json_out ~n ~m ~count ~k ~trials ~cold_wall ~warm_wall ~cold_conflicts ~warm_conflicts
    ~speedup =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"bench\": \"incremental\",\n";
  Printf.bprintf b "  \"vars\": %d,\n" n;
  Printf.bprintf b "  \"clauses\": %d,\n" m;
  Printf.bprintf b "  \"queries\": %d,\n" count;
  Printf.bprintf b "  \"assumptions_per_query\": %d,\n" k;
  Printf.bprintf b "  \"trials\": %d,\n" trials;
  Printf.bprintf b "  \"cold_wall_s\": %.6f,\n" cold_wall;
  Printf.bprintf b "  \"warm_wall_s\": %.6f,\n" warm_wall;
  Printf.bprintf b "  \"cold_conflicts\": %d,\n" cold_conflicts;
  Printf.bprintf b "  \"warm_conflicts\": %d,\n" warm_conflicts;
  Printf.bprintf b "  \"warm_speedup\": %.3f\n" speedup;
  Buffer.add_string b "}\n";
  Buffer.contents b

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Incremental solving: warm session vs cold re-solves"
    "no paper analogue; assumption-query stream over one formula";
  (* the instance must be hard enough that a from-scratch solve has real
     cost to amortise: near-threshold uf150 runs hundreds of conflicts per
     cold query, which the retained clause database mostly eliminates *)
  let n, count, trials =
    match ctx.scale with `Paper -> (175, 60, 5) | `Small -> (150, 25, 3)
  in
  let k = 3 in
  let rng = Bench_util.rng_of ctx 77 in
  let f = Workload.Uniform.uf rng n in
  let m = Sat.Cnf.num_clauses f in
  let queries = queries_of rng ~n ~count ~k in
  Printf.printf "uf%d (%d clauses), %d queries x %d assumptions, %d timed trials\n\n" n m
    count k trials;

  (* answers and conflict counts are deterministic: check once *)
  let cold = run_cold f queries in
  let warm = run_warm f queries in
  List.iteri
    (fun i ((ca, _), (wa, _)) ->
      if ca <> wa then begin
        Printf.eprintf "bench incremental: query %d diverges (cold %s, warm %s)\n" i ca wa;
        exit 1
      end)
    (List.combine cold warm);
  let cold_conflicts = List.fold_left (fun acc (_, c) -> acc + c) 0 cold in
  let warm_conflicts = List.fold_left (fun acc (_, c) -> acc + c) 0 warm in

  let time path = snd (Bench_util.wall (fun () -> ignore (path f queries))) in
  let cold_wall = Bench_util.median (List.init trials (fun _ -> time run_cold)) in
  let warm_wall = Bench_util.median (List.init trials (fun _ -> time run_warm)) in
  let speedup = if warm_wall > 0. then cold_wall /. warm_wall else 1. in

  Printf.printf "%8s %12s %14s\n" "path" "wall(s)" "conflicts";
  Bench_util.hr ();
  Printf.printf "%8s %12.4f %14d\n" "cold" cold_wall cold_conflicts;
  Printf.printf "%8s %12.4f %14d\n" "warm" warm_wall warm_conflicts;
  Bench_util.hr ();
  Printf.printf "warm-start speedup: %.2fx wall, %.2fx conflicts (answers agree on all %d queries)\n\n"
    speedup
    (float_of_int cold_conflicts /. float_of_int (max 1 warm_conflicts))
    count;

  let json =
    json_out ~n ~m ~count ~k ~trials ~cold_wall ~warm_wall ~cold_conflicts ~warm_conflicts
      ~speedup
  in
  let path = Bench_util.out_path "BENCH_incremental.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json);
  Printf.printf "wrote %s\n" path;

  (* the gate: retaining the session must never lose to starting over.
     Conflicts are deterministic; wall clock is a median, so a timing
     fluke on a loaded machine only fires together with a conflict tie *)
  if warm_conflicts > cold_conflicts then begin
    Printf.eprintf
      "bench incremental: REGRESSION — warm session spent %d conflicts vs %d cold\n"
      warm_conflicts cold_conflicts;
    exit 1
  end;
  if speedup < 1.0 && warm_conflicts = cold_conflicts then begin
    Printf.eprintf
      "bench incremental: REGRESSION — warm-start speedup %.2fx < 1.0x with no conflict \
       savings\n"
      speedup;
    exit 1
  end
