(* Tests for the HyQSAT core: clause queue, calibration, frontend, backend,
   hybrid solver. *)

module Queue_ = Hyqsat.Clause_queue
module Calibration = Hyqsat.Calibration
module Frontend = Hyqsat.Frontend
module Backend = Hyqsat.Backend
module Hybrid = Hyqsat.Hybrid_solver

let hsolve ?(config = Hybrid.default_config) f = Hybrid.run (Hybrid.Hybrid config) f
let csolve f = Hybrid.run (Hybrid.Classic Cdcl.Config.minisat_like) f

let flat_activity _ = 1.0

(* ---- clause queue ---- *)

let queue_bfs_locality () =
  let r = Testutil.rng 201 in
  let f = Workload.Uniform.uf r 60 in
  let q = Queue_.generate r f ~activity:flat_activity ~limit:30 in
  Alcotest.(check int) "limit respected" 30 (List.length q);
  Alcotest.(check int) "no duplicates" 30 (List.length (List.sort_uniq Int.compare q));
  (* every clause after the head shares a variable with an earlier clause *)
  let rec check_connected seen = function
    | [] -> ()
    | k :: rest ->
        let c = Sat.Cnf.clause f k in
        if seen <> [] then
          Alcotest.(check bool) "BFS connectivity" true
            (List.exists (fun k' -> Sat.Clause.shares_var c (Sat.Cnf.clause f k')) seen);
        check_connected (k :: seen) rest
  in
  check_connected [] q

let queue_head_from_top_activity () =
  let r = Testutil.rng 202 in
  let f = Workload.Uniform.uf r 40 in
  (* one clause vastly more active than the rest: with top_k = 1 it must be
     the head every time *)
  let hot = 17 in
  let activity k = if k = hot then 100.0 else 1.0 in
  for _ = 1 to 5 do
    match Queue_.generate ~top_k:1 r f ~activity ~limit:10 with
    | head :: _ -> Alcotest.(check int) "hot clause first" hot head
    | [] -> Alcotest.fail "empty queue"
  done

let queue_var_budget () =
  let r = Testutil.rng 203 in
  let f = Workload.Uniform.uf r 100 in
  let q = Queue_.generate ~var_budget:20 r f ~activity:flat_activity ~limit:1000 in
  let vars =
    List.sort_uniq Int.compare
      (List.concat_map (fun k -> Sat.Clause.vars (Sat.Cnf.clause f k)) q)
  in
  Alcotest.(check bool) "var budget respected" true (List.length vars <= 20);
  Alcotest.(check bool) "queue nonempty" true (q <> [])

let queue_budget_improves_density () =
  let r = Testutil.rng 204 in
  let f = Workload.Uniform.uf r 150 in
  let q = Queue_.generate ~var_budget:64 r f ~activity:flat_activity ~limit:500 in
  let vars =
    List.sort_uniq Int.compare
      (List.concat_map (fun k -> Sat.Clause.vars (Sat.Cnf.clause f k)) q)
  in
  (* the budgeted queue packs more clauses than variables *)
  Alcotest.(check bool) "clauses > vars" true (List.length q > List.length vars)

let queue_random_mode () =
  let r = Testutil.rng 205 in
  let f = Workload.Uniform.uf r 50 in
  let q = Queue_.generate_random r f ~limit:25 in
  Alcotest.(check int) "size" 25 (List.length q);
  Alcotest.(check int) "distinct" 25 (List.length (List.sort_uniq Int.compare q))

let queue_empty_formula () =
  let f = Sat.Cnf.make ~num_vars:3 [] in
  let r = Testutil.rng 206 in
  Alcotest.(check (list int)) "empty" []
    (Queue_.generate r f ~activity:flat_activity ~limit:10)

(* ---- calibration ---- *)

let calibration_paper_default () =
  let c = Calibration.paper_default in
  Alcotest.(check (float 1e-9)) "sat cut" 4.5 c.Calibration.partition.Stats.Naive_bayes.sat_cut;
  Alcotest.(check (float 1e-9)) "unsat cut" 8.0 c.Calibration.partition.Stats.Naive_bayes.unsat_cut

let calibration_separates_classes () =
  let rng = Testutil.rng 207 in
  let g = Chimera.Graph.standard_2000q () in
  let c = Calibration.calibrate ~problems:8 ~noise:Anneal.Noise.noise_free rng g in
  Alcotest.(check bool) "collected sat" true (Array.length c.Calibration.sat_energies >= 4);
  Alcotest.(check bool) "collected unsat" true (Array.length c.Calibration.unsat_energies >= 4);
  let mean_sat = Stats.Descriptive.mean c.Calibration.sat_energies in
  let mean_unsat = Stats.Descriptive.mean c.Calibration.unsat_energies in
  Alcotest.(check bool) "unsat energies higher" true (mean_unsat > mean_sat)

(* ---- frontend ---- *)

let frontend_prepares () =
  let rng = Testutil.rng 208 in
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.uf rng 80 in
  match Frontend.prepare rng g f ~activity:flat_activity with
  | None -> Alcotest.fail "frontend produced nothing"
  | Some p ->
      Alcotest.(check bool) "clauses embedded" true (p.Frontend.clause_indices <> []);
      Alcotest.(check bool) "not all embedded (344 clauses)" false p.Frontend.all_clauses_embedded;
      (* job validates against its own edges *)
      (match
         Embed.Embedding.validate p.Frontend.job.Anneal.Machine.embedding
           ~edges:p.Frontend.job.Anneal.Machine.edges
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* vars_involved are exactly the variables of the embedded clauses *)
      let expect =
        List.sort_uniq Int.compare
          (List.concat_map (fun k -> Sat.Clause.vars (Sat.Cnf.clause f k)) p.Frontend.clause_indices)
      in
      Alcotest.(check (list int)) "vars involved" expect p.Frontend.vars_involved

let frontend_small_formula_fully_embeds () =
  let rng = Testutil.rng 209 in
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.generate rng ~num_vars:15 ~num_clauses:25 in
  match Frontend.prepare rng g f ~activity:flat_activity with
  | None -> Alcotest.fail "nothing prepared"
  | Some p -> Alcotest.(check bool) "fully embedded" true p.Frontend.all_clauses_embedded

let frontend_cache_hits_share_embedding () =
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.uf (Testutil.rng 210) 80 in
  let cache = Hyqsat.Frontend.create_cache g in
  let ctx = Obs.Ctx.create () in
  let prep seed = Frontend.prepare ~obs:ctx ~cache (Testutil.rng seed) g f ~activity:flat_activity in
  (* the same rng seed regenerates the same clause queue: second call hits *)
  (match (prep 211, prep 211) with
  | Some a, Some b ->
      Alcotest.(check (list int)) "same queue" a.Frontend.clause_indices b.Frontend.clause_indices;
      (* the Chimera placement is shared, not recomputed or copied *)
      Alcotest.(check bool) "embedding physically shared" true
        (a.Frontend.job.Anneal.Machine.embedding == b.Frontend.job.Anneal.Machine.embedding)
  | _ -> Alcotest.fail "prepare produced nothing");
  Alcotest.(check (pair int int)) "one miss then one hit" (1, 1)
    (Hyqsat.Frontend.cache_stats cache);
  let metric name =
    match List.assoc_opt name (Obs.Ctx.snapshot ctx) with
    | Some (Obs.Ctx.Counter { count }) -> int_of_float count
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "hit counter" 1 (metric "embed_cache_hits_total");
  Alcotest.(check int) "miss counter" 1 (metric "embed_cache_misses_total");
  Obs.Ctx.close ctx;
  (* a different seed draws a different conflict-hot queue: a miss *)
  ignore (prep 212);
  Alcotest.(check (pair int int)) "new structure misses" (1, 2)
    (Hyqsat.Frontend.cache_stats cache)

let frontend_cache_bound_to_graph () =
  let g1 = Chimera.Graph.create ~rows:4 ~cols:4 in
  let g2 = Chimera.Graph.create ~rows:4 ~cols:4 in
  let cache = Hyqsat.Frontend.create_cache g1 in
  let f = Workload.Uniform.generate (Testutil.rng 213) ~num_vars:10 ~num_clauses:15 in
  Alcotest.(check bool) "other graph rejected" true
    (try
       ignore (Frontend.prepare ~cache (Testutil.rng 1) g2 f ~activity:flat_activity);
       false
     with Invalid_argument _ -> true)

(* ---- backend ---- *)

let backend_classification () =
  let c = Calibration.paper_default in
  Alcotest.(check bool) "zero energy + all -> S1" true
    (Backend.classify c ~all_embedded:true ~energy:0.0 = Backend.S1_solved);
  Alcotest.(check bool) "zero energy partial -> S2" true
    (Backend.classify c ~all_embedded:false ~energy:0.0 = Backend.S2_keep_assignment);
  Alcotest.(check bool) "energy 2 -> S2" true
    (Backend.classify c ~all_embedded:true ~energy:2.0 = Backend.S2_keep_assignment);
  Alcotest.(check bool) "energy 6 -> S3" true
    (Backend.classify c ~all_embedded:true ~energy:6.0 = Backend.S3_none);
  Alcotest.(check bool) "energy 12 -> S4" true
    (Backend.classify c ~all_embedded:true ~energy:12.0 = Backend.S4_reach_conflict)

let backend_strategy1_verifies () =
  (* an S1 sample that does NOT satisfy the formula must not be trusted *)
  let rng = Testutil.rng 210 in
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.generate rng ~num_vars:12 ~num_clauses:20 in
  match Frontend.prepare rng g f ~activity:flat_activity with
  | None -> Alcotest.fail "nothing prepared"
  | Some p ->
      let solver = Cdcl.Solver.create f in
      (* fabricate a lying outcome: energy 0 with an all-false assignment *)
      let fake =
        {
          Anneal.Machine.assignment = List.map (fun v -> (v, false)) p.Frontend.vars_involved;
          energy = 0.0;
          physical_energy = 0.0;
          chain_breaks = 0;
          time_us = 130.;
        }
      in
      let applied = Backend.apply Calibration.paper_default solver f p fake in
      (match applied.Backend.solved with
      | Some model ->
          Alcotest.(check bool) "only a real model is reported" true
            (Testutil.check_model f model)
      | None -> ())

let backend_ablation_masks () =
  let c = Calibration.paper_default in
  let rng = Testutil.rng 211 in
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.generate rng ~num_vars:12 ~num_clauses:20 in
  match Frontend.prepare rng g f ~activity:flat_activity with
  | None -> Alcotest.fail "nothing prepared"
  | Some p ->
      let solver = Cdcl.Solver.create f in
      let outcome =
        {
          Anneal.Machine.assignment = List.map (fun v -> (v, false)) p.Frontend.vars_involved;
          energy = 12.0;
          physical_energy = 0.0;
          chain_breaks = 0;
          time_us = 130.;
        }
      in
      let off = { Backend.s1 = true; s2 = true; s4 = false } in
      let applied = Backend.apply ~enabled:off c solver f p outcome in
      Alcotest.(check bool) "s4 disabled -> S3" true
        (applied.Backend.strategy = Backend.S3_none)

(* ---- hybrid solver ---- *)

let hybrid_agrees_with_classic () =
  let rng = Testutil.rng 212 in
  for _ = 1 to 6 do
    let f = Workload.Uniform.generate rng ~num_vars:25 ~num_clauses:100 in
    let classic = csolve f in
    let hybrid = hsolve f in
    let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false in
    Alcotest.(check bool) "same satisfiability" (is_sat classic.Hybrid.result)
      (is_sat hybrid.Hybrid.result);
    match hybrid.Hybrid.result with
    | Cdcl.Solver.Sat m -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
    | _ -> ()
  done

let hybrid_agrees_under_noise () =
  (* soundness under heavy noise: hints may be garbage, answers must not *)
  let rng = Testutil.rng 213 in
  let config = Hybrid.make_config ~noise:(Anneal.Noise.bit_flip_only 0.4) () in
  for _ = 1 to 4 do
    let f = Workload.Uniform.generate rng ~num_vars:20 ~num_clauses:85 in
    let classic = csolve f in
    let hybrid = hsolve ~config f in
    let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false in
    Alcotest.(check bool) "noise never changes the answer" (is_sat classic.Hybrid.result)
      (is_sat hybrid.Hybrid.result)
  done

let hybrid_unsat_detection () =
  let rng = Testutil.rng 214 in
  let f = Workload.Circuit_fault.generate rng ~inputs:6 ~gates:20 in
  let hybrid = hsolve f in
  Alcotest.(check bool) "unsat" true (hybrid.Hybrid.result = Cdcl.Solver.Unsat)

let hybrid_report_consistency () =
  let rng = Testutil.rng 215 in
  let f = Workload.Uniform.uf rng 40 in
  let r = hsolve f in
  Alcotest.(check bool) "qa calls bounded by warmup" true
    (r.Hybrid.qa_calls <= r.Hybrid.warmup_iterations + 1);
  Alcotest.(check int) "strategy uses sum to qa calls" r.Hybrid.qa_calls
    (Array.fold_left ( + ) 0 r.Hybrid.strategy_uses);
  Alcotest.(check bool) "qa time positive iff calls" true
    ((r.Hybrid.qa_calls > 0) = (r.Hybrid.qa_time_us > 0.));
  Alcotest.(check bool) "end-to-end >= cdcl time" true
    (Hybrid.end_to_end_time_s r >= r.Hybrid.cdcl_time_s)

let hybrid_strategy1_shortcut () =
  (* a formula small enough to fully embed can be finished by strategy 1 *)
  let hit = ref false in
  for seed = 1 to 6 do
    let rng = Testutil.rng (216 + seed) in
    let f = Workload.Uniform.generate rng ~num_vars:18 ~num_clauses:36 in
    let r = hsolve f in
    if r.Hybrid.strategy_uses.(0) > 0 then begin
      hit := true;
      match r.Hybrid.result with
      | Cdcl.Solver.Sat m -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
      | _ -> Alcotest.fail "strategy 1 must imply SAT"
    end
  done;
  Alcotest.(check bool) "strategy 1 fires on small instances" true !hit

let estimate_iterations_positive =
  QCheck.Test.make ~name:"iteration estimate positive and monotone-ish" ~count:50
    (QCheck.pair (QCheck.int_range 10 200) (QCheck.int_range 1 4))
    (fun (n, ratio) ->
      let f =
        Sat.Cnf.make ~num_vars:n
          (List.init (n * ratio) (fun i ->
               Sat.Clause.make [ Sat.Lit.pos (i mod n); Sat.Lit.neg_of ((i + 1) mod n) ]))
      in
      Hybrid.estimate_iterations f >= 16)

(* ---- maxsat ---- *)

let maxsat_reaches_optimum_on_satisfiable () =
  let rng = Testutil.rng 401 in
  let g = Chimera.Graph.standard_2000q () in
  let f = Workload.Uniform.generate rng ~num_vars:15 ~num_clauses:30 in
  match Hyqsat.Optimize.anneal_incumbent rng g (Sat.Wcnf.of_cnf f) with
  | None -> Alcotest.fail "nothing embedded"
  | Some (cost, _) ->
      Alcotest.(check int) "zero violations on planted instance" 0 cost

let maxsat_matches_brute_optimum () =
  let rng = Testutil.rng 402 in
  let g = Chimera.Graph.standard_2000q () in
  for _ = 1 to 4 do
    (* deeply over-constrained: optimum > 0 *)
    let f = Workload.Uniform.generate ~planted:false rng ~num_vars:10 ~num_clauses:80 in
    let w = Sat.Wcnf.of_cnf f in
    let optimum = Sat.Brute.min_unsatisfied f in
    (match Hyqsat.Optimize.anneal_incumbent ~samples:10 rng g w with
    | None -> Alcotest.fail "nothing embedded"
    | Some (cost, _) ->
        Alcotest.(check bool) "annealer >= optimum" true (cost >= optimum);
        Alcotest.(check bool) "annealer close to optimum" true (cost <= optimum + 3));
    let ls_cost, _ = Hyqsat.Optimize.incumbent rng w in
    Alcotest.(check bool) "local search >= optimum" true (ls_cost >= optimum)
  done

let maxsat_counts_consistent =
  QCheck.Test.make ~name:"maxsat incumbent counts its own violations" ~count:30
    Testutil.small_cnf_arb (fun f ->
      let rng = Testutil.rng 403 in
      let cost, x = Hyqsat.Optimize.incumbent ~max_flips:500 rng (Sat.Wcnf.of_cnf f) in
      let a = Sat.Assignment.of_bools x in
      Sat.Assignment.num_unsatisfied a f = cost)

let suite =
  [
    ( "hyqsat.maxsat",
      [
        Alcotest.test_case "optimum on satisfiable" `Quick maxsat_reaches_optimum_on_satisfiable;
        Alcotest.test_case "near brute optimum" `Slow maxsat_matches_brute_optimum;
        QCheck_alcotest.to_alcotest maxsat_counts_consistent;
      ] );
    ( "hyqsat.clause_queue",
      [
        Alcotest.test_case "bfs locality" `Quick queue_bfs_locality;
        Alcotest.test_case "head from top activity" `Quick queue_head_from_top_activity;
        Alcotest.test_case "var budget" `Quick queue_var_budget;
        Alcotest.test_case "budget improves density" `Quick queue_budget_improves_density;
        Alcotest.test_case "random mode" `Quick queue_random_mode;
        Alcotest.test_case "empty formula" `Quick queue_empty_formula;
      ] );
    ( "hyqsat.calibration",
      [
        Alcotest.test_case "paper default" `Quick calibration_paper_default;
        Alcotest.test_case "separates classes" `Slow calibration_separates_classes;
      ] );
    ( "hyqsat.frontend",
      [
        Alcotest.test_case "prepares valid jobs" `Quick frontend_prepares;
        Alcotest.test_case "small formula fully embeds" `Quick frontend_small_formula_fully_embeds;
        Alcotest.test_case "cache hits share embedding" `Quick frontend_cache_hits_share_embedding;
        Alcotest.test_case "cache bound to its graph" `Quick frontend_cache_bound_to_graph;
      ] );
    ( "hyqsat.backend",
      [
        Alcotest.test_case "classification" `Quick backend_classification;
        Alcotest.test_case "strategy 1 verifies" `Quick backend_strategy1_verifies;
        Alcotest.test_case "ablation masks" `Quick backend_ablation_masks;
      ] );
    ( "hyqsat.hybrid",
      [
        Alcotest.test_case "agrees with classic" `Slow hybrid_agrees_with_classic;
        Alcotest.test_case "sound under noise" `Slow hybrid_agrees_under_noise;
        Alcotest.test_case "unsat detection" `Quick hybrid_unsat_detection;
        Alcotest.test_case "report consistency" `Quick hybrid_report_consistency;
        Alcotest.test_case "strategy 1 shortcut" `Slow hybrid_strategy1_shortcut;
        QCheck_alcotest.to_alcotest estimate_iterations_positive;
      ] );
  ]
