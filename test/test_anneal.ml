(* Tests for the annealing simulator stack. *)

module SI = Anneal.Sparse_ising
module Sampler = Anneal.Sampler
module Noise = Anneal.Noise
module Timing = Anneal.Timing
module Machine = Anneal.Machine

let fcheck = Alcotest.(check (float 1e-9))

let sparse_ising_energy () =
  (* E = 0.5 + 1·s0 - 2·s1 + 3·s0s1 *)
  let ising = SI.build ~n:2 ~h:[| 1.; -2. |] ~couplings:[ ((0, 1), 3.) ] ~offset:0.5 in
  fcheck "++" 2.5 (SI.energy ising [| 1; 1 |]);
  fcheck "+-" 0.5 (SI.energy ising [| 1; -1 |]);
  fcheck "-+" (-5.5) (SI.energy ising [| -1; 1 |]);
  fcheck "--" 4.5 (SI.energy ising [| -1; -1 |]);
  fcheck "field on 0 at s1=+1" 4.0 (SI.local_field ising [| 1; 1 |] 0);
  fcheck "field on 1" 1.0 (SI.local_field ising [| 1; 1 |] 1)

let sparse_ising_duplicate_couplings () =
  let ising = SI.build ~n:2 ~h:[| 0.; 0. |] ~couplings:[ ((0, 1), 1.); ((1, 0), 1.) ] ~offset:0. in
  fcheck "accumulated" 2.0 (SI.energy ising [| 1; 1 |])

let sampler_finds_ground_state () =
  (* frustration-free chain: ground state all spins down (h > 0) *)
  let n = 30 in
  let h = Array.make n 0.5 in
  let couplings = List.init (n - 1) (fun i -> ((i, i + 1), -1.0)) in
  let ising = SI.build ~n ~h ~couplings ~offset:0. in
  let rng = Testutil.rng 3 in
  let spins = Sampler.sample rng ising in
  Alcotest.(check bool) "ground state reached" true (Array.for_all (fun s -> s = -1) spins)

let sampler_best_of_improves () =
  let r = Testutil.rng 5 in
  (* random spin glass: best-of-k energy must be <= single-sample energy on average *)
  let n = 40 in
  let h = Array.init n (fun _ -> Stats.Rng.gaussian r ~mu:0. ~sigma:1.) in
  let couplings =
    List.concat
      (List.init (n - 1) (fun i -> [ ((i, i + 1), Stats.Rng.gaussian r ~mu:0. ~sigma:1.) ]))
  in
  let ising = SI.build ~n ~h ~couplings ~offset:0. in
  let single =
    let params = Sampler.make_params ~schedule:Sampler.quick_schedule () in
    Stats.Descriptive.mean
      (Array.init 20 (fun _ -> SI.energy ising (Sampler.sample ~params r ising)))
  in
  let best =
    let params = Sampler.make_params ~schedule:Sampler.quick_schedule ~reads:8 () in
    Stats.Descriptive.mean
      (Array.init 20 (fun _ -> SI.energy ising (Sampler.sample ~params r ising)))
  in
  Alcotest.(check bool) "best-of-k at least as good" true (best <= single +. 1e-9)

let noise_perturbs_coefficients () =
  let ising = SI.build ~n:2 ~h:[| 1.; 1. |] ~couplings:[ ((0, 1), 0.5) ] ~offset:0. in
  let rng = Testutil.rng 7 in
  let noisy = Noise.apply_coeff { Noise.noise_free with Noise.coeff_sigma = 0.1 } rng ising in
  Alcotest.(check bool) "h changed" true
    (noisy.SI.h.(0) <> 1.0 || noisy.SI.h.(1) <> 1.0);
  let clean = Noise.apply_coeff Noise.noise_free rng ising in
  Alcotest.(check bool) "noise-free shares" true (clean == ising)

let noise_readout_flips () =
  let rng = Testutil.rng 9 in
  let spins = Array.make 1000 1 in
  let flipped = Noise.apply_readout (Noise.bit_flip_only 0.5) rng spins in
  let n_flipped = Array.fold_left (fun acc s -> if s = -1 then acc + 1 else acc) 0 flipped in
  Alcotest.(check bool) "roughly half flipped" true (n_flipped > 350 && n_flipped < 650);
  let same = Noise.apply_readout Noise.noise_free rng spins in
  Alcotest.(check bool) "no flips when off" true (Array.for_all (fun s -> s = 1) same)

let timing_formulas () =
  let t = Timing.d_wave_2000q in
  fcheck "single sample" 138. (Timing.single_sample_us t);
  (* the Fig 1 formula: (20+110)*60 + 20*59 + programming *)
  fcheck "60 samples" ((130. *. 60.) +. (20. *. 59.) +. 8.) (Timing.multi_sample_us t ~samples:60)

(* end-to-end: embed a small clause set, anneal noise-free, energy 0 and a
   satisfying assignment for a satisfiable queue *)
let machine_on_satisfiable_queue () =
  let g = Chimera.Graph.standard_2000q () in
  let rng = Testutil.rng 11 in
  let clauses =
    [
      Sat.Clause.of_dimacs [ 1; 2; 3 ];
      Sat.Clause.of_dimacs [ -1; 2; 4 ];
      Sat.Clause.of_dimacs [ -2; -3; 5 ];
      Sat.Clause.of_dimacs [ 1; -4; 5 ];
    ]
  in
  let enc = Qubo.Encode.encode ~num_vars:5 clauses in
  let res = Embed.Hyqsat_scheme.embed g enc in
  Alcotest.(check int) "all clauses embedded" 4 res.Embed.Hyqsat_scheme.embedded_clauses;
  let job =
    {
      Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
      objective = Qubo.Encode.objective enc;
      edges = res.Embed.Hyqsat_scheme.edges;
    }
  in
  let outcome = Machine.run rng job in
  Alcotest.(check bool) "no chain breaks noise-free" true (outcome.Machine.chain_breaks = 0);
  fcheck "zero energy" 0.0 outcome.Machine.energy;
  (* the assignment restricted to original vars satisfies the clauses *)
  let x = Array.make 5 false in
  List.iter (fun (node, v) -> if node < 5 then x.(node) <- v) outcome.Machine.assignment;
  Alcotest.(check bool) "clauses satisfied" true (Qubo.Encode.clauses_satisfied enc x)

let machine_on_unsat_queue () =
  (* {x1, ¬x1} forces energy ≥ 1 whatever the sample *)
  let g = Chimera.Graph.create ~rows:4 ~cols:4 in
  let rng = Testutil.rng 13 in
  let clauses = [ Sat.Clause.of_dimacs [ 1 ]; Sat.Clause.of_dimacs [ -1 ] ] in
  let enc = Qubo.Encode.encode ~num_vars:1 clauses in
  let res = Embed.Hyqsat_scheme.embed g enc in
  Alcotest.(check int) "embedded" 2 res.Embed.Hyqsat_scheme.embedded_clauses;
  let job =
    {
      Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
      objective = Qubo.Encode.objective enc;
      edges = res.Embed.Hyqsat_scheme.edges;
    }
  in
  let outcome = Machine.run rng job in
  Alcotest.(check bool) "energy >= 1" true (outcome.Machine.energy >= 1.0 -. 1e-9)

let machine_noise_raises_energy_spread () =
  let g = Chimera.Graph.standard_2000q () in
  let clauses =
    List.init 12 (fun i ->
        Sat.Clause.make
          [ Sat.Lit.pos (i mod 6); Sat.Lit.neg_of ((i + 1) mod 6); Sat.Lit.pos ((i + 3) mod 6) ])
  in
  let enc = Qubo.Encode.encode ~num_vars:6 clauses in
  let res = Embed.Hyqsat_scheme.embed g enc in
  let job =
    {
      Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
      objective = Qubo.Encode.objective enc;
      edges = res.Embed.Hyqsat_scheme.edges;
    }
  in
  let energies noise seed =
    let rng = Testutil.rng seed in
    Array.init 30 (fun _ -> (Machine.run ~noise rng job).Machine.energy)
  in
  let clean = energies Noise.noise_free 17 in
  let noisy = energies Noise.default_2000q 17 in
  Alcotest.(check bool) "noisy mean >= clean mean" true
    (Stats.Descriptive.mean noisy >= Stats.Descriptive.mean clean -. 1e-9)

let machine_rejects_unembedded () =
  let g = Chimera.Graph.create ~rows:2 ~cols:2 in
  let obj = Qubo.Pbq.create () in
  Qubo.Pbq.add_linear obj 0 1.0;
  let job = { Machine.embedding = Embed.Embedding.create g; objective = obj; edges = [] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Machine.run (Testutil.rng 1) job);
       false
     with Machine.Unembedded_term _ -> true)

let sampler_respects_init () =
  (* with an empty schedule-budget the init must pass through untouched at
     zero temperature... closest observable: a strongly ferromagnetic pair
     seeded aligned stays aligned *)
  let ising = SI.build ~n:2 ~h:[| 0.; 0. |] ~couplings:[ ((0, 1), -4.0) ] ~offset:0. in
  let rng = Testutil.rng 19 in
  let spins =
    Sampler.sample
      ~params:
        (Sampler.make_params ~schedule:{ Sampler.sweeps = 30; beta_min = 2.0; beta_max = 20.0 } ())
      ~init:[| 1; 1 |] rng ising
  in
  Alcotest.(check bool) "stays aligned" true (spins.(0) = spins.(1))

let sampler_init_length_checked () =
  let ising = SI.build ~n:3 ~h:[| 0.; 0.; 0. |] ~couplings:[] ~offset:0. in
  Alcotest.(check bool) "bad init rejected" true
    (try
       ignore (Sampler.sample ~init:[| 1 |] (Testutil.rng 1) ising);
       false
     with Invalid_argument _ -> true)

(* ---- incremental kernel ---- *)

(* irregular connected instances: a coupled chain plus random extra edges,
   Gaussian coefficients *)
let random_ising r =
  let n = 5 + Stats.Rng.int r 56 in
  let h = Array.init n (fun _ -> Stats.Rng.gaussian r ~mu:0. ~sigma:1.) in
  let chain = List.init (n - 1) (fun i -> ((i, i + 1), Stats.Rng.gaussian r ~mu:0. ~sigma:1.)) in
  let extra =
    List.init n (fun _ ->
        ((Stats.Rng.int r n, Stats.Rng.int r n), Stats.Rng.gaussian r ~mu:0. ~sigma:1.))
    |> List.filter (fun ((i, j), _) -> i <> j)
  in
  SI.build ~n ~h ~couplings:(chain @ extra) ~offset:0.

(* the incremental kernel must be a pure optimisation: identical spins to
   the reference loop for identical seeds, across instances and schedules *)
let kernel_matches_reference () =
  let r = Testutil.rng 29 in
  for case = 1 to 20 do
    let ising = random_ising r in
    let schedule = if case mod 2 = 0 then Sampler.default_schedule else Sampler.quick_schedule in
    let seed = 1000 + case in
    let s_ref =
      Sampler.sample ~params:(Sampler.make_params ~schedule ~kernel:`Reference ())
        (Testutil.rng seed) ising
    in
    let s_inc =
      Sampler.sample ~params:(Sampler.make_params ~schedule ~kernel:`Incremental ())
        (Testutil.rng seed) ising
    in
    Alcotest.(check (array int))
      (Printf.sprintf "case %d (n=%d)" case ising.SI.n)
      s_ref s_inc
  done

(* the field invariant survives a long random flip sequence *)
let kernel_field_invariant () =
  let r = Testutil.rng 31 in
  let ising = random_ising r in
  let n = ising.SI.n in
  let spins = Array.init n (fun _ -> if Stats.Rng.bool r then 1 else -1) in
  let k = Anneal.Kernel.init ising spins in
  for _ = 1 to 1000 do
    Anneal.Kernel.flip k (Stats.Rng.int r n)
  done;
  Alcotest.(check int) "accepted counts flips" 1000 (Anneal.Kernel.accepted k);
  let spins = Anneal.Kernel.spins k in
  for i = 0 to n - 1 do
    let fresh = SI.local_field ising spins i in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "field %d" i) fresh (Anneal.Kernel.field k i);
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "delta %d" i)
      (-2.0 *. float_of_int spins.(i) *. fresh)
      (Anneal.Kernel.delta k i)
  done

(* best-of-k is a pure function of (rng seed, k): any domain count, on the
   default shared pool or an explicit persistent one of any size, returns
   the same spins — chunks cover ascending read ranges and the reduce is a
   strict minimum, so "lowest-index minimal-energy read wins" is preserved *)
let best_of_deterministic_across_domains () =
  let ising = random_ising (Testutil.rng 37) in
  let run ?pool domains =
    Sampler.sample
      ~params:(Sampler.make_params ~schedule:Sampler.quick_schedule ~reads:8 ())
      ?pool ~domains (Testutil.rng 41) ising
  in
  let serial = run 1 in
  Alcotest.(check (array int)) "2 domains" serial (run 2);
  Alcotest.(check (array int)) "4 domains" serial (run 4);
  Alcotest.(check (array int)) "8 domains (more than reads/cores)" serial (run 8);
  let pool = Parallel.Tasks.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Parallel.Tasks.shutdown pool)
    (fun () ->
      Alcotest.(check (array int)) "explicit pool, 2 domains" serial (run ~pool 2);
      Alcotest.(check (array int)) "explicit pool, 4 domains" serial (run ~pool 4);
      (* the same pool again: results don't depend on pool history *)
      Alcotest.(check (array int)) "explicit pool, reused" serial (run ~pool 4));
  Alcotest.(check (float 1e-9)) "energy agrees" (SI.energy ising serial)
    (SI.energy ising (run 4))

let counter ctx name =
  match List.assoc_opt name (Obs.Ctx.snapshot ctx) with
  | Some (Obs.Ctx.Counter { count }) -> int_of_float count
  | _ -> Alcotest.failf "missing counter %s" name

let best_of_threads_obs_and_init () =
  let ising = random_ising (Testutil.rng 43) in
  let n = ising.SI.n in
  (* a zero-sweep schedule returns the init untouched, whichever read wins *)
  let init = Array.init n (fun i -> if i mod 2 = 0 then 1 else -1) in
  let frozen = { Sampler.sweeps = 0; beta_min = 1.0; beta_max = 1.0 } in
  let spins =
    Sampler.sample
      ~params:(Sampler.make_params ~schedule:frozen ~reads:3 ())
      ~init (Testutil.rng 47) ising
  in
  Alcotest.(check (array int)) "init passes through" init spins;
  (* counters aggregate across reads *)
  let ctx = Obs.Ctx.create () in
  let sched = { Sampler.quick_schedule with Sampler.sweeps = 3 } in
  ignore
    (Sampler.sample ~obs:ctx
       ~params:(Sampler.make_params ~schedule:sched ~reads:4 ())
       ~domains:2 (Testutil.rng 53) ising);
  Alcotest.(check int) "sweeps = k * schedule" 12 (counter ctx "anneal_sweeps_total");
  Alcotest.(check int) "reads counted" 4 (counter ctx "anneal_reads_total");
  Alcotest.(check bool) "accepted flips counted" true
    (counter ctx "anneal_accepted_flips_total" > 0);
  Obs.Ctx.close ctx

let best_of_rejects_bad_k () =
  let ising = random_ising (Testutil.rng 59) in
  Alcotest.(check bool) "reads = 0 rejected" true
    (try
       ignore
         (Sampler.sample ~params:(Sampler.make_params ~reads:0 ()) (Testutil.rng 1) ising);
       false
     with Invalid_argument _ -> true)

let machine_postprocess_off_keeps_soundness () =
  (* postprocess off: energies may be worse, never negative-impossible, and
     the assignment is still a real assignment of the objective *)
  let g = Chimera.Graph.standard_2000q () in
  let rng = Testutil.rng 23 in
  let clauses =
    [ Sat.Clause.of_dimacs [ 1; 2; 3 ]; Sat.Clause.of_dimacs [ -1; -2; 4 ] ]
  in
  let enc = Qubo.Encode.encode ~num_vars:4 clauses in
  let res = Embed.Hyqsat_scheme.embed g enc in
  let job =
    {
      Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
      objective = Qubo.Encode.objective enc;
      edges = res.Embed.Hyqsat_scheme.edges;
    }
  in
  let o = Machine.run ~postprocess:false rng job in
  let lookup = o.Machine.assignment in
  let e =
    Qubo.Pbq.eval job.Machine.objective (fun v -> List.assoc v lookup)
  in
  Alcotest.(check (float 1e-6)) "reported energy consistent" e o.Machine.energy;
  Alcotest.(check bool) "non-negative for penalty objectives" true (e >= -1e-9)

let suite =
  [
    ( "anneal.sparse_ising",
      [
        Alcotest.test_case "energy" `Quick sparse_ising_energy;
        Alcotest.test_case "duplicate couplings" `Quick sparse_ising_duplicate_couplings;
      ] );
    ( "anneal.sampler",
      [
        Alcotest.test_case "ground state" `Quick sampler_finds_ground_state;
        Alcotest.test_case "best-of improves" `Quick sampler_best_of_improves;
        Alcotest.test_case "respects init" `Quick sampler_respects_init;
        Alcotest.test_case "init length checked" `Quick sampler_init_length_checked;
      ] );
    ( "anneal.noise",
      [
        Alcotest.test_case "coefficients" `Quick noise_perturbs_coefficients;
        Alcotest.test_case "readout" `Quick noise_readout_flips;
      ] );
    ( "anneal.kernel",
      [
        Alcotest.test_case "matches reference per seed" `Quick kernel_matches_reference;
        Alcotest.test_case "field invariant after 1k flips" `Quick kernel_field_invariant;
        Alcotest.test_case "best-of deterministic across domains" `Quick
          best_of_deterministic_across_domains;
        Alcotest.test_case "best-of threads obs and init" `Quick best_of_threads_obs_and_init;
        Alcotest.test_case "best-of rejects k=0" `Quick best_of_rejects_bad_k;
      ] );
    ("anneal.timing", [ Alcotest.test_case "formulas" `Quick timing_formulas ]);
    ( "anneal.machine",
      [
        Alcotest.test_case "satisfiable queue" `Quick machine_on_satisfiable_queue;
        Alcotest.test_case "unsat queue" `Quick machine_on_unsat_queue;
        Alcotest.test_case "noise raises energy" `Quick machine_noise_raises_energy_spread;
        Alcotest.test_case "rejects unembedded" `Quick machine_rejects_unembedded;
        Alcotest.test_case "postprocess off soundness" `Quick machine_postprocess_off_keeps_soundness;
      ] );
  ]
