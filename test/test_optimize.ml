(* Weighted MaxSAT: WDIMACS round-trips, and the exact optimisers checked
   differentially against brute-force enumeration. *)

(* random weighted instance: a handful of hard clauses (sometimes
   unsatisfiable together) plus weighted softs *)
let random_wcnf r ~n ~hard ~soft =
  let clause () = Testutil.random_clause r ~n ~k:(min 3 n) in
  Sat.Wcnf.make ~num_vars:n
    ~hard:(List.init hard (fun _ -> clause ()))
    ~soft:(List.init soft (fun _ -> (1 + Stats.Rng.int r 8, clause ())))

let wcnf_gen =
  QCheck.Gen.(
    int_range 2 10 >>= fun n ->
    int_range 0 n >>= fun hard ->
    int_range 1 (2 * n) >>= fun soft ->
    int_bound 1_000_000 >>= fun seed ->
    return (random_wcnf (Testutil.rng (seed + (n * 131) + hard + (soft * 17))) ~n ~hard ~soft))

let wcnf_arb =
  QCheck.make ~print:(fun w -> Format.asprintf "%a" Sat.Wcnf.pp w) wcnf_gen

(* ---- WDIMACS ---- *)

let roundtrip_classic =
  QCheck.Test.make ~name:"wdimacs classic round-trip" ~count:100 wcnf_arb (fun w ->
      Sat.Wcnf.equal w (Sat.Wcnf.parse_string (Sat.Wcnf.to_string w)))

let roundtrip_2022 =
  QCheck.Test.make ~name:"wdimacs 2022 round-trip (modulo trailing vars)" ~count:100
    wcnf_arb (fun w ->
      let w2 = Sat.Wcnf.parse_string (Sat.Wcnf.to_string ~format:`Std2022 w) in
      (* the headerless format recovers num_vars as the largest literal *)
      Sat.Wcnf.num_vars w2 <= Sat.Wcnf.num_vars w
      && List.equal
           (fun c1 c2 -> Sat.Clause.equal c1 c2)
           (Array.to_list w.Sat.Wcnf.hard)
           (Array.to_list w2.Sat.Wcnf.hard)
      && List.equal
           (fun (w1, c1) (w2, c2) -> w1 = w2 && Sat.Clause.equal c1 c2)
           (Sat.Wcnf.soft_clauses w) (Sat.Wcnf.soft_clauses w2))

let parse_formats () =
  (* classic 4-field header: weight >= top is hard *)
  let w = Sat.Wcnf.parse_string "c comment\np wcnf 3 3 10\n10 1 2 0\n3 -1 0\n2 -2 3 0\n" in
  Alcotest.(check int) "hard" 1 (Sat.Wcnf.num_hard w);
  Alcotest.(check int) "soft" 2 (Sat.Wcnf.num_soft w);
  Alcotest.(check int) "sum" 5 (Sat.Wcnf.sum_weights w);
  (* 2022 headerless h-prefix dialect *)
  let w2 = Sat.Wcnf.parse_string "c 2022\nh 1 2 0\n3 -1 0\n2 -2 3 0\n" in
  Alcotest.(check int) "2022 hard" 1 (Sat.Wcnf.num_hard w2);
  Alcotest.(check int) "2022 soft" 2 (Sat.Wcnf.num_soft w2);
  Alcotest.(check int) "2022 vars" 3 (Sat.Wcnf.num_vars w2);
  (* 3-field header: every clause is weight-prefixed soft *)
  let w3 = Sat.Wcnf.parse_string "p wcnf 2 2\n3 1 0\n2 -1 2 0\n" in
  Alcotest.(check int) "3-field soft" 2 (Sat.Wcnf.num_soft w3);
  Alcotest.(check int) "3-field sum" 5 (Sat.Wcnf.sum_weights w3);
  (* costs *)
  let cost = Sat.Wcnf.cost w [| false; false; false |] in
  Alcotest.(check int) "cost of 000" 0 cost;
  Alcotest.(check bool) "000 falsifies hard" false
    (Sat.Wcnf.hard_satisfied w [| false; false; false |])

let parse_rejects () =
  let bad s = try ignore (Sat.Wcnf.parse_string s); false with Sat.Wcnf.Parse_error _ -> true in
  Alcotest.(check bool) "unterminated" true (bad "p wcnf 2 1 5\n3 1 2");
  Alcotest.(check bool) "bad count" true (bad "p wcnf 2 2 5\n3 1 0\n");
  Alcotest.(check bool) "cnf header" true (bad "p cnf 2 1\n1 2 0\n");
  Alcotest.(check bool) "weight 0" true (bad "p wcnf 2 1 5\n0 1 2 0\n")

(* summed weight near max_int would overflow [top] and silently flip
   hard/soft classification — construction and parsing both refuse it *)
let weight_overflow_rejected () =
  let big = max_int / 2 in
  let c = Sat.Clause.of_dimacs [ 1 ] in
  (* two halves sum to max_int - 1: top = max_int, still representable *)
  let w2 = Sat.Wcnf.make ~num_vars:1 ~hard:[] ~soft:[ (big, c); (big, c) ] in
  Alcotest.(check int) "top at the limit" max_int (Sat.Wcnf.top w2);
  (try
     ignore (Sat.Wcnf.make ~num_vars:1 ~hard:[] ~soft:[ (big, c); (big, c); (big, c) ]);
     Alcotest.fail "overflowing make accepted"
   with Invalid_argument _ -> ());
  let doc = Printf.sprintf "p wcnf 1 3\n%d 1 0\n%d 1 0\n%d 1 0\n" big big big in
  match Sat.Wcnf.parse_string doc with
  | _ -> Alcotest.fail "overflowing parse accepted"
  | exception Sat.Wcnf.Parse_error _ -> ()

(* ---- exact optimisation, differentially vs brute force ---- *)

let brute_agrees algorithm name =
  QCheck.Test.make ~name ~count:60 wcnf_arb (fun w ->
      let r = Hyqsat.Optimize.solve ~algorithm w in
      match Sat.Brute.min_cost w with
      | None -> r.Hyqsat.Optimize.status = Hyqsat.Optimize.Infeasible
      | Some (opt, _) -> (
          r.Hyqsat.Optimize.status = Hyqsat.Optimize.Optimal
          && r.Hyqsat.Optimize.best_cost = opt
          && r.Hyqsat.Optimize.lower_bound = opt
          &&
          match r.Hyqsat.Optimize.best with
          | None -> false
          | Some x -> Sat.Wcnf.hard_satisfied w x && Sat.Wcnf.cost w x = opt))

let linear_matches_brute = brute_agrees Hyqsat.Optimize.Linear "linear search = brute optimum"

let core_guided_matches_brute =
  brute_agrees Hyqsat.Optimize.Core_guided "core-guided = brute optimum"

let algorithms_agree =
  QCheck.Test.make ~name:"linear and core-guided agree" ~count:40 wcnf_arb (fun w ->
      let a = Hyqsat.Optimize.solve ~algorithm:Hyqsat.Optimize.Linear w in
      let b = Hyqsat.Optimize.solve ~algorithm:Hyqsat.Optimize.Core_guided w in
      a.Hyqsat.Optimize.status = b.Hyqsat.Optimize.status
      && a.Hyqsat.Optimize.best_cost = b.Hyqsat.Optimize.best_cost
      && a.Hyqsat.Optimize.lower_bound = b.Hyqsat.Optimize.lower_bound)

let incumbent_bounds =
  QCheck.Test.make ~name:"incumbent is a valid penalised upper bound" ~count:60 wcnf_arb
    (fun w ->
      let cost, x = Hyqsat.Optimize.incumbent ~max_flips:400 (Testutil.rng 11) w in
      let recomputed =
        Sat.Wcnf.cost w x
        + Sat.Wcnf.top w
          * Array.fold_left
              (fun acc c ->
                if Sat.Assignment.satisfies_clause (Sat.Assignment.of_bools x) c then acc
                else acc + 1)
              0 w.Sat.Wcnf.hard
      in
      cost = recomputed)

let gap_limit_stops () =
  (* 1 soft pair of contradictory units: optimum 1; gap_limit 1 accepts any model *)
  let w =
    Sat.Wcnf.make ~num_vars:1 ~hard:[]
      ~soft:[ (1, Sat.Clause.make [ Sat.Lit.pos 0 ]); (1, Sat.Clause.make [ Sat.Lit.neg_of 0 ]) ]
  in
  let r = Hyqsat.Optimize.solve ~gap_limit:1 w in
  Alcotest.(check bool) "stopped within gap" true
    (r.Hyqsat.Optimize.best_cost - r.Hyqsat.Optimize.lower_bound <= 1);
  let r0 = Hyqsat.Optimize.solve w in
  Alcotest.(check int) "exact optimum" 1 r0.Hyqsat.Optimize.best_cost;
  Alcotest.(check bool) "optimal" true (r0.Hyqsat.Optimize.status = Hyqsat.Optimize.Optimal)

let infeasible_hard () =
  let w =
    Sat.Wcnf.make ~num_vars:1
      ~hard:[ Sat.Clause.make [ Sat.Lit.pos 0 ]; Sat.Clause.make [ Sat.Lit.neg_of 0 ] ]
      ~soft:[ (3, Sat.Clause.make [ Sat.Lit.pos 0 ]) ]
  in
  List.iter
    (fun alg ->
      let r = Hyqsat.Optimize.solve ~algorithm:alg w in
      Alcotest.(check bool) "infeasible" true
        (r.Hyqsat.Optimize.status = Hyqsat.Optimize.Infeasible))
    [ Hyqsat.Optimize.Linear; Hyqsat.Optimize.Core_guided ]

let certify_opt_passes =
  QCheck.Test.make ~name:"certify_opt certifies both exact algorithms" ~count:40 wcnf_arb
    (fun w ->
      List.for_all
        (fun alg ->
          let r = Hyqsat.Optimize.solve ~algorithm:alg w in
          match Check.Certify.certify_opt ~original:w r with
          | Ok (Check.Certify.Optimality_verified c) -> c = r.Hyqsat.Optimize.best_cost
          | Ok Check.Certify.Infeasibility_verified ->
              r.Hyqsat.Optimize.status = Hyqsat.Optimize.Infeasible
          | Ok (Check.Certify.Cost_verified _) -> false (* exact modes must close the gap *)
          | Error _ -> false)
        [ Hyqsat.Optimize.Linear; Hyqsat.Optimize.Core_guided ])

(* the REVIEW regression: WDIMACS-realistic weights (millions).  The old
   unary counters in both the linear search and the certificate would
   allocate O(sum_weights) literals here; the adder encoding solves and
   certifies instantly *)
let large_weights_solve_and_certify () =
  let w =
    Sat.Wcnf.make ~num_vars:2
      ~hard:[ Sat.Clause.of_dimacs [ 1; 2 ] ]
      ~soft:
        [
          (1_000_000, Sat.Clause.of_dimacs [ -1 ]);
          (2_500_000, Sat.Clause.of_dimacs [ -2 ]);
          (4_000_000, Sat.Clause.of_dimacs [ 1; -2 ]);
        ]
  in
  List.iter
    (fun alg ->
      let r = Hyqsat.Optimize.solve ~algorithm:alg w in
      Alcotest.(check bool) "optimal" true
        (r.Hyqsat.Optimize.status = Hyqsat.Optimize.Optimal);
      Alcotest.(check int) "optimum" 1_000_000 r.Hyqsat.Optimize.best_cost;
      match Check.Certify.certify_opt ~original:w r with
      | Ok (Check.Certify.Optimality_verified c) ->
          Alcotest.(check int) "certified cost" 1_000_000 c
      | v -> Alcotest.failf "unexpected verdict: %s" (Check.Certify.opt_verdict_label v))
    [ Hyqsat.Optimize.Linear; Hyqsat.Optimize.Core_guided ]

(* the seeding phase must honour the cancel switch: with an always-open
   optimum (contradictory unit softs) the walk would otherwise burn the
   whole flip budget *)
let incumbent_honours_stop () =
  let w =
    Sat.Wcnf.make ~num_vars:1 ~hard:[]
      ~soft:[ (1, Sat.Clause.make [ Sat.Lit.pos 0 ]); (1, Sat.Clause.make [ Sat.Lit.neg_of 0 ]) ]
  in
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 5
  in
  let cost, _ = Hyqsat.Optimize.incumbent ~max_flips:1_000_000 ~should_stop:stop (Testutil.rng 7) w in
  Alcotest.(check bool) "stopped after a handful of polls" true (!polls <= 7);
  Alcotest.(check int) "best-so-far still returned" 1 cost

let certify_opt_rejects_tampering () =
  let w =
    Sat.Wcnf.make ~num_vars:2 ~hard:[ Sat.Clause.make [ Sat.Lit.pos 0 ] ]
      ~soft:
        [
          (2, Sat.Clause.make [ Sat.Lit.neg_of 0 ]);
          (1, Sat.Clause.make [ Sat.Lit.pos 1 ]);
        ]
  in
  let r = Hyqsat.Optimize.solve w in
  Alcotest.(check int) "optimum" 2 r.Hyqsat.Optimize.best_cost;
  (* claim a better cost than the model achieves *)
  let forged = { r with Hyqsat.Optimize.best_cost = 1; lower_bound = 1 } in
  (match Check.Certify.certify_opt ~original:w forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged cost certified");
  (* claim optimality at a cost that a cheaper model beats *)
  let lazy_claim =
    { r with Hyqsat.Optimize.best = Some [| true; false |]; best_cost = 3; lower_bound = 3 }
  in
  match Check.Certify.certify_opt ~original:w lazy_claim with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-optimal claim certified"

let suite =
  [
    ( "sat.wcnf",
      [
        QCheck_alcotest.to_alcotest roundtrip_classic;
        QCheck_alcotest.to_alcotest roundtrip_2022;
        Alcotest.test_case "parse formats" `Quick parse_formats;
        Alcotest.test_case "parse rejects" `Quick parse_rejects;
        Alcotest.test_case "weight overflow rejected" `Quick weight_overflow_rejected;
      ] );
    ( "hyqsat.optimize",
      [
        QCheck_alcotest.to_alcotest linear_matches_brute;
        QCheck_alcotest.to_alcotest core_guided_matches_brute;
        QCheck_alcotest.to_alcotest algorithms_agree;
        QCheck_alcotest.to_alcotest incumbent_bounds;
        Alcotest.test_case "gap limit" `Quick gap_limit_stops;
        Alcotest.test_case "infeasible hard" `Quick infeasible_hard;
        QCheck_alcotest.to_alcotest certify_opt_passes;
        Alcotest.test_case "large weights solve+certify" `Quick
          large_weights_solve_and_certify;
        Alcotest.test_case "incumbent honours should_stop" `Quick incumbent_honours_stop;
        Alcotest.test_case "certify_opt rejects tampering" `Quick certify_opt_rejects_tampering;
      ] );
  ]
