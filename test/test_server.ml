(* Tests for the lib/server daemon stack: framing codec (round-trip,
   partial I/O, rejection), protocol versioning, admission control
   (queue bound, quota, priority, drain-exactly-once), wire/one-shot
   answer equality, metrics determinism, and an end-to-end daemon run
   over a Unix socket. *)

module Codec = Server.Codec
module Protocol = Server.Protocol
module Jobq = Server.Jobq
module Quota = Server.Quota
module Dispatch = Server.Dispatch
module Daemon = Server.Daemon
module Client = Server.Client
module Drain = Server.Drain
module Job = Service.Job
module Batch = Service.Batch
module Telemetry = Service.Telemetry

(* ------------------------------------------------------------------ *)
(* codec *)

let decode_all dec =
  let rec go acc =
    match Codec.next dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "decoder error: %s" (Codec.error_label e)
  in
  go []

let codec_roundtrip () =
  let payloads = [ ""; "x"; String.make 5000 'q'; "{\"k\":1}"; String.make 3 '\000' ] in
  let wire = String.concat "" (List.map Codec.frame payloads) in
  let dec = Codec.decoder () in
  Codec.feed_string dec wire;
  Alcotest.(check (list string)) "all frames back" payloads (decode_all dec);
  Alcotest.(check int) "nothing left" 0 (Codec.buffered dec)

let codec_partial_reads () =
  let payloads = [ "alpha"; ""; "gamma-" ^ String.make 300 'g' ] in
  let wire = String.concat "" (List.map Codec.frame payloads) in
  (* one byte at a time: every prefix is a legal partial read *)
  let dec = Codec.decoder () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Codec.feed_string dec (String.make 1 ch);
      match Codec.next dec with
      | Ok (Some p) -> got := p :: !got
      | Ok None -> ()
      | Error e -> Alcotest.failf "decoder error: %s" (Codec.error_label e))
    wire;
  Alcotest.(check (list string)) "byte-by-byte" payloads (List.rev !got)

let codec_short_writes () =
  let payloads = [ "one"; "two-two"; String.make 100 'z' ] in
  let w = Codec.writer () in
  List.iter (Codec.push w) payloads;
  (* drain in 7-byte chunks, as a slow socket would *)
  let out = Buffer.create 64 in
  while Codec.pending w > 0 do
    let chunk = Codec.to_write w ~max:7 () in
    Buffer.add_string out chunk;
    Codec.advance w (String.length chunk)
  done;
  let dec = Codec.decoder () in
  Codec.feed_string dec (Buffer.contents out);
  Alcotest.(check (list string)) "writer output decodes" payloads (decode_all dec)

let codec_oversized () =
  let dec = Codec.decoder ~max_frame:64 () in
  (* a legal header declaring a payload beyond the limit *)
  let header = Bytes.of_string (Codec.frame "") in
  Bytes.set header 6 '\x10' (* length = 0x1000 = 4096 > 64 *);
  Codec.feed dec header;
  (match Codec.next dec with
  | Error (Codec.Oversized { size; limit }) ->
      Alcotest.(check int) "declared size" 4096 size;
      Alcotest.(check int) "limit" 64 limit
  | _ -> Alcotest.fail "oversized header not rejected");
  (* sticky: feeding valid data afterwards cannot resurrect the stream *)
  Codec.feed_string dec (Codec.frame "ok");
  (match Codec.next dec with
  | Error (Codec.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized error not sticky");
  Alcotest.check_raises "frame refuses oversized payloads"
    (Invalid_argument
       (Printf.sprintf "Codec.frame: payload of %d bytes exceeds the frame limit"
          (Codec.default_max_frame + 1)))
    (fun () -> ignore (Codec.frame (String.make (Codec.default_max_frame + 1) 'x')))

let codec_junk () =
  let dec = Codec.decoder () in
  Codec.feed_string dec "GET / HTTP/1.0\r\n";
  (match Codec.next dec with
  | Error (Codec.Bad_magic seen) -> Alcotest.(check string) "bytes seen" "GET " seen
  | _ -> Alcotest.fail "junk not rejected");
  (match Codec.next dec with
  | Error (Codec.Bad_magic _) -> ()
  | _ -> Alcotest.fail "bad-magic error not sticky")

let codec_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"codec round-trips random payloads in random chunks"
    QCheck.(pair (list (string_of_size Gen.(int_bound 200))) (int_bound 1_000_000))
    (fun (payloads, seed) ->
      let wire = String.concat "" (List.map Codec.frame payloads) in
      let r = Testutil.rng seed in
      let dec = Codec.decoder () in
      let got = ref [] in
      let pos = ref 0 in
      while !pos < String.length wire do
        let n = min (1 + Stats.Rng.int r 40) (String.length wire - !pos) in
        Codec.feed_string dec (String.sub wire !pos n);
        pos := !pos + n;
        let rec drain () =
          match Codec.next dec with
          | Ok (Some p) ->
              got := p :: !got;
              drain ()
          | Ok None -> ()
          | Error _ -> QCheck.Test.fail_report "decoder error on valid stream"
        in
        drain ()
      done;
      List.rev !got = payloads)

(* ------------------------------------------------------------------ *)
(* protocol *)

let sample_record =
  {
    Telemetry.job_id = 3;
    job_name = "wire.cnf";
    outcome = "sat";
    verified = "model";
    winner = "hybrid";
    attempts = 2;
    queue_wait_s = 0.25;
    solve_time_s = 1.5;
    iterations = 42;
    qa_calls = 7;
    qa_failures = 1;
    degraded = 0;
    strategy_uses = [| 1; 2; 3; 4 |];
    warm_start = true;
    reused_clauses = 17;
    cost = -1;
    lower_bound = -1;
  }

let client_roundtrip msg =
  match Protocol.decode_client (Protocol.encode_client msg) with
  | Ok m -> Alcotest.(check bool) "client msg round-trips" true (m = msg)
  | Error e -> Alcotest.failf "decode_client: %s" e

let server_roundtrip msg =
  match Protocol.decode_server (Protocol.encode_server msg) with
  | Ok m -> Alcotest.(check bool) "server msg round-trips" true (m = msg)
  | Error e -> Alcotest.failf "decode_server: %s" e

let protocol_roundtrips () =
  List.iter client_roundtrip
    [
      Protocol.Hello { client = "t"; proto = 1 };
      Protocol.Submit
        (Protocol.make_job_spec ~name:"a.cnf" ~certify:true ~timeout_s:2.5 ~max_iterations:99
           ~retries:1 ~seed:7 ~priority:3 ~id:11 "p cnf 1 1\n1 0\n");
      Protocol.Submit (Protocol.make_job_spec ~id:0 "p cnf 1 1\n1 0\n");
      Protocol.Subscribe { events = true };
      Protocol.Ping 42;
      Protocol.Bye;
    ];
  List.iter server_roundtrip
    [
      Protocol.Welcome { server = Protocol.server_name; proto = 1; schema = 3 };
      Protocol.Accepted { id = 4; position = 2; queued = 5 };
      Protocol.Rejected
        { id = 4; code = "queue_full"; reason = "full"; retry_after_s = Some 1.5 };
      Protocol.Rejected { id = 4; code = "quota"; reason = "busy"; retry_after_s = None };
      Protocol.Result { id = 3; record = sample_record; model = Some [| true; false; true |] };
      Protocol.Result { id = 9; record = { sample_record with outcome = "unsat" }; model = None };
      Protocol.Event
        { job = Some 3; name = "race"; dur_s = 0.5; attrs = [ ("winner", "hybrid") ] };
      Protocol.Event { job = None; name = "job"; dur_s = 0.; attrs = [] };
      Protocol.Pong 42;
      Protocol.Drained { accepted = 9; completed = 7; cancelled = 2 };
      Protocol.Error_msg { code = "bad_msg"; reason = "nope" };
    ]

let protocol_versioning () =
  (* absent schema_version = v1; old versions accepted; newer rejected —
     the Telemetry rules applied to the wire vocabulary *)
  let accepted s =
    match Protocol.decode_client s with
    | Ok (Protocol.Ping 1) -> ()
    | Ok _ -> Alcotest.fail "decoded to the wrong message"
    | Error e -> Alcotest.failf "rejected: %s" e
  in
  accepted "{\"kind\":\"ping\",\"n\":1}";
  accepted "{\"schema_version\":1,\"kind\":\"ping\",\"n\":1}";
  accepted "{\"schema_version\":2,\"kind\":\"ping\",\"n\":1}";
  accepted
    (Printf.sprintf "{\"schema_version\":%d,\"kind\":\"ping\",\"n\":1}" Telemetry.schema_version);
  (match
     Protocol.decode_client
       (Printf.sprintf "{\"schema_version\":%d,\"kind\":\"ping\",\"n\":1}"
          (Telemetry.schema_version + 1))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "newer schema_version must be rejected");
  (match Protocol.decode_client "{\"kind\":\"warp\",\"n\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must be rejected");
  (match Protocol.decode_server "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk must be rejected");
  (* a submit without priority (the v1 shape) still decodes, defaulting 0 *)
  match
    Protocol.decode_client
      "{\"kind\":\"submit\",\"id\":1,\"name\":\"a\",\"dimacs\":\"p cnf 1 1\\n1 0\\n\",\"certify\":false,\"max_iterations\":10,\"retries\":0}"
  with
  | Ok (Protocol.Submit s) -> Alcotest.(check int) "priority defaults" 0 s.Protocol.priority
  | Ok _ -> Alcotest.fail "wrong message"
  | Error e -> Alcotest.failf "v1 submit rejected: %s" e

(* ------------------------------------------------------------------ *)
(* admission primitives *)

let jobq_order () =
  let q = Jobq.create ~capacity:4 in
  (match Jobq.push q ~priority:0 "a" with
  | `Ok 1 -> ()
  | _ -> Alcotest.fail "first push is position 1");
  ignore (Jobq.push q ~priority:5 "b");
  ignore (Jobq.push q ~priority:5 "c");
  (match Jobq.push q ~priority:1 "d" with
  | `Ok 4 -> Alcotest.fail "priority 1 cannot be last"
  | `Ok 3 -> ()
  | _ -> Alcotest.fail "push failed");
  (match Jobq.push q ~priority:9 "e" with
  | `Full -> ()
  | _ -> Alcotest.fail "capacity not enforced");
  let order = List.init 4 (fun _ -> Option.get (Jobq.pop q)) in
  Alcotest.(check (list string)) "priority then FIFO" [ "b"; "c"; "d"; "a" ] order;
  Alcotest.(check bool) "drained" true (Jobq.is_empty q)

let jobq_clear () =
  let q = Jobq.create ~capacity:8 in
  ignore (Jobq.push q ~priority:0 1);
  ignore (Jobq.push q ~priority:2 2);
  ignore (Jobq.push q ~priority:1 3);
  Alcotest.(check (list int)) "clear in pop order" [ 2; 3; 1 ] (Jobq.clear q);
  Alcotest.(check int) "empty after clear" 0 (Jobq.length q)

let quota_accounting () =
  let q = Quota.create ~limit:2 in
  Alcotest.(check bool) "first" true (Quota.admit q "alice");
  Alcotest.(check bool) "second" true (Quota.admit q "alice");
  Alcotest.(check bool) "third rejected" false (Quota.admit q "alice");
  Alcotest.(check bool) "other client fine" true (Quota.admit q "bob");
  Quota.release q "alice";
  Alcotest.(check bool) "slot returned" true (Quota.admit q "alice");
  Alcotest.(check int) "load" 2 (Quota.load q "alice");
  Alcotest.check_raises "release below zero raises"
    (Invalid_argument "Quota.release: client \"carol\" holds no slot") (fun () ->
      Quota.release q "carol")

(* ------------------------------------------------------------------ *)
(* dispatcher *)

let sat_dimacs = "p cnf 3 2\n1 2 3 0\n-1 2 0\n"
let unsat_dimacs = "p cnf 1 2\n1 0\n-1 0\n"

let wire_spec ?(priority = 0) ?(certify = false) ~id dimacs =
  Protocol.make_job_spec ~name:(Printf.sprintf "wire-%d" id) ~certify ~priority ~seed:(id * 17)
    ~id dimacs

let retire_all ?(timeout_s = 30.) d =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go acc =
    if Dispatch.idle d then List.rev acc
    else if Unix.gettimeofday () > deadline then Alcotest.fail "dispatcher did not go idle"
    else begin
      let batch = Dispatch.take_completions d in
      if batch = [] then Unix.sleepf 0.002;
      go (List.rev_append batch acc)
    end
  in
  go []

let dispatch_config =
  { Dispatch.default_config with Dispatch.workers = 1; queue_capacity = 2; per_client = 2 }

let dispatch_backpressure () =
  let d = Dispatch.create dispatch_config in
  (* worker slot taken by job 0; 1 and 2 fill the bounded queue; 3 must
     bounce with a retry hint (completions are deliberately not taken, so
     the slot cannot free up underneath the test) *)
  (match Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~id:0 sat_dimacs) with
  | Dispatch.Accepted { position = 1; _ } -> ()
  | _ -> Alcotest.fail "job 0 should be accepted at position 1");
  (match Dispatch.submit d ~client:"b" ~conn:1 (wire_spec ~id:1 sat_dimacs) with
  | Dispatch.Accepted _ -> ()
  | _ -> Alcotest.fail "job 1 should queue");
  (match Dispatch.submit d ~client:"c" ~conn:1 (wire_spec ~id:2 sat_dimacs) with
  | Dispatch.Accepted _ -> ()
  | _ -> Alcotest.fail "job 2 should queue");
  (match Dispatch.submit d ~client:"d" ~conn:1 (wire_spec ~id:3 sat_dimacs) with
  | Dispatch.Rejected { code = "queue_full"; retry_after_s = Some s; _ } ->
      Alcotest.(check bool) "positive retry hint" true (s > 0.)
  | _ -> Alcotest.fail "job 3 should be rejected queue_full with retry-after");
  let retired = retire_all d in
  Alcotest.(check int) "accepted jobs all retire" 3 (List.length retired);
  Dispatch.shutdown d

let dispatch_quota () =
  let d = Dispatch.create dispatch_config in
  ignore (Dispatch.submit d ~client:"greedy" ~conn:1 (wire_spec ~id:0 sat_dimacs));
  ignore (Dispatch.submit d ~client:"greedy" ~conn:1 (wire_spec ~id:1 sat_dimacs));
  (match Dispatch.submit d ~client:"greedy" ~conn:1 (wire_spec ~id:2 sat_dimacs) with
  | Dispatch.Rejected { code = "quota"; _ } -> ()
  | _ -> Alcotest.fail "third in-flight job should hit the per-client quota");
  (match Dispatch.submit d ~client:"patient" ~conn:1 (wire_spec ~id:3 sat_dimacs) with
  | Dispatch.Accepted _ -> ()
  | _ -> Alcotest.fail "another client is not affected by the quota");
  ignore (retire_all d);
  (* slots were released on retirement *)
  (match Dispatch.submit d ~client:"greedy" ~conn:1 (wire_spec ~id:4 sat_dimacs) with
  | Dispatch.Accepted _ -> ()
  | _ -> Alcotest.fail "quota slot should be released after retirement");
  ignore (retire_all d);
  Dispatch.shutdown d

let dispatch_parse_reject () =
  let d = Dispatch.create dispatch_config in
  (match Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~id:0 "this is not dimacs") with
  | Dispatch.Rejected { code = "parse"; _ } -> ()
  | _ -> Alcotest.fail "garbage input should be rejected with code parse");
  Dispatch.shutdown d

let dispatch_priority_order () =
  let d = Dispatch.create { dispatch_config with Dispatch.queue_capacity = 8; per_client = 8 } in
  ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~id:0 sat_dimacs));
  (* all queued behind job 0: completion order must follow priority *)
  ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~priority:0 ~id:1 sat_dimacs));
  ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~priority:5 ~id:2 sat_dimacs));
  ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~priority:5 ~id:3 unsat_dimacs));
  ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~priority:1 ~id:4 sat_dimacs));
  let order = List.map (fun c -> c.Dispatch.job_id) (retire_all d) in
  Alcotest.(check (list int)) "completion order follows priority" [ 0; 2; 3; 4; 1 ] order;
  Dispatch.shutdown d

let dispatch_drain_exactly_once () =
  let d = Dispatch.create { dispatch_config with Dispatch.queue_capacity = 8; per_client = 8 } in
  List.iter
    (fun id -> ignore (Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~id sat_dimacs)))
    [ 0; 1; 2; 3; 4 ];
  Dispatch.begin_drain d;
  (match Dispatch.submit d ~client:"a" ~conn:1 (wire_spec ~id:9 sat_dimacs) with
  | Dispatch.Rejected { code = "draining"; _ } -> ()
  | _ -> Alcotest.fail "submits during drain must be rejected");
  let retired = retire_all d in
  let ids = List.sort compare (List.map (fun c -> c.Dispatch.job_id) retired) in
  Alcotest.(check (list int)) "every accepted job retires exactly once" [ 0; 1; 2; 3; 4 ] ids;
  let cancelled =
    List.filter
      (fun c -> c.Dispatch.result.Batch.outcome = Job.Unknown Job.Cancelled)
      retired
  in
  Alcotest.(check int) "the four queued jobs were cancelled" 4 (List.length cancelled);
  let cs = Dispatch.counters d in
  Alcotest.(check int) "accepted" 5 cs.Dispatch.accepted;
  Alcotest.(check int) "cancelled_queued" 4 cs.Dispatch.cancelled_queued;
  Alcotest.(check int) "accounting balances" cs.Dispatch.accepted
    (cs.Dispatch.completed + cs.Dispatch.cancelled_queued + cs.Dispatch.cancelled_running);
  Dispatch.shutdown d

(* ------------------------------------------------------------------ *)
(* wire answers = one-shot answers *)

let strip_timing (r : Telemetry.record) = { r with queue_wait_s = 0.; solve_time_s = 0. }

let record_bytes r = Telemetry.json_to_string (Telemetry.json_of_record (strip_timing r))

let wire_matches_oneshot () =
  let formula = Workload.Uniform.uf (Testutil.rng 5) 20 in
  let dimacs = Sat.Dimacs.to_string formula in
  let seed = 4242 in
  (* one-shot path: exactly what `hyqsat FILE --certify --seed S` runs *)
  let spec = Job.make ~name:"w.cnf" ~certify:true ~seed ~id:0 formula in
  let members ~spec ~seed = Batch.solo ~grid:16 ~log_proof:true "hybrid" ~spec ~seed in
  let _, results = Batch.run ~members [ spec ] in
  let oneshot = (List.hd results).Batch.record in
  (* wire path: same instance and seed through the dispatcher *)
  let d = Dispatch.create { dispatch_config with Dispatch.solver = "hybrid" } in
  let wire =
    Protocol.make_job_spec ~name:"w.cnf" ~certify:true ~seed ~id:0 dimacs
  in
  (match Dispatch.submit d ~client:"t" ~conn:1 wire with
  | Dispatch.Accepted _ -> ()
  | _ -> Alcotest.fail "wire submit rejected");
  let retired = retire_all d in
  Dispatch.shutdown d;
  match retired with
  | [ c ] ->
      Alcotest.(check string) "telemetry bytes identical (timing zeroed)"
        (record_bytes oneshot) (record_bytes c.Dispatch.result.Batch.record)
  | _ -> Alcotest.fail "expected exactly one wire result"

let demo_wcnf = "p wcnf 3 4 10\n10 1 2 0\n3 -1 0\n2 -2 3 0\n4 -3 0\n"

let wire_wcnf_matches_oneshot () =
  let seed = 4242 in
  (* one-shot path: exactly what `hyqsat FILE.wcnf --certify --seed S` runs *)
  let w = Sat.Wcnf.parse_string demo_wcnf in
  let spec = Job.optimize ~name:"o.wcnf" ~certify:true ~seed ~id:0 w in
  let _, results = Batch.run ~members:(Batch.solo "minisat") [ spec ] in
  let oneshot = (List.hd results).Batch.record in
  Alcotest.(check int) "one-shot finds the optimum" 2 oneshot.Telemetry.cost;
  Alcotest.(check int) "one-shot proves the bound" 2 oneshot.Telemetry.lower_bound;
  Alcotest.(check string) "one-shot certifies optimality" "optimal"
    oneshot.Telemetry.verified;
  (* wire path: same WDIMACS bytes and seed through the dispatcher *)
  let d = Dispatch.create dispatch_config in
  let wire =
    Protocol.make_job_spec ~name:"o.wcnf" ~format:"wcnf" ~certify:true ~seed ~id:0
      demo_wcnf
  in
  (match Dispatch.submit d ~client:"t" ~conn:1 wire with
  | Dispatch.Accepted _ -> ()
  | Dispatch.Rejected { reason; _ } -> Alcotest.fail ("wcnf submit rejected: " ^ reason));
  let retired = retire_all d in
  Dispatch.shutdown d;
  match retired with
  | [ c ] ->
      Alcotest.(check string) "telemetry bytes identical (timing zeroed)"
        (record_bytes oneshot) (record_bytes c.Dispatch.result.Batch.record)
  | _ -> Alcotest.fail "expected exactly one wire result"

let wire_wcnf_rejects () =
  let d = Dispatch.create dispatch_config in
  (* malformed WDIMACS and unknown formats bounce at admission with code
     "parse" — they never reach the queue *)
  (match
     Dispatch.submit d ~client:"a" ~conn:1
       (Protocol.make_job_spec ~format:"wcnf" ~id:0 "w nonsense\n")
   with
  | Dispatch.Rejected { code = "parse"; _ } -> ()
  | _ -> Alcotest.fail "bad WDIMACS should be rejected with code parse");
  (match
     Dispatch.submit d ~client:"a" ~conn:1
       (Protocol.make_job_spec ~format:"opb" ~id:1 demo_wcnf)
   with
  | Dispatch.Rejected { code = "parse"; reason; _ } ->
      Alcotest.(check bool) "reason names the format" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "unknown format should be rejected with code parse");
  Dispatch.shutdown d

(* ------------------------------------------------------------------ *)
(* deterministic prometheus rendering *)

let prometheus_deterministic () =
  let render feed =
    let ctx = Obs.Ctx.create () in
    List.iter (fun name -> Obs.Metrics.incr ctx name) feed;
    Obs.Metrics.gauge ctx "depth" 3.0;
    let out = Obs.Export.prometheus_string (Obs.Ctx.snapshot ctx) in
    Obs.Ctx.close ctx;
    out
  in
  let names =
    [
      Obs.Metrics.labelled "jobs_total" [ ("outcome", "sat") ];
      Obs.Metrics.labelled "jobs_total" [ ("outcome", "unsat") ];
      Obs.Metrics.labelled "jobs_total" [ ("outcome", "unknown:timeout") ];
      "jobs";
      "jobs_totals_other";
      Obs.Metrics.labelled "rejections_total" [ ("code", "quota") ];
    ]
  in
  let a = render names in
  let b = render (List.rev names) in
  Alcotest.(check string) "insertion order does not change the export" a b;
  (* family grouping: the bare counter must not interleave into the
     labelled family's samples *)
  let lines = String.split_on_char '\n' a in
  let type_lines = List.filter (fun l -> String.length l > 6 && String.sub l 0 6 = "# TYPE") lines in
  Alcotest.(check int) "one TYPE line per family" 5 (List.length type_lines)

(* ------------------------------------------------------------------ *)
(* end-to-end daemon over a Unix socket *)

let temp_socket () =
  let path = Filename.temp_file "hyqsat-test" ".sock" in
  Sys.remove path;
  path

let daemon_end_to_end () =
  let socket = temp_socket () in
  let obs = Obs.Ctx.create () in
  let stop = Atomic.make false in
  let ready = Atomic.make None in
  let report = ref None in
  let config =
    {
      Daemon.default_config with
      Daemon.unix_socket = Some socket;
      metrics_port = Some 0;
      dispatch =
        { Dispatch.default_config with Dispatch.workers = 1; queue_capacity = 16; per_client = 16 };
    }
  in
  let th =
    Thread.create
      (fun () ->
        report :=
          Some (Daemon.run ~obs ~stop ~on_ready:(fun r -> Atomic.set ready (Some r)) config))
      ()
  in
  let rec await_ready n =
    match Atomic.get ready with
    | Some r -> r
    | None ->
        if n = 0 then Alcotest.fail "daemon never became ready";
        Unix.sleepf 0.01;
        await_ready (n - 1)
  in
  let r = await_ready 500 in
  let metrics_port = Option.get r.Daemon.r_metrics_port in
  let t = Client.connect_unix socket in
  Client.handshake ~client:"e2e" t;
  Client.send t (Protocol.Subscribe { events = true });
  let jobs = [ (0, sat_dimacs); (1, unsat_dimacs); (2, sat_dimacs); (3, unsat_dimacs) ] in
  List.iter
    (fun (id, dimacs) ->
      Client.send t
        (Protocol.Submit
           (Protocol.make_job_spec ~name:(Printf.sprintf "e2e-%d" id) ~certify:true
              ~seed:(id * 31) ~id dimacs)))
    jobs;
  let results = Hashtbl.create 4 in
  let events = ref 0 in
  let accepted = ref 0 in
  while Hashtbl.length results < List.length jobs do
    match Client.recv ~timeout_s:60. t with
    | Protocol.Result { id; record; model } -> Hashtbl.replace results id (record, model)
    | Protocol.Accepted _ -> incr accepted
    | Protocol.Event _ -> incr events
    | Protocol.Rejected { code; reason; _ } ->
        Alcotest.failf "unexpected rejection (%s): %s" code reason
    | _ -> ()
  done;
  Alcotest.(check int) "every submit was accepted" 4 !accepted;
  Alcotest.(check bool) "progress events streamed" true (!events > 0);
  List.iter
    (fun (id, expected, verified) ->
      let record, model = Hashtbl.find results id in
      Alcotest.(check string)
        (Printf.sprintf "job %d outcome" id)
        expected record.Telemetry.outcome;
      Alcotest.(check string)
        (Printf.sprintf "job %d verified" id)
        verified record.Telemetry.verified;
      if expected = "sat" then
        Alcotest.(check bool)
          (Printf.sprintf "job %d model present" id)
          true (model <> None))
    [ (0, "sat", "model"); (1, "unsat", "proof"); (2, "sat", "model"); (3, "unsat", "proof") ];
  (* scrape the metrics endpoint while the daemon is live *)
  let body = Client.http_get ~port:metrics_port "/metrics" in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metrics expose jobs_total" true (has_sub body "jobs_total");
  Alcotest.(check bool) "health endpoint answers" true
    (has_sub (Client.http_get ~port:metrics_port "/healthz") "ok");
  (* graceful stop: the server says goodbye with a drain summary *)
  Atomic.set stop true;
  let rec await_drained n =
    if n = 0 then Alcotest.fail "no Drained message before shutdown";
    match Client.recv ~timeout_s:30. t with
    | Protocol.Drained { accepted; completed; cancelled } ->
        Alcotest.(check int) "drained.accepted" 4 accepted;
        Alcotest.(check int) "drained.completed" 4 completed;
        Alcotest.(check int) "drained.cancelled" 0 cancelled
    | _ -> await_drained (n - 1)
  in
  await_drained 50;
  Client.close t;
  Thread.join th;
  Obs.Ctx.close obs;
  (match !report with
  | Some rep ->
      Alcotest.(check int) "report.accepted" 4 rep.Drain.accepted;
      Alcotest.(check int) "report.completed" 4 rep.Drain.completed;
      Alcotest.(check int) "report.cancelled" 0 (Drain.cancelled rep)
  | None -> Alcotest.fail "daemon returned no report");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let daemon_drain_cancels_queued () =
  let socket = temp_socket () in
  let stop = Atomic.make false in
  let ready = Atomic.make None in
  let report = ref None in
  let config =
    {
      Daemon.default_config with
      Daemon.unix_socket = Some socket;
      dispatch =
        {
          Dispatch.default_config with
          Dispatch.workers = 1;
          queue_capacity = 16;
          per_client = 16;
          grace_s = 0.05;
        };
    }
  in
  let th =
    Thread.create
      (fun () ->
        report :=
          Some (Daemon.run ~stop ~on_ready:(fun r -> Atomic.set ready (Some r)) config))
      ()
  in
  let rec await n =
    if Atomic.get ready = None then begin
      if n = 0 then Alcotest.fail "daemon never became ready";
      Unix.sleepf 0.01;
      await (n - 1)
    end
  in
  await 500;
  let t = Client.connect_unix socket in
  Client.handshake t;
  (* several jobs on one worker, then stop immediately: whatever had not
     started must come back unknown:cancelled, exactly once each *)
  List.iteri
    (fun id dimacs ->
      Client.send t
        (Protocol.Submit (Protocol.make_job_spec ~name:(string_of_int id) ~seed:id ~id dimacs)))
    [ sat_dimacs; sat_dimacs; sat_dimacs; sat_dimacs ];
  (* only stop once all four are admitted — otherwise the drain races the
     submits and rejects them as "draining" *)
  let outcomes = Hashtbl.create 4 in
  let admitted = ref 0 in
  let rec collect n =
    if n > 0 then
      match Client.recv ~timeout_s:60. t with
      | Protocol.Accepted _ ->
          incr admitted;
          if !admitted = 4 then Atomic.set stop true;
          collect n
      | Protocol.Result { id; record; _ } ->
          if Hashtbl.mem outcomes id then Alcotest.failf "job %d answered twice" id;
          Hashtbl.replace outcomes id record.Telemetry.outcome;
          collect n
      | Protocol.Drained _ -> ()
      | _ -> collect (n - 1)
  in
  collect 10_000;
  Client.close t;
  Thread.join th;
  (match !report with
  | Some rep ->
      Alcotest.(check int) "all four accepted" 4 rep.Drain.accepted;
      Alcotest.(check int) "accounting balances" 4
        (rep.Drain.completed + Drain.cancelled rep)
  | None -> Alcotest.fail "daemon returned no report");
  Hashtbl.iter
    (fun id outcome ->
      if outcome <> "sat" && outcome <> "unknown:cancelled" then
        Alcotest.failf "job %d: unexpected outcome %s" id outcome)
    outcomes

let suite =
  [
    ( "server.codec",
      [
        Alcotest.test_case "round-trip" `Quick codec_roundtrip;
        Alcotest.test_case "partial reads resume" `Quick codec_partial_reads;
        Alcotest.test_case "short writes drain" `Quick codec_short_writes;
        Alcotest.test_case "oversized frames rejected" `Quick codec_oversized;
        Alcotest.test_case "junk bytes rejected" `Quick codec_junk;
        QCheck_alcotest.to_alcotest codec_roundtrip_prop;
      ] );
    ( "server.protocol",
      [
        Alcotest.test_case "message round-trips" `Quick protocol_roundtrips;
        Alcotest.test_case "schema versioning" `Quick protocol_versioning;
      ] );
    ( "server.admission",
      [
        Alcotest.test_case "jobq priority order" `Quick jobq_order;
        Alcotest.test_case "jobq clear" `Quick jobq_clear;
        Alcotest.test_case "quota accounting" `Quick quota_accounting;
        Alcotest.test_case "backpressure: queue_full + retry-after" `Quick dispatch_backpressure;
        Alcotest.test_case "per-client quota over the dispatcher" `Quick dispatch_quota;
        Alcotest.test_case "unparseable DIMACS rejected" `Quick dispatch_parse_reject;
        Alcotest.test_case "priority scheduling order" `Quick dispatch_priority_order;
        Alcotest.test_case "drain cancels queued exactly once" `Quick dispatch_drain_exactly_once;
      ] );
    ( "server.telemetry",
      [
        Alcotest.test_case "wire record = one-shot record" `Slow wire_matches_oneshot;
        Alcotest.test_case "wire wcnf record = one-shot record" `Slow
          wire_wcnf_matches_oneshot;
        Alcotest.test_case "wcnf wire rejects" `Quick wire_wcnf_rejects;
        Alcotest.test_case "prometheus export is deterministic" `Quick prometheus_deterministic;
      ] );
    ( "server.daemon",
      [
        Alcotest.test_case "end-to-end over unix socket" `Slow daemon_end_to_end;
        Alcotest.test_case "drain cancels queued jobs" `Slow daemon_drain_cancels_queued;
      ] );
  ]
