(* Tests for the benchmark generators. *)

module Circuit = Workload.Circuit
module Uniform = Workload.Uniform
module Gc = Workload.Graph_coloring
module Cfa = Workload.Circuit_fault
module Bp = Workload.Block_planning
module Ii = Workload.Inductive_inference
module Factoring = Workload.Factoring
module Crypto = Workload.Crypto
module Spec = Workload.Spec

let solve f = Cdcl.Solver.solve (Cdcl.Solver.create f)

let expect_sat name f =
  match solve f with
  | Cdcl.Solver.Sat m ->
      Alcotest.(check bool) (name ^ " model valid") true (Testutil.check_model f m)
  | Cdcl.Solver.Unsat -> Alcotest.fail (name ^ " unexpectedly UNSAT")
  | Cdcl.Solver.Unknown _ -> Alcotest.fail (name ^ " unknown")

let expect_unsat name f =
  match solve f with
  | Cdcl.Solver.Unsat -> ()
  | Cdcl.Solver.Sat _ -> Alcotest.fail (name ^ " unexpectedly SAT")
  | Cdcl.Solver.Unknown _ -> Alcotest.fail (name ^ " unknown")

(* ---- circuit substrate ---- *)

let circuit_gate_semantics () =
  (* exhaustive check of every gate against the CNF via brute force *)
  let check build reference =
    let c = Circuit.create () in
    let a = Circuit.fresh_input c in
    let b = Circuit.fresh_input c in
    let z = build c a b in
    let cnf = Circuit.to_cnf c in
    (* for each input combination, constrain inputs and check z's value *)
    List.iter
      (fun (va, vb) ->
        let unit w v =
          Sat.Clause.make [ (if v then Sat.Lit.pos w else Sat.Lit.neg_of w) ]
        in
        let constrained = Sat.Cnf.append cnf [ unit a va; unit b vb ] in
        match Sat.Brute.solve constrained with
        | None -> Alcotest.fail "gate CNF unsatisfiable under inputs"
        | Some m ->
            Alcotest.(check bool)
              (Printf.sprintf "gate(%b,%b)" va vb)
              (reference va vb) m.(z))
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  check Circuit.and_ ( && );
  check Circuit.or_ ( || );
  check Circuit.xor_ ( <> );
  check Circuit.nand_ (fun a b -> not (a && b))

let circuit_adder () =
  let c = Circuit.create () in
  let xs = List.init 3 (fun _ -> Circuit.fresh_input c) in
  let ys = List.init 3 (fun _ -> Circuit.fresh_input c) in
  let sum = Circuit.ripple_adder c xs ys in
  Alcotest.(check int) "width" 4 (List.length sum);
  (* 5 + 3 = 8 via simulation *)
  let bits v w = List.mapi (fun i wire -> (wire, (v lsr i) land 1 = 1)) w in
  let value = Circuit.eval c ~inputs:(bits 5 xs @ bits 3 ys) in
  let result = List.fold_left (fun acc (i, w) -> if value w then acc + (1 lsl i) else acc) 0
      (List.mapi (fun i w -> (i, w)) sum) in
  Alcotest.(check int) "5+3" 8 result

let circuit_multiplier () =
  let c = Circuit.create () in
  let xs = List.init 3 (fun _ -> Circuit.fresh_input c) in
  let ys = List.init 3 (fun _ -> Circuit.fresh_input c) in
  let prod = Circuit.multiplier c xs ys in
  Alcotest.(check int) "width" 6 (List.length prod);
  let bits v w = List.mapi (fun i wire -> (wire, (v lsr i) land 1 = 1)) w in
  List.iter
    (fun (a, b) ->
      let value = Circuit.eval c ~inputs:(bits a xs @ bits b ys) in
      let result =
        List.fold_left
          (fun acc (i, w) -> if value w then acc + (1 lsl i) else acc)
          0
          (List.mapi (fun i w -> (i, w)) prod)
      in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) result)
    [ (0, 0); (1, 5); (3, 3); (7, 6); (7, 7) ]

(* ---- generators ---- *)

let uniform_shape () =
  let r = Testutil.rng 61 in
  let f = Uniform.uf r 50 in
  Alcotest.(check int) "vars" 50 (Sat.Cnf.num_vars f);
  Alcotest.(check int) "clauses" 215 (Sat.Cnf.num_clauses f);
  Alcotest.(check bool) "3sat" true (Sat.Cnf.is_3sat f);
  expect_sat "uf50 (planted)" f

let uniform_unplanted_varies () =
  let r = Testutil.rng 67 in
  (* over-constrained unplanted instances should often be UNSAT *)
  let unsat = ref 0 in
  for _ = 1 to 10 do
    let f = Uniform.generate ~planted:false r ~num_vars:20 ~num_clauses:160 in
    if solve f = Cdcl.Solver.Unsat then incr unsat
  done;
  Alcotest.(check bool) "ratio-8 instances mostly unsat" true (!unsat >= 8)

let graph_coloring_shape () =
  let r = Testutil.rng 71 in
  let f = Gc.generate r ~nodes:150 ~edges:360 in
  Alcotest.(check int) "vars" 450 (Sat.Cnf.num_vars f);
  Alcotest.(check int) "clauses" 1680 (Sat.Cnf.num_clauses f);
  let small = Gc.generate r ~nodes:12 ~edges:20 in
  expect_sat "3-colourable" small

let circuit_fault_unsat () =
  let r = Testutil.rng 73 in
  let f = Cfa.generate r ~inputs:5 ~gates:12 in
  Alcotest.(check bool) "3sat" true (Sat.Cnf.is_3sat f);
  expect_unsat "redundant fault" f

let circuit_fault_testable_sat () =
  let r = Testutil.rng 79 in
  (* a live stuck-at-0 is usually detectable; accept either answer but make
     sure several seeds give at least one SAT (fault observable) *)
  let sat = ref 0 in
  for seed = 1 to 8 do
    let f = Cfa.generate ~force_redundant:false (Testutil.rng (seed * 7)) ~inputs:5 ~gates:12 in
    if (match solve f with Cdcl.Solver.Sat _ -> true | _ -> false) then incr sat
  done;
  ignore r;
  Alcotest.(check bool) "some faults testable" true (!sat >= 1)

let block_planning_solvable () =
  let r = Testutil.rng 83 in
  for _ = 1 to 3 do
    let f = Bp.generate r ~blocks:3 ~steps:2 in
    Alcotest.(check bool) "3sat" true (Sat.Cnf.is_3sat f);
    expect_sat "blocksworld" f
  done

let block_planning_is_easy () =
  let r = Testutil.rng 89 in
  let f = Bp.generate r ~blocks:3 ~steps:3 in
  let s = Cdcl.Solver.create f in
  ignore (Cdcl.Solver.solve s);
  let st = Cdcl.Solver.stats s in
  (* Table I: BP solves in single-digit iterations-to-conflict ratio; here we
     only require that conflicts stay tiny relative to propagations *)
  Alcotest.(check bool) "mostly propagation" true
    (st.Cdcl.Solver.conflicts * 10 < st.Cdcl.Solver.propagations + 10)

let inductive_inference_sat () =
  let r = Testutil.rng 97 in
  let f = Ii.generate r ~attributes:6 ~terms:3 ~examples:10 in
  Alcotest.(check bool) "3sat" true (Sat.Cnf.is_3sat f);
  (* hypothesis space (3 terms) ⊇ hidden 2-term DNF: satisfiable *)
  expect_sat "inference" f

let factoring_finds_factors () =
  (* 15 = 3 × 5 with 3-bit operands *)
  let f = Factoring.of_target ~target:15 ~bits:3 in
  (match solve f with
  | Cdcl.Solver.Sat m ->
      (* decode operands: inputs are the first 6 wires (xs then ys) *)
      let value off = (if m.(off) then 1 else 0) + (if m.(off + 1) then 2 else 0) + if m.(off + 2) then 4 else 0 in
      let x = value 0 and y = value 3 in
      Alcotest.(check int) "x*y" 15 (x * y);
      Alcotest.(check bool) "nontrivial" true (x > 1 && y > 1)
  | _ -> Alcotest.fail "15 should factor");
  (* 13 is prime: no nontrivial factorisation *)
  expect_unsat "prime target" (Factoring.of_target ~target:13 ~bits:3)

let crypto_equivalence () =
  let r = Testutil.rng 101 in
  expect_unsat "adders equivalent" (Crypto.generate r ~bits:3);
  expect_sat "buggy adder differs" (Crypto.generate ~buggy:true r ~bits:3)

let spec_all_generate () =
  let r = Testutil.rng 103 in
  Alcotest.(check int) "14 benchmarks" 14 (List.length Spec.table1);
  List.iter
    (fun spec ->
      let f = spec.Spec.generate r `Small in
      Alcotest.(check bool) (spec.Spec.id ^ " 3sat") true (Sat.Cnf.is_3sat f);
      Alcotest.(check bool) (spec.Spec.id ^ " nonempty") true (Sat.Cnf.num_clauses f > 0))
    Spec.table1

let spec_paper_scale_counts () =
  let r = Testutil.rng 107 in
  let gc1 = (Spec.find "GC1").Spec.generate r `Paper in
  Alcotest.(check int) "GC1 vars" 450 (Sat.Cnf.num_vars gc1);
  let ai1 = (Spec.find "AI1").Spec.generate r `Paper in
  Alcotest.(check int) "AI1 vars" 150 (Sat.Cnf.num_vars ai1);
  Alcotest.(check int) "AI1 clauses" 645 (Sat.Cnf.num_clauses ai1)

let suite =
  [
    ( "workload.circuit",
      [
        Alcotest.test_case "gate semantics" `Quick circuit_gate_semantics;
        Alcotest.test_case "adder" `Quick circuit_adder;
        Alcotest.test_case "multiplier" `Quick circuit_multiplier;
      ] );
    ( "workload.uniform",
      [
        Alcotest.test_case "shape + planted sat" `Quick uniform_shape;
        Alcotest.test_case "unplanted overconstrained" `Slow uniform_unplanted_varies;
      ] );
    ("workload.graph_coloring", [ Alcotest.test_case "shape" `Quick graph_coloring_shape ]);
    ( "workload.circuit_fault",
      [
        Alcotest.test_case "redundant fault unsat" `Quick circuit_fault_unsat;
        Alcotest.test_case "live fault testable" `Slow circuit_fault_testable_sat;
      ] );
    ( "workload.block_planning",
      [
        Alcotest.test_case "solvable" `Quick block_planning_solvable;
        Alcotest.test_case "propagation-dominated" `Quick block_planning_is_easy;
      ] );
    ("workload.inductive_inference", [ Alcotest.test_case "sat" `Quick inductive_inference_sat ]);
    ("workload.factoring", [ Alcotest.test_case "factors" `Quick factoring_finds_factors ]);
    ("workload.crypto", [ Alcotest.test_case "equivalence" `Quick crypto_equivalence ]);
    ( "workload.spec",
      [
        Alcotest.test_case "all generate" `Quick spec_all_generate;
        Alcotest.test_case "paper-scale counts" `Quick spec_paper_scale_counts;
      ] );
  ]
