(* Tests for the certification subsystem: SATLIB/DRAT parser hardening,
   negative DRAT-checker cases, certified solving, batch certification
   hooks, portfolio exception safety, and the differential fuzzer. *)

module Certify = Check.Certify
module Fuzz = Check.Fuzz
module Job = Service.Job
module Portfolio = Service.Portfolio
module Batch = Service.Batch
module Telemetry = Service.Telemetry

let cnf = Sat.Dimacs.parse_string

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* DIMACS: SATLIB footers, CRLF, whitespace *)

let dimacs_satlib_footer () =
  (* the uf50-218 family ends with "%" then a lone "0" *)
  let f = cnf "p cnf 3 2\n1 2 3 0\n-1 -2 0\n%\n0\n" in
  Alcotest.(check int) "clauses" 2 (Sat.Cnf.num_clauses f);
  Alcotest.(check int) "vars" 3 (Sat.Cnf.num_vars f);
  (* footer plus blank trailing junk *)
  let g = cnf "p cnf 2 1\n1 2 0\n%\n0\n\n   \n" in
  Alcotest.(check int) "clauses after junk" 1 (Sat.Cnf.num_clauses g)

let dimacs_crlf_and_tabs () =
  let f = cnf "c comment\r\np cnf 3 2\r\n1\t2 3 0\r\n-1 -2\t0\r\n%\r\n0\r\n" in
  Alcotest.(check int) "clauses" 2 (Sat.Cnf.num_clauses f);
  Alcotest.(check bool) "same as plain LF" true
    (Sat.Cnf.equal f (cnf "p cnf 3 2\n1 2 3 0\n-1 -2 0\n"))

let dimacs_footer_does_not_mask_errors () =
  let bad s = try ignore (cnf s); false with Sat.Dimacs.Parse_error _ -> true in
  (* missing clause is still an error: the footer only ends the section *)
  Alcotest.(check bool) "undeclared clause count" true (bad "p cnf 3 2\n1 2 3 0\n%\n0\n");
  (* unterminated clause before the footer is still an error *)
  Alcotest.(check bool) "unterminated clause" true (bad "p cnf 3 1\n1 2 3\n%\n0\n")

(* ------------------------------------------------------------------ *)
(* DRAT parser *)

let drat_parse_whitespace () =
  let p = Sat.Drat.parse_string "1\t-2 0\nd\t1 -2 0\r\n c nothing\n\n-3 0\n" in
  Alcotest.(check int) "steps" 3 (List.length p);
  match p with
  | [ Sat.Drat.Add a; Sat.Drat.Delete d; Sat.Drat.Add b ] ->
      Alcotest.(check (list int)) "add lits" [ 1; -2 ] (List.map Sat.Lit.to_dimacs a);
      Alcotest.(check (list int)) "delete lits" [ 1; -2 ] (List.map Sat.Lit.to_dimacs d);
      Alcotest.(check (list int)) "second add" [ -3 ] (List.map Sat.Lit.to_dimacs b)
  | _ -> Alcotest.fail "unexpected step shapes"

let drat_parse_rejects_bare_d () =
  let fails s = try ignore (Sat.Drat.parse_string s); false with Failure _ -> true in
  Alcotest.(check bool) "bare d line" true (fails "1 2 0\nd\n");
  Alcotest.(check bool) "bare d with spaces" true (fails "d   \n");
  Alcotest.(check bool) "unterminated" true (fails "1 2\n");
  Alcotest.(check bool) "non-integer" true (fails "1 x 0\n")

(* ------------------------------------------------------------------ *)
(* DRAT checker negatives *)

let drat_rejects_non_rup_step () =
  let f = cnf "p cnf 2 1\n1 2 0\n" in
  (* assuming -1 propagates 2 but reaches no conflict: not RUP *)
  let proof = [ Sat.Drat.Add [ Sat.Lit.pos 0 ] ] in
  match Sat.Drat.check_steps f proof with
  | Error e -> Alcotest.(check bool) "names the step" true (contains ~needle:"RUP" e)
  | Ok () -> Alcotest.fail "non-RUP addition must be rejected"

let drat_requires_empty_clause () =
  let f = cnf "p cnf 1 2\n1 0\n-1 0\n" in
  (* a perfectly valid derivation that stops before the empty clause *)
  let proof = [] in
  (match Sat.Drat.check f proof with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "check must require the empty clause");
  match Sat.Drat.check_steps f proof with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("check_steps should accept a partial derivation: " ^ e)

let drat_rejects_deleting_load_bearing_clause () =
  let f = cnf "p cnf 1 2\n1 0\n-1 0\n" in
  (* without the deletion this is the canonical 2-step refutation *)
  (match Sat.Drat.check f [ Sat.Drat.Add [] ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("baseline refutation should check: " ^ e));
  (* deleting (1) first removes the conflict the empty clause relies on *)
  let proof = [ Sat.Drat.Delete [ Sat.Lit.pos 0 ]; Sat.Drat.Add [] ] in
  match Sat.Drat.check f proof with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty clause after deleting its support must fail"

(* ------------------------------------------------------------------ *)
(* certified solving *)

let certify_sat_projects_to_original () =
  (* k-SAT input: the solver sees the 3-SAT conversion, the certificate and
     the model are stated over the original *)
  let f = cnf "p cnf 4 2\n1 2 3 4 0\n-1 -2 0\n" in
  let c = Certify.solve_classic f in
  (match c.Certify.certificate with
  | Ok Certify.Model_verified -> ()
  | Ok _ -> Alcotest.fail "expected a model certificate"
  | Error e -> Alcotest.fail ("certification failed: " ^ e));
  Alcotest.(check bool) "conversion happened" true (c.Certify.mapping <> None);
  match c.Certify.model with
  | Some m ->
      Alcotest.(check int) "model in original space" 4 (Array.length m);
      Alcotest.(check bool) "satisfies original" true (Testutil.check_model f m)
  | None -> Alcotest.fail "sat answer must carry a model"

let certify_unsat_with_proof () =
  (* all 16 sign combinations over 4 variables: UNSAT, k-SAT *)
  let clauses =
    List.init 16 (fun bits ->
        Printf.sprintf "%d %d %d %d 0"
          (if bits land 1 = 0 then 1 else -1)
          (if bits land 2 = 0 then 2 else -2)
          (if bits land 4 = 0 then 3 else -3)
          (if bits land 8 = 0 then 4 else -4))
  in
  let f = cnf ("p cnf 4 16\n" ^ String.concat "\n" clauses ^ "\n") in
  let c = Certify.solve f in
  match c.Certify.certificate with
  | Ok (Certify.Proof_verified steps) ->
      Alcotest.(check bool) "proof has steps" true (steps > 0)
  | Ok _ -> Alcotest.fail "expected a proof certificate"
  | Error e -> Alcotest.fail ("certification failed: " ^ e)

let certify_rejects_wrong_model () =
  let f = cnf "p cnf 2 2\n1 0\n2 0\n" in
  (match Certify.check_model ~original:f [| true; false |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "falsified clause must be reported");
  (match Certify.check_model ~original:f [| true |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "short model must be rejected");
  (* a longer model (3-SAT aux variables) is truncated, not rejected *)
  match Certify.check_model ~original:f [| true; true; false |] with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("aux-extended model should pass: " ^ e)

(* ------------------------------------------------------------------ *)
(* portfolio exception safety *)

let failing_member name =
  {
    Portfolio.name;
    run = (fun ~obs:_ ~parent:_ ~should_stop:_ ~max_iterations:_ ~import:_ _f -> failwith (name ^ " exploded"));
  }

let honest_member model =
  {
    Portfolio.name = "honest";
    run =
      (fun ~obs:_ ~parent:_ ~should_stop:_ ~max_iterations:_ ~import:_ _f ->
        {
          Portfolio.result = Cdcl.Solver.Sat model;
          iterations = 1;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

let race_survives_raising_member () =
  let f = cnf "p cnf 1 1\n1 0\n" in
  let report = Portfolio.race [ failing_member "boom"; honest_member [| true |] ] f in
  (match report.Portfolio.winner with
  | Some w -> Alcotest.(check string) "honest member wins" "honest" w.Portfolio.member
  | None -> Alcotest.fail "the winner must survive a raising sibling");
  Alcotest.(check int) "both members reported" 2 (List.length report.Portfolio.members);
  let failed = List.find (fun m -> m.Portfolio.member = "boom") report.Portfolio.members in
  (match failed.Portfolio.error with
  | Some e ->
      Alcotest.(check bool) "error carries the exception" true (contains ~needle:"exploded" e)
  | None -> Alcotest.fail "raising member must carry an error");
  match failed.Portfolio.stats.Portfolio.result with
  | Cdcl.Solver.Unknown _ -> ()
  | _ -> Alcotest.fail "raising member reports Unknown"

let race_all_members_raising () =
  let f = cnf "p cnf 1 1\n1 0\n" in
  let report = Portfolio.race [ failing_member "a"; failing_member "b" ] f in
  Alcotest.(check bool) "no winner" true (report.Portfolio.winner = None);
  Alcotest.(check int) "both reported" 2 (List.length report.Portfolio.members);
  List.iter
    (fun m -> Alcotest.(check bool) "errored" true (m.Portfolio.error <> None))
    report.Portfolio.members

(* ------------------------------------------------------------------ *)
(* batch certification *)

let lying_sat_member () =
  {
    Portfolio.name = "liar";
    run =
      (fun ~obs:_ ~parent:_ ~should_stop:_ ~max_iterations:_ ~import:_ f ->
        {
          (* a model of all-false: falsifies any positive clause *)
          Portfolio.result = Cdcl.Solver.Sat (Array.make (Sat.Cnf.num_vars f) false);
          iterations = 1;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

let lying_unsat_member () =
  {
    Portfolio.name = "liar-unsat";
    run =
      (fun ~obs:_ ~parent:_ ~should_stop:_ ~max_iterations:_ ~import:_ _f ->
        {
          Portfolio.result = Cdcl.Solver.Unsat;
          iterations = 1;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

let batch_certifies_honest_answers () =
  let f = Workload.Uniform.uf (Testutil.rng 3) 20 in
  let jobs = [ Job.make ~certify:true ~id:0 f ] in
  let members = Batch.solo ~log_proof:true "minisat" in
  let _, results = Batch.run ~members jobs in
  match results with
  | [ r ] ->
      Alcotest.(check string) "outcome" "sat" r.Batch.record.Telemetry.outcome;
      Alcotest.(check string) "verified" "model" r.Batch.record.Telemetry.verified
  | _ -> Alcotest.fail "expected one result"

let batch_certifies_unsat_proof () =
  let f = cnf "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n" in
  let jobs = [ Job.make ~certify:true ~id:0 f ] in
  let members = Batch.solo ~log_proof:true "minisat" in
  let _, results = Batch.run ~members jobs in
  match results with
  | [ r ] ->
      Alcotest.(check string) "outcome" "unsat" r.Batch.record.Telemetry.outcome;
      Alcotest.(check string) "verified" "proof" r.Batch.record.Telemetry.verified
  | _ -> Alcotest.fail "expected one result"

let batch_withholds_uncertified_claims () =
  let f = cnf "p cnf 2 1\n1 2 0\n" in
  let run members_fn =
    let jobs = [ Job.make ~certify:true ~id:0 f ] in
    let _, results = Batch.run ~members:members_fn jobs in
    List.hd results
  in
  let r = run (fun ~spec:_ ~seed:_ -> [ lying_sat_member () ]) in
  Alcotest.(check string) "bogus model withheld" "unknown:cert-failed"
    r.Batch.record.Telemetry.outcome;
  Alcotest.(check bool) "reason recorded" true
    (String.length r.Batch.record.Telemetry.verified >= 6
    && String.sub r.Batch.record.Telemetry.verified 0 6 = "failed");
  let r = run (fun ~spec:_ ~seed:_ -> [ lying_unsat_member () ]) in
  Alcotest.(check string) "proofless unsat withheld" "unknown:cert-failed"
    r.Batch.record.Telemetry.outcome

let batch_projects_models_to_original () =
  (* what the fixed CLI does for a k-SAT input *)
  let original = cnf "p cnf 4 2\n1 2 3 4 0\n-1 -2 0\n" in
  let converted, _map = Sat.Three_sat.convert original in
  let jobs = [ Job.make ~original ~certify:true ~id:0 converted ] in
  let members = Batch.solo ~log_proof:true "minisat" in
  let _, results = Batch.run ~members jobs in
  match results with
  | [ { Batch.outcome = Job.Sat m; record; _ } ] ->
      Alcotest.(check int) "model in original space" (Sat.Cnf.num_vars original)
        (Array.length m);
      Alcotest.(check bool) "satisfies the original formula" true
        (Testutil.check_model original m);
      Alcotest.(check string) "certified" "model" record.Telemetry.verified
  | _ -> Alcotest.fail "expected one sat result"

(* ------------------------------------------------------------------ *)
(* fuzzing harness *)

let shrink_minimises () =
  let f = cnf "p cnf 4 4\n1 2 0\n3 4 0\n-1 -2 0\n-3 0\n" in
  (* synthetic failure, invariant under variable renaming: a unit clause *)
  let still_fails g =
    List.exists (fun c -> Sat.Clause.size c = 1) (Sat.Cnf.clauses g)
  in
  let shrunk = Fuzz.shrink ~still_fails f in
  Alcotest.(check int) "one clause left" 1 (Sat.Cnf.num_clauses shrunk);
  Alcotest.(check bool) "still failing" true (still_fails shrunk);
  Alcotest.(check int) "vars compacted" 1 (Sat.Cnf.num_vars shrunk)

let fuzz_reproducer_is_dimacs () =
  let f = cnf "p cnf 2 1\n1 2 0\n" in
  let failure =
    { Fuzz.instance_seed = 42; instance = f; shrunk = f; reason = "synthetic" }
  in
  let doc = Fuzz.reproducer failure in
  let f' = cnf doc in
  Alcotest.(check bool) "reproducer parses back" true (Sat.Cnf.equal f f')

let differential_fuzz_campaign () =
  (* the acceptance bar: ≥200 random instances, hybrid vs minisat vs brute,
     every answer certified, zero disagreements *)
  let outcome = Fuzz.run Fuzz.default_config in
  Alcotest.(check int) "ran the full campaign" 200 outcome.Fuzz.ran;
  match outcome.Fuzz.failures with
  | [] -> ()
  | failure :: _ ->
      Alcotest.fail
        (Printf.sprintf "fuzzer found a divergence: %s\nreproducer:\n%s" failure.Fuzz.reason
           (Fuzz.reproducer failure))

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "dimacs: SATLIB %% footer" `Quick dimacs_satlib_footer;
        Alcotest.test_case "dimacs: CRLF and tabs" `Quick dimacs_crlf_and_tabs;
        Alcotest.test_case "dimacs: footer masks no errors" `Quick
          dimacs_footer_does_not_mask_errors;
        Alcotest.test_case "drat: whitespace tokenization" `Quick drat_parse_whitespace;
        Alcotest.test_case "drat: rejects bare d" `Quick drat_parse_rejects_bare_d;
        Alcotest.test_case "drat: rejects non-RUP step" `Quick drat_rejects_non_rup_step;
        Alcotest.test_case "drat: requires empty clause" `Quick drat_requires_empty_clause;
        Alcotest.test_case "drat: deletion breaks proof" `Quick
          drat_rejects_deleting_load_bearing_clause;
        Alcotest.test_case "certify: sat projects to original" `Quick
          certify_sat_projects_to_original;
        Alcotest.test_case "certify: unsat carries checked proof" `Quick
          certify_unsat_with_proof;
        Alcotest.test_case "certify: rejects wrong model" `Quick certify_rejects_wrong_model;
        Alcotest.test_case "portfolio: race survives raising member" `Quick
          race_survives_raising_member;
        Alcotest.test_case "portfolio: all members raising" `Quick race_all_members_raising;
        Alcotest.test_case "batch: certifies honest answers" `Quick
          batch_certifies_honest_answers;
        Alcotest.test_case "batch: certifies unsat proof" `Quick batch_certifies_unsat_proof;
        Alcotest.test_case "batch: withholds uncertified claims" `Quick
          batch_withholds_uncertified_claims;
        Alcotest.test_case "batch: projects models to original" `Quick
          batch_projects_models_to_original;
        Alcotest.test_case "fuzz: shrink minimises" `Quick shrink_minimises;
        Alcotest.test_case "fuzz: reproducer round-trips" `Quick fuzz_reproducer_is_dimacs;
        Alcotest.test_case "fuzz: 200-instance differential campaign" `Slow
          differential_fuzz_campaign;
      ] );
  ]
