(* Tests for CNF preprocessing and DRAT proof logging/checking. *)

module Simplify = Sat.Simplify
module Drat = Sat.Drat

(* ---- simplify ---- *)

let simplify_units () =
  (* x1; ¬x1 ∨ x2; x2 ∨ x3  —  units fix x1, x2 and the rest collapses *)
  let f = Sat.Dimacs.parse_string "p cnf 3 3\n1 0\n-1 2 0\n2 3 0\n" in
  match Simplify.simplify f with
  | Simplify.Unsat_by_simplification -> Alcotest.fail "satisfiable input"
  | Simplify.Simplified (f', r) ->
      Alcotest.(check int) "all clauses gone" 0 (Sat.Cnf.num_clauses f');
      Alcotest.(check bool) "x1 fixed true" true (List.mem (0, true) r.Simplify.fixed);
      Alcotest.(check bool) "x2 fixed true" true (List.mem (1, true) r.Simplify.fixed)

let simplify_conflict () =
  let f = Sat.Dimacs.parse_string "p cnf 2 3\n1 0\n-1 2 0\n-2 0\n" in
  Alcotest.(check bool) "conflict found" true
    (Simplify.simplify f = Simplify.Unsat_by_simplification)

let simplify_pure_literals () =
  (* x1 occurs only positively: all its clauses are satisfied by x1 = true *)
  let f = Sat.Dimacs.parse_string "p cnf 3 2\n1 2 0\n1 -3 0\n" in
  match Simplify.simplify f with
  | Simplify.Simplified (f', r) ->
      Alcotest.(check int) "clauses gone" 0 (Sat.Cnf.num_clauses f');
      Alcotest.(check bool) "x1 pure true" true (List.mem (0, true) r.Simplify.fixed)
  | Simplify.Unsat_by_simplification -> Alcotest.fail "satisfiable"

let simplify_subsumption () =
  (* (x1 ∨ x2) subsumes (x1 ∨ x2 ∨ x3); disable pure literals' reach by
     using both polarities of each variable elsewhere *)
  let f =
    Sat.Dimacs.parse_string "p cnf 3 4\n1 2 0\n1 2 3 0\n-1 -2 -3 0\n-3 1 0\n"
  in
  match Simplify.simplify ~subsumption:true f with
  | Simplify.Simplified (f', _) ->
      Alcotest.(check bool) "subsumed clause removed" true (Sat.Cnf.num_clauses f' < 4)
  | Simplify.Unsat_by_simplification -> Alcotest.fail "satisfiable"

let simplify_equisatisfiable =
  QCheck.Test.make ~name:"simplify preserves satisfiability + model reconstructs" ~count:200
    Testutil.small_cnf_arb (fun f ->
      let expected = Sat.Brute.solve f <> None in
      match Simplify.simplify f with
      | Simplify.Unsat_by_simplification -> not expected
      | Simplify.Simplified (f', r) -> (
          match Sat.Brute.solve f' with
          | None -> not expected
          | Some m' ->
              let m = Simplify.reconstruct r m' in
              expected && Testutil.check_model f m))

let simplify_never_grows =
  QCheck.Test.make ~name:"simplify never adds clauses or variables" ~count:100
    Testutil.small_cnf_arb (fun f ->
      match Simplify.simplify f with
      | Simplify.Unsat_by_simplification -> true
      | Simplify.Simplified (f', _) ->
          Sat.Cnf.num_clauses f' <= Sat.Cnf.num_clauses f
          && Sat.Cnf.num_vars f' = Sat.Cnf.num_vars f)

(* ---- drat ---- *)

let drat_roundtrip () =
  let proof =
    [
      Drat.Add [ Sat.Lit.pos 0; Sat.Lit.neg_of 2 ];
      Drat.Delete [ Sat.Lit.pos 1 ];
      Drat.Add [];
    ]
  in
  Alcotest.(check bool) "roundtrip" true (Drat.parse_string (Drat.to_string proof) = proof)

let drat_checker_accepts_resolution () =
  (* (x1 ∨ x2) (¬x1 ∨ x2) (¬x2): adding (x2) is RUP, then [] is RUP *)
  let f = Sat.Dimacs.parse_string "p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n" in
  let proof = [ Drat.Add [ Sat.Lit.pos 1 ]; Drat.Add [] ] in
  (match Drat.check f proof with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a bogus addition must be rejected: against (x1 ∨ x2) alone, assuming
     ¬x1 only makes the clause unit — no conflict, so (x1) is not RUP *)
  let g = Sat.Dimacs.parse_string "p cnf 2 1\n1 2 0\n" in
  let bogus = [ Drat.Add [ Sat.Lit.pos 0 ] ] in
  match Drat.check_steps g bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-RUP clause accepted"

let drat_requires_empty_clause () =
  let f = Sat.Dimacs.parse_string "p cnf 2 2\n1 2 0\n-2 0\n" in
  (* valid derivation but no contradiction: check must fail, check_steps pass *)
  let proof = [ Drat.Add [ Sat.Lit.pos 0 ] ] in
  (match Drat.check_steps f proof with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Drat.check f proof with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted without the empty clause"

let solver_proofs_check =
  QCheck.Test.make ~name:"solver UNSAT answers carry checkable DRAT proofs" ~count:120
    Testutil.small_cnf_arb (fun f ->
      let config = Cdcl.Config.with_proof_logging Cdcl.Config.minisat_like in
      let s = Cdcl.Solver.create ~config f in
      match Cdcl.Solver.solve s with
      | Cdcl.Solver.Sat _ -> (
          (* derivation steps must still be individually valid *)
          match Cdcl.Solver.proof s with
          | Some proof -> Drat.check_steps f proof = Ok ()
          | None -> false)
      | Cdcl.Solver.Unsat -> (
          match Cdcl.Solver.proof s with
          | Some proof -> Drat.check f proof = Ok ()
          | None -> false)
      | Cdcl.Solver.Unknown _ -> false)

let solver_proof_on_pigeonhole () =
  (* a structured UNSAT family with clause deletions in play *)
  let f = Test_cdcl.pigeonhole ~holes:4 in
  let config = Cdcl.Config.with_proof_logging Cdcl.Config.minisat_like in
  let s = Cdcl.Solver.create ~config f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "php unsat");
  match Cdcl.Solver.proof s with
  | None -> Alcotest.fail "no proof"
  | Some proof -> (
      Alcotest.(check bool) "nonempty proof" true (List.length proof > 1);
      match Drat.check f proof with Ok () -> () | Error e -> Alcotest.fail e)

let no_proof_without_flag () =
  let f = Sat.Dimacs.parse_string "p cnf 1 2\n1 0\n-1 0\n" in
  let s = Cdcl.Solver.create f in
  ignore (Cdcl.Solver.solve s);
  Alcotest.(check bool) "no proof" true (Cdcl.Solver.proof s = None)

let suite =
  [
    ( "sat.simplify",
      [
        Alcotest.test_case "units" `Quick simplify_units;
        Alcotest.test_case "conflict" `Quick simplify_conflict;
        Alcotest.test_case "pure literals" `Quick simplify_pure_literals;
        Alcotest.test_case "subsumption" `Quick simplify_subsumption;
        QCheck_alcotest.to_alcotest simplify_equisatisfiable;
        QCheck_alcotest.to_alcotest simplify_never_grows;
      ] );
    ( "sat.drat",
      [
        Alcotest.test_case "roundtrip" `Quick drat_roundtrip;
        Alcotest.test_case "accepts resolution" `Quick drat_checker_accepts_resolution;
        Alcotest.test_case "requires empty clause" `Quick drat_requires_empty_clause;
        QCheck_alcotest.to_alcotest solver_proofs_check;
        Alcotest.test_case "pigeonhole proof" `Quick solver_proof_on_pigeonhole;
        Alcotest.test_case "off by default" `Quick no_proof_without_flag;
      ] );
  ]
