(* Tests for the pluggable QA backend API (Anneal.Backend) and the
   fault-tolerant supervisor (Anneal.Supervisor): breaker state machine,
   retry/backoff determinism, deadline handling, the fault injector's
   RNG-isolation contract, and end-to-end degradation to pure CDCL. *)

module SI = Anneal.Sparse_ising
module Sampler = Anneal.Sampler
module Backend = Anneal.Backend
module Sup = Anneal.Supervisor
module Timing = Anneal.Timing
module Job = Service.Job
module Batch = Service.Batch
module Portfolio = Service.Portfolio
module Telemetry = Service.Telemetry

let fcheck = Alcotest.(check (float 1e-9))

let small_ising () =
  let n = 6 in
  let h = Array.make n 0.5 in
  let couplings = List.init (n - 1) (fun i -> ((i, i + 1), -1.0)) in
  SI.build ~n ~h ~couplings ~offset:0.

(* a random spin glass, matching what the machine layer actually sends *)
let glass_ising r =
  let n = 20 + Stats.Rng.int r 20 in
  let h = Array.init n (fun _ -> Stats.Rng.gaussian r ~mu:0. ~sigma:1.) in
  let couplings =
    List.init (n - 1) (fun i -> ((i, i + 1), Stats.Rng.gaussian r ~mu:0. ~sigma:1.))
  in
  SI.build ~n ~h ~couplings ~offset:0.

let request ?(params = Sampler.default_params) ?(domains = 1) ising =
  { Backend.ising; params; init = None; domains; pool = None; timing = Timing.d_wave_2000q }

let ok_response (req : Backend.request) =
  let spins = Array.make req.Backend.ising.SI.n (-1) in
  {
    Backend.spins;
    energy = SI.energy req.Backend.ising spins;
    time_us = Backend.model_time_us req;
  }

(* a device scripted from a step list; [after] is what it does once the
   script is spent *)
let scripted ?(after = `Ok) script =
  let remaining = ref script in
  Backend.of_fn ~name:"scripted" (fun ?obs:_ _rng req ->
      let step =
        match !remaining with
        | [] -> after
        | s :: rest ->
            remaining := rest;
            s
      in
      match step with `Ok -> Ok (ok_response req) | `Fail f -> Error f)

(* ------------------------------------------------------------------ *)
(* supervisor state machine *)

let retry_exhaustion_returns_last_failure () =
  let backend = scripted ~after:(`Fail Backend.Readout_corrupt) [] in
  let policy = Sup.make_policy ~retries:2 ~breaker_threshold:100 () in
  let sup = Sup.create ~policy backend in
  match Sup.sample sup (Testutil.rng 1) (request (small_ising ())) with
  | Error Backend.Readout_corrupt ->
      let s = Sup.stats sup in
      Alcotest.(check int) "one call" 1 s.Sup.calls;
      Alcotest.(check int) "retries+1 attempts" 3 s.Sup.attempts;
      Alcotest.(check int) "all retries used" 2 s.Sup.retries;
      Alcotest.(check int) "every attempt failed" 3 s.Sup.failures;
      Alcotest.(check int) "no successes" 0 s.Sup.successes
  | Ok _ -> Alcotest.fail "a permanently failing device cannot succeed"
  | Error f -> Alcotest.failf "wrong failure: %s" (Backend.failure_label f)

let transient_failure_recovers_with_deterministic_backoff () =
  let run seed =
    let backend = scripted [ `Fail Backend.Unavailable; `Fail Backend.Chain_break_storm ] in
    let sup = Sup.create ~seed ~policy:(Sup.make_policy ~retries:2 ()) backend in
    match Sup.sample sup (Testutil.rng 3) (request (small_ising ())) with
    | Ok r -> (r, Sup.stats sup)
    | Error f -> Alcotest.failf "expected recovery, got %s" (Backend.failure_label f)
  in
  let r1, s1 = run 11 in
  let r2, _ = run 11 in
  let r3, _ = run 12 in
  let clean = Backend.model_time_us (request (small_ising ())) in
  Alcotest.(check int) "two retries" 2 s1.Sup.retries;
  Alcotest.(check int) "one success" 1 s1.Sup.successes;
  Alcotest.(check bool) "failed attempts and backoff are charged" true
    (r1.Backend.time_us > clean +. 1e-9);
  fcheck "same jitter seed, same modelled time" r1.Backend.time_us r2.Backend.time_us;
  Alcotest.(check bool) "different jitter seed, different wait" true
    (abs_float (r3.Backend.time_us -. r1.Backend.time_us) > 1e-9)

let deadline_mid_read_times_out () =
  (* the scripted device always answers, but its modelled 138 us exceeds the
     50 us budget: the read is discarded as a timeout, never returned *)
  let backend = scripted [] in
  let policy = Sup.make_policy ~timeout_us:50.0 ~retries:1 () in
  let sup = Sup.create ~policy backend in
  match Sup.sample sup (Testutil.rng 1) (request (small_ising ())) with
  | Error Backend.Timeout ->
      let s = Sup.stats sup in
      Alcotest.(check int) "both attempts made" 2 s.Sup.attempts;
      Alcotest.(check int) "both charged as failures" 2 s.Sup.failures
  | Ok _ -> Alcotest.fail "a read past the deadline must not be returned"
  | Error f -> Alcotest.failf "wrong failure: %s" (Backend.failure_label f)

let breaker_lifecycle () =
  let failing = ref true in
  let backend =
    Backend.of_fn ~name:"flaky" (fun ?obs:_ _rng req ->
        if !failing then Error Backend.Unavailable else Ok (ok_response req))
  in
  let policy =
    Sup.make_policy ~retries:0 ~breaker_threshold:2 ~breaker_cooldown:2 ~half_open_probes:1 ()
  in
  let sup = Sup.create ~policy backend in
  let req = request (small_ising ()) in
  let call () = Sup.sample sup (Testutil.rng 1) req in
  (match call () with
  | Error Backend.Unavailable -> ()
  | _ -> Alcotest.fail "first failure expected");
  Alcotest.(check bool) "still closed after one failure" true (Sup.state sup = `Closed);
  (match call () with
  | Error Backend.Unavailable -> ()
  | _ -> Alcotest.fail "second failure expected");
  Alcotest.(check bool) "threshold reached: open" true (Sup.state sup = `Open);
  (* while open the device is not touched: the call fast-fails *)
  (match call () with
  | Error Backend.Breaker_open -> ()
  | _ -> Alcotest.fail "open breaker must fast-fail");
  Alcotest.(check int) "fast-fail counted" 1 (Sup.stats sup).Sup.fast_fails;
  Alcotest.(check int) "fast-fail never reached the device" 2 (Sup.stats sup).Sup.attempts;
  (* cooldown spent: next call is admitted as the half-open probe *)
  failing := false;
  (match call () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "probe should succeed, got %s" (Backend.failure_label f));
  Alcotest.(check bool) "good probe closes the breaker" true (Sup.state sup = `Closed);
  Alcotest.(check int) "closed -> open -> half_open -> closed" 3 (Sup.stats sup).Sup.transitions;
  (* and a closed breaker admits calls again *)
  match call () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "closed breaker must admit calls"

let probe_failure_reopens_breaker () =
  let backend = scripted ~after:(`Fail Backend.Unavailable) [] in
  let policy =
    Sup.make_policy ~retries:0 ~breaker_threshold:1 ~breaker_cooldown:1 ~half_open_probes:1 ()
  in
  let sup = Sup.create ~policy backend in
  let req = request (small_ising ()) in
  ignore (Sup.sample sup (Testutil.rng 1) req);
  Alcotest.(check bool) "open after threshold 1" true (Sup.state sup = `Open);
  (* cooldown of 1: this very call is the probe — and it fails *)
  ignore (Sup.sample sup (Testutil.rng 1) req);
  Alcotest.(check bool) "failed probe reopens" true (Sup.state sup = `Open)

let supervisor_metrics_exported () =
  let obs = Obs.Ctx.create () in
  let backend = scripted ~after:(`Fail Backend.Unavailable) [] in
  let policy =
    Sup.make_policy ~retries:0 ~breaker_threshold:1 ~breaker_cooldown:1 ~half_open_probes:1 ()
  in
  let sup = Sup.create ~obs ~policy backend in
  let req = request (small_ising ()) in
  ignore (Sup.sample sup (Testutil.rng 1) req);
  ignore (Sup.sample sup (Testutil.rng 1) req);
  let snap = Obs.Ctx.snapshot obs in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Obs.Ctx.Counter { count }) -> int_of_float count
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "calls counted" 2 (counter "qa_backend_calls_total");
  Alcotest.(check int) "failures labelled by reason" 2
    (counter "qa_failures_total{reason=\"unavailable\"}");
  Alcotest.(check int) "transitions to open" 2
    (counter "qa_breaker_transitions_total{to=\"open\"}");
  Alcotest.(check int) "transitions to half_open" 1
    (counter "qa_breaker_transitions_total{to=\"half_open\"}");
  (match List.assoc_opt "qa_breaker_state" snap with
  | Some (Obs.Ctx.Gauge { value }) -> fcheck "gauge shows open" 1.0 value
  | _ -> Alcotest.fail "missing qa_breaker_state gauge");
  Obs.Ctx.close obs

(* ------------------------------------------------------------------ *)
(* fault injector & backend equivalence (the Noise draw-order contract:
   a zero-rate injector and a zero-rate noise model draw nothing, so
   wrapping is bit-identical) *)

let zero_rate_wrapper_and_flavors_agree () =
  let ising = glass_ising (Testutil.rng 67) in
  let params =
    Sampler.make_params ~schedule:Sampler.quick_schedule ~noise:Anneal.Noise.default_2000q
      ~reads:3 ()
  in
  let req = request ~params ~domains:2 ising in
  let run backend seed =
    match Backend.sample backend (Testutil.rng seed) req with
    | Ok r -> r.Backend.spins
    | Error f -> Alcotest.failf "simulator failed: %s" (Backend.failure_label f)
  in
  let base = run Backend.best_of 73 in
  Alcotest.(check (array int)) "zero-rate fault wrapper is bit-identical" base
    (run (Backend.with_faults Backend.default_faults Backend.best_of) 73);
  Alcotest.(check (array int)) "incremental backend agrees" base (run Backend.incremental 73);
  Alcotest.(check (array int)) "reference backend agrees" base (run Backend.reference 73)

let failed_attempts_consume_no_caller_rng () =
  (* the injector draws from its own stream, so a supervised call over a
     faulty device must return exactly what the clean device returns for
     the same caller seed — retries are exact reruns *)
  let ising = glass_ising (Testutil.rng 61) in
  let params = Sampler.make_params ~schedule:Sampler.quick_schedule ~reads:2 () in
  let req = request ~params ising in
  let faulty =
    Backend.with_faults
      { Backend.fail_rate = 0.5; latency_us = 0.; fault_seed = 5; mix = Backend.default_mix }
      Backend.best_of
  in
  let policy = Sup.make_policy ~retries:20 ~breaker_threshold:1000 () in
  let sup = Sup.create ~policy faulty in
  for i = 0 to 9 do
    let seed = 71 + i in
    let clean =
      match Backend.sample Backend.best_of (Testutil.rng seed) req with
      | Ok r -> r
      | Error _ -> Alcotest.fail "clean simulator cannot fail"
    in
    match Sup.sample sup (Testutil.rng seed) req with
    | Ok r ->
        Alcotest.(check (array int))
          (Printf.sprintf "call %d: supervised spins equal clean spins" i)
          clean.Backend.spins r.Backend.spins
    | Error f -> Alcotest.failf "retries exhausted at call %d: %s" i (Backend.failure_label f)
  done;
  Alcotest.(check bool) "the injector actually fired" true ((Sup.stats sup).Sup.failures > 0)

let injected_latency_is_charged () =
  let ising = small_ising () in
  let req = request ising in
  let clean = Backend.model_time_us req in
  let slow =
    Backend.with_faults
      { Backend.fail_rate = 0.; latency_us = 500.; fault_seed = 2; mix = Backend.default_mix }
      Backend.best_of
  in
  match Backend.sample slow (Testutil.rng 3) req with
  | Ok r -> Alcotest.(check bool) "latency added to time_us" true (r.Backend.time_us > clean)
  | Error _ -> Alcotest.fail "zero fail rate cannot fail"

(* ------------------------------------------------------------------ *)
(* end-to-end degradation *)

let full_fault_hybrid_equals_classic () =
  let f = Workload.Uniform.uf (Testutil.rng 91) 30 in
  let faults =
    { Backend.fail_rate = 1.0; latency_us = 0.; fault_seed = 3; mix = Backend.default_mix }
  in
  let config =
    Hyqsat.Hybrid_solver.make_config
      ~backend:(Backend.of_spec { Backend.flavor = `Best_of; faults })
      ()
  in
  Alcotest.(check string) "mode labels" "hybrid"
    (Hyqsat.Solve.mode_label (Hyqsat.Solve.Hybrid config));
  let hybrid = Hyqsat.Solve.run (Hyqsat.Solve.Hybrid config) f in
  let classic = Hyqsat.Solve.run (Hyqsat.Solve.Classic config.Hyqsat.Hybrid_solver.cdcl) f in
  Alcotest.(check int) "identical iteration count" classic.Hyqsat.Hybrid_solver.iterations
    hybrid.Hyqsat.Hybrid_solver.iterations;
  (match (hybrid.Hyqsat.Hybrid_solver.result, classic.Hyqsat.Hybrid_solver.result) with
  | Cdcl.Solver.Sat a, Cdcl.Solver.Sat b ->
      Alcotest.(check bool) "identical model" true (a = b);
      Alcotest.(check bool) "model satisfies the formula" true (Testutil.check_model f a)
  | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "fully-degraded hybrid must answer exactly like classic");
  Alcotest.(check int) "no successful QA call" 0 hybrid.Hyqsat.Hybrid_solver.qa_calls;
  Alcotest.(check bool) "degradation recorded" true (hybrid.Hyqsat.Hybrid_solver.qa_degraded > 0);
  Alcotest.(check bool) "failures recorded" true (hybrid.Hyqsat.Hybrid_solver.qa_failures > 0);
  Alcotest.(check int) "classic reports zero degradation" 0
    classic.Hyqsat.Hybrid_solver.qa_degraded

let backend_race_members_find_valid_answer () =
  let f = Workload.Uniform.uf (Testutil.rng 93) 30 in
  let members = Portfolio.backend_race_members ~seed:7 () in
  Alcotest.(check (list string)) "one member per device flavor"
    [ "hybrid:incremental"; "hybrid:reference"; "hybrid:best-of" ]
    (List.map (fun m -> m.Portfolio.name) members);
  let report = Portfolio.race members f in
  match report.Portfolio.winner with
  | Some w -> (
      match w.Portfolio.stats.Portfolio.result with
      | Cdcl.Solver.Sat m ->
          Alcotest.(check bool) "winning model satisfies" true (Testutil.check_model f m)
      | _ -> Alcotest.fail "planted instance must be SAT")
  | None -> Alcotest.fail "backend race found no answer"

let faulty_certified_batch_stays_sound () =
  let rng = Testutil.rng 97 in
  let faults = { Backend.default_faults with Backend.fail_rate = 0.3; fault_seed = 5 } in
  let qa = { Job.default_qa with Job.backend = { Backend.default_spec with Backend.faults } } in
  let jobs =
    List.init 6 (fun i ->
        Job.make
          ~name:(Printf.sprintf "uf30-%d" i)
          ~certify:true ~qa
          ~seed:(1 + (211 * i))
          ~id:i (Workload.Uniform.uf rng 30))
  in
  let members = Batch.solo ~log_proof:true "hybrid" in
  let summary, results = Batch.run ~workers:2 ~members jobs in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("answer certified: " ^ r.Batch.record.Telemetry.job_name)
        true
        (r.Batch.record.Telemetry.outcome <> "unknown:cert-failed"))
    results;
  Alcotest.(check int) "faults never turn decidable jobs unknown" 0
    summary.Telemetry.unknown;
  let failures =
    List.fold_left (fun acc r -> acc + r.Batch.record.Telemetry.qa_failures) 0 results
  in
  Alcotest.(check bool) "the injector actually fired" true (failures > 0)

let suite =
  [
    ( "anneal.supervisor",
      [
        Alcotest.test_case "retry exhaustion" `Quick retry_exhaustion_returns_last_failure;
        Alcotest.test_case "transient recovery, deterministic backoff" `Quick
          transient_failure_recovers_with_deterministic_backoff;
        Alcotest.test_case "deadline mid-read" `Quick deadline_mid_read_times_out;
        Alcotest.test_case "breaker lifecycle" `Quick breaker_lifecycle;
        Alcotest.test_case "failed probe reopens" `Quick probe_failure_reopens_breaker;
        Alcotest.test_case "metrics exported" `Quick supervisor_metrics_exported;
      ] );
    ( "anneal.backend",
      [
        Alcotest.test_case "zero-rate wrapper & flavors agree" `Quick
          zero_rate_wrapper_and_flavors_agree;
        Alcotest.test_case "failures consume no caller RNG" `Quick
          failed_attempts_consume_no_caller_rng;
        Alcotest.test_case "injected latency charged" `Quick injected_latency_is_charged;
      ] );
    ( "anneal.degradation",
      [
        Alcotest.test_case "100% faults = classic" `Quick full_fault_hybrid_equals_classic;
        Alcotest.test_case "backend race members" `Quick backend_race_members_find_valid_answer;
        Alcotest.test_case "30% faults, certified batch" `Quick faulty_certified_batch_stays_sound;
      ] );
  ]
