(* Incremental & assumption-based solving: differential fuzz against fresh
   monolithic solves, clause-retention determinism, warm-started services. *)

module Solver = Cdcl.Solver
module Solve = Hyqsat.Solve
module Portfolio = Service.Portfolio
module Batch = Service.Batch
module Job = Service.Job
module Telemetry = Service.Telemetry
module Protocol = Server.Protocol
module Dispatch = Server.Dispatch

(* ------------------------------------------------------------------ *)
(* helpers *)

let random_assumptions r ~n ~k =
  let vars = Stats.Rng.sample_without_replacement r (min k n) n in
  List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool r)) vars

(* a fresh solver's verdict on [f] with [assumptions] — the monolithic
   reference every incremental answer is checked against *)
let fresh_verdict ?(config = Cdcl.Config.minisat_like) f assumptions =
  Solver.solve_with_assumptions (Solver.create ~config f) assumptions

let lit_satisfied model l =
  let v = Sat.Lit.var l in
  v < Array.length model && (if Sat.Lit.is_pos l then model.(v) else not model.(v))

let assumptions_hold model assumptions = List.for_all (lit_satisfied model) assumptions

let label = function
  | `Sat _ -> "sat"
  | `Unsat -> "unsat"
  | `Unsat_assumptions -> "unsat-assumptions"
  | `Unknown -> "unknown"

(* ------------------------------------------------------------------ *)
(* differential fuzz: one long-lived solver answering a stream of
   assumption queries must agree with a fresh solver per query *)

let fuzz_incremental_agrees_with_fresh () =
  let r = Testutil.rng 901 in
  for instance = 0 to 39 do
    let n = 5 + Stats.Rng.int r 8 in
    let m = 2 + Stats.Rng.int r (4 * n) in
    let f = Testutil.random_cnf r ~n ~m ~k:(min 3 n) in
    let inc = Solver.create f in
    for round = 0 to 3 do
      let assumptions =
        (* rounds 0..2 are random; round 3 is deliberately contradictory *)
        if round = 3 then
          let v = Stats.Rng.int r n in
          [ Sat.Lit.make v true; Sat.Lit.make v false ]
        else random_assumptions r ~n ~k:(1 + Stats.Rng.int r 3)
      in
      let got = Solver.solve_with_assumptions inc assumptions in
      let want = fresh_verdict f assumptions in
      let ctx = Printf.sprintf "instance %d round %d" instance round in
      (* [`Unsat] vs [`Unsat_assumptions] may differ between the two
         solvers (one that has learnt more can prove formula-level unsat
         where a fresh one only refutes the assumptions); satisfiability
         under the assumptions must agree, and each claim is certified
         below on its own *)
      let satness = function
        | `Sat _ -> "sat"
        | `Unsat | `Unsat_assumptions -> "unsat-under-assumptions"
        | `Unknown -> "unknown"
      in
      Alcotest.(check string) (ctx ^ ": verdicts agree") (satness want) (satness got);
      (match got with
      | `Sat model ->
          Alcotest.(check bool) (ctx ^ ": model satisfies formula") true
            (Testutil.check_model f model);
          Alcotest.(check bool) (ctx ^ ": model satisfies assumptions") true
            (assumptions_hold model assumptions)
      | `Unsat ->
          (* formula-level unsat: a fresh assumption-free solve concurs *)
          Alcotest.(check string) (ctx ^ ": fresh assumption-free solve")
            "unsat"
            (Sat.Answer.label (Solver.solve (Solver.create f)))
      | `Unsat_assumptions ->
          let core = Solver.unsat_core inc in
          Alcotest.(check bool) (ctx ^ ": core is non-empty") true (core <> []);
          Alcotest.(check bool) (ctx ^ ": core is a subset of the assumptions")
            true
            (List.for_all (fun l -> List.mem l assumptions) core);
          (* re-solve fresh with the core forced as unit clauses: UNSAT *)
          let forced =
            Sat.Cnf.make ~num_vars:n
              (List.map (fun l -> Sat.Clause.make [ l ]) core
              @ List.of_seq
                  (Seq.init (Sat.Cnf.num_clauses f) (fun i -> Sat.Cnf.clause f i)))
          in
          Alcotest.(check string) (ctx ^ ": core forced fresh is unsat") "unsat"
            (Sat.Answer.label (Solver.solve (Solver.create forced)))
      | `Unknown -> Alcotest.fail (ctx ^ ": unbudgeted solve returned unknown"));
      (* the stream never poisons assumption-free solving *)
      if round = 3 then
        let plain = Solver.solve inc in
        let ref_plain = Solver.solve (Solver.create f) in
        Alcotest.(check string) (ctx ^ ": plain solve unaffected by assumptions")
          (Sat.Answer.label ref_plain) (Sat.Answer.label plain)
    done
  done

(* growing the formula between solves agrees with solving the final
   formula monolithically (and with each prefix monolithically) *)
let fuzz_grow_between_solves () =
  let r = Testutil.rng 902 in
  for instance = 0 to 19 do
    let n = 4 + Stats.Rng.int r 6 in
    let m = 4 + Stats.Rng.int r (4 * n) in
    let f = Testutil.random_cnf r ~n ~m ~k:(min 3 n) in
    let clauses = List.of_seq (Seq.init m (fun i -> Sat.Cnf.clause f i)) in
    (* start from an empty solver: exercises variable growth from 0 *)
    let inc = Solver.create (Sat.Cnf.make ~num_vars:0 []) in
    let added = ref 0 in
    List.iteri
      (fun i c ->
        Solver.add_clause inc (Sat.Clause.lits c);
        incr added;
        if i = m / 2 || i = m - 1 then begin
          let prefix = Sat.Cnf.make ~num_vars:n (List.filteri (fun j _ -> j < !added) clauses) in
          let got = Solver.solve inc in
          let want = Solver.solve (Solver.create prefix) in
          Alcotest.(check string)
            (Printf.sprintf "instance %d after %d clauses" instance !added)
            (Sat.Answer.label want) (Sat.Answer.label got);
          match got with
          | Sat model ->
              Alcotest.(check bool) "prefix model certifies" true
                (Testutil.check_model prefix model)
          | _ -> ()
        end)
      clauses
  done

(* ------------------------------------------------------------------ *)
(* determinism: the same call sequence on two identical solvers yields
   identical answers and identical stats, solve after solve *)

let clause_retention_deterministic () =
  let r = Testutil.rng 903 in
  let f = Testutil.random_cnf r ~n:12 ~m:44 ~k:3 in
  let queries =
    [
      random_assumptions r ~n:12 ~k:2;
      [];
      random_assumptions r ~n:12 ~k:3;
      random_assumptions r ~n:12 ~k:1;
    ]
  in
  let run () =
    let s = Solver.create f in
    let answers = List.map (fun a -> label (Solver.solve_with_assumptions s a)) queries in
    (answers, Solver.stats s)
  in
  let a1, st1 = run () in
  let a2, st2 = run () in
  List.iter2 (fun x y -> Alcotest.(check string) "answers identical" x y) a1 a2;
  Alcotest.(check bool) "stats identical across runs" true (st1 = st2);
  (* and the later solves really did retain work: the second identical
     query costs no extra conflicts *)
  let s = Solver.create f in
  (match Solver.solve s with Sat _ | Unsat -> () | Unknown _ -> Alcotest.fail "undecided");
  let c1 = (Solver.stats s).Solver.conflicts in
  (match Solver.solve s with Sat _ | Unsat -> () | Unknown _ -> Alcotest.fail "undecided");
  let c2 = (Solver.stats s).Solver.conflicts in
  Alcotest.(check int) "cached re-solve adds no conflicts" c1 c2

(* re-entry after Unknown: each call gets a fresh budget and the chunked
   search still terminates with the monolithic answer *)
let budget_chunks_reach_answer () =
  let r = Testutil.rng 904 in
  for instance = 0 to 9 do
    let f = Testutil.random_cnf r ~n:14 ~m:58 ~k:3 in
    let want = Sat.Answer.label (Solver.solve (Solver.create f)) in
    let s = Solver.create f in
    let rec drive fuel =
      if fuel = 0 then Alcotest.fail "budgeted solve made no progress";
      match Solver.solve ~max_conflicts:2 s with
      | Unknown _ -> drive (fuel - 1)
      | answer -> answer
    in
    let got = drive 10_000 in
    Alcotest.(check string)
      (Printf.sprintf "instance %d: chunked = monolithic" instance)
      want (Sat.Answer.label got)
  done

(* ------------------------------------------------------------------ *)
(* learnt-clause export/import *)

let export_import_preserves_answers () =
  let r = Testutil.rng 905 in
  for instance = 0 to 9 do
    let f = Testutil.random_cnf r ~n:12 ~m:50 ~k:3 in
    let donor = Solver.create f in
    let want = Sat.Answer.label (Solver.solve donor) in
    let exported = Solver.export_learnts donor in
    let recipient = Solver.create f in
    let installed = Solver.import_clauses recipient exported in
    Alcotest.(check bool)
      (Printf.sprintf "instance %d: installs at most what was exported" instance)
      true
      (installed >= 0 && installed <= List.length exported);
    Alcotest.(check string) "warm answer = cold answer" want
      (Sat.Answer.label (Solver.solve recipient))
  done;
  (* a proof-logging recipient must refuse foreign clauses: they have no
     RUP derivation at that point in its log *)
  let f = Testutil.random_cnf (Testutil.rng 906) ~n:10 ~m:42 ~k:3 in
  let donor = Solver.create f in
  ignore (Solver.solve donor);
  let logging = Solver.create ~config:(Cdcl.Config.with_proof_logging Cdcl.Config.minisat_like) f in
  Alcotest.(check int) "proof-logging import installs nothing" 0
    (Solver.import_clauses logging (Solver.export_learnts donor));
  match Solver.solve logging with
  | Unsat ->
      let proof = Option.get (Solver.proof logging) in
      Alcotest.(check bool) "proof still checks" true
        (match Sat.Drat.check f proof with Ok () -> true | Error _ -> false)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Solve.Session: the facade keeps the same answers as one-shot runs *)

let session_matches_oneshot () =
  let r = Testutil.rng 907 in
  let f = Testutil.random_cnf r ~n:12 ~m:46 ~k:3 in
  let s = Solve.Session.create () in
  Solve.Session.add_formula s f;
  Alcotest.(check int) "vars admitted" (Sat.Cnf.num_vars f) (Solve.Session.num_vars s);
  for round = 0 to 2 do
    let assumptions = random_assumptions r ~n:12 ~k:2 in
    let got = Solve.Session.solve ~assumptions s in
    let want = fresh_verdict f assumptions in
    let ctx = Printf.sprintf "round %d" round in
    (match (got, want) with
    | `Sat model, `Sat _ ->
        Alcotest.(check bool) (ctx ^ ": session model certifies") true
          (Testutil.check_model f model && assumptions_hold model assumptions);
        List.iter
          (fun l ->
            Alcotest.(check (option bool)) (ctx ^ ": model_value agrees")
              (Some (lit_satisfied model l))
              (Option.map
                 (fun b -> if Sat.Lit.is_pos l then b else not b)
                 (Solve.Session.model_value s (Sat.Lit.var l))))
          assumptions
    | `Unsat, `Unsat -> ()
    | `Unsat_assumptions core, `Unsat_assumptions ->
        Alcotest.(check bool) (ctx ^ ": payload = unsat_core") true
          (core = Solve.Session.unsat_core s);
        Alcotest.(check bool) (ctx ^ ": core subset") true
          (core <> [] && List.for_all (fun l -> List.mem l assumptions) core)
    | _ ->
        Alcotest.fail
          (Printf.sprintf "%s: session %s but fresh %s" ctx
             (match got with
             | `Sat _ -> "sat"
             | `Unsat -> "unsat"
             | `Unsat_assumptions _ -> "unsat-assumptions"
             | `Unknown _ -> "unknown")
             (label want)))
  done;
  Alcotest.(check int) "solve_count" 3 (Solve.Session.solve_count s);
  Solve.Session.retire s

let session_grows_and_stays_sound () =
  let s = Solve.Session.create () in
  let x = Solve.Session.new_var s in
  let y = Solve.Session.new_var s in
  Solve.Session.add_clause s [ Sat.Lit.make x true; Sat.Lit.make y true ];
  (match Solve.Session.solve s with
  | `Sat m -> Alcotest.(check bool) "x or y" true (m.(x) || m.(y))
  | _ -> Alcotest.fail "sat expected");
  (* force both false: unsat under assumptions, then truly unsat *)
  (match
     Solve.Session.solve ~assumptions:[ Sat.Lit.make x false; Sat.Lit.make y false ] s
   with
  | `Unsat_assumptions core -> Alcotest.(check bool) "core non-empty" true (core <> [])
  | _ -> Alcotest.fail "unsat-assumptions expected");
  Solve.Session.add_clause s [ Sat.Lit.make x false ];
  Solve.Session.add_clause s [ Sat.Lit.make y false ];
  (match Solve.Session.solve s with
  | `Unsat -> ()
  | _ -> Alcotest.fail "unsat expected after contradictory clauses");
  Alcotest.(check int) "clauses accumulated" 3
    (Sat.Cnf.num_clauses (Solve.Session.formula s));
  Solve.Session.retire s

let hybrid_session_reuses_state () =
  let f = Workload.Uniform.uf (Testutil.rng 908) 20 in
  let s = Solve.Session.create ~mode:(Solve.hybrid ()) () in
  Solve.Session.add_formula s f;
  (match Solve.Session.solve s with
  | `Sat m -> Alcotest.(check bool) "hybrid session model certifies" true (Testutil.check_model f m)
  | `Unsat -> ()
  | _ -> Alcotest.fail "hybrid session should decide uf20");
  let report1 = Option.get (Solve.Session.last_report s) in
  (match Solve.Session.solve s with
  | `Sat _ | `Unsat -> ()
  | _ -> Alcotest.fail "re-solve should stay decided");
  let report2 = Option.get (Solve.Session.last_report s) in
  (* the second call answers from retained state: at most the one loop
     turn that reads the cached answer off the solver, no fresh search *)
  Alcotest.(check bool) "re-solve costs at most one iteration" true
    (report2.Hyqsat.Hybrid_solver.iterations <= 1);
  Alcotest.(check string) "same verdict"
    (Sat.Answer.label report1.Hyqsat.Hybrid_solver.result)
    (Sat.Answer.label report2.Hyqsat.Hybrid_solver.result);
  Solve.Session.retire s

(* ------------------------------------------------------------------ *)
(* service layer: race learnt pooling and batch warm-start *)

let stats_with learnts =
  {
    Portfolio.result = Cdcl.Solver.Unsat;
    iterations = 1;
    qa_calls = 0;
    qa_failures = 0;
    qa_degraded = 0;
    strategy_uses = Array.make 4 0;
    reused_clauses = 0;
    learnts;
    proof = None;
  }

let member_with name learnts =
  { Portfolio.member = name; stats = stats_with learnts; time_s = 0.; cancelled = false; error = None }

let race_learnts_dedup_and_order () =
  let c1 = [| 0; 2 |] and c1' = [| 2; 0 |] and c2 = [| 5 |] and c3 = [| 1; 3; 4 |] in
  let w = member_with "winner" [ c1; c2 ] in
  let loser = member_with "loser" [ c1'; c3 ] in
  let report = { Portfolio.winner = Some w; members = [ loser; w ]; wall_time_s = 0. } in
  let pooled = Portfolio.race_learnts report in
  (* winner first, the loser's literal-permuted duplicate dropped *)
  Alcotest.(check int) "deduped count" 3 (List.length pooled);
  Alcotest.(check bool) "winner clauses lead" true
    (match pooled with a :: b :: _ -> a == c1 && b == c2 | _ -> false);
  Alcotest.(check bool) "loser novelty kept" true (List.memq c3 pooled);
  let capped = Portfolio.race_learnts ~max_clauses:1 report in
  Alcotest.(check bool) "cap keeps the winner's best" true (capped = [ c1 ])

let batch_warm_start_reuses_and_agrees () =
  let f = Workload.Uniform.uf (Testutil.rng 909) 30 in
  let jobs =
    List.init 3 (fun i ->
        (* same formula and seed on purpose: the stream a session submits *)
        Job.make ~name:(Printf.sprintf "warm-%d" i) ~seed:7 ~id:i f)
  in
  let members = Batch.solo "minisat" in
  let _, cold = Batch.run ~members jobs in
  let _, warm = Batch.run ~warm_start:true ~members jobs in
  List.iter2
    (fun (c : Batch.job_result) (w : Batch.job_result) ->
      Alcotest.(check string) "warm outcome = cold outcome"
        (Job.outcome_label c.Batch.outcome) (Job.outcome_label w.Batch.outcome))
    cold warm;
  let flags = List.map (fun r -> r.Batch.record.Telemetry.warm_start) warm in
  Alcotest.(check (list bool)) "first job cold, repeats warm" [ false; true; true ] flags;
  List.iter
    (fun (r : Batch.job_result) ->
      if r.Batch.record.Telemetry.warm_start then
        Alcotest.(check bool) "warm job reports reused clauses" true
          (r.Batch.record.Telemetry.reused_clauses > 0))
    warm;
  List.iter
    (fun (r : Batch.job_result) ->
      Alcotest.(check bool) "cold batch never warm-starts" false
        r.Batch.record.Telemetry.warm_start)
    cold

(* ------------------------------------------------------------------ *)
(* wire protocol + dispatcher sessions *)

let protocol_session_roundtrip () =
  let spec =
    Protocol.make_job_spec ~name:"s.cnf" ~session:"stream-1" ~id:3 "p cnf 1 1\n1 0\n"
  in
  (match Protocol.decode_client (Protocol.encode_client (Protocol.Submit spec)) with
  | Ok (Protocol.Submit s) ->
      Alcotest.(check (option string)) "session survives the wire" (Some "stream-1")
        s.Protocol.session
  | _ -> Alcotest.fail "submit did not round-trip");
  (* absent on the wire = one-shot: old submitters keep working *)
  let bare = Protocol.make_job_spec ~id:0 "p cnf 1 1\n1 0\n" in
  (match Protocol.decode_client (Protocol.encode_client (Protocol.Submit bare)) with
  | Ok (Protocol.Submit s) ->
      Alcotest.(check (option string)) "absent field reads as None" None s.Protocol.session
  | _ -> Alcotest.fail "bare submit did not round-trip")

let retire_all d =
  let rec go acc fuel =
    if fuel = 0 then Alcotest.fail "dispatch did not settle"
    else if Dispatch.idle d then List.rev acc
    else begin
      Thread.yield ();
      let batch = Dispatch.take_completions d in
      go (List.rev_append batch acc) (fuel - 1)
    end
  in
  go [] 10_000_000

let strip_timing (r : Telemetry.record) = { r with queue_wait_s = 0.; solve_time_s = 0. }

let session_first_instance_matches_oneshot () =
  let formula = Workload.Uniform.uf (Testutil.rng 910) 20 in
  let dimacs = Sat.Dimacs.to_string formula in
  let config = { Dispatch.default_config with Dispatch.workers = 1 } in
  let answer session =
    let d = Dispatch.create config in
    let wire = Protocol.make_job_spec ~name:"s.cnf" ~certify:true ~seed:99 ?session ~id:0 dimacs in
    (match Dispatch.submit d ~client:"t" ~conn:1 wire with
    | Dispatch.Accepted _ -> ()
    | _ -> Alcotest.fail "submit rejected");
    let cs = retire_all d in
    Dispatch.shutdown d;
    match cs with
    | [ c ] ->
        Telemetry.json_to_string
          (Telemetry.json_of_record (strip_timing c.Dispatch.result.Batch.record))
    | _ -> Alcotest.fail "expected one completion"
  in
  Alcotest.(check string) "session first instance = one-shot bytes (timing zeroed)"
    (answer None) (answer (Some "warm"))

let dispatch_session_warms_repeats () =
  let formula = Workload.Uniform.uf (Testutil.rng 911) 20 in
  let dimacs = Sat.Dimacs.to_string formula in
  let d = Dispatch.create { Dispatch.default_config with Dispatch.workers = 1; per_client = 8 } in
  for i = 0 to 2 do
    match
      Dispatch.submit d ~client:"t" ~conn:1
        (Protocol.make_job_spec ~name:(Printf.sprintf "s%d.cnf" i) ~seed:99
           ~session:"stream" ~id:i dimacs)
    with
    | Dispatch.Accepted _ -> ()
    | _ -> Alcotest.fail "submit rejected"
  done;
  let cs = retire_all d in
  Dispatch.shutdown d;
  let by_id = List.sort (fun a b -> compare a.Dispatch.job_id b.Dispatch.job_id) cs in
  let outcomes =
    List.map (fun c -> c.Dispatch.result.Batch.record.Telemetry.outcome) by_id
  in
  (match outcomes with
  | [ a; b; c ] ->
      Alcotest.(check string) "same answer across the session" a b;
      Alcotest.(check string) "same answer across the session" a c
  | _ -> Alcotest.fail "expected three completions");
  let flags =
    List.map (fun c -> c.Dispatch.result.Batch.record.Telemetry.warm_start) by_id
  in
  Alcotest.(check (list bool)) "repeats warm-start" [ false; true; true ] flags

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "incremental.solver",
      [
        Alcotest.test_case "fuzz: incremental = fresh" `Quick fuzz_incremental_agrees_with_fresh;
        Alcotest.test_case "fuzz: grow between solves" `Quick fuzz_grow_between_solves;
        Alcotest.test_case "retention determinism" `Quick clause_retention_deterministic;
        Alcotest.test_case "budget chunks terminate" `Quick budget_chunks_reach_answer;
        Alcotest.test_case "export/import learnts" `Quick export_import_preserves_answers;
      ] );
    ( "incremental.session",
      [
        Alcotest.test_case "matches one-shot" `Quick session_matches_oneshot;
        Alcotest.test_case "grows and stays sound" `Quick session_grows_and_stays_sound;
        Alcotest.test_case "hybrid state reuse" `Quick hybrid_session_reuses_state;
      ] );
    ( "incremental.service",
      [
        Alcotest.test_case "race_learnts pooling" `Quick race_learnts_dedup_and_order;
        Alcotest.test_case "batch warm-start" `Quick batch_warm_start_reuses_and_agrees;
      ] );
    ( "incremental.wire",
      [
        Alcotest.test_case "session round-trips" `Quick protocol_session_roundtrip;
        Alcotest.test_case "first instance = one-shot" `Quick session_first_instance_matches_oneshot;
        Alcotest.test_case "repeats warm-start" `Quick dispatch_session_warms_repeats;
      ] );
  ]
