(* Cross-library integration tests: the full hybrid pipeline on every
   workload family, soundness under failure injection, and end-to-end
   accounting invariants. *)

module Hybrid = Hyqsat.Hybrid_solver

let hsolve ?(config = Hybrid.default_config) f = Hybrid.run (Hybrid.Hybrid config) f
let csolve f = Hybrid.run (Hybrid.Classic Cdcl.Config.minisat_like) f

let small_instance (spec : Workload.Spec.t) seed =
  spec.Workload.Spec.generate (Testutil.rng seed) `Small

(* tiny versions of each family so the integration pass stays fast *)
let tiny_instances =
  [
    ("gc", fun r -> Workload.Graph_coloring.generate r ~nodes:12 ~edges:22);
    ("cfa", fun r -> Workload.Circuit_fault.generate r ~inputs:6 ~gates:24);
    ("bp", fun r -> Workload.Block_planning.generate r ~blocks:3 ~steps:2);
    ("ii", fun r -> Workload.Inductive_inference.generate r ~attributes:8 ~terms:2 ~examples:10);
    ("if", fun r -> Workload.Factoring.generate r ~bits:4);
    ("cry", fun r -> Workload.Crypto.generate r ~bits:5);
    ("ai", fun r -> Workload.Uniform.uf r 40);
  ]

let hybrid_solves_every_family () =
  List.iter
    (fun (name, gen) ->
      let f = gen (Testutil.rng (Hashtbl.hash name)) in
      let classic = csolve f in
      let hybrid = hsolve f in
      let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false in
      Alcotest.(check bool)
        (name ^ ": hybrid agrees with classic")
        (is_sat classic.Hybrid.result) (is_sat hybrid.Hybrid.result);
      match hybrid.Hybrid.result with
      | Cdcl.Solver.Sat m ->
          Alcotest.(check bool) (name ^ ": model valid") true (Testutil.check_model f m)
      | Cdcl.Solver.Unsat | Cdcl.Solver.Unknown _ -> ())
    tiny_instances

let simplify_then_solve_agrees () =
  (* preprocessing composes with the hybrid solver *)
  List.iter
    (fun (name, gen) ->
      let f = gen (Testutil.rng (1 + Hashtbl.hash name)) in
      let direct = csolve f in
      let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false in
      match Sat.Simplify.simplify f with
      | Sat.Simplify.Unsat_by_simplification ->
          Alcotest.(check bool) (name ^ ": simplify unsat") false (is_sat direct.Hybrid.result)
      | Sat.Simplify.Simplified (f', r) -> (
          let simplified = hsolve f' in
          Alcotest.(check bool)
            (name ^ ": simplified agrees")
            (is_sat direct.Hybrid.result)
            (is_sat simplified.Hybrid.result);
          match simplified.Hybrid.result with
          | Cdcl.Solver.Sat m ->
              let full = Sat.Simplify.reconstruct r m in
              Alcotest.(check bool) (name ^ ": reconstructed model") true
                (Testutil.check_model f full)
          | _ -> ()))
    tiny_instances

let unsat_with_proof_end_to_end () =
  (* generate a circuit-fault instance, solve with proof logging, check *)
  let f = Workload.Circuit_fault.generate (Testutil.rng 77) ~inputs:6 ~gates:20 in
  let config = Cdcl.Config.with_proof_logging Cdcl.Config.minisat_like in
  let s = Cdcl.Solver.create ~config f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "cfa should be unsat");
  match Cdcl.Solver.proof s with
  | None -> Alcotest.fail "proof missing"
  | Some proof -> (
      match Sat.Drat.check f proof with Ok () -> () | Error e -> Alcotest.fail e)

let extreme_noise_soundness () =
  (* failure injection: an adversarially noisy annealer cannot change any
     answer, only slow the search down *)
  let config =
    Hybrid.make_config
      ~noise:{ Anneal.Noise.coeff_sigma = 1.0; readout_flip = 0.5; shallow_anneal = true }
      ()
  in
  List.iter
    (fun (name, gen) ->
      let f = gen (Testutil.rng (2 + Hashtbl.hash name)) in
      let classic = csolve f in
      let hybrid = hsolve ~config f in
      let is_sat = function Cdcl.Solver.Sat _ -> true | _ -> false in
      Alcotest.(check bool)
        (name ^ ": sound under extreme noise")
        (is_sat classic.Hybrid.result) (is_sat hybrid.Hybrid.result))
    tiny_instances

let pipelined_time_bounds () =
  let f = small_instance (Workload.Spec.find "AI1") 9 in
  let r = hsolve f in
  Alcotest.(check bool) "pipelined <= serialised" true
    (Hybrid.end_to_end_pipelined_s r <= Hybrid.end_to_end_time_s r +. 1e-12);
  Alcotest.(check bool) "pipelined >= cdcl" true
    (Hybrid.end_to_end_pipelined_s r >= r.Hybrid.cdcl_time_s -. 1e-12)

let deterministic_given_seed () =
  let f = small_instance (Workload.Spec.find "AI1") 11 in
  let r1 = hsolve f and r2 = hsolve f in
  Alcotest.(check int) "same iterations" r1.Hybrid.iterations r2.Hybrid.iterations;
  Alcotest.(check int) "same qa calls" r1.Hybrid.qa_calls r2.Hybrid.qa_calls;
  Alcotest.(check bool) "same strategies" true
    (r1.Hybrid.strategy_uses = r2.Hybrid.strategy_uses)

let cli_roundtrip_via_dimacs () =
  (* what the CLI does: write an instance, parse it back, solve *)
  let f = small_instance (Workload.Spec.find "GC1") 13 in
  let path = Filename.temp_file "hyqsat_test" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sat.Dimacs.write_file ~comments:[ "integration test" ] path f;
      let f' = Sat.Dimacs.parse_file path in
      Alcotest.(check bool) "roundtrip equal" true (Sat.Cnf.equal f f');
      match (hsolve f').Hybrid.result with
      | Cdcl.Solver.Sat m -> Alcotest.(check bool) "model" true (Testutil.check_model f m)
      | _ -> Alcotest.fail "flat graphs are 3-colourable")

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "hybrid solves every family" `Slow hybrid_solves_every_family;
        Alcotest.test_case "simplify composes" `Slow simplify_then_solve_agrees;
        Alcotest.test_case "unsat proof end-to-end" `Quick unsat_with_proof_end_to_end;
        Alcotest.test_case "extreme-noise soundness" `Slow extreme_noise_soundness;
        Alcotest.test_case "pipelined time bounds" `Quick pipelined_time_bounds;
        Alcotest.test_case "deterministic given seed" `Quick deterministic_given_seed;
        Alcotest.test_case "dimacs roundtrip solve" `Quick cli_roundtrip_via_dimacs;
      ] );
  ]
