let () =
  Alcotest.run "hyqsat"
    (List.concat [ Test_sat.suite; Test_stats.suite; Test_cdcl.suite; Test_qubo.suite; Test_chimera.suite; Test_embed.suite; Test_anneal.suite; Test_supervisor.suite; Test_workload.suite; Test_hyqsat.suite; Test_simplify_drat.suite; Test_cardinality.suite; Test_optimize.suite; Test_integration.suite; Test_service.suite; Test_incremental.suite; Test_check.suite; Test_obs.suite; Test_server.suite; Test_properties.suite; Test_arena.suite ])
