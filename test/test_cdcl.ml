(* Unit and property tests for the CDCL solver and its support structures. *)

module Vec = Cdcl.Vec
module Var_heap = Cdcl.Var_heap
module Luby = Cdcl.Luby
module Config = Cdcl.Config
module Solver = Cdcl.Solver

let vec_basics () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check int) "filtered size" 50 (Vec.size v);
  Alcotest.(check int) "filtered order" 10 (Vec.get v 5);
  Vec.shrink v 3;
  Alcotest.(check (list int)) "shrunk" [ 0; 2; 4 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let heap_orders_by_activity () =
  let act = [| 5.0; 1.0; 9.0; 3.0; 7.0 |] in
  let h = Var_heap.create 5 act in
  let order = List.init 5 (fun _ -> Var_heap.pop_max h) in
  Alcotest.(check (list int)) "descending activity" [ 2; 4; 0; 3; 1 ] order;
  Alcotest.(check bool) "empty" true (Var_heap.is_empty h)

let heap_notify_increase () =
  let act = [| 1.0; 2.0; 3.0 |] in
  let h = Var_heap.create 3 act in
  act.(0) <- 10.0;
  Var_heap.notify_increase h 0;
  Alcotest.(check int) "bumped var first" 0 (Var_heap.pop_max h)

let heap_reinsert () =
  let act = [| 1.0; 2.0 |] in
  let h = Var_heap.create 2 act in
  let v = Var_heap.pop_max h in
  Alcotest.(check int) "max" 1 v;
  Alcotest.(check bool) "absent" false (Var_heap.in_heap h 1);
  Var_heap.insert h 1;
  Var_heap.insert h 1;
  Alcotest.(check int) "size after double insert" 2 (Var_heap.size h)

let luby_prefix () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let got = List.init 15 (fun i -> Luby.luby (i + 1)) in
  Alcotest.(check (list int)) "luby prefix" expected got

let solve_with config f = Solver.solve (Solver.create ~config f)

let trivial_sat () =
  let f = Sat.Dimacs.parse_string "p cnf 2 2\n1 2 0\n-1 2 0\n" in
  match solve_with Config.minisat_like f with
  | Solver.Sat m -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
  | _ -> Alcotest.fail "expected SAT"

let trivial_unsat () =
  let f = Sat.Dimacs.parse_string "p cnf 1 2\n1 0\n-1 0\n" in
  Alcotest.(check bool) "unsat" true (solve_with Config.minisat_like f = Solver.Unsat)

let empty_clause_unsat () =
  let f = Sat.Cnf.make ~num_vars:2 [ Sat.Clause.make [] ] in
  Alcotest.(check bool) "unsat" true (solve_with Config.minisat_like f = Solver.Unsat)

let empty_formula_sat () =
  let f = Sat.Cnf.make ~num_vars:3 [] in
  match solve_with Config.minisat_like f with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "empty formula is satisfiable"

let unit_propagation_only () =
  (* a chain of implications solvable without decisions *)
  let f =
    Sat.Dimacs.parse_string "p cnf 4 4\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n"
  in
  let s = Solver.create f in
  (match Solver.solve s with
  | Solver.Sat m -> Alcotest.(check bool) "model" true (Array.for_all Fun.id m)
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check int) "one decision at most" 0 (Solver.stats s).Solver.decisions

let pigeonhole ~holes =
  (* PHP(holes+1, holes): unsatisfiable, standard CDCL stress test.
     var p_{i,j} = pigeon i in hole j, i in [0..holes], j in [0..holes-1] *)
  let np = holes + 1 in
  let var i j = (i * holes) + j in
  let clauses = ref [] in
  for i = 0 to np - 1 do
    clauses := Sat.Clause.make (List.init holes (fun j -> Sat.Lit.pos (var i j))) :: !clauses
  done;
  for j = 0 to holes - 1 do
    for i1 = 0 to np - 1 do
      for i2 = i1 + 1 to np - 1 do
        clauses :=
          Sat.Clause.make [ Sat.Lit.neg_of (var i1 j); Sat.Lit.neg_of (var i2 j) ] :: !clauses
      done
    done
  done;
  Sat.Cnf.make ~num_vars:(np * holes) !clauses

let pigeonhole_unsat () =
  List.iter
    (fun holes ->
      Alcotest.(check bool)
        (Printf.sprintf "php %d unsat" holes)
        true
        (solve_with Config.minisat_like (pigeonhole ~holes) = Solver.Unsat))
    [ 2; 3; 4; 5 ]

let pigeonhole_unsat_chb () =
  Alcotest.(check bool) "php 4 unsat with CHB" true
    (solve_with Config.kissat_like (pigeonhole ~holes:4) = Solver.Unsat)

let agrees_with_brute config name =
  QCheck.Test.make ~name ~count:300 Testutil.small_cnf_arb (fun f ->
      let expected = Sat.Brute.solve f <> None in
      match solve_with config f with
      | Solver.Sat m -> expected && Testutil.check_model f m
      | Solver.Unsat -> not expected
      | Solver.Unknown _ -> false)

let budget_returns_unknown () =
  let r = Testutil.rng 7 in
  (* a hard-ish random instance at the phase-transition ratio *)
  let f = Testutil.random_cnf r ~n:60 ~m:256 ~k:3 in
  let s = Solver.create f in
  match Solver.solve ~max_conflicts:1 s with
  | Solver.Unknown _ | Solver.Sat _ | Solver.Unsat -> (
      (* resume must reach a definite answer *)
      match Solver.solve s with
      | Solver.Sat m -> Alcotest.(check bool) "model" true (Testutil.check_model f m)
      | Solver.Unsat -> ()
      | Solver.Unknown _ -> Alcotest.fail "unbudgeted resume returned Unknown")

let step_equivalent_to_solve () =
  let r = Testutil.rng 11 in
  for _ = 1 to 20 do
    let f = Testutil.random_cnf r ~n:12 ~m:50 ~k:3 in
    let s = Solver.create f in
    let rec drive () =
      match Solver.step s with
      | `Continue -> drive ()
      | `Sat m -> Solver.Sat m
      | `Unsat -> Solver.Unsat
      | `Unsat_assumptions -> Alcotest.fail "no assumptions installed"
    in
    let via_step = drive () in
    let expected = Sat.Brute.solve f <> None in
    (match via_step with
    | Solver.Sat m ->
        Alcotest.(check bool) "step model" true (Testutil.check_model f m);
        Alcotest.(check bool) "step sat agrees" true expected
    | Solver.Unsat -> Alcotest.(check bool) "step unsat agrees" false expected
    | Solver.Unknown _ -> Alcotest.fail "step cannot be unknown");
    (* after a decision, further steps keep returning the same answer *)
    match (Solver.step s, via_step) with
    | `Sat _, Solver.Sat _ | `Unsat, Solver.Unsat -> ()
    | (`Continue | `Sat _ | `Unsat | `Unsat_assumptions), _ ->
        Alcotest.fail "terminal state not sticky"
  done

let polarity_hint_respected () =
  (* both polarities satisfiable: the hint should pick the branch *)
  let f = Sat.Dimacs.parse_string "p cnf 2 1\n1 2 0\n" in
  let s = Solver.create f in
  Solver.set_polarity s 0 true;
  Solver.set_polarity s 1 true;
  match Solver.solve s with
  | Solver.Sat m ->
      Alcotest.(check bool) "hinted var true" true (m.(0) || m.(1));
      Alcotest.(check bool) "first decision respects hint" true m.(0)
  | _ -> Alcotest.fail "expected SAT"

let prioritize_vars_first () =
  let r = Testutil.rng 5 in
  let f = Testutil.random_cnf r ~n:20 ~m:30 ~k:3 in
  let s = Solver.create f in
  Solver.prioritize_vars s [ 17; 3 ];
  (* drive two iterations: first decisions must be 17 then 3 unless they were
     propagated away first (no unit clauses here, so they are decided) *)
  let decided = ref [] in
  let rec drive k =
    if k > 0 then
      match Solver.step s with
      | `Continue ->
          List.iter
            (fun l ->
              let v = Sat.Lit.var l in
              if not (List.mem v !decided) then decided := v :: !decided)
            (Solver.trail_literals s);
          drive (k - 1)
      | _ -> ()
  in
  drive 2;
  match List.rev !decided with
  | v1 :: v2 :: _ ->
      Alcotest.(check int) "first priority var" 17 v1;
      Alcotest.(check int) "second priority var" 3 v2
  | _ -> Alcotest.fail "expected two decisions"

let clause_activity_grows () =
  let f = pigeonhole ~holes:4 in
  (* the per-clause counters are gated: consumers must opt in *)
  let s = Solver.create ~config:(Config.with_paper_stats Config.default) f in
  ignore (Solver.solve s);
  let any_bumped = ref false in
  for i = 0 to Sat.Cnf.num_clauses f - 1 do
    if Solver.clause_activity s i > 1.0 then any_bumped := true
  done;
  Alcotest.(check bool) "some clause score bumped" true !any_bumped;
  let total_confl_visits = ref 0 and total_prop_visits = ref 0 in
  for i = 0 to Sat.Cnf.num_clauses f - 1 do
    let p, c = Solver.clause_visits s i in
    total_prop_visits := !total_prop_visits + p;
    total_confl_visits := !total_confl_visits + c
  done;
  Alcotest.(check bool) "propagation visits recorded" true (!total_prop_visits > 0);
  Alcotest.(check bool) "conflict visits recorded" true (!total_confl_visits > 0)

let stats_consistency () =
  let r = Testutil.rng 23 in
  let f = Testutil.random_cnf r ~n:40 ~m:170 ~k:3 in
  let s = Solver.create f in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "iterations >= decisions + conflicts" true
    (st.Solver.iterations >= st.Solver.decisions && st.Solver.iterations >= st.Solver.conflicts);
  Alcotest.(check bool) "learnt literals >= learnt clauses" true
    (st.Solver.learnt_literals >= st.Solver.learnt_clauses)

let duplicate_and_tautology_clauses () =
  let f =
    Sat.Cnf.make ~num_vars:3
      [
        Sat.Clause.of_dimacs [ 1; -1 ];
        (* tautology *)
        Sat.Clause.of_dimacs [ 1; 2 ];
        Sat.Clause.of_dimacs [ 1; 2 ];
        (* duplicate *)
        Sat.Clause.of_dimacs [ -2; 3 ];
      ]
  in
  match solve_with Config.minisat_like f with
  | Solver.Sat m -> Alcotest.(check bool) "model" true (Testutil.check_model f m)
  | _ -> Alcotest.fail "expected SAT"

(* ---- assumptions / incremental interface ---- *)

let assumptions_basic () =
  let f = Sat.Dimacs.parse_string "p cnf 3 2\n1 2 0\n-2 3 0\n" in
  let s = Solver.create f in
  (* force x1 false: x2 must be true, then x3 *)
  (match Solver.solve_with_assumptions s [ Sat.Lit.neg_of 0 ] with
  | `Sat m ->
      Alcotest.(check bool) "x1 false" false m.(0);
      Alcotest.(check bool) "x2 true" true m.(1);
      Alcotest.(check bool) "x3 true" true m.(2)
  | _ -> Alcotest.fail "expected SAT under assumptions");
  (* contradictory assumptions *)
  (match Solver.solve_with_assumptions s [ Sat.Lit.pos 0; Sat.Lit.neg_of 0 ] with
  | `Unsat_assumptions -> ()
  | _ -> Alcotest.fail "expected unsat under assumptions");
  (* the solver stays usable: plain solve still finds a model *)
  match Solver.solve s with
  | Solver.Sat m -> Alcotest.(check bool) "reusable" true (Testutil.check_model f m)
  | _ -> Alcotest.fail "solver not reusable after assumption conflict"

let assumptions_propagated_conflict () =
  (* x1 -> x2; assuming x1 and ¬x2 is inconsistent via propagation *)
  let f = Sat.Dimacs.parse_string "p cnf 2 1\n-1 2 0\n" in
  let s = Solver.create f in
  match Solver.solve_with_assumptions s [ Sat.Lit.pos 0; Sat.Lit.neg_of 1 ] with
  | `Unsat_assumptions -> ()
  | `Sat _ -> Alcotest.fail "inconsistent assumptions satisfied"
  | _ -> Alcotest.fail "unexpected result"

let assumptions_agree_with_units =
  QCheck.Test.make ~name:"assumptions equivalent to unit clauses" ~count:100
    (QCheck.pair Testutil.small_cnf_arb (QCheck.int_bound 1000))
    (fun (f, seed) ->
      let r = Testutil.rng seed in
      let n = Sat.Cnf.num_vars f in
      let k = 1 + Stats.Rng.int r (min 3 n) in
      let assumed =
        List.map
          (fun v -> Sat.Lit.make v (Stats.Rng.bool r))
          (Stats.Rng.sample_without_replacement r k n)
      in
      let s = Solver.create f in
      let via_assumptions = Solver.solve_with_assumptions s assumed in
      let with_units =
        Sat.Cnf.append f (List.map (fun l -> Sat.Clause.make [ l ]) assumed)
      in
      let expected = Sat.Brute.solve with_units <> None in
      match via_assumptions with
      | `Sat m ->
          expected
          && Testutil.check_model f m
          && List.for_all
               (fun l -> if Sat.Lit.is_pos l then m.(Sat.Lit.var l) else not m.(Sat.Lit.var l))
               assumed
      | `Unsat | `Unsat_assumptions -> not expected
      | `Unknown -> false)

(* ---- DPLL and WalkSAT baselines ---- *)

let dpll_agrees_with_brute =
  QCheck.Test.make ~name:"dpll agrees with brute force" ~count:150 Testutil.small_cnf_arb
    (fun f ->
      let expected = Sat.Brute.solve f <> None in
      match Cdcl.Dpll.solve f with
      | Cdcl.Solver.Sat m, _ -> expected && Testutil.check_model f m
      | Cdcl.Solver.Unsat, _ -> not expected
      | Cdcl.Solver.Unknown _, _ -> false)

let dpll_budget () =
  let r = Testutil.rng 301 in
  let f = Testutil.random_cnf r ~n:40 ~m:170 ~k:3 in
  match Cdcl.Dpll.solve ~max_decisions:1 f with
  | Cdcl.Solver.Unknown _, st -> Alcotest.(check bool) "counted" true (st.Cdcl.Dpll.decisions >= 1)
  | (Cdcl.Solver.Sat _ | Cdcl.Solver.Unsat), _ -> () (* solved by propagation alone *)

let cdcl_beats_dpll_on_structure () =
  (* pigeonhole: clause learning prunes symmetric subtrees that DPLL revisits *)
  let f = pigeonhole ~holes:4 in
  let s = Solver.create f in
  ignore (Solver.solve s);
  let cdcl_decisions = (Solver.stats s).Solver.decisions in
  match Cdcl.Dpll.solve f with
  | Cdcl.Solver.Unsat, st ->
      Alcotest.(check bool) "fewer decisions with learning" true
        (cdcl_decisions < st.Cdcl.Dpll.decisions)
  | _ -> Alcotest.fail "php unsat"

let walksat_finds_planted_models () =
  let r = Testutil.rng 302 in
  for _ = 1 to 5 do
    let f = Workload.Uniform.generate r ~num_vars:30 ~num_clauses:100 in
    match Cdcl.Walksat.solve r f with
    | Some m, _ -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
    | None, _ -> Alcotest.fail "walksat failed on an easy planted instance"
  done

let walksat_inconclusive_on_unsat () =
  let f = Sat.Dimacs.parse_string "p cnf 1 2\n1 0\n-1 0\n" in
  let r = Testutil.rng 303 in
  match Cdcl.Walksat.solve ~max_flips:100 ~restarts:2 r f with
  | None, st ->
      Alcotest.(check bool) "flips counted" true (st.Cdcl.Walksat.flips > 0);
      Alcotest.(check int) "restarts" 2 st.Cdcl.Walksat.restarts_used
  | Some _, _ -> Alcotest.fail "found a model of an unsat formula"

let suite =
  [
    ("cdcl.vec", [ Alcotest.test_case "basics" `Quick vec_basics ]);
    ( "cdcl.assumptions",
      [
        Alcotest.test_case "basic + reuse" `Quick assumptions_basic;
        Alcotest.test_case "propagated conflict" `Quick assumptions_propagated_conflict;
        QCheck_alcotest.to_alcotest assumptions_agree_with_units;
      ] );
    ( "cdcl.baselines",
      [
        QCheck_alcotest.to_alcotest dpll_agrees_with_brute;
        Alcotest.test_case "dpll budget" `Quick dpll_budget;
        Alcotest.test_case "cdcl beats dpll" `Quick cdcl_beats_dpll_on_structure;
        Alcotest.test_case "walksat planted" `Quick walksat_finds_planted_models;
        Alcotest.test_case "walksat unsat inconclusive" `Quick walksat_inconclusive_on_unsat;
      ] );
    ( "cdcl.heap",
      [
        Alcotest.test_case "orders by activity" `Quick heap_orders_by_activity;
        Alcotest.test_case "notify increase" `Quick heap_notify_increase;
        Alcotest.test_case "reinsert" `Quick heap_reinsert;
      ] );
    ("cdcl.luby", [ Alcotest.test_case "prefix" `Quick luby_prefix ]);
    ( "cdcl.solver",
      [
        Alcotest.test_case "trivial sat" `Quick trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick trivial_unsat;
        Alcotest.test_case "empty clause" `Quick empty_clause_unsat;
        Alcotest.test_case "empty formula" `Quick empty_formula_sat;
        Alcotest.test_case "unit propagation only" `Quick unit_propagation_only;
        Alcotest.test_case "pigeonhole unsat (vsids)" `Quick pigeonhole_unsat;
        Alcotest.test_case "pigeonhole unsat (chb)" `Quick pigeonhole_unsat_chb;
        Alcotest.test_case "budget returns + resume" `Quick budget_returns_unknown;
        Alcotest.test_case "step == solve" `Quick step_equivalent_to_solve;
        Alcotest.test_case "duplicate/tautology input" `Quick duplicate_and_tautology_clauses;
        QCheck_alcotest.to_alcotest (agrees_with_brute Config.minisat_like "vsids agrees with brute force");
        QCheck_alcotest.to_alcotest (agrees_with_brute Config.kissat_like "chb agrees with brute force");
      ] );
    ( "cdcl.hooks",
      [
        Alcotest.test_case "polarity hints" `Quick polarity_hint_respected;
        Alcotest.test_case "prioritized decisions" `Quick prioritize_vars_first;
        Alcotest.test_case "clause activity instrumentation" `Quick clause_activity_grows;
        Alcotest.test_case "stats consistency" `Quick stats_consistency;
      ] );
  ]
