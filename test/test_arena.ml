(* The flat clause arena (Cdcl.Arena + the rewritten Solver core):
   differential equivalence against the frozen pre-arena engine
   (Cdcl.Reference), garbage-collection relocation under incremental use,
   learnt interchange across compaction, DRAT proofs surviving GC, and the
   Vec unsafe accessors used by the hot loops. *)

module Solver = Cdcl.Solver
module Reference = Cdcl.Reference
module Config = Cdcl.Config
module Vec = Cdcl.Vec

(* tiny threshold: almost every deletion triggers a compaction, so any
   GC-induced behaviour change would show up as a stats mismatch *)
let gc_heavy config = { config with Config.garbage_frac = 0.01 }

let answer_kind = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown _ -> "unknown"

let check_stats_equal name (a : Solver.stats) (b : Solver.stats) =
  Alcotest.(check int) (name ^ ": decisions") b.Solver.decisions a.Solver.decisions;
  Alcotest.(check int) (name ^ ": propagations") b.Solver.propagations a.Solver.propagations;
  Alcotest.(check int) (name ^ ": conflicts") b.Solver.conflicts a.Solver.conflicts;
  Alcotest.(check int) (name ^ ": restarts") b.Solver.restarts a.Solver.restarts;
  Alcotest.(check int) (name ^ ": learnt clauses") b.Solver.learnt_clauses a.Solver.learnt_clauses;
  Alcotest.(check int) (name ^ ": learnt literals") b.Solver.learnt_literals a.Solver.learnt_literals;
  Alcotest.(check int) (name ^ ": deleted clauses") b.Solver.deleted_clauses a.Solver.deleted_clauses;
  Alcotest.(check int) (name ^ ": iterations") b.Solver.iterations a.Solver.iterations;
  Alcotest.(check int) (name ^ ": max level") b.Solver.max_decision_level a.Solver.max_decision_level

let check_same_answer name a b =
  Alcotest.(check string) (name ^ ": answer") (answer_kind b) (answer_kind a);
  match (a, b) with
  | Solver.Sat m1, Solver.Sat m2 ->
      Alcotest.(check (array bool)) (name ^ ": identical model") m2 m1
  | _ -> ()

(* ---- arena unit behaviour ---- *)

let arena_basics () =
  let a = Cdcl.Arena.create ~capacity:16 () in
  let l i s = Sat.Lit.make i s in
  let c1 = Cdcl.Arena.alloc a ~learnt:false ~origin:7 [| l 0 true; l 1 false; l 2 true |] in
  let c2 = Cdcl.Arena.alloc a ~learnt:true ~origin:(-1) [| l 3 true; l 4 true |] in
  Alcotest.(check int) "c1 size" 3 (Cdcl.Arena.size a c1);
  Alcotest.(check int) "c2 size" 2 (Cdcl.Arena.size a c2);
  Alcotest.(check int) "c1 origin" 7 (Cdcl.Arena.origin a c1);
  Alcotest.(check bool) "c1 not learnt" false (Cdcl.Arena.learnt a c1);
  Alcotest.(check bool) "c2 learnt" true (Cdcl.Arena.learnt a c2);
  Alcotest.(check int) "c1 lit 1" (l 1 false) (Cdcl.Arena.lit a c1 1);
  Cdcl.Arena.set_lit a c1 1 (l 5 true);
  Alcotest.(check int) "c1 lit rewritten" (l 5 true) (Cdcl.Arena.lit a c1 1);
  Cdcl.Arena.set_activity a c2 2.5;
  Alcotest.(check (float 0.)) "activity" 2.5 (Cdcl.Arena.activity a c2);
  (* force growth past the initial capacity *)
  let big = Array.init 64 (fun i -> l i (i mod 2 = 0)) in
  let c3 = Cdcl.Arena.alloc a ~learnt:true ~origin:(-1) big in
  Alcotest.(check int) "c3 size survives growth" 64 (Cdcl.Arena.size a c3);
  Alcotest.(check int) "c1 intact after growth" (l 5 true) (Cdcl.Arena.lit a c1 1);
  Cdcl.Arena.delete a c1;
  Alcotest.(check bool) "c1 deleted" true (Cdcl.Arena.deleted a c1);
  Alcotest.(check int) "wasted words" (3 + Cdcl.Arena.lits_offset) (Cdcl.Arena.wasted a)

let arena_reloc_forwarding () =
  let a = Cdcl.Arena.create () in
  let l i = Sat.Lit.make i true in
  let c1 = Cdcl.Arena.alloc a ~learnt:false ~origin:0 [| l 0; l 1; l 2 |] in
  let c2 = Cdcl.Arena.alloc a ~learnt:true ~origin:(-1) [| l 3; l 4 |] in
  Cdcl.Arena.set_activity a c2 9.0;
  Cdcl.Arena.delete a c1;
  let into = Cdcl.Arena.create () in
  let c2' = Cdcl.Arena.reloc a ~into c2 in
  Alcotest.(check int) "compacted to front" 0 c2';
  Alcotest.(check int) "second touch forwards" c2' (Cdcl.Arena.reloc a ~into c2);
  Alcotest.(check int) "lits copied" (l 4) (Cdcl.Arena.lit into c2' 1);
  Alcotest.(check (float 0.)) "activity copied" 9.0 (Cdcl.Arena.activity into c2');
  Alcotest.(check bool) "learnt bit copied" true (Cdcl.Arena.learnt into c2');
  Alcotest.(check int) "no waste in new arena" 0 (Cdcl.Arena.wasted into)

(* ---- differential fuzz: arena solver vs frozen pre-arena solver ---- *)

let differential_one config name f =
  let s = Solver.create ~config f in
  let r = Reference.create ~config f in
  let sa = Solver.solve s in
  let ra = Reference.solve r in
  check_same_answer name sa ra;
  check_stats_equal name (Solver.stats s) (Reference.stats r)

let differential_fixed () =
  let cfgs =
    [
      ("vsids", Config.minisat_like);
      ("chb", Config.kissat_like);
      ("vsids+gc", gc_heavy Config.minisat_like);
    ]
  in
  List.iter
    (fun (cname, config) ->
      for seed = 1 to 6 do
        let r = Testutil.rng (100 * seed) in
        let f = Testutil.random_cnf r ~n:30 ~m:126 ~k:3 in
        differential_one config (Printf.sprintf "%s #%d" cname seed) f
      done;
      (* a harder planted-SAT instance near the phase transition *)
      let f = Workload.Uniform.uf (Testutil.rng 4242) 100 in
      differential_one config (cname ^ " uf100") f)
    cfgs

let differential_qcheck =
  QCheck.Test.make ~count:60 ~name:"arena solver == pre-arena solver"
    Testutil.small_cnf_arb (fun f ->
      List.for_all
        (fun config ->
          let s = Solver.create ~config f in
          let r = Reference.create ~config f in
          let sa = Solver.solve s in
          let ra = Reference.solve r in
          answer_kind sa = answer_kind ra
          && Solver.stats s = Reference.stats r)
        [ Config.minisat_like; Config.kissat_like; gc_heavy Config.minisat_like ])

let differential_budget_resume () =
  (* interrupted searches must diverge nowhere either: resume in lockstep *)
  let f = Workload.Uniform.uf (Testutil.rng 7) 120 in
  let config = gc_heavy Config.minisat_like in
  let s = Solver.create ~config f in
  let r = Reference.create ~config f in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < 200 do
    incr rounds;
    let sa = Solver.solve ~max_conflicts:50 s in
    let ra = Reference.solve ~max_conflicts:50 r in
    check_same_answer (Printf.sprintf "resume round %d" !rounds) sa ra;
    check_stats_equal (Printf.sprintf "resume round %d" !rounds) (Solver.stats s)
      (Reference.stats r);
    (match sa with Solver.Unknown _ -> () | _ -> continue := false)
  done;
  Alcotest.(check bool) "search concluded" false !continue

let differential_incremental_stream () =
  (* interleaved add_clause / solve ~assumptions on both engines, with the
     arena compacting aggressively underneath *)
  let config = gc_heavy Config.minisat_like in
  let n = 24 in
  let s = Solver.create ~config (Sat.Cnf.make ~num_vars:n []) in
  let r = Reference.create ~config (Sat.Cnf.make ~num_vars:n []) in
  let rng = Testutil.rng 99 in
  for round = 1 to 30 do
    for _ = 1 to 12 do
      let c = Sat.Clause.lits (Testutil.random_clause rng ~n ~k:3) in
      Solver.add_clause s c;
      Reference.add_clause r c
    done;
    let assumptions =
      List.map
        (fun v -> Sat.Lit.make v (Stats.Rng.bool rng))
        (Stats.Rng.sample_without_replacement rng 2 n)
    in
    let sa = Solver.solve_with_assumptions s assumptions in
    let ra = Reference.solve_with_assumptions r assumptions in
    let tag = function
      | `Sat _ -> "sat"
      | `Unsat -> "unsat"
      | `Unsat_assumptions -> "unsat-assumptions"
      | `Unknown -> "unknown"
    in
    Alcotest.(check string)
      (Printf.sprintf "stream round %d: answer" round)
      (tag ra) (tag sa);
    (match (sa, ra) with
    | `Unsat_assumptions, `Unsat_assumptions ->
        Alcotest.(check (list int))
          (Printf.sprintf "stream round %d: core" round)
          (Reference.unsat_core r) (Solver.unsat_core s)
    | _ -> ());
    check_stats_equal (Printf.sprintf "stream round %d" round) (Solver.stats s)
      (Reference.stats r)
  done

(* ---- garbage collection ---- *)

let gc_reclaims_and_preserves_answers () =
  let f = Workload.Uniform.uf (Testutil.rng 11) 150 in
  let s = Solver.create ~config:Config.minisat_like f in
  (* run long enough for reduce_db to delete clauses, then compact *)
  ignore (Solver.solve ~max_conflicts:2000 s);
  let words_before = Solver.arena_words s in
  Solver.garbage_collect s;
  Alcotest.(check int) "no waste after explicit gc" 0 (Solver.arena_wasted s);
  Alcotest.(check bool) "arena did not grow" true (Solver.arena_words s <= words_before);
  (* the relocated solver must still reach the right answer *)
  (match Solver.solve s with
  | Solver.Sat m -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
  | Solver.Unsat -> Alcotest.fail "planted instance cannot be unsat"
  | Solver.Unknown _ -> Alcotest.fail "no budget left to exhaust");
  (* and agree exactly with a never-collected run *)
  let s2 = Solver.create ~config:{ Config.minisat_like with Config.garbage_frac = 1e9 } f in
  ignore (Solver.solve ~max_conflicts:2000 s2);
  ignore (Solver.solve s2);
  check_stats_equal "gc vs never-gc" (Solver.stats s) (Solver.stats s2)

let gc_under_incremental_stream () =
  let config = gc_heavy Config.minisat_like in
  let s = Solver.create ~config (Sat.Cnf.make ~num_vars:20 []) in
  let rng = Testutil.rng 5 in
  for _ = 1 to 40 do
    for _ = 1 to 10 do
      Solver.add_clause s (Sat.Clause.lits (Testutil.random_clause rng ~n:20 ~k:3));
      (* interleave explicit compactions at arbitrary points *)
      if Stats.Rng.float rng 1.0 < 0.1 then Solver.garbage_collect s
    done;
    let a = Sat.Lit.make (Stats.Rng.int rng 20) (Stats.Rng.bool rng) in
    ignore (Solver.solve_with_assumptions s [ a ]);
    Solver.garbage_collect s;
    Alcotest.(check int) "compacted" 0 (Solver.arena_wasted s)
  done;
  (* final answers must match a fresh solver over the same clause set *)
  ignore (Solver.solve s)

(* ---- learnt interchange across compaction ---- *)

let export_import_across_gc () =
  let f = Workload.Uniform.uf (Testutil.rng 21) 150 in
  let s = Solver.create ~config:(gc_heavy Config.minisat_like) f in
  ignore (Solver.solve ~max_conflicts:1500 s);
  Solver.garbage_collect s;
  let exported = Solver.export_learnts ~max_len:4 s in
  Alcotest.(check bool) "exported something" true (exported <> []);
  let s2 = Solver.create ~config:Config.minisat_like f in
  let imported = Solver.import_clauses s2 exported in
  Alcotest.(check bool) "imported something" true (imported > 0);
  Solver.garbage_collect s2;
  match Solver.solve s2 with
  | Solver.Sat m -> Alcotest.(check bool) "model valid" true (Testutil.check_model f m)
  | _ -> Alcotest.fail "planted instance must stay satisfiable after import"

(* ---- DRAT proofs across compaction ---- *)

let drat_certifies_after_gc () =
  (* unsat circuit-fault instance, proof-logging on, aggressive GC: the
     recorded derivation must still RUP-check *)
  let f = Workload.Circuit_fault.generate (Testutil.rng 77) ~inputs:6 ~gates:20 in
  let config = Config.with_proof_logging (gc_heavy Config.minisat_like) in
  let s = Solver.create ~config f in
  (* interleave explicit compactions with the search *)
  let rec drive k =
    match Solver.solve ~max_conflicts:100 s with
    | Solver.Unknown _ when k > 0 ->
        Solver.garbage_collect s;
        drive (k - 1)
    | r -> r
  in
  (match drive 1000 with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "cfa instance should be unsat");
  match Solver.proof s with
  | None -> Alcotest.fail "proof missing"
  | Some proof -> (
      match Sat.Drat.check f proof with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("proof fails after GC: " ^ e))

(* ---- Vec unsafe accessors ---- *)

let vec_unsafe_ops () =
  let v = Vec.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  for i = 0 to 99 do
    Alcotest.(check int) "unsafe_get" i (Vec.unsafe_get v i)
  done;
  Vec.unsafe_set v 50 (-50);
  Alcotest.(check int) "unsafe_set visible" (-50) (Vec.get v 50);
  Alcotest.(check int) "get agrees with unsafe_get" (Vec.get v 99) (Vec.unsafe_get v 99);
  (* growth then shrink keeps the accessors coherent *)
  Vec.shrink v 10;
  Alcotest.(check int) "after shrink" 9 (Vec.unsafe_get v 9);
  for i = 10 to 20 do
    Vec.push v (2 * i)
  done;
  Alcotest.(check int) "regrown" 40 (Vec.unsafe_get v 20);
  Vec.clear v;
  Vec.push v 7;
  Alcotest.(check int) "after clear" 7 (Vec.unsafe_get v 0)

let suite =
  [
    ( "cdcl.arena",
      [
        Alcotest.test_case "arena basics" `Quick arena_basics;
        Alcotest.test_case "reloc forwarding" `Quick arena_reloc_forwarding;
        Alcotest.test_case "vec unsafe ops" `Quick vec_unsafe_ops;
      ] );
    ( "cdcl.arena_differential",
      [
        Alcotest.test_case "fixed instances" `Slow differential_fixed;
        QCheck_alcotest.to_alcotest differential_qcheck;
        Alcotest.test_case "budget resume lockstep" `Slow differential_budget_resume;
        Alcotest.test_case "incremental stream" `Slow differential_incremental_stream;
      ] );
    ( "cdcl.arena_gc",
      [
        Alcotest.test_case "reclaims + preserves answers" `Slow gc_reclaims_and_preserves_answers;
        Alcotest.test_case "incremental stream" `Slow gc_under_incremental_stream;
        Alcotest.test_case "export/import across gc" `Slow export_import_across_gc;
        Alcotest.test_case "drat certifies after gc" `Slow drat_certifies_after_gc;
      ] );
  ]
