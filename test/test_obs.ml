(* Observability layer: null-context cost, span mechanics, histogram
   bucketing, exporter golden outputs, and an end-to-end batch trace. *)

let memory_sink spans metrics =
  {
    Obs.Ctx.on_span = (fun r -> spans := r :: !spans);
    on_metrics = (fun ms -> metrics := ms);
    on_close = ignore;
  }

(* fake clock: deterministic traces for the golden tests *)
let fake_ctx start =
  let tick = ref start in
  let ctx = Obs.Ctx.create ~clock:(fun () -> !tick) () in
  (ctx, tick)

let minor_words f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let null_context_is_free () =
  Alcotest.(check bool) "start on null is the none sentinel" true
    (Obs.Span.is_none (Obs.Span.start Obs.Ctx.null "x"));
  Alcotest.(check int) "none has id 0" 0 (Obs.Span.id Obs.Span.none);
  Alcotest.(check (list string)) "null snapshot empty" []
    (List.map fst (Obs.Ctx.snapshot Obs.Ctx.null));
  Obs.Ctx.close Obs.Ctx.null (* close is a no-op, not a crash *);
  (* the hot path allocates nothing when observability is off: compare the
     loop's minor-heap usage against an empty measurement (both include the
     same fixed Gc.minor_words boxing overhead) *)
  let base = minor_words (fun () -> ()) in
  let hot () =
    for _ = 1 to 10_000 do
      let s = Obs.Span.start Obs.Ctx.null "hot" in
      Obs.Span.stop s;
      Obs.Metrics.incr Obs.Ctx.null "hot_total";
      Obs.Metrics.observe Obs.Ctx.null "hot_seconds" 1.0
    done
  in
  hot ();
  (* warm-up above; measure the second run *)
  let used = minor_words hot in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on null path (used %.0f, base %.0f)" used base)
    true
    (used <= base)

let span_nesting_and_order () =
  let ctx, tick = fake_ctx 100.0 in
  let spans = ref [] and metrics = ref [] in
  Obs.Ctx.attach ctx (memory_sink spans metrics);
  tick := 100.25;
  let parent = Obs.Span.start ctx ~attrs:[ ("file", "a.cnf") ] "solve" in
  tick := 100.5;
  let child = Obs.Span.start ctx ~parent "stage" in
  tick := 100.75;
  Obs.Span.stop child;
  Obs.Span.add_attr parent "result" "sat";
  tick := 101.0;
  Obs.Span.stop parent;
  Obs.Span.stop parent (* idempotent: emitted once *);
  (match List.rev !spans with
  | [ c; p ] ->
      Alcotest.(check int) "child id" 2 c.Obs.Ctx.id;
      Alcotest.(check int) "child linked to parent" 1 c.Obs.Ctx.parent;
      Alcotest.(check int) "parent is a root span" 0 p.Obs.Ctx.parent;
      Alcotest.(check (float 1e-9)) "child start" 0.5 c.Obs.Ctx.start_s;
      Alcotest.(check (float 1e-9)) "child duration" 0.25 c.Obs.Ctx.dur_s;
      Alcotest.(check (float 1e-9)) "parent duration" 0.75 p.Obs.Ctx.dur_s;
      Alcotest.(check (list (pair string string)))
        "attrs in insertion order"
        [ ("file", "a.cnf"); ("result", "sat") ]
        p.Obs.Ctx.attrs
  | l -> Alcotest.failf "expected 2 spans (child first), got %d" (List.length l));
  (* pre-measured spans: record clamps the start at the epoch *)
  Obs.Span.record ctx ~dur_s:5.0 "modelled";
  (match !spans with
  | r :: _ ->
      Alcotest.(check (float 1e-9)) "record start clamped" 0.0 r.Obs.Ctx.start_s;
      Alcotest.(check (float 1e-9)) "record duration kept" 5.0 r.Obs.Ctx.dur_s
  | [] -> Alcotest.fail "record emitted nothing");
  Obs.Ctx.close ctx

let clock_is_clamped_monotonic () =
  let ctx, tick = fake_ctx 100.0 in
  tick := 99.0 (* wall clock jumps backwards *);
  Alcotest.(check (float 1e-9)) "never negative" 0.0 (Obs.Ctx.now ctx);
  tick := 101.5;
  Alcotest.(check (float 1e-9)) "resumes forward" 1.5 (Obs.Ctx.now ctx)

let histogram_bucket_edges () =
  let ctx = Obs.Ctx.create () in
  let bounds = [| 1.0; 2.0; 5.0 |] in
  List.iter
    (fun v -> Obs.Metrics.observe ctx ~bounds "h" v)
    [ 0.5; 1.0; 1.5; 2.0; 5.0; 5.1 ];
  (match Obs.Ctx.snapshot ctx with
  | [ ("h", Obs.Ctx.Histogram h) ] ->
      (* upper edges are inclusive: 1.0 lands in the first bucket *)
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] h.Obs.Ctx.counts;
      Alcotest.(check int) "observations" 6 h.Obs.Ctx.observations;
      Alcotest.(check (float 1e-9)) "sum" 15.1 h.Obs.Ctx.sum
  | _ -> Alcotest.fail "expected exactly one histogram");
  (* default buckets: fixed 1-2-5 log series *)
  let d = Obs.Ctx.default_buckets in
  Alcotest.(check int) "45 default bounds" 45 (Array.length d);
  Alcotest.(check (float 1e-12)) "first default bound" 1e-6 d.(0);
  Alcotest.(check bool) "defaults ascend" true
    (Array.for_all (fun b -> b > 0.0) d
    && Array.for_all2 (fun a b -> a < b) (Array.sub d 0 44) (Array.sub d 1 44));
  (* one name, two kinds: refused rather than silently corrupted *)
  match Obs.Metrics.incr ctx "h" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "kind mismatch must raise"

let jsonl_golden () =
  let ctx, tick = fake_ctx 200.0 in
  let buf = Buffer.create 256 in
  Obs.Ctx.attach ctx (Obs.Export.jsonl ~write:(Buffer.add_string buf) ());
  tick := 200.25;
  let root = Obs.Span.start ctx ~attrs:[ ("file", "a \"b\".cnf") ] "solve" in
  tick := 200.5;
  let stage = Obs.Span.start ctx ~parent:root "cdcl" in
  tick := 200.75;
  Obs.Span.stop stage;
  tick := 201.0;
  Obs.Span.stop root;
  Obs.Metrics.incr ctx "qa_calls_total";
  Obs.Metrics.incr ctx "qa_calls_total";
  Obs.Metrics.gauge ctx "queue_depth" 1.5;
  Obs.Metrics.observe ctx ~bounds:[| 1.0; 2.0; 5.0 |] "solve_seconds" 1.5;
  Obs.Ctx.close ctx;
  let expected =
    String.concat ""
      [
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"cdcl\",\
         \"start_s\":0.500000,\"dur_s\":0.250000}\n";
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"solve\",\
         \"start_s\":0.250000,\"dur_s\":0.750000,\
         \"attrs\":{\"file\":\"a \\\"b\\\".cnf\"}}\n";
        "{\"type\":\"counter\",\"name\":\"qa_calls_total\",\"value\":2}\n";
        "{\"type\":\"gauge\",\"name\":\"queue_depth\",\"value\":1.5}\n";
        "{\"type\":\"histogram\",\"name\":\"solve_seconds\",\"count\":1,\
         \"sum\":1.5,\"buckets\":[{\"le\":2,\"n\":1}]}\n";
      ]
  in
  Alcotest.(check string) "jsonl trace" expected (Buffer.contents buf)

let prometheus_golden () =
  let ctx = Obs.Ctx.create () in
  Obs.Metrics.count ctx "qa_calls_total" 2;
  Obs.Metrics.gauge ctx "queue_depth" 1.5;
  Obs.Metrics.observe ctx ~bounds:[| 1.0; 2.0; 5.0 |] "solve_seconds" 1.0;
  Obs.Metrics.observe ctx ~bounds:[| 1.0; 2.0; 5.0 |] "solve_seconds" 6.0;
  Obs.Metrics.incr ctx (Obs.Metrics.labelled "strategy_uses_total" [ ("strategy", "s1") ]);
  Obs.Metrics.incr ctx (Obs.Metrics.labelled "strategy_uses_total" [ ("strategy", "s2") ]);
  Obs.Metrics.incr ctx (Obs.Metrics.labelled "strategy_uses_total" [ ("strategy", "s2") ]);
  let expected =
    String.concat "\n"
      [
        "# TYPE qa_calls_total counter";
        "qa_calls_total 2";
        "# TYPE queue_depth gauge";
        "queue_depth 1.5";
        "# TYPE solve_seconds histogram";
        "solve_seconds_bucket{le=\"1\"} 1";
        "solve_seconds_bucket{le=\"2\"} 1";
        "solve_seconds_bucket{le=\"5\"} 1";
        "solve_seconds_bucket{le=\"+Inf\"} 2";
        "solve_seconds_sum 7";
        "solve_seconds_count 2";
        "# TYPE strategy_uses_total counter";
        "strategy_uses_total{strategy=\"s1\"} 1";
        "strategy_uses_total{strategy=\"s2\"} 2";
        "";
      ]
  in
  Alcotest.(check string) "prometheus text"
    expected
    (Obs.Export.prometheus_string (Obs.Ctx.snapshot ctx))

let console_tree_renders () =
  let ctx, tick = fake_ctx 0.0 in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.Ctx.attach ctx (Obs.Export.console_tree ppf);
  let root = Obs.Span.start ctx "solve" in
  tick := 1.0;
  Obs.Span.record ctx ~parent:root ~dur_s:0.25 "cdcl";
  Obs.Span.record ctx ~parent:root ~dur_s:0.75 "anneal";
  Obs.Span.stop root;
  Obs.Metrics.incr ctx "qa_calls_total";
  Obs.Ctx.close ctx;
  let out = Buffer.contents buf in
  let contains needle =
    Alcotest.(check bool) (Printf.sprintf "output contains %S" needle) true
      (let n = String.length needle and m = String.length out in
       let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
       go 0)
  in
  contains "trace summary";
  contains "└─ solve ×1";
  (* children sorted by total duration, anneal (0.75) first *)
  contains "├─ anneal ×1 — 0.750 s";
  contains "└─ cdcl ×1 — 0.250 s";
  contains "qa_calls_total = 1"

let batch_trace_end_to_end () =
  let ctx = Obs.Ctx.create () in
  let spans = ref [] and metrics = ref [] in
  Obs.Ctx.attach ctx (memory_sink spans metrics);
  let rng = Stats.Rng.create ~seed:5 in
  let jobs =
    List.init 2 (fun i ->
        Service.Job.make ~name:(Printf.sprintf "uf20-%d" i) ~id:i
          (Workload.Uniform.uf rng 20))
  in
  let members = Service.Batch.solo "minisat" in
  let _summary, results = Service.Batch.run ~workers:2 ~obs:ctx ~members jobs in
  Obs.Ctx.close ctx;
  Alcotest.(check int) "both jobs solved" 2 (List.length results);
  let count name =
    List.length (List.filter (fun r -> r.Obs.Ctx.name = name) !spans)
  in
  Alcotest.(check int) "one batch span" 1 (count "batch");
  Alcotest.(check int) "one job span per job" 2 (count "job");
  Alcotest.(check int) "one attempt span per (unretried) job" 2 (count "attempt");
  Alcotest.(check int) "one race per attempt" 2 (count "race");
  Alcotest.(check int) "one member per race (solo)" 2 (count "member");
  (* parent links: every attempt hangs off a job, every job off the batch *)
  let find_all name = List.filter (fun r -> r.Obs.Ctx.name = name) !spans in
  let ids name = List.map (fun r -> r.Obs.Ctx.id) (find_all name) in
  let batch_id = List.hd (ids "batch") in
  List.iter
    (fun j -> Alcotest.(check int) "job under batch" batch_id j.Obs.Ctx.parent)
    (find_all "job");
  let job_ids = ids "job" in
  List.iter
    (fun a ->
      Alcotest.(check bool) "attempt under some job" true
        (List.mem a.Obs.Ctx.parent job_ids))
    (find_all "attempt");
  (* the CDCL stage of each solve shows up under the member spans *)
  Alcotest.(check bool) "cdcl stage spans present" true (count "cdcl" >= 2);
  (* metrics delivered at close include the per-outcome job counter and the
     solver totals *)
  let metric_names = List.map fst !metrics in
  let has prefix =
    List.exists
      (fun n ->
        String.length n >= String.length prefix
        && String.sub n 0 (String.length prefix) = prefix)
      metric_names
  in
  Alcotest.(check bool) "jobs_total{outcome=...} present" true (has "jobs_total{");
  Alcotest.(check bool) "cdcl_conflicts_total present" true
    (List.mem "cdcl_conflicts_total" metric_names)

let hybrid_stage_spans_sum_to_end_to_end () =
  let ctx = Obs.Ctx.create () in
  let spans = ref [] and metrics = ref [] in
  Obs.Ctx.attach ctx (memory_sink spans metrics);
  let f = Workload.Uniform.uf (Stats.Rng.create ~seed:42) 50 in
  let r =
    Hyqsat.Hybrid_solver.run ~obs:ctx
      (Hyqsat.Hybrid_solver.Hybrid Hyqsat.Hybrid_solver.default_config)
      f
  in
  Obs.Ctx.close ctx;
  let total names =
    List.fold_left
      (fun acc s -> if List.mem s.Obs.Ctx.name names then acc +. s.Obs.Ctx.dur_s else acc)
      0.0 !spans
  in
  let staged = total [ "frontend"; "anneal"; "backend"; "cdcl" ] in
  let e2e = Hyqsat.Hybrid_solver.end_to_end_time_s r in
  Alcotest.(check bool)
    (Printf.sprintf "stage spans (%.6f s) sum to end_to_end (%.6f s)" staged e2e)
    true
    (Float.abs (staged -. e2e) <= 0.05 *. Float.max e2e 1e-9);
  (* embed is nested inside frontend, not additional *)
  Alcotest.(check bool) "embed within frontend" true
    (total [ "embed" ] <= total [ "frontend" ] +. 1e-9);
  let counter name =
    match List.assoc_opt name !metrics with
    | Some (Obs.Ctx.Counter { count }) -> int_of_float count
    | _ -> -1
  in
  Alcotest.(check int) "qa_calls_total matches report" r.Hyqsat.Hybrid_solver.qa_calls
    (counter "qa_calls_total");
  Alcotest.(check bool) "cdcl_conflicts_total recorded" true
    (counter "cdcl_conflicts_total" >= 0)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "null context is free" `Quick null_context_is_free;
        Alcotest.test_case "span nesting and order" `Quick span_nesting_and_order;
        Alcotest.test_case "clock clamped monotonic" `Quick clock_is_clamped_monotonic;
        Alcotest.test_case "histogram bucket edges" `Quick histogram_bucket_edges;
        Alcotest.test_case "jsonl golden" `Quick jsonl_golden;
        Alcotest.test_case "prometheus golden" `Quick prometheus_golden;
        Alcotest.test_case "console tree renders" `Quick console_tree_renders;
        Alcotest.test_case "batch trace end-to-end" `Quick batch_trace_end_to_end;
        Alcotest.test_case "hybrid stage spans sum to end-to-end" `Quick
          hybrid_stage_spans_sum_to_end_to_end;
      ] );
  ]
