(* Tests for the batch/portfolio service layer: pool ordering, scheduling
   determinism, deadlines, first-winner cancellation, telemetry JSON. *)

module Job = Service.Job
module Pool = Service.Pool
module Deadline = Service.Deadline
module Portfolio = Service.Portfolio
module Batch = Service.Batch
module Telemetry = Service.Telemetry

let planted_cnf seed n = Workload.Uniform.uf (Testutil.rng seed) n

(* a member that answers instantly (the designated race winner) *)
let instant_member model =
  {
    Portfolio.name = "instant";
    run =
      (fun ~obs:_ ~parent:_ ~should_stop:_ ~max_iterations:_ ~import:_ _f ->
        {
          Portfolio.result = Cdcl.Solver.Sat model;
          iterations = 1;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

(* a member that only stops when cancelled (bounded so a cancellation bug
   fails the test instead of hanging it) *)
let spin_member () =
  {
    Portfolio.name = "spin";
    run =
      (fun ~obs:_ ~parent:_ ~should_stop ~max_iterations:_ ~import:_ _f ->
        let spins = ref 0 in
        while (not (should_stop ())) && !spins < 2_000_000_000 do
          incr spins;
          if !spins land 1023 = 0 then Domain.cpu_relax ()
        done;
        {
          Portfolio.result = Cdcl.Solver.Unknown Sat.Answer.Budget;
          iterations = !spins;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

(* ------------------------------------------------------------------ *)

let pool_preserves_order () =
  let p = Pool.create ~workers:2 (fun ~worker:_ x -> x * x) in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> Pool.run p (List.init 20 Fun.id))
  in
  let values =
    Array.to_list (Array.map (function Ok v -> v | Error _ -> -1) results)
  in
  Alcotest.(check (list int)) "squares in submission order"
    (List.init 20 (fun i -> i * i))
    values

let pool_captures_exceptions () =
  let p = Pool.create ~workers:1 (fun ~worker:_ x -> if x = 1 then failwith "boom" else x) in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> Pool.run p [ 0; 1; 2 ])
  in
  (match results with
  | [| Ok 0; Error (Failure _); Ok 2 |] -> ()
  | _ -> Alcotest.fail "expected [Ok 0; Error boom; Ok 2]")

(* the persistent lifecycle: run / submit+drain are checkpoints a pool
   survives; only shutdown ends it *)
let pool_reusable_across_runs () =
  let p = Pool.create ~workers:2 (fun ~worker:_ x -> 2 * x) in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      for round = 1 to 5 do
        let results = Pool.run p (List.init 10 (fun i -> (100 * round) + i)) in
        Array.iteri
          (fun i r ->
            match r with
            | Ok v -> Alcotest.(check int) "doubled" (2 * ((100 * round) + i)) v
            | Error _ -> Alcotest.fail "unexpected worker error")
          results
      done;
      (* submit/drain cycles interleave with runs on the same pool *)
      for round = 1 to 3 do
        List.iter (Pool.submit p) [ round; round + 1 ];
        let results = Pool.drain p in
        Alcotest.(check int) "drain returns this cycle's items" 2 (Array.length results);
        match (results.(0), results.(1)) with
        | Ok a, Ok b ->
            Alcotest.(check int) "first" (2 * round) a;
            Alcotest.(check int) "second" (2 * (round + 1)) b
        | _ -> Alcotest.fail "unexpected worker error"
      done)

(* an item exception is captured in its slot and must not poison the pool:
   the next run on the same pool works *)
let pool_exception_does_not_poison () =
  let p =
    Pool.create ~workers:2 (fun ~worker:_ x -> if x land 1 = 1 then failwith "odd" else x)
  in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let r1 = Pool.run p [ 0; 1; 2; 3 ] in
      (match (r1.(0), r1.(1), r1.(2), r1.(3)) with
      | Ok 0, Error (Failure _), Ok 2, Error (Failure _) -> ()
      | _ -> Alcotest.fail "expected evens Ok, odds Error");
      let r2 = Pool.run p [ 4; 6; 8 ] in
      Array.iter
        (function
          | Ok _ -> () | Error _ -> Alcotest.fail "pool poisoned by earlier exception")
        r2)

(* a 0-worker pool runs everything inline on the calling domain *)
let pool_zero_workers_runs_inline () =
  let self = (Domain.self () :> int) in
  let p = Pool.create ~workers:0 (fun ~worker x -> ((Domain.self () :> int), worker, x)) in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.(check int) "no domains spawned" 0 (Pool.workers p);
      let results = Pool.run p [ 1; 2; 3 ] in
      Array.iter
        (function
          | Ok (dom, worker, _) ->
              Alcotest.(check int) "ran on the calling domain" self dom;
              Alcotest.(check int) "helper worker id" (Pool.workers p) worker
          | Error _ -> Alcotest.fail "unexpected error")
        results)

(* many tiny batches: the spawn-per-call cost this pool exists to remove
   would make this test take seconds; with a persistent pool it's instant *)
let pool_many_tiny_runs () =
  let p = Pool.create ~workers:3 (fun ~worker:_ x -> x + 1) in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      for i = 1 to 500 do
        match Pool.run p [ i ] with
        | [| Ok v |] -> if v <> i + 1 then Alcotest.fail "wrong tiny-batch result"
        | _ -> Alcotest.fail "expected one result"
      done)

let pool_shutdown_closes () =
  let p = Pool.create ~workers:1 (fun ~worker:_ () -> ()) in
  ignore (Pool.run p [ () ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () -> Pool.submit p ());
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () -> ignore (Pool.run p [ () ]))

let batch_jobs seeds =
  List.mapi
    (fun i seed -> Job.make ~name:(Printf.sprintf "uf-%d" i) ~seed ~id:i (planted_cnf seed 30))
    seeds

let outcomes_of results =
  List.map (fun r -> r.Batch.record.Telemetry.outcome) results

let batch_is_worker_count_independent () =
  let seeds = List.init 8 (fun i -> 1000 + (17 * i)) in
  let members = Batch.solo "minisat" in
  let _, r1 = Batch.run ~workers:1 ~members (batch_jobs seeds) in
  let _, r3 = Batch.run ~workers:3 ~members (batch_jobs seeds) in
  Alcotest.(check (list string)) "same outcomes at any worker count" (outcomes_of r1)
    (outcomes_of r3);
  Alcotest.(check (list int)) "results in submission order"
    (List.init 8 Fun.id)
    (List.map (fun r -> r.Batch.record.Telemetry.job_id) r3);
  (* deterministic reruns: same seeds, same models *)
  let _, r1' = Batch.run ~workers:1 ~members (batch_jobs seeds) in
  List.iter2
    (fun a b ->
      match (a.Batch.outcome, b.Batch.outcome) with
      | Job.Sat ma, Job.Sat mb ->
          Alcotest.(check bool) "identical model" true (ma = mb);
          Alcotest.(check bool) "model satisfies formula" true
            (Testutil.check_model a.Batch.spec.Job.formula ma)
      | oa, ob ->
          Alcotest.(check string) "same outcome" (Job.outcome_label oa) (Job.outcome_label ob))
    r1 r1'

let deadline_expiry_returns_unknown () =
  (* the spin member never answers: only the deadline can end the race, so
     returning at all proves expiry is honoured (bounded fallback would take
     minutes, not the ~50 ms we allow) *)
  let f = planted_cnf 7 10 in
  let jobs = [ Job.make ~timeout_s:0.05 ~retries:3 ~id:0 f ] in
  let _, results = Batch.run ~members:(fun ~spec:_ ~seed:_ -> [ spin_member () ]) jobs in
  match results with
  | [ r ] ->
      Alcotest.(check string) "timeout outcome" "unknown:timeout"
        r.Batch.record.Telemetry.outcome;
      Alcotest.(check bool) "no winner recorded" true (r.Batch.record.Telemetry.winner = "");
      (* deadline expired before any retry could be useful: attempts stop *)
      Alcotest.(check bool) "bounded attempts" true (r.Batch.record.Telemetry.attempts <= 4)
  | _ -> Alcotest.fail "expected one result"

let budget_exhaustion_returns_unknown () =
  let f = planted_cnf 11 50 in
  let jobs = [ Job.make ~max_iterations:1 ~id:0 f ] in
  let members = Batch.solo "minisat" in
  let _, results = Batch.run ~members jobs in
  match results with
  | [ r ] ->
      Alcotest.(check string) "budget outcome" "unknown:budget" r.Batch.record.Telemetry.outcome
  | _ -> Alcotest.fail "expected one result"

let cancellation_stops_losers () =
  let f = Sat.Cnf.make ~num_vars:1 [ Sat.Clause.make [ Sat.Lit.make 0 true ] ] in
  let report = Portfolio.race [ instant_member [| true |]; spin_member () ] f in
  (match report.Portfolio.winner with
  | Some w -> Alcotest.(check string) "instant member wins" "instant" w.Portfolio.member
  | None -> Alcotest.fail "race had no winner");
  let spin =
    List.find (fun m -> m.Portfolio.member = "spin") report.Portfolio.members
  in
  Alcotest.(check bool) "loser observed the cancel flag" true spin.Portfolio.cancelled;
  Alcotest.(check bool) "loser stopped well before its bound" true
    (spin.Portfolio.stats.Portfolio.iterations < 2_000_000_000)

let cdcl_terminate_hook () =
  let f = planted_cnf 23 50 in
  let solver = Cdcl.Solver.create f in
  Cdcl.Solver.set_terminate solver (fun () -> true);
  (match Cdcl.Solver.solve solver with
  | Cdcl.Solver.Unknown _ -> ()
  | _ -> Alcotest.fail "terminate should force Unknown");
  (* the solver stays usable once the flag clears *)
  Cdcl.Solver.set_terminate solver (fun () -> false);
  match Cdcl.Solver.solve solver with
  | Cdcl.Solver.Sat m ->
      Alcotest.(check bool) "model valid after resume" true (Testutil.check_model f m)
  | _ -> Alcotest.fail "planted instance must be SAT"

let walksat_stops_on_cancel () =
  let f = planted_cnf 31 40 in
  let model, _ =
    Cdcl.Walksat.solve ~should_stop:(fun () -> true) (Testutil.rng 1) f
  in
  Alcotest.(check bool) "cancelled walksat is inconclusive" true (model = None)

let portfolio_race_finds_answer () =
  let f = planted_cnf 42 30 in
  let members = Portfolio.members_named ~grid:4 ~seed:5 [ "minisat"; "kissat"; "walksat" ] in
  let report = Portfolio.race members f in
  match report.Portfolio.winner with
  | Some w -> (
      match w.Portfolio.stats.Portfolio.result with
      | Cdcl.Solver.Sat m ->
          Alcotest.(check bool) "winning model satisfies" true (Testutil.check_model f m)
      | _ -> Alcotest.fail "planted instance must be SAT")
  | None -> Alcotest.fail "race found no answer"

let telemetry_json_roundtrip () =
  let records =
    [
      {
        Telemetry.job_id = 0;
        job_name = "path/with \"quotes\"\tand\nnewlines\\";
        outcome = "sat";
        verified = "model";
        winner = "hybrid";
        attempts = 2;
        queue_wait_s = 1.5e-05;
        solve_time_s = 0.12345678901234567;
        iterations = 1234;
        qa_calls = 7;
        qa_failures = 2;
        degraded = 1;
        strategy_uses = [| 1; 0; 3; 2 |];
        warm_start = true;
        reused_clauses = 5;
        cost = -1;
        lower_bound = -1;
      };
      {
        Telemetry.job_id = 1;
        job_name = "uf50-01.cnf";
        outcome = "unknown:timeout";
        verified = "";
        winner = "";
        attempts = 1;
        queue_wait_s = 0.;
        solve_time_s = 3.25;
        iterations = 0;
        qa_calls = 0;
        qa_failures = 0;
        degraded = 0;
        strategy_uses = [| 0; 0; 0; 0 |];
        warm_start = false;
        reused_clauses = 0;
        cost = -1;
        lower_bound = -1;
      };
    ]
  in
  let summary = Telemetry.summarize ~workers:4 ~wall_time_s:3.3 records in
  let doc = Telemetry.to_json_string summary records in
  match Telemetry.of_json_string doc with
  | Error msg -> Alcotest.fail ("JSON did not parse back: " ^ msg)
  | Ok (summary', records') ->
      Alcotest.(check bool) "summary round-trips" true (summary = summary');
      Alcotest.(check int) "record count" 2 (List.length records');
      List.iter2
        (fun a b -> Alcotest.(check bool) "record round-trips" true (a = b))
        records records'

let telemetry_v5_optimisation_fields () =
  let r =
    {
      Telemetry.job_id = 7;
      job_name = "w.wcnf";
      outcome = "sat";
      verified = "optimal";
      winner = "maxsat-linear";
      attempts = 1;
      queue_wait_s = 0.;
      solve_time_s = 0.01;
      iterations = 3;
      qa_calls = 0;
      qa_failures = 0;
      degraded = 0;
      strategy_uses = [| 0; 0; 0; 0 |];
      warm_start = false;
      reused_clauses = 0;
      cost = 4;
      lower_bound = 4;
    }
  in
  let summary = Telemetry.summarize ~workers:1 ~wall_time_s:0.1 [ r ] in
  let doc = Telemetry.to_json_string summary [ r ] in
  (match Telemetry.of_json_string doc with
  | Ok (_, [ r' ]) ->
      Alcotest.(check int) "cost round-trips" 4 r'.Telemetry.cost;
      Alcotest.(check int) "lower_bound round-trips" 4 r'.Telemetry.lower_bound
  | Ok _ -> Alcotest.fail "expected one record"
  | Error e -> Alcotest.fail ("v5 document rejected: " ^ e));
  (* a v4 writer never emitted the fields: stripping them must read back as
     the decision-job sentinel, not a parse error *)
  let tail = {|,"cost":4,"lower_bound":4|} in
  let idx =
    let rec find i =
      if i + String.length tail > String.length doc then
        Alcotest.fail "optimisation fields not found in document"
      else if String.sub doc i (String.length tail) = tail then i
      else find (i + 1)
    in
    find 0
  in
  let v4 =
    String.sub doc 0 idx
    ^ String.sub doc
        (idx + String.length tail)
        (String.length doc - idx - String.length tail)
  in
  match Telemetry.of_json_string v4 with
  | Ok (_, [ r' ]) ->
      Alcotest.(check int) "absent cost defaults to -1" (-1) r'.Telemetry.cost;
      Alcotest.(check int) "absent lower_bound defaults to -1" (-1)
        r'.Telemetry.lower_bound
  | Ok _ -> Alcotest.fail "expected one record"
  | Error e -> Alcotest.fail ("v4-style document rejected: " ^ e)

let batch_optimisation_job () =
  (* hard: x0 ∨ x1; softs make the optimum cost 2 (x1 true, x2 false) *)
  let cl lits = Sat.Clause.make (List.map (fun (v, s) -> Sat.Lit.make v s) lits) in
  let w =
    Sat.Wcnf.make ~num_vars:3
      ~hard:[ cl [ (0, true); (1, true) ] ]
      ~soft:
        [
          (3, cl [ (0, false) ]);
          (2, cl [ (1, false); (2, true) ]);
          (4, cl [ (2, false) ]);
        ]
  in
  let jobs = [ Job.optimize ~certify:true ~seed:42 ~id:0 w ] in
  let _, results = Batch.run ~members:(Batch.solo "minisat") jobs in
  match results with
  | [ r ] ->
      (match r.Batch.outcome with
      | Job.Sat m ->
          Alcotest.(check bool) "model satisfies hard clauses" true
            (Sat.Wcnf.hard_satisfied w m);
          Alcotest.(check int) "model cost matches record" 2 (Sat.Wcnf.cost w m)
      | o -> Alcotest.fail ("expected Sat, got " ^ Job.outcome_label o));
      Alcotest.(check int) "optimum cost" 2 r.Batch.record.Telemetry.cost;
      Alcotest.(check int) "proved lower bound" 2 r.Batch.record.Telemetry.lower_bound;
      Alcotest.(check string) "certified optimal" "optimal"
        r.Batch.record.Telemetry.verified;
      Alcotest.(check bool) "winner labelled maxsat-*" true
        (String.length r.Batch.record.Telemetry.winner > 7
        && String.sub r.Batch.record.Telemetry.winner 0 7 = "maxsat-")
  | _ -> Alcotest.fail "expected one result"

let telemetry_schema_versioning () =
  let summary = Telemetry.summarize ~workers:1 ~wall_time_s:0.5 [] in
  let doc = Telemetry.to_json_string summary [] in
  (* new documents lead with the version field *)
  let header = "{\"schema_version\":5," in
  let hlen = String.length header in
  Alcotest.(check string) "version field first" header (String.sub doc 0 hlen);
  (match Telemetry.of_json_string doc with
  | Ok (s, r) ->
      Alcotest.(check bool) "current version parses" true (s = summary && r = [])
  | Error e -> Alcotest.fail ("current version rejected: " ^ e));
  (* version-1 documents predate the field entirely; they must keep parsing *)
  let v1 = "{" ^ String.sub doc hlen (String.length doc - hlen) in
  (match Telemetry.of_json_string v1 with
  | Ok (s, _) -> Alcotest.(check bool) "v1 document parses" true (s = summary)
  | Error e -> Alcotest.fail ("v1 document rejected: " ^ e));
  (* documents from a future writer are refused, not misread *)
  let future = "{\"schema_version\":99," ^ String.sub doc hlen (String.length doc - hlen) in
  match Telemetry.of_json_string future with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future schema_version must be rejected"

let telemetry_json_rejects_garbage () =
  (match Telemetry.of_json_string "{" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated JSON must not parse");
  match Telemetry.of_json_string "{\"summary\":{},\"jobs\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields must not parse"

let deadline_basics () =
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "past deadline expired" true (Deadline.expired (Deadline.after (-1.)));
  Alcotest.(check bool) "remaining positive" true
    (Deadline.remaining_s (Deadline.after 10.) > 5.);
  let tight = Deadline.earliest (Deadline.after 10.) (Deadline.after 1.) in
  Alcotest.(check bool) "earliest picks tighter" true (Deadline.remaining_s tight < 5.)

let suite =
  [
    ( "service",
      [
        Alcotest.test_case "pool preserves submission order" `Quick pool_preserves_order;
        Alcotest.test_case "pool captures exceptions" `Quick pool_captures_exceptions;
        Alcotest.test_case "pool reusable across runs and drains" `Quick
          pool_reusable_across_runs;
        Alcotest.test_case "pool exception does not poison" `Quick
          pool_exception_does_not_poison;
        Alcotest.test_case "pool 0 workers runs inline" `Quick pool_zero_workers_runs_inline;
        Alcotest.test_case "pool many tiny runs" `Quick pool_many_tiny_runs;
        Alcotest.test_case "pool shutdown closes" `Quick pool_shutdown_closes;
        Alcotest.test_case "batch independent of worker count" `Quick
          batch_is_worker_count_independent;
        Alcotest.test_case "deadline expiry returns Unknown" `Quick
          deadline_expiry_returns_unknown;
        Alcotest.test_case "step budget returns Unknown" `Quick budget_exhaustion_returns_unknown;
        Alcotest.test_case "cancellation stops losers" `Quick cancellation_stops_losers;
        Alcotest.test_case "CDCL terminate hook" `Quick cdcl_terminate_hook;
        Alcotest.test_case "walksat stops on cancel" `Quick walksat_stops_on_cancel;
        Alcotest.test_case "portfolio race finds answer" `Quick portfolio_race_finds_answer;
        Alcotest.test_case "telemetry JSON round-trip" `Quick telemetry_json_roundtrip;
        Alcotest.test_case "telemetry v5 optimisation fields" `Quick
          telemetry_v5_optimisation_fields;
        Alcotest.test_case "batch optimisation job" `Quick batch_optimisation_job;
        Alcotest.test_case "telemetry schema versioning" `Quick telemetry_schema_versioning;
        Alcotest.test_case "telemetry JSON rejects garbage" `Quick
          telemetry_json_rejects_garbage;
        Alcotest.test_case "deadline basics" `Quick deadline_basics;
      ] );
  ]
