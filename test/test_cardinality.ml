(* Tests for cardinality constraints and exact MAX-SAT. *)

module Card = Sat.Cardinality

(* semantic check: the encoding (with registers existential) accepts exactly
   the base assignments with <= k true literals *)
let card_semantics_check ~n ~k ~lits =
  let enc = Card.at_most_k ~num_vars:n lits ~k in
  let base_formula bits =
    let units =
      List.init n (fun v ->
          Sat.Clause.make [ (if bits land (1 lsl v) <> 0 then Sat.Lit.pos v else Sat.Lit.neg_of v) ])
    in
    Sat.Cnf.make ~num_vars:enc.Card.num_vars (units @ enc.Card.clauses)
  in
  let ok = ref true in
  for bits = 0 to (1 lsl n) - 1 do
    let count =
      List.fold_left
        (fun acc l ->
          let v = bits land (1 lsl Sat.Lit.var l) <> 0 in
          if (if Sat.Lit.is_pos l then v else not v) then acc + 1 else acc)
        0 lits
    in
    let sat = Sat.Brute.solve ~limit_vars:24 (base_formula bits) <> None in
    if sat <> (count <= k) then ok := false
  done;
  !ok

let at_most_k_semantics =
  QCheck.Test.make ~name:"at_most_k accepts exactly counts <= k" ~count:60
    QCheck.(triple (int_range 1 5) (int_range 0 5) (int_bound 1000))
    (fun (n, k, seed) ->
      let r = Testutil.rng (seed + (n * 17) + k) in
      let lits = List.init n (fun v -> Sat.Lit.make v (Stats.Rng.bool r)) in
      card_semantics_check ~n ~k ~lits)

let at_least_exactly () =
  let n = 4 in
  let lits = List.init n (fun v -> Sat.Lit.pos v) in
  (* at_least 2: assignments with >= 2 true *)
  let enc = Card.at_least_k ~num_vars:n lits ~k:2 in
  let with_base bits =
    let units =
      List.init n (fun v ->
          Sat.Clause.make [ (if bits land (1 lsl v) <> 0 then Sat.Lit.pos v else Sat.Lit.neg_of v) ])
    in
    Sat.Cnf.make ~num_vars:enc.Card.num_vars (units @ enc.Card.clauses)
  in
  for bits = 0 to 15 do
    let count = List.length (List.filter (fun v -> bits land (1 lsl v) <> 0) [ 0; 1; 2; 3 ]) in
    Alcotest.(check bool)
      (Printf.sprintf "bits=%d" bits)
      (count >= 2)
      (Sat.Brute.solve (with_base bits) <> None)
  done;
  (* exactly 0 and exactly n degenerate cases *)
  let e0 = Card.exactly_k ~num_vars:2 [ Sat.Lit.pos 0; Sat.Lit.pos 1 ] ~k:0 in
  let f0 = Sat.Cnf.make ~num_vars:e0.Card.num_vars e0.Card.clauses in
  (match Sat.Brute.solve f0 with
  | Some m -> Alcotest.(check bool) "all false" false (m.(0) || m.(1))
  | None -> Alcotest.fail "k=0 satisfiable by all-false")

(* semantic check for the weighted adder encoding: fix the base literals
   with unit clauses and ask a CDCL solver (the adder's auxiliaries are
   functionally determined by propagation, so brute enumeration over them
   is unnecessary) whether the bound admits the assignment *)
let at_most_weight_semantics =
  QCheck.Test.make ~name:"at_most_weight accepts exactly weighted sums <= k" ~count:60
    QCheck.(triple (int_range 1 5) (int_bound 60) (int_bound 1000))
    (fun (n, k, seed) ->
      let r = Testutil.rng (seed + (n * 23) + k) in
      let wlits =
        List.init n (fun v -> (Stats.Rng.int r 20, Sat.Lit.make v (Stats.Rng.bool r)))
      in
      let enc = Card.at_most_weight ~num_vars:n wlits ~k in
      let ok = ref true in
      for bits = 0 to (1 lsl n) - 1 do
        let units =
          List.init n (fun v ->
              Sat.Clause.make
                [ (if bits land (1 lsl v) <> 0 then Sat.Lit.pos v else Sat.Lit.neg_of v) ])
        in
        let f = Sat.Cnf.make ~num_vars:enc.Card.num_vars (units @ enc.Card.clauses) in
        let total =
          List.fold_left
            (fun acc (wt, l) ->
              let v = bits land (1 lsl Sat.Lit.var l) <> 0 in
              if (if Sat.Lit.is_pos l then v else not v) then acc + wt else acc)
            0 wlits
        in
        let sat =
          match Cdcl.Solver.solve (Cdcl.Solver.create f) with
          | Cdcl.Solver.Sat _ -> true
          | _ -> false
        in
        if sat <> (total <= k) then ok := false
      done;
      !ok)

(* weights in the millions stay O(log) in encoding size — the regression
   that motivated the adder: a unary expansion would allocate O(sum) *)
let at_most_weight_large_weights () =
  let wlits =
    [ (1_000_000, Sat.Lit.pos 0); (2_000_000, Sat.Lit.pos 1); (4_000_000, Sat.Lit.pos 2) ]
  in
  let enc = Card.at_most_weight ~num_vars:3 wlits ~k:5_000_000 in
  Alcotest.(check bool) "compact" true (enc.Card.num_vars < 200);
  for bits = 0 to 7 do
    let units =
      List.init 3 (fun v ->
          Sat.Clause.make
            [ (if bits land (1 lsl v) <> 0 then Sat.Lit.pos v else Sat.Lit.neg_of v) ])
    in
    let f = Sat.Cnf.make ~num_vars:enc.Card.num_vars (units @ enc.Card.clauses) in
    let total =
      List.fold_left
        (fun acc (wt, l) ->
          if bits land (1 lsl Sat.Lit.var l) <> 0 then acc + wt else acc)
        0 wlits
    in
    let sat =
      match Cdcl.Solver.solve (Cdcl.Solver.create f) with
      | Cdcl.Solver.Sat _ -> true
      | _ -> false
    in
    Alcotest.(check bool) (Printf.sprintf "bits=%d" bits) (total <= 5_000_000) sat
  done

let exact_maxsat_matches_brute =
  QCheck.Test.make ~name:"exact maxsat equals brute optimum" ~count:40
    (QCheck.make
       QCheck.Gen.(
         int_range 3 8 >>= fun n ->
         int_range 3 25 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return (Testutil.random_cnf (Testutil.rng (seed + n + (m * 31))) ~n ~m ~k:3)))
    (fun f ->
      let open Hyqsat.Optimize in
      let r = solve ~algorithm:Linear (Sat.Wcnf.of_cnf f) in
      match r.best with
      | None -> false
      | Some x ->
          r.status = Optimal
          && r.best_cost = r.lower_bound
          && r.best_cost = Sat.Brute.min_unsatisfied f
          && Sat.Assignment.num_unsatisfied (Sat.Assignment.of_bools x) f = r.best_cost)

let exact_maxsat_on_unsat_pair () =
  let f = Sat.Dimacs.parse_string "p cnf 1 2\n1 0\n-1 0\n" in
  let r = Hyqsat.Optimize.solve ~algorithm:Hyqsat.Optimize.Linear (Sat.Wcnf.of_cnf f) in
  Alcotest.(check int) "one violated" 1 r.Hyqsat.Optimize.best_cost

let suite =
  [
    ( "sat.cardinality",
      [
        QCheck_alcotest.to_alcotest at_most_k_semantics;
        Alcotest.test_case "at_least / exactly" `Quick at_least_exactly;
        QCheck_alcotest.to_alcotest at_most_weight_semantics;
        Alcotest.test_case "at_most_weight large weights" `Quick
          at_most_weight_large_weights;
      ] );
    ( "hyqsat.maxsat_exact",
      [
        QCheck_alcotest.to_alcotest exact_maxsat_matches_brute;
        Alcotest.test_case "unsat pair" `Quick exact_maxsat_on_unsat_pair;
      ] );
  ]
