(** Fixed-size Domain worker pool with a Mutex/Condition job queue.

    [create] spawns N OCaml 5 domains that block on a shared FIFO queue;
    [submit] enqueues work; [drain] closes the queue, joins the workers and
    returns every result in submission order.  Worker exceptions are
    captured per item ([Error exn]), never torn down the pool.

    The pool is generic — the batch layer feeds it jobs, the benchmark
    feeds it closures.  Note domains multiply: a pool of W workers each
    racing a P-member portfolio holds W×P+1 domains; keep the product
    around the core count. *)

type ('a, 'b) t

val create : workers:int -> (worker:int -> 'a -> 'b) -> ('a, 'b) t
(** Spawn [workers] domains (clamped to [1, 64]).  [worker] is the 0-based
    index of the domain executing the item — useful for per-worker RNGs. *)

val workers : ('a, 'b) t -> int

val submit : ('a, 'b) t -> 'a -> unit
(** Enqueue an item.  @raise Invalid_argument after {!drain}. *)

val drain : ('a, 'b) t -> ('b, exn) result array
(** Close the queue, wait for every submitted item, join the worker
    domains, and return results indexed by submission order.  Idempotent
    calls after the first raise [Invalid_argument]. *)

val map : workers:int -> (worker:int -> 'a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~workers f items] = create / submit each / drain, results in input
    order. *)
