(** Persistent fixed-size Domain worker pool with batch scheduling.

    [create] spawns N OCaml 5 domains once; they live until {!shutdown}.
    Work is scheduled in batches — {!run} hands a whole item list to the
    pool in one queue operation and the calling domain {e helps} execute
    its own batch while waiting, so a k-item batch costs one hand-off (not
    k) and the pool is deadlock-free under nesting: an item that itself
    calls [run] on the same pool always makes progress inline, even when
    every worker is busy.  Worker exceptions are captured per item
    ([Error exn]) and never tear the pool down — the next [run] starts
    clean.

    The pool is generic: the batch layer feeds it jobs, the annealer feeds
    it chunked best-of reads (via {!Tasks}), the benchmark feeds it
    closures.  Note domains multiply: a pool of W workers each racing a
    P-member portfolio holds W×P+1 domains; keep the product around the
    core count. *)

type ('a, 'b) t

val create : workers:int -> (worker:int -> 'a -> 'b) -> ('a, 'b) t
(** Spawn [workers] domains (clamped to [0, 64]).  [worker] is the 0-based
    index of the domain executing the item — useful for per-worker RNGs;
    items executed inline by a helping {!run}/{!drain} caller see
    [worker = workers t].  A 0-worker pool is valid: {!run} then executes
    everything on the calling domain. *)

val workers : ('a, 'b) t -> int
(** Number of spawned worker domains (the helping caller adds one more
    execution lane on top). *)

val run : ('a, 'b) t -> 'a list -> ('b, exn) result array
(** Execute every item and return results in input order.  Reusable: call
    it as many times as you like, from any domain — concurrent [run]s from
    different domains interleave safely, each returning only its own
    batch's results.  The caller participates in executing its own batch
    (helping), so even a fully-loaded pool completes the call.
    @raise Invalid_argument after {!shutdown}. *)

val submit : ('a, 'b) t -> 'a -> unit
(** Enqueue one item for asynchronous execution ({!drain} collects).
    Unlike the historical single-use pool, submitting after a [drain] is
    fine — the lifecycle only ends at {!shutdown}.
    @raise Invalid_argument after {!shutdown}. *)

val drain : ('a, 'b) t -> ('b, exn) result array
(** Wait for every item {!submit}ted since the last [drain] and return
    their results in submission order.  The pool stays alive — this is a
    checkpoint, not a teardown (use {!shutdown} for that).  The caller
    helps execute still-queued items while waiting. *)

val shutdown : ('a, 'b) t -> unit
(** Finish all claimable work, join the worker domains, and close the
    pool.  Idempotent.  Subsequent {!run}/{!submit} raise
    [Invalid_argument]. *)
