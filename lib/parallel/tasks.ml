(* Shared thunk pool: an untyped façade over [Pool] for callers that just
   need "run these closures across the cores" — the annealer's chunked
   best-of reads, ad-hoc fan-outs in benches.  One lazily-created
   process-wide instance ([shared]) amortises domain spawn across every
   user in the process, which is what turned the per-QA-call spawn/join
   regression into a flat cost. *)

type thunk = worker:int -> unit
type t = (thunk, unit) Pool.t

let create ~workers : t = Pool.create ~workers (fun ~worker thunk -> thunk ~worker)
let workers (t : t) = Pool.workers t

let run (t : t) thunks =
  let results = Pool.run t thunks in
  (* barrier first, then propagate: every thunk has finished (or failed)
     before the first failure is re-raised, so no orphan writes race the
     caller *)
  Array.iter (function Ok () -> () | Error e -> raise e) results

let shutdown (t : t) = Pool.shutdown t

(* ------------------------------------------------------------------ *)

let shared_mutex = Mutex.create ()
let shared_pool : t option ref = ref None

let shared () =
  Mutex.lock shared_mutex;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
        (* leave one core for the calling/helping domain; on a 1-core box
           this is a 0-worker pool and [run] degrades to inline execution *)
        let workers = max 0 (Domain.recommended_domain_count () - 1) in
        let t = create ~workers in
        shared_pool := Some t;
        (* join the idle workers on orderly exit so the runtime never waits
           on domains blocked in Condition.wait *)
        at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock shared_mutex;
  t
