(* Domain-local lazily-initialised state — the worker-local scratch hook.

   Keyed by the *executing domain's* identity rather than a pool worker
   index: worker indices collide (two concurrent Pool.run callers both
   help as the same extra lane), domain identities never do.  A domain
   only ever touches its own slot, so the value itself needs no locking —
   the mutex only guards the slot table. *)

type 'a t = {
  init : unit -> 'a;
  slots : (int, 'a) Hashtbl.t;
  mutex : Mutex.t;
}

let make init = { init; slots = Hashtbl.create 8; mutex = Mutex.create () }

let get t =
  let id = (Domain.self () :> int) in
  Mutex.lock t.mutex;
  let v =
    match Hashtbl.find_opt t.slots id with
    | Some v -> v
    | None ->
        let v = t.init () in
        Hashtbl.add t.slots id v;
        v
  in
  Mutex.unlock t.mutex;
  v
