(** Domain-local lazily-initialised state — the worker-local scratch hook
    for pool jobs.

    [get t] returns this domain's slot, creating it with the initialiser
    on first touch.  Because a domain runs one pool item at a time, the
    returned value can be mutated freely without synchronisation; reusing
    it across successive items (e.g. the annealer's spin scratch buffers)
    removes per-item allocation from hot paths.

    Slots are keyed by domain identity, not pool worker index — two
    concurrent {!Pool.run} callers can both {e help} under the same lane
    index, but never under the same domain.  Slots of exited domains are
    retained (a few KB each for the annealer's buffers); persistent pools
    keep the table bounded by the domain count. *)

type 'a t

val make : (unit -> 'a) -> 'a t
val get : 'a t -> 'a
