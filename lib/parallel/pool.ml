type ('a, 'b) t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (int * 'a) Queue.t;
  results : (int, ('b, exn) result) Hashtbl.t;
  mutable submitted : int;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let workers t = Array.length t.domains

let worker_loop t f wid =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* closed and empty: exit *)
    else begin
      let i, x = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      let r = try Ok (f ~worker:wid x) with e -> Error e in
      Mutex.lock t.mutex;
      Hashtbl.replace t.results i r;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~workers f =
  let workers = max 1 (min 64 workers) in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      results = Hashtbl.create 64;
      submitted = 0;
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun wid -> Domain.spawn (fun () -> worker_loop t f wid));
  t

let submit t x =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool already drained"
  end;
  Queue.push (t.submitted, x) t.jobs;
  t.submitted <- t.submitted + 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.drain: pool already drained"
  end;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  (* workers exit once the queue is empty; joining them is the barrier *)
  Array.iter Domain.join t.domains;
  Array.init t.submitted (fun i ->
      match Hashtbl.find_opt t.results i with
      | Some r -> r
      | None -> Error (Failure "Pool: result missing (worker died?)"))

let map ~workers f items =
  let t = create ~workers f in
  List.iter (submit t) items;
  Array.to_list (drain t)
