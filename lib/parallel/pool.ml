(* Persistent fixed-size Domain worker pool.

   Work is scheduled in *batches*: a batch owns its item and result arrays
   plus an unstarted-item cursor, and the pool's global queue holds batches
   that still have items to hand out.  Workers peek the front batch, claim
   the next item, and retire the batch from the queue once its cursor runs
   off the end — so scheduling a k-item batch costs one queue entry, not k.

   [run] is a reusable barrier: the calling domain *helps*, executing items
   of its own batch while it waits.  That keeps the pool deadlock-free
   under nesting (an item that itself calls [run] on the same pool can
   always finish its own sub-batch inline, even with every worker busy) and
   gives the pool [workers t + 1] execution lanes.

   The single-use submit/drain lifecycle this replaced spawned and joined a
   fresh domain set per batch — the root of the parallel best-of regression
   measured in BENCH_anneal.json (PR 4). *)

type ('a, 'b) batch = {
  items : 'a array;
  results : ('b, exn) result array;
  mutable next : int;  (* first unstarted item *)
  mutable left : int;  (* started-or-not items still incomplete *)
  finished : Condition.t;  (* signalled (with the pool mutex) at left = 0 *)
}

type ('a, 'b) t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : ('a, 'b) batch Queue.t;  (* batches with unstarted items *)
  mutable submitted : ('a, 'b) batch list;  (* submit-shim batches, newest first *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  f : worker:int -> 'a -> 'b;
}

let workers t = Array.length t.domains

let missing = Error (Failure "Pool: result missing (worker died?)")

let make_batch items =
  let n = Array.length items in
  {
    items;
    results = Array.make n missing;
    next = 0;
    left = n;
    finished = Condition.create ();
  }

(* claim the next unstarted item, skipping exhausted batches (a helping
   producer may have emptied a batch that is not at the front).  Caller
   holds the mutex. *)
let rec claim_locked t =
  match Queue.peek_opt t.queue with
  | None -> None
  | Some b ->
      if b.next >= Array.length b.items then begin
        ignore (Queue.pop t.queue);
        claim_locked t
      end
      else begin
        let i = b.next in
        b.next <- i + 1;
        if b.next >= Array.length b.items then ignore (Queue.pop t.queue);
        Some (b, i)
      end

(* execute one claimed item and publish its result.  Caller must NOT hold
   the mutex. *)
let exec t b i ~worker =
  let r = try Ok (t.f ~worker b.items.(i)) with e -> Error e in
  Mutex.lock t.mutex;
  b.results.(i) <- r;
  b.left <- b.left - 1;
  if b.left = 0 then Condition.broadcast b.finished;
  Mutex.unlock t.mutex

let rec worker_loop t wid =
  Mutex.lock t.mutex;
  let rec acquire () =
    match claim_locked t with
    | Some w -> Some w
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          acquire ()
        end
  in
  match acquire () with
  | None -> Mutex.unlock t.mutex (* closed and no claimable work: exit *)
  | Some (b, i) ->
      Mutex.unlock t.mutex;
      exec t b i ~worker:wid;
      worker_loop t wid

let create ~workers f =
  let workers = max 0 (min 64 workers) in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      submitted = [];
      closed = false;
      domains = [||];
      f;
    }
  in
  t.domains <- Array.init workers (fun wid -> Domain.spawn (fun () -> worker_loop t wid));
  t

let enqueue_locked t b =
  if Array.length b.items > 0 then begin
    Queue.push b t.queue;
    Condition.broadcast t.nonempty
  end

let run t items =
  let b = make_batch (Array.of_list items) in
  let n = Array.length b.items in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run: pool is shut down"
  end;
  enqueue_locked t b;
  (* helping barrier: claim our own batch's unstarted items; once they are
     all handed out, sleep until the in-flight ones (on workers) finish *)
  let helper = Array.length t.domains in
  while b.left > 0 do
    if b.next < n then begin
      let i = b.next in
      b.next <- i + 1;
      Mutex.unlock t.mutex;
      exec t b i ~worker:helper;
      Mutex.lock t.mutex
    end
    else Condition.wait b.finished t.mutex
  done;
  Mutex.unlock t.mutex;
  b.results

let submit t x =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let b = make_batch [| x |] in
  t.submitted <- b :: t.submitted;
  enqueue_locked t b;
  Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  let bs = List.rev t.submitted in
  t.submitted <- [];
  (* help with anything still queued (covers 0-worker pools), then wait for
     items in flight on workers *)
  let helper = Array.length t.domains in
  let incomplete () = List.find_opt (fun b -> b.left > 0) bs in
  let rec settle () =
    match incomplete () with
    | None -> ()
    | Some b -> (
        match claim_locked t with
        | Some (b', i) ->
            Mutex.unlock t.mutex;
            exec t b' i ~worker:helper;
            Mutex.lock t.mutex;
            settle ()
        | None ->
            Condition.wait b.finished t.mutex;
            settle ())
  in
  settle ();
  Mutex.unlock t.mutex;
  Array.concat (List.map (fun b -> b.results) bs)

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* workers finish every claimable item before exiting; joining them is
       the barrier *)
    Array.iter Domain.join t.domains
  end
