(** Shared thunk pool — {!Pool} specialised to closures.

    For callers that need "run these closures across the cores" without a
    typed job/result pair: the annealer's chunked best-of reads, benchmark
    fan-outs.  {!shared} is the process-wide instance; creating it once
    and reusing it everywhere is what keeps domain spawn/join off hot
    paths. *)

type thunk = worker:int -> unit
(** [worker] is the executing lane: [0 .. workers t - 1] for pool domains,
    [workers t] for the helping caller.  Thunks that keep per-domain state
    should key it with {!Local} (by domain identity) rather than by this
    index — two concurrent {!run} callers may both help as lane
    [workers t]. *)

type t

val create : workers:int -> t
(** Spawn a dedicated pool ([workers] clamped to [0, 64]; 0 means every
    {!run} executes inline on the caller). *)

val workers : t -> int

val run : t -> thunk list -> unit
(** Execute every thunk and wait for all of them (the caller helps — see
    {!Pool.run}).  If any thunk raised, the first exception (in list
    order) is re-raised {e after} the barrier, so no thunk is still
    running when [run] returns.  Reusable and safe to call concurrently
    from several domains, including from inside a thunk running on this
    very pool. *)

val shutdown : t -> unit
(** Join the workers.  Idempotent. *)

val shared : unit -> t
(** The lazily-created process-wide pool, sized
    [Domain.recommended_domain_count () - 1] (the last core belongs to the
    helping caller).  All in-process users share it — the annealer's
    parallel reads, batch QA consultations from several worker domains at
    once — and its workers are joined via [at_exit]. *)
