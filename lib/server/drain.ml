module T = Service.Telemetry

type report = {
  accepted : int;
  completed : int;
  cancelled_queued : int;
  cancelled_running : int;
  wall_s : float;
}

let cancelled r = r.cancelled_queued + r.cancelled_running

let pp ppf r =
  Format.fprintf ppf "drained: %d accepted, %d completed, %d cancelled (%d queued, %d running) in %.2fs"
    r.accepted r.completed (cancelled r) r.cancelled_queued r.cancelled_running r.wall_s

let to_json_string r =
  T.json_to_string
    (T.Obj
       [
         ("schema_version", T.Int T.schema_version);
         ("kind", T.Str "drain_report");
         ("accepted", T.Int r.accepted);
         ("completed", T.Int r.completed);
         ("cancelled_queued", T.Int r.cancelled_queued);
         ("cancelled_running", T.Int r.cancelled_running);
         ("wall_s", T.Num r.wall_s);
       ])

let install_stop_handlers ?signals () =
  let signals = match signals with Some s -> s | None -> [ Sys.sigterm; Sys.sigint ] in
  let stop = Atomic.make false in
  let handler _ =
    if Atomic.exchange stop true then exit 130 (* second signal: give up on grace *)
  in
  List.iter (fun s -> Sys.set_signal s (Sys.Signal_handle handler)) signals;
  stop
