(** Blocking client for the daemon's framed-JSON protocol — what
    [hyqsat submit], the smoke tests, and the serve benchmark speak.

    One socket, one {!Codec.decoder}; sends block until the frame is
    fully written, receives block until a frame decodes (or [timeout_s]
    lapses).  Not thread-safe. *)

type t

exception Protocol_error of string
(** Framing/decode failure, unexpected EOF, or receive timeout. *)

val connect_unix : string -> t

val connect_tcp : port:int -> t
(** Loopback TCP. *)

val close : t -> unit

val send : t -> Protocol.client_msg -> unit

val recv : ?timeout_s:float -> t -> Protocol.server_msg
(** Next server message.  @raise Protocol_error on EOF, a corrupt or
    unreadable frame, or after [timeout_s] (default: wait forever). *)

val handshake : ?client:string -> t -> unit
(** [Hello] / [Welcome] exchange.  @raise Protocol_error if the server
    answers anything else. *)

val http_get : port:int -> string -> string
(** Loopback HTTP GET (the metrics endpoint); returns the response body.
    @raise Protocol_error on a non-200 status. *)
