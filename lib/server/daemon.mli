(** The [hyqsat serve] event loop: accept framed-JSON clients on a Unix
    and/or loopback TCP socket, admit jobs through {!Dispatch}, stream
    progress events, expose Prometheus metrics over HTTP, and drain
    gracefully when told to stop.

    Single-threaded [Unix.select] loop; solver work happens in the
    dispatcher's worker domains, which wake the loop through a self-pipe
    when a job retires.  Progress streaming taps the {!Obs.Ctx} span
    stream: clients that sent [Subscribe {events = true}] receive an
    {!Protocol.server_msg.Event} per ["job"]/["attempt"]/["race"]/
    ["member"] span, dropped (and counted in [events_dropped_total])
    rather than buffered beyond [events_backlog_bytes] of unsent output.

    Shutdown contract: when [stop] flips (SIGTERM/SIGINT in the CLI),
    the daemon closes its listeners, rejects queued jobs as
    [unknown:cancelled] exactly once, gives running jobs
    [dispatch.grace_s] seconds before cancelling them cooperatively,
    sends every client a final [Drained] message, flushes telemetry, and
    returns the {!Drain.report}. *)

type config = {
  unix_socket : string option;  (** path; replaced if it already exists *)
  tcp_port : int option;  (** loopback only; [Some 0] = ephemeral *)
  metrics_port : int option;  (** loopback HTTP [/metrics]; [Some 0] = ephemeral *)
  dispatch : Dispatch.config;
  max_frame : int;  (** per-connection decoder limit *)
  events_backlog_bytes : int;
      (** per-subscriber unsent-output bound before events are dropped *)
}

val default_config : config
(** No listeners configured (callers must set at least one),
    {!Dispatch.default_config}, {!Codec.default_max_frame}, 256 KiB
    event backlog. *)

type ready = {
  r_unix_socket : string option;
  r_tcp_port : int option;  (** actual port, resolved when asked for 0 *)
  r_metrics_port : int option;
}

val run :
  ?obs:Obs.Ctx.t ->
  ?stop:bool Atomic.t ->
  ?on_ready:(ready -> unit) ->
  config ->
  Drain.report
(** Serve until [stop] is true (checked continuously; default: a flag
    nobody sets), then drain and return the report.  [on_ready] fires
    once every listener is bound — tests use it to learn ephemeral
    ports and to order client connects after the bind.
    @raise Invalid_argument if no listener is configured. *)
