(** Per-client admission quotas: a cap on how many jobs one client may
    have in flight (queued or running) at once, so a single chatty
    submitter cannot monopolise the admission queue.

    Clients are identified by the string they announce in [Hello] (or a
    per-connection fallback).  Not thread-safe: lives on the event-loop
    thread next to {!Jobq}. *)

type t

val create : limit:int -> t
(** [limit] jobs in flight per client.  @raise Invalid_argument if
    [limit < 1]. *)

val limit : t -> int

val admit : t -> string -> bool
(** Charge one slot to the client if under the limit; [false] (and no
    charge) otherwise. *)

val release : t -> string -> unit
(** Return one slot.  Releasing below zero is a bug in the caller and
    raises [Invalid_argument]. *)

val load : t -> string -> int
(** Slots currently charged to the client. *)
