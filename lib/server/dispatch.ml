module Job = Service.Job
module Batch = Service.Batch
module Portfolio = Service.Portfolio
module Telemetry = Service.Telemetry

type config = {
  workers : int;
  queue_capacity : int;
  per_client : int;
  grace_s : float;
  solver : string;
  grid : int;
  seed : int;
}

let default_config =
  {
    workers = 1;
    queue_capacity = 64;
    per_client = 16;
    grace_s = 2.0;
    solver = "hybrid";
    grid = 16;
    seed = 42;
  }

type verdict =
  | Accepted of { position : int; queued : int }
  | Rejected of { code : string; reason : string; retry_after_s : float option }

type completion = {
  client : string;
  conn : int;
  job_id : int;
  result : Batch.job_result;
  error : string option;
}

type counters = {
  accepted : int;
  completed : int;
  cancelled_queued : int;
  cancelled_running : int;
}

(* Per-(client, session-name) solver state.  The learnt-clause pool is
   internally synchronised, so concurrent same-session jobs may both use
   it.  The embedding cache is NOT domain-safe: workers lease it through
   [cache_lock] with a try-lock — whoever holds the lease gets the cache,
   a concurrent same-session job just solves without it.  [cache] is
   [None] when the server config cannot share one (portfolio races would
   hand it to sibling domains; a non-default grid makes the members build
   a fresh graph per solve, and a cache is bound to one graph value). *)
type session = {
  s_warm : Batch.Warm.t;
  s_cache_lock : Mutex.t;
  s_cache : Hyqsat.Frontend.cache option;
}

type entry = {
  e_client : string;
  e_conn : int;
  e_job_id : int;
  e_session : session option;
  spec : Job.spec;
  enqueued_at : float;
}

type t = {
  config : config;
  obs : Obs.Ctx.t;
  supervisor : Anneal.Supervisor.t;
  pool : (entry, unit) Parallel.Pool.t;
  queue : entry Jobq.t;
  quota : Quota.t;
  cancel : bool Atomic.t;
  (* worker domains append here; everything else is event-loop-only *)
  comp_mutex : Mutex.t;
  mutable comp_queue : completion list;  (* newest first; reversed on take *)
  mutable drained : completion list;  (* drain-cancelled queue entries, event-loop only *)
  mutable running : int;
  mutable draining : bool;
  mutable counters : counters;
  (* event-loop-only: keyed by "client\x00session-name" *)
  sessions : (string, session) Hashtbl.t;
}

let synthesized_result (spec : Job.spec) outcome ~queue_wait_s =
  let record =
    {
      Telemetry.job_id = spec.Job.id;
      job_name = spec.Job.name;
      outcome = Job.outcome_label outcome;
      verified = "";
      winner = "";
      attempts = 0;
      queue_wait_s;
      solve_time_s = 0.;
      iterations = 0;
      qa_calls = 0;
      qa_failures = 0;
      degraded = 0;
      strategy_uses = Array.make 4 0;
      warm_start = false;
      reused_clauses = 0;
      cost = -1;
      lower_bound = -1;
    }
  in
  {
    Batch.spec;
    outcome;
    record;
    race = { Portfolio.winner = None; members = []; wall_time_s = 0. };
  }

let create ?(obs = Obs.Ctx.null) ?(on_complete = fun () -> ()) config =
  let qa = Job.default_qa in
  let supervisor =
    Anneal.Supervisor.create ~obs ~policy:qa.Job.supervision ~seed:(config.seed + 77)
      (Anneal.Backend.of_spec qa.Job.backend)
  in
  let traced = not (Obs.Ctx.is_null obs) in
  let comp_mutex = Mutex.create () in
  let rec t =
    lazy
      {
        config;
        obs;
        supervisor;
        pool =
          Parallel.Pool.create ~workers:config.workers (fun ~worker entry ->
              let d = Lazy.force t in
              let leased =
                match entry.e_session with
                | Some s when s.s_cache <> None && Mutex.try_lock s.s_cache_lock -> Some s
                | _ -> None
              in
              let embed_cache = match leased with Some s -> s.s_cache | None -> None in
              let warm = match entry.e_session with Some s -> Some s.s_warm | None -> None in
              let members ~spec ~seed =
                let log_proof = spec.Job.certify in
                if config.solver = "portfolio" then
                  Portfolio.default_members ~grid:config.grid ~log_proof ~qa:spec.Job.qa
                    ~supervisor ~seed ()
                else
                  Batch.solo ~grid:config.grid ~log_proof ~supervisor ?embed_cache
                    config.solver ~spec ~seed
              in
              let jspan =
                if traced then
                  Obs.Span.start obs
                    ~attrs:
                      [
                        ("id", string_of_int entry.spec.Job.id);
                        ("name", entry.spec.Job.name);
                        ("worker", string_of_int worker);
                        ("client", entry.e_client);
                      ]
                    "job"
                else Obs.Span.none
              in
              let cancel () = Atomic.get d.cancel in
              let result, error =
                match
                  Fun.protect
                    ~finally:(fun () ->
                      match leased with
                      | Some s -> Mutex.unlock s.s_cache_lock
                      | None -> ())
                    (fun () ->
                      Batch.process ~cancel ?warm ~members ~obs ~parent:jspan entry.spec
                        ~enqueued_at:entry.enqueued_at ())
                with
                | r -> (r, None)
                | exception e ->
                    ( synthesized_result entry.spec (Job.Unknown Job.Budget)
                        ~queue_wait_s:(Unix.gettimeofday () -. entry.enqueued_at),
                      Some (Printexc.to_string e) )
              in
              if traced then begin
                Obs.Span.add_attr jspan "outcome" (Job.outcome_label result.Batch.outcome);
                Obs.Span.stop jspan;
                Obs.Metrics.incr obs
                  (Obs.Metrics.labelled "jobs_total"
                     [ ("outcome", Job.outcome_label result.Batch.outcome) ])
              end;
              let completion =
                {
                  client = entry.e_client;
                  conn = entry.e_conn;
                  job_id = entry.e_job_id;
                  result;
                  error;
                }
              in
              Mutex.lock comp_mutex;
              d.comp_queue <- completion :: d.comp_queue;
              Mutex.unlock comp_mutex;
              on_complete ());
        queue = Jobq.create ~capacity:config.queue_capacity;
        quota = Quota.create ~limit:config.per_client;
        cancel = Atomic.make false;
        comp_mutex;
        comp_queue = [];
        drained = [];
        running = 0;
        draining = false;
        counters = { accepted = 0; completed = 0; cancelled_queued = 0; cancelled_running = 0 };
        sessions = Hashtbl.create 8;
      }
  in
  Lazy.force t

let queued t = Jobq.length t.queue
let running t = t.running
let counters t = t.counters
let draining t = t.draining

let pump t =
  let rec go () =
    if t.running < t.config.workers then
      match Jobq.pop t.queue with
      | Some entry ->
          t.running <- t.running + 1;
          Parallel.Pool.submit t.pool entry;
          go ()
      | None -> ()
  in
  go ()

(* a fresh slot opens roughly when one of the queued-ahead jobs finishes;
   with no better signal, suggest one queue-drain's worth of patience *)
let retry_hint t = Float.max 0.1 (0.5 *. float_of_int (1 + Jobq.length t.queue))

(* bound the session table: past the cap a new session name gets no
   shared state (its jobs still solve, just cold) rather than letting a
   client grow server memory without limit *)
let max_sessions = 64

let session_for t ~client = function
  | None -> None
  | Some name -> (
      let key = client ^ "\x00" ^ name in
      match Hashtbl.find_opt t.sessions key with
      | Some s -> Some s
      | None when Hashtbl.length t.sessions >= max_sessions -> None
      | None ->
          let cache =
            (* see the [session] type: only shareable for a solo hybrid
               member on the default grid (the graph is then the one
               physical value every solve uses) *)
            if
              t.config.grid = 16
              && (t.config.solver = "hybrid" || t.config.solver = "hybrid-noisy")
            then
              Some
                (Hyqsat.Frontend.create_cache
                   Hyqsat.Hybrid_solver.default_config.Hyqsat.Hybrid_solver.graph)
            else None
          in
          let s =
            {
              s_warm = Batch.Warm.create ();
              s_cache_lock = Mutex.create ();
              s_cache = cache;
            }
          in
          Hashtbl.add t.sessions key s;
          Some s)

let submit t ~client ~conn (js : Protocol.job_spec) =
  if t.draining then
    Rejected { code = "draining"; reason = "server is shutting down"; retry_after_s = None }
  else
    let parse_reject what e =
      Rejected
        {
          code = "parse";
          reason = Printf.sprintf "%s: %s" what (Printexc.to_string e);
          retry_after_s = None;
        }
    in
    let seed =
      match js.Protocol.seed with
      | Some s -> s
      | None -> t.config.seed + (101 * js.Protocol.id)
    in
    let spec_result =
      match js.Protocol.format with
      | Some "wcnf" -> (
          match Sat.Wcnf.parse_string js.Protocol.dimacs with
          | exception e -> Error (parse_reject "WDIMACS" e)
          | w ->
              Ok
                (Job.optimize ~name:js.Protocol.name ~gap_limit:(max 0 js.Protocol.gap_limit)
                   ~certify:js.Protocol.certify ?timeout_s:js.Protocol.timeout_s
                   ~max_iterations:js.Protocol.max_iterations
                   ~retries:(max 0 js.Protocol.retries) ~seed ~id:js.Protocol.id w))
      | Some other ->
          Error
            (Rejected
               {
                 code = "parse";
                 reason = Printf.sprintf "unknown format %S (supported: \"wcnf\")" other;
                 retry_after_s = None;
               })
      | None -> (
          match Sat.Dimacs.parse_string js.Protocol.dimacs with
          | exception e -> Error (parse_reject "DIMACS" e)
          | formula ->
              let formula, original =
                if Sat.Cnf.is_3sat formula then (formula, None)
                else
                  let g, _map = Sat.Three_sat.convert formula in
                  (g, Some formula)
              in
              Ok
                (Job.make ~name:js.Protocol.name ?original ~certify:js.Protocol.certify
                   ?timeout_s:js.Protocol.timeout_s
                   ~max_iterations:js.Protocol.max_iterations
                   ~retries:(max 0 js.Protocol.retries) ~seed ~id:js.Protocol.id formula))
    in
    match spec_result with
    | Error rejection -> rejection
    | Ok spec ->
        if not (Quota.admit t.quota client) then
          Rejected
            {
              code = "quota";
              reason =
                Printf.sprintf "client %S already has %d job(s) in flight" client
                  (Quota.load t.quota client);
              retry_after_s = None;
            }
        else begin
          let entry =
            {
              e_client = client;
              e_conn = conn;
              e_job_id = js.Protocol.id;
              e_session = session_for t ~client js.Protocol.session;
              spec;
              enqueued_at = Unix.gettimeofday ();
            }
          in
          match Jobq.push t.queue ~priority:js.Protocol.priority entry with
          | `Full ->
              Quota.release t.quota client;
              Rejected
                {
                  code = "queue_full";
                  reason =
                    Printf.sprintf "admission queue at capacity (%d)" (Jobq.capacity t.queue);
                  retry_after_s = Some (retry_hint t);
                }
          | `Ok position ->
              t.counters <- { t.counters with accepted = t.counters.accepted + 1 };
              let queued = Jobq.length t.queue in
              pump t;
              Accepted { position; queued }
        end

let record_retirement t (c : completion) ~was_running =
  Quota.release t.quota c.client;
  let cs = t.counters in
  t.counters <-
    (match c.result.Batch.outcome with
    | Job.Unknown Job.Cancelled when was_running ->
        { cs with cancelled_running = cs.cancelled_running + 1 }
    | Job.Unknown Job.Cancelled -> { cs with cancelled_queued = cs.cancelled_queued + 1 }
    | _ -> { cs with completed = cs.completed + 1 })

let take_completions t =
  let dropped = List.rev t.drained in
  t.drained <- [];
  Mutex.lock t.comp_mutex;
  let batch = List.rev t.comp_queue in
  t.comp_queue <- [];
  Mutex.unlock t.comp_mutex;
  List.iter
    (fun c ->
      t.running <- t.running - 1;
      record_retirement t c ~was_running:true)
    batch;
  pump t;
  dropped @ batch

let idle t =
  Jobq.is_empty t.queue && t.running = 0 && t.drained = []
  &&
  (Mutex.lock t.comp_mutex;
   let empty = t.comp_queue = [] in
   Mutex.unlock t.comp_mutex;
   empty)

let begin_drain t =
  if not t.draining then begin
    t.draining <- true;
    let now = Unix.gettimeofday () in
    let dropped = Jobq.clear t.queue in
    List.iter
      (fun entry ->
        let c =
          {
            client = entry.e_client;
            conn = entry.e_conn;
            job_id = entry.e_job_id;
            result =
              synthesized_result entry.spec (Job.Unknown Job.Cancelled)
                ~queue_wait_s:(now -. entry.enqueued_at);
            error = None;
          }
        in
        record_retirement t c ~was_running:false;
        t.drained <- c :: t.drained)
      dropped
  end

let cancel_running t = Atomic.set t.cancel true

let shutdown t = Parallel.Pool.shutdown t.pool
