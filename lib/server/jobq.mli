(** Bounded admission queue: priority order across entries, FIFO within a
    priority, hard capacity.

    This is the backpressure point of the daemon — {!push} answers
    [`Full] instead of growing without bound, and the dispatcher turns
    that into a ["queue_full"] rejection with a retry hint.  Entries are
    opaque to the queue except for their priority; the dispatcher stores
    (connection, job spec) pairs.

    Not thread-safe: the queue lives on the event-loop thread. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> [ `Ok of int | `Full ]
(** Admit an entry.  [`Ok position] gives its 1-based rank in pop order
    at admission time (1 = next to run); [`Full] admits nothing. *)

val pop : 'a t -> 'a option
(** Highest priority first; oldest first within a priority. *)

val clear : 'a t -> 'a list
(** Remove and return every entry in pop order — the drain path uses
    this to reject queued jobs exactly once. *)
