(* Map keyed by (negated priority, admission sequence): Map's ascending
   order then yields highest priority first and FIFO within a priority.
   Size is bounded and small (the admission queue, not the workload), so
   log-time Map operations are plenty. *)

module Key = struct
  type t = int * int (* -priority, seq *)

  let compare = compare
end

module M = Map.Make (Key)

type 'a t = { capacity : int; mutable seq : int; mutable entries : 'a M.t }

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be >= 1";
  { capacity; seq = 0; entries = M.empty }

let capacity t = t.capacity
let length t = M.cardinal t.entries
let is_empty t = M.is_empty t.entries

let push t ~priority v =
  if length t >= t.capacity then `Full
  else begin
    let key = (-priority, t.seq) in
    t.seq <- t.seq + 1;
    t.entries <- M.add key v t.entries;
    (* rank = entries strictly before it, plus one *)
    let pos = ref 1 in
    M.iter (fun k _ -> if Key.compare k key < 0 then incr pos) t.entries;
    `Ok !pos
  end

let pop t =
  match M.min_binding_opt t.entries with
  | None -> None
  | Some (k, v) ->
      t.entries <- M.remove k t.entries;
      Some v

let clear t =
  let xs = List.map snd (M.bindings t.entries) in
  t.entries <- M.empty;
  xs
