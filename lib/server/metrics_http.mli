(** Minimal HTTP/1.0 responder for the scrape endpoint.

    Just enough HTTP for [curl] and a Prometheus scraper: parse the
    request line out of whatever bytes arrived, answer [GET /metrics]
    with the deterministic text exposition of the live {!Obs.Ctx}
    snapshot, [GET /healthz] with [ok], anything else with 404/405/400.
    Every response carries [Connection: close] — the daemon writes it
    and closes, no keep-alive state. *)

val response :
  metrics:(unit -> string) -> string -> string
(** [response ~metrics request] renders the full HTTP response (status
    line, headers, body) for the raw [request] bytes.  [metrics] is
    called only for [GET /metrics] — pass a closure over
    [Obs.Export.prometheus_string (Obs.Ctx.snapshot obs)]. *)

val request_complete : string -> bool
(** Heuristic for "stop reading, respond now": the bytes contain the
    end-of-headers blank line (GET requests have no body). *)
