let magic = "HQF1"
let header_bytes = 8
let default_max_frame = 4 * 1024 * 1024

type error = Bad_magic of string | Oversized of { size : int; limit : int }

let error_label = function Bad_magic _ -> "bad_magic" | Oversized _ -> "oversized"

(* ------------------------------------------------------------------ *)
(* decoder: a growable byte accumulator with a read cursor.  Consumed
   bytes are compacted away lazily, once the cursor has moved past more
   bytes than it leaves behind, so feeding and extracting are amortised
   O(bytes). *)

type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* one past the last byte fed *)
  mutable poisoned : error option;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; start = 0; stop = 0; poisoned = None }

let buffered d = d.stop - d.start

let ensure_room d extra =
  let used = buffered d in
  if d.stop + extra > Bytes.length d.buf then begin
    (* compact first; grow only if compaction is not enough *)
    if d.start > 0 then begin
      Bytes.blit d.buf d.start d.buf 0 used;
      d.start <- 0;
      d.stop <- used
    end;
    if d.stop + extra > Bytes.length d.buf then begin
      let cap = ref (max 4096 (Bytes.length d.buf)) in
      while used + extra > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit d.buf 0 bigger 0 used;
      d.buf <- bigger
    end
  end

let feed d ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if len < 0 || off < 0 || off + len > Bytes.length b then
    invalid_arg "Codec.feed: bad slice";
  ensure_room d len;
  Bytes.blit b off d.buf d.stop len;
  d.stop <- d.stop + len

let feed_string d s = feed d (Bytes.unsafe_of_string s)

let be32_at buf i =
  (Char.code (Bytes.get buf i) lsl 24)
  lor (Char.code (Bytes.get buf (i + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (i + 2)) lsl 8)
  lor Char.code (Bytes.get buf (i + 3))

let next d =
  match d.poisoned with
  | Some e -> Error e
  | None ->
      if buffered d < header_bytes then Ok None
      else begin
        let seen = Bytes.sub_string d.buf d.start 4 in
        if seen <> magic then begin
          let e = Bad_magic seen in
          d.poisoned <- Some e;
          Error e
        end
        else
          let size = be32_at d.buf (d.start + 4) in
          if size > d.max_frame then begin
            let e = Oversized { size; limit = d.max_frame } in
            d.poisoned <- Some e;
            Error e
          end
          else if buffered d < header_bytes + size then Ok None
          else begin
            let payload = Bytes.sub_string d.buf (d.start + header_bytes) size in
            d.start <- d.start + header_bytes + size;
            if d.start = d.stop then begin
              d.start <- 0;
              d.stop <- 0
            end;
            Ok (Some payload)
          end
      end

(* ------------------------------------------------------------------ *)
(* encoding *)

let frame payload =
  let n = String.length payload in
  if n > default_max_frame then
    invalid_arg (Printf.sprintf "Codec.frame: payload of %d bytes exceeds the frame limit" n);
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 5 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 6 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 7 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(* writer: queued frames flattened into one pending string with an
   offset; short writes only move the offset *)

type writer = { mutable out : Buffer.t; mutable off : int }

let writer () = { out = Buffer.create 1024; off = 0 }
let pending w = Buffer.length w.out - w.off

let push w payload =
  (* compact when everything queued so far has been written *)
  if w.off > 0 && w.off = Buffer.length w.out then begin
    Buffer.clear w.out;
    w.off <- 0
  end;
  Buffer.add_string w.out (frame payload)

let to_write w ?max () =
  let avail = pending w in
  let n = match max with Some m -> min m avail | None -> avail in
  Buffer.sub w.out w.off n

let advance w n =
  if n < 0 || n > pending w then invalid_arg "Codec.advance: beyond pending";
  w.off <- w.off + n;
  if w.off = Buffer.length w.out then begin
    Buffer.clear w.out;
    w.off <- 0
  end
