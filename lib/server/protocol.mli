(** Wire protocol messages: the JSON payloads inside {!Codec} frames.

    Every payload is one JSON object with a ["kind"] discriminator and a
    ["schema_version"] field carrying {!Service.Telemetry.schema_version}.
    Versioning follows the telemetry rules exactly: an absent version is
    read as 1, versions up to the current one are accepted (fields added
    since then read as their defaults), and a {e newer} version is
    rejected rather than misread.  Job results travel as the telemetry
    record's own JSON object shape, so a daemon answer is byte-compatible
    with the one-shot CLI's [--json] records. *)

val proto_version : int
(** Version of the message vocabulary (1). *)

val server_name : string
(** ["hyqsat-serve/1"] — announced in {!Welcome}. *)

type job_spec = {
  id : int;  (** client-chosen, echoed back in {!Accepted}/{!Result} *)
  name : string;
  dimacs : string;  (** the instance text: DIMACS, or WDIMACS when [format] says so *)
  format : string option;
      (** [Some "wcnf"] marks [dimacs] as WDIMACS and makes this an
          optimisation (weighted MaxSAT) job; [None] (the wire default)
          is a plain DIMACS decision job.  Unknown formats are rejected
          with code ["parse"]. *)
  gap_limit : int;
      (** optimisation jobs: accept any answer whose optimality gap is at
          most this (0 = demand a proven optimum); ignored for decision
          jobs.  Encoded only when non-zero, so decision submits are
          byte-identical to older clients'. *)
  certify : bool;
  timeout_s : float option;
  max_iterations : int;
  retries : int;
  seed : int option;  (** [None]: the server derives one from its own seed *)
  priority : int;  (** higher runs sooner; FIFO within a priority *)
  session : string option;
      (** scope for server-side solver-state reuse.  Jobs submitted by the
          same client under the same session name share a learnt-clause
          pool (a later job whose formula equals an earlier one starts
          from its learnt clauses) and, when the server config allows it,
          one embedding cache.  Reuse never changes an answer — the first
          job of a session behaves exactly like a one-shot submit.
          [None] (the wire default) keeps every job independent. *)
}

val make_job_spec :
  ?name:string ->
  ?format:string ->
  ?gap_limit:int ->
  ?certify:bool ->
  ?timeout_s:float ->
  ?max_iterations:int ->
  ?retries:int ->
  ?seed:int ->
  ?priority:int ->
  ?session:string ->
  id:int ->
  string ->
  job_spec
(** Spec for a DIMACS text with the same defaults a local {!Service.Job.make}
    would use ([name] defaults to ["job-<id>"]; no [format] = decision
    job, [gap_limit] = 0). *)

type client_msg =
  | Hello of { client : string; proto : int }
  | Submit of job_spec
  | Subscribe of { events : bool }  (** opt in/out of {!Event} streaming *)
  | Ping of int
  | Bye

type server_msg =
  | Welcome of { server : string; proto : int; schema : int }
  | Accepted of { id : int; position : int; queued : int }
      (** [position] is 1-based within the admission queue at accept time *)
  | Rejected of {
      id : int;
      code : string;  (** {!section-codes} *)
      reason : string;
      retry_after_s : float option;
          (** backpressure hint, present for ["queue_full"] *)
    }
  | Result of {
      id : int;
      record : Service.Telemetry.record;
      model : bool array option;  (** present iff the outcome is Sat *)
    }
  | Event of {
      job : int option;  (** job id when the span carries one *)
      name : string;
      dur_s : float;
      attrs : (string * string) list;
    }
  | Pong of int
  | Drained of { accepted : int; completed : int; cancelled : int }
      (** the server's goodbye during graceful shutdown *)
  | Error_msg of { code : string; reason : string }

(** {2:codes Error codes}

    ["queue_full"] (admission queue at capacity — retry after the hint),
    ["quota"] (per-client in-flight limit reached), ["draining"] (server
    shutting down), ["parse"] (DIMACS or JSON unreadable), ["bad_frame"]
    (framing violation), ["unsupported"] (schema or proto version newer
    than the server's), ["bad_msg"] (valid JSON, unknown kind). *)

val encode_client : client_msg -> string
val encode_server : server_msg -> string

val decode_client : string -> (client_msg, string) result
val decode_server : string -> (server_msg, string) result
(** [Error reason] on malformed JSON, an unknown [kind], or an
    unsupported (too-new) schema version. *)
