(** Length-prefixed wire framing.

    A frame is an 8-byte header — the 4 magic bytes {!magic} followed by
    the payload length as a big-endian unsigned 32-bit integer — and then
    the payload (UTF-8 JSON at the protocol layer; the codec is
    payload-agnostic).  The {!decoder} is an incremental push parser: feed
    it whatever byte slices the socket produced, ask for the next complete
    frame, repeat — partial headers and split payloads are just "not yet".
    The {!writer} is the mirror image for short writes: frames are queued
    whole and drained in as many partial writes as the socket takes.

    Both directions enforce a hard maximum payload size: an incoming
    length field beyond the limit poisons the decoder (the stream cannot
    be resynchronised after a bad header), and junk input fails fast on
    the magic check rather than being interpreted as a gigantic length. *)

val magic : string
(** ["HQF1"] — protocol family and framing version. *)

val header_bytes : int
(** 8: magic plus 32-bit big-endian payload length. *)

val default_max_frame : int
(** 4 MiB. *)

(** Why a byte stream stopped being a frame stream.  Both are fatal for
    the connection: after a corrupt header there is no way to find the
    next frame boundary. *)
type error =
  | Bad_magic of string  (** the four header bytes actually seen *)
  | Oversized of { size : int; limit : int }
      (** declared payload length exceeds the configured maximum *)

val error_label : error -> string
(** Stable one-token labels: ["bad_magic"], ["oversized"]. *)

(** {2 Decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** Fresh decoder enforcing [max_frame] (default {!default_max_frame})
    on declared payload lengths. *)

val feed : decoder -> ?off:int -> ?len:int -> Bytes.t -> unit
(** Append [len] bytes of [b] starting at [off] (defaults: the whole
    buffer) to the decoder's input. *)

val feed_string : decoder -> string -> unit

val next : decoder -> (string option, error) result
(** [Ok (Some payload)] — one complete frame, removed from the input;
    [Ok None] — the input holds no complete frame yet; [Error _] — the
    stream is corrupt.  Errors are sticky: every later call returns the
    same error. *)

val buffered : decoder -> int
(** Bytes fed but not yet returned as frames. *)

(** {2 Encoding} *)

val frame : string -> string
(** A payload's wire form: header + payload.
    @raise Invalid_argument if the payload exceeds {!default_max_frame}. *)

type writer

val writer : unit -> writer

val push : writer -> string -> unit
(** Queue one payload, framed. *)

val pending : writer -> int
(** Bytes queued and not yet consumed by {!advance}. *)

val to_write : writer -> ?max:int -> unit -> string
(** The next chunk to hand to [write] (at most [max] bytes, default all
    pending).  Does not consume — call {!advance} with however many bytes
    the socket actually took. *)

val advance : writer -> int -> unit
(** Mark [n] bytes as written.  @raise Invalid_argument if [n] exceeds
    {!pending}. *)
