type t = { limit : int; loads : (string, int) Hashtbl.t }

let create ~limit =
  if limit < 1 then invalid_arg "Quota.create: limit must be >= 1";
  { limit; loads = Hashtbl.create 16 }

let limit t = t.limit
let load t client = match Hashtbl.find_opt t.loads client with Some n -> n | None -> 0

let admit t client =
  let n = load t client in
  if n >= t.limit then false
  else begin
    Hashtbl.replace t.loads client (n + 1);
    true
  end

let release t client =
  match load t client with
  | 0 -> invalid_arg (Printf.sprintf "Quota.release: client %S holds no slot" client)
  | 1 -> Hashtbl.remove t.loads client
  | n -> Hashtbl.replace t.loads client (n - 1)
