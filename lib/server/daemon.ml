module P = Protocol

type config = {
  unix_socket : string option;
  tcp_port : int option;
  metrics_port : int option;
  dispatch : Dispatch.config;
  max_frame : int;
  events_backlog_bytes : int;
}

let default_config =
  {
    unix_socket = None;
    tcp_port = None;
    metrics_port = None;
    dispatch = Dispatch.default_config;
    max_frame = Codec.default_max_frame;
    events_backlog_bytes = 256 * 1024;
  }

type ready = {
  r_unix_socket : string option;
  r_tcp_port : int option;
  r_metrics_port : int option;
}

(* spans worth a wire event; solver internals stay local *)
let streamed_span = function "job" | "attempt" | "race" | "member" -> true | _ -> false

type conn = {
  fd : Unix.file_descr;
  key : int;
  kind : [ `Proto | `Http ];
  dec : Codec.decoder;
  wr : Codec.writer;  (* protocol connections *)
  http_in : Buffer.t;
  mutable http_out : string;  (* raw bytes for HTTP connections *)
  mutable http_off : int;
  mutable client : string;
  mutable subscribed : bool;
  mutable closing : bool;  (* close once output drains *)
}

let conn_pending c =
  match c.kind with
  | `Proto -> Codec.pending c.wr
  | `Http -> String.length c.http_out - c.http_off

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound)

let run ?(obs = Obs.Ctx.null) ?(stop = Atomic.make false) ?(on_ready = fun _ -> ())
    (config : config) =
  if config.unix_socket = None && config.tcp_port = None && config.metrics_port = None then
    invalid_arg "Daemon.run: no listener configured";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let traced = not (Obs.Ctx.is_null obs) in

  (* self-pipe: worker domains and the span listener wake the select *)
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let wake () = try ignore (Unix.write pipe_w (Bytes.make 1 '!') 0 1) with _ -> () in

  let dispatch = Dispatch.create ~obs ~on_complete:wake config.dispatch in

  (* live span tap: cheap append under the ctx mutex, fanned out to
     subscribers from the event loop *)
  let subscribers = Atomic.make 0 in
  let ev_mutex = Mutex.create () in
  let ev_queue = ref [] in
  let listener_token =
    Obs.Ctx.subscribe obs (fun (r : Obs.Ctx.span_record) ->
        if Atomic.get subscribers > 0 && streamed_span r.Obs.Ctx.name then begin
          Mutex.lock ev_mutex;
          ev_queue := r :: !ev_queue;
          Mutex.unlock ev_mutex;
          wake ()
        end)
  in

  let proto_listeners = ref [] in
  let http_listeners = ref [] in
  Option.iter (fun p -> proto_listeners := listen_unix p :: !proto_listeners) config.unix_socket;
  let tcp_bound =
    Option.map
      (fun p ->
        let fd, bound = listen_tcp p in
        proto_listeners := fd :: !proto_listeners;
        bound)
      config.tcp_port
  in
  let metrics_bound =
    Option.map
      (fun p ->
        let fd, bound = listen_tcp p in
        http_listeners := fd :: !http_listeners;
        bound)
      config.metrics_port
  in
  on_ready
    { r_unix_socket = config.unix_socket; r_tcp_port = tcp_bound; r_metrics_port = metrics_bound };

  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_key = ref 0 in
  let read_buf = Bytes.create 65536 in

  let close_conn c =
    if c.subscribed then Atomic.decr subscribers;
    Hashtbl.remove conns c.key;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  in
  let send c msg = Codec.push c.wr (P.encode_server msg) in
  let metric name = if traced then Obs.Metrics.incr obs name in

  let accept_on kind lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | fd, _addr ->
        Unix.set_nonblock fd;
        incr next_key;
        let key = !next_key in
        let c =
          {
            fd;
            key;
            kind;
            dec = Codec.decoder ~max_frame:config.max_frame ();
            wr = Codec.writer ();
            http_in = Buffer.create 256;
            http_out = "";
            http_off = 0;
            client = Printf.sprintf "conn-%d" key;
            subscribed = false;
            closing = false;
          }
        in
        Hashtbl.replace conns key c;
        metric "connections_total"
  in

  let handle_msg c = function
    | P.Hello { client; proto } ->
        if proto > P.proto_version then begin
          send c
            (P.Error_msg
               {
                 code = "unsupported";
                 reason =
                   Printf.sprintf "proto %d newer than server's %d" proto P.proto_version;
               });
          c.closing <- true
        end
        else begin
          c.client <- client;
          send c
            (P.Welcome
               {
                 server = P.server_name;
                 proto = P.proto_version;
                 schema = Service.Telemetry.schema_version;
               })
        end
    | P.Submit spec -> (
        metric "submissions_total";
        match Dispatch.submit dispatch ~client:c.client ~conn:c.key spec with
        | Dispatch.Accepted { position; queued } ->
            send c (P.Accepted { id = spec.P.id; position; queued })
        | Dispatch.Rejected { code; reason; retry_after_s } ->
            metric (Obs.Metrics.labelled "rejections_total" [ ("code", code) ]);
            send c (P.Rejected { id = spec.P.id; code; reason; retry_after_s }))
    | P.Subscribe { events } ->
        if events && not c.subscribed then Atomic.incr subscribers
        else if (not events) && c.subscribed then Atomic.decr subscribers;
        c.subscribed <- events
    | P.Ping n -> send c (P.Pong n)
    | P.Bye -> c.closing <- true
  in

  let handle_proto_input c =
    let rec frames () =
      match Codec.next c.dec with
      | Ok None -> ()
      | Ok (Some payload) ->
          (match P.decode_client payload with
          | Ok msg -> handle_msg c msg
          | Error reason ->
              let code =
                if String.length reason >= 11 && String.sub reason 0 11 = "unsupported" then
                  "unsupported"
                else "bad_msg"
              in
              send c (P.Error_msg { code; reason }));
          frames ()
      | Error e ->
          (* the stream has no recoverable frame boundary left: say why,
             then hang up once the error flushes *)
          send c
            (P.Error_msg
               { code = "bad_frame"; reason = Printf.sprintf "framing: %s" (Codec.error_label e) });
          c.closing <- true
    in
    frames ()
  in

  let metrics_body () = Obs.Export.prometheus_string (Obs.Ctx.snapshot obs) in

  let handle_readable c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
    | 0 -> close_conn c
    | n -> (
        match c.kind with
        | `Proto ->
            Codec.feed c.dec ~len:n read_buf;
            handle_proto_input c
        | `Http ->
            Buffer.add_subbytes c.http_in read_buf 0 n;
            if c.http_out = "" && Metrics_http.request_complete (Buffer.contents c.http_in)
            then begin
              c.http_out <-
                Metrics_http.response ~metrics:metrics_body (Buffer.contents c.http_in);
              c.closing <- true
            end)
  in

  let handle_writable c =
    try
      match c.kind with
      | `Proto ->
          let chunk = Codec.to_write c.wr ~max:65536 () in
          if chunk <> "" then begin
            let n = Unix.write_substring c.fd chunk 0 (String.length chunk) in
            Codec.advance c.wr n
          end
      | `Http ->
          let avail = String.length c.http_out - c.http_off in
          if avail > 0 then begin
            let n = Unix.write_substring c.fd c.http_out c.http_off avail in
            c.http_off <- c.http_off + n
          end
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | Unix.Unix_error _ -> close_conn c
  in

  let deliver_completion (comp : Dispatch.completion) =
    metric
      (Obs.Metrics.labelled "results_total"
         [ ("outcome", comp.Dispatch.result.Service.Batch.record.Service.Telemetry.outcome) ]);
    match Hashtbl.find_opt conns comp.Dispatch.conn with
    | None -> () (* client went away; the work is still counted *)
    | Some c ->
        Option.iter
          (fun e -> send c (P.Error_msg { code = "internal"; reason = e }))
          comp.Dispatch.error;
        let model =
          match comp.Dispatch.result.Service.Batch.outcome with
          | Service.Job.Sat m -> Some m
          | _ -> None
        in
        send c
          (P.Result
             {
               id = comp.Dispatch.job_id;
               record = comp.Dispatch.result.Service.Batch.record;
               model;
             })
  in

  let deliver_events () =
    Mutex.lock ev_mutex;
    let evs = List.rev !ev_queue in
    ev_queue := [];
    Mutex.unlock ev_mutex;
    if evs <> [] then
      Hashtbl.iter
        (fun _ c ->
          if c.kind = `Proto && c.subscribed && not c.closing then
            List.iter
              (fun (r : Obs.Ctx.span_record) ->
                if Codec.pending c.wr > config.events_backlog_bytes then
                  metric "events_dropped_total"
                else
                  send c
                    (P.Event
                       {
                         job =
                           Option.bind
                             (List.assoc_opt "id" r.Obs.Ctx.attrs)
                             int_of_string_opt;
                         name = r.Obs.Ctx.name;
                         dur_s = r.Obs.Ctx.dur_s;
                         attrs = r.Obs.Ctx.attrs;
                       }))
              evs)
        conns
  in

  (* ---------------------------------------------------------------- *)
  (* main loop *)
  let draining = ref false in
  let drain_t0 = ref 0. in
  let grace_deadline = ref infinity in
  let cancelled_running = ref false in
  let drained_at = ref 0. in
  let finished = ref false in

  let close_listeners () =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !proto_listeners;
    proto_listeners := []
  in

  while not !finished do
    if Atomic.get stop && not !draining then begin
      draining := true;
      drain_t0 := Unix.gettimeofday ();
      grace_deadline := !drain_t0 +. config.dispatch.Dispatch.grace_s;
      close_listeners ();
      Dispatch.begin_drain dispatch
    end;
    if !draining && (not !cancelled_running) && Unix.gettimeofday () > !grace_deadline
    then begin
      cancelled_running := true;
      Dispatch.cancel_running dispatch
    end;
    let reads =
      (pipe_r :: !proto_listeners) @ !http_listeners
      @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
    in
    let writes = Hashtbl.fold (fun _ c acc -> if conn_pending c > 0 then c.fd :: acc else acc) conns [] in
    let timeout = if !draining then 0.02 else 0.2 in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem pipe_r readable then begin
      let scratch = Bytes.create 256 in
      let rec drain_pipe () =
        match Unix.read pipe_r scratch 0 256 with
        | 256 -> drain_pipe ()
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      drain_pipe ()
    end;
    List.iter
      (fun lfd -> if List.mem lfd readable then accept_on `Proto lfd)
      !proto_listeners;
    List.iter (fun lfd -> if List.mem lfd readable then accept_on `Http lfd) !http_listeners;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
    List.iter (fun c -> if List.mem c.fd readable then handle_readable c) live;
    List.iter deliver_completion (Dispatch.take_completions dispatch);
    deliver_events ();
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
    List.iter (fun c -> if List.mem c.fd writable then handle_writable c) live;
    List.iter (fun c -> if c.closing && conn_pending c = 0 then close_conn c) live;
    if !draining && Dispatch.idle dispatch then begin
      drained_at := Unix.gettimeofday ();
      finished := true
    end
  done;

  (* goodbye: tell every client what the drain did, with a short best-effort
     flush — a stuck client must not block shutdown *)
  let cs = Dispatch.counters dispatch in
  let bye =
    P.Drained
      {
        accepted = cs.Dispatch.accepted;
        completed = cs.Dispatch.completed;
        cancelled = cs.Dispatch.cancelled_queued + cs.Dispatch.cancelled_running;
      }
  in
  Hashtbl.iter (fun _ c -> if c.kind = `Proto then send c bye) conns;
  let flush_deadline = Unix.gettimeofday () +. 1.0 in
  let rec flush () =
    let pending = Hashtbl.fold (fun _ c acc -> acc + conn_pending c) conns 0 in
    if pending > 0 && Unix.gettimeofday () < flush_deadline then begin
      let writes = Hashtbl.fold (fun _ c acc -> if conn_pending c > 0 then c.fd :: acc else acc) conns [] in
      match Unix.select [] writes [] 0.05 with
      | _, writable, _ ->
          Hashtbl.iter (fun _ c -> if List.mem c.fd writable then handle_writable c) conns;
          flush ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush ()
    end
  in
  flush ();
  Obs.Ctx.unsubscribe obs listener_token;
  Dispatch.shutdown dispatch;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  close_listeners ();
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !http_listeners;
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) config.unix_socket;
  {
    Drain.accepted = cs.Dispatch.accepted;
    completed = cs.Dispatch.completed;
    cancelled_queued = cs.Dispatch.cancelled_queued;
    cancelled_running = cs.Dispatch.cancelled_running;
    wall_s = (if !draining then !drained_at -. !drain_t0 else 0.);
  }
