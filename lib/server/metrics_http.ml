let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let request_complete req = contains_sub req "\r\n\r\n" || contains_sub req "\n\n"

let respond ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let text = "text/plain; charset=utf-8"

let response ~metrics request =
  (* request line: METHOD SP PATH SP VERSION; tolerate bare "METHOD PATH" *)
  let line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> ( match String.index_opt request '\n' with
      | Some i -> String.sub request 0 i
      | None -> request)
  in
  match String.split_on_char ' ' line with
  | meth :: path :: _ -> (
      let path = match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      match (meth, path) with
      | "GET", "/metrics" ->
          respond ~status:"200 OK" ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (metrics ())
      | "GET", "/healthz" -> respond ~status:"200 OK" ~content_type:text "ok\n"
      | "GET", _ -> respond ~status:"404 Not Found" ~content_type:text "not found\n"
      | _, ("/metrics" | "/healthz") ->
          respond ~status:"405 Method Not Allowed" ~content_type:text "method not allowed\n"
      | _ -> respond ~status:"404 Not Found" ~content_type:text "not found\n")
  | _ -> respond ~status:"400 Bad Request" ~content_type:text "bad request\n"
