module P = Protocol

exception Protocol_error of string

type t = { fd : Unix.file_descr; dec : Codec.decoder }

let connect fd addr =
  Unix.connect fd addr;
  { fd; dec = Codec.decoder () }

let connect_unix path = connect (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0) (Unix.ADDR_UNIX path)

let connect_tcp ~port =
  connect
    (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0)
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send t msg = write_all t.fd (Codec.frame (P.encode_client msg))

let recv ?timeout_s t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let buf = Bytes.create 65536 in
  let rec next () =
    match Codec.next t.dec with
    | Error e -> raise (Protocol_error ("framing: " ^ Codec.error_label e))
    | Ok (Some payload) -> (
        match P.decode_server payload with
        | Ok msg -> msg
        | Error reason -> raise (Protocol_error reason))
    | Ok None ->
        (match deadline with
        | Some d ->
            let left = d -. Unix.gettimeofday () in
            if left <= 0. then raise (Protocol_error "receive timeout");
            (match Unix.select [ t.fd ] [] [] left with
            | [], _, _ -> raise (Protocol_error "receive timeout")
            | _ -> ())
        | None -> ());
        (match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> raise (Protocol_error "connection closed by server")
        | n -> Codec.feed t.dec ~len:n buf
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        next ()
  in
  next ()

let handshake ?(client = "hyqsat-client") t =
  send t (P.Hello { client; proto = P.proto_version });
  match recv t with
  | P.Welcome _ -> ()
  | P.Error_msg { code; reason } ->
      raise (Protocol_error (Printf.sprintf "handshake rejected (%s): %s" code reason))
  | _ -> raise (Protocol_error "handshake: unexpected reply")

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
      let buf = Bytes.create 65536 in
      let out = Buffer.create 1024 in
      let rec slurp () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            slurp ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
      in
      slurp ();
      let response = Buffer.contents out in
      let body =
        (* headers end at the first blank line *)
        let rec find i =
          if i + 3 >= String.length response then None
          else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with
        | Some i -> String.sub response i (String.length response - i)
        | None -> ""
      in
      match String.split_on_char ' ' response with
      | _ :: "200" :: _ -> body
      | _ ->
          let status =
            match String.index_opt response '\r' with
            | Some i -> String.sub response 0 i
            | None -> response
          in
          raise (Protocol_error ("http: " ^ status)))
