module T = Service.Telemetry

let proto_version = 1
let server_name = "hyqsat-serve/1"

type job_spec = {
  id : int;
  name : string;
  dimacs : string;
  format : string option;
  gap_limit : int;
  certify : bool;
  timeout_s : float option;
  max_iterations : int;
  retries : int;
  seed : int option;
  priority : int;
  session : string option;
}

let make_job_spec ?name ?format ?(gap_limit = 0) ?(certify = false) ?timeout_s
    ?(max_iterations = max_int) ?(retries = 0) ?seed ?(priority = 0) ?session ~id dimacs =
  {
    id;
    name = (match name with Some n -> n | None -> Printf.sprintf "job-%d" id);
    dimacs;
    format;
    gap_limit;
    certify;
    timeout_s;
    max_iterations;
    retries;
    seed;
    priority;
    session;
  }

type client_msg =
  | Hello of { client : string; proto : int }
  | Submit of job_spec
  | Subscribe of { events : bool }
  | Ping of int
  | Bye

type server_msg =
  | Welcome of { server : string; proto : int; schema : int }
  | Accepted of { id : int; position : int; queued : int }
  | Rejected of { id : int; code : string; reason : string; retry_after_s : float option }
  | Result of { id : int; record : T.record; model : bool array option }
  | Event of { job : int option; name : string; dur_s : float; attrs : (string * string) list }
  | Pong of int
  | Drained of { accepted : int; completed : int; cancelled : int }
  | Error_msg of { code : string; reason : string }

(* ------------------------------------------------------------------ *)
(* encoding.  Field order is fixed: schema_version, kind, then the
   kind's own fields — stable bytes make frames diffable in tests. *)

let obj kind fields = T.Obj (("schema_version", T.Int T.schema_version) :: ("kind", T.Str kind) :: fields)

(* models travel as a '0'/'1' string: compact, order-preserving, and
   trivially stable across schema versions *)
let string_of_model m =
  String.init (Array.length m) (fun i -> if m.(i) then '1' else '0')

let model_of_string s = Array.init (String.length s) (fun i -> s.[i] = '1')

let opt_num name = function None -> [] | Some x -> [ (name, T.Num x) ]
let opt_int name = function None -> [] | Some i -> [ (name, T.Int i) ]
let opt_str name = function None -> [] | Some s -> [ (name, T.Str s) ]

let encode_client msg =
  T.json_to_string
    (match msg with
    | Hello { client; proto } ->
        obj "hello" [ ("client", T.Str client); ("proto", T.Int proto) ]
    | Submit s ->
        obj "submit"
          ([
             ("id", T.Int s.id);
             ("name", T.Str s.name);
             ("dimacs", T.Str s.dimacs);
             ("certify", T.Bool s.certify);
           ]
          @ opt_num "timeout_s" s.timeout_s
          @ [ ("max_iterations", T.Int s.max_iterations); ("retries", T.Int s.retries) ]
          @ opt_int "seed" s.seed
          @ [ ("priority", T.Int s.priority) ]
          @ opt_str "session" s.session
          @ opt_str "format" s.format
          (* only optimisation submits carry a gap: absence = 0 on read
             keeps decision submits byte-identical to older clients' *)
          @ (if s.gap_limit = 0 then [] else [ ("gap_limit", T.Int s.gap_limit) ]))
    | Subscribe { events } -> obj "subscribe" [ ("events", T.Bool events) ]
    | Ping n -> obj "ping" [ ("n", T.Int n) ]
    | Bye -> obj "bye" [])

let encode_server msg =
  T.json_to_string
    (match msg with
    | Welcome { server; proto; schema } ->
        obj "welcome"
          [ ("server", T.Str server); ("proto", T.Int proto); ("schema", T.Int schema) ]
    | Accepted { id; position; queued } ->
        obj "accepted"
          [ ("id", T.Int id); ("position", T.Int position); ("queued", T.Int queued) ]
    | Rejected { id; code; reason; retry_after_s } ->
        obj "rejected"
          ([ ("id", T.Int id); ("code", T.Str code); ("reason", T.Str reason) ]
          @ opt_num "retry_after_s" retry_after_s)
    | Result { id; record; model } ->
        obj "result"
          ([ ("id", T.Int id); ("record", T.json_of_record record) ]
          @ match model with None -> [] | Some m -> [ ("model", T.Str (string_of_model m)) ])
    | Event { job; name; dur_s; attrs } ->
        obj "event"
          (opt_int "job" job
          @ [
              ("name", T.Str name);
              ("dur_s", T.Num dur_s);
              ("attrs", T.Obj (List.map (fun (k, v) -> (k, T.Str v)) attrs));
            ])
    | Pong n -> obj "pong" [ ("n", T.Int n) ]
    | Drained { accepted; completed; cancelled } ->
        obj "drained"
          [
            ("accepted", T.Int accepted);
            ("completed", T.Int completed);
            ("cancelled", T.Int cancelled);
          ]
    | Error_msg { code; reason } ->
        obj "error" [ ("code", T.Str code); ("reason", T.Str reason) ])

(* ------------------------------------------------------------------ *)
(* decoding *)

let check_version kvs =
  (* same policy as Telemetry.of_json_string: absent = v1, anything up to
     the current version is readable, newer is rejected *)
  match List.assoc_opt "schema_version" kvs with
  | None -> ()
  | Some v ->
      let v = T.as_int v in
      if v < 1 || v > T.schema_version then
        raise
          (T.Parse_error
             (Printf.sprintf "unsupported schema_version %d (supported: 1..%d)" v
                T.schema_version))

let kind_of kvs = T.as_str (T.field kvs "kind")

let opt_field kvs k f = match List.assoc_opt k kvs with Some v -> Some (f v) | None -> None
let bool_field kvs k =
  match T.field kvs k with
  | T.Bool b -> b
  | _ -> raise (T.Parse_error (Printf.sprintf "field %S: expected bool" k))

let with_doc s f =
  match T.parse_json s with
  | exception T.Parse_error m -> Error m
  | j -> (
      match
        let kvs = T.as_obj j in
        check_version kvs;
        f kvs
      with
      | v -> Ok v
      | exception T.Parse_error m -> Error m)

let decode_client s =
  with_doc s (fun kvs ->
      match kind_of kvs with
      | "hello" ->
          Hello { client = T.as_str (T.field kvs "client"); proto = T.as_int (T.field kvs "proto") }
      | "submit" ->
          Submit
            {
              id = T.as_int (T.field kvs "id");
              name = T.as_str (T.field kvs "name");
              dimacs = T.as_str (T.field kvs "dimacs");
              certify = bool_field kvs "certify";
              timeout_s = opt_field kvs "timeout_s" T.as_num;
              max_iterations = T.as_int (T.field kvs "max_iterations");
              retries = T.as_int (T.field kvs "retries");
              seed = opt_field kvs "seed" T.as_int;
              (* added after v1 of the vocabulary: old submitters omit it *)
              priority = (match opt_field kvs "priority" T.as_int with Some p -> p | None -> 0);
              (* added with telemetry schema v4: absent = one-shot submit *)
              session = opt_field kvs "session" T.as_str;
              (* added with telemetry schema v5: absent = DIMACS decision job *)
              format = opt_field kvs "format" T.as_str;
              gap_limit =
                (match opt_field kvs "gap_limit" T.as_int with Some g -> g | None -> 0);
            }
      | "subscribe" -> Subscribe { events = bool_field kvs "events" }
      | "ping" -> Ping (T.as_int (T.field kvs "n"))
      | "bye" -> Bye
      | k -> raise (T.Parse_error (Printf.sprintf "unknown client message kind %S" k)))

let decode_server s =
  with_doc s (fun kvs ->
      match kind_of kvs with
      | "welcome" ->
          Welcome
            {
              server = T.as_str (T.field kvs "server");
              proto = T.as_int (T.field kvs "proto");
              schema = T.as_int (T.field kvs "schema");
            }
      | "accepted" ->
          Accepted
            {
              id = T.as_int (T.field kvs "id");
              position = T.as_int (T.field kvs "position");
              queued = T.as_int (T.field kvs "queued");
            }
      | "rejected" ->
          Rejected
            {
              id = T.as_int (T.field kvs "id");
              code = T.as_str (T.field kvs "code");
              reason = T.as_str (T.field kvs "reason");
              retry_after_s = opt_field kvs "retry_after_s" T.as_num;
            }
      | "result" ->
          Result
            {
              id = T.as_int (T.field kvs "id");
              record = T.record_of_json (T.field kvs "record");
              model = opt_field kvs "model" (fun v -> model_of_string (T.as_str v));
            }
      | "event" ->
          Event
            {
              job = opt_field kvs "job" T.as_int;
              name = T.as_str (T.field kvs "name");
              dur_s = T.as_num (T.field kvs "dur_s");
              attrs =
                List.map (fun (k, v) -> (k, T.as_str v)) (T.as_obj (T.field kvs "attrs"));
            }
      | "pong" -> Pong (T.as_int (T.field kvs "n"))
      | "drained" ->
          Drained
            {
              accepted = T.as_int (T.field kvs "accepted");
              completed = T.as_int (T.field kvs "completed");
              cancelled = T.as_int (T.field kvs "cancelled");
            }
      | "error" ->
          Error_msg { code = T.as_str (T.field kvs "code"); reason = T.as_str (T.field kvs "reason") }
      | k -> raise (T.Parse_error (Printf.sprintf "unknown server message kind %S" k)))
