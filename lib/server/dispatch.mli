(** The daemon's scheduling core: admission control in front of a
    {!Parallel.Pool} of solver workers, sharing one supervised annealer.

    Admission is checked in order — draining, DIMACS parse, per-client
    {!Quota}, bounded {!Jobq} — and each failure maps to a wire error
    code ({!Protocol.section-codes}).  Accepted jobs wait in the priority
    queue until a worker slot frees, then run the full
    {!Service.Batch.process} pipeline (retries, certification,
    telemetry) under the dispatcher's cancel flag, so a drain stops them
    cooperatively mid-solve.

    All hybrid members go through {e one} {!Anneal.Supervisor} created at
    {!create} — the shared-device model: a single circuit breaker
    protects the annealer across every job and connection.

    Threading: every function below must be called from the event-loop
    thread.  Worker domains only append to an internal completion queue
    and fire [on_complete] (safe to call from any domain — the daemon
    writes a self-pipe byte there). *)

type config = {
  workers : int;  (** solver worker domains *)
  queue_capacity : int;  (** admission queue bound (backpressure point) *)
  per_client : int;  (** max jobs in flight per client name *)
  grace_s : float;  (** drain: seconds running jobs get before cancel *)
  solver : string;  (** a {!Service.Portfolio.member_names} entry, or
                        ["portfolio"] for the full race *)
  grid : int;  (** Chimera grid for hybrid members *)
  seed : int;  (** server seed; job [id] without an explicit seed gets
                   [seed + 101·id], the one-shot CLI's derivation *)
}

val default_config : config
(** 1 worker, queue 64, 16 per client, 2 s grace, ["hybrid"], grid 16,
    seed 42. *)

type verdict =
  | Accepted of { position : int; queued : int }
  | Rejected of { code : string; reason : string; retry_after_s : float option }

type completion = {
  client : string;
  conn : int;  (** the connection key given to {!submit} *)
  job_id : int;  (** wire id, echoed into the [Result] *)
  result : Service.Batch.job_result;
  error : string option;
      (** a worker exception; [result] is then a synthesized
          [unknown:budget] record so the client still gets an answer *)
}

type counters = {
  accepted : int;
  completed : int;  (** retired with a real (non-cancelled) outcome *)
  cancelled_queued : int;
  cancelled_running : int;
}

type t

val create : ?obs:Obs.Ctx.t -> ?on_complete:(unit -> unit) -> config -> t

val submit : t -> client:string -> conn:int -> Protocol.job_spec -> verdict
(** Run the admission pipeline and, on acceptance, schedule as soon as a
    worker is free.  The rejection's [retry_after_s] is populated for
    ["queue_full"]. *)

val take_completions : t -> completion list
(** Retire every finished job (oldest first): releases quota slots,
    updates {!counters}, and feeds freed worker slots from the queue.
    Non-blocking; call after [on_complete] fired. *)

val queued : t -> int

val running : t -> int

val idle : t -> bool
(** No job queued, running, or finished-but-unretired. *)

val counters : t -> counters

val draining : t -> bool

val begin_drain : t -> unit
(** Stop accepting ([submit] answers ["draining"]) and cancel every
    queued job: each is retired through {!take_completions} exactly once
    as an [unknown:cancelled] completion.  Running jobs keep going —
    follow with {!cancel_running} when the grace period lapses. *)

val cancel_running : t -> unit
(** Flip the cooperative cancel flag: in-flight solves stop within ~128
    solver steps and retire as [unknown:cancelled]. *)

val shutdown : t -> unit
(** Join the worker pool.  Call once {!idle} — with jobs still running
    it blocks until they finish (so cancel first). *)
