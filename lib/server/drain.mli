(** Graceful-shutdown bookkeeping shared by the daemon and the one-shot
    CLI: a stop flag flipped by SIGTERM/SIGINT, and the report of what
    happened to accepted work once the drain finished.

    The contract both front ends honour: on the first signal, stop
    accepting new work, let queued jobs be cancelled exactly once, give
    running jobs a grace period to finish before cancelling them
    cooperatively, flush telemetry, then exit normally with this report. *)

type report = {
  accepted : int;  (** jobs admitted over the process lifetime *)
  completed : int;  (** finished with a real outcome before the drain *)
  cancelled_queued : int;  (** drained out of the queue, never started *)
  cancelled_running : int;  (** in flight at drain, stopped cooperatively *)
  wall_s : float;  (** from drain start to last job retired *)
}

val cancelled : report -> int
(** [cancelled_queued + cancelled_running]. *)

val pp : Format.formatter -> report -> unit
(** One human line, e.g.
    [drained: 12 accepted, 9 completed, 3 cancelled (2 queued, 1 running) in 0.41s]. *)

val to_json_string : report -> string
(** Versioned JSON object ({!Service.Telemetry.schema_version}), for the
    machine-readable drain report. *)

val install_stop_handlers : ?signals:int list -> unit -> bool Atomic.t
(** Install handlers for [signals] (default [Sys.sigterm; Sys.sigint])
    that set the returned flag on first delivery; a second signal while
    draining exits immediately with code 130.  Returns the flag polled by
    the cooperative-cancellation paths ({!Service.Batch.run}'s [cancel],
    the daemon's event loop). *)
