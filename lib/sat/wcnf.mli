(** Weighted partial MaxSAT formulas (WCNF).

    A formula is a set of {e hard} clauses that any acceptable model must
    satisfy, plus {e soft} clauses each carrying a positive integer weight;
    the cost of a model is the summed weight of the soft clauses it
    falsifies.  Both WDIMACS dialects are supported: the classic
    [p wcnf <vars> <clauses> <top>] header (a clause whose leading weight is
    [>= top] is hard) and the 2022 headerless format where hard clauses are
    prefixed with [h] and soft clauses with their weight. *)

type soft = { weight : int; clause : Clause.t }
(** One soft clause.  [weight >= 1] always holds. *)

type t = private { num_vars : int; hard : Clause.t array; soft : soft array }

val make : num_vars:int -> hard:Clause.t list -> soft:(int * Clause.t) list -> t
(** @raise Invalid_argument on an out-of-range literal, a weight [< 1], or
    a summed soft weight that would overflow [max_int] (so {!top} and
    penalised costs stay valid native ints; the parser reports the same
    condition as {!Parse_error}). *)

val of_cnf : ?weight:int -> Cnf.t -> t
(** Every clause of [f] becomes soft with the given weight (default [1]) —
    the classic unweighted MaxSAT relaxation. *)

val hardened : Cnf.t -> t
(** Every clause of [f] becomes hard: a plain decision instance. *)

val num_vars : t -> int
val num_hard : t -> int
val num_soft : t -> int

val sum_weights : t -> int
(** Total weight of all soft clauses (an upper bound on any model's cost). *)

val top : t -> int
(** [sum_weights f + 1]: the classic-WDIMACS hard-clause marker weight. *)

val hard_cnf : t -> Cnf.t
(** Just the hard clauses, as a decision formula over the same variables. *)

val soft_clauses : t -> (int * Clause.t) list

val cost : t -> bool array -> int
(** Summed weight of the soft clauses falsified by the (total) model.
    Ignores hard clauses — see {!hard_satisfied}. *)

val hard_satisfied : t -> bool array -> bool

exception Parse_error of string

val parse_string : string -> t
(** Parse either WDIMACS dialect.  @raise Parse_error on malformed input. *)

val parse_file : string -> t
(** @raise Parse_error and [Sys_error]. *)

val to_string : ?format:[ `Classic | `Std2022 ] -> ?comments:string list -> t -> string
(** Render to WDIMACS (default [`Classic], which preserves [num_vars]
    exactly through a parse round-trip; [`Std2022] recovers the variable
    count as the largest literal mentioned). *)

val write_file : ?format:[ `Classic | `Std2022 ] -> ?comments:string list -> string -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
