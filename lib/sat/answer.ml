type reason = Timeout | Budget | Cancelled | Cert_failed
type t = Sat of bool array | Unsat | Unknown of reason

let reason_label = function
  | Timeout -> "timeout"
  | Budget -> "budget"
  | Cancelled -> "cancelled"
  | Cert_failed -> "cert-failed"

let label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown r -> "unknown:" ^ reason_label r

let is_decisive = function Sat _ | Unsat -> true | Unknown _ -> false
