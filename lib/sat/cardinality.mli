(** Cardinality constraints as CNF (sequential-counter encoding, Sinz 2005).

    [at_most_k] introduces the register variables [s_{i,j}] ("at least j of
    the first i+1 literals are true") and emits the standard O(n·k) clause
    set.  Used by the exact MAX-SAT solver's linear search and available to
    any encoding that needs counting. *)

type t = {
  clauses : Clause.t list;
  num_vars : int;  (** total variable count after adding the registers *)
}

val at_most_k : num_vars:int -> Lit.t list -> k:int -> t
(** [at_most_k ~num_vars lits ~k] constrains at most [k] of [lits] to be
    true.  Fresh variables are numbered from [num_vars].  [k = 0] forces
    all literals false (no registers needed); [k >= length lits] yields no
    clauses. *)

val at_least_k : num_vars:int -> Lit.t list -> k:int -> t
(** At least [k] true, via [at_most (n-k)] over the negations. *)

val exactly_k : num_vars:int -> Lit.t list -> k:int -> t

(** {2 Weighted bounds}

    Pseudo-Boolean bounds [sum w_i·l_i <= k] through a binary adder network
    (Warners 1998): each weighted literal contributes the binary number
    whose set bits are the literal, the numbers are summed with
    Tseitin-encoded ripple-carry adders, and the output bits are compared
    against the constant bound.  O(m·log sum_weights) variables and
    clauses — safe for the weight magnitudes real WDIMACS instances carry,
    where a unary expansion would allocate O(sum_weights). *)

type adder = {
  sum_bits : Lit.t option array;
      (** binary value of the weighted true-literal count, LSB first;
          [None] is a constant-zero bit *)
  adder_clauses : Clause.t list;
  adder_num_vars : int;  (** total variable count after the adder cells *)
}

val weighted_sum : num_vars:int -> (int * Lit.t) list -> adder
(** Build the adder over [(weight, literal)] pairs, numbering fresh
    variables from [num_vars].  The encoding is a full equivalence, so
    [sum_bits] always equals the weighted count — which makes the result
    reusable: compare it against successive bounds with {!bound_clauses}
    without re-encoding.  Weights must be non-negative; zero-weight
    literals contribute nothing. *)

val bound_clauses : adder -> k:int -> Clause.t list
(** Clauses forcing the adder's value [<= k], introducing no variables.
    Bounds only tighten as [k] decreases: the clause set for a smaller [k]
    subsumes the larger one's meaning, so successive calls can be added
    permanently to one incremental solver session. *)

val at_most_weight : num_vars:int -> (int * Lit.t) list -> k:int -> t
(** [weighted_sum] composed with [bound_clauses]: one-shot
    [sum w_i·l_i <= k]. *)
