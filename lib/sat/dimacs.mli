(** DIMACS CNF reader/writer.

    Supports the standard [p cnf <vars> <clauses>] header, [c] comment lines,
    and clauses terminated by [0] possibly spanning several lines.  SATLIB
    benchmark files are read unmodified: a ["%"] token ends the clause
    section (the [% / 0] footer of the uf/uuf suites is ignored), and CRLF
    line endings or stray tabs are treated as plain whitespace. *)

exception Parse_error of string
(** Raised on malformed input, with a human-readable reason. *)

val parse_string : string -> Cnf.t
(** Parse a DIMACS document from a string.  @raise Parse_error. *)

val parse_file : string -> Cnf.t
(** Parse a DIMACS file.  @raise Parse_error and [Sys_error]. *)

val to_string : ?comments:string list -> Cnf.t -> string
(** Render to DIMACS, prefixing each [comments] entry as a [c] line. *)

val write_file : ?comments:string list -> string -> Cnf.t -> unit
