let check_limit limit_vars f =
  if Cnf.num_vars f > limit_vars then
    invalid_arg
      (Printf.sprintf "Brute: %d vars exceeds limit %d" (Cnf.num_vars f) limit_vars)

let assignment_of_bits n bits =
  Array.init n (fun v -> bits land (1 lsl v) <> 0)

let fold ?(limit_vars = 24) f acc step =
  check_limit limit_vars f;
  let n = Cnf.num_vars f in
  let acc = ref acc in
  (try
     for bits = 0 to (1 lsl n) - 1 do
       let model = assignment_of_bits n bits in
       let a = Assignment.of_bools model in
       match step !acc model (Assignment.satisfies a f) with
       | `Stop v ->
           acc := v;
           raise Exit
       | `Continue v -> acc := v
     done
   with Exit -> ());
  !acc

let solve ?limit_vars f =
  fold ?limit_vars f None (fun acc model sat ->
      if sat then `Stop (Some model) else `Continue acc)

let count_models ?limit_vars f =
  fold ?limit_vars f 0 (fun acc _ sat -> `Continue (if sat then acc + 1 else acc))

let min_cost ?(limit_vars = 24) w =
  let n = Wcnf.num_vars w in
  if n > limit_vars then
    invalid_arg (Printf.sprintf "Brute: %d vars exceeds limit %d" n limit_vars);
  let best = ref None in
  for bits = 0 to (1 lsl n) - 1 do
    let model = assignment_of_bits n bits in
    if Wcnf.hard_satisfied w model then begin
      let c = Wcnf.cost w model in
      match !best with
      | Some (c', _) when c' <= c -> ()
      | _ -> best := Some (c, model)
    end
  done;
  !best

let min_unsatisfied ?(limit_vars = 24) f =
  check_limit limit_vars f;
  let n = Cnf.num_vars f in
  let best = ref max_int in
  for bits = 0 to (1 lsl n) - 1 do
    let a = Assignment.of_bools (assignment_of_bits n bits) in
    let u = Assignment.num_unsatisfied a f in
    if u < !best then best := u
  done;
  if Cnf.num_clauses f = 0 then 0 else !best
