exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_space = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false

let split_on_whitespace line =
  let out = ref [] and start = ref (-1) in
  let n = String.length line in
  for i = 0 to n - 1 do
    if is_space line.[i] then begin
      if !start >= 0 then out := String.sub line !start (i - !start) :: !out;
      start := -1
    end
    else if !start < 0 then start := i
  done;
  if !start >= 0 then out := String.sub line !start (n - !start) :: !out;
  List.rev !out

let tokenize s =
  (* splits on any whitespace (CRLF files included), dropping comment lines *)
  let out = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line = 0 then ()
         else if line.[0] = 'c' then ()
         else List.iter (fun tok -> out := tok :: !out) (split_on_whitespace line));
  List.rev !out

(* SATLIB benchmark files end with a "%" footer ("%" then a lone "0");
   everything from the first "%" token on is trailing junk, not clauses *)
let drop_satlib_footer toks =
  let rec take acc = function
    | [] | "%" :: _ -> List.rev acc
    | t :: rest -> take (t :: acc) rest
  in
  take [] toks

let parse_string s =
  match tokenize s with
  | "p" :: "cnf" :: nv :: nc :: rest ->
      let num_vars =
        try int_of_string nv with Failure _ -> fail "bad variable count %S" nv
      in
      let num_clauses =
        try int_of_string nc with Failure _ -> fail "bad clause count %S" nc
      in
      if num_vars < 0 || num_clauses < 0 then fail "negative counts in header";
      let rest = drop_satlib_footer rest in
      let clauses = ref [] in
      let current = ref [] in
      List.iter
        (fun tok ->
          let i = try int_of_string tok with Failure _ -> fail "bad literal %S" tok in
          if i = 0 then begin
            clauses := Clause.of_dimacs (List.rev !current) :: !clauses;
            current := []
          end
          else begin
            if abs i > num_vars then fail "literal %d exceeds declared %d vars" i num_vars;
            current := i :: !current
          end)
        rest;
      if !current <> [] then fail "trailing clause not terminated by 0";
      let clauses = List.rev !clauses in
      if List.length clauses <> num_clauses then
        fail "header declares %d clauses, found %d" num_clauses (List.length clauses);
      Cnf.make ~num_vars clauses
  | "p" :: fmt :: _ -> fail "unsupported format %S (expected cnf)" fmt
  | _ -> fail "missing DIMACS header"

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let to_string ?(comments = []) f =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf ("c " ^ c ^ "\n")) comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.num_vars f) (Cnf.num_clauses f));
  List.iter
    (fun c ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " "))
        (Clause.lits c);
      Buffer.add_string buf "0\n")
    (Cnf.clauses f);
  Buffer.contents buf

let write_file ?comments path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?comments f))
