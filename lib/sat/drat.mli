(** DRAT proof logging and checking.

    When {!Config.t}[.log_proof] is set, the solver records every learnt
    clause as an addition and every database-reduction victim as a deletion.
    An unsatisfiability result ends with the empty clause.  {!check}
    verifies the proof by reverse unit propagation (RUP): each added clause
    must propagate to a conflict when its negation is assumed against the
    accumulated database.  RUP is sound, so a checked proof certifies the
    UNSAT answer independently of the solver's implementation. *)

type step = Add of Lit.t list | Delete of Lit.t list

type t = step list
(** In derivation order. *)

val to_string : t -> string
(** Standard textual DRAT ("d" prefix for deletions, DIMACS literals). *)

val parse_string : string -> t
(** Inverse of {!to_string}.  Tokens may be separated by any whitespace
    (tabs, CR), [c] comment lines are skipped, and a bare [d] line is
    rejected with a clear message rather than read as a literal.
    @raise Failure on malformed input. *)

val check : Cnf.t -> t -> (unit, string) result
(** [check f proof] verifies every addition is RUP with respect to [f] plus
    the previously added (and not yet deleted) clauses, and that the proof
    derives the empty clause.  [Error] carries the first offending step. *)

val check_steps : Cnf.t -> t -> (unit, string) result
(** Like {!check} but does not require the empty clause — verifies the
    derivation only (useful for satisfiable runs where learnt clauses are
    still logged). *)
