(** Brute-force reference solver (exhaustive enumeration).

    Only usable for small variable counts; the test suite relies on it as a
    ground-truth oracle for CDCL, DPLL, QUBO encodings and the annealer. *)

val solve : ?limit_vars:int -> Cnf.t -> bool array option
(** [solve f] is [Some model] for the lexicographically-first satisfying
    assignment, [None] if unsatisfiable.
    @raise Invalid_argument if [Cnf.num_vars f > limit_vars] (default 24). *)

val count_models : ?limit_vars:int -> Cnf.t -> int
(** Number of satisfying assignments. *)

val min_unsatisfied : ?limit_vars:int -> Cnf.t -> int
(** Minimum number of falsified clauses over all total assignments
    (the MAX-SAT optimum complement); [0] iff satisfiable. *)

val min_cost : ?limit_vars:int -> Wcnf.t -> (int * bool array) option
(** Weighted MaxSAT ground truth: the minimum soft-clause cost over all
    assignments satisfying every hard clause, with the lexicographically
    first witnessing model; [None] when the hard clauses are unsatisfiable. *)
