(** The one answer type.

    Every solving surface in the code base — [Cdcl.Solver], the hybrid
    pipeline, [Job] outcomes, [Portfolio] member reports, [Certify] —
    reports a value of this type (via [type result = Sat.Answer.t = ...]
    re-export equations, so the constructors are shared, not merely
    convertible). *)

type reason =
  | Timeout  (** a deadline expired *)
  | Budget  (** an iteration/conflict budget ran out *)
  | Cancelled  (** cooperatively stopped (portfolio loser, user abort) *)
  | Cert_failed  (** an answer was produced but failed certification *)

type t =
  | Sat of bool array  (** satisfying assignment, indexed by variable *)
  | Unsat
  | Unknown of reason

val label : t -> string
(** ["sat"], ["unsat"], ["unknown:timeout"], ["unknown:budget"],
    ["unknown:cancelled"], ["unknown:cert-failed"] — the strings used in
    telemetry JSON; byte-stable. *)

val reason_label : reason -> string
(** The part after ["unknown:"] in {!label}. *)

val is_decisive : t -> bool
(** [true] for [Sat _] and [Unsat]. *)
