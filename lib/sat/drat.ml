type step = Add of Lit.t list | Delete of Lit.t list

type t = step list

let to_string proof =
  let buf = Buffer.create 1024 in
  List.iter
    (fun step ->
      let lits, prefix =
        match step with Add l -> (l, "") | Delete l -> (l, "d ")
      in
      Buffer.add_string buf prefix;
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) lits;
      Buffer.add_string buf "0\n")
    proof;
  Buffer.contents buf

let is_space = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false

let split_on_whitespace line =
  let out = ref [] and start = ref (-1) in
  let n = String.length line in
  for i = 0 to n - 1 do
    if is_space line.[i] then begin
      if !start >= 0 then out := String.sub line !start (i - !start) :: !out;
      start := -1
    end
    else if !start < 0 then start := i
  done;
  if !start >= 0 then out := String.sub line !start (n - !start) :: !out;
  List.rev !out

let parse_string s =
  let steps = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match split_on_whitespace line with
         | [] -> () (* blank (or whitespace-only) line *)
         | "c" :: _ -> () (* comment, as emitted by drat-trim *)
         | toks ->
             let is_delete, body =
               match toks with
               | [ "d" ] -> failwith "Drat.parse: bare \"d\" line (deletion without literals)"
               | "d" :: rest -> (true, rest)
               | _ -> (false, toks)
             in
             let ints =
               List.map
                 (fun t ->
                   try int_of_string t with Failure _ -> failwith ("Drat.parse: bad literal " ^ t))
                 body
             in
             (match List.rev ints with
             | 0 :: rest ->
                 let lits = List.rev_map Lit.of_dimacs rest in
                 steps := (if is_delete then Delete lits else Add lits) :: !steps
             | _ -> failwith "Drat.parse: clause not 0-terminated"));
  List.rev !steps

(* ------------------------------------------------------------------ *)
(* RUP checking with a simple counting propagator                      *)

module Db = struct
  (* clause database for the checker: multiset of literal lists *)
  type db = { mutable clauses : Lit.t list list }

  let of_cnf f = { clauses = List.map Clause.lits (Cnf.clauses f) }
  let add db lits = db.clauses <- lits :: db.clauses

  let delete db lits =
    let target = List.sort Lit.compare lits in
    let rec remove = function
      | [] -> [] (* deleting an absent clause is a no-op, as in drat-trim *)
      | c :: rest ->
          if List.sort Lit.compare c = target then rest else c :: remove rest
    in
    db.clauses <- remove db.clauses

  (* unit propagation from assumptions; true iff a conflict arises *)
  let propagates_to_conflict db ~assumed num_vars =
    let value = Assignment.create num_vars in
    let conflict = ref false in
    (try
       List.iter
         (fun l ->
           match Assignment.lit_value value l with
           | Assignment.False -> raise Exit
           | _ -> Assignment.set value (Lit.var l) (Lit.is_pos l))
         assumed
     with Exit -> conflict := true);
    let changed = ref true in
    while (not !conflict) && !changed do
      changed := false;
      List.iter
        (fun c ->
          if not !conflict then begin
            let unassigned = ref [] and satisfied = ref false in
            List.iter
              (fun l ->
                match Assignment.lit_value value l with
                | Assignment.True -> satisfied := true
                | Assignment.False -> ()
                | Assignment.Unassigned -> unassigned := l :: !unassigned)
              c;
            if not !satisfied then
              match !unassigned with
              | [] -> conflict := true
              | [ l ] ->
                  Assignment.set value (Lit.var l) (Lit.is_pos l);
                  changed := true
              | _ -> ()
          end)
        db.clauses
    done;
    !conflict
end

let check_general ~require_empty f proof =
  let num_vars = Cnf.num_vars f in
  let db = Db.of_cnf f in
  let derived_empty = ref false in
  let rec go i = function
    | [] ->
        if (not require_empty) || !derived_empty then Ok ()
        else Error "proof does not derive the empty clause"
    | Add lits :: rest ->
        let assumed = List.map Lit.negate lits in
        if Db.propagates_to_conflict db ~assumed num_vars then begin
          if lits = [] then derived_empty := true;
          Db.add db lits;
          go (i + 1) rest
        end
        else Error (Printf.sprintf "step %d: clause is not RUP" i)
    | Delete lits :: rest ->
        Db.delete db lits;
        go (i + 1) rest
  in
  go 0 proof

let check f proof = check_general ~require_empty:true f proof
let check_steps f proof = check_general ~require_empty:false f proof
