type soft = { weight : int; clause : Clause.t }
type t = { num_vars : int; hard : Clause.t array; soft : soft array }

let check_clause num_vars c =
  Array.iter
    (fun l ->
      if Lit.var l >= num_vars || Lit.var l < 0 then
        invalid_arg
          (Printf.sprintf "Wcnf.make: literal %s out of range (num_vars=%d)"
             (Lit.to_string l) num_vars))
    (Clause.to_array c)

let make ~num_vars ~hard ~soft =
  List.iter (check_clause num_vars) hard;
  List.iter
    (fun (w, c) ->
      if w < 1 then invalid_arg (Printf.sprintf "Wcnf.make: soft weight %d < 1" w);
      check_clause num_vars c)
    soft;
  (* [top] is [sum + 1] and classification/penalised costs compare against
     it, so the summed weight must stay a valid native int: overflow here
     would silently flip hard/soft classification on classic round-trips *)
  ignore
    (List.fold_left
       (fun acc (w, _) ->
         if w > max_int - 1 - acc then
           invalid_arg "Wcnf.make: summed soft weight overflows max_int"
         else acc + w)
       0 soft);
  {
    num_vars;
    hard = Array.of_list hard;
    soft = Array.of_list (List.map (fun (weight, clause) -> { weight; clause }) soft);
  }

let of_cnf ?(weight = 1) f =
  make ~num_vars:(Cnf.num_vars f) ~hard:[]
    ~soft:(List.map (fun c -> (weight, c)) (Cnf.clauses f))

let hardened f = make ~num_vars:(Cnf.num_vars f) ~hard:(Cnf.clauses f) ~soft:[]
let num_vars f = f.num_vars
let num_hard f = Array.length f.hard
let num_soft f = Array.length f.soft
let sum_weights f = Array.fold_left (fun acc s -> acc + s.weight) 0 f.soft
let top f = sum_weights f + 1
let hard_cnf f = Cnf.of_arrays ~num_vars:f.num_vars (Array.copy f.hard)
let soft_clauses f = Array.to_list f.soft |> List.map (fun s -> (s.weight, s.clause))

let cost f model =
  let a = Assignment.of_bools model in
  Array.fold_left
    (fun acc s -> if Assignment.satisfies_clause a s.clause then acc else acc + s.weight)
    0 f.soft

let hard_satisfied f model =
  let a = Assignment.of_bools model in
  Array.for_all (fun c -> Assignment.satisfies_clause a c) f.hard

(* ---- WDIMACS parsing (mirrors the Dimacs tokenizer conventions) ---- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let is_space = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false

let split_on_whitespace line =
  let out = ref [] and start = ref (-1) in
  let n = String.length line in
  for i = 0 to n - 1 do
    if is_space line.[i] then begin
      if !start >= 0 then out := String.sub line !start (i - !start) :: !out;
      start := -1
    end
    else if !start < 0 then start := i
  done;
  if !start >= 0 then out := String.sub line !start (n - !start) :: !out;
  List.rev !out

let tokenize s =
  let out = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line = 0 then ()
         else if line.[0] = 'c' then ()
         else List.iter (fun tok -> out := tok :: !out) (split_on_whitespace line));
  List.rev !out

let drop_satlib_footer toks =
  let rec take acc = function
    | [] | "%" :: _ -> List.rev acc
    | t :: rest -> take (t :: acc) rest
  in
  take [] toks

let int_tok tok = try int_of_string tok with Failure _ -> fail "bad token %S" tok

(* Reads [(head, lits)] groups where [head] is the leading weight token
   ([None] for an [h]-prefixed hard clause) and each group runs to a [0]. *)
let read_clauses toks =
  let groups = ref [] in
  let head = ref `Expect_head in
  let current = ref [] in
  List.iter
    (fun tok ->
      match !head with
      | `Expect_head ->
          if tok = "h" || tok = "H" then head := `In_clause None
          else begin
            let w = int_tok tok in
            if w < 0 then fail "negative clause weight %d" w;
            head := `In_clause (Some w)
          end
      | `In_clause h ->
          let i = int_tok tok in
          if i = 0 then begin
            groups := (h, List.rev !current) :: !groups;
            current := [];
            head := `Expect_head
          end
          else current := i :: !current)
    toks;
  (match !head with
  | `Expect_head -> ()
  | `In_clause _ -> fail "trailing clause not terminated by 0");
  List.rev !groups

let max_var_of_groups groups =
  List.fold_left
    (fun acc (_, lits) -> List.fold_left (fun acc l -> max acc (abs l)) acc lits)
    0 groups

let build ~num_vars groups ~is_hard =
  let hard = ref [] and soft = ref [] in
  List.iter
    (fun (h, lits) ->
      List.iter
        (fun l ->
          if abs l > num_vars then fail "literal %d exceeds %d vars" l num_vars)
        lits;
      let c = Clause.of_dimacs lits in
      match h with
      | None -> hard := c :: !hard
      | Some w ->
          if is_hard w then hard := c :: !hard
          else if w = 0 then fail "soft clause with weight 0"
          else soft := (w, c) :: !soft)
    groups;
  (* weight-overflow (and any other) constructor rejection surfaces as a
     parse error, keeping the parser's error contract uniform *)
  match make ~num_vars ~hard:(List.rev !hard) ~soft:(List.rev !soft) with
  | w -> w
  | exception Invalid_argument msg -> fail "%s" msg

(* The flat token stream cannot tell a 3-field [p wcnf nv nc] header from a
   4-field one followed by a clause weight, so the header is read off its own
   line before the clause section is flattened — which is how the dialect is
   actually defined. *)
let split_header s =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | line :: rest ->
        let t = String.trim line in
        if String.length t = 0 || t.[0] = 'c' then go (line :: acc) rest
        else if t.[0] = 'p' then (Some (split_on_whitespace t), List.rev_append acc rest)
        else (None, List.rev_append acc (line :: rest))
  in
  (* clause lines before the header would be malformed anyway; [acc] only
     ever holds comments/blanks here *)
  go [] (String.split_on_char '\n' s)

let parse_string s =
  let header, body_lines = split_header s in
  let toks = drop_satlib_footer (tokenize (String.concat "\n" body_lines)) in
  match header with
  | Some ("p" :: "wcnf" :: nv :: nc :: top_field) ->
      let num_vars = int_tok nv and num_clauses = int_tok nc in
      if num_vars < 0 || num_clauses < 0 then fail "negative counts in header";
      let top =
        match top_field with
        | [] -> None
        | [ t ] -> Some (int_tok t)
        | _ -> fail "malformed wcnf header"
      in
      let groups = read_clauses toks in
      if List.length groups <> num_clauses then
        fail "header declares %d clauses, found %d" num_clauses (List.length groups);
      let is_hard w = match top with Some t -> w >= t | None -> false in
      build ~num_vars groups ~is_hard
  | Some ("p" :: fmt :: _) -> fail "unsupported format %S (expected wcnf)" fmt
  | Some _ -> fail "malformed header line"
  | None ->
      (* 2022 headerless dialect: [h]-prefixed hard clauses, weight-prefixed
         soft clauses, variable count recovered from the largest literal *)
      if toks = [] then fail "empty WDIMACS document";
      let groups = read_clauses toks in
      let num_vars = max_var_of_groups groups in
      build ~num_vars groups ~is_hard:(fun _ -> false)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let clause_body buf c =
  List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l)); Buffer.add_char buf ' ') (Clause.lits c);
  Buffer.add_string buf "0\n"

let to_string ?(format = `Classic) ?(comments = []) f =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf ("c " ^ c ^ "\n")) comments;
  (match format with
  | `Classic ->
      let t = top f in
      Buffer.add_string buf
        (Printf.sprintf "p wcnf %d %d %d\n" f.num_vars (num_hard f + num_soft f) t);
      Array.iter
        (fun c ->
          Buffer.add_string buf (string_of_int t);
          Buffer.add_char buf ' ';
          clause_body buf c)
        f.hard;
      Array.iter
        (fun s ->
          Buffer.add_string buf (string_of_int s.weight);
          Buffer.add_char buf ' ';
          clause_body buf s.clause)
        f.soft
  | `Std2022 ->
      Array.iter
        (fun c ->
          Buffer.add_string buf "h ";
          clause_body buf c)
        f.hard;
      Array.iter
        (fun s ->
          Buffer.add_string buf (string_of_int s.weight);
          Buffer.add_char buf ' ';
          clause_body buf s.clause)
        f.soft);
  Buffer.contents buf

let write_file ?format ?comments path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?format ?comments f))

let equal f1 f2 =
  f1.num_vars = f2.num_vars
  && Array.length f1.hard = Array.length f2.hard
  && Array.length f1.soft = Array.length f2.soft
  && Array.for_all2 Clause.equal f1.hard f2.hard
  && Array.for_all2
       (fun s1 s2 -> s1.weight = s2.weight && Clause.equal s1.clause s2.clause)
       f1.soft f2.soft

let pp fmt f =
  Format.fprintf fmt "@[<v>wcnf %d vars, %d hard, %d soft (top %d)@," f.num_vars
    (num_hard f) (num_soft f) (top f);
  Array.iter (fun c -> Format.fprintf fmt "h %a@," Clause.pp c) f.hard;
  Array.iter (fun s -> Format.fprintf fmt "%d %a@," s.weight Clause.pp s.clause) f.soft;
  Format.fprintf fmt "@]"
