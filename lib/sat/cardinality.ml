type t = { clauses : Clause.t list; num_vars : int }

let at_most_k ~num_vars lits ~k =
  if k < 0 then invalid_arg "Cardinality.at_most_k: negative k";
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k >= n then { clauses = []; num_vars }
  else if k = 0 then
    { clauses = Array.to_list (Array.map (fun l -> Clause.make [ Lit.negate l ]) lits); num_vars }
  else begin
    (* registers s i j (0-based): "at least j+1 of lits[0..i] are true" *)
    let s i j = num_vars + (i * k) + j in
    let clauses = ref [] in
    let emit lits = clauses := Clause.make lits :: !clauses in
    (* l0 -> s00 *)
    emit [ Lit.negate lits.(0); Lit.pos (s 0 0) ];
    for j = 1 to k - 1 do
      emit [ Lit.neg_of (s 0 j) ]
    done;
    for i = 1 to n - 1 do
      if i < n - 1 then begin
        (* carry: s_{i-1,j} -> s_{i,j} *)
        for j = 0 to k - 1 do
          emit [ Lit.neg_of (s (i - 1) j); Lit.pos (s i j) ]
        done;
        (* increment: l_i ∧ s_{i-1,j-1} -> s_{i,j};  l_i -> s_{i,0} *)
        emit [ Lit.negate lits.(i); Lit.pos (s i 0) ];
        for j = 1 to k - 1 do
          emit [ Lit.negate lits.(i); Lit.neg_of (s (i - 1) (j - 1)); Lit.pos (s i j) ]
        done
      end;
      (* overflow: l_i ∧ s_{i-1,k-1} is forbidden *)
      emit [ Lit.negate lits.(i); Lit.neg_of (s (i - 1) (k - 1)) ]
    done;
    { clauses = List.rev !clauses; num_vars = num_vars + ((n - 1) * k) }
  end

(* ---- weighted bounds via a binary adder network (Warners 1998) ----

   Each weighted literal [(w, l)] is read as the binary number whose set
   bits of [w] are [l] and whose clear bits are constant zero; the numbers
   are summed pairwise with Tseitin-encoded ripple-carry adders.  The
   encoding is a full equivalence (both implication directions), so the
   output bits *are* the binary value of the weighted true-literal count —
   which lets [bound_clauses] compare them against any constant without
   fresh variables.  Size: O(m · log sum_weights) variables and clauses,
   never the O(sum_weights) of a unary expansion. *)

type adder = {
  sum_bits : Lit.t option array;
  adder_clauses : Clause.t list;
  adder_num_vars : int;
}

let weighted_sum ~num_vars wlits =
  let next = ref num_vars in
  let clauses = ref [] in
  let emit lits = clauses := Clause.make lits :: !clauses in
  let fresh () =
    let v = !next in
    incr next;
    Lit.pos v
  in
  let half_sum a b =
    (* s <-> a xor b *)
    let s = fresh () in
    emit [ Lit.negate a; Lit.negate b; Lit.negate s ];
    emit [ a; b; Lit.negate s ];
    emit [ Lit.negate a; b; s ];
    emit [ a; Lit.negate b; s ];
    s
  in
  let half_carry a b =
    (* t <-> a /\ b *)
    let t = fresh () in
    emit [ Lit.negate a; Lit.negate b; t ];
    emit [ a; Lit.negate t ];
    emit [ b; Lit.negate t ];
    t
  in
  let full_sum a b c =
    (* s <-> a xor b xor c *)
    let s = fresh () in
    emit [ a; b; c; Lit.negate s ];
    emit [ a; Lit.negate b; Lit.negate c; Lit.negate s ];
    emit [ Lit.negate a; b; Lit.negate c; Lit.negate s ];
    emit [ Lit.negate a; Lit.negate b; c; Lit.negate s ];
    emit [ Lit.negate a; Lit.negate b; Lit.negate c; s ];
    emit [ Lit.negate a; b; c; s ];
    emit [ a; Lit.negate b; c; s ];
    emit [ a; b; Lit.negate c; s ];
    s
  in
  let full_carry a b c =
    (* t <-> at least two of a, b, c *)
    let t = fresh () in
    emit [ Lit.negate a; Lit.negate b; t ];
    emit [ Lit.negate a; Lit.negate c; t ];
    emit [ Lit.negate b; Lit.negate c; t ];
    emit [ a; b; Lit.negate t ];
    emit [ a; c; Lit.negate t ];
    emit [ b; c; Lit.negate t ];
    t
  in
  (* one adder cell over constant-zero-aware bit inputs -> (sum, carry) *)
  let add3 a b c =
    match List.filter_map Fun.id [ a; b; c ] with
    | [] -> (None, None)
    | [ x ] -> (Some x, None)
    | [ x; y ] -> (Some (half_sum x y), Some (half_carry x y))
    | [ x; y; z ] -> (Some (full_sum x y z), Some (full_carry x y z))
    | _ -> assert false
  in
  let add_numbers x y =
    let n = max (Array.length x) (Array.length y) in
    let out = Array.make (n + 1) None in
    let carry = ref None in
    for i = 0 to n - 1 do
      let a = if i < Array.length x then x.(i) else None in
      let b = if i < Array.length y then y.(i) else None in
      let s, c = add3 a b !carry in
      out.(i) <- s;
      carry := c
    done;
    out.(n) <- !carry;
    out
  in
  let number_of (w, l) =
    if w < 0 then invalid_arg "Cardinality.weighted_sum: negative weight";
    let bits = ref [] and w' = ref w in
    while !w' > 0 do
      bits := (if !w' land 1 = 1 then Some l else None) :: !bits;
      w' := !w' lsr 1
    done;
    Array.of_list (List.rev !bits)
  in
  let rec reduce = function
    | [] -> [||]
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> add_numbers a b :: pair rest
          | rest -> rest
        in
        reduce (pair xs)
  in
  let bits = reduce (List.map number_of wlits) in
  (* trim constant-zero high bits *)
  let width = ref (Array.length bits) in
  while !width > 0 && bits.(!width - 1) = None do
    decr width
  done;
  {
    sum_bits = Array.sub bits 0 !width;
    adder_clauses = List.rev !clauses;
    adder_num_vars = !next;
  }

let bound_clauses adder ~k =
  if k < 0 then invalid_arg "Cardinality.bound_clauses: negative k";
  let bits = adder.sum_bits in
  let nb = Array.length bits in
  (* the sum cannot exceed 2^nb - 1; a bound at least that wide binds nothing *)
  if k asr nb > 0 then []
  else begin
    let bbit i = (k lsr i) land 1 = 1 in
    let out = ref [] in
    for i = 0 to nb - 1 do
      (* sum <= k  iff  for every clear bound bit i, either some higher set
         bound bit is slack (its sum bit is 0) or sum bit i is 0 *)
      if not (bbit i) then
        match bits.(i) with
        | None -> ()
        | Some o_i ->
            let slack = ref [] and trivially_sat = ref false in
            for j = i + 1 to nb - 1 do
              if bbit j then
                match bits.(j) with
                | None -> trivially_sat := true (* that sum bit is constant 0 *)
                | Some o_j -> slack := Lit.negate o_j :: !slack
            done;
            if not !trivially_sat then
              out := Clause.make (Lit.negate o_i :: !slack) :: !out
    done;
    List.rev !out
  end

let at_most_weight ~num_vars wlits ~k =
  let adder = weighted_sum ~num_vars wlits in
  {
    clauses = adder.adder_clauses @ bound_clauses adder ~k;
    num_vars = adder.adder_num_vars;
  }

let at_least_k ~num_vars lits ~k =
  let n = List.length lits in
  if k <= 0 then { clauses = []; num_vars }
  else if k > n then { clauses = [ Clause.make [] ]; num_vars }
  else at_most_k ~num_vars (List.map Lit.negate lits) ~k:(n - k)

let exactly_k ~num_vars lits ~k =
  let upper = at_most_k ~num_vars lits ~k in
  let lower = at_least_k ~num_vars:upper.num_vars lits ~k in
  { clauses = upper.clauses @ lower.clauses; num_vars = lower.num_vars }
