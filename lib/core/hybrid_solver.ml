type config = {
  cdcl : Cdcl.Config.t;
  graph : Chimera.Graph.t;
  noise : Anneal.Noise.t;
  timing : Anneal.Timing.t;
  calibration : Calibration.t;
  queue_mode : Frontend.queue_mode;
  adjust_coefficients : bool;
  strategies : Backend.enabled;
  qa_period : int;
  warmup_fraction : float;
  qa_reads : int;
  qa_domains : int;
  qa_pool : Parallel.Tasks.t option;
  backend : Anneal.Backend.t;
  supervision : Anneal.Supervisor.policy;
  seed : int;
}

let default_config =
  {
    cdcl = Cdcl.Config.minisat_like;
    graph = Chimera.Graph.standard_2000q ();
    noise = Anneal.Noise.noise_free;
    timing = Anneal.Timing.d_wave_2000q;
    calibration = Calibration.simulator_default;
    queue_mode = Frontend.Activity_bfs;
    adjust_coefficients = true;
    strategies = Backend.all_enabled;
    qa_period = 1;
    warmup_fraction = 1.0;
    qa_reads = 1;
    qa_domains = 1;
    qa_pool = None;
    backend = Anneal.Backend.best_of;
    supervision = Anneal.Supervisor.default_policy;
    seed = 20230225;
  }

let make_config ?(base = default_config) ?cdcl ?graph ?noise ?timing ?calibration
    ?queue_mode ?adjust_coefficients ?strategies ?qa_period ?warmup_fraction
    ?qa_reads ?qa_domains ?qa_pool ?backend ?supervisor ?seed () =
  let v d o = Option.value ~default:d o in
  {
    cdcl = v base.cdcl cdcl;
    graph = v base.graph graph;
    noise = v base.noise noise;
    timing = v base.timing timing;
    calibration = v base.calibration calibration;
    queue_mode = v base.queue_mode queue_mode;
    adjust_coefficients = v base.adjust_coefficients adjust_coefficients;
    strategies = v base.strategies strategies;
    qa_period = v base.qa_period qa_period;
    warmup_fraction = v base.warmup_fraction warmup_fraction;
    qa_reads = v base.qa_reads qa_reads;
    qa_domains = v base.qa_domains qa_domains;
    qa_pool = (match qa_pool with None -> base.qa_pool | some -> some);
    backend = v base.backend backend;
    supervision = v base.supervision supervisor;
    seed = v base.seed seed;
  }

let noisy_config = make_config ~noise:Anneal.Noise.default_2000q ()

type mode = Hybrid of config | Classic of Cdcl.Config.t

let mode_label = function Hybrid _ -> "hybrid" | Classic _ -> "classic"

type report = {
  result : Cdcl.Solver.result;
  assumption_core : Sat.Lit.t list option;
  iterations : int;
  warmup_iterations : int;
  qa_calls : int;
  qa_failures : int;
  qa_degraded : int;
  qa_time_us : float;
  frontend_time_s : float;
  backend_time_s : float;
  cdcl_time_s : float;
  strategy_uses : int array;
  solver_stats : Cdcl.Solver.stats;
  reused_clauses : int;
  learnts : Sat.Lit.t array list;
  proof : Sat.Drat.t option;
}

let assumptions_satisfied assumptions m =
  List.for_all
    (fun l ->
      let v = Sat.Lit.var l in
      v < Array.length m && (if Sat.Lit.is_pos l then m.(v) else not m.(v)))
    assumptions

let end_to_end_time_s r =
  r.frontend_time_s +. (r.qa_time_us *. 1e-6) +. r.backend_time_s +. r.cdcl_time_s

let end_to_end_pipelined_s r =
  Float.max r.frontend_time_s (r.qa_time_us *. 1e-6) +. r.backend_time_s +. r.cdcl_time_s

(* the paper estimates K from the numbers of variables and clauses; random
   3-SAT hardness grows with the clause/variable ratio, so we use
   K ≈ m · r with a floor — accurate to the order of magnitude on the
   Table I suite, which is all √K needs *)
let estimate_iterations f =
  let m = float_of_int (Sat.Cnf.num_clauses f) in
  let n = float_of_int (max 1 (Sat.Cnf.num_vars f)) in
  let ratio = m /. n in
  int_of_float (Float.max 16. (m *. ratio))

let strategy_index = function
  | Backend.S1_solved -> 0
  | Backend.S2_keep_assignment -> 1
  | Backend.S3_none -> 2
  | Backend.S4_reach_conflict -> 3

let strategy_name = function
  | Backend.S1_solved -> "s1"
  | Backend.S2_keep_assignment -> "s2"
  | Backend.S3_none -> "s3"
  | Backend.S4_reach_conflict -> "s4"

let solve_hybrid ~config ?supervisor ~max_iterations ~should_stop ~obs ~parent
    ~solver:solver0 ~embed_cache:cache0 ~assumptions ~import f =
  let traced = not (Obs.Ctx.is_null obs) in
  let root =
    if traced then
      Obs.Span.start obs ~parent
        ~attrs:
          [
            ("vars", string_of_int (Sat.Cnf.num_vars f));
            ("clauses", string_of_int (Sat.Cnf.num_clauses f));
          ]
        "hybrid_solve"
    else Obs.Span.none
  in
  let rng = Stats.Rng.create ~seed:config.seed in
  (* default: one supervisor per solve — breaker state is an instance
     property and the jitter seed derives from the solve seed, so runs
     replay exactly.  A caller-supplied supervisor is shared across solves
     (the server's per-pool device): breaker state then carries over and
     [qa_failures] is reported as this solve's delta. *)
  let supervisor =
    match supervisor with
    | Some s -> s
    | None ->
        Anneal.Supervisor.create ~obs ~policy:config.supervision ~seed:(config.seed + 77)
          config.backend
  in
  let failures_at_start = (Anneal.Supervisor.stats supervisor).Anneal.Supervisor.failures in
  (* pre-register so the export shows an explicit 0 when nothing degrades *)
  Obs.Metrics.incr ~by:0.0 obs "qa_degraded_total";
  let embed_cache =
    match cache0 with Some c -> c | None -> Frontend.create_cache config.graph
  in
  let owns_solver = Option.is_none solver0 in
  let solver =
    match solver0 with
    | Some s -> s
    | None ->
        (* the frontend ranks clauses by the paper activity/visit counters,
           so hybrid-owned solvers must keep them *)
        Cdcl.Solver.create ~config:(Cdcl.Config.with_paper_stats config.cdcl) f
  in
  Cdcl.Solver.set_obs solver obs;
  let reused_clauses =
    if import = [] then 0 else Cdcl.Solver.import_clauses solver import
  in
  Cdcl.Solver.set_assumptions solver assumptions;
  let warmup =
    (* nothing to warm up when a reused solver already holds the answer *)
    if Cdcl.Solver.is_decided solver then 0
    else
      int_of_float
        (config.warmup_fraction *. sqrt (float_of_int (estimate_iterations f)))
  in
  let qa_calls = ref 0 in
  let qa_degraded = ref 0 in
  let qa_time_us = ref 0. in
  let frontend_time = ref 0. in
  let backend_time = ref 0. in
  let cdcl_time = ref 0. in
  let strategy_uses = Array.make 4 0 in
  let solved_by_qa = ref None in
  (* per-variable vote tally over every annealer sample: hints only flow for
     variables with a stable majority, turning many weak subset samples into
     a backbone-like signal *)
  let votes : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let iter = ref 0 in
  let result = ref (Cdcl.Solver.Unknown Sat.Answer.Budget) in
  let core = ref None in
  let running = ref true in
  while !running && !iter < max_iterations && not (!iter land 127 = 0 && should_stop ()) do
    (* warm-up: consult the annealer before stepping *)
    if !iter < warmup && !iter mod config.qa_period = 0 && !solved_by_qa = None then begin
      let span_iter =
        if traced then
          Obs.Span.start obs ~parent:root
            ~attrs:[ ("iter", string_of_int !iter) ]
            "warmup_iter"
        else Obs.Span.none
      in
      let span_frontend = Obs.Span.start obs ~parent:span_iter "frontend" in
      (match
         Frontend.prepare ~obs ~cache:embed_cache ~queue_mode:config.queue_mode
           ~adjust:config.adjust_coefficients rng config.graph f
           ~activity:(Cdcl.Solver.clause_activity solver)
       with
      | None -> Obs.Span.stop span_frontend
      | Some prepared ->
          frontend_time := !frontend_time +. prepared.Frontend.cpu_time_s;
          (* stage spans carry the report's own (CPU / modelled) times, so
             summing frontend+anneal+backend+cdcl spans in a trace equals
             end_to_end_time_s exactly *)
          Obs.Span.record obs ~parent:span_frontend
            ~dur_s:prepared.Frontend.embed_time_s "embed";
          Obs.Span.stop ~dur_s:prepared.Frontend.cpu_time_s span_frontend;
          let qa_result =
            Anneal.Machine.run_via ~obs ~noise:config.noise ~timing:config.timing
              ~reads:config.qa_reads ~domains:config.qa_domains
              ?pool:config.qa_pool
              ~sample:(Anneal.Supervisor.sample supervisor)
              rng prepared.Frontend.job
          in
          (match qa_result with
          | Error failure ->
              (* graceful degradation: the offload is skipped for this
                 warm-up iteration and the search falls through to the
                 pure-CDCL step below — answers are never lost, only the
                 quantum guidance for this round *)
              incr qa_degraded;
              Obs.Metrics.incr obs "qa_degraded_total";
              if traced then
                Obs.Span.record obs ~parent:span_iter
                  ~attrs:
                    [
                      ("backend", Anneal.Backend.name config.backend);
                      ("status", Anneal.Backend.failure_label failure);
                    ]
                  ~dur_s:0. "qa_call"
          | Ok outcome ->
              incr qa_calls;
              qa_time_us := !qa_time_us +. outcome.Anneal.Machine.time_us;
              Obs.Span.record obs ~parent:span_iter
                ~dur_s:(outcome.Anneal.Machine.time_us *. 1e-6)
                "anneal";
              if traced then
                Obs.Span.record obs ~parent:span_iter
                  ~attrs:
                    [
                      ("backend", Anneal.Backend.name config.backend);
                      ("status", "ok");
                    ]
                  ~dur_s:(outcome.Anneal.Machine.time_us *. 1e-6)
                  "qa_call";
              Obs.Metrics.incr obs "qa_calls_total";
              (* rate-limit phase hints: consecutive samples solve different
                 random subsets, and re-phasing every iteration oscillates *)
              List.iter
                (fun (v, b) ->
                  let cur = Option.value ~default:0 (Hashtbl.find_opt votes v) in
                  Hashtbl.replace votes v (cur + if b then 1 else -1))
                outcome.Anneal.Machine.assignment;
              let hint_filter v b =
                match Hashtbl.find_opt votes v with
                | Some margin -> if b then margin >= 4 else margin <= -4
                | None -> false
              in
              let applied =
                Backend.apply ~enabled:config.strategies ~hint_filter config.calibration
                  solver f prepared outcome
              in
              backend_time := !backend_time +. applied.Backend.cpu_time_s;
              strategy_uses.(strategy_index applied.Backend.strategy) <-
                strategy_uses.(strategy_index applied.Backend.strategy) + 1;
              Obs.Span.record obs ~parent:span_iter ~dur_s:applied.Backend.cpu_time_s
                "backend";
              if traced then
                Obs.Metrics.incr obs
                  (Obs.Metrics.labelled "strategy_uses_total"
                     [ ("strategy", strategy_name applied.Backend.strategy) ]);
              (match applied.Backend.solved with
              | Some model
                when assumptions = [] || assumptions_satisfied assumptions model
                ->
                  solved_by_qa := Some model
              | _ -> ())));
      Obs.Span.stop span_iter
    end;
    (match !solved_by_qa with
    | Some model ->
        result := Cdcl.Solver.Sat model;
        running := false
    | None -> (
        let t0 = Sys.time () in
        let step = Cdcl.Solver.step solver in
        cdcl_time := !cdcl_time +. (Sys.time () -. t0);
        incr iter;
        match step with
        | `Continue -> ()
        | `Sat m ->
            result := Cdcl.Solver.Sat m;
            running := false
        | `Unsat ->
            result := Cdcl.Solver.Unsat;
            running := false
        | `Unsat_assumptions ->
            (* satisfiable as far as known, but not under these assumptions;
               [Unsat] + [assumption_core] carries the distinction *)
            core := Some (Cdcl.Solver.unsat_core solver);
            result := Cdcl.Solver.Unsat;
            running := false))
  done;
  let result =
    (* the loop leaves [running] true only when it stopped undecided — a
       budget ran out or the cancellation callback fired *)
    if !running then
      Cdcl.Solver.Unknown
        (if should_stop () then Sat.Answer.Cancelled else Sat.Answer.Budget)
    else !result
  in
  if traced then begin
    Obs.Span.record obs ~parent:root ~dur_s:!cdcl_time "cdcl";
    (* a caller-owned (session) solver outlives this solve; its lifetime
       counters are flushed by whoever retires it *)
    if owns_solver then Cdcl.Solver.flush_obs solver;
    Obs.Span.add_attr root "result" (Sat.Answer.label result);
    Obs.Span.stop root
  end;
  {
    result;
    assumption_core = !core;
    iterations = !iter;
    warmup_iterations = min warmup !iter;
    qa_calls = !qa_calls;
    qa_failures =
      (Anneal.Supervisor.stats supervisor).Anneal.Supervisor.failures - failures_at_start;
    qa_degraded = !qa_degraded;
    qa_time_us = !qa_time_us;
    frontend_time_s = !frontend_time;
    backend_time_s = !backend_time;
    cdcl_time_s = !cdcl_time;
    strategy_uses;
    solver_stats = Cdcl.Solver.stats solver;
    reused_clauses;
    learnts = Cdcl.Solver.export_learnts solver;
    proof = Cdcl.Solver.proof solver;
  }

let solve_classic_on ~config ~max_iterations ~should_stop ~obs ~parent
    ~solver:solver0 ~assumptions ~import f =
  let traced = not (Obs.Ctx.is_null obs) in
  let root =
    if traced then Obs.Span.start obs ~parent "classic_solve" else Obs.Span.none
  in
  let owns_solver = Option.is_none solver0 in
  let solver =
    match solver0 with Some s -> s | None -> Cdcl.Solver.create ~config f
  in
  Cdcl.Solver.set_terminate solver should_stop;
  Cdcl.Solver.set_obs solver obs;
  let reused_clauses =
    if import = [] then 0 else Cdcl.Solver.import_clauses solver import
  in
  let iterations0 = (Cdcl.Solver.stats solver).Cdcl.Solver.iterations in
  let core = ref None in
  let t0 = Sys.time () in
  let result =
    match assumptions with
    | [] -> Cdcl.Solver.solve ~max_iterations solver
    | lits -> (
        match Cdcl.Solver.solve_with_assumptions ~max_iterations solver lits with
        | `Sat m -> Cdcl.Solver.Sat m
        | `Unsat -> Cdcl.Solver.Unsat
        | `Unsat_assumptions ->
            core := Some (Cdcl.Solver.unsat_core solver);
            Cdcl.Solver.Unsat
        | `Unknown ->
            Cdcl.Solver.Unknown
              (if should_stop () then Sat.Answer.Cancelled else Sat.Answer.Budget))
  in
  let elapsed = Sys.time () -. t0 in
  if traced then begin
    Obs.Span.record obs ~parent:root ~dur_s:elapsed "cdcl";
    if owns_solver then Cdcl.Solver.flush_obs solver;
    Obs.Span.add_attr root "result" (Sat.Answer.label result);
    Obs.Span.stop root
  end;
  let stats = Cdcl.Solver.stats solver in
  {
    result;
    assumption_core = !core;
    iterations = stats.Cdcl.Solver.iterations - iterations0;
    warmup_iterations = 0;
    qa_calls = 0;
    qa_failures = 0;
    qa_degraded = 0;
    qa_time_us = 0.;
    frontend_time_s = 0.;
    backend_time_s = 0.;
    cdcl_time_s = elapsed;
    strategy_uses = Array.make 4 0;
    solver_stats = stats;
    reused_clauses;
    learnts = Cdcl.Solver.export_learnts solver;
    proof = Cdcl.Solver.proof solver;
  }

let run ?supervisor ?(max_iterations = max_int) ?(should_stop = fun () -> false)
    ?(obs = Obs.Ctx.null) ?(parent = Obs.Span.none) ?solver ?embed_cache
    ?(assumptions = []) ?(import = []) mode f =
  match mode with
  | Hybrid config ->
      solve_hybrid ~config ?supervisor ~max_iterations ~should_stop ~obs ~parent
        ~solver ~embed_cache ~assumptions ~import f
  | Classic config ->
      (* no annealer in the loop: the embed cache has nothing to key *)
      ignore (embed_cache : Frontend.cache option);
      solve_classic_on ~config ~max_iterations ~should_stop ~obs ~parent ~solver
        ~assumptions ~import f
