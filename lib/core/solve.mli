(** The single solving entry point, and incremental sessions.

    Everything above lib/core (service portfolio, certification, CLI) goes
    through {!run} with a {!mode} value, so adding a solving mode is a new
    variant, not a new function to thread through every layer.  For
    correlated-instance traffic — iterated encodings, cores under
    assumptions — {!Session} keeps one solver and one embedding cache
    alive across solves so learnt clauses, activities, saved phases and
    cached embeddings accumulate instead of being rebuilt per call. *)

type mode = Hybrid_solver.mode =
  | Hybrid of Hybrid_solver.config
      (** CDCL with annealer-guided warm-up; QA calls go through the
          config's supervised {!Anneal.Backend} and degrade to pure CDCL
          on failure *)
  | Classic of Cdcl.Config.t  (** the pure-CDCL baseline *)

val hybrid : ?config:Hybrid_solver.config -> unit -> mode
(** [Hybrid] with {!Hybrid_solver.default_config} by default. *)

val classic : ?config:Cdcl.Config.t -> unit -> mode
(** [Classic] with [Cdcl.Config.minisat_like] by default. *)

val mode_label : mode -> string
(** ["hybrid"] or ["classic"] — stable, used in member names and specs. *)

val run :
  ?supervisor:Anneal.Supervisor.t ->
  ?max_iterations:int ->
  ?should_stop:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?parent:Obs.Span.t ->
  ?solver:Cdcl.Solver.t ->
  ?embed_cache:Frontend.cache ->
  ?assumptions:Sat.Lit.t list ->
  ?import:Sat.Lit.t array list ->
  mode ->
  Sat.Cnf.t ->
  Hybrid_solver.report
(** Solve [f] in the given mode.  All arguments behave exactly as
    documented on {!Hybrid_solver.run} (this is a thin alias); classic
    solves report zero QA activity.  Both modes produce the one
    {!Hybrid_solver.report} type, so callers never branch on the mode to
    read results. *)

(** {2 Optimisation objective}

    The decision pipeline above answers "is there a model"; the paired
    {!optimize} entry point answers "what is the cheapest model" over a
    weighted {!Sat.Wcnf.t}.  Service jobs, the daemon and the CLI select
    between the two with an {!objective} value. *)

type objective =
  | Decision  (** plain SAT/UNSAT through {!run} *)
  | Maximize  (** weighted MaxSAT through {!optimize} *)

val objective_label : objective -> string
(** ["decision"] or ["maxsat"] — stable, used in telemetry and specs. *)

val optimize :
  ?mode:mode ->
  ?algorithm:Optimize.algorithm ->
  ?max_conflicts:int ->
  ?timeout_s:float ->
  ?should_stop:(unit -> bool) ->
  ?gap_limit:int ->
  ?seed:int ->
  Sat.Wcnf.t ->
  Optimize.result
(** Exact weighted MaxSAT (see {!Optimize.solve}).  [mode] (default hybrid)
    only shapes the heuristic incumbents: hybrid contributes its hardware
    graph so annealer samples seed the search, classic uses WalkSAT alone.
    Either way the exact phase is the same CDCL-based search, and the
    result always carries [(best_cost, lower_bound)]. *)

(** Incremental solving session: a long-lived solver plus (in hybrid mode)
    a shared supervisor and embedding cache.  Variables and clauses are
    added between solves; learnt clauses, VSIDS/CHB activities, saved
    phases and cached embeddings persist across calls.  Not domain-safe —
    confine a session to one domain. *)
module Session : sig
  type t

  type answer =
    [ `Sat of bool array
    | `Unsat  (** the accumulated formula itself is unsatisfiable *)
    | `Unsat_assumptions of Sat.Lit.t list
      (** unsatisfiable {e under the call's assumptions} only; the payload
          is the conflicting assumption subset ({!Cdcl.Solver.unsat_core},
          not guaranteed minimal) *)
    | `Unknown of Sat.Answer.reason ]

  val create : ?mode:mode -> ?obs:Obs.Ctx.t -> unit -> t
  (** An empty session ([Classic] with [Cdcl.Config.minisat_like] by
      default).  A [Hybrid] session builds its supervisor and embedding
      cache once; every {!solve} reuses them. *)

  val new_var : t -> Sat.Lit.var
  (** Admit a fresh variable (its index = previous {!num_vars}). *)

  val add_clause : t -> Sat.Lit.t list -> unit
  (** Add a clause; unseen variables are admitted automatically.  Each call
      consumes one original-clause index (paper instrumentation), so the
      session's clause numbering is the order of [add_clause] calls. *)

  val add_formula : t -> Sat.Cnf.t -> unit
  (** Bulk [add_clause] of every clause of [f] (in index order), admitting
      [f]'s variable count first. *)

  val solve :
    ?assumptions:Sat.Lit.t list ->
    ?max_iterations:int ->
    ?should_stop:(unit -> bool) ->
    t ->
    answer
  (** Solve the accumulated formula under the given assumptions, warm:
      everything learnt by previous calls is still in place.  After
      [`Unknown], calling again with the same assumptions resumes the
      search with a fresh budget. *)

  val model_value : t -> Sat.Lit.var -> bool option
  (** The variable's value in the last [`Sat] model. *)

  val unsat_core : t -> Sat.Lit.t list
  (** The last [`Unsat_assumptions] core ([[]] before any). *)

  val num_vars : t -> int

  val formula : t -> Sat.Cnf.t
  (** The accumulated formula (clause [i] = [i]-th {!add_clause}). *)

  val solver : t -> Cdcl.Solver.t
  (** The underlying solver, for instrumentation reads. *)

  val solve_count : t -> int
  val last_report : t -> Hybrid_solver.report option

  val export_learnts :
    ?max_len:int -> ?max_clauses:int -> t -> Sat.Lit.t array list
  (** {!Cdcl.Solver.export_learnts} of the session solver. *)

  val import_clauses : t -> Sat.Lit.t array list -> int
  (** {!Cdcl.Solver.import_clauses} into the session solver. *)

  val retire : t -> unit
  (** Flush the solver's lifetime obs counters.  Call at most once, when
      the session is dropped (sessions skip the per-solve flush). *)
end
