(** The single solving entry point.

    [Hybrid_solver.solve] and [Hybrid_solver.solve_classic] grew as two
    parallel entries with two config types; everything above lib/core
    (service portfolio, certification, CLI) now goes through [run] with a
    {!mode} value instead, so adding a solving mode is a new variant, not
    a new function to thread through every layer.  The old entries remain
    as thin wrappers for existing callers but are deprecated — new code
    should not call them directly. *)

type mode =
  | Hybrid of Hybrid_solver.config
      (** CDCL with annealer-guided warm-up; QA calls go through the
          config's supervised {!Anneal.Backend} and degrade to pure CDCL
          on failure *)
  | Classic of Cdcl.Config.t  (** the pure-CDCL baseline *)

val hybrid : ?config:Hybrid_solver.config -> unit -> mode
(** [Hybrid] with {!Hybrid_solver.default_config} by default. *)

val classic : ?config:Cdcl.Config.t -> unit -> mode
(** [Classic] with [Cdcl.Config.minisat_like] by default. *)

val mode_label : mode -> string
(** ["hybrid"] or ["classic"] — stable, used in member names and specs. *)

val run :
  ?supervisor:Anneal.Supervisor.t ->
  ?max_iterations:int ->
  ?should_stop:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?parent:Obs.Span.t ->
  mode ->
  Sat.Cnf.t ->
  Hybrid_solver.report
(** Solve [f] in the given mode.  All optional arguments behave exactly as
    documented on {!Hybrid_solver.solve} ([supervisor] shares one
    circuit-broken device across solves; classic solves ignore it); classic
    solves report zero QA activity.  Both modes produce the one
    {!Hybrid_solver.report} type, so callers never branch on the mode to
    read results. *)
