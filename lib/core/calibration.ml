type t = {
  model : Stats.Naive_bayes.t;
  partition : Stats.Naive_bayes.partition;
  sat_energies : float array;
  unsat_energies : float array;
}

let paper_default =
  let model =
    {
      Stats.Naive_bayes.sat = { Stats.Gaussian.mu = 1.8; sigma = 1.9 };
      unsat = { Stats.Gaussian.mu = 9.5; sigma = 2.6 };
      prior_sat = 0.5;
    }
  in
  {
    model;
    partition = { Stats.Naive_bayes.sat_cut = 4.5; unsat_cut = 8.0 };
    sat_energies = [||];
    unsat_energies = [||];
  }

let simulator_default =
  let model =
    {
      Stats.Naive_bayes.sat = { Stats.Gaussian.mu = 1.13; sigma = 1.13 };
      unsat = { Stats.Gaussian.mu = 4.02; sigma = 2.26 };
      prior_sat = 0.5;
    }
  in
  {
    model;
    (* asymmetric cuts: strategy 2 hints are already energy-gated, while a
       false strategy-4 steer on a satisfiable instance actively hurts — so
       the unsatisfiable cut is taken at very high confidence (an SA sample
       of a satisfiable queue rarely exceeds 6.5 even under noise) *)
    partition = { Stats.Naive_bayes.sat_cut = 1.2; unsat_cut = 6.5 };
    sat_energies = [||];
    unsat_energies = [||];
  }

(* a random 3-SAT problem; [dense] raises the clause/variable ratio far past
   the phase transition so the embedded subset is unsatisfiable with several
   violated clauses at its optimum (the paper's unsatisfiable class) *)
let random_problem rng ~dense =
  let n = if dense then 8 + Stats.Rng.int rng 6 else 15 + Stats.Rng.int rng 26 in
  let ratio = if dense then 7.0 +. Stats.Rng.float rng 3.0 else 3. +. Stats.Rng.float rng 1.2 in
  let m = int_of_float (ratio *. float_of_int n) in
  let clause () =
    let vars = Stats.Rng.sample_without_replacement rng 3 n in
    Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool rng)) vars)
  in
  Sat.Cnf.make ~num_vars:n (List.init m (fun _ -> clause ()))

(* anneal the embedded prefix of a problem once; the label is the prefix
   subformula's true satisfiability — exactly the population the backend
   classifies at run time *)
let labeled_energy ?(adjust = true) rng graph noise f =
  let queue = Clause_queue.generate rng f ~activity:(fun _ -> 1.0) ~limit:250 in
  let clauses = List.map (Sat.Cnf.clause f) queue in
  let enc = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) clauses in
  let res = Embed.Hyqsat_scheme.embed graph enc in
  let embedded = res.Embed.Hyqsat_scheme.embedded_clauses in
  if embedded = 0 then None
  else begin
    let prefix = List.filteri (fun i _ -> i < embedded) clauses in
    let enc' = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) prefix in
    if adjust then Qubo.Adjust.adjust enc';
    let job =
      {
        Anneal.Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
        objective = Qubo.Encode.objective enc';
        edges = res.Embed.Hyqsat_scheme.edges;
      }
    in
    let energy = (Anneal.Machine.run ~noise rng job).Anneal.Machine.energy in
    let sub = Sat.Cnf.make ~num_vars:(Sat.Cnf.num_vars f) prefix in
    match Cdcl.Solver.solve (Cdcl.Solver.create sub) with
    | Cdcl.Solver.Sat _ -> Some (energy, true)
    | Cdcl.Solver.Unsat -> Some (energy, false)
    | Cdcl.Solver.Unknown _ -> None
  end

let calibrate ?(problems = 60) ?(noise = Anneal.Noise.default_2000q) ?(confidence = 0.9)
    ?(adjust = true) rng graph =
  let sat = ref [] and unsat = ref [] in
  let guard = ref 0 in
  (* each class is drawn from its own population (the paper tests 1000
     satisfiable and 1000 unsatisfiable problems separately); samples whose
     prefix label does not match the intended class are discarded so a
     barely-satisfiable dense instance cannot pollute the satisfiable class *)
  while (List.length !sat < problems || List.length !unsat < problems)
        && !guard < problems * 40 do
    incr guard;
    let want_unsat = List.length !unsat < problems in
    let f = random_problem rng ~dense:want_unsat in
    match (labeled_energy ~adjust rng graph noise f, want_unsat) with
    | Some (e, false), true -> unsat := e :: !unsat
    | Some (e, true), false -> if List.length !sat < problems then sat := e :: !sat
    | _ -> ()
  done;
  let sat_energies = Array.of_list !sat in
  let unsat_energies = Array.of_list !unsat in
  let model = Stats.Naive_bayes.fit ~sat:sat_energies ~unsat:unsat_energies in
  {
    model;
    partition = Stats.Naive_bayes.partition ~confidence model;
    sat_energies;
    unsat_energies;
  }
