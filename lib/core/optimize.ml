type algorithm = Linear | Core_guided | Auto

let algorithm_label = function
  | Linear -> "linear"
  | Core_guided -> "core-guided"
  | Auto -> "auto"

let algorithm_of_label = function
  | "linear" -> Some Linear
  | "core-guided" | "core_guided" | "fu-malik" -> Some Core_guided
  | "auto" -> Some Auto
  | _ -> None
type status = Optimal | Feasible | Infeasible | Unknown

type result = {
  best : bool array option;
  best_cost : int;
  lower_bound : int;
  status : status;
  algorithm_used : algorithm;
  cdcl_calls : int;
  cores : int;
  cpu_time_s : float;
}

(* hard clauses participate at weight [top], so any cost below [top] is a
   hard-feasible one and the ordering agrees with (hard violations, cost) *)
let weighted_clauses w =
  let top = Sat.Wcnf.top w in
  Array.append
    (Array.map (fun c -> (top, c)) w.Sat.Wcnf.hard)
    (Array.map (fun s -> (s.Sat.Wcnf.weight, s.Sat.Wcnf.clause)) w.Sat.Wcnf.soft)

let penalised_cost all x =
  let a = Sat.Assignment.of_bools x in
  Array.fold_left
    (fun acc (wt, c) -> if Sat.Assignment.satisfies_clause a c then acc else acc + wt)
    0 all

let incumbent ?(max_flips = 20_000) ?(should_stop = fun () -> false) rng w =
  let n = max (Sat.Wcnf.num_vars w) 1 in
  let all = weighted_clauses w in
  let x = Array.init n (fun _ -> Stats.Rng.bool rng) in
  let best = ref (Array.copy x) in
  let best_cost = ref (penalised_cost all x) in
  let flips = ref 0 in
  (* each flip already scans every clause, so a stop check per flip is
     noise — and it keeps a cancelled/timed-out job from burning the whole
     flip budget before the exact search even gets to refuse to start *)
  while !flips < max_flips && !best_cost > 0 && not (should_stop ()) do
    let a = Sat.Assignment.of_bools x in
    let falsified =
      Array.fold_left
        (fun acc (_, c) -> if Sat.Assignment.satisfies_clause a c then acc else c :: acc)
        [] all
    in
    (match falsified with
    | [] -> flips := max_flips
    | cs -> (
        let c = List.nth cs (Stats.Rng.int rng (List.length cs)) in
        match Sat.Clause.vars c with
        | [] -> () (* an empty clause can never be repaired *)
        | vars ->
            let v = List.nth vars (Stats.Rng.int rng (List.length vars)) in
            x.(v) <- not x.(v);
            let cost = penalised_cost all x in
            if cost < !best_cost then begin
              best_cost := cost;
              best := Array.copy x
            end));
    incr flips
  done;
  (!best_cost, !best)

let anneal_incumbent ?(samples = 8) ?(noise = Anneal.Noise.noise_free)
    ?(should_stop = fun () -> false) rng graph w =
  let n = Sat.Wcnf.num_vars w in
  let all = weighted_clauses w in
  let f = Sat.Cnf.make ~num_vars:n (Array.to_list (Array.map snd all)) in
  let weights = Array.map fst all in
  match
    Frontend.prepare ~adjust:false ~weights rng graph f
      ~activity:(fun k -> float_of_int weights.(k))
  with
  | None -> None
  | Some prepared ->
      let best = ref None in
      let k = ref 0 in
      while !k < samples && not (should_stop ()) do
        let outcome = Anneal.Machine.run ~noise rng prepared.Frontend.job in
        let x = Array.make (max n 1) false in
        List.iter
          (fun (node, v) -> if node < n then x.(node) <- v)
          outcome.Anneal.Machine.assignment;
        let cost = penalised_cost all x in
        (match !best with
        | Some (c0, _) when c0 <= cost -> ()
        | _ -> best := Some (cost, x));
        incr k
      done;
      !best

(* ---- exact search ------------------------------------------------------ *)

let model_prefix n model = Array.sub model 0 (min n (Array.length model))

(* the deadline is wall-clock ([Unix.gettimeofday], matching what the
   CLI/daemon document and what [Service.Deadline] classifies against) even
   though the reported [cpu_time_s] stat stays CPU time *)
let stop_signal ~deadline ~should_stop =
  match (deadline, should_stop) with
  | None, None -> None
  | _ ->
      Some
        (fun () ->
          (match deadline with Some d -> Unix.gettimeofday () > d | None -> false)
          || match should_stop with Some f -> f () | None -> false)

let install_stop solver ~stop = Option.iter (Cdcl.Solver.set_terminate solver) stop

let add_cardinality solver (card : Sat.Cardinality.t) =
  List.iter (fun c -> Cdcl.Solver.add_clause solver (Sat.Clause.lits c)) card.clauses

(* Descending linear search.  The bound strictly tightens, so each round's
   comparator clauses remain sound for every later round and are added
   permanently — and the one solver session keeps its learnt clauses.  The
   weighted count itself is a binary adder built once up front
   ({!Sat.Cardinality.weighted_sum}, O(softs · log sum_weights)); only the
   variable-free bound comparison is re-emitted per round, so arbitrary
   WDIMACS weight magnitudes cost log, not unary, space. *)
let linear ~stop ~max_conflicts ~gap_limit ~seed_best ~t0 w =
  let n = Sat.Wcnf.num_vars w in
  let m = Sat.Wcnf.num_soft w in
  let softs = Sat.Wcnf.soft_clauses w in
  let relaxed =
    List.mapi
      (fun k (_, c) -> Sat.Clause.make (Sat.Lit.pos (n + k) :: Sat.Clause.lits c))
      softs
  in
  let counter =
    Sat.Cardinality.weighted_sum ~num_vars:(n + m)
      (List.mapi (fun k (wt, _) -> (wt, Sat.Lit.pos (n + k))) softs)
  in
  let base =
    Sat.Cnf.make ~num_vars:counter.Sat.Cardinality.adder_num_vars
      (Array.to_list w.Sat.Wcnf.hard @ relaxed @ counter.Sat.Cardinality.adder_clauses)
  in
  let solver = Cdcl.Solver.create base in
  install_stop solver ~stop;
  let calls = ref 0 in
  let finish ?best ~best_cost ~lower_bound status =
    {
      best;
      best_cost;
      lower_bound;
      status;
      algorithm_used = Linear;
      cdcl_calls = !calls;
      cores = 0;
      cpu_time_s = Sys.time () -. t0;
    }
  in
  let solve_once () =
    incr calls;
    Cdcl.Solver.solve ?max_conflicts solver
  in
  let rec descend best ub =
    if ub <= gap_limit then
      finish ~best ~best_cost:ub ~lower_bound:0
        (if ub = 0 then Optimal else Feasible)
    else begin
      List.iter
        (fun c -> Cdcl.Solver.add_clause solver (Sat.Clause.lits c))
        (Sat.Cardinality.bound_clauses counter ~k:(ub - 1));
      match solve_once () with
      | Cdcl.Solver.Sat model ->
          let x = model_prefix n model in
          let cost = Sat.Wcnf.cost w x in
          descend x (min cost (ub - 1))
      | Cdcl.Solver.Unsat -> finish ~best ~best_cost:ub ~lower_bound:ub Optimal
      | Cdcl.Solver.Unknown _ -> finish ~best ~best_cost:ub ~lower_bound:0 Feasible
    end
  in
  match seed_best with
  | Some (cost, x) -> descend x cost
  | None -> (
      match solve_once () with
      | Cdcl.Solver.Sat model ->
          let x = model_prefix n model in
          descend x (Sat.Wcnf.cost w x)
      | Cdcl.Solver.Unsat ->
          let top = Sat.Wcnf.top w in
          finish ~best_cost:top ~lower_bound:top Infeasible
      | Cdcl.Solver.Unknown _ ->
          finish ~best_cost:(Sat.Wcnf.top w) ~lower_bound:0 Unknown)

(* Fu–Malik / WPM1: each UNSAT core pays its minimum weight into the lower
   bound; the core's soft clauses are split (remainder weight stays on the
   original, a clone relaxed by a fresh variable carries the paid weight)
   under a hard exactly-one over the relaxation variables. *)
let core_guided ~stop ~max_conflicts ~gap_limit ~seed_best ~t0 w =
  let n = Sat.Wcnf.num_vars w in
  let solver =
    Cdcl.Solver.create
      (Sat.Cnf.make ~num_vars:n (Array.to_list w.Sat.Wcnf.hard))
  in
  install_stop solver ~stop;
  (* selector var → (remaining weight, clause body the selector relaxes) *)
  let softs : (int, int ref * Sat.Lit.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (wt, c) ->
      let s = Cdcl.Solver.new_var solver in
      let lits = Sat.Clause.lits c in
      Cdcl.Solver.add_clause solver (Sat.Lit.pos s :: lits);
      Hashtbl.add softs s (ref wt, lits))
    (Sat.Wcnf.soft_clauses w);
  let calls = ref 0 and cores = ref 0 and lb = ref 0 in
  let finish ?best ~best_cost ~lower_bound status =
    {
      best;
      best_cost;
      lower_bound;
      status;
      algorithm_used = Core_guided;
      cdcl_calls = !calls;
      cores = !cores;
      cpu_time_s = Sys.time () -. t0;
    }
  in
  let incumbent_result status =
    match seed_best with
    | Some (cost, x) -> finish ~best:x ~best_cost:cost ~lower_bound:!lb status
    | None -> finish ~best_cost:(Sat.Wcnf.top w) ~lower_bound:!lb status
  in
  let rec iterate () =
    (* the incumbent can close the gap before the search does *)
    match seed_best with
    | Some (cost, _) when cost - !lb <= gap_limit ->
        incumbent_result (if cost = !lb then Optimal else Feasible)
    | _ -> (
        let assumptions =
          Hashtbl.fold
            (fun s (wt, _) acc -> if !wt > 0 then Sat.Lit.neg_of s :: acc else acc)
            softs []
          |> List.sort Sat.Lit.compare
        in
        incr calls;
        match Cdcl.Solver.solve_with_assumptions ?max_conflicts solver assumptions with
        | `Sat model ->
            let x = model_prefix n model in
            let cost = Sat.Wcnf.cost w x in
            (* WPM1 invariant: a model under every remaining selector costs
               exactly the paid lower bound *)
            finish ~best:x ~best_cost:cost ~lower_bound:(min !lb cost)
              (if cost = !lb then Optimal else Feasible)
        | `Unsat ->
            let top = Sat.Wcnf.top w in
            finish ~best_cost:top ~lower_bound:top Infeasible
        | `Unknown -> incumbent_result (match seed_best with Some _ -> Feasible | None -> Unknown)
        | `Unsat_assumptions -> (
            let core_sels =
              List.filter_map
                (fun l ->
                  let v = Sat.Lit.var l in
                  if Hashtbl.mem softs v then Some v else None)
                (Cdcl.Solver.unsat_core solver)
              |> List.sort_uniq Int.compare
            in
            match core_sels with
            | [] ->
                let top = Sat.Wcnf.top w in
                finish ~best_cost:top ~lower_bound:top Infeasible
            | _ ->
                incr cores;
                let wmin =
                  List.fold_left
                    (fun acc s -> min acc !(fst (Hashtbl.find softs s)))
                    max_int core_sels
                in
                lb := !lb + wmin;
                (match core_sels with
                | [ s ] ->
                    (* a singleton core is a soft clause refuted by the hard
                       clauses alone: its weight is paid forever, no
                       relaxation needed *)
                    let wt, _ = Hashtbl.find softs s in
                    wt := !wt - wmin
                | _ ->
                    let bs =
                      List.map
                        (fun s ->
                          let wt, lits = Hashtbl.find softs s in
                          wt := !wt - wmin;
                          let b = Cdcl.Solver.new_var solver in
                          let s' = Cdcl.Solver.new_var solver in
                          let clone = Sat.Lit.pos b :: lits in
                          Cdcl.Solver.add_clause solver (Sat.Lit.pos s' :: clone);
                          Hashtbl.add softs s' (ref wmin, clone);
                          Sat.Lit.pos b)
                        core_sels
                    in
                    add_cardinality solver
                      (Sat.Cardinality.exactly_k
                         ~num_vars:(Cdcl.Solver.num_vars solver)
                         bs ~k:1));
                iterate ()))
  in
  iterate ()

let default_seed = 20230225

let solve ?(algorithm = Auto) ?max_conflicts ?timeout_s ?should_stop ?(gap_limit = 0)
    ?max_flips ?samples ?rng ?graph w =
  let t0 = Sys.time () in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let stop = stop_signal ~deadline ~should_stop in
  let stop_now = match stop with Some f -> f | None -> fun () -> false in
  let rng =
    match rng with Some r -> r | None -> Stats.Rng.create ~seed:default_seed
  in
  (* heuristic incumbents: WalkSAT always, annealer when a graph is given;
     only hard-feasible ones may seed the exact search.  Both honour the
     deadline/cancel switch — the seeding phase must not outlive the budget
     the exact search is held to. *)
  let candidates =
    incumbent ?max_flips ~should_stop:stop_now rng w
    ::
    (match graph with
    | Some g -> Option.to_list (anneal_incumbent ?samples ~should_stop:stop_now rng g w)
    | None -> [])
  in
  let seed_best =
    List.filter_map
      (fun (_, x) ->
        if Sat.Wcnf.hard_satisfied w x then Some (Sat.Wcnf.cost w x, x) else None)
      candidates
    |> List.sort (fun (c1, _) (c2, _) -> compare c1 c2)
    |> function
    | [] -> None
    | best :: _ -> Some best
  in
  let algorithm =
    match algorithm with
    | Auto -> if Sat.Wcnf.sum_weights w <= 256 then Linear else Core_guided
    | a -> a
  in
  match algorithm with
  | Linear | Auto -> linear ~stop ~max_conflicts ~gap_limit ~seed_best ~t0 w
  | Core_guided -> core_guided ~stop ~max_conflicts ~gap_limit ~seed_best ~t0 w
