(** HyQSAT frontend: from CDCL state to a programmed QA job (paper §IV).

    Pipeline per warm-up iteration: clause-queue generation (activity + BFS)
    → QUBO encoding of the queue (Equations 3–5) → coefficient adjustment
    (§IV-C) → linear-time hardware embedding (§IV-B). *)

type queue_mode = Activity_bfs | Random
(** [Random] is the Fig. 14 ablation. *)

type prepared = {
  job : Anneal.Machine.job;
  clause_indices : int list;  (** original clause indices actually embedded *)
  vars_involved : int list;  (** original variables in the embedded prefix *)
  all_clauses_embedded : bool;
      (** the job covers the entire formula — strategy 1 becomes possible *)
  cpu_time_s : float;  (** measured frontend CPU time, embedding included *)
  embed_time_s : float;
      (** measured CPU time of the hardware-embedding step alone (a
          portion of [cpu_time_s]) — the paper's Fig. 10 separates it from
          queue generation + encoding *)
}

type cache
(** Embedding cache.  Keys are the {e canonical structure} of a clause
    queue — the per-clause variable lists in queue order plus the variable
    universe size — which fully determines the Chimera placement on a fixed
    graph (literal signs only shape QUBO coefficients, re-encoded every
    call).  Warm-up iterations revisiting the same conflict-hot clauses
    reuse the placement instead of re-running place/route. *)

val create_cache : ?capacity:int -> Chimera.Graph.t -> cache
(** A cache bound to one hardware graph ([prepare] rejects any other).
    [capacity] (default 64) bounds retained placements; overflow drops the
    whole table.  Not domain-safe — use one cache per solving domain. *)

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation. *)

val prepare :
  ?obs:Obs.Ctx.t ->
  ?cache:cache ->
  ?queue_mode:queue_mode ->
  ?adjust:bool ->
  ?weights:int array ->
  Stats.Rng.t ->
  Chimera.Graph.t ->
  Sat.Cnf.t ->
  activity:(int -> float) ->
  prepared option
(** [None] when nothing could be embedded (e.g. empty formula).  [adjust]
    (default [true]) applies the noise-optimising coefficient adjustment.
    [weights] (one per clause of [f], each [>= 1]) switches the job to
    weighted mode: after adjustment, each embedded clause's sub-penalties
    are scaled by its weight (normalised to the heaviest), so annealer
    samples minimise weighted violation cost — clauses outside the
    embedded prefix keep their weights out of the job, exactly as the
    unweighted prefix logic drops them.
    With a [cache], a structurally repeated queue reuses its embedding
    (the cached {!Embed.Embedding.t} is shared, not copied — treat
    embeddings as immutable); with a live [obs] the lookup bumps
    [embed_cache_hits_total] / [embed_cache_misses_total]. *)
