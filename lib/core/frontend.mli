(** HyQSAT frontend: from CDCL state to a programmed QA job (paper §IV).

    Pipeline per warm-up iteration: clause-queue generation (activity + BFS)
    → QUBO encoding of the queue (Equations 3–5) → coefficient adjustment
    (§IV-C) → linear-time hardware embedding (§IV-B). *)

type queue_mode = Activity_bfs | Random
(** [Random] is the Fig. 14 ablation. *)

type prepared = {
  job : Anneal.Machine.job;
  clause_indices : int list;  (** original clause indices actually embedded *)
  vars_involved : int list;  (** original variables in the embedded prefix *)
  all_clauses_embedded : bool;
      (** the job covers the entire formula — strategy 1 becomes possible *)
  cpu_time_s : float;  (** measured frontend CPU time, embedding included *)
  embed_time_s : float;
      (** measured CPU time of the hardware-embedding step alone (a
          portion of [cpu_time_s]) — the paper's Fig. 10 separates it from
          queue generation + encoding *)
}

val prepare :
  ?queue_mode:queue_mode ->
  ?adjust:bool ->
  Stats.Rng.t ->
  Chimera.Graph.t ->
  Sat.Cnf.t ->
  activity:(int -> float) ->
  prepared option
(** [None] when nothing could be embedded (e.g. empty formula).  [adjust]
    (default [true]) applies the noise-optimising coefficient adjustment. *)
