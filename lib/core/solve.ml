type mode = Hybrid of Hybrid_solver.config | Classic of Cdcl.Config.t

let hybrid ?config () = Hybrid (Option.value ~default:Hybrid_solver.default_config config)
let classic ?config () = Classic (Option.value ~default:Cdcl.Config.minisat_like config)

let mode_label = function Hybrid _ -> "hybrid" | Classic _ -> "classic"

let run ?supervisor ?max_iterations ?should_stop ?obs ?parent mode f =
  match mode with
  | Hybrid config ->
      Hybrid_solver.solve ~config ?supervisor ?max_iterations ?should_stop ?obs ?parent f
  | Classic config ->
      Hybrid_solver.solve_classic ~config ?max_iterations ?should_stop ?obs ?parent f
