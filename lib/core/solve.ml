type mode = Hybrid_solver.mode =
  | Hybrid of Hybrid_solver.config
  | Classic of Cdcl.Config.t

let hybrid ?config () = Hybrid (Option.value ~default:Hybrid_solver.default_config config)
let classic ?config () = Classic (Option.value ~default:Cdcl.Config.minisat_like config)
let mode_label = Hybrid_solver.mode_label

let run ?supervisor ?max_iterations ?should_stop ?obs ?parent ?solver
    ?embed_cache ?assumptions ?import mode f =
  Hybrid_solver.run ?supervisor ?max_iterations ?should_stop ?obs ?parent
    ?solver ?embed_cache ?assumptions ?import mode f

type objective = Decision | Maximize

let objective_label = function Decision -> "decision" | Maximize -> "maxsat"

let optimize ?(mode = Hybrid Hybrid_solver.default_config) ?algorithm ?max_conflicts
    ?timeout_s ?should_stop ?gap_limit ?seed w =
  (* hybrid mode contributes its hardware graph, so the annealer seeds the
     incumbent exactly as the decision pipeline would sample it *)
  let graph =
    match mode with
    | Hybrid c -> Some c.Hybrid_solver.graph
    | Classic _ -> None
  in
  let rng = Option.map (fun seed -> Stats.Rng.create ~seed) seed in
  Optimize.solve ?algorithm ?max_conflicts ?timeout_s ?should_stop ?gap_limit ?rng ?graph w

module Session = struct
  type answer =
    [ `Sat of bool array
    | `Unsat
    | `Unsat_assumptions of Sat.Lit.t list
    | `Unknown of Sat.Answer.reason ]

  type t = {
    mode : mode;
    obs : Obs.Ctx.t;
    supervisor : Anneal.Supervisor.t option;
    embed_cache : Frontend.cache option;
    solver : Cdcl.Solver.t;
    (* newest first; [List.rev] order matches the solver's original-clause
       numbering (one origin index per [add_clause], installed or not) *)
    mutable clauses_rev : Sat.Clause.t list;
    mutable formula : Sat.Cnf.t option; (* memo, invalidated on mutation *)
    mutable solves : int;
    mutable last_report : Hybrid_solver.report option;
  }

  let create ?(mode = Classic Cdcl.Config.minisat_like) ?(obs = Obs.Ctx.null) () =
    let cdcl_config =
      (* hybrid sessions feed the solver's paper counters to the frontend's
         clause ranking, so tracking must stay on for them *)
      match mode with
      | Hybrid c -> Cdcl.Config.with_paper_stats c.Hybrid_solver.cdcl
      | Classic c -> c
    in
    let supervisor, embed_cache =
      match mode with
      | Hybrid c ->
          ( Some
              (Anneal.Supervisor.create ~obs ~policy:c.Hybrid_solver.supervision
                 ~seed:(c.Hybrid_solver.seed + 77) c.Hybrid_solver.backend),
            Some (Frontend.create_cache c.Hybrid_solver.graph) )
      | Classic _ -> (None, None)
    in
    let solver =
      Cdcl.Solver.create ~config:cdcl_config (Sat.Cnf.make ~num_vars:0 [])
    in
    Cdcl.Solver.set_obs solver obs;
    {
      mode;
      obs;
      supervisor;
      embed_cache;
      solver;
      clauses_rev = [];
      formula = None;
      solves = 0;
      last_report = None;
    }

  let num_vars s = Cdcl.Solver.num_vars s.solver

  let new_var s =
    s.formula <- None;
    Cdcl.Solver.new_var s.solver

  let add_clause s lits =
    s.formula <- None;
    s.clauses_rev <- Sat.Clause.make lits :: s.clauses_rev;
    Cdcl.Solver.add_clause s.solver lits

  let add_formula s f =
    (* admit the formula's variables first so session numbering matches the
       formula's even when trailing variables appear in no clause *)
    while num_vars s < Sat.Cnf.num_vars f do
      ignore (new_var s)
    done;
    Sat.Cnf.iter_clauses (fun _ c -> add_clause s (Sat.Clause.lits c)) f

  let formula s =
    match s.formula with
    | Some f -> f
    | None ->
        let f = Sat.Cnf.make ~num_vars:(num_vars s) (List.rev s.clauses_rev) in
        s.formula <- Some f;
        f

  let solve ?(assumptions = []) ?max_iterations ?should_stop s =
    let f = formula s in
    let report =
      run ?supervisor:s.supervisor ?max_iterations ?should_stop ~obs:s.obs
        ~solver:s.solver ?embed_cache:s.embed_cache ~assumptions s.mode f
    in
    s.solves <- s.solves + 1;
    s.last_report <- Some report;
    match report.Hybrid_solver.result with
    | Cdcl.Solver.Sat m -> `Sat m
    | Cdcl.Solver.Unsat -> (
        match report.Hybrid_solver.assumption_core with
        | Some core -> `Unsat_assumptions core
        | None -> `Unsat)
    | Cdcl.Solver.Unknown r -> `Unknown r

  let model_value s v = Cdcl.Solver.model_value s.solver v
  let unsat_core s = Cdcl.Solver.unsat_core s.solver
  let solver s = s.solver
  let solve_count s = s.solves
  let last_report s = s.last_report

  let export_learnts ?max_len ?max_clauses s =
    Cdcl.Solver.export_learnts ?max_len ?max_clauses s.solver

  let import_clauses s cls = Cdcl.Solver.import_clauses s.solver cls
  let retire s = Cdcl.Solver.flush_obs s.solver
end
