type queue_mode = Activity_bfs | Random

type prepared = {
  job : Anneal.Machine.job;
  clause_indices : int list;
  vars_involved : int list;
  all_clauses_embedded : bool;
  cpu_time_s : float;
  embed_time_s : float;
}

(* The embedding of a clause queue depends only on the hardware graph and
   the queue's *structure*: which variables each clause touches, in queue
   order, over which variable universe (auxiliary ids are numbered
   num_vars + position-of-3-lit-clause).  Literal signs only shape the QUBO
   coefficients, which are re-encoded on every call — so two queues with
   the same canonical structure share one Chimera placement. *)
type cache_key = int * Sat.Lit.var list list

type cache = {
  graph : Chimera.Graph.t;  (* embeddings are only valid on this graph *)
  capacity : int;
  table : (cache_key, Embed.Hyqsat_scheme.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ?(capacity = 64) graph =
  if capacity < 1 then invalid_arg "Frontend.create_cache: capacity";
  { graph; capacity; table = Hashtbl.create capacity; hits = 0; misses = 0 }

let cache_stats c = (c.hits, c.misses)

let embed_via_cache obs cache graph f clauses enc =
  match cache with
  | None -> Embed.Hyqsat_scheme.embed graph enc
  | Some c ->
      if not (c.graph == graph) then
        invalid_arg "Frontend.prepare: cache built for a different graph";
      let key = (Sat.Cnf.num_vars f, List.map Sat.Clause.vars clauses) in
      (match Hashtbl.find_opt c.table key with
      | Some res ->
          c.hits <- c.hits + 1;
          Obs.Metrics.incr obs "embed_cache_hits_total";
          res
      | None ->
          let res = Embed.Hyqsat_scheme.embed graph enc in
          c.misses <- c.misses + 1;
          Obs.Metrics.incr obs "embed_cache_misses_total";
          (* a full table drops wholesale: the working set of a solve is a
             handful of conflict-hot queues, so an overflow means the keys
             stopped repeating and LRU bookkeeping would buy nothing *)
          if Hashtbl.length c.table >= c.capacity then Hashtbl.reset c.table;
          Hashtbl.add c.table key res;
          res)

let prepare ?(obs = Obs.Ctx.null) ?cache ?(queue_mode = Activity_bfs)
    ?(adjust = true) ?weights rng graph f ~activity =
  let t0 = Sys.time () in
  let limit = Embed.Hyqsat_scheme.capacity_estimate graph in
  let var_budget = Chimera.Graph.num_vertical_lines graph in
  let queue =
    match queue_mode with
    | Activity_bfs -> Clause_queue.generate rng f ~activity ~limit ~var_budget
    | Random -> Clause_queue.generate_random rng f ~limit
  in
  if queue = [] then None
  else begin
    let clauses = List.map (Sat.Cnf.clause f) queue in
    let enc = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) clauses in
    let t_embed = Sys.time () in
    let res = embed_via_cache obs cache graph f clauses enc in
    let embed_time_s = Sys.time () -. t_embed in
    let embedded = res.Embed.Hyqsat_scheme.embedded_clauses in
    if embedded = 0 then None
    else begin
      (* re-encode just the embedded prefix (auxiliary numbering of a prefix
         is a prefix of the full numbering, so the embedding stays aligned) *)
      let prefix_clauses = List.filteri (fun i _ -> i < embedded) clauses in
      let enc' = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) prefix_clauses in
      if adjust then Qubo.Adjust.adjust enc';
      (* weighted (MaxSAT) mode: scale the adjusted α's by per-clause
         weights so the sampled energy tracks weighted violation cost; the
         unembedded suffix simply keeps its weights out of this job, same
         as unweighted clauses outside the queue prefix *)
      (match weights with
      | None -> ()
      | Some w ->
          let prefix_w =
            Array.of_list
              (List.filteri (fun i _ -> i < embedded) queue
              |> List.map (fun k -> float_of_int w.(k)))
          in
          Qubo.Encode.set_clause_weights enc' prefix_w);
      let job =
        {
          Anneal.Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
          objective = Qubo.Encode.objective enc';
          edges = res.Embed.Hyqsat_scheme.edges;
        }
      in
      let clause_indices = List.filteri (fun i _ -> i < embedded) queue in
      let vars_involved =
        List.sort_uniq Int.compare
          (List.concat_map (fun k -> Sat.Clause.vars (Sat.Cnf.clause f k)) clause_indices)
      in
      Some
        {
          job;
          clause_indices;
          vars_involved;
          all_clauses_embedded = embedded = Sat.Cnf.num_clauses f;
          cpu_time_s = Sys.time () -. t0;
          embed_time_s;
        }
    end
  end
