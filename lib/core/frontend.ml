type queue_mode = Activity_bfs | Random

type prepared = {
  job : Anneal.Machine.job;
  clause_indices : int list;
  vars_involved : int list;
  all_clauses_embedded : bool;
  cpu_time_s : float;
  embed_time_s : float;
}

let prepare ?(queue_mode = Activity_bfs) ?(adjust = true) rng graph f ~activity =
  let t0 = Sys.time () in
  let limit = Embed.Hyqsat_scheme.capacity_estimate graph in
  let var_budget = Chimera.Graph.num_vertical_lines graph in
  let queue =
    match queue_mode with
    | Activity_bfs -> Clause_queue.generate rng f ~activity ~limit ~var_budget
    | Random -> Clause_queue.generate_random rng f ~limit
  in
  if queue = [] then None
  else begin
    let clauses = List.map (Sat.Cnf.clause f) queue in
    let enc = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) clauses in
    let t_embed = Sys.time () in
    let res = Embed.Hyqsat_scheme.embed graph enc in
    let embed_time_s = Sys.time () -. t_embed in
    let embedded = res.Embed.Hyqsat_scheme.embedded_clauses in
    if embedded = 0 then None
    else begin
      (* re-encode just the embedded prefix (auxiliary numbering of a prefix
         is a prefix of the full numbering, so the embedding stays aligned) *)
      let prefix_clauses = List.filteri (fun i _ -> i < embedded) clauses in
      let enc' = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) prefix_clauses in
      if adjust then Qubo.Adjust.adjust enc';
      let job =
        {
          Anneal.Machine.embedding = res.Embed.Hyqsat_scheme.embedding;
          objective = Qubo.Encode.objective enc';
          edges = res.Embed.Hyqsat_scheme.edges;
        }
      in
      let clause_indices = List.filteri (fun i _ -> i < embedded) queue in
      let vars_involved =
        List.sort_uniq Int.compare
          (List.concat_map (fun k -> Sat.Clause.vars (Sat.Cnf.clause f k)) clause_indices)
      in
      Some
        {
          job;
          clause_indices;
          vars_involved;
          all_clauses_embedded = embedded = Sat.Cnf.num_clauses f;
          cpu_time_s = Sys.time () -. t0;
          embed_time_s;
        }
    end
  end
