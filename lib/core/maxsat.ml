type result = { assignment : bool array; violated : int }

let count_violated f x = Sat.Assignment.num_unsatisfied (Sat.Assignment.of_bools x) f

let approximate ?(samples = 8) ?(noise = Anneal.Noise.noise_free) rng graph f =
  match Frontend.prepare ~adjust:false rng graph f ~activity:(fun _ -> 1.0) with
  | None -> None
  | Some prepared ->
      let n = Sat.Cnf.num_vars f in
      let best = ref None in
      for _ = 1 to samples do
        let outcome = Anneal.Machine.run ~noise rng prepared.Frontend.job in
        let x = Array.make n false in
        List.iter
          (fun (node, v) -> if node < n then x.(node) <- v)
          outcome.Anneal.Machine.assignment;
        let violated = count_violated f x in
        match !best with
        | Some b when b.violated <= violated -> ()
        | _ -> best := Some { assignment = x; violated }
      done;
      !best

let exact ?(max_conflicts_per_step = max_int) f =
  let n = Sat.Cnf.num_vars f in
  let m = Sat.Cnf.num_clauses f in
  (* relaxed formula: clause_k ∨ r_k with selector r_k = n + k *)
  let relaxed =
    List.mapi
      (fun k c -> Sat.Clause.make (Sat.Lit.pos (n + k) :: Sat.Clause.lits c))
      (Sat.Cnf.clauses f)
  in
  let selectors = List.init m (fun k -> Sat.Lit.pos (n + k)) in
  let rec search bound =
    if bound > m then None
    else begin
      let card = Sat.Cardinality.at_most_k ~num_vars:(n + m) selectors ~k:bound in
      let formula =
        Sat.Cnf.make ~num_vars:card.Sat.Cardinality.num_vars
          (relaxed @ card.Sat.Cardinality.clauses)
      in
      match
        Cdcl.Solver.solve ~max_conflicts:max_conflicts_per_step (Cdcl.Solver.create formula)
      with
      | Cdcl.Solver.Sat model ->
          let assignment = Array.sub model 0 n in
          Some { assignment; violated = count_violated f assignment }
      | Cdcl.Solver.Unsat -> search (bound + 1)
      | Cdcl.Solver.Unknown _ -> None
    end
  in
  search 0

let local_search ?(max_flips = 20_000) rng f =
  let n = Sat.Cnf.num_vars f in
  let x = Array.init (max n 1) (fun _ -> Stats.Rng.bool rng) in
  let best = ref (Array.copy x) in
  let best_violated = ref (count_violated f x) in
  let flips = ref 0 in
  while !flips < max_flips && !best_violated > 0 do
    (* walk on a random falsified clause; track the best-ever configuration *)
    let a = Sat.Assignment.of_bools x in
    let falsified =
      Sat.Cnf.fold_clauses
        (fun acc _ c -> if Sat.Assignment.satisfies_clause a c then acc else c :: acc)
        [] f
    in
    (match falsified with
    | [] -> flips := max_flips
    | cs ->
        let c = List.nth cs (Stats.Rng.int rng (List.length cs)) in
        let vars = Sat.Clause.vars c in
        let v = List.nth vars (Stats.Rng.int rng (List.length vars)) in
        x.(v) <- not x.(v);
        let violated = count_violated f x in
        if violated < !best_violated then begin
          best_violated := violated;
          best := Array.copy x
        end);
    incr flips
  done;
  { assignment = !best; violated = !best_violated }
