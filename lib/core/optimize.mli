(** Weighted MaxSAT optimisation — the unified surface replacing the old
    [Maxsat] module (the extension direction of the paper's foundation
    reference [8], Bian et al., "Solving SAT and MaxSAT with a quantum
    annealer").

    Two exact algorithms run on one incremental {!Cdcl.Solver} session, so
    clauses learnt in one iteration carry to the next:

    {ul
    {- {e Linear} — descending linear search.  Every soft clause gets a
       relaxation selector; the weighted selector count is summed once with
       a binary adder ({!Sat.Cardinality.weighted_sum},
       O(softs · log sum_weights)) and the bound descends from the
       incumbent's cost — one variable-free comparator clause set per round
       — until UNSAT proves the optimum.  Bounds only tighten, so the
       comparator clauses are added permanently — no activation literals.}
    {- {e Core_guided} — Fu–Malik/WPM1 relaxation on
       [solve_with_assumptions]/[unsat_core]: assume every selector false,
       extract a core, pay its minimum weight into the lower bound, split
       the core's clauses (weight remainder kept, a relaxed clone added)
       under a hard exactly-one over the fresh relaxation variables, and
       repeat until SAT — at which point cost equals the lower bound.}}

    Both are seeded by heuristic incumbents (weighted WalkSAT, optionally
    annealer sampling), and every answer carries [(best_cost, lower_bound)]
    so the optimality gap is always reported. *)

type algorithm = Linear | Core_guided | Auto
(** [Auto] picks [Linear] for small summed soft weight (few descent rounds
    reach the optimum) and [Core_guided] otherwise. *)

val algorithm_label : algorithm -> string
(** ["linear"], ["core-guided"], ["auto"] — stable, used in telemetry and
    CLI flags. *)

val algorithm_of_label : string -> algorithm option
(** Inverse of {!algorithm_label} (also accepts ["core_guided"] and
    ["fu-malik"] for the core-guided algorithm). *)

type status =
  | Optimal  (** [best_cost = lower_bound]: the model is proven optimal *)
  | Feasible  (** a hard-satisfying model is known, the gap may be open *)
  | Infeasible  (** the hard clauses are unsatisfiable *)
  | Unknown  (** budget/timeout before any hard-satisfying model was found *)

type result = {
  best : bool array option;
      (** hard-satisfying model over the original variables *)
  best_cost : int;  (** [Wcnf.cost] of [best]; [Wcnf.top] when [best = None] *)
  lower_bound : int;  (** proven lower bound on the optimum cost *)
  status : status;
  algorithm_used : algorithm;  (** [Linear] or [Core_guided], never [Auto] *)
  cdcl_calls : int;
  cores : int;  (** unsat cores extracted (core-guided only) *)
  cpu_time_s : float;
}

val incumbent :
  ?max_flips:int ->
  ?should_stop:(unit -> bool) ->
  Stats.Rng.t ->
  Sat.Wcnf.t ->
  int * bool array
(** Weighted WalkSAT minimiser (the old [Maxsat.local_search] semantics:
    walk on a random falsified clause, flip a random variable of it, keep
    the best-ever configuration).  Hard clauses participate with weight
    {!Sat.Wcnf.top}, so the returned cost is the {e penalised} cost
    [soft cost + top * violated hard clauses] — below [top] iff the model
    satisfies every hard clause.  [should_stop] is polled every flip; the
    best configuration so far is still returned after an early stop. *)

val anneal_incumbent :
  ?samples:int ->
  ?noise:Anneal.Noise.t ->
  ?should_stop:(unit -> bool) ->
  Stats.Rng.t ->
  Chimera.Graph.t ->
  Sat.Wcnf.t ->
  (int * bool array) option
(** Best of [samples] (default 8) annealing cycles over the weighted QUBO
    (hard clauses at weight [top], softs at their weight, queue ordered by
    weight).  Returns the penalised cost as in {!incumbent}; [None] when
    nothing embeds.  [should_stop] is polled between cycles. *)

val solve :
  ?algorithm:algorithm ->
  ?max_conflicts:int ->
  ?timeout_s:float ->
  ?should_stop:(unit -> bool) ->
  ?gap_limit:int ->
  ?max_flips:int ->
  ?samples:int ->
  ?rng:Stats.Rng.t ->
  ?graph:Chimera.Graph.t ->
  Sat.Wcnf.t ->
  result
(** Exact weighted MaxSAT.  [max_conflicts] bounds each CDCL call
    (exhaustion returns the incumbent as [Feasible]/[Unknown]);
    [timeout_s] is a wall-clock deadline ([Unix.gettimeofday], the clock
    the service layer classifies timeouts against) and [should_stop] an
    external cancel switch, both enforced through the solver's terminate
    hook {e and} polled by the heuristic seeding phase; [gap_limit]
    (default 0) stops as soon as [best_cost - lower_bound <= gap_limit];
    [rng] seeds the WalkSAT incumbent (a fixed default seed is used when
    absent) and [graph] additionally enables the annealer incumbent. *)
