(** The HyQSAT hybrid solver (paper §III, Fig. 4).

    A CDCL search whose first √K iterations (the warm-up stage, K being the
    estimated classical iteration count) are guided by the quantum annealer:
    each warm-up iteration sends the currently hardest clause queue through
    the frontend, samples the annealer once, and applies the backend's
    feedback strategy; afterwards the search continues as classic CDCL. *)

type config = {
  cdcl : Cdcl.Config.t;
  graph : Chimera.Graph.t;
  noise : Anneal.Noise.t;
  timing : Anneal.Timing.t;
  calibration : Calibration.t;
  queue_mode : Frontend.queue_mode;
  adjust_coefficients : bool;
  strategies : Backend.enabled;
  qa_period : int;  (** run the annealer every [qa_period] warm-up iterations *)
  warmup_fraction : float;
      (** warm-up length = [warmup_fraction × √K_est]; 1.0 = the paper *)
  qa_reads : int;
      (** annealer samples per QA call (best-of by energy, the multi-sample
          device mode); 1 = the paper's single-shot protocol *)
  qa_domains : int;
      (** OCaml domains fanning the [qa_reads] samples; the answer is
          deterministic in the seed whatever this is set to *)
  qa_pool : Parallel.Tasks.t option;
      (** persistent pool carrying the parallel reads; [None] (the default)
          = the process-wide {!Parallel.Tasks.shared}.  Host-side machinery
          only — result-invariant like [qa_domains] *)
  backend : Anneal.Backend.t;
      (** the annealer device every QA call goes through (default
          {!Anneal.Backend.best_of}); wrap with
          {!Anneal.Backend.with_faults} to exercise degradation *)
  supervision : Anneal.Supervisor.policy;
      (** deadline / retry / circuit-breaker policy applied to [backend] *)
  seed : int;
}

val default_config : config
(** Noise-free annealer on the 16×16 graph, paper defaults everywhere. *)

val make_config :
  ?base:config ->
  ?cdcl:Cdcl.Config.t ->
  ?graph:Chimera.Graph.t ->
  ?noise:Anneal.Noise.t ->
  ?timing:Anneal.Timing.t ->
  ?calibration:Calibration.t ->
  ?queue_mode:Frontend.queue_mode ->
  ?adjust_coefficients:bool ->
  ?strategies:Backend.enabled ->
  ?qa_period:int ->
  ?warmup_fraction:float ->
  ?qa_reads:int ->
  ?qa_domains:int ->
  ?qa_pool:Parallel.Tasks.t ->
  ?backend:Anneal.Backend.t ->
  ?supervisor:Anneal.Supervisor.policy ->
  ?seed:int ->
  unit ->
  config
(** The one way call sites build configs: every field defaults to [base]
    (itself defaulting to {!default_config}), so adding a config field
    never breaks callers.  Do not construct [config] record literals
    outside this module. *)

val noisy_config : config
(** [make_config ~noise:Anneal.Noise.default_2000q ()] — the "real-world
    QA" mode of Table II. *)

type mode = Hybrid of config | Classic of Cdcl.Config.t
    (** what {!run} runs: the full quantum-guided pipeline, or the pure
        CDCL baseline through the same reporting type (zero QA). *)

val mode_label : mode -> string
(** ["hybrid"] or ["classic"] — stable strings used in telemetry. *)

type report = {
  result : Cdcl.Solver.result;
  assumption_core : Sat.Lit.t list option;
      (** [Some core] when the answer is [Unsat] {e under the call's
          assumptions} only — the formula itself is satisfiable as far as
          the search knows, and [core] is the conflicting assumption subset
          ({!Cdcl.Solver.unsat_core}).  [None] on an assumption-free solve
          or a genuine [Unsat]. *)
  iterations : int;  (** CDCL iterations executed {e by this call} *)
  warmup_iterations : int;  (** warm-up budget used *)
  qa_calls : int;  (** successful annealer consultations *)
  qa_failures : int;
      (** failed supervised attempts, including breaker fast-fails (the
          supervisor's [stats.failures]) *)
  qa_degraded : int;
      (** warm-up iterations that fell through to pure CDCL because the
          supervised call failed (retries exhausted or breaker open) *)
  qa_time_us : float;  (** modelled annealer wall-clock *)
  frontend_time_s : float;  (** measured CPU *)
  backend_time_s : float;  (** measured CPU *)
  cdcl_time_s : float;  (** measured CPU of the classical search *)
  strategy_uses : int array;  (** length 4: uses of strategies 1–4 *)
  solver_stats : Cdcl.Solver.stats;
      (** cumulative over the solver's lifetime — equal to this call's work
          only when the solver was created for this call *)
  reused_clauses : int;
      (** clauses actually installed from the call's [import] list *)
  learnts : Sat.Lit.t array list;
      (** {!Cdcl.Solver.export_learnts} snapshot at the end of the call:
          root-level facts plus the most active short learnt clauses, for
          warm-starting a sibling solver over the same formula *)
  proof : Sat.Drat.t option;
      (** DRAT derivation when [cdcl.log_proof] is set — the strategy
          feedback only injects phase/priority hints, never clauses, so
          every logged step is an ordinary RUP-checkable learnt clause *)
}

val end_to_end_time_s : report -> float
(** frontend + QA (modelled) + backend + CDCL, fully serialised. *)

val end_to_end_pipelined_s : report -> float
(** Like {!end_to_end_time_s} but with the frontend overlapped with the
    annealer execution, as the paper deploys it (§VI-C: "the hardware
    embedding is pipelined with the clause queue generation"; §VII-A hides
    the switching latency the same way): max(frontend, QA) + backend +
    CDCL. *)

val estimate_iterations : Sat.Cnf.t -> int
(** The paper's K estimate from variable and clause counts. *)

val run :
  ?supervisor:Anneal.Supervisor.t ->
  ?max_iterations:int ->
  ?should_stop:(unit -> bool) ->
  ?obs:Obs.Ctx.t ->
  ?parent:Obs.Span.t ->
  ?solver:Cdcl.Solver.t ->
  ?embed_cache:Frontend.cache ->
  ?assumptions:Sat.Lit.t list ->
  ?import:Sat.Lit.t array list ->
  mode ->
  Sat.Cnf.t ->
  report
(** The one solver entry point.  [Hybrid config] runs the quantum-guided
    pipeline below; [Classic config] runs the pure-CDCL baseline through
    the same reporting type ([embed_cache] is then unused).  Prefer the
    {!Solve} facade unless you need the extra knobs.

    Incremental knobs (all default to a cold one-shot solve):
    {ul
    {- [solver] reuses a caller-owned {!Cdcl.Solver.t} instead of building
       one from [f] — learnt clauses, activities and phases carry over from
       its previous calls.  The solver's clause numbering must agree with
       [f] (index [i] of [f] ↔ original clause [i] of the solver), which
       holds when the solver was built from [f] or grown clause-by-clause
       alongside it ({!Solve.Session} maintains this).  Its lifetime obs
       counters are {e not} flushed here — the owner retires it.}
    {- [embed_cache] reuses a caller-owned embedding cache (hybrid mode)
       rather than a per-solve one.}
    {- [assumptions] solves under the conjunction of the given literals:
       [Sat] models satisfy them; [Unsat] with [assumption_core = Some _]
       means unsatisfiable {e under the assumptions} only.  An annealer
       model that violates an assumption is demoted to hints (never
       returned as the answer).}
    {- [import] installs foreign learnt clauses
       ({!Cdcl.Solver.import_clauses}) before searching; the count actually
       installed is reported as [reused_clauses].  No-op under proof
       logging.}}

    [supervisor] overrides the per-solve supervisor built from
    [config.backend]/[config.supervision]: pass a shared instance to put
    every solve behind {e one} circuit-broken device (the server
    dispatcher's deployment shape — see {!Anneal.Supervisor.sample} on
    domain-safety).  The report's [qa_failures] is then this solve's delta
    of the shared failure count, which can over-attribute under concurrent
    interleaving; exact when solves are serial.

    [should_stop] is a cooperative-cancellation callback polled between
    iterations (every 128 steps); when it returns [true] the search stops
    and the report carries [Unknown Cancelled].  It must be cheap and safe
    to call from the solving domain — the service layer passes an
    [Atomic.get].  [max_iterations] is the step budget: the search executes
    at most that many CDCL iterations before answering [Unknown Budget].

    Every QA call goes through an {!Anneal.Supervisor} built from
    [config.backend] and [config.supervision] (jitter seed derived from
    [config.seed], so runs replay exactly).  When a supervised call fails
    — retries exhausted or breaker open — that warm-up iteration degrades
    to pure CDCL: no hints are applied, [qa_degraded] is bumped, and the
    search continues; at a 100 % failure rate the solve is bit-identical
    to [Classic] mode modulo reporting.

    With a live [obs] the hybrid mode emits a ["hybrid_solve"] span (under
    [parent]) containing one ["warmup_iter"] span per annealer
    consultation — each with ["frontend"] (and its ["embed"] child),
    ["anneal"] and ["backend"] children carrying the report's own stage
    times (modelled time for the anneal) — plus a final ["cdcl"] span, so
    the frontend/anneal/backend/cdcl span durations of one solve sum
    exactly to {!end_to_end_time_s}.  Each annealer consultation also
    emits a ["qa_call"] span with [backend] and [status] (["ok"] or a
    failure label) attributes.  Counters: [qa_calls_total],
    [qa_degraded_total] and the supervisor's [qa_backend_calls_total] /
    [qa_failures_total{reason=…}] / [qa_retries_total] /
    [qa_breaker_transitions_total{to=…}] family,
    [strategy_uses_total{strategy=...}], the annealer's and the CDCL
    engine's own metrics, and the per-solve embedding cache's
    [embed_cache_hits_total] / [embed_cache_misses_total] (each solve owns
    one {!Frontend.cache} unless [embed_cache] is passed, so repeated
    conflict-hot queues skip place/route).

    [Classic] mode emits a ["classic_solve"] span with one ["cdcl"] child
    and the CDCL engine's metrics; [should_stop] is installed via
    {!Cdcl.Solver.set_terminate}. *)
