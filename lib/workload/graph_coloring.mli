(** Flat-graph 3-colouring (the SATLIB "Flat" family, paper's GC benchmarks).

    A random 3-colourable graph is built by hiding a balanced colouring and
    sampling edges only between differently-coloured nodes (Culberson's flat
    generator's key property).  The standard encoding gives, for [n] nodes
    and [e] edges: [3n] variables and [n + 3n + 3e] clauses — Flat150-360
    therefore has 450 variables and 1680 clauses, matching Table I. *)

val generate : Stats.Rng.t -> nodes:int -> edges:int -> Sat.Cnf.t

val flat : Stats.Rng.t -> int -> Sat.Cnf.t
(** [flat rng n] uses the SATLIB edge count [⌊2.394·n⌋] (e.g. 150 → 359 ≈
    Flat150-360). *)

val weighted :
  Stats.Rng.t -> nodes:int -> edges:int -> soft_edges:int -> Sat.Wcnf.t
(** Weighted variant: the 3-colourable core stays hard; [soft_edges] extra
    random edges (sampled blind to the hidden colouring, so some are
    unsatisfiable under every proper colouring) become soft
    "endpoints differ" constraints at random weights 1–4.  The optimum is
    the cheapest soft-edge set any proper colouring must violate. *)

val flat_weighted : Stats.Rng.t -> int -> Sat.Wcnf.t
(** [weighted] with the SATLIB edge count and [max 3 (n/3)] soft edges. *)
