type scale = [ `Small | `Paper ]

type t = {
  id : string;
  domain : string;
  name : string;
  problems : int;
  generate : Stats.Rng.t -> scale -> Sat.Cnf.t;
  generate_weighted : (Stats.Rng.t -> scale -> Sat.Wcnf.t) option;
}

let gc id name problems ~paper ~small =
  let size scale = match scale with `Paper -> paper | `Small -> small in
  {
    id;
    domain = "Graph Coloring";
    name;
    problems;
    generate = (fun rng scale -> Graph_coloring.flat rng (size scale));
    generate_weighted = Some (fun rng scale -> Graph_coloring.flat_weighted rng (size scale));
  }

let ai id name problems ~paper ~small =
  {
    id;
    domain = "Artificial Intelligence";
    name;
    problems;
    generate = (fun rng scale -> Uniform.uf rng (match scale with `Paper -> paper | `Small -> small));
    generate_weighted = None;
  }

let table1 =
  [
    gc "GC1" "Flat150-360" 100 ~paper:150 ~small:60;
    gc "GC2" "Flat175-417" 100 ~paper:175 ~small:80;
    gc "GC3" "Flat200-479" 100 ~paper:200 ~small:100;
    {
      id = "CFA";
      domain = "Circuit Fault Analysis";
      name = "SSA";
      problems = 4;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Circuit_fault.generate rng ~inputs:30 ~gates:300
          | `Small -> Circuit_fault.generate rng ~inputs:12 ~gates:160);
      generate_weighted = None;
    };
    {
      id = "BP";
      domain = "Block Planning";
      name = "Blocksworld";
      problems = 5;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Block_planning.generate rng ~blocks:7 ~steps:6
          | `Small -> Block_planning.generate rng ~blocks:4 ~steps:4);
      generate_weighted =
        Some
          (fun rng scale ->
            match scale with
            | `Paper -> Block_planning.generate_weighted rng ~blocks:7 ~steps:6
            | `Small -> Block_planning.generate_weighted rng ~blocks:4 ~steps:4);
    };
    {
      id = "II";
      domain = "Inductive Inference";
      name = "II";
      problems = 41;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Inductive_inference.generate rng ~attributes:24 ~terms:6 ~examples:100
          | `Small -> Inductive_inference.generate rng ~attributes:16 ~terms:4 ~examples:50);
      generate_weighted = None;
    };
    {
      id = "IF1";
      domain = "Integer Factorization";
      name = "EzFact";
      problems = 30;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Factoring.generate rng ~bits:8
          | `Small -> Factoring.generate rng ~bits:6);
      generate_weighted = None;
    };
    {
      id = "IF2";
      domain = "Integer Factorization";
      name = "Lisa";
      problems = 14;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Factoring.generate rng ~bits:10
          | `Small -> Factoring.generate rng ~bits:7);
      generate_weighted = None;
    };
    {
      id = "CRY";
      domain = "Cryptography";
      name = "Cmpadd";
      problems = 5;
      generate =
        (fun rng scale ->
          match scale with
          | `Paper -> Crypto.generate rng ~bits:16
          | `Small -> Crypto.generate rng ~bits:10);
      generate_weighted = None;
    };
    ai "AI1" "UF150-645" 100 ~paper:150 ~small:100;
    ai "AI2" "UF175-753" 100 ~paper:175 ~small:125;
    ai "AI3" "UF200-860" 100 ~paper:200 ~small:150;
    ai "AI4" "UF225-960" 100 ~paper:225 ~small:175;
    ai "AI5" "UF250-1065" 100 ~paper:250 ~small:200;
  ]

let find id = List.find (fun s -> s.id = id) table1
