(** The paper's Table I benchmark suite: 14 benchmarks from 7 domains, each
    backed by one of this library's generators.

    Every spec generates at two scales: [`Paper] approximates the var/clause
    counts of Table I; [`Small] keeps the same structure at a size where a
    whole 14-benchmark experiment finishes in seconds (the bench harness's
    default). *)

type scale = [ `Small | `Paper ]

type t = {
  id : string;  (** e.g. "AI3" *)
  domain : string;  (** e.g. "Artificial Intelligence" *)
  name : string;  (** e.g. "UF200-860" *)
  problems : int;  (** instances per benchmark in Table I *)
  generate : Stats.Rng.t -> scale -> Sat.Cnf.t;
  generate_weighted : (Stats.Rng.t -> scale -> Sat.Wcnf.t) option;
      (** Weighted-MaxSAT variant, for the benchmarks whose domain has a
          natural objective: graph colouring (soft extra edges) and block
          planning (soft move penalties).  [None] elsewhere. *)
}

val table1 : t list
(** GC1 GC2 GC3 CFA BP II IF1 IF2 CRY AI1 AI2 AI3 AI4 AI5, in Table I
    order. *)

val find : string -> t
(** Lookup by [id].  @raise Not_found. *)
