let generate rng ~nodes ~edges =
  if nodes < 3 then invalid_arg "Graph_coloring.generate: need 3 nodes";
  let hidden = Array.init nodes (fun i -> i mod 3) in
  Stats.Rng.shuffle rng (Array.init nodes Fun.id);
  (* sample distinct cross-colour edges *)
  let chosen = Hashtbl.create edges in
  let n_chosen = ref 0 in
  let guard = ref 0 in
  while !n_chosen < edges && !guard < edges * 1000 do
    incr guard;
    let u = Stats.Rng.int rng nodes and v = Stats.Rng.int rng nodes in
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && hidden.(u) <> hidden.(v) && not (Hashtbl.mem chosen (u, v)) then begin
      Hashtbl.replace chosen (u, v) ();
      incr n_chosen
    end
  done;
  if !n_chosen < edges then invalid_arg "Graph_coloring.generate: graph too dense";
  let var node colour = (node * 3) + colour in
  let clauses = ref [] in
  (* at least one colour *)
  for node = 0 to nodes - 1 do
    clauses :=
      Sat.Clause.make (List.init 3 (fun c -> Sat.Lit.pos (var node c))) :: !clauses
  done;
  (* at most one colour *)
  for node = 0 to nodes - 1 do
    for c1 = 0 to 2 do
      for c2 = c1 + 1 to 2 do
        clauses :=
          Sat.Clause.make [ Sat.Lit.neg_of (var node c1); Sat.Lit.neg_of (var node c2) ]
          :: !clauses
      done
    done
  done;
  (* adjacent nodes differ *)
  Hashtbl.iter
    (fun (u, v) () ->
      for c = 0 to 2 do
        clauses :=
          Sat.Clause.make [ Sat.Lit.neg_of (var u c); Sat.Lit.neg_of (var v c) ] :: !clauses
      done)
    chosen;
  Sat.Cnf.make ~num_vars:(nodes * 3) !clauses

let flat rng n = generate rng ~nodes:n ~edges:(int_of_float (2.394 *. float_of_int n))

(* weighted variant: the 3-colourable core stays hard, then extra random
   edges — sampled with no regard for the hidden colouring, so some are
   monochromatic under every proper colouring — become soft "endpoints
   differ" constraints with random weights.  The optimum is the cheapest
   set of soft edges any proper colouring must violate. *)
let weighted rng ~nodes ~edges ~soft_edges =
  let hard = generate rng ~nodes ~edges in
  let var node colour = (node * 3) + colour in
  let soft = ref [] in
  let added = ref 0 in
  let guard = ref 0 in
  while !added < soft_edges && !guard < soft_edges * 1000 do
    incr guard;
    let u = Stats.Rng.int rng nodes and v = Stats.Rng.int rng nodes in
    if u <> v then begin
      incr added;
      let w = 1 + Stats.Rng.int rng 4 in
      for c = 0 to 2 do
        soft :=
          (w, Sat.Clause.make [ Sat.Lit.neg_of (var u c); Sat.Lit.neg_of (var v c) ])
          :: !soft
      done
    end
  done;
  Sat.Wcnf.make ~num_vars:(Sat.Cnf.num_vars hard) ~hard:(Sat.Cnf.clauses hard)
    ~soft:(List.rev !soft)

let flat_weighted rng n =
  weighted rng ~nodes:n
    ~edges:(int_of_float (2.394 *. float_of_int n))
    ~soft_edges:(max 3 (n / 3))
