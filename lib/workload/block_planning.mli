(** Blocks-world planning as SAT (the SATLIB "blocksworld" family, paper's
    BP benchmark).

    A serial SATPLAN-style encoding: one boolean per (on-relation, step) and
    per (action, step), with frame axioms and mutual-exclusion clauses.  The
    hidden plan moves one block per step, so unit propagation from the fixed
    initial and goal states resolves most of the search — CDCL finishes in a
    handful of iterations, matching Table I's BP row (7 iterations). *)

val generate : Stats.Rng.t -> blocks:int -> steps:int -> Sat.Cnf.t
(** A solvable instance: restack [blocks] blocks from one random tower order
    to another reachable within [steps] single-block moves. *)

val generate_weighted : Stats.Rng.t -> blocks:int -> steps:int -> Sat.Wcnf.t
(** Weighted variant: the same (hard) plan constraints plus one soft
    "don't move" unit per possible action, weighted [steps - t] so earlier
    moves cost more — the optimum is a plan with the fewest, latest
    moves. *)
