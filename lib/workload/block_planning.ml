(* positions: block b is "on" slot p where p in [0..blocks] — slot `blocks`
   is the table.  State var on(b, p, t); action var move(b, p, t) meaning
   block b moves onto p between t and t+1. *)

let generate rng ~blocks ~steps =
  if blocks < 2 || steps < 1 then invalid_arg "Block_planning.generate";
  let places = blocks + 1 in
  (* indices *)
  let on b p t = (((t * blocks) + b) * places) + p in
  let n_on = (steps + 1) * blocks * places in
  let mv b p t = n_on + (((t * blocks) + b) * places) + p in
  let num_vars = n_on + (steps * blocks * places) in
  let clauses = ref [] in
  let emit lits = clauses := Sat.Clause.make lits :: !clauses in
  let p_ x = Sat.Lit.pos x and n_ x = Sat.Lit.neg_of x in
  (* a random initial tower and a random goal permutation of block stacking:
     states are "which block/table each block sits on"; we generate the goal
     by executing `steps` random single-block moves from the initial state so
     the instance is guaranteed solvable *)
  let table = blocks in
  let support = Array.init blocks (fun _ -> table) in
  (* clear b = no block sits on b *)
  let clear b = not (Array.exists (fun s -> s = b) support) in
  let initial = Array.copy support in
  for _ = 1 to steps do
    (* move a random clear block onto the table or another clear block *)
    let movable = List.filter clear (List.init blocks Fun.id) in
    match movable with
    | [] -> ()
    | _ ->
        let b = List.nth movable (Stats.Rng.int rng (List.length movable)) in
        let dests =
          table :: List.filter (fun d -> d <> b && clear d) (List.init blocks Fun.id)
        in
        support.(b) <- List.nth dests (Stats.Rng.int rng (List.length dests))
  done;
  let goal = support in
  (* initial & goal state units *)
  for b = 0 to blocks - 1 do
    emit [ p_ (on b initial.(b) 0) ];
    for p = 0 to places - 1 do
      if p <> initial.(b) then emit [ n_ (on b p 0) ]
    done;
    emit [ p_ (on b goal.(b) steps) ]
  done;
  for t = 0 to steps - 1 do
    for b = 0 to blocks - 1 do
      for p = 0 to places - 1 do
        (* effect: move(b,p,t) → on(b,p,t+1) *)
        emit [ n_ (mv b p t); p_ (on b p (t + 1)) ];
        (* precondition: target p clear (no other block on p), b clear *)
        if p <> table then
          for b' = 0 to blocks - 1 do
            if b' <> b then emit [ n_ (mv b p t); n_ (on b' p t) ]
          done;
        for b' = 0 to blocks - 1 do
          if b' <> b then emit [ n_ (mv b p t); n_ (on b' b t) ]
        done;
        (* frame: on(b,p,t) persists unless b moves away *)
        emit
          (n_ (on b p t) :: p_ (on b p (t + 1))
          :: List.filteri (fun q _ -> q <> p) (List.init places (fun q -> p_ (mv b q t))));
        (* change needs a move: ¬on(b,p,t) ∧ on(b,p,t+1) → move(b,p,t) *)
        emit [ p_ (on b p t); n_ (on b p (t + 1)); p_ (mv b p t) ]
      done;
      (* at most one destination per block per step *)
      for p1 = 0 to places - 1 do
        for p2 = p1 + 1 to places - 1 do
          emit [ n_ (mv b p1 t); n_ (mv b p2 t) ]
        done
      done
    done;
    (* at most one block moves per step (serial plan) *)
    for b1 = 0 to blocks - 1 do
      for b2 = b1 + 1 to blocks - 1 do
        for p1 = 0 to places - 1 do
          for p2 = 0 to places - 1 do
            emit [ n_ (mv b1 p1 t); n_ (mv b2 p2 t) ]
          done
        done
      done
    done
  done;
  (* each block on at most one place at any time *)
  for t = 0 to steps do
    for b = 0 to blocks - 1 do
      for p1 = 0 to places - 1 do
        for p2 = p1 + 1 to places - 1 do
          emit [ n_ (on b p1 t); n_ (on b p2 t) ]
        done
      done;
      emit (List.init places (fun p -> p_ (on b p t)))
    done
  done;
  let cnf = Sat.Cnf.make ~num_vars !clauses in
  let three, _ = Sat.Three_sat.convert cnf in
  three

(* weighted variant: the plan constraints stay hard, and each possible
   move gets a soft "don't" unit whose weight grows for earlier steps —
   the optimum plan defers (and minimises) its moves.  The 3-SAT
   conversion keeps original variables first, so the [mv] indices of
   [generate]'s encoding are valid in the converted formula. *)
let generate_weighted rng ~blocks ~steps =
  let three = generate rng ~blocks ~steps in
  let places = blocks + 1 in
  let n_on = (steps + 1) * blocks * places in
  let mv b p t = n_on + (((t * blocks) + b) * places) + p in
  let soft = ref [] in
  for t = steps - 1 downto 0 do
    for b = blocks - 1 downto 0 do
      for p = places - 1 downto 0 do
        soft := (steps - t, Sat.Clause.make [ Sat.Lit.neg_of (mv b p t) ]) :: !soft
      done
    done
  done;
  Sat.Wcnf.make ~num_vars:(Sat.Cnf.num_vars three) ~hard:(Sat.Cnf.clauses three)
    ~soft:!soft
