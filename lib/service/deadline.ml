type t = float (* absolute epoch seconds; infinity = no deadline *)

let none = infinity
let at t = t
let after s = Unix.gettimeofday () +. s
let expired t = t < infinity && Unix.gettimeofday () >= t
let remaining_s t = if t = infinity then infinity else t -. Unix.gettimeofday ()
let earliest a b = Float.min a b
