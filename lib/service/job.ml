type qa_policy = {
  backend : Anneal.Backend.spec;
  supervision : Anneal.Supervisor.policy;
  reads : int;
  domains : int;
}

let default_qa =
  {
    backend = Anneal.Backend.default_spec;
    supervision = Anneal.Supervisor.default_policy;
    reads = 1;
    domains = 1;
  }

type spec = {
  id : int;
  name : string;
  formula : Sat.Cnf.t;
  original : Sat.Cnf.t option;
  wcnf : Sat.Wcnf.t option;
  gap_limit : int;
  certify : bool;
  timeout_s : float option;
  max_iterations : int;
  retries : int;
  qa : qa_policy;
  seed : int;
}

let default_seed ~id =
  (* per-job base seeds must not collide *across jobs* once attempt
     reseeding (+7919·k) is applied: a shared constant made job i attempt
     k+1 equal job j attempt k.  1_000_003 is prime and not a multiple of
     7919, so two jobs' attempt sequences only meet when their ids differ
     by a multiple of 7919 — beyond any realistic retry count. *)
  20230225 + (1_000_003 * id)

let make ?name ?original ?wcnf ?(gap_limit = 0) ?(certify = false) ?timeout_s
    ?(max_iterations = max_int) ?(retries = 0) ?(qa = default_qa) ?seed ~id formula =
  let seed = match seed with Some s -> s | None -> default_seed ~id in
  let name = match name with Some n -> n | None -> Printf.sprintf "job-%d" id in
  if retries < 0 then invalid_arg "Job.make: retries < 0";
  if gap_limit < 0 then invalid_arg "Job.make: gap_limit < 0";
  (match original with
  | Some g when Sat.Cnf.num_vars g > Sat.Cnf.num_vars formula ->
      invalid_arg "Job.make: original has more variables than the formula solved"
  | _ -> ());
  {
    id;
    name;
    formula;
    original;
    wcnf;
    gap_limit;
    certify;
    timeout_s;
    max_iterations;
    retries;
    qa;
    seed;
  }

let optimize ?name ?gap_limit ?certify ?timeout_s ?max_iterations ?retries ?qa ?seed ~id w =
  make ?name ~wcnf:w ?gap_limit ?certify ?timeout_s ?max_iterations ?retries ?qa ?seed ~id
    (Sat.Wcnf.hard_cnf w)

let objective spec =
  match spec.wcnf with None -> Hyqsat.Solve.Decision | Some _ -> Hyqsat.Solve.Maximize

let original_formula spec = match spec.original with Some g -> g | None -> spec.formula

let deadline spec =
  match spec.timeout_s with None -> Deadline.none | Some s -> Deadline.after s

(* 7919 is the 1000th prime: attempt seeds stay far apart without colliding
   with the +1/+2 seed conventions used elsewhere in the suite *)
let attempt_seed spec k = spec.seed + (7919 * k)

type unknown_reason = Sat.Answer.reason =
  | Timeout
  | Budget
  | Cancelled
  | Cert_failed

type outcome = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of unknown_reason

let outcome_label = Sat.Answer.label
