type spec = {
  id : int;
  name : string;
  formula : Sat.Cnf.t;
  original : Sat.Cnf.t option;
  certify : bool;
  timeout_s : float option;
  max_iterations : int;
  retries : int;
  seed : int;
}

let make ?name ?original ?(certify = false) ?timeout_s ?(max_iterations = max_int)
    ?(retries = 0) ?(seed = 20230225) ~id formula =
  let name = match name with Some n -> n | None -> Printf.sprintf "job-%d" id in
  if retries < 0 then invalid_arg "Job.make: retries < 0";
  (match original with
  | Some g when Sat.Cnf.num_vars g > Sat.Cnf.num_vars formula ->
      invalid_arg "Job.make: original has more variables than the formula solved"
  | _ -> ());
  { id; name; formula; original; certify; timeout_s; max_iterations; retries; seed }

let original_formula spec = match spec.original with Some g -> g | None -> spec.formula

let deadline spec =
  match spec.timeout_s with None -> Deadline.none | Some s -> Deadline.after s

(* 7919 is the 1000th prime: attempt seeds stay far apart without colliding
   with the +1/+2 seed conventions used elsewhere in the suite *)
let attempt_seed spec k = spec.seed + (7919 * k)

type unknown_reason = Timeout | Budget | Cancelled | Cert_failed

type outcome = Sat of bool array | Unsat | Unknown of unknown_reason

let outcome_label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown Timeout -> "unknown:timeout"
  | Unknown Budget -> "unknown:budget"
  | Unknown Cancelled -> "unknown:cancelled"
  | Unknown Cert_failed -> "unknown:cert-failed"
