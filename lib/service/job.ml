type spec = {
  id : int;
  name : string;
  formula : Sat.Cnf.t;
  timeout_s : float option;
  max_iterations : int;
  retries : int;
  seed : int;
}

let make ?name ?timeout_s ?(max_iterations = max_int) ?(retries = 0) ?(seed = 20230225) ~id
    formula =
  let name = match name with Some n -> n | None -> Printf.sprintf "job-%d" id in
  if retries < 0 then invalid_arg "Job.make: retries < 0";
  { id; name; formula; timeout_s; max_iterations; retries; seed }

let deadline spec =
  match spec.timeout_s with None -> Deadline.none | Some s -> Deadline.after s

(* 7919 is the 1000th prime: attempt seeds stay far apart without colliding
   with the +1/+2 seed conventions used elsewhere in the suite *)
let attempt_seed spec k = spec.seed + (7919 * k)

type unknown_reason = Timeout | Budget | Cancelled
type outcome = Sat of bool array | Unsat | Unknown of unknown_reason

let outcome_label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown Timeout -> "unknown:timeout"
  | Unknown Budget -> "unknown:budget"
  | Unknown Cancelled -> "unknown:cancelled"
