type solve_stats = {
  result : Cdcl.Solver.result;
  iterations : int;
  qa_calls : int;
  qa_failures : int;
  qa_degraded : int;
  strategy_uses : int array;
  reused_clauses : int;
  learnts : Sat.Lit.t array list;
  proof : Sat.Drat.t option;
}

type member = {
  name : string;
  run :
    obs:Obs.Ctx.t ->
    parent:Obs.Span.t ->
    should_stop:(unit -> bool) ->
    max_iterations:int ->
    import:Sat.Lit.t array list ->
    Sat.Cnf.t ->
    solve_stats;
}

type member_report = {
  member : string;
  stats : solve_stats;
  time_s : float;
  cancelled : bool;
  error : string option;
}

type race_report = {
  winner : member_report option;
  members : member_report list;
  wall_time_s : float;
}

let member_names = [ "hybrid"; "hybrid-noisy"; "minisat"; "kissat"; "walksat" ]

let stats_of_report (r : Hyqsat.Hybrid_solver.report) =
  {
    result = r.Hyqsat.Hybrid_solver.result;
    iterations = r.Hyqsat.Hybrid_solver.iterations;
    qa_calls = r.Hyqsat.Hybrid_solver.qa_calls;
    qa_failures = r.Hyqsat.Hybrid_solver.qa_failures;
    qa_degraded = r.Hyqsat.Hybrid_solver.qa_degraded;
    strategy_uses = Array.copy r.Hyqsat.Hybrid_solver.strategy_uses;
    reused_clauses = r.Hyqsat.Hybrid_solver.reused_clauses;
    learnts = r.Hyqsat.Hybrid_solver.learnts;
    proof = r.Hyqsat.Hybrid_solver.proof;
  }

let hybrid_member ?supervisor ?embed_cache ~name ~base ~grid ~seed ~log_proof ~qa () =
  {
    name;
    run =
      (fun ~obs ~parent ~should_stop ~max_iterations ~import f ->
        let cdcl = base.Hyqsat.Hybrid_solver.cdcl in
        let config =
          Hyqsat.Hybrid_solver.make_config ~base
            ~graph:
              (if grid = 16 then base.Hyqsat.Hybrid_solver.graph
               else Chimera.Graph.create ~rows:grid ~cols:grid)
            ~cdcl:(if log_proof then Cdcl.Config.with_proof_logging cdcl else cdcl)
            ~qa_reads:qa.Job.reads ~qa_domains:qa.Job.domains
            ~backend:(Anneal.Backend.of_spec qa.Job.backend)
            ~supervisor:qa.Job.supervision ~seed ()
        in
        stats_of_report
          (Hyqsat.Solve.run ?supervisor ?embed_cache ~max_iterations ~should_stop ~obs
             ~parent ~import (Hyqsat.Solve.Hybrid config) f));
  }

let classic_member ~name ~base ~seed ~log_proof =
  {
    name;
    run =
      (fun ~obs ~parent ~should_stop ~max_iterations ~import f ->
        let config = Cdcl.Config.with_seed seed base in
        let config = if log_proof then Cdcl.Config.with_proof_logging config else config in
        stats_of_report
          (Hyqsat.Solve.run ~max_iterations ~should_stop ~obs ~parent ~import
             (Hyqsat.Solve.Classic config) f));
  }

let walksat_member ~seed =
  {
    name = "walksat";
    run =
      (fun ~obs ~parent:_ ~should_stop ~max_iterations ~import:_ f ->
        (* local search has no clause database to seed *)
        let rng = Stats.Rng.create ~seed in
        (* one flip ≈ one iteration; split the budget over a few restarts *)
        let max_flips = max 1_000 (min 200_000 (max_iterations / 4)) in
        let model, st = Cdcl.Walksat.solve ~max_flips ~restarts:64 ~should_stop rng f in
        Obs.Metrics.count obs "walksat_flips_total" st.Cdcl.Walksat.flips;
        let result =
          match model with
          | Some m -> Cdcl.Solver.Sat m
          | None ->
              Cdcl.Solver.Unknown
                (if should_stop () then Sat.Answer.Cancelled else Sat.Answer.Budget)
        in
        {
          result;
          iterations = st.Cdcl.Walksat.flips;
          qa_calls = 0;
          qa_failures = 0;
          qa_degraded = 0;
          strategy_uses = Array.make 4 0;
          reused_clauses = 0;
          learnts = [];
          proof = None;
        });
  }

let make_member ?(grid = 16) ?(log_proof = false) ?(qa = Job.default_qa) ?supervisor
    ?embed_cache ~seed = function
  | "hybrid" ->
      hybrid_member ?supervisor ?embed_cache ~name:"hybrid"
        ~base:Hyqsat.Hybrid_solver.default_config ~grid ~seed ~log_proof ~qa ()
  | "hybrid-noisy" ->
      hybrid_member ?supervisor ?embed_cache ~name:"hybrid-noisy"
        ~base:Hyqsat.Hybrid_solver.noisy_config ~grid ~seed:(seed + 1) ~log_proof ~qa ()
  | "minisat" ->
      classic_member ~name:"minisat" ~base:Cdcl.Config.minisat_like ~seed:(seed + 2) ~log_proof
  | "kissat" ->
      classic_member ~name:"kissat" ~base:Cdcl.Config.kissat_like ~seed:(seed + 3) ~log_proof
  | "walksat" -> walksat_member ~seed:(seed + 4)
  | name -> invalid_arg (Printf.sprintf "Portfolio: unknown member %S" name)

let members_named ?grid ?log_proof ?qa ?supervisor ?embed_cache ~seed names =
  List.map (make_member ?grid ?log_proof ?qa ?supervisor ?embed_cache ~seed) names

let default_members ?grid ?log_proof ?qa ?supervisor ~seed () =
  members_named ?grid ?log_proof ?qa ?supervisor ~seed member_names

(* same base config, same seed, one member per backend flavor: the race is
   across devices, not across solver randomisations — any flavor winning
   yields the same answer, so this measures device speed under faults *)
let backend_race_members ?(grid = 16) ?(log_proof = false) ?(qa = Job.default_qa) ~seed () =
  List.map
    (fun flavor ->
      let backend = { qa.Job.backend with Anneal.Backend.flavor } in
      hybrid_member
        ~name:("hybrid:" ^ Anneal.Backend.flavor_label flavor)
        ~base:Hyqsat.Hybrid_solver.default_config ~grid ~seed ~log_proof
        ~qa:{ qa with Job.backend } ())
    [ `Incremental; `Reference; `Best_of ]

let is_decisive = function Cdcl.Solver.Sat _ | Cdcl.Solver.Unsat -> true | Cdcl.Solver.Unknown _ -> false

let race ?(deadline = Deadline.none) ?(cancel = fun () -> false) ?(max_iterations = max_int)
    ?(obs = Obs.Ctx.null) ?(parent = Obs.Span.none) ?(import = []) members f =
  if members = [] then invalid_arg "Portfolio.race: no members";
  let traced = not (Obs.Ctx.is_null obs) in
  let race_span =
    if traced then Obs.Span.start obs ~parent "race" else Obs.Span.none
  in
  let t_start = Unix.gettimeofday () in
  let race_cancel = Atomic.make false in
  let winner_idx = Atomic.make (-1) in
  let should_stop () = Atomic.get race_cancel || cancel () || Deadline.expired deadline in
  let run_one i m =
    let span =
      if traced then
        Obs.Span.start obs ~parent:race_span ~attrs:[ ("name", m.name) ] "member"
      else Obs.Span.none
    in
    let t0 = Unix.gettimeofday () in
    (* a raising member must not poison the race: without the handler the
       exception would resurface from Domain.join, losing every sibling
       report and any winner already found *)
    match m.run ~obs ~parent:span ~should_stop ~max_iterations ~import f with
    | stats ->
        let time_s = Unix.gettimeofday () -. t0 in
        if is_decisive stats.result && Atomic.compare_and_set winner_idx (-1) i then
          Atomic.set race_cancel true;
        let cancelled = (not (is_decisive stats.result)) && Atomic.get race_cancel in
        if traced then begin
          Obs.Span.add_attr span "result" (Sat.Answer.label stats.result);
          if cancelled then Obs.Span.add_attr span "cancelled" "true";
          Obs.Span.stop span
        end;
        { member = m.name; stats; time_s; cancelled; error = None }
    | exception e ->
        let time_s = Unix.gettimeofday () -. t0 in
        if traced then begin
          Obs.Span.add_attr span "error" (Printexc.to_string e);
          Obs.Span.stop span
        end;
        let stats =
          {
            result = Cdcl.Solver.Unknown Sat.Answer.Budget;
            iterations = 0;
            qa_calls = 0;
            qa_failures = 0;
            qa_degraded = 0;
            strategy_uses = Array.make 4 0;
            reused_clauses = 0;
            learnts = [];
            proof = None;
          }
        in
        { member = m.name; stats; time_s; cancelled = false; error = Some (Printexc.to_string e) }
  in
  let reports =
    match members with
    | [ m ] -> [ run_one 0 m ]
    | _ ->
        let domains =
          List.mapi (fun i m -> Domain.spawn (fun () -> run_one i m)) members
        in
        List.map Domain.join domains
  in
  let winner =
    match Atomic.get winner_idx with -1 -> None | i -> Some (List.nth reports i)
  in
  if traced then begin
    (match winner with
    | Some w -> Obs.Span.add_attr race_span "winner" w.member
    | None -> ());
    Obs.Span.stop race_span
  end;
  { winner; members = reports; wall_time_s = Unix.gettimeofday () -. t_start }

let race_learnts ?(max_clauses = 512) report =
  (* winner's clauses first: they come from the solver that actually
     decided the instance, so they are the most valuable to reuse *)
  let ordered =
    match report.winner with
    | Some w -> w :: List.filter (fun m -> m != w) report.members
    | None -> report.members
  in
  let seen = Hashtbl.create 128 in
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          if !count < max_clauses then begin
            (* dedupe up to literal order: members export the same clause
               with different watched-literal front positions *)
            let key = List.sort compare (Array.to_list c) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              out := c :: !out;
              incr count
            end
          end)
        m.stats.learnts)
    ordered;
  List.rev !out
