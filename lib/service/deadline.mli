(** Wall-clock deadlines for solver jobs.

    A deadline is an absolute point in time (from [Unix.gettimeofday]); jobs
    and portfolio racers poll {!expired} cooperatively.  [none] never
    expires.  Checking costs one [gettimeofday] call (~25 ns), cheap enough
    to fold into a cancellation callback polled every few solver steps. *)

type t

val none : t
(** Never expires. *)

val after : float -> t
(** [after s] expires [s] seconds from now.  [s <= 0] is already expired. *)

val at : float -> t
(** Absolute epoch seconds. *)

val expired : t -> bool

val remaining_s : t -> float
(** Seconds until expiry; negative once past, [infinity] for {!none}. *)

val earliest : t -> t -> t
(** The tighter of two deadlines. *)
