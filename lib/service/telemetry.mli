(** Per-job run telemetry and service-level aggregation.

    Every job the batch service executes emits one {!record}; a finished
    run aggregates them into a {!summary}.  Both serialise to a JSON
    document (self-contained emitter/parser — the container has no JSON
    library) that round-trips through {!of_json_string}, and pretty-print
    as an aligned table for interactive use. *)

type record = {
  job_id : int;
  job_name : string;
  outcome : string;  (** {!Job.outcome_label} string *)
  verified : string;
      (** certification verdict: ["model"] (Sat model checked against the
          original formula), ["proof"] (Unsat DRAT proof checked),
          ["failed: <why>"], or [""] when certification was off or there
          was nothing to certify *)
  winner : string;  (** portfolio member that answered first; [""] if none *)
  attempts : int;  (** 1 + retries actually used *)
  queue_wait_s : float;  (** enqueue → worker pickup *)
  solve_time_s : float;  (** worker pickup → answer, all attempts *)
  iterations : int;  (** winner's CDCL iterations (max over members if none) *)
  qa_calls : int;  (** winner's successful annealer calls *)
  qa_failures : int;
      (** winner's failed supervised QA attempts (incl. breaker fast-fails) *)
  degraded : int;
      (** winner's warm-up iterations that fell back to pure CDCL *)
  strategy_uses : int array;  (** length 4, winner's strategy-1..4 uses *)
  warm_start : bool;
      (** the solve started from a reused clause pool (batch warm-start or
          daemon session mode) *)
  reused_clauses : int;
      (** winner's count of imported clauses actually installed *)
  cost : int;
      (** optimisation jobs: best model cost found ({!Hyqsat.Optimize});
          [-1] for decision jobs (and for v4-and-older documents) *)
  lower_bound : int;
      (** optimisation jobs: proven lower bound on the optimum — equal to
          [cost] iff the answer is certified optimal; [-1] for decision
          jobs *)
}

type summary = {
  jobs : int;
  sat : int;
  unsat : int;
  unknown : int;
  workers : int;
  wall_time_s : float;  (** submit of first job → last result *)
  total_solve_s : float;  (** Σ solve_time — CPU the pool actually spent *)
  max_solve_s : float;
  mean_queue_wait_s : float;
  throughput_jps : float;  (** jobs / wall_time *)
}

val summarize : workers:int -> wall_time_s:float -> record list -> summary

(** {2 JSON values}

    The service's self-contained JSON layer (the container has no JSON
    library).  Exposed so other subsystems speaking the telemetry schema —
    notably the [Server] wire protocol — reuse one emitter/parser instead
    of growing their own. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val json_to_string : json -> string
(** Compact rendering; floats print with enough digits to round-trip. *)

val parse_json : string -> json
(** @raise Parse_error on malformed input (with a byte offset). *)

(** Accessors used by schema readers; all raise {!Parse_error} on a kind
    mismatch.  [field] raises when the key is missing — use
    [List.assoc_opt] on {!as_obj} for optional fields. *)

val field : (string * json) list -> string -> json
val as_int : json -> int
val as_num : json -> float
val as_str : json -> string
val as_obj : json -> (string * json) list
val as_arr : json -> json list

val json_of_record : record -> json
(** The schema-v{!schema_version} object shape of one record, exactly as
    embedded in {!to_json_string}'s [jobs] array. *)

val record_of_json : json -> record
(** Inverse of {!json_of_record}; tolerates objects from every older
    version (absent [verified] = [""], absent [qa_failures]/[degraded] =
    0, absent [cost]/[lower_bound] = -1).
    @raise Parse_error on malformed input. *)

(** {2 JSON documents} *)

val schema_version : int
(** Version of the emitted document shape (currently 5: added the
    optimisation fields [cost]/[lower_bound], absent = -1 on read).
    Version 1 documents predate the [schema_version] field. *)

val to_json_string : summary -> record list -> string
(** One JSON object
    [{"schema_version": N, "summary": {...}, "jobs": [...]}] with that
    fixed field order.  Floats are printed with enough digits to
    round-trip exactly. *)

val of_json_string : string -> (summary * record list, string) result
(** Inverse of {!to_json_string}; [Error msg] on malformed input.
    Accepts documents without [schema_version] (version 1) as well as any
    version up to {!schema_version}; newer versions are rejected rather
    than misread. *)

(** {2 Pretty-printing} *)

val pp_table : Format.formatter -> record list -> unit
val pp_summary : Format.formatter -> summary -> unit
