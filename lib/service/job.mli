(** Solver jobs: one DIMACS instance plus its solving policy.

    A job is the unit of work the batch service schedules onto the worker
    pool.  Besides the formula it carries a wall-clock timeout (measured
    from the moment a worker starts it, not from enqueue), a step budget,
    and a bounded retry policy: an [Unknown] outcome (budget exhausted)
    is retried with a reseeded solver as long as attempts and deadline
    remain.

    When the input was 3-SAT-converted before solving, [original] keeps
    the pre-conversion formula: models are projected back to it before
    being reported, and [certify] checks answers against it (models) or
    the solved formula (DRAT proofs) before they leave the service. *)

type qa_policy = {
  backend : Anneal.Backend.spec;  (** which annealer device, with faults *)
  supervision : Anneal.Supervisor.policy;  (** deadline/retry/breaker *)
  reads : int;  (** annealer samples per QA call *)
  domains : int;  (** OCaml domains fanning the reads *)
}
(** The annealer policy hybrid members solve the job under.  Serialisable
    by construction (backend is a {!Anneal.Backend.spec}, not a closure)
    so specs can travel to worker domains and into telemetry. *)

val default_qa : qa_policy
(** Fault-free best-of backend, default supervision, single-shot reads. *)

type spec = {
  id : int;  (** caller-chosen, reported back in telemetry *)
  name : string;  (** display name, e.g. the CNF path *)
  formula : Sat.Cnf.t;  (** what the solvers run on (post-conversion) *)
  original : Sat.Cnf.t option;
      (** pre-conversion formula, when different from [formula]; its
          variables must be a prefix of [formula]'s
          (the {!Sat.Three_sat.convert} layout) *)
  wcnf : Sat.Wcnf.t option;
      (** [Some w] makes this an optimisation job: the worker runs the
          exact weighted-MaxSAT pipeline ({!Hyqsat.Solve.optimize}) on [w]
          instead of racing a decision portfolio on [formula].  [formula]
          still carries [w]'s hard clauses so warm-start keying and
          admission sizing keep working unchanged *)
  gap_limit : int;
      (** optimisation jobs: stop once [best_cost - lower_bound <= gap];
          0 (the default) demands a proven optimum *)
  certify : bool;  (** model-check Sat / proof-check Unsat before reporting;
          optimisation jobs certify cost and optimality
          ({!Check.Certify.certify_opt}) instead *)
  timeout_s : float option;  (** per-job wall-clock deadline; [None] = none *)
  max_iterations : int;  (** CDCL step budget per attempt *)
  retries : int;  (** extra attempts after an [Unknown] (0 = single shot) *)
  qa : qa_policy;  (** annealer backend/supervision for hybrid members *)
  seed : int;  (** base seed; attempt [k] reseeds with [seed + 7919·k] *)
}

val make :
  ?name:string ->
  ?original:Sat.Cnf.t ->
  ?wcnf:Sat.Wcnf.t ->
  ?gap_limit:int ->
  ?certify:bool ->
  ?timeout_s:float ->
  ?max_iterations:int ->
  ?retries:int ->
  ?qa:qa_policy ->
  ?seed:int ->
  id:int ->
  Sat.Cnf.t ->
  spec
(** Defaults: [name] = ["job-<id>"], no original (the formula is solved
    as-is), no [wcnf] (a decision job), [gap_limit] = 0, [certify] =
    [false], no timeout, [max_iterations] = [max_int],
    [retries] = 0, [qa] = {!default_qa}.  The default [seed] is derived from [id] so that two
    jobs in the same batch never share an attempt-seed sequence (a shared
    constant default made job [i] attempt [k+1] collide with job [i+1]
    attempt [k]). *)

val optimize :
  ?name:string ->
  ?gap_limit:int ->
  ?certify:bool ->
  ?timeout_s:float ->
  ?max_iterations:int ->
  ?retries:int ->
  ?qa:qa_policy ->
  ?seed:int ->
  id:int ->
  Sat.Wcnf.t ->
  spec
(** An optimisation job over a weighted formula: {!make} with [wcnf] set
    and [formula] = the hard clauses of [w] (so size-based admission and
    warm-start keying see the decision core of the instance). *)

val objective : spec -> Hyqsat.Solve.objective
(** [Maximize] iff the spec carries a [wcnf]. *)

val original_formula : spec -> Sat.Cnf.t
(** The formula answers are reported against: [original] if present,
    otherwise [formula]. *)

val deadline : spec -> Deadline.t
(** The job's deadline anchored at the current instant (call it when the
    job starts running). *)

val attempt_seed : spec -> int -> int
(** [attempt_seed spec k] is the reseeded base for attempt [k] (0-based). *)

(** Why a job ended without a definite answer (= {!Sat.Answer.reason}).
    [Cert_failed] means a solver claimed Sat/Unsat but the certification
    check rejected the claim — the answer is withheld rather than
    reported wrong. *)
type unknown_reason = Sat.Answer.reason =
  | Timeout
  | Budget
  | Cancelled
  | Cert_failed

(** = {!Sat.Answer.t}: job outcomes share their constructors with
    [Cdcl.Solver.result], so batch code moves solver answers into
    outcomes without conversion. *)
type outcome = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of unknown_reason

val outcome_label : outcome -> string
(** ["sat"], ["unsat"], ["unknown:timeout"], ["unknown:budget"],
    ["unknown:cancelled"], ["unknown:cert-failed"] — the stable strings
    used in telemetry. *)
