(** Portfolio racing: run diverse solver configurations on the same
    formula in parallel domains and keep the first definite answer.

    Each member receives a [should_stop] callback combining the shared
    race-cancel flag (set by the first member to answer Sat/Unsat) with the
    job deadline; the cancellation contract of {!Cdcl.Solver.set_terminate}
    / {!Hyqsat.Hybrid_solver.solve} guarantees losers return within ~128
    solver steps of the flag flipping. *)

type solve_stats = {
  result : Cdcl.Solver.result;  (** = {!Sat.Answer.t} (shared constructors) *)
  iterations : int;
  qa_calls : int;
  qa_failures : int;  (** failed supervised QA attempts, incl. fast-fails *)
  qa_degraded : int;  (** warm-up iterations degraded to pure CDCL *)
  strategy_uses : int array;  (** length 4; zeros for classical members *)
  reused_clauses : int;
      (** clauses installed from the race's [import] list (0 for walksat) *)
  learnts : Sat.Lit.t array list;
      (** the member's {!Cdcl.Solver.export_learnts} snapshot at race end:
          root facts + its most active short learnt clauses ([[]] for
          walksat).  Sound implicates of the raced formula — feed them to
          {!race}'s [import] on the next solve of the same formula. *)
  proof : Sat.Drat.t option;
      (** DRAT derivation, present when the member ran with proof logging
          ([log_proof] below); [None] for walksat *)
}

type member = {
  name : string;
  run :
    obs:Obs.Ctx.t ->
    parent:Obs.Span.t ->
    should_stop:(unit -> bool) ->
    max_iterations:int ->
    import:Sat.Lit.t array list ->
    Sat.Cnf.t ->
    solve_stats;
      (** [obs]/[parent] thread the race's observability context into the
          member's solve (pass {!Obs.Ctx.null} / {!Obs.Span.none} when
          untraced — the race does this automatically); [import] is a
          warm-start clause list the member may install before searching
          (members without a clause database ignore it) *)
}

type member_report = {
  member : string;
  stats : solve_stats;
  time_s : float;
  cancelled : bool;  (** returned [Unknown] after the race was decided *)
  error : string option;
      (** [Some exn] when the member raised; its result is forced to
          [Unknown] and the race carries on with the other members *)
}

type race_report = {
  winner : member_report option;  (** first member to answer Sat/Unsat *)
  members : member_report list;  (** input order, winner included *)
  wall_time_s : float;
}

val member_names : string list
(** The stock portfolio: ["hybrid"; "hybrid-noisy"; "minisat"; "kissat";
    "walksat"]. *)

val default_members :
  ?grid:int ->
  ?log_proof:bool ->
  ?qa:Job.qa_policy ->
  ?supervisor:Anneal.Supervisor.t ->
  seed:int ->
  unit ->
  member list
(** All stock members, solver RNGs derived from [seed].  [grid] sizes the
    simulated Chimera topology for the hybrid members (default 16 =
    D-Wave 2000Q).  [log_proof] (default [false]) makes the CDCL-backed
    members record DRAT derivations so Unsat answers are checkable.
    [qa] (default {!Job.default_qa}) is the annealer policy of the hybrid
    members: backend + faults, supervision, and best-of-k reads fanned
    over that many domains — mind the domain product with the pool and
    race layers.  [supervisor] makes the hybrid members go through that
    shared (domain-safe) supervised device instead of building a private
    one per solve — the server dispatcher passes its per-pool instance so
    one circuit breaker protects the backend across every job. *)

val members_named :
  ?grid:int ->
  ?log_proof:bool ->
  ?qa:Job.qa_policy ->
  ?supervisor:Anneal.Supervisor.t ->
  ?embed_cache:Hyqsat.Frontend.cache ->
  seed:int ->
  string list ->
  member list
(** Subset of the stock portfolio by name.  [embed_cache] hands the hybrid
    members a persistent embedding cache ({!Hyqsat.Frontend.cache}) so a
    stream of structurally similar instances skips re-embedding; the cache
    is {e not} domain-safe, so only pass it to single-member (solo)
    selections or otherwise guarantee exclusive use — the server dispatcher
    leases it per session with a mutex.
    @raise Invalid_argument on an unknown name. *)

val backend_race_members :
  ?grid:int -> ?log_proof:bool -> ?qa:Job.qa_policy -> seed:int -> unit -> member list
(** One ["hybrid:<flavor>"] member per {!Anneal.Backend.flavor}, all with
    the {e same} base config and seed — racing the same solve instance
    across devices rather than across randomisations.  The simulator
    backends are answer-equivalent for a given seed, so the race measures
    which device (under [qa.backend.faults] and [qa.supervision]) decides
    first; the winner's answer is the answer any of them would give. *)

val race :
  ?deadline:Deadline.t ->
  ?cancel:(unit -> bool) ->
  ?max_iterations:int ->
  ?obs:Obs.Ctx.t ->
  ?parent:Obs.Span.t ->
  ?import:Sat.Lit.t array list ->
  member list ->
  Sat.Cnf.t ->
  race_report
(** Race the members on [f]: one domain per member (run inline when there
    is exactly one), first Sat/Unsat answer cancels the rest.  [cancel] is
    an external kill switch folded into every member's [should_stop] —
    the drain path flips it to stop in-flight races within ~128 solver
    steps without waiting for their deadlines.  All members
    are joined before returning, so the report is complete.  A member that
    raises is reported with [error = Some _] and result [Unknown] instead
    of propagating from [Domain.join] — sibling reports and a winner found
    by another member survive.

    With a live [obs], the race emits a ["race"] span (attr [winner]) with
    one ["member"] child per member — attrs [name], [result], and
    [cancelled]/[error] as applicable — each passed down as the parent of
    that member's own solve spans.  {!Obs.Ctx.t} is domain-safe, so
    members emit concurrently.

    [import] (default [[]]) warm-starts every CDCL-backed member with the
    given clause list — only sound when each clause is an implicate of
    [f], e.g. {!race_learnts} of a previous race on the {e same} formula.
    Proof-logging members refuse the import and report [reused_clauses=0].
    @raise Invalid_argument on an empty member list. *)

val race_learnts : ?max_clauses:int -> race_report -> Sat.Lit.t array list
(** Merge the members' exported learnt clauses — winner's first, then the
    others', deduplicated (up to literal order), capped at [max_clauses]
    (default 512).  Every clause is an implicate of the raced formula, so
    the list is a sound [import] for another solve of that formula. *)
