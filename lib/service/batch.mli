(** Batch solving service: schedule {!Job.spec}s onto a {!Pool} of worker
    domains, each job solved by a (possibly 1-member) {!Portfolio} race
    under its deadline, with bounded reseeding retries and full
    {!Telemetry}.

    Results come back in submission order regardless of worker count, and
    per-job outcomes depend only on the job's seeds — never on scheduling —
    so a batch is reproducible at any [workers] setting. *)

module Warm : sig
  type t
  (** a warm-start pool: learnt clauses keyed by formula structure.
      Thread-safe; shared across the batch's worker domains. *)

  val create : unit -> t
end

type job_result = {
  spec : Job.spec;
  outcome : Job.outcome;
  record : Telemetry.record;
  race : Portfolio.race_report;  (** last attempt's full race detail *)
}

val run :
  ?workers:int ->
  ?obs:Obs.Ctx.t ->
  ?cancel:(unit -> bool) ->
  ?warm_start:bool ->
  members:(spec:Job.spec -> seed:int -> Portfolio.member list) ->
  Job.spec list ->
  Telemetry.summary * job_result list
(** [run ~workers ~members jobs] solves every job and returns the
    aggregated summary plus per-job results in input order.

    [cancel] is an external kill switch (the CLI wires SIGINT/SIGTERM to
    it): once it returns [true], in-flight races stop cooperatively within
    ~128 solver steps and report [Unknown Cancelled], no further retries
    are attempted, and the batch still returns normally with full
    telemetry — nothing dies mid-write.

    With [warm_start] (default [false]) the batch keeps a shared pool of
    learnt clauses keyed by formula structure: when a later job presents a
    formula equal to one already solved, the race's members start from the
    clauses the earlier race learnt (each member imports them into its
    solver before solving — see {!Portfolio.race}'s [import]).  Reuse is
    gated on formula equality, so it never changes an answer, only the
    work needed to reach it; the record's [warm_start] / [reused_clauses]
    telemetry fields say when it happened.  Independently of the pool,
    retry attempts of a single job always re-import what the failed
    attempt learnt.

    With a live [obs] the batch emits one ["batch"] root span containing a
    ["job"] span per job (attrs [id], [name], [worker], [outcome]), each
    containing one ["attempt"] span per portfolio race (so retries are
    visible), which in turn parents the race/member/solve spans.  The
    [jobs_total{outcome=...}] counters aggregate final outcomes.

    [members ~spec ~seed] builds the portfolio for one attempt of [spec]
    (so it can honour the job's {!Job.qa_policy}); retries call it again
    with {!Job.attempt_seed} so every attempt searches differently.
    [workers] defaults to 1 and counts {e concurrent jobs}: the pool spawns
    [workers - 1] domains and the calling domain helps execute the batch
    ({!Pool.run}), so [workers = 1] runs everything inline with no domain
    spawned at all.  A worker exception is re-raised after the batch
    completes (a raising portfolio member is absorbed by the race itself —
    see {!Portfolio.race}).

    Sat models are projected back to the job's original variable space
    ({!Job.original_formula}) before being reported.  When the job has
    [certify] set, the winner is checked first — the Sat model against the
    original formula, the Unsat DRAT proof against the solved formula (the
    members must run with [log_proof] for a proof to exist) — and a claim
    the checker rejects comes back as [Unknown Cert_failed] with the
    reason in the record's [verified] field.

    A spec carrying a [wcnf] is an {e optimisation job}: instead of racing
    [members], the worker runs the exact weighted-MaxSAT pipeline
    ({!Hyqsat.Solve.optimize}, seeded with the spec's attempt-0 seed,
    bounded by its timeout/budget and [gap_limit]) and reports
    [Sat model] / [Unsat] / [Unknown] through the same shapes, with the
    record's [cost]/[lower_bound] fields filled (decision jobs write -1).
    [certify] then means {!Check.Certify.certify_opt}: cost re-check plus
    an independent optimality re-solve. *)

val solo :
  ?grid:int ->
  ?log_proof:bool ->
  ?supervisor:Anneal.Supervisor.t ->
  ?embed_cache:Hyqsat.Frontend.cache ->
  string ->
  spec:Job.spec ->
  seed:int ->
  Portfolio.member list
(** [solo name] is a 1-member portfolio — the degenerate race used for
    plain batch solving ([--jobs] without [--portfolio]).  Partially
    applied ([solo "minisat"]) it has exactly the [members] closure shape
    {!run} expects, picking up each job's QA policy from its spec.
    [supervisor] and [embed_cache] are the
    shared-state options of {!Portfolio.members_named}; the single-member
    shape makes [embed_cache] safe here (no sibling domains). *)

val process :
  ?cancel:(unit -> bool) ->
  ?warm:Warm.t ->
  members:(spec:Job.spec -> seed:int -> Portfolio.member list) ->
  obs:Obs.Ctx.t ->
  parent:Obs.Span.t ->
  Job.spec ->
  enqueued_at:float ->
  unit ->
  job_result
(** Solve one spec synchronously — the per-job step {!run} schedules onto
    its pool, exposed for services that own their own scheduling (the
    server dispatcher).  Runs the full attempt/retry/certify pipeline and
    returns the same {!job_result} a batch would record;
    [enqueued_at] (absolute epoch seconds) anchors the record's
    [queue_wait_s].  [warm] taps the job into a shared {!Warm.t} pool
    (consult before solving, deposit after) — the dispatcher uses one pool
    per server session. *)
