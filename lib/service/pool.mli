(** Re-export of {!Parallel.Pool}, the fixed-size Domain worker pool.

    The implementation moved to [lib/parallel] so the annealer's
    domain-parallel reads and the service batch layer share one pool; see
    {!Parallel.Pool} for the full contract. *)

include module type of Parallel.Pool
