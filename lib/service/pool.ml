(* The worker pool now lives in [lib/parallel] so that lower layers (the
   annealer's domain-parallel best-of-k reads) can share the machinery
   without depending on the service stack.  Re-exported here so service
   code and its callers keep their [Pool] spelling. *)
include Parallel.Pool
