type record = {
  job_id : int;
  job_name : string;
  outcome : string;
  verified : string;
  winner : string;
  attempts : int;
  queue_wait_s : float;
  solve_time_s : float;
  iterations : int;
  qa_calls : int;
  qa_failures : int;
  degraded : int;
  strategy_uses : int array;
  warm_start : bool;
  reused_clauses : int;
  cost : int;
  lower_bound : int;
}

type summary = {
  jobs : int;
  sat : int;
  unsat : int;
  unknown : int;
  workers : int;
  wall_time_s : float;
  total_solve_s : float;
  max_solve_s : float;
  mean_queue_wait_s : float;
  throughput_jps : float;
}

let summarize ~workers ~wall_time_s records =
  let count p = List.length (List.filter p records) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0. records in
  let jobs = List.length records in
  {
    jobs;
    sat = count (fun r -> r.outcome = "sat");
    unsat = count (fun r -> r.outcome = "unsat");
    unknown = count (fun r -> String.length r.outcome >= 7 && String.sub r.outcome 0 7 = "unknown");
    workers;
    wall_time_s;
    total_solve_s = sum (fun r -> r.solve_time_s);
    max_solve_s = List.fold_left (fun acc r -> Float.max acc r.solve_time_s) 0. records;
    mean_queue_wait_s = (if jobs = 0 then 0. else sum (fun r -> r.queue_wait_s) /. float_of_int jobs);
    throughput_jps = (if wall_time_s > 0. then float_of_int jobs /. wall_time_s else 0.);
  }

(* ------------------------------------------------------------------ *)
(* JSON — minimal emitter and recursive-descent parser; the only shapes
   we need are the two documents above, but the value type is generic so
   the parser stays simple and total *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let buf_add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* %.17g round-trips any float exactly; trim to %g when that already does *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    let short = Printf.sprintf "%.12g" x in
    if float_of_string short = x then short else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num x -> Buffer.add_string buf (float_repr x)
  | Str s ->
      Buffer.add_char buf '"';
      buf_add_escaped buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          buf_add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  emit buf j;
  Buffer.contents buf

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf c =
    (* encode a \uXXXX code point (BMP only — all our emitter produces) *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let c = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
               pos := !pos + 4;
               utf8_of_code buf c
           | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let span = String.sub s start (!pos - start) in
    match int_of_string_opt span with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt span with
        | Some x -> Num x
        | None -> fail (Printf.sprintf "bad number %S" span))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* document shape *)

let json_of_record r =
  Obj
    [
      ("job_id", Int r.job_id);
      ("job_name", Str r.job_name);
      ("outcome", Str r.outcome);
      ("verified", Str r.verified);
      ("winner", Str r.winner);
      ("attempts", Int r.attempts);
      ("queue_wait_s", Num r.queue_wait_s);
      ("solve_time_s", Num r.solve_time_s);
      ("iterations", Int r.iterations);
      ("qa_calls", Int r.qa_calls);
      ("qa_failures", Int r.qa_failures);
      ("degraded", Int r.degraded);
      ("strategy_uses", Arr (Array.to_list (Array.map (fun k -> Int k) r.strategy_uses)));
      ("warm_start", Bool r.warm_start);
      ("reused_clauses", Int r.reused_clauses);
      ("cost", Int r.cost);
      ("lower_bound", Int r.lower_bound);
    ]

let json_of_summary s =
  Obj
    [
      ("jobs", Int s.jobs);
      ("sat", Int s.sat);
      ("unsat", Int s.unsat);
      ("unknown", Int s.unknown);
      ("workers", Int s.workers);
      ("wall_time_s", Num s.wall_time_s);
      ("total_solve_s", Num s.total_solve_s);
      ("max_solve_s", Num s.max_solve_s);
      ("mean_queue_wait_s", Num s.mean_queue_wait_s);
      ("throughput_jps", Num s.throughput_jps);
    ]

(* bumped whenever the document shape changes; version 1 documents had no
   [schema_version] field, so the parser treats absence as 1; version 3
   added the [qa_failures]/[degraded] record fields (absent = 0 on read,
   so v2 documents still parse); version 4 added [warm_start]/
   [reused_clauses] (absent = false/0 on read, so v3 documents still
   parse); version 5 added the optimisation fields [cost]/[lower_bound]
   (absent = -1 on read — the decision-job sentinel — so v4 documents
   still parse) *)
let schema_version = 5

let to_json_string summary records =
  json_to_string
    (Obj
       [
         ("schema_version", Int schema_version);
         ("summary", json_of_summary summary);
         ("jobs", Arr (List.map json_of_record records));
       ])

let field kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" k))

let as_num = function
  | Num x -> x
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected number")

let as_int = function
  | Int i -> i
  | Num x when Float.is_integer x -> int_of_float x
  | _ -> raise (Parse_error "expected integer")
let as_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let as_obj = function Obj kvs -> kvs | _ -> raise (Parse_error "expected object")
let as_arr = function Arr xs -> xs | _ -> raise (Parse_error "expected array")

let record_of_json j =
  let kvs = as_obj j in
  {
    job_id = as_int (field kvs "job_id");
    job_name = as_str (field kvs "job_name");
    outcome = as_str (field kvs "outcome");
    verified = (match List.assoc_opt "verified" kvs with Some v -> as_str v | None -> "");
    winner = as_str (field kvs "winner");
    attempts = as_int (field kvs "attempts");
    queue_wait_s = as_num (field kvs "queue_wait_s");
    solve_time_s = as_num (field kvs "solve_time_s");
    iterations = as_int (field kvs "iterations");
    qa_calls = as_int (field kvs "qa_calls");
    qa_failures = (match List.assoc_opt "qa_failures" kvs with Some v -> as_int v | None -> 0);
    degraded = (match List.assoc_opt "degraded" kvs with Some v -> as_int v | None -> 0);
    strategy_uses = Array.of_list (List.map as_int (as_arr (field kvs "strategy_uses")));
    warm_start =
      (match List.assoc_opt "warm_start" kvs with
      | Some (Bool b) -> b
      | Some _ -> raise (Parse_error "expected boolean")
      | None -> false);
    reused_clauses =
      (match List.assoc_opt "reused_clauses" kvs with Some v -> as_int v | None -> 0);
    cost = (match List.assoc_opt "cost" kvs with Some v -> as_int v | None -> -1);
    lower_bound =
      (match List.assoc_opt "lower_bound" kvs with Some v -> as_int v | None -> -1);
  }

let summary_of_json j =
  let kvs = as_obj j in
  {
    jobs = as_int (field kvs "jobs");
    sat = as_int (field kvs "sat");
    unsat = as_int (field kvs "unsat");
    unknown = as_int (field kvs "unknown");
    workers = as_int (field kvs "workers");
    wall_time_s = as_num (field kvs "wall_time_s");
    total_solve_s = as_num (field kvs "total_solve_s");
    max_solve_s = as_num (field kvs "max_solve_s");
    mean_queue_wait_s = as_num (field kvs "mean_queue_wait_s");
    throughput_jps = as_num (field kvs "throughput_jps");
  }

let of_json_string s =
  match parse_json s with
  | exception Parse_error msg -> Error msg
  | j -> (
      match
        let kvs = as_obj j in
        (match List.assoc_opt "schema_version" kvs with
        | None -> () (* version 1: predates the field *)
        | Some v ->
            let v = as_int v in
            if v < 1 || v > schema_version then
              raise
                (Parse_error
                   (Printf.sprintf "unsupported schema_version %d (supported: 1..%d)" v
                      schema_version)));
        (summary_of_json (field kvs "summary"), List.map record_of_json (as_arr (field kvs "jobs")))
      with
      | pair -> Ok pair
      | exception Parse_error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* tables *)

let pp_table fmt records =
  Format.fprintf fmt "%-4s %-28s %-16s %-8s %-12s %3s %9s %9s %10s %5s %5s %5s %5s %6s %6s@."
    "id" "job" "outcome" "verified" "winner" "try" "wait(ms)" "time(ms)" "iters" "qa"
    "qafail" "degr" "warm" "cost" "lb";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-4d %-28s %-16s %-8s %-12s %3d %9.2f %9.2f %10d %5d %5d %5d %5s %6s %6s@."
        r.job_id
        (if String.length r.job_name > 28 then String.sub r.job_name 0 28 else r.job_name)
        r.outcome
        (match r.verified with "" -> "-" | v -> v)
        r.winner r.attempts
        (r.queue_wait_s *. 1000.)
        (r.solve_time_s *. 1000.)
        r.iterations r.qa_calls r.qa_failures r.degraded
        (if r.warm_start then string_of_int r.reused_clauses else "-")
        (if r.cost >= 0 then string_of_int r.cost else "-")
        (if r.cost >= 0 then string_of_int r.lower_bound else "-"))
    records

let pp_summary fmt s =
  Format.fprintf fmt
    "jobs %d (sat %d / unsat %d / unknown %d) · workers %d · wall %.3f s · cpu %.3f s · max job %.3f s · mean wait %.3f ms · %.2f jobs/s@."
    s.jobs s.sat s.unsat s.unknown s.workers s.wall_time_s s.total_solve_s s.max_solve_s
    (s.mean_queue_wait_s *. 1000.)
    s.throughput_jps
