type job_result = {
  spec : Job.spec;
  outcome : Job.outcome;
  record : Telemetry.record;
  race : Portfolio.race_report;
}

(* partially applying the name yields the [members ~spec ~seed] closure
   shape [run] expects, with the job's own QA policy picked up per spec *)
let solo ?grid ?log_proof ?supervisor name ~spec ~seed =
  Portfolio.members_named ?grid ?log_proof ?supervisor ~qa:spec.Job.qa ~seed [ name ]

(* 3-SAT conversion keeps original variables first, so projecting a model of
   the converted formula is a prefix restriction *)
let project_model ~original m =
  let n = Sat.Cnf.num_vars original in
  if Array.length m > n then Array.sub m 0 n else m

(* certification hook: winners are checked before being reported.  A claim
   the checker rejects is withheld as [Unknown Cert_failed] rather than
   handed to the caller wrong.  [Job.outcome] and [Cdcl.Solver.result] are
   the same type ({!Sat.Answer.t}), so the outcome feeds the checker
   directly *)
let certify_outcome (spec : Job.spec) (race : Portfolio.race_report) outcome =
  if not spec.Job.certify then (outcome, "")
  else
    let original = Job.original_formula spec in
    let proof =
      match (outcome, race.Portfolio.winner) with
      | Job.Unsat, Some w -> w.Portfolio.stats.Portfolio.proof
      | _ -> None
    in
    let verdict = Check.Certify.certify ~original ~solved:spec.Job.formula ?proof outcome in
    match verdict with
    | Ok _ -> (outcome, Check.Certify.verdict_label verdict)
    | Error _ -> (Job.Unknown Job.Cert_failed, Check.Certify.verdict_label verdict)

let max_member_iterations (race : Portfolio.race_report) =
  List.fold_left
    (fun acc (m : Portfolio.member_report) -> max acc m.Portfolio.stats.Portfolio.iterations)
    0 race.Portfolio.members

let process ?(cancel = fun () -> false) ~members ~obs ~parent (spec : Job.spec) ~enqueued_at ()
    =
  let traced = not (Obs.Ctx.is_null obs) in
  let started = Unix.gettimeofday () in
  let queue_wait_s = started -. enqueued_at in
  let deadline = Job.deadline spec in
  (* bounded retry with reseeding: an attempt that ends Unknown (step budget
     exhausted, or an incomplete member giving up) is retried with fresh
     seeds while attempts and wall-clock remain — and the external [cancel]
     switch (drain, SIGTERM) hasn't fired *)
  let rec attempt k =
    let seed = Job.attempt_seed spec k in
    let aspan =
      if traced then
        Obs.Span.start obs ~parent
          ~attrs:[ ("attempt", string_of_int k) ]
          "attempt"
      else Obs.Span.none
    in
    let race =
      Portfolio.race ~deadline ~cancel ~max_iterations:spec.Job.max_iterations ~obs
        ~parent:aspan (members ~spec ~seed) spec.Job.formula
    in
    Obs.Span.stop aspan;
    match race.Portfolio.winner with
    | Some _ -> (race, k + 1)
    | None ->
        if k < spec.Job.retries && not (Deadline.expired deadline) && not (cancel ()) then
          attempt (k + 1)
        else (race, k + 1)
  in
  let race, attempts = attempt 0 in
  let solve_time_s = Unix.gettimeofday () -. started in
  let outcome =
    match race.Portfolio.winner with
    | Some w -> (
        match w.Portfolio.stats.Portfolio.result with
        | Cdcl.Solver.Sat m ->
            (* report models in the caller's variable space, not the 3-SAT
               converted one (the aux chain variables are an artifact) *)
            Job.Sat (project_model ~original:(Job.original_formula spec) m)
        | Cdcl.Solver.Unsat -> Job.Unsat
        | Cdcl.Solver.Unknown _ -> assert false (* winners are decisive *))
    | None ->
        Job.Unknown
          (if cancel () then Job.Cancelled
           else if Deadline.expired deadline then Job.Timeout
           else Job.Budget)
  in
  let outcome, verified = certify_outcome spec race outcome in
  let winner_name, iterations, qa_calls, qa_failures, degraded, strategy_uses =
    match race.Portfolio.winner with
    | Some w ->
        ( w.Portfolio.member,
          w.Portfolio.stats.Portfolio.iterations,
          w.Portfolio.stats.Portfolio.qa_calls,
          w.Portfolio.stats.Portfolio.qa_failures,
          w.Portfolio.stats.Portfolio.qa_degraded,
          Array.copy w.Portfolio.stats.Portfolio.strategy_uses )
    | None -> ("", max_member_iterations race, 0, 0, 0, Array.make 4 0)
  in
  let record =
    {
      Telemetry.job_id = spec.Job.id;
      job_name = spec.Job.name;
      outcome = Job.outcome_label outcome;
      verified;
      winner = winner_name;
      attempts;
      queue_wait_s;
      solve_time_s;
      iterations;
      qa_calls;
      qa_failures;
      degraded;
      strategy_uses;
    }
  in
  { spec; outcome; record; race }

let run ?(workers = 1) ?(obs = Obs.Ctx.null) ?cancel ~members jobs =
  let workers = max 1 (min 64 workers) in (* same clamp as Pool.create *)
  let traced = not (Obs.Ctx.is_null obs) in
  let batch_span =
    if traced then
      Obs.Span.start obs
        ~attrs:
          [
            ("jobs", string_of_int (List.length jobs));
            ("workers", string_of_int workers);
          ]
        "batch"
    else Obs.Span.none
  in
  let t0 = Unix.gettimeofday () in
  (* workers-1 spawned domains: the calling domain helps execute the batch
     through [Pool.run], so exactly [workers] jobs are in flight and the
     helper's span worker id ([workers - 1]) stays inside [0, workers-1] *)
  let pool =
    Pool.create ~workers:(workers - 1) (fun ~worker (spec, enqueued_at) ->
        let jspan =
          if traced then
            Obs.Span.start obs ~parent:batch_span
              ~attrs:
                [
                  ("id", string_of_int spec.Job.id);
                  ("name", spec.Job.name);
                  ("worker", string_of_int worker);
                ]
              "job"
          else Obs.Span.none
        in
        let r = process ?cancel ~members ~obs ~parent:jspan spec ~enqueued_at () in
        if traced then begin
          Obs.Span.add_attr jspan "outcome" (Job.outcome_label r.outcome);
          Obs.Span.stop jspan;
          Obs.Metrics.incr obs
            (Obs.Metrics.labelled "jobs_total"
               [ ("outcome", Job.outcome_label r.outcome) ])
        end;
        r)
  in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let now = Unix.gettimeofday () in
        Pool.run pool (List.map (fun spec -> (spec, now)) jobs))
  in
  Obs.Span.stop batch_span;
  let wall_time_s = Unix.gettimeofday () -. t0 in
  let results =
    Array.to_list results
    |> List.map (function Ok r -> r | Error e -> raise e)
  in
  let summary =
    Telemetry.summarize ~workers ~wall_time_s (List.map (fun r -> r.record) results)
  in
  (summary, results)
