type job_result = {
  spec : Job.spec;
  outcome : Job.outcome;
  record : Telemetry.record;
  race : Portfolio.race_report;
}

(* partially applying the name yields the [members ~spec ~seed] closure
   shape [run] expects, with the job's own QA policy picked up per spec *)
let solo ?grid ?log_proof ?supervisor ?embed_cache name ~spec ~seed =
  Portfolio.members_named ?grid ?log_proof ?supervisor ?embed_cache ~qa:spec.Job.qa ~seed
    [ name ]

(* warm-start pool: learnt clauses keyed by formula structure, shared
   across batch workers.  Sound by construction: stored clauses are only
   reused when the stored formula equals the job's (fingerprint narrows,
   [Sat.Cnf.equal] decides), so every imported clause is an implicate of
   the formula about to be solved.  The mutex also establishes the
   happens-before edge that publishes clause arrays across worker
   domains. *)
module Warm = struct
  type entry = { formula : Sat.Cnf.t; mutable clauses : Sat.Lit.t array list }
  type t = { mutex : Mutex.t; table : (string, entry) Hashtbl.t }

  let create () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

  let fingerprint f =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string
            (Sat.Cnf.num_vars f, List.map Sat.Clause.lits (Sat.Cnf.clauses f))
            []))

  let lookup t f =
    let key = fingerprint f in
    Mutex.lock t.mutex;
    let r =
      match Hashtbl.find_opt t.table key with
      | Some e when Sat.Cnf.equal e.formula f -> e.clauses
      | _ -> []
    in
    Mutex.unlock t.mutex;
    r

  let store t f clauses =
    if clauses <> [] then begin
      let key = fingerprint f in
      Mutex.lock t.mutex;
      (match Hashtbl.find_opt t.table key with
      | Some e when Sat.Cnf.equal e.formula f -> e.clauses <- clauses
      | _ -> Hashtbl.replace t.table key { formula = f; clauses });
      Mutex.unlock t.mutex
    end
end

(* 3-SAT conversion keeps original variables first, so projecting a model of
   the converted formula is a prefix restriction *)
let project_model ~original m =
  let n = Sat.Cnf.num_vars original in
  if Array.length m > n then Array.sub m 0 n else m

(* certification hook: winners are checked before being reported.  A claim
   the checker rejects is withheld as [Unknown Cert_failed] rather than
   handed to the caller wrong.  [Job.outcome] and [Cdcl.Solver.result] are
   the same type ({!Sat.Answer.t}), so the outcome feeds the checker
   directly *)
let certify_outcome (spec : Job.spec) (race : Portfolio.race_report) outcome =
  if not spec.Job.certify then (outcome, "")
  else
    let original = Job.original_formula spec in
    let proof =
      match (outcome, race.Portfolio.winner) with
      | Job.Unsat, Some w -> w.Portfolio.stats.Portfolio.proof
      | _ -> None
    in
    let verdict = Check.Certify.certify ~original ~solved:spec.Job.formula ?proof outcome in
    match verdict with
    | Ok _ -> (outcome, Check.Certify.verdict_label verdict)
    | Error _ -> (Job.Unknown Job.Cert_failed, Check.Certify.verdict_label verdict)

let max_member_iterations (race : Portfolio.race_report) =
  List.fold_left
    (fun acc (m : Portfolio.member_report) -> max acc m.Portfolio.stats.Portfolio.iterations)
    0 race.Portfolio.members

(* optimisation jobs bypass the portfolio race entirely: the exact
   weighted-MaxSAT pipeline is deterministic given its seed, so there is
   nothing to race and nothing to retry.  The result flows through the
   same [job_result]/[Telemetry.record] shapes (with an empty race report)
   so batch aggregation, tables and the wire protocol need no second
   path. *)
let process_opt ?(cancel = fun () -> false) ~obs ~parent (spec : Job.spec) w ~enqueued_at
    () =
  let traced = not (Obs.Ctx.is_null obs) in
  let started = Unix.gettimeofday () in
  let queue_wait_s = started -. enqueued_at in
  let span =
    if traced then
      Obs.Span.start obs ~parent
        ~attrs:[ ("gap_limit", string_of_int spec.Job.gap_limit) ]
        "optimize"
    else Obs.Span.none
  in
  let deadline = Job.deadline spec in
  let r =
    Hyqsat.Solve.optimize
      ?max_conflicts:
        (if spec.Job.max_iterations = max_int then None else Some spec.Job.max_iterations)
      ?timeout_s:spec.Job.timeout_s ~should_stop:cancel ~gap_limit:spec.Job.gap_limit
      ~seed:(Job.attempt_seed spec 0) w
  in
  Obs.Span.stop span;
  let solve_time_s = Unix.gettimeofday () -. started in
  let outcome =
    match (r.Hyqsat.Optimize.status, r.Hyqsat.Optimize.best) with
    | (Hyqsat.Optimize.Optimal | Hyqsat.Optimize.Feasible), Some m -> Job.Sat m
    | Hyqsat.Optimize.Infeasible, _ -> Job.Unsat
    | _ ->
        Job.Unknown
          (if cancel () then Job.Cancelled
           else if Deadline.expired deadline then Job.Timeout
           else Job.Budget)
  in
  let outcome, verified =
    if not spec.Job.certify then (outcome, "")
    else
      (* certification re-solves stay inside the job's budget: the conflict
         cap, the cancel/drain switch and the job deadline all reach the
         fresh solvers through certify_opt — the expensive re-solves only
         happen for Optimal/Infeasible claims, which the search proved
         before the deadline, so there is budget left to check them *)
      let verdict =
        Check.Certify.certify_opt
          ?max_conflicts:
            (if spec.Job.max_iterations = max_int then None
             else Some spec.Job.max_iterations)
          ~should_stop:(fun () -> cancel () || Deadline.expired deadline)
          ~original:w r
      in
      match verdict with
      | Ok _ -> (outcome, Check.Certify.opt_verdict_label verdict)
      | Error _ -> (Job.Unknown Job.Cert_failed, Check.Certify.opt_verdict_label verdict)
  in
  let record =
    {
      Telemetry.job_id = spec.Job.id;
      job_name = spec.Job.name;
      outcome = Job.outcome_label outcome;
      verified;
      winner = "maxsat-" ^ Hyqsat.Optimize.algorithm_label r.Hyqsat.Optimize.algorithm_used;
      attempts = 1;
      queue_wait_s;
      solve_time_s;
      iterations = r.Hyqsat.Optimize.cdcl_calls;
      qa_calls = 0;
      qa_failures = 0;
      degraded = 0;
      strategy_uses = Array.make 4 0;
      warm_start = false;
      reused_clauses = 0;
      cost = r.Hyqsat.Optimize.best_cost;
      lower_bound = r.Hyqsat.Optimize.lower_bound;
    }
  in
  let race = { Portfolio.winner = None; members = []; wall_time_s = solve_time_s } in
  { spec; outcome; record; race }

let process_decision ~cancel ?warm ~members ~obs ~parent (spec : Job.spec) ~enqueued_at
    () =
  let traced = not (Obs.Ctx.is_null obs) in
  let started = Unix.gettimeofday () in
  let queue_wait_s = started -. enqueued_at in
  let deadline = Job.deadline spec in
  let warm_import =
    match warm with Some w -> Warm.lookup w spec.Job.formula | None -> []
  in
  (* bounded retry with reseeding: an attempt that ends Unknown (step budget
     exhausted, or an incomplete member giving up) is retried with fresh
     seeds while attempts and wall-clock remain — and the external [cancel]
     switch (drain, SIGTERM) hasn't fired *)
  let rec attempt k ~import =
    let seed = Job.attempt_seed spec k in
    let aspan =
      if traced then
        Obs.Span.start obs ~parent
          ~attrs:[ ("attempt", string_of_int k) ]
          "attempt"
      else Obs.Span.none
    in
    let race =
      Portfolio.race ~deadline ~cancel ~max_iterations:spec.Job.max_iterations ~obs
        ~parent:aspan ~import (members ~spec ~seed) spec.Job.formula
    in
    Obs.Span.stop aspan;
    match race.Portfolio.winner with
    | Some _ -> (race, k + 1)
    | None ->
        if k < spec.Job.retries && not (Deadline.expired deadline) && not (cancel ()) then
          (* the retry reseeds but keeps what the failed attempt learnt:
             same formula, so the clauses are sound implicates *)
          attempt (k + 1) ~import:(Portfolio.race_learnts race)
        else (race, k + 1)
  in
  let race, attempts = attempt 0 ~import:warm_import in
  (match warm with
  | Some w -> Warm.store w spec.Job.formula (Portfolio.race_learnts race)
  | None -> ());
  let solve_time_s = Unix.gettimeofday () -. started in
  let outcome =
    match race.Portfolio.winner with
    | Some w -> (
        match w.Portfolio.stats.Portfolio.result with
        | Cdcl.Solver.Sat m ->
            (* report models in the caller's variable space, not the 3-SAT
               converted one (the aux chain variables are an artifact) *)
            Job.Sat (project_model ~original:(Job.original_formula spec) m)
        | Cdcl.Solver.Unsat -> Job.Unsat
        | Cdcl.Solver.Unknown _ -> assert false (* winners are decisive *))
    | None ->
        Job.Unknown
          (if cancel () then Job.Cancelled
           else if Deadline.expired deadline then Job.Timeout
           else Job.Budget)
  in
  let outcome, verified = certify_outcome spec race outcome in
  let winner_name, iterations, qa_calls, qa_failures, degraded, strategy_uses, reused =
    match race.Portfolio.winner with
    | Some w ->
        ( w.Portfolio.member,
          w.Portfolio.stats.Portfolio.iterations,
          w.Portfolio.stats.Portfolio.qa_calls,
          w.Portfolio.stats.Portfolio.qa_failures,
          w.Portfolio.stats.Portfolio.qa_degraded,
          Array.copy w.Portfolio.stats.Portfolio.strategy_uses,
          w.Portfolio.stats.Portfolio.reused_clauses )
    | None -> ("", max_member_iterations race, 0, 0, 0, Array.make 4 0, 0)
  in
  let record =
    {
      Telemetry.job_id = spec.Job.id;
      job_name = spec.Job.name;
      outcome = Job.outcome_label outcome;
      verified;
      winner = winner_name;
      attempts;
      queue_wait_s;
      solve_time_s;
      iterations;
      qa_calls;
      qa_failures;
      degraded;
      strategy_uses;
      warm_start = warm_import <> [];
      reused_clauses = reused;
      cost = -1;
      lower_bound = -1;
    }
  in
  { spec; outcome; record; race }

let process ?(cancel = fun () -> false) ?warm ~members ~obs ~parent (spec : Job.spec)
    ~enqueued_at () =
  match spec.Job.wcnf with
  | Some w -> process_opt ~cancel ~obs ~parent spec w ~enqueued_at ()
  | None -> process_decision ~cancel ?warm ~members ~obs ~parent spec ~enqueued_at ()

let run ?(workers = 1) ?(obs = Obs.Ctx.null) ?cancel ?(warm_start = false) ~members jobs =
  let workers = max 1 (min 64 workers) in (* same clamp as Pool.create *)
  let warm = if warm_start then Some (Warm.create ()) else None in
  let traced = not (Obs.Ctx.is_null obs) in
  let batch_span =
    if traced then
      Obs.Span.start obs
        ~attrs:
          [
            ("jobs", string_of_int (List.length jobs));
            ("workers", string_of_int workers);
          ]
        "batch"
    else Obs.Span.none
  in
  let t0 = Unix.gettimeofday () in
  (* workers-1 spawned domains: the calling domain helps execute the batch
     through [Pool.run], so exactly [workers] jobs are in flight and the
     helper's span worker id ([workers - 1]) stays inside [0, workers-1] *)
  let pool =
    Pool.create ~workers:(workers - 1) (fun ~worker (spec, enqueued_at) ->
        let jspan =
          if traced then
            Obs.Span.start obs ~parent:batch_span
              ~attrs:
                [
                  ("id", string_of_int spec.Job.id);
                  ("name", spec.Job.name);
                  ("worker", string_of_int worker);
                ]
              "job"
          else Obs.Span.none
        in
        let r = process ?cancel ?warm ~members ~obs ~parent:jspan spec ~enqueued_at () in
        if traced then begin
          Obs.Span.add_attr jspan "outcome" (Job.outcome_label r.outcome);
          Obs.Span.stop jspan;
          Obs.Metrics.incr obs
            (Obs.Metrics.labelled "jobs_total"
               [ ("outcome", Job.outcome_label r.outcome) ])
        end;
        r)
  in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let now = Unix.gettimeofday () in
        Pool.run pool (List.map (fun spec -> (spec, now)) jobs))
  in
  Obs.Span.stop batch_span;
  let wall_time_s = Unix.gettimeofday () -. t0 in
  let results =
    Array.to_list results
    |> List.map (function Ok r -> r | Error e -> raise e)
  in
  let summary =
    Telemetry.summarize ~workers ~wall_time_s (List.map (fun r -> r.record) results)
  in
  (summary, results)
