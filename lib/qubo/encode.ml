type sub = {
  clause_index : int;
  sub_index : int;
  sub_vars : int list;
  penalty : Pbq.t;
  mutable alpha : float;
}

type t = {
  clauses : Sat.Clause.t array;
  num_original_vars : int;
  num_total_vars : int;
  aux_of_clause : int array;
  subs : sub array;
}

(* H_l(x) as an affine form (c, k) meaning c + k·x: positive literal = x,
   negative literal = 1 - x *)
let lit_affine l = if Sat.Lit.is_pos l then (0., 1.) else (1., -1.)

(* add the product of two affine literal forms (c1 + k1·x1)(c2 + k2·x2) *)
let add_product pbq (c1, k1) v1 (c2, k2) v2 scale =
  Pbq.add_const pbq (scale *. c1 *. c2);
  Pbq.add_linear pbq v1 (scale *. k1 *. c2);
  Pbq.add_linear pbq v2 (scale *. k2 *. c1);
  if v1 <> v2 then Pbq.add_quad pbq v1 v2 (scale *. k1 *. k2)
  else Pbq.add_linear pbq v1 (scale *. k1 *. k2) (* x² = x *)

let add_affine pbq (c, k) v scale =
  Pbq.add_const pbq (scale *. c);
  Pbq.add_linear pbq v (scale *. k)

(* Equation 4, first sub-clause: a ↔ (l1 ∨ l2)
   H = a + H1 + H2 - 2aH1 - 2aH2 + H1H2 *)
let penalty_equiv a l1 l2 =
  let h = Pbq.create () in
  let v1 = Sat.Lit.var l1 and v2 = Sat.Lit.var l2 in
  let f1 = lit_affine l1 and f2 = lit_affine l2 in
  Pbq.add_linear h a 1.;
  add_affine h f1 v1 1.;
  add_affine h f2 v2 1.;
  add_product h (0., 1.) a f1 v1 (-2.);
  add_product h (0., 1.) a f2 v2 (-2.);
  add_product h f1 v1 f2 v2 1.;
  h

(* Equation 4, second sub-clause: l3 ∨ a, H = 1 - a - H3 + aH3 *)
let penalty_or_aux a l3 =
  let h = Pbq.create () in
  let v3 = Sat.Lit.var l3 in
  let f3 = lit_affine l3 in
  Pbq.add_const h 1.;
  Pbq.add_linear h a (-1.);
  add_affine h f3 v3 (-1.);
  add_product h (0., 1.) a f3 v3 1.;
  h

(* direct penalty for a clause of ≤ 2 literals: Π (1 - H_li) *)
let penalty_small lits =
  let h = Pbq.create () in
  (match lits with
  | [] -> Pbq.add_const h 1. (* empty clause: always violated *)
  | [ l ] ->
      let c, k = lit_affine l in
      add_affine h (1. -. c, -.k) (Sat.Lit.var l) 1.
  | [ l1; l2 ] ->
      let c1, k1 = lit_affine l1 and c2, k2 = lit_affine l2 in
      add_product h (1. -. c1, -.k1) (Sat.Lit.var l1) (1. -. c2, -.k2) (Sat.Lit.var l2) 1.
  | _ -> assert false);
  h

let encode ~num_vars clause_list =
  let clauses = Array.of_list clause_list in
  let next_aux = ref num_vars in
  let aux_of_clause = Array.make (Array.length clauses) (-1) in
  let subs = ref [] in
  Array.iteri
    (fun k c ->
      match Sat.Clause.lits c with
      | l1 :: l2 :: l3 :: [] ->
          let a = !next_aux in
          incr next_aux;
          aux_of_clause.(k) <- a;
          subs :=
            {
              clause_index = k;
              sub_index = 2;
              sub_vars = [ a; Sat.Lit.var l3 ];
              penalty = penalty_or_aux a l3;
              alpha = 1.;
            }
            :: {
                 clause_index = k;
                 sub_index = 1;
                 sub_vars = [ a; Sat.Lit.var l1; Sat.Lit.var l2 ];
                 penalty = penalty_equiv a l1 l2;
                 alpha = 1.;
               }
            :: !subs
      | ([] | [ _ ] | [ _; _ ]) as small ->
          subs :=
            {
              clause_index = k;
              sub_index = 1;
              sub_vars = List.map Sat.Lit.var small;
              penalty = penalty_small small;
              alpha = 1.;
            }
            :: !subs
      | _ -> invalid_arg "Encode.encode: clause with more than 3 literals")
    clauses;
  {
    clauses;
    num_original_vars = num_vars;
    num_total_vars = !next_aux;
    aux_of_clause;
    subs = Array.of_list (List.rev !subs);
  }

let encode_ksat ~num_vars clause_list =
  let clauses = Array.of_list clause_list in
  let next_aux = ref num_vars in
  let fresh () =
    let a = !next_aux in
    incr next_aux;
    a
  in
  let aux_of_clause = Array.make (Array.length clauses) (-1) in
  let subs = ref [] in
  let push s = subs := s :: !subs in
  Array.iteri
    (fun k c ->
      let lits = Sat.Clause.lits c in
      if List.length lits <= 3 then begin
        (* reuse the 3-SAT machinery clause-wise *)
        let small = encode ~num_vars:!next_aux [ c ] in
        next_aux := small.num_total_vars;
        aux_of_clause.(k) <- small.aux_of_clause.(0);
        Array.iter
          (fun s -> push { s with clause_index = k; sub_vars = s.sub_vars })
          small.subs
      end
      else begin
        match lits with
        | l1 :: l2 :: rest ->
            (* chain: a1 ↔ (l1 ∨ l2); a_{i+1} ↔ (a_i ∨ l_{i+2}); (a ∨ lk) *)
            let a1 = fresh () in
            push
              {
                clause_index = k;
                sub_index = 1;
                sub_vars = [ a1; Sat.Lit.var l1; Sat.Lit.var l2 ];
                penalty = penalty_equiv a1 l1 l2;
                alpha = 1.;
              };
            let rec chain prev idx = function
              | [ lk ] ->
                  aux_of_clause.(k) <- prev;
                  push
                    {
                      clause_index = k;
                      sub_index = idx;
                      sub_vars = [ prev; Sat.Lit.var lk ];
                      penalty = penalty_or_aux prev lk;
                      alpha = 1.;
                    }
              | l :: rest ->
                  let a = fresh () in
                  push
                    {
                      clause_index = k;
                      sub_index = idx;
                      sub_vars = [ a; prev; Sat.Lit.var l ];
                      penalty = penalty_equiv a (Sat.Lit.pos prev) l;
                      alpha = 1.;
                    };
                  chain a (idx + 1) rest
              | [] -> assert false
            in
            chain a1 2 rest
        | _ -> assert false
      end)
    clauses;
  {
    clauses;
    num_original_vars = num_vars;
    num_total_vars = !next_aux;
    aux_of_clause;
    subs = Array.of_list (List.rev !subs);
  }

let set_clause_weights t weights =
  if Array.length weights <> Array.length t.clauses then
    invalid_arg
      (Printf.sprintf "Encode.set_clause_weights: %d weights for %d clauses"
         (Array.length weights) (Array.length t.clauses));
  let wmax = Array.fold_left Float.max 0. weights in
  Array.iter
    (fun w ->
      if not (w > 0.) then invalid_arg "Encode.set_clause_weights: weight must be > 0")
    weights;
  Array.iter
    (fun s -> s.alpha <- s.alpha *. weights.(s.clause_index) /. wmax)
    t.subs

let objective t =
  let h = Pbq.create () in
  Array.iter (fun s -> Pbq.add_scaled h s.penalty s.alpha) t.subs;
  h

let aux_vars t =
  List.init (t.num_total_vars - t.num_original_vars) (fun i -> t.num_original_vars + i)

let clauses_satisfied t x =
  let a = Sat.Assignment.of_bools x in
  Array.for_all (fun c -> Sat.Assignment.satisfies_clause a c) t.clauses

let best_aux t x =
  let full = Array.make t.num_total_vars false in
  Array.blit x 0 full 0 (Array.length x);
  let subs_by_clause = Array.make (Array.length t.clauses) [] in
  Array.iter
    (fun s -> subs_by_clause.(s.clause_index) <- s :: subs_by_clause.(s.clause_index))
    t.subs;
  (* auxiliaries are per-clause, so the argmin decomposes clause-wise; each
     clause has 1 auxiliary in the 3-SAT encoding and k-2 in the K-SAT chain
     encoding, enumerated exactly *)
  Array.iteri
    (fun k _ ->
      let auxs =
        List.sort_uniq Int.compare
          (List.concat_map
             (fun s -> List.filter (fun v -> v >= t.num_original_vars) s.sub_vars)
             subs_by_clause.(k))
      in
      let na = List.length auxs in
      if na > 0 then begin
        if na > 16 then invalid_arg "Encode.best_aux: too many auxiliaries per clause";
        let energy () =
          List.fold_left
            (fun acc s -> acc +. (s.alpha *. Pbq.eval_array s.penalty full))
            0. subs_by_clause.(k)
        in
        let best_bits = ref 0 and best_e = ref infinity in
        for bits = 0 to (1 lsl na) - 1 do
          List.iteri (fun i a -> full.(a) <- bits land (1 lsl i) <> 0) auxs;
          let e = energy () in
          if e < !best_e then begin
            best_e := e;
            best_bits := bits
          end
        done;
        List.iteri (fun i a -> full.(a) <- !best_bits land (1 lsl i) <> 0) auxs
      end)
    t.clauses;
  full

let min_energy_for t x = Pbq.eval_array (objective t) (best_aux t x)
