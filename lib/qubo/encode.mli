(** QUBO encoding of a 3-SAT clause set (paper §II-C, Equations 3–5).

    Each 3-literal clause [l1 ∨ l2 ∨ l3] is decomposed with one fresh
    auxiliary variable [a] into two sub-clauses
    [c₁ = a ↔ (l1 ∨ l2)] and [c₂ = l3 ∨ a], each with a quadratic penalty
    function whose minimum is 0 exactly when the sub-clause holds
    (Equation 4).  Clauses of 1 or 2 literals get a direct product penalty
    and need no auxiliary.  The total objective is the α-weighted sum of
    sub-clause penalties (Equation 5); all α default to 1 and can be
    re-weighted by {!Adjust}. *)

type sub = {
  clause_index : int;  (** index into the encoded clause array *)
  sub_index : int;  (** 1 or 2 within the clause *)
  sub_vars : int list;  (** problem/aux variables of this sub-clause *)
  penalty : Pbq.t;  (** H_{c_{k,j}} with α = 1 *)
  mutable alpha : float;
}

type t = {
  clauses : Sat.Clause.t array;
  num_original_vars : int;  (** variable universe of the input clauses *)
  num_total_vars : int;  (** original + auxiliary *)
  aux_of_clause : int array;  (** clause → its auxiliary variable, or -1 *)
  subs : sub array;
}

val encode : num_vars:int -> Sat.Clause.t list -> t
(** Encode a clause list over a [num_vars]-variable universe.  Auxiliary
    variables are numbered from [num_vars] upwards, one per 3-literal
    clause, in clause order.
    @raise Invalid_argument on clauses with more than 3 literals. *)

val encode_ksat : num_vars:int -> Sat.Clause.t list -> t
(** The paper's §VII-B direct K-SAT encoding: a clause [l1 ∨ … ∨ lk] with
    [k > 3] is decomposed through a chain of auxiliaries
    [a1 ↔ (l1 ∨ l2)], [a2 ↔ (a1 ∨ l3)], …, ending with the 2-literal
    sub-clause [(a_{k-2} ∨ lk)] — [k-2] auxiliaries per clause (the paper's
    example: a 26-literal clause needs 24).  [aux_of_clause] holds the
    {e last} auxiliary of each chain.  The result is hardware-inefficient
    (aux-to-aux couplings) and is not accepted by the line embedder; it
    exists for the K-SAT feasibility study. *)

val set_clause_weights : t -> float array -> unit
(** Weighted (MaxSAT) mode: scale every sub-clause's {e current} α by its
    clause's weight, normalised so the heaviest clause keeps its α — the
    annealer then minimises weighted violation cost instead of violation
    count (Bian et al.).  Composes with {!Adjust.adjust}: call it {e after}
    adjustment, since [adjust] resets all α to its own values.  One weight
    per encoded clause, each [> 0].
    @raise Invalid_argument on a length mismatch or non-positive weight. *)

val objective : t -> Pbq.t
(** The α-weighted total objective H_C(X, A). *)

val aux_vars : t -> int list
(** All auxiliary variables, ascending. *)

val clauses_satisfied : t -> bool array -> bool
(** Whether a total assignment of the {e original} variables satisfies every
    encoded clause (auxiliaries are ignored). *)

val best_aux : t -> bool array -> bool array
(** [best_aux t x] extends an original-variable assignment with
    energy-minimising values for every auxiliary: for a clause
    [l1 ∨ l2 ∨ l3], the optimal choice under equation 4 is
    [a = l1 ∨ l2].  The result has length [num_total_vars]. *)

val min_energy_for : t -> bool array -> float
(** Objective value with optimal auxiliaries: 0 iff all clauses satisfied
    (for the unadjusted α = 1 encoding this equals the number of falsified
    clauses or more). *)
