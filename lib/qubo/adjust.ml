let d_sub objective (s : Encode.sub) =
  let m = ref 0. in
  let rec pairs = function
    | [] -> ()
    | v :: rest ->
        m := Float.max !m (Float.abs (Pbq.linear objective v) /. 2.);
        List.iter (fun w -> m := Float.max !m (Float.abs (Pbq.quad objective v w))) rest;
        pairs rest
  in
  pairs s.Encode.sub_vars;
  if !m = 0. then 1.0 else !m

let reset (t : Encode.t) = Array.iter (fun s -> s.Encode.alpha <- 1.) t.Encode.subs

let eps = 1e-9

(* one capping pass: for every objective term whose stacked coefficient now
   exceeds d*, scale the boosted sub-clauses containing that term back down
   (never below α = 1).  Returns true if anything was scaled. *)
let cap_pass (t : Encode.t) d_star =
  let obj = Encode.objective t in
  let offenders = ref [] in
  Pbq.iter_linear obj (fun v b ->
      let c = Float.abs b /. 2. in
      if c > d_star +. eps then offenders := ([ v ], d_star /. c) :: !offenders);
  Pbq.iter_quad obj (fun u w j ->
      let c = Float.abs j in
      if c > d_star +. eps then offenders := ([ u; w ], d_star /. c) :: !offenders);
  match !offenders with
  | [] -> false
  | offenders ->
      Array.iter
        (fun s ->
          if s.Encode.alpha > 1. then
            List.iter
              (fun (vars, factor) ->
                if List.for_all (fun v -> List.mem v s.Encode.sub_vars) vars then
                  s.Encode.alpha <- Float.max 1. (s.Encode.alpha *. factor))
              offenders)
        t.Encode.subs;
      true

let adjust (t : Encode.t) =
  reset t;
  let baseline = Encode.objective t in
  let d_star = Normalize.d_star baseline in
  Array.iter (fun s -> s.Encode.alpha <- d_star /. d_sub baseline s) t.Encode.subs;
  (* Clauses sharing variables stack their boosted coefficients, which can
     push a term past d* and so grow the normalisation divisor — quietly
     dividing the energy gap back away (the paper's single-clause example
     cannot exhibit this).  Cap to a fixpoint: every α has the baseline
     (α = 1) as a floor and baseline coefficients are ≤ d* by definition,
     so the iteration terminates. *)
  (* convergence is geometric but the per-pass factor can sit very close
     to 1 when a stacked term is dominated by floored (α = 1) baseline
     contributions, so give the fixpoint enough passes to shrink the
     residual overshoot well below the eps tolerance *)
  let rec cap budget = if budget > 0 && cap_pass t d_star then cap (budget - 1) in
  cap 256
