(** Pluggable annealer backends.

    HyQSAT treats the annealer as a remote, noisy accelerator.  This module
    makes that boundary explicit: a backend takes one {!request} (an Ising
    problem plus sampling parameters) and either returns a {!response} or
    fails with a typed {!failure}.  The solver core never calls a sampler
    directly any more — it goes through a {!t}, usually wrapped in a
    {!Supervisor} that adds deadlines, retries and a circuit breaker.

    All built-in backends are deterministic: spins are a pure function of
    the caller's RNG state, failures and latency of the fault profile's
    private stream.  No wall-clock randomness anywhere. *)

type request = {
  ising : Sparse_ising.t;  (** the physical problem, noise-free *)
  params : Sampler.params;  (** schedule / kernel / noise / reads *)
  init : int array option;  (** per-read initial spins (chain-coherent) *)
  domains : int;  (** parallelism hint; result-invariant *)
  pool : Parallel.Tasks.t option;
      (** persistent pool for parallel reads; [None] = the process-wide
          {!Parallel.Tasks.shared}.  Host-side machinery, result-invariant
          like [domains]. *)
  timing : Timing.t;  (** device timing model for [time_us] *)
}

type response = {
  spins : int array;  (** annealed physical spins, ±1 entries *)
  energy : float;  (** energy of [spins] on the {e clean} request Ising *)
  time_us : float;  (** modelled device wall-clock for the call *)
}

type failure =
  | Timeout  (** the call's modelled time exceeded the deadline *)
  | Unavailable  (** device rejected or dropped the call *)
  | Readout_corrupt  (** readout failed integrity checks *)
  | Chain_break_storm  (** too many broken chains to unembed *)
  | Breaker_open  (** supervisor fast-fail; never raised by a device *)

val failure_label : failure -> string
(** Stable lower-snake label, used as the [reason] metric label. *)

type capabilities = {
  forced_kernel : Sampler.kernel option;
      (** [Some k] if the backend ignores [params.kernel] *)
  parallel_reads : bool;  (** honours [request.domains] *)
  fallible : bool;  (** can return [Error _] *)
}

module type S = sig
  val name : string
  val capabilities : capabilities
  val sample : ?obs:Obs.Ctx.t -> Stats.Rng.t -> request -> (response, failure) result
end

type t = (module S)

val name : t -> string
val capabilities : t -> capabilities
val sample : ?obs:Obs.Ctx.t -> t -> Stats.Rng.t -> request -> (response, failure) result

val of_fn :
  name:string ->
  ?capabilities:capabilities ->
  (?obs:Obs.Ctx.t -> Stats.Rng.t -> request -> (response, failure) result) ->
  t
(** Wrap a function as a backend — the test suite scripts failing devices
    with this.  Default capabilities: no forced kernel, serial, fallible. *)

val model_time_us : request -> float
(** Modelled device time of one call under the request's {!Timing} model:
    [single_sample_us] for one read, [multi_sample_us] otherwise.  The
    supervisor compares this (plus injected latency) against deadlines. *)

(** {1 Simulator backends}

    The three simulators make identical RNG draws and accept decisions
    (the kernels are decision-equivalent, reads are stream-split), so for
    a given seed they return identical spins — switching backends never
    changes an answer, only speed. *)

val incremental : t
(** Forces the O(1)-delta {!Kernel} sweep; serial reads. *)

val reference : t
(** Forces the field-recomputing reference sweep; serial reads. *)

val best_of : t
(** Honours [params.kernel] and fans reads across [request.domains]. *)

(** {1 Fault injection} *)

type fault_profile = {
  fail_rate : float;  (** per-call failure probability in [0,1] *)
  latency_us : float;  (** mean extra latency on success (uniform on
                           [[0, 2·latency_us)]) *)
  fault_seed : int;  (** seed of the injector's private RNG *)
  mix : (failure * float) list;  (** failure kinds with relative weights *)
}

val default_mix : (failure * float) list
(** Equal weights over the four device failures (never [Breaker_open]). *)

val default_faults : fault_profile
(** Rate 0, latency 0 — wrapping with this profile is a no-op. *)

val with_faults : fault_profile -> t -> t
(** [with_faults p b] decides failure/latency from a private RNG seeded
    with [p.fault_seed], so the caller's stream is untouched: a zero-rate
    wrapper is bit-identical to [b], and a failed call leaves the caller's
    RNG where it was — a retry reproduces what the original call would
    have returned.  Failures follow the weighted [p.mix]. *)

(** {1 Named specs}

    A serialisable description of a backend, carried by job policies and
    built from CLI flags. *)

type flavor = [ `Incremental | `Reference | `Best_of ]

type spec = { flavor : flavor; faults : fault_profile }

val default_spec : spec
(** [`Best_of] with {!default_faults}. *)

val flavor_names : string list
val flavor_label : flavor -> string
val flavor_of_string : string -> flavor option
val of_flavor : flavor -> t

val of_spec : spec -> t
(** Instantiates the flavor and wraps it in {!with_faults} when the
    profile injects anything. *)
