(** NISQ noise model for the simulated annealer (paper §I: environment,
    crosstalk and readout noise on D-Wave 2000Q).

    Coefficient noise perturbs the programmed fields/couplings (integrated
    control-error model); readout noise flips measured spins independently.
    Thermal noise is modelled by running a shallower annealing schedule.

    {b Draw-order contract.}  Both [apply_*] functions draw from the
    {e caller's} RNG, in call-site order, with a fixed per-call shape:
    [apply_coeff] makes one Gaussian draw per field then one per coupling,
    in CSR row order of the input; [apply_readout] makes exactly one
    uniform draw per spin.  When the corresponding rate is zero the
    function makes {e zero} draws (and returns its input, shared, for
    [apply_coeff]) — so a noise-free configuration is bit-identical to
    code that never calls these functions at all.  {!Sampler.sample}
    relies on this to keep one documented consumption sequence
    (coeff → init → sweeps → readout); anything layered around a sample
    call — fault injection, latency models — must draw from its own
    private stream ({!Backend.with_faults} does), or seeds stop
    reproducing across backends.  [test_supervisor.ml] pins this contract
    down with a rate-0-wrapper bit-identity test. *)

type t = {
  coeff_sigma : float;  (** Gaussian σ added to each h and J, relative scale *)
  readout_flip : float;  (** independent bit-flip probability at readout *)
  shallow_anneal : bool;  (** use {!Sampler.quick_schedule} (thermal noise) *)
}

val noise_free : t
val default_2000q : t
(** Calibrated so that HyQSAT's Table II iteration-variance stays near 1:
    σ = 0.03, 1 % readout flips, shallow anneal. *)

val bit_flip_only : float -> t
(** The Table III scalability model: a pure [p] readout bit-flip channel on
    top of noise-free annealing. *)

val apply_coeff : t -> Stats.Rng.t -> Sparse_ising.t -> Sparse_ising.t
(** Fresh problem with perturbed coefficients (noise-free input is shared,
    not copied). *)

val apply_readout : t -> Stats.Rng.t -> int array -> int array
(** Possibly-flipped copy of the measured spins. *)
