(** Simulated-annealing Ising sampler (the dwave-neal [19] substitution for
    real QA hardware — see DESIGN.md §2).

    Runs Metropolis sweeps over a geometric inverse-temperature schedule.
    One [sample] models one annealing cycle of the physical machine. *)

type schedule = { sweeps : int; beta_min : float; beta_max : float }

val default_schedule : schedule
(** 256 sweeps, β from 0.1 to 16 — enough to reach ground states of
    queue-sized problems with high probability. *)

val quick_schedule : schedule
(** 96 sweeps: a deliberately shallow anneal that leaves residual thermal
    excitation, used to emulate a noisy single-shot device. *)

val sample :
  ?obs:Obs.Ctx.t ->
  ?schedule:schedule ->
  ?init:int array ->
  Stats.Rng.t ->
  Sparse_ising.t ->
  int array
(** One annealed spin configuration (±1 entries).  [init] seeds the sweep
    (e.g. chain-coherent spins); default is uniform random.  With a live
    [obs] the call adds to the [anneal_sweeps_total] and
    [anneal_accepted_flips_total] counters. *)

val sample_best_of : ?schedule:schedule -> Stats.Rng.t -> Sparse_ising.t -> int -> int array
(** Best of [k] independent samples by energy (multi-sample device mode). *)
