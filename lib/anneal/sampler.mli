(** Simulated-annealing Ising sampler (the dwave-neal [19] substitution for
    real QA hardware — see DESIGN.md §2).

    Runs Metropolis sweeps over a geometric inverse-temperature schedule.
    One [sample] models one annealing cycle of the physical machine. *)

type schedule = { sweeps : int; beta_min : float; beta_max : float }

val default_schedule : schedule
(** 256 sweeps, β from 0.1 to 16 — enough to reach ground states of
    queue-sized problems with high probability. *)

val quick_schedule : schedule
(** 96 sweeps: a deliberately shallow anneal that leaves residual thermal
    excitation, used to emulate a noisy single-shot device. *)

type kernel = [ `Reference | `Incremental ]
(** Sweep implementation.  [`Incremental] (the default) is {!Kernel}: O(1)
    flip deltas from a maintained local-field array plus a precomputed
    acceptance-threshold table.  [`Reference] is the original
    field-recomputing loop, kept for differential testing — both consume
    the RNG identically and make identical accept decisions, so they
    produce identical spins for identical seeds. *)

val sample :
  ?obs:Obs.Ctx.t ->
  ?schedule:schedule ->
  ?kernel:kernel ->
  ?init:int array ->
  Stats.Rng.t ->
  Sparse_ising.t ->
  int array
(** One annealed spin configuration (±1 entries).  [init] seeds the sweep
    (e.g. chain-coherent spins); default is uniform random.  With a live
    [obs] the call adds to the [anneal_sweeps_total] and
    [anneal_accepted_flips_total] counters. *)

val sample_best_of :
  ?obs:Obs.Ctx.t ->
  ?schedule:schedule ->
  ?kernel:kernel ->
  ?init:int array ->
  ?domains:int ->
  Stats.Rng.t ->
  Sparse_ising.t ->
  int ->
  int array
(** Best of [k] independent samples by energy (multi-sample device mode).
    Each read runs on its own RNG stream split off the caller's generator
    ({!Stats.Rng.split_n}), so for a given generator state the result is
    identical whatever [domains] (default 1) says: [domains = 1] runs the
    reads serially reusing one spin buffer; [domains > 1] fans them across
    a {!Parallel.Pool} of that many OCaml domains.  Energy ties go to the
    lowest-numbered read.  [init] seeds every read.  Obs counters
    ([anneal_sweeps_total], [anneal_accepted_flips_total],
    [anneal_reads_total]) are aggregated once after the parallel join —
    worker domains never touch [obs]. *)
