(** Simulated-annealing Ising sampler (the dwave-neal [19] substitution for
    real QA hardware — see DESIGN.md §2).

    Runs Metropolis sweeps over a geometric inverse-temperature schedule.
    One [sample] models one annealing cycle of the physical machine:
    program (with control noise), anneal [reads] times, read out (with
    readout noise).  All knobs live in one {!params} record so every
    {!Backend} implementation shares a single request shape. *)

type schedule = { sweeps : int; beta_min : float; beta_max : float }

val default_schedule : schedule
(** 256 sweeps, β from 0.1 to 16 — enough to reach ground states of
    queue-sized problems with high probability. *)

val quick_schedule : schedule
(** 96 sweeps: a deliberately shallow anneal that leaves residual thermal
    excitation, used to emulate a noisy single-shot device. *)

type kernel = [ `Reference | `Incremental ]
(** Sweep implementation.  [`Incremental] (the default) is {!Kernel}: O(1)
    flip deltas from a maintained local-field array plus a precomputed
    acceptance-threshold table.  [`Reference] is the original
    field-recomputing loop, kept for differential testing — both consume
    the RNG identically and make identical accept decisions, so they
    produce identical spins for identical seeds. *)

type params = {
  schedule : schedule;
  kernel : kernel;
  noise : Noise.t;  (** applied inside [sample]: coefficients before the
                        anneal, readout flips after *)
  reads : int;  (** independent anneals per call, best-of by energy;
                    1 = the paper's single-shot protocol *)
}
(** One device-call request.  This record replaced the growing
    optional-argument list of [sample] so backends ({!Backend.S}) and the
    machine facade exchange a single value. *)

val default_params : params
(** [default_schedule], [`Incremental], {!Noise.noise_free}, 1 read. *)

val make_params :
  ?base:params ->
  ?schedule:schedule ->
  ?kernel:kernel ->
  ?noise:Noise.t ->
  ?reads:int ->
  unit ->
  params
(** Labelled constructor; every field defaults to [base] (itself
    defaulting to {!default_params}), so adding a field never breaks
    callers. *)

val sample :
  ?obs:Obs.Ctx.t ->
  ?params:params ->
  ?init:int array ->
  ?pool:Parallel.Tasks.t ->
  ?domains:int ->
  Stats.Rng.t ->
  Sparse_ising.t ->
  int array
(** One annealed spin configuration (±1 entries).  [init] seeds every read
    (e.g. chain-coherent spins); default is uniform random per read.
    [domains] (default 1) fans [params.reads] independent anneals over a
    persistent pool — [pool] if given, else the process-wide
    {!Parallel.Tasks.shared} — in [min domains reads] contiguous chunks,
    so k reads cost ⌈k/domains⌉ reads per hand-off instead of a spawn and
    a queue round-trip each; per-domain anneal scratch is reused across
    chunks and calls ({!Parallel.Local}).  Each read runs on its own RNG
    stream split off the caller's generator ({!Stats.Rng.split_n}), and
    chunks cover ascending read ranges reduced with a strict minimum, so
    the result is bit-identical whatever [domains] or the pool size says.
    Energy ties go to the lowest-numbered read.

    Draw-order contract — the caller's RNG is consumed in exactly this
    call-site order: {!Noise.apply_coeff} (programming noise), then init
    spins (when [init] is [None]), then the Metropolis sweeps, then
    {!Noise.apply_readout}.  Zero-rate noise draws nothing, so noise-free
    seeds reproduce results from before noise moved into the sampler.
    Fault injection layered around a sample call must draw from its own
    stream ({!Backend.with_faults} does) to keep this sequence intact.

    With a live [obs] the call adds to the [anneal_sweeps_total] and
    [anneal_accepted_flips_total] counters, and [anneal_reads_total] when
    [params.reads > 1]; counters are aggregated after the parallel join —
    worker domains never touch [obs]. *)
