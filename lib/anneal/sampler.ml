type schedule = { sweeps : int; beta_min : float; beta_max : float }

let default_schedule = { sweeps = 256; beta_min = 0.1; beta_max = 16.0 }
let quick_schedule = { sweeps = 96; beta_min = 0.1; beta_max = 8.0 }

type kernel = [ `Reference | `Incremental ]

type params = {
  schedule : schedule;
  kernel : kernel;
  noise : Noise.t;
  reads : int;
}

let default_params =
  { schedule = default_schedule; kernel = `Incremental; noise = Noise.noise_free; reads = 1 }

let make_params ?(base = default_params) ?schedule ?kernel ?noise ?reads () =
  let v d o = Option.value ~default:d o in
  {
    schedule = v base.schedule schedule;
    kernel = v base.kernel kernel;
    noise = v base.noise noise;
    reads = v base.reads reads;
  }

let beta_ratio schedule =
  if schedule.sweeps <= 1 then 1.0
  else (schedule.beta_max /. schedule.beta_min) ** (1.0 /. float_of_int (schedule.sweeps - 1))

(* Anneal [spins] in place over the schedule; returns the accepted-flip
   count.  The reference loop recomputes the O(deg) local field on every
   attempt and calls [exp] on every uphill move — it is kept verbatim as
   the differential-testing baseline for the incremental kernel. *)
let anneal_in_place ~kernel ~schedule rng (ising : Sparse_ising.t) spins =
  let n = ising.Sparse_ising.n in
  let accepted = ref 0 in
  if n > 0 then begin
    let ratio = beta_ratio schedule in
    let beta = ref schedule.beta_min in
    (match kernel with
    | `Reference ->
        for _ = 1 to schedule.sweeps do
          for i = 0 to n - 1 do
            let field = Sparse_ising.local_field ising spins i in
            let delta = -2.0 *. float_of_int spins.(i) *. field in
            (* delta = E(flipped) - E(current); ties within [Kernel.tie_eps]
               are downhill so both kernels draw identically on degenerate
               (mathematically-zero) flips whose rounding differs between
               fresh summation and incremental accumulation *)
            if delta <= Kernel.tie_eps || Stats.Rng.float rng 1.0 < exp (-. !beta *. delta)
            then begin
              spins.(i) <- -spins.(i);
              incr accepted
            end
          done;
          beta := !beta *. ratio
        done
    | `Incremental ->
        let k = Kernel.init ising spins in
        for _ = 1 to schedule.sweeps do
          Kernel.sweep k ~beta:!beta rng;
          beta := !beta *. ratio
        done;
        accepted := Kernel.accepted k)
  end;
  !accepted

let random_spins_into rng spins =
  for i = 0 to Array.length spins - 1 do
    spins.(i) <- (if Stats.Rng.bool rng then 1 else -1)
  done

let checked_init n s =
  if Array.length s <> n then invalid_arg "Sampler.sample: init length"

let count_obs obs ~sweeps ~accepted =
  if not (Obs.Ctx.is_null obs) then begin
    Obs.Metrics.count obs "anneal_sweeps_total" sweeps;
    Obs.Metrics.count obs "anneal_accepted_flips_total" accepted
  end

(* one read, drawing directly from [rng] — the historical single-shot draw
   sequence, kept bit-identical so noise-free seeds reproduce across PRs *)
let sample_single ~obs ~schedule ~kernel ?init rng (ising : Sparse_ising.t) =
  let n = ising.Sparse_ising.n in
  let spins =
    match init with
    | Some s ->
        checked_init n s;
        Array.copy s
    | None -> Array.init n (fun _ -> if Stats.Rng.bool rng then 1 else -1)
  in
  let accepted = anneal_in_place ~kernel ~schedule rng ising spins in
  count_obs obs ~sweeps:schedule.sweeps ~accepted;
  spins

(* per-domain reusable anneal scratch, one buffer per spin count: chunked
   reads on the persistent pool reuse it across chunks AND across calls,
   so the parallel path allocates no scratch on the hot path (only the
   per-chunk best buffers, one of which becomes the returned result) *)
let scratch_local : (int, int array) Hashtbl.t Parallel.Local.t =
  Parallel.Local.make (fun () -> Hashtbl.create 4)

let scratch_for n =
  let tbl = Parallel.Local.get scratch_local in
  match Hashtbl.find_opt tbl n with
  | Some b -> b
  | None ->
      let b = Array.make n 0 in
      Hashtbl.add tbl n b;
      b

let sample_multi ~obs ~schedule ~kernel ?init ?pool ~domains rng (ising : Sparse_ising.t) k =
  let n = ising.Sparse_ising.n in
  Option.iter (checked_init n) init;
  (* every read gets its own RNG stream, split off the caller's generator
     up front — the spin outcome is a pure function of (rng state, k) and
     cannot depend on how many domains execute the reads *)
  let streams = Stats.Rng.split_n rng k in
  let seed_spins buf stream =
    match init with
    | Some s -> Array.blit s 0 buf 0 n
    | None -> random_spins_into stream buf
  in
  (* best-of over reads [lo, hi) into [best]; strict < keeps the winner the
     lowest-index minimal-energy read — both paths below share this fold,
     which is what makes them bit-identical *)
  let best_of_range scratch best lo hi =
    let best_e = ref infinity and total = ref 0 in
    for r = lo to hi - 1 do
      let stream = streams.(r) in
      seed_spins scratch stream;
      total := !total + anneal_in_place ~kernel ~schedule stream ising scratch;
      let e = Sparse_ising.energy ising scratch in
      if e < !best_e then begin
        best_e := e;
        Array.blit scratch 0 best 0 n
      end
    done;
    (!best_e, !total)
  in
  let best, _best_e, total_accepted =
    if domains <= 1 || k = 1 then begin
      (* serial path: one scratch buffer + one best buffer, reused across
         all k reads — no per-read allocation *)
      let scratch = Array.make n 0 and best = Array.make n 0 in
      let best_e, total = best_of_range scratch best 0 k in
      (best, best_e, total)
    end
    else begin
      (* chunked assignment on a persistent pool: k reads cost
         ⌈k/chunks⌉-read chunks (one hand-off each) instead of k hand-offs,
         and no domain is spawned — the pool outlives the call *)
      let pool = match pool with Some p -> p | None -> Parallel.Tasks.shared () in
      let chunks = min domains k in
      let per = (k + chunks - 1) / chunks in
      let chunk_best = Array.make chunks [||] in
      let chunk_e = Array.make chunks infinity in
      let chunk_acc = Array.make chunks 0 in
      let thunk c ~worker:_ =
        let lo = c * per in
        let hi = min k (lo + per) in
        if lo < hi then begin
          (* the anneal scratch is domain-local and reused; the chunk best
             must be owned by the chunk (one domain can execute several
             chunks), and the winning chunk's buffer becomes the result *)
          let best = Array.make n 0 in
          let e, acc = best_of_range (scratch_for n) best lo hi in
          chunk_best.(c) <- best;
          chunk_e.(c) <- e;
          chunk_acc.(c) <- acc
        end
      in
      Parallel.Tasks.run pool (List.init chunks thunk);
      (* chunks cover contiguous ascending read ranges, so strict < in
         chunk order again selects the lowest-index minimal-energy read *)
      let bi = ref 0 in
      for c = 1 to chunks - 1 do
        if chunk_e.(c) < chunk_e.(!bi) then bi := c
      done;
      (chunk_best.(!bi), chunk_e.(!bi), Array.fold_left ( + ) 0 chunk_acc)
    end
  in
  (* counters aggregated once, after the join — workers never touch [obs] *)
  count_obs obs ~sweeps:(k * schedule.sweeps) ~accepted:total_accepted;
  if not (Obs.Ctx.is_null obs) then Obs.Metrics.count obs "anneal_reads_total" k;
  best

(* Draw-order contract (see Noise): for one [sample] call the caller's RNG
   is consumed in exactly this sequence —
     1. [Noise.apply_coeff]   (programming noise; zero draws when σ = 0)
     2. init spins, when [init] is [None]
     3. the Metropolis sweeps (or, for [reads > 1], one [split_n] block
        after which each read drains its own private stream)
     4. [Noise.apply_readout] (readout flips; zero draws when p = 0)
   Anything injected around the call (faults, latency) must use a separate
   stream or the sequence — and with it bit-reproducibility — breaks. *)
let sample ?(obs = Obs.Ctx.null) ?(params = default_params) ?init ?pool ?(domains = 1) rng
    (ising : Sparse_ising.t) =
  if params.reads < 1 then invalid_arg "Sampler.sample: reads";
  let programmed = Noise.apply_coeff params.noise rng ising in
  let spins =
    if params.reads = 1 then
      sample_single ~obs ~schedule:params.schedule ~kernel:params.kernel ?init rng programmed
    else
      sample_multi ~obs ~schedule:params.schedule ~kernel:params.kernel ?init ?pool ~domains
        rng programmed params.reads
  in
  Noise.apply_readout params.noise rng spins
