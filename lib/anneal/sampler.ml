type schedule = { sweeps : int; beta_min : float; beta_max : float }

let default_schedule = { sweeps = 256; beta_min = 0.1; beta_max = 16.0 }
let quick_schedule = { sweeps = 96; beta_min = 0.1; beta_max = 8.0 }

let sample ?(obs = Obs.Ctx.null) ?(schedule = default_schedule) ?init rng
    (ising : Sparse_ising.t) =
  let n = ising.Sparse_ising.n in
  let spins =
    match init with
    | Some s ->
        if Array.length s <> n then invalid_arg "Sampler.sample: init length";
        Array.copy s
    | None -> Array.init n (fun _ -> if Stats.Rng.bool rng then 1 else -1)
  in
  let accepted = ref 0 in
  if n > 0 then begin
    let ratio =
      if schedule.sweeps <= 1 then 1.0
      else (schedule.beta_max /. schedule.beta_min) ** (1.0 /. float_of_int (schedule.sweeps - 1))
    in
    let beta = ref schedule.beta_min in
    for _ = 1 to schedule.sweeps do
      for i = 0 to n - 1 do
        let field = Sparse_ising.local_field ising spins i in
        let delta = -2.0 *. float_of_int spins.(i) *. field in
        (* delta = E(flipped) - E(current) *)
        if delta <= 0.0 || Stats.Rng.float rng 1.0 < exp (-. !beta *. delta) then begin
          spins.(i) <- -spins.(i);
          incr accepted
        end
      done;
      beta := !beta *. ratio
    done
  end;
  if not (Obs.Ctx.is_null obs) then begin
    Obs.Metrics.count obs "anneal_sweeps_total" schedule.sweeps;
    Obs.Metrics.count obs "anneal_accepted_flips_total" !accepted
  end;
  spins

let sample_best_of ?schedule rng ising k =
  if k < 1 then invalid_arg "Sampler.sample_best_of";
  let best = ref (sample ?schedule rng ising) in
  let best_e = ref (Sparse_ising.energy ising !best) in
  for _ = 2 to k do
    let s = sample ?schedule rng ising in
    let e = Sparse_ising.energy ising s in
    if e < !best_e then begin
      best := s;
      best_e := e
    end
  done;
  !best
