(** The quantum-annealer facade: program an embedded problem, run one
    annealing cycle, read out a logical assignment and its energy.

    This is the component a real deployment would replace with the D-Wave
    API; everything above it (HyQSAT frontend/backend) is agnostic to
    whether the sample came from hardware or from the simulator. *)

type job = {
  embedding : Embed.Embedding.t;
  objective : Qubo.Pbq.t;
      (** logical objective over problem-graph nodes, {e unnormalised}; the
          machine normalises to hardware range internally (Equation 6) *)
  edges : (int * int) list;  (** problem edges the embedding realises *)
}

type outcome = {
  assignment : (int * bool) list;  (** node → unembedded value *)
  energy : float;
      (** the unnormalised logical objective evaluated at [assignment] — the
          "energy" the HyQSAT backend interprets *)
  physical_energy : float;  (** programmed (noisy, normalised) Ising energy *)
  chain_breaks : int;  (** chains whose qubits disagreed at readout *)
  time_us : float;  (** modelled wall-clock of this call *)
}

exception Unembedded_term of string
(** An objective term touches a node without a chain or an edge without a
    realisable coupler. *)

val run :
  ?obs:Obs.Ctx.t ->
  ?noise:Noise.t ->
  ?schedule:Sampler.schedule ->
  ?chain_strength:float ->
  ?postprocess:bool ->
  ?timing:Timing.t ->
  ?reads:int ->
  ?domains:int ->
  Stats.Rng.t ->
  job ->
  outcome
(** One annealing cycle.  [reads] (default 1) runs the multi-sample device
    mode: the best of [reads] independent anneals by physical energy, fanned
    over [domains] (default 1) OCaml domains via
    {!Sampler.sample_best_of} — the result is deterministic in the seed
    whatever [domains] is, and [time_us] switches to the
    {!Timing.multi_sample_us} formula.  With a live [obs] the call adds chain breaks to
    [anneal_chain_breaks_total], records the modelled [time_us] into the
    [anneal_time_us] histogram and threads [obs] through both sampler runs
    (main anneal and post-processing).
    Defaults: noise-free, {!Sampler.default_schedule}
    (or {!Sampler.quick_schedule} when the noise model says so), chain
    strength 2.0 (relative to the normalised coefficient range), D-Wave
    2000Q timing.  [postprocess] (default [true]) runs the machine-side
    greedy-descent sample repair on the logical assignment, as the D-Wave
    post-processing pipeline does; it cannot turn an unsatisfiable clause
    set's energy to zero, only remove thermal/chain-break residue. *)
