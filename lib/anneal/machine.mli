(** The quantum-annealer facade: program an embedded problem, run one
    annealing cycle through a {!Backend}, read out a logical assignment and
    its energy.

    This is the component a real deployment would replace with the D-Wave
    API; everything above it (HyQSAT frontend/backend) is agnostic to
    whether the sample came from hardware or from the simulator, and — via
    {!run_via} — to whether the device call succeeded at all. *)

type job = {
  embedding : Embed.Embedding.t;
  objective : Qubo.Pbq.t;
      (** logical objective over problem-graph nodes, {e unnormalised}; the
          machine normalises to hardware range internally (Equation 6) *)
  edges : (int * int) list;  (** problem edges the embedding realises *)
}

type outcome = {
  assignment : (int * bool) list;  (** node → unembedded value *)
  energy : float;
      (** the unnormalised logical objective evaluated at [assignment] — the
          "energy" the HyQSAT backend interprets *)
  physical_energy : float;
      (** the returned spins' energy on the clean (pre-noise) physical
          Ising, as reported by the backend *)
  chain_breaks : int;  (** chains whose qubits disagreed at readout *)
  time_us : float;
      (** modelled wall-clock of the device call, including any supervisor
          retries/backoff when one is in the path *)
}

exception Unembedded_term of string
(** An objective term touches a node without a chain or an edge without a
    realisable coupler. *)

val run_via :
  ?obs:Obs.Ctx.t ->
  ?noise:Noise.t ->
  ?schedule:Sampler.schedule ->
  ?chain_strength:float ->
  ?postprocess:bool ->
  ?timing:Timing.t ->
  ?reads:int ->
  ?domains:int ->
  ?pool:Parallel.Tasks.t ->
  sample:(Stats.Rng.t -> Backend.request -> (Backend.response, Backend.failure) result) ->
  Stats.Rng.t ->
  job ->
  (outcome, Backend.failure) result
(** One annealing cycle through an arbitrary device call — pass
    [Supervisor.sample sup] for a supervised backend, or
    [Backend.sample b] for a bare one.  The machine builds the physical
    Ising, draws chain-coherent initial spins (before the device call, so
    a failing call always consumes the same caller-RNG prefix as a
    succeeding one), issues exactly one [sample], and on [Ok] unembeds by
    majority vote.  [Error f] is returned untouched for the caller to
    degrade on.

    [reads] (default 1) requests the multi-sample device mode (best of
    [reads] anneals, fanned over [domains] — on [pool] when given, else
    the process-wide {!Parallel.Tasks.shared} — when the backend supports
    it); [noise] rides inside the request's {!Sampler.params}.  [postprocess]
    (default [true]) runs the machine-side sample repair — a logical-level
    anneal plus greedy descent — {e host-side}, never through the backend;
    it cannot turn an unsatisfiable clause set's energy to zero, only
    remove thermal/chain-break residue.  With a live [obs] the call adds
    chain breaks to [anneal_chain_breaks_total] and records the response's
    modelled [time_us] into the [anneal_time_us] histogram.
    Defaults: noise-free, {!Sampler.default_schedule} (or
    {!Sampler.quick_schedule} when the noise model says so), chain strength
    2.0 (relative to the normalised coefficient range), D-Wave 2000Q
    timing. *)

val run :
  ?obs:Obs.Ctx.t ->
  ?noise:Noise.t ->
  ?schedule:Sampler.schedule ->
  ?chain_strength:float ->
  ?postprocess:bool ->
  ?timing:Timing.t ->
  ?reads:int ->
  ?domains:int ->
  ?pool:Parallel.Tasks.t ->
  Stats.Rng.t ->
  job ->
  outcome
(** {!run_via} over the infallible {!Backend.best_of} simulator — the
    historical direct-call entry, kept for callers (calibration, MaxSAT)
    that never need fault handling. *)
