(* Incremental-field Metropolis kernel.

   Invariant maintained across every accepted flip:

     deltas.(i) = -2 · spins.(i) · (h_i + Σ_k J_ik · spins.(k))

   i.e. the energy delta of flipping spin i, kept materialised so an
   attempted flip is one float load and a sign test — the branch resolves
   as fast as the load, which matters as much as the op count because
   accept/reject is data-random and mispredicts pay the full chain.  Only
   an *accepted* flip pays the O(deg) CSR walk: flipping i negates its own
   delta exactly and shifts each neighbour's by 4·J_ij·s_j·s_i' (the 4·J
   products are precomputed; scaling by 4 is exact).  The reference sweep
   pays an O(deg) field summation on every attempt instead.

   The second saving is the acceptance-threshold table: the Metropolis test
   "u < exp(-β·δ)" is bracketed by a precomputed table of exp values over a
   z = β·δ grid, so the transcendental only runs on draws that land inside
   one table cell.  The table lives in z-space, which makes it independent
   of β — the per-sweep rebuild a δ-space table would need degenerates to
   one multiply per attempted flip.  The brackets carry a relative margin
   (1e-9, orders of magnitude above libm's exp error) so a fast-path
   decision can never disagree with the exact fallback — the kernel stays
   RNG-for-RNG and decision-for-decision equivalent to the reference loop. *)

(* Degenerate-flip tie guard.  A mathematically-zero delta (a balanced
   spin — structurally common in QUBO-derived embedded isings) can round
   to exactly 0.0 under one summation order and to ±1 ulp under another;
   the incremental accumulation and the reference loop's fresh field
   summation are two such orders.  Since "delta <= 0" also decides whether
   a uniform is drawn, a tie that straddles zero would desynchronise the
   two kernels' RNG streams with probability ~1.  Both loops therefore
   treat any delta at or below [tie_eps] as downhill: genuine uphill
   deltas are bounded below by the coefficient granularity of the problem
   (orders of magnitude above 1e-12 after hardware-range normalisation),
   and Metropolis acceptance at such a delta is ≈ 1 anyway. *)
let tie_eps = 1e-12
let buckets = 2048

(* exp(-40) ≈ 4e-18: a uniform draw from [0,1) essentially never lands
   below it, so everything past z_cap resolves by the reject fast path *)
let z_cap = 40.0
let margin = 1e-9
let zstep = z_cap /. float_of_int buckets

(* shared between kernels: the table depends on nothing *)
let hi_table =
  Array.init (buckets + 1) (fun q ->
      exp (-.(float_of_int q *. zstep)) *. (1. +. margin))

let lo_table =
  Array.init (buckets + 1) (fun q ->
      if q = buckets then 0. (* last bucket is open-ended: no fast accept *)
      else exp (-.(float_of_int (q + 1) *. zstep)) *. (1. -. margin))

type t = {
  ising : Sparse_ising.t;
  spins : int array;  (* updated in place; owned by the caller *)
  fspins : float array;  (* float mirror of [spins] — keeps int→float
                            conversion out of the push loop *)
  deltas : float array;  (* flip delta of every spin, kept current *)
  cpl4 : float array;  (* 4 · cpl, CSR layout — the push constants *)
  mutable accepted : int;
}

let init ising spins =
  let n = ising.Sparse_ising.n in
  if Array.length spins <> n then invalid_arg "Kernel.init: spins length";
  (* same expression and rounding as the reference loop's first attempt *)
  let deltas =
    Array.init n (fun i ->
        -2.0 *. float_of_int spins.(i) *. Sparse_ising.local_field ising spins i)
  in
  let fspins = Array.map float_of_int spins in
  let cpl4 = Array.map (fun j -> 4.0 *. j) ising.Sparse_ising.cpl in
  { ising; spins; fspins; deltas; cpl4; accepted = 0 }

let spins t = t.spins
let delta t i = t.deltas.(i)

(* fields aren't stored, but deltas determine them: F_i = -δ_i / (2·s_i),
   and 1/s = s for spins in {-1, +1} *)
let field t i = -0.5 *. t.deltas.(i) *. float_of_int t.spins.(i)
let accepted t = t.accepted

(* accepted flip of spin [i]: negate it (δ_i flips sign exactly) and push
   Δδ_j = -2·s_j·ΔF_j = -4·J_ij·s_j·s_i' onto the CSR neighbourhood *)
let flip t i =
  let spins = t.spins and fspins = t.fspins and deltas = t.deltas in
  let s' = -spins.(i) in
  let fs' = -.fspins.(i) in
  spins.(i) <- s';
  fspins.(i) <- fs';
  deltas.(i) <- -.deltas.(i);
  let off = t.ising.Sparse_ising.off and nbr = t.ising.Sparse_ising.nbr in
  let cpl4 = t.cpl4 in
  for k = off.(i) to off.(i + 1) - 1 do
    let j = nbr.(k) in
    deltas.(j) <- deltas.(j) -. (cpl4.(k) *. fs' *. fspins.(j))
  done;
  t.accepted <- t.accepted + 1

let zstep_inv = 1. /. zstep

(* The sweep is the whole cost of an anneal, so it drops to unsafe array
   accesses: [i] ranges over [0, n), [off] has n+1 entries, CSR indices are
   validated by [Sparse_ising.build], and the bucket index is clamped into
   [0, buckets] (the [< 0] arm absorbs the unspecified [int_of_float] result
   of a z beyond integer range — it resolves through the exact-exp fallback
   like the rest of the open-ended last bucket). *)
let sweep t ~beta rng =
  let ising = t.ising in
  let n = ising.Sparse_ising.n in
  let spins = t.spins and fspins = t.fspins and deltas = t.deltas in
  let off = ising.Sparse_ising.off
  and nbr = ising.Sparse_ising.nbr
  and cpl4 = t.cpl4 in
  let accepted = ref t.accepted in
  (* [%accept] would be a closure over seven arrays, and the hot phase runs
     it on most attempts — each call re-reading the environment.  The body
     is written out at the three accept sites instead (the compiler has no
     flambda to do it for us). *)
  let[@inline always] accept i =
    Array.unsafe_set spins i (-Array.unsafe_get spins i);
    let fs' = -.Array.unsafe_get fspins i in
    Array.unsafe_set fspins i fs';
    Array.unsafe_set deltas i (-.Array.unsafe_get deltas i);
    for k = Array.unsafe_get off i to Array.unsafe_get off (i + 1) - 1 do
      let j = Array.unsafe_get nbr k in
      Array.unsafe_set deltas j
        (Array.unsafe_get deltas j
        -. (Array.unsafe_get cpl4 k *. fs' *. Array.unsafe_get fspins j))
    done;
    incr accepted
  in
  (* one multiply gets from δ to the bucket index; the bucket only has to
     be approximately right — the table margins absorb the rounding
     difference between [δ·(β·zstep_inv)] and [(β·δ)·zstep_inv] — and the
     exact fallback recomputes β·δ itself.  Deltas past [dcap] (z beyond
     the table) resolve on two register compares without touching the
     table: exp(-z) is below [hi_table.(buckets)] there, so [u] at or above
     that is a sure reject and anything else takes the exact fallback.
     That also guarantees the table path's bucket index is in range — no
     clamp in the loop. *)
  let bz = beta *. zstep_inv in
  let dcap = z_cap /. beta in
  let tail_hi = Array.unsafe_get hi_table buckets in
  for i = 0 to n - 1 do
    let delta = Array.unsafe_get deltas i in
    (* RNG discipline matches the reference loop exactly: downhill moves
       (and ties within [tie_eps]) consume no randomness *)
    if delta <= tie_eps then accept i
    else begin
      let u = Stats.Rng.float rng 1.0 in
      if delta >= dcap then begin
        if u >= tail_hi then () (* reject, exp-free: the frozen fast path *)
        else if u < exp (-.(beta *. delta)) then accept i
      end
      else begin
        let q = int_of_float (delta *. bz) in
        if u >= Array.unsafe_get hi_table q then () (* reject, exp-free *)
        else if u < Array.unsafe_get lo_table q then accept i (* accept, exp-free *)
        else if u < exp (-.(beta *. delta)) then accept i
      end
    end
  done;
  t.accepted <- !accepted
