type request = {
  ising : Sparse_ising.t;
  params : Sampler.params;
  init : int array option;
  domains : int;
  pool : Parallel.Tasks.t option;
  timing : Timing.t;
}

type response = { spins : int array; energy : float; time_us : float }

type failure =
  | Timeout
  | Unavailable
  | Readout_corrupt
  | Chain_break_storm
  | Breaker_open

let failure_label = function
  | Timeout -> "timeout"
  | Unavailable -> "unavailable"
  | Readout_corrupt -> "readout_corrupt"
  | Chain_break_storm -> "chain_break_storm"
  | Breaker_open -> "breaker_open"

type capabilities = {
  forced_kernel : Sampler.kernel option;
  parallel_reads : bool;
  fallible : bool;
}

module type S = sig
  val name : string
  val capabilities : capabilities
  val sample : ?obs:Obs.Ctx.t -> Stats.Rng.t -> request -> (response, failure) result
end

type t = (module S)

let name (module B : S) = B.name
let capabilities (module B : S) = B.capabilities
let sample ?obs (module B : S) rng req = B.sample ?obs rng req

let of_fn ~name:n ?(capabilities = { forced_kernel = None; parallel_reads = false; fallible = true })
    fn : t =
  (module struct
    let name = n
    let capabilities = capabilities
    let sample ?obs rng req = fn ?obs rng req
  end)

(* modelled device wall-clock of one call, from the request's timing model *)
let model_time_us req =
  if req.params.Sampler.reads <= 1 then Timing.single_sample_us req.timing
  else Timing.multi_sample_us req.timing ~samples:req.params.Sampler.reads

(* All three simulator backends make identical RNG draws and accept
   decisions (the two kernels are decision-equivalent, reads are stream-
   split), so for a given seed they return identical spins — swapping
   backends never changes an answer, only wall-clock. *)
let simulator ~name:n ~forced_kernel ~parallel_reads : t =
  (module struct
    let name = n
    let capabilities = { forced_kernel; parallel_reads; fallible = false }

    let sample ?obs rng req =
      let params =
        match forced_kernel with
        | None -> req.params
        | Some k -> { req.params with Sampler.kernel = k }
      in
      let domains = if parallel_reads then max 1 req.domains else 1 in
      let spins =
        Sampler.sample ?obs ~params ?init:req.init ?pool:req.pool ~domains rng req.ising
      in
      Ok { spins; energy = Sparse_ising.energy req.ising spins; time_us = model_time_us req }
  end)

let incremental =
  simulator ~name:"incremental" ~forced_kernel:(Some `Incremental) ~parallel_reads:false

let reference =
  simulator ~name:"reference" ~forced_kernel:(Some `Reference) ~parallel_reads:false

let best_of = simulator ~name:"best-of" ~forced_kernel:None ~parallel_reads:true

(* ------------------------------------------------------------------ *)
(* fault injection *)

type fault_profile = {
  fail_rate : float;
  latency_us : float;
  fault_seed : int;
  mix : (failure * float) list;
}

let default_mix =
  [ (Timeout, 1.0); (Unavailable, 1.0); (Readout_corrupt, 1.0); (Chain_break_storm, 1.0) ]

let default_faults = { fail_rate = 0.0; latency_us = 0.0; fault_seed = 7; mix = default_mix }

let pick_weighted rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. Float.max 0. w) 0. mix in
  if total <= 0. then Unavailable
  else begin
    let u = Stats.Rng.float rng total in
    let rec go acc = function
      | [] -> Unavailable
      | (f, w) :: rest ->
          let acc = acc +. Float.max 0. w in
          if u < acc then f else go acc rest
    in
    go 0. mix
  end

let with_faults profile (module Inner : S) : t =
  (module struct
    let name = Inner.name ^ "+faults"
    let capabilities = { Inner.capabilities with fallible = true }

    (* the fault stream is private to the wrapper: deciding whether a call
       fails (and which latency it gets) never touches the caller's RNG, so
       a zero-rate injector is bit-identical to the inner backend, and a
       failed call leaves the caller's stream exactly where it was — the
       retry reproduces what the original call would have returned *)
    let frng = Stats.Rng.create ~seed:profile.fault_seed

    let sample ?obs rng req =
      if profile.fail_rate > 0. && Stats.Rng.float frng 1.0 < profile.fail_rate then
        Error (pick_weighted frng profile.mix)
      else
        match Inner.sample ?obs rng req with
        | Error _ as e -> e
        | Ok resp ->
            if profile.latency_us <= 0. then Ok resp
            else
              (* uniform on [0, 2·mean): mean extra latency = latency_us *)
              Ok { resp with time_us = resp.time_us +. Stats.Rng.float frng (2. *. profile.latency_us) }
  end)

(* ------------------------------------------------------------------ *)
(* named specs, for configs / job policies / the CLI *)

type flavor = [ `Incremental | `Reference | `Best_of ]

type spec = { flavor : flavor; faults : fault_profile }

let default_spec = { flavor = `Best_of; faults = default_faults }

let flavor_names = [ "incremental"; "reference"; "best-of" ]

let flavor_label = function
  | `Incremental -> "incremental"
  | `Reference -> "reference"
  | `Best_of -> "best-of"

let flavor_of_string = function
  | "incremental" -> Some `Incremental
  | "reference" -> Some `Reference
  | "best-of" | "best_of" | "bestof" -> Some `Best_of
  | _ -> None

let of_flavor = function
  | `Incremental -> incremental
  | `Reference -> reference
  | `Best_of -> best_of

let of_spec s =
  let b = of_flavor s.flavor in
  if s.faults.fail_rate > 0. || s.faults.latency_us > 0. then with_faults s.faults b else b
