(** Incremental-field Metropolis kernel — the annealer's hot loop.

    Maintains the invariant [field i = h_i + Σ_k J_ik·spins.(k)] across
    flips, so an attempted flip reads its energy delta in O(1) and only an
    {e accepted} flip walks the CSR neighbourhood to update fields.  A
    precomputed acceptance-threshold table (exp values over a β·δ grid with
    a conservative margin) keeps [exp] out of the inner loop: a uniform
    draw outside the bracket decides immediately, and only draws inside a
    table cell fall back to the exact test.

    The kernel is decision-for-decision and RNG-draw-for-RNG-draw
    equivalent to {!Sampler}'s reference sweep: downhill moves consume no
    randomness, uphill moves consume exactly one draw, and the fast paths
    can never disagree with the exact Metropolis test.  Field values are
    accumulated incrementally, so they may differ from a fresh summation
    by floating-point rounding; both loops classify deltas at or below
    {!tie_eps} as downhill so a mathematically-zero flip whose rounding
    residue straddles zero cannot desynchronise the two RNG streams.

    Used through [Sampler.sample ~kernel:`Incremental] (the default); the
    reference loop survives for differential testing. *)

type t

val tie_eps : float
(** Deltas at or below this are classified downhill (accepted draw-free)
    by {e both} kernels — the guard that keeps degenerate zero-delta flips
    from desynchronising their RNG streams when rounding leaves a ±1 ulp
    residue in one summation order but not the other. *)

val init : Sparse_ising.t -> int array -> t
(** [init ising spins] builds the field array for the given configuration.
    [spins] is {e borrowed and mutated in place} by {!sweep} — callers
    wanting an untouched copy must copy first.
    @raise Invalid_argument if [Array.length spins <> ising.n]. *)

val sweep : t -> beta:float -> Stats.Rng.t -> unit
(** One Metropolis sweep over all spins at inverse temperature [beta]. *)

val flip : t -> int -> unit
(** Unconditionally flip spin [i] and push the field change onto its
    neighbours — the accepted-move primitive, exposed so tests can stress
    the field invariant directly. *)

val spins : t -> int array
(** The (live, caller-owned) spin array. *)

val delta : t -> int -> float
(** Current incremental flip delta of spin [i] — the materialised
    [-2·s_i·field i] the sweep's Metropolis test reads. *)

val field : t -> int -> float
(** Current incremental local field of spin [i] — matches
    {!Sparse_ising.local_field} up to accumulated rounding. *)

val accepted : t -> int
(** Total flips accepted since {!init}. *)
