type t = {
  n : int;
  h : float array;
  off : int array;
  nbr : int array;
  cpl : float array;
  offset : float;
}

let build ~n ~h ~couplings ~offset =
  if Array.length h <> n then invalid_arg "Sparse_ising.build: h length";
  (* accumulate duplicates; an int key [i * n + j] (i < j) avoids the tuple
     boxing a pair key would allocate per lookup on this hot construction
     path (one build per annealer call) *)
  let tbl = Hashtbl.create (List.length couplings) in
  List.iter
    (fun ((i, j), c) ->
      if i = j || i < 0 || j < 0 || i >= n || j >= n then
        invalid_arg "Sparse_ising.build: bad coupling";
      let key = if i < j then (i * n) + j else (j * n) + i in
      Hashtbl.replace tbl key (c +. Option.value ~default:0. (Hashtbl.find_opt tbl key)))
    couplings;
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun key _ ->
      deg.(key / n) <- deg.(key / n) + 1;
      deg.(key mod n) <- deg.(key mod n) + 1)
    tbl;
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let total = off.(n) in
  let nbr = Array.make (max total 1) 0 and cpl = Array.make (max total 1) 0. in
  let cursor = Array.copy off in
  Hashtbl.iter
    (fun key c ->
      let i = key / n and j = key mod n in
      nbr.(cursor.(i)) <- j;
      cpl.(cursor.(i)) <- c;
      cursor.(i) <- cursor.(i) + 1;
      nbr.(cursor.(j)) <- i;
      cpl.(cursor.(j)) <- c;
      cursor.(j) <- cursor.(j) + 1)
    tbl;
  { n; h = Array.copy h; off; nbr; cpl; offset }

let local_field t spins i =
  let f = ref t.h.(i) in
  for k = t.off.(i) to t.off.(i + 1) - 1 do
    f := !f +. (t.cpl.(k) *. float_of_int spins.(t.nbr.(k)))
  done;
  !f

let energy t spins =
  let e = ref t.offset in
  for i = 0 to t.n - 1 do
    e := !e +. (t.h.(i) *. float_of_int spins.(i));
    for k = t.off.(i) to t.off.(i + 1) - 1 do
      let j = t.nbr.(k) in
      if j > i then e := !e +. (t.cpl.(k) *. float_of_int (spins.(i) * spins.(j)))
    done
  done;
  !e
