(** Fault-tolerant supervision of a {!Backend}.

    Wraps any backend with per-call deadlines, bounded retries with
    deterministic exponential backoff + jitter, and a circuit breaker, so
    the solver core sees either a good {!Backend.response} or one typed
    {!Backend.failure} it can degrade on.  Everything is modelled, not
    measured: deadlines compare against the response's modelled [time_us],
    backoff waits are added to it rather than slept, jitter comes from a
    private seeded RNG, and the breaker cooldown is counted in fast-failed
    {e calls} rather than wall time — a supervised run is exactly
    reproducible from its seeds.

    Failing attempts consume nothing from the caller's RNG (built-in fault
    injectors draw from their own stream), so a retry re-runs the exact
    sample the failed attempt would have produced. *)

type policy = {
  timeout_us : float;  (** per-call deadline on modelled device time;
                           [infinity] disables it *)
  retries : int;  (** extra attempts after the first (so at most
                      [retries + 1] backend calls per [sample]) *)
  backoff_base_us : float;  (** wait before retry 1 *)
  backoff_mult : float;  (** multiplier per further retry *)
  backoff_max_us : float;  (** backoff cap, pre-jitter *)
  backoff_jitter : float;  (** relative jitter: wait × (1 ± j·u) *)
  breaker_threshold : int;  (** consecutive failures that open the breaker *)
  breaker_cooldown : int;  (** calls fast-failed while open before one
                               probe is admitted *)
  half_open_probes : int;  (** consecutive successes needed to close *)
}

val default_policy : policy
(** No deadline, 2 retries, 200 µs × 2 backoff capped at 5 ms with 10 %
    jitter; breaker opens after 5 consecutive failures, fast-fails 8
    calls, closes after 1 good probe. *)

val make_policy :
  ?base:policy ->
  ?timeout_us:float ->
  ?retries:int ->
  ?backoff_base_us:float ->
  ?backoff_mult:float ->
  ?backoff_max_us:float ->
  ?backoff_jitter:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:int ->
  ?half_open_probes:int ->
  unit ->
  policy
(** Labelled constructor over [base] (default {!default_policy}). *)

type t

type state = [ `Closed | `Open | `Half_open ]

type stats = {
  calls : int;  (** [sample] invocations *)
  successes : int;
  failures : int;  (** failed attempts, including fast-fails *)
  attempts : int;  (** backend calls actually made *)
  retries : int;
  fast_fails : int;  (** calls short-circuited with [Breaker_open] *)
  transitions : int;  (** breaker state changes *)
}

val create : ?obs:Obs.Ctx.t -> ?policy:policy -> ?seed:int -> Backend.t -> t
(** [seed] (default 0) seeds the private jitter RNG.  With a live [obs]
    the supervisor maintains counter [qa_backend_calls_total], labelled
    counters [qa_failures_total{reason=…}], [qa_retries_total] and
    [qa_breaker_transitions_total{to=…}], and gauge [qa_breaker_state]
    (0 closed / 1 open / 2 half-open). *)

val backend : t -> Backend.t
val policy : t -> policy
val state : t -> state
val stats : t -> stats

val sample : t -> Stats.Rng.t -> Backend.request -> (Backend.response, Backend.failure) result
(** One supervised call.  Calls are serialised on an internal mutex, so a
    single supervisor may be shared by concurrent solver domains — it then
    models one shared, rate-limited device whose circuit breaker protects
    every job going through it (the server dispatcher does exactly this).  While the breaker is open the backend is not
    touched and the call fast-fails with [Breaker_open].  A response whose
    modelled time exceeds [timeout_us] is discarded as [Timeout] (deadline
    hit mid-read) and charged the full deadline.  On success, [time_us]
    includes the modelled time wasted on failed attempts and backoff
    waits.  After [retries + 1] failed attempts — or as soon as a failure
    opens the breaker — the last failure is returned and the caller is
    expected to degrade (pure CDCL for that iteration). *)
