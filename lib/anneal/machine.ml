type job = {
  embedding : Embed.Embedding.t;
  objective : Qubo.Pbq.t;
  edges : (int * int) list;
}

type outcome = {
  assignment : (int * bool) list;
  energy : float;
  physical_energy : float;
  chain_breaks : int;
  time_us : float;
}

exception Unembedded_term of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unembedded_term s)) fmt

let chain_of job node =
  match Embed.Embedding.chain job.embedding node with
  | Some c -> c
  | None -> fail "node %d has no chain" node

(* physical coupler realising a logical edge: the registered one, else any
   adjacent qubit pair between the chains *)
let coupler_of job u v =
  match Embed.Embedding.edge_coupler job.embedding u v with
  | Some (qu, qv) -> if u < v then (qu, qv) else (qv, qu)
  | None ->
      let cu = chain_of job u and cv = chain_of job v in
      let g = job.embedding.Embed.Embedding.graph in
      let found = ref None in
      List.iter
        (fun qu ->
          List.iter
            (fun qv ->
              if !found = None && Chimera.Graph.adjacent g qu qv then found := Some (qu, qv))
            cv)
        cu;
      (match !found with Some c -> c | None -> fail "edge (%d,%d) has no coupler" u v)

(* steepest-descent repair on the logical objective: models the machine-side
   post-processing D-Wave applies to raw samples (paper's related work [6]);
   chain breaks and thermal residue mostly vanish here while genuinely
   frustrated (unsatisfiable) problems keep a positive energy floor *)
let greedy_descent objective lookup =
  let vars = Qubo.Pbq.vars objective in
  (* adjacency: var → (neighbour, coefficient) list, built once *)
  let adj = Hashtbl.create (List.length vars) in
  let add v w c = Hashtbl.replace adj v ((w, c) :: Option.value ~default:[] (Hashtbl.find_opt adj v)) in
  Qubo.Pbq.iter_quad objective (fun i j c ->
      add i j c;
      add j i c);
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 8 do
    improved := false;
    incr passes;
    List.iter
      (fun v ->
        let current = Hashtbl.find lookup v in
        (* energy change of setting v := true, given the other values *)
        let delta = ref (Qubo.Pbq.linear objective v) in
        List.iter
          (fun (w, c) -> if Hashtbl.find lookup w then delta := !delta +. c)
          (Option.value ~default:[] (Hashtbl.find_opt adj v));
        let delta = if current then -. !delta else !delta in
        if delta < -1e-12 then begin
          Hashtbl.replace lookup v (not current);
          improved := true
        end)
      vars
  done

let run_via ?(obs = Obs.Ctx.null) ?(noise = Noise.noise_free) ?schedule
    ?(chain_strength = 2.0) ?(postprocess = true)
    ?(timing = Timing.d_wave_2000q) ?(reads = 1) ?(domains = 1) ?pool ~sample rng job =
  if reads < 1 then invalid_arg "Machine.run: reads";
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        if noise.Noise.shallow_anneal then Sampler.quick_schedule else Sampler.default_schedule
  in
  (* normalise to hardware range and move to spin space *)
  let normalized = Qubo.Normalize.apply job.objective in
  let logical = Qubo.Ising.of_qubo normalized in
  (* dense physical index over the qubits of all chains *)
  let phys_of_qubit = Hashtbl.create 256 in
  let qubit_of_phys = ref [] in
  let touch q =
    if not (Hashtbl.mem phys_of_qubit q) then begin
      Hashtbl.replace phys_of_qubit q (Hashtbl.length phys_of_qubit);
      qubit_of_phys := q :: !qubit_of_phys
    end
  in
  let nodes = Embed.Embedding.nodes job.embedding in
  List.iter (fun node -> List.iter touch (chain_of job node)) nodes;
  let n_phys = Hashtbl.length phys_of_qubit in
  let h = Array.make (max n_phys 1) 0. in
  let couplings = ref [] in
  (* distribute each logical field over its chain *)
  let logical_h node =
    match Hashtbl.find_opt logical.Qubo.Ising.spin_of_var node with
    | Some i -> logical.Qubo.Ising.h.(i)
    | None -> 0.
  in
  List.iter
    (fun node ->
      let chain = chain_of job node in
      let share = logical_h node /. float_of_int (List.length chain) in
      List.iter (fun q -> h.(Hashtbl.find phys_of_qubit q) <- share) chain)
    nodes;
  (* logical couplings onto their physical couplers *)
  List.iter
    (fun ((iu, iv), c) ->
      let u = logical.Qubo.Ising.var_of_spin.(iu)
      and v = logical.Qubo.Ising.var_of_spin.(iv) in
      let qu, qv = coupler_of job u v in
      couplings :=
        ((Hashtbl.find phys_of_qubit qu, Hashtbl.find phys_of_qubit qv), c) :: !couplings)
    logical.Qubo.Ising.j;
  (* ferromagnetic chain couplers on every internal hardware edge *)
  let g = job.embedding.Embed.Embedding.graph in
  List.iter
    (fun node ->
      let chain = chain_of job node in
      let rec pairs = function
        | [] -> ()
        | q :: rest ->
            List.iter
              (fun q' ->
                if Chimera.Graph.adjacent g q q' then
                  couplings :=
                    ((Hashtbl.find phys_of_qubit q, Hashtbl.find phys_of_qubit q'),
                      -.chain_strength)
                    :: !couplings)
              rest;
            pairs rest
      in
      pairs chain)
    nodes;
  let ising =
    Sparse_ising.build ~n:n_phys ~h:(Array.sub h 0 n_phys) ~couplings:!couplings
      ~offset:logical.Qubo.Ising.offset
  in
  (* chain-coherent initial spins, mirroring how physical chains freeze out
     as single logical degrees of freedom; drawn before the device call so
     a failed call consumes exactly one draw block either way *)
  let init = Array.make (max n_phys 1) 1 in
  List.iter
    (fun node ->
      let s = if Stats.Rng.bool rng then 1 else -1 in
      List.iter (fun q -> init.(Hashtbl.find phys_of_qubit q) <- s) (chain_of job node))
    nodes;
  let request =
    {
      Backend.ising;
      params = Sampler.make_params ~schedule ~noise ~reads ();
      init = Some (Array.sub init 0 n_phys);
      domains;
      pool;
      timing;
    }
  in
  match (sample rng request : (Backend.response, Backend.failure) result) with
  | Error _ as e -> e
  | Ok resp ->
      let spins = resp.Backend.spins in
      (* unembed by majority vote *)
      let chain_breaks = ref 0 in
      let assignment =
        List.map
          (fun node ->
            let chain = chain_of job node in
            let up =
              List.fold_left
                (fun acc q -> if spins.(Hashtbl.find phys_of_qubit q) = 1 then acc + 1 else acc)
                0 chain
            in
            let len = List.length chain in
            if up > 0 && up < len then incr chain_breaks;
            let value =
              if 2 * up > len then true
              else if 2 * up < len then false
              else Stats.Rng.bool rng
            in
            (node, value))
          nodes
      in
      let lookup = Hashtbl.create (List.length assignment) in
      List.iter (fun (node, v) -> Hashtbl.replace lookup node v) assignment;
      List.iter
        (fun v -> if not (Hashtbl.mem lookup v) then fail "objective var %d not in embedding" v)
        (Qubo.Pbq.vars job.objective);
      if postprocess then begin
        (* D-Wave-style optimisation post-processing: a short logical-level
           anneal seeded from the unembedded sample, then steepest descent.
           This runs host-side, so it never goes through the backend — it is
           available even when the device is down.  It removes the energy
           residue long chains leave behind; a genuinely unsatisfiable
           clause set keeps its positive floor *)
        let logical_sparse =
          Sparse_ising.build ~n:logical.Qubo.Ising.num_spins
            ~h:(Array.sub logical.Qubo.Ising.h 0 logical.Qubo.Ising.num_spins)
            ~couplings:logical.Qubo.Ising.j ~offset:logical.Qubo.Ising.offset
        in
        let init =
          Array.init logical.Qubo.Ising.num_spins (fun i ->
              if Hashtbl.find lookup logical.Qubo.Ising.var_of_spin.(i) then 1 else -1)
        in
        (* depth scales with the logical problem: the paper's noise-free
           reference runs dwave-neal "with a long timeout" [19] *)
        let post_schedule =
          {
            Sampler.sweeps = max 128 (8 * logical.Qubo.Ising.num_spins);
            beta_min = 0.3;
            beta_max = 12.;
          }
        in
        let params = Sampler.make_params ~schedule:post_schedule () in
        let spins' = Sampler.sample ~obs ~params ~init rng logical_sparse in
        Array.iteri
          (fun i s -> Hashtbl.replace lookup logical.Qubo.Ising.var_of_spin.(i) (s = 1))
          spins';
        greedy_descent job.objective lookup
      end;
      let assignment = List.map (fun (node, _) -> (node, Hashtbl.find lookup node)) assignment in
      let energy = Qubo.Pbq.eval job.objective (Hashtbl.find lookup) in
      if not (Obs.Ctx.is_null obs) then begin
        Obs.Metrics.count obs "anneal_chain_breaks_total" !chain_breaks;
        Obs.Metrics.observe obs "anneal_time_us" resp.Backend.time_us
      end;
      Ok
        {
          assignment;
          energy;
          physical_energy = resp.Backend.energy;
          chain_breaks = !chain_breaks;
          time_us = resp.Backend.time_us;
        }

let run ?obs ?noise ?schedule ?chain_strength ?postprocess ?timing ?reads ?domains ?pool rng
    job =
  let sample rng req = Backend.sample ?obs Backend.best_of rng req in
  match
    run_via ?obs ?noise ?schedule ?chain_strength ?postprocess ?timing ?reads ?domains ?pool
      ~sample rng job
  with
  | Ok outcome -> outcome
  | Error _ -> assert false (* the simulator backends are infallible *)
