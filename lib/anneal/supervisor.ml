type policy = {
  timeout_us : float;
  retries : int;
  backoff_base_us : float;
  backoff_mult : float;
  backoff_max_us : float;
  backoff_jitter : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  half_open_probes : int;
}

let default_policy =
  {
    timeout_us = infinity;
    retries = 2;
    backoff_base_us = 200.0;
    backoff_mult = 2.0;
    backoff_max_us = 5_000.0;
    backoff_jitter = 0.1;
    breaker_threshold = 5;
    breaker_cooldown = 8;
    half_open_probes = 1;
  }

let make_policy ?(base = default_policy) ?timeout_us ?retries ?backoff_base_us ?backoff_mult
    ?backoff_max_us ?backoff_jitter ?breaker_threshold ?breaker_cooldown ?half_open_probes () =
  let v d o = Option.value ~default:d o in
  {
    timeout_us = v base.timeout_us timeout_us;
    retries = v base.retries retries;
    backoff_base_us = v base.backoff_base_us backoff_base_us;
    backoff_mult = v base.backoff_mult backoff_mult;
    backoff_max_us = v base.backoff_max_us backoff_max_us;
    backoff_jitter = v base.backoff_jitter backoff_jitter;
    breaker_threshold = v base.breaker_threshold breaker_threshold;
    breaker_cooldown = v base.breaker_cooldown breaker_cooldown;
    half_open_probes = v base.half_open_probes half_open_probes;
  }

type breaker =
  | Closed of int  (* consecutive failures so far *)
  | Open of int  (* fast-fails remaining before a probe is allowed *)
  | Half_open of int  (* successful probes still needed to close *)

type state = [ `Closed | `Open | `Half_open ]

let state_of_breaker = function
  | Closed _ -> `Closed
  | Open _ -> `Open
  | Half_open _ -> `Half_open

let state_label = function `Closed -> "closed" | `Open -> "open" | `Half_open -> "half_open"
let state_gauge = function `Closed -> 0.0 | `Open -> 1.0 | `Half_open -> 2.0

type stats = {
  calls : int;
  successes : int;
  failures : int;
  attempts : int;
  retries : int;
  fast_fails : int;
  transitions : int;
}

let zero_stats =
  { calls = 0; successes = 0; failures = 0; attempts = 0; retries = 0; fast_fails = 0; transitions = 0 }

type t = {
  backend : Backend.t;
  policy : policy;
  obs : Obs.Ctx.t;
  rng : Stats.Rng.t;  (* private: backoff jitter only *)
  mutex : Mutex.t;
      (* serialises [sample]: a supervisor shared across solver domains
         (the server dispatcher's per-pool instance) models one shared
         rate-limited device, so calls queue rather than race the breaker
         state.  Per-solve supervisors never contend on it. *)
  mutable breaker : breaker;
  mutable stats : stats;
}

let create ?(obs = Obs.Ctx.null) ?(policy = default_policy) ?(seed = 0) backend =
  let t =
    {
      backend;
      policy;
      obs;
      rng = Stats.Rng.create ~seed;
      mutex = Mutex.create ();
      breaker = Closed 0;
      stats = zero_stats;
    }
  in
  Obs.Metrics.gauge obs "qa_breaker_state" (state_gauge `Closed);
  (* pre-register the unlabelled counters so exports show explicit zeros *)
  Obs.Metrics.incr ~by:0.0 obs "qa_backend_calls_total";
  Obs.Metrics.incr ~by:0.0 obs "qa_retries_total";
  t

let backend t = t.backend
let policy t = t.policy
let stats t = t.stats
let state t = state_of_breaker t.breaker

let transition t next =
  t.breaker <- next;
  t.stats <- { t.stats with transitions = t.stats.transitions + 1 };
  let s = state_of_breaker next in
  if not (Obs.Ctx.is_null t.obs) then begin
    Obs.Metrics.incr t.obs
      (Obs.Metrics.labelled "qa_breaker_transitions_total" [ ("to", state_label s) ]);
    Obs.Metrics.gauge t.obs "qa_breaker_state" (state_gauge s)
  end

let note_success t =
  match t.breaker with
  | Closed 0 -> ()
  | Closed _ -> t.breaker <- Closed 0 (* same state: not a transition *)
  | Half_open probes_left ->
      if probes_left <= 1 then transition t (Closed 0)
      else t.breaker <- Half_open (probes_left - 1)
  | Open _ -> () (* unreachable: Open never reaches the backend *)

let note_failure t =
  match t.breaker with
  | Closed n ->
      let n = n + 1 in
      if n >= t.policy.breaker_threshold then transition t (Open t.policy.breaker_cooldown)
      else t.breaker <- Closed n
  | Half_open _ -> transition t (Open t.policy.breaker_cooldown)
  | Open _ -> ()

(* Deterministic exponential backoff with jitter drawn from the
   supervisor's private RNG — modelled microseconds, never slept. *)
let backoff_us t ~attempt =
  let base =
    Float.min t.policy.backoff_max_us
      (t.policy.backoff_base_us *. (t.policy.backoff_mult ** float_of_int attempt))
  in
  let j = t.policy.backoff_jitter in
  if j <= 0.0 then base
  else base *. (1.0 +. (j *. ((2.0 *. Stats.Rng.float t.rng 1.0) -. 1.0)))

let count_failure t reason =
  t.stats <- { t.stats with failures = t.stats.failures + 1 };
  if not (Obs.Ctx.is_null t.obs) then
    Obs.Metrics.incr t.obs
      (Obs.Metrics.labelled "qa_failures_total" [ ("reason", Backend.failure_label reason) ])

(* One supervised call.  The caller's [rng] is only consumed by successful
   or failing *backend* attempts — and a failing attempt consumes nothing
   (fault injectors draw from their own stream), so retries are exact
   reruns.  Breaker cooldown is counted in fast-failed calls rather than
   modelled time: time only advances on calls, so a wall-clock cooldown
   would deadlock a deterministic replay. *)
let sample t rng (req : Backend.request) =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  t.stats <- { t.stats with calls = t.stats.calls + 1 };
  Obs.Metrics.incr t.obs "qa_backend_calls_total";
  let fast_fail () =
    t.stats <- { t.stats with fast_fails = t.stats.fast_fails + 1 };
    count_failure t Backend.Breaker_open;
    Error Backend.Breaker_open
  in
  let admit =
    match t.breaker with
    | Closed _ -> true
    | Half_open _ -> true
    | Open remaining ->
        if remaining > 1 then begin
          t.breaker <- Open (remaining - 1);
          false
        end
        else begin
          (* cooldown spent: let this call through as the probe *)
          transition t (Half_open t.policy.half_open_probes);
          true
        end
  in
  if not admit then fast_fail ()
  else begin
    (* wasted_us: modelled time burnt on failed attempts + backoff waits,
       folded into the successful response's [time_us] *)
    let rec attempt_loop ~attempt ~wasted_us =
      t.stats <- { t.stats with attempts = t.stats.attempts + 1 };
      let outcome =
        match Backend.sample ~obs:t.obs t.backend rng req with
        | Ok resp when resp.Backend.time_us > t.policy.timeout_us ->
            (* the deadline fell mid-read: the device finished but past the
               budget, so the result is discarded and the call charged the
               full timeout *)
            Error (Backend.Timeout, t.policy.timeout_us)
        | Ok resp -> Ok resp
        | Error f -> Error (f, 0.0)
      in
      match outcome with
      | Ok resp ->
          note_success t;
          t.stats <- { t.stats with successes = t.stats.successes + 1 };
          Ok { resp with Backend.time_us = resp.Backend.time_us +. wasted_us }
      | Error (reason, charged_us) ->
          count_failure t reason;
          note_failure t;
          let breaker_open = match t.breaker with Open _ -> true | _ -> false in
          if attempt >= t.policy.retries || breaker_open then Error reason
          else begin
            t.stats <- { t.stats with retries = t.stats.retries + 1 };
            Obs.Metrics.incr t.obs "qa_retries_total";
            let wait = backoff_us t ~attempt in
            attempt_loop ~attempt:(attempt + 1) ~wasted_us:(wasted_us +. charged_us +. wait)
          end
    in
    attempt_loop ~attempt:0 ~wasted_us:0.0
  end
