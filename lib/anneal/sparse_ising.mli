(** Sparse Ising problem over an arbitrary spin set, in CSR-like form for the
    sampler's hot loop. *)

type t = {
  n : int;
  h : float array;
  (* CSR adjacency: for spin i, neighbours nbr.(off.(i) .. off.(i+1)-1) with
     couplings cpl at the same positions *)
  off : int array;
  nbr : int array;
  cpl : float array;
  offset : float;
}

val build : n:int -> h:float array -> couplings:((int * int) * float) list -> offset:float -> t
(** [couplings] keys need not be deduplicated; repeated pairs accumulate
    (internally on an unboxed [i*n + j] key — one build runs per annealer
    call, so construction allocation matters). *)

val energy : t -> int array -> float
(** Energy of a ±1 spin configuration. *)

val local_field : t -> int array -> int -> float
(** [h_i + Σ_j J_ij s_j], the field seen by spin [i]. *)
