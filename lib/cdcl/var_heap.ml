type t = {
  activity : float array;
  heap : int array; (* heap positions -> var *)
  pos : int array; (* var -> heap position, -1 if absent *)
  mutable size : int;
}

let lt t v w = t.activity.(v) > t.activity.(w) (* max-heap *)

let swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.pos.(vj) <- i;
  t.pos.(vi) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let create n activity =
  let t = { activity; heap = Array.init n Fun.id; pos = Array.init n Fun.id; size = n } in
  for i = (n / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let in_heap t v = t.pos.(v) >= 0
let capacity t = Array.length t.pos
let is_empty t = t.size = 0
let size t = t.size

let insert t v =
  if not (in_heap t v) then begin
    t.pos.(v) <- t.size;
    t.heap.(t.size) <- v;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end

let pop_max t =
  if t.size = 0 then raise Not_found;
  let v = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.pos.(t.heap.(0)) <- 0;
    sift_down t 0
  end;
  t.pos.(v) <- -1;
  v

let notify_increase t v = if in_heap t v then sift_up t t.pos.(v)

let grow t n' activity =
  (* a fresh heap over [0..n'-1] reading from [activity] (the caller's
     reallocated array), preserving current membership and order; new
     variables start absent — the caller inserts them as it creates them *)
  let cap = max n' 1 in
  let heap = Array.make cap 0 in
  Array.blit t.heap 0 heap 0 t.size;
  let pos = Array.make cap (-1) in
  Array.blit t.pos 0 pos 0 (Array.length t.pos);
  { activity; heap; pos; size = t.size }

let rebuild t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done
