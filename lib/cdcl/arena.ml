(* Flat clause arena (MiniSAT RegionAllocator shape, cf. minisat-ml).

   One growable [int array] holds every clause as a contiguous block

     [ header | origin | lit_0 ... lit_{size-1} ]

   addressed by the word index of its header (the clause ref, [cref]).
   The header packs

     bit 0   deleted
     bit 1   learnt
     bit 2   relocated  (GC forwarding marker; [origin] then holds the
                         forwarding cref in the destination arena)
     bits 3+ size       (number of literals)

   Learnt-clause activities live in a float side array indexed by cref, so
   activity arithmetic stays exact (bit-identical to a boxed-float field)
   while the int arena stays scan-friendly.  Deleted blocks are only
   accounted ([wasted]); space is reclaimed by copying live clauses into a
   fresh arena ({!reloc}), the solver rewriting its crefs as it goes. *)

type t = {
  mutable data : int array;
  mutable act : float array; (* activity of the clause headed at index i *)
  mutable sz : int; (* first free word *)
  mutable wasted : int; (* words occupied by deleted clauses *)
}

type cref = int

let lits_offset = 2
let size_shift = 3

let create ?(capacity = 1024) () =
  let capacity = max 16 capacity in
  { data = Array.make capacity 0; act = Array.make capacity 0.; sz = 0; wasted = 0 }

let words t = t.sz
let wasted t = t.wasted
let data t = t.data

let ensure t extra =
  let need = t.sz + extra in
  if need > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let d = Array.make !cap 0 in
    Array.blit t.data 0 d 0 t.sz;
    t.data <- d;
    let a = Array.make !cap 0. in
    Array.blit t.act 0 a 0 t.sz;
    t.act <- a
  end

let alloc t ~learnt ~origin (lits : Sat.Lit.t array) =
  let size = Array.length lits in
  assert (size >= 2);
  ensure t (size + lits_offset);
  let c = t.sz in
  t.data.(c) <- (size lsl size_shift) lor if learnt then 2 else 0;
  t.data.(c + 1) <- origin;
  Array.blit lits 0 t.data (c + lits_offset) size;
  t.act.(c) <- 0.;
  t.sz <- c + size + lits_offset;
  c

let size t c = t.data.(c) lsr size_shift
let learnt t c = t.data.(c) land 2 <> 0
let deleted t c = t.data.(c) land 1 <> 0
let origin t c = t.data.(c + 1)
let lit t c i = t.data.(c + lits_offset + i)
let set_lit t c i l = t.data.(c + lits_offset + i) <- l
let activity t c = t.act.(c)
let set_activity t c a = t.act.(c) <- a

let lits t c = Array.sub t.data (c + lits_offset) (size t c)
let lit_list t c = Array.to_list (lits t c)

let delete t c =
  assert (not (deleted t c));
  t.data.(c) <- t.data.(c) lor 1;
  t.wasted <- t.wasted + size t c + lits_offset

(* GC: copy the clause into [into] on first touch, leave a forwarding cref
   behind (relocated bit + origin word), answer the forwarding cref on
   every later touch.  Deleted clauses must never be relocated — the
   solver purges them from every cref-holding structure first. *)
let reloc from ~into c =
  if from.data.(c) land 4 <> 0 then from.data.(c + 1)
  else begin
    assert (not (deleted from c));
    let size = size from c in
    ensure into (size + lits_offset);
    let c' = into.sz in
    into.data.(c') <- from.data.(c);
    into.data.(c' + 1) <- from.data.(c + 1);
    Array.blit from.data (c + lits_offset) into.data (c' + lits_offset) size;
    into.act.(c') <- from.act.(c);
    into.sz <- c' + size + lits_offset;
    from.data.(c) <- from.data.(c) lor 4;
    from.data.(c + 1) <- c';
    c'
  end
