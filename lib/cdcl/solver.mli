(** Conflict-driven clause-learning SAT solver.

    A from-scratch MiniSAT-style engine: two-watched-literal propagation,
    first-UIP conflict analysis with clause minimisation, activity-ordered
    decision heap (VSIDS or CHB), phase saving, Luby or EMA restarts, and
    learnt-clause database reduction.

    Beyond a classical solver, it exposes the instrumentation HyQSAT needs:
    {ul
    {- per-original-clause activity scores, bumped by a constant whenever the
       clause participates in conflict resolution (paper §IV-A);}
    {- per-original-clause visit counters split into propagation-step visits
       and conflict-resolving visits (paper Fig. 5);}
    {- a single-iteration {!step} API so a hybrid driver can interleave
       quantum-annealer calls with the search;}
    {- feedback hooks: {!set_polarity} (strategy 2 assignment hints),
       {!prioritize_vars} and {!bump_var} (strategy 4 conflict steering).}} *)

type t

type result = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of Sat.Answer.reason
      (** re-export of {!Sat.Answer.t}: the constructors here {e are} the
          shared answer constructors, so values flow between [Cdcl],
          [Hybrid_solver], [Job], [Portfolio] and [Certify] without
          conversion.  [solve] reports [Unknown Budget] when a conflict or
          iteration budget runs out and [Unknown Cancelled] when the
          [set_terminate] hook fires. *)

type stats = {
  decisions : int;
  propagations : int;  (** literals enqueued by unit propagation *)
  conflicts : int;
  restarts : int;
  learnt_clauses : int;  (** total clauses learnt *)
  learnt_literals : int;
  deleted_clauses : int;
  iterations : int;
      (** paper-sense iterations: one decision / propagation / conflict-
          resolving cycle ≙ one decision or one conflict *)
  max_decision_level : int;
}

val create : ?config:Config.t -> Sat.Cnf.t -> t
(** Build a solver over a formula.  Tautological input clauses are ignored
    (they can never propagate); empty clauses make the instance trivially
    unsatisfiable. *)

(** {2 Incremental interface (MiniSAT-style)}

    The solver is a long-lived session: variables and clauses can be added
    between solves, and everything learnt — clauses, VSIDS/CHB activities,
    saved phases — carries over to the next call.  Between calls the root
    level is simplified: clauses satisfied at level 0 are removed (learnt
    deletions are DRAT-logged; satisfied original clauses just turn
    inactive, see {!clause_is_active}). *)

val new_var : t -> Sat.Lit.var
(** Admit a fresh variable and return its index ([num_vars] before the
    call).  A cached [Sat] answer is invalidated (it does not cover the new
    variable). *)

val add_clause : t -> Sat.Lit.t list -> unit
(** Add a clause over existing or fresh variables (unseen variables are
    admitted automatically).  Backtracks to level 0 first; the clause is
    reduced against the root assignment — satisfied and tautological
    clauses are dropped, falsified literals stripped; an empty result makes
    the instance [Unsat].  Each added clause consumes the next original-
    clause index for the paper instrumentation ({!clause_activity} and
    friends), whether or not it was installed.  No-op once [Unsat]. *)

val solve : ?max_conflicts:int -> ?max_iterations:int -> t -> result
(** Run to completion or until a budget is exhausted ([Unknown]).  Budgets
    are per-call: [solve] may be called again after an [Unknown] and the
    search resumes where it stopped with a fresh budget.  A plain [solve]
    is assumption-free — any assumptions installed by
    {!solve_with_assumptions} are cleared first. *)

val step : t -> [ `Continue | `Sat of bool array | `Unsat | `Unsat_assumptions ]
(** Advance the search by one iteration: propagate, then either resolve a
    conflict (learn + backjump) or take one decision.  Restart and database
    reduction policies run inside.  After [`Sat]/[`Unsat] further calls
    return the same answer.  [`Unsat_assumptions] surfaces only when
    assumptions are installed and one is falsified; {!unsat_core} is valid
    from that point. *)

val stats : t -> stats
val num_vars : t -> int
val num_original_clauses : t -> int

(** {2 Paper instrumentation}

    The per-clause counters below are maintained only when the
    configuration has {!Config.t.track_paper_stats} (see
    {!Config.with_paper_stats}); with tracking off — the default — the
    propagation and conflict-analysis hot paths skip the counter writes and
    the accessors report the initial values. *)

val clause_activity : t -> int -> float
(** Activity score of the [i]-th original clause (≥ 1.0). *)

val clause_visits : t -> int -> int * int
(** [(propagation_visits, conflict_visits)] of the [i]-th original clause. *)

val clause_is_active : t -> int -> bool
(** [false] once the original clause is satisfied at decision level 0. *)

(** {2 Hybrid feedback hooks} *)

val set_polarity : t -> Sat.Lit.var -> bool -> unit
(** Override the saved phase: the next decision on this variable assigns the
    given value (strategy 2: keep the annealer's assignment). *)

val prioritize_vars : t -> Sat.Lit.var list -> unit
(** Queue variables to be decided before any heap-ordered variable
    (strategy 4: steer straight into the conflicting subproblem). *)

val bump_var : t -> Sat.Lit.var -> float -> unit
(** Add external activity to a variable. *)

(** {2 Introspection} *)

val value : t -> Sat.Lit.var -> Sat.Assignment.value
val decision_level : t -> int
val trail_literals : t -> Sat.Lit.t list
(** Currently assigned literals in assignment order. *)

val model : t -> bool array option
(** The model, once [solve] returned [Sat]. *)

val model_value : t -> Sat.Lit.var -> bool option
(** The variable's value in the last model; [None] while undecided or
    after [Unsat]. *)

val is_decided : t -> bool
(** [true] once the search has concluded (SAT or UNSAT). *)

val set_assumptions : t -> Sat.Lit.t list -> unit
(** Install assumptions for step-driven search: subsequent {!step} calls
    decide them level by level exactly as {!solve_with_assumptions} would.
    Passing the same list as currently installed is a no-op (so a budget-
    interrupted search resumes); a different list backtracks to the root,
    clears {!unsat_core} and invalidates a cached [Sat] answer.  Pass [[]]
    to clear. *)

val solve_with_assumptions :
  ?max_conflicts:int ->
  ?max_iterations:int ->
  t ->
  Sat.Lit.t list ->
  [ `Sat of bool array | `Unsat | `Unsat_assumptions | `Unknown ]
(** Incremental solving under assumptions (MiniSAT-style): assumption [i]
    is decided at decision level [i+1] before any heuristic decision, so
    the assumptions form a prefix of the trail.  [`Unsat_assumptions]
    means the formula is satisfiable (as far as known) but not under these
    assumptions; {!unsat_core} then gives the subset of assumptions that
    already forces the conflict.  The solver remains usable afterwards,
    keeping everything it learnt.  [`Unknown] means a budget ran out;
    calling again with the {e same} assumptions resumes the search,
    different assumptions restart it from the root (retaining learnt
    clauses). *)

val unsat_core : t -> Sat.Lit.t list
(** After [`Unsat_assumptions]: a subset of the assumption literals whose
    conjunction already makes the formula unsatisfiable (the falsified
    assumption plus the assumptions its refutation rests on, via
    final-conflict analysis).  Not guaranteed minimal.  [[]] before any
    assumption conflict. *)

val export_learnts : ?max_len:int -> ?max_clauses:int -> t -> Sat.Lit.t array list
(** Snapshot of the most valuable derived clauses: all root-level facts as
    unit clauses, then the most active learnt clauses of length
    [<= max_len] (default 4), capped at [max_clauses] (default 512) total.
    Every returned clause is a logical consequence of the solver's clause
    set, so it can be {!import_clauses}'d into any solver over the same (or
    a superset) formula. *)

val import_clauses : t -> Sat.Lit.t array list -> int
(** Install foreign learnt clauses (from {!export_learnts} of a solver over
    the same or a subset clause set) and return how many were actually
    installed.  Clauses mentioning unknown variables are skipped; the rest
    are root-reduced like {!add_clause} and added as learnt clauses (so
    database reduction can drop them again).  Returns [0] without
    installing anything when the configuration has [log_proof] — imported
    clauses have no RUP derivation at this point in the log and would break
    {!proof} checkability. *)

val proof : t -> Sat.Drat.t option
(** The DRAT derivation recorded so far, oldest step first; [None] unless
    the configuration enabled [log_proof].  After an [Unsat] answer the
    proof ends with the empty clause and passes {!Sat.Drat.check}. *)

(** {2 Clause arena}

    Clauses are stored in a flat int arena ({!Arena}); deleting learnt or
    root-satisfied clauses leaves dead words behind, which are reclaimed by
    compaction once their fraction exceeds [Config.garbage_frac].
    Compaction relocates clause references (watch lists, reasons, learnt
    list) and never changes answers or search behaviour. *)

val garbage_collect : t -> unit
(** Compact the clause arena now, regardless of the [garbage_frac]
    threshold.  Safe at any decision level. *)

val arena_words : t -> int
(** Current size of the clause arena in words. *)

val arena_wasted : t -> int
(** Words currently occupied by deleted clauses (reclaimed by the next
    compaction). *)

val force_restart : t -> unit
(** Request a restart before the next decision (used by the hybrid backend
    to apply fresh phase hints from the top of the search tree). *)

val set_terminate : t -> (unit -> bool) -> unit
(** Install a cooperative-cancellation callback.  {!solve} polls it between
    iterations (at most every 128 steps, and once on entry) and answers
    [Unknown] as soon as it returns [true].  The solver state stays valid:
    [solve] may be called again after the flag clears, continuing the
    search.  The callback must be cheap (e.g. an [Atomic.get]) and is the
    contract the portfolio service uses to stop losing racers; replace it
    with [(fun () -> false)] to disable.  It runs on whatever domain called
    [solve], so it must be safe to call from that domain only. *)

val set_obs : t -> Obs.Ctx.t -> unit
(** Attach an observability context: from then on each learnt clause's
    size is recorded into the [cdcl_learnt_clause_size] histogram.  The
    default is {!Obs.Ctx.null}, which makes every hook a single pointer
    comparison. *)

val flush_obs : t -> unit
(** Push this solver's lifetime counters ([cdcl_conflicts_total],
    [cdcl_propagations_total], [cdcl_decisions_total],
    [cdcl_restarts_total], [cdcl_learnt_clauses_total],
    [cdcl_deleted_clauses_total]) into the attached context.  Call exactly
    once per solver instance, when it is retired — the counts are absolute,
    so flushing twice would double-count.  No-op without {!set_obs}. *)
