(* Pre-arena CDCL core, kept as a differential oracle and bench baseline.

   This is the solver exactly as it was before the flat clause arena: each
   clause is a heap record with a boxed [int array] of literals, watch
   lists hold clause pointers, activities are a mutable float field.  The
   ONLY deliberate change from that version is that it implements the same
   blocker-literal watch scheme as the arena solver, with the same
   evaluation order — so for any formula, seed and budget the two engines
   make bit-identical search decisions and report identical statistics
   ({!Solver.stats} equality is asserted by the differential fuzz tests),
   while differing purely in clause representation.  That makes it the
   honest baseline for [bench cdcl]: the measured speedup isolates the
   arena layout, not an algorithm change.

   Do not "improve" this module; it must stay behaviourally frozen. *)

type result = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of Sat.Answer.reason

let is_decided_status = function Unknown _ -> false | _ -> true

type cls = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

let dummy_cls = { lits = [||]; activity = 0.; learnt = false; deleted = true }

(* a watcher pairs the clause with a blocker literal, as boxed records —
   the representation the arena's packed int pairs replaced *)
type watcher = { wc : cls; wb : int }

let dummy_watcher = { wc = dummy_cls; wb = 0 }

type t = {
  config : Config.t;
  rng : Stats.Rng.t;
  mutable n : int;
  mutable num_original : int;
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : cls array;
  mutable polarity : bool array;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable watches : watcher Vec.t array;
  learnts : cls Vec.t;
  mutable var_act : float array;
  mutable var_inc : float;
  mutable heap : Var_heap.t;
  mutable chb_alpha : float;
  mutable chb_last_conflict : int array;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable assumptions : int array;
  mutable last_core : int array;
  mutable simp_trail : int;
  mutable restart_pending : bool;
  mutable conflicts_since_restart : int;
  mutable restart_k : int;
  mutable ema_fast : float;
  mutable ema_slow : float;
  mutable max_learnts : float;
  mutable s_decisions : int;
  mutable s_propagations : int;
  mutable s_conflicts : int;
  mutable s_restarts : int;
  mutable s_learnt_clauses : int;
  mutable s_learnt_literals : int;
  mutable s_deleted : int;
  mutable s_iterations : int;
  mutable s_max_level : int;
  mutable status : result;
}

let lit_sign l = if Sat.Lit.is_pos l then 1 else -1
let value_lit t l = t.assigns.(Sat.Lit.var l) * lit_sign l
let value_var t v = t.assigns.(v)
let decision_level t = Vec.size t.trail_lim
let num_vars t = t.n

let create ?(config = Config.default) (f : Sat.Cnf.t) =
  let n = Sat.Cnf.num_vars f in
  let m = Sat.Cnf.num_clauses f in
  let var_act = Array.make (max n 1) 0. in
  let t =
    {
      config;
      rng = Stats.Rng.create ~seed:config.Config.seed;
      n;
      num_original = m;
      assigns = Array.make (max n 1) 0;
      level = Array.make (max n 1) 0;
      reason = Array.make (max n 1) dummy_cls;
      polarity = Array.make (max n 1) false;
      trail = Vec.create ~capacity:(max n 16) ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      watches = Array.init (max (2 * n) 1) (fun _ -> Vec.create ~dummy:dummy_watcher ());
      learnts = Vec.create ~dummy:dummy_cls ();
      var_act;
      var_inc = 1.0;
      heap = Var_heap.create n var_act;
      chb_alpha = 0.4;
      chb_last_conflict = Array.make (max n 1) 0;
      cla_inc = 1.0;
      seen = Array.make (max n 1) false;
      assumptions = [||];
      last_core = [||];
      simp_trail = 0;
      restart_pending = false;
      conflicts_since_restart = 0;
      restart_k = 1;
      ema_fast = 0.;
      ema_slow = 0.;
      max_learnts = float_of_int m *. config.Config.learntsize_factor;
      s_decisions = 0;
      s_propagations = 0;
      s_conflicts = 0;
      s_restarts = 0;
      s_learnt_clauses = 0;
      s_learnt_literals = 0;
      s_deleted = 0;
      s_iterations = 0;
      s_max_level = 0;
      status = Unknown Sat.Answer.Budget;
    }
  in
  let pending_units = ref [] in
  Sat.Cnf.iter_clauses
    (fun i c ->
      if Sat.Clause.is_tautology c then ()
      else
        let lits = Sat.Clause.to_array c in
        match Array.length lits with
        | 0 -> t.status <- Unsat
        | 1 -> pending_units := (i, lits.(0)) :: !pending_units
        | _ ->
            let cls = { lits; activity = 0.; learnt = false; deleted = false } in
            Vec.push t.watches.(lits.(0)) { wc = cls; wb = lits.(1) };
            Vec.push t.watches.(lits.(1)) { wc = cls; wb = lits.(0) })
    f;
  List.iter
    (fun (_, l) ->
      if not (is_decided_status t.status) then
        match value_lit t l with
        | 1 -> ()
        | -1 -> t.status <- Unsat
        | _ ->
            t.assigns.(Sat.Lit.var l) <- lit_sign l;
            t.level.(Sat.Lit.var l) <- 0;
            Vec.push t.trail l)
    (List.rev !pending_units);
  t

let grow_int a cap =
  let b = Array.make cap 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_var_capacity t n' =
  let cap0 = Array.length t.assigns in
  if n' > cap0 || n' > Var_heap.capacity t.heap then begin
    let cap = max n' (max 16 (2 * cap0)) in
    t.assigns <- grow_int t.assigns cap;
    t.level <- grow_int t.level cap;
    t.chb_last_conflict <- grow_int t.chb_last_conflict cap;
    (let b = Array.make cap dummy_cls in
     Array.blit t.reason 0 b 0 cap0;
     t.reason <- b);
    (let b = Array.make cap false in
     Array.blit t.polarity 0 b 0 cap0;
     t.polarity <- b);
    (let b = Array.make cap false in
     Array.blit t.seen 0 b 0 cap0;
     t.seen <- b);
    (let old = t.watches in
     t.watches <-
       Array.init (2 * cap) (fun i ->
           if i < Array.length old then old.(i)
           else Vec.create ~dummy:dummy_watcher ()));
    let act = Array.make cap 0. in
    Array.blit t.var_act 0 act 0 cap0;
    t.var_act <- act;
    t.heap <- Var_heap.grow t.heap cap act
  end

let invalidate_sat t =
  match t.status with Sat _ -> t.status <- Unknown Sat.Answer.Budget | _ -> ()

let new_var t =
  let v = t.n in
  ensure_var_capacity t (v + 1);
  t.n <- v + 1;
  t.assigns.(v) <- 0;
  t.level.(v) <- 0;
  t.reason.(v) <- dummy_cls;
  t.polarity.(v) <- false;
  t.var_act.(v) <- 0.;
  t.chb_last_conflict.(v) <- 0;
  t.seen.(v) <- false;
  Var_heap.insert t.heap v;
  invalidate_sat t;
  v

let var_rescale t =
  for v = 0 to t.n - 1 do
    t.var_act.(v) <- t.var_act.(v) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100;
  Var_heap.rebuild t.heap

let bump_var_internal t v amount =
  t.var_act.(v) <- t.var_act.(v) +. amount;
  if t.var_act.(v) > 1e100 then var_rescale t;
  Var_heap.notify_increase t.heap v

let decay_var_activity t =
  match t.config.Config.heuristic with
  | Config.Vsids -> t.var_inc <- t.var_inc /. t.config.Config.var_decay
  | Config.Chb -> ()

let chb_update t v participated =
  let multiplier = if participated then 1.0 else 0.9 in
  let age = float_of_int (t.s_conflicts - t.chb_last_conflict.(v) + 1) in
  let reward = multiplier /. age in
  t.var_act.(v) <- ((1. -. t.chb_alpha) *. t.var_act.(v)) +. (t.chb_alpha *. reward);
  Var_heap.notify_increase t.heap v

let bump_cla t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun cl -> cl.activity <- cl.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_cla_activity t = t.cla_inc <- t.cla_inc /. t.config.Config.clause_decay

let enqueue t l reason =
  let v = Sat.Lit.var l in
  t.assigns.(v) <- lit_sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l;
  if reason != dummy_cls then t.s_propagations <- t.s_propagations + 1

let enqueue_root t l =
  let v = Sat.Lit.var l in
  t.assigns.(v) <- lit_sign l;
  t.level.(v) <- 0;
  t.reason.(v) <- dummy_cls;
  Vec.push t.trail l

(* same blocker algorithm and evaluation order as [Solver.propagate], on
   the boxed representation *)
let propagate t =
  let conflict = ref dummy_cls in
  while !conflict == dummy_cls && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let not_p = Sat.Lit.negate p in
    let ws = t.watches.(not_p) in
    let i = ref 0 and j = ref 0 in
    let n_ws = Vec.size ws in
    while !i < n_ws do
      let w = Vec.get ws !i in
      incr i;
      let c = w.wc in
      let blocker = w.wb in
      let bval = value_lit t blocker in
      if bval = 1 then begin
        Vec.set ws !j w;
        incr j
      end
      else begin
        if c.lits.(0) = not_p then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- not_p
        end;
        let first = c.lits.(0) in
        let fval = if first = blocker then bval else value_lit t first in
        if fval = 1 then begin
          Vec.set ws !j { wc = c; wb = first };
          incr j
        end
        else begin
          let k = ref 2 and found = ref false in
          let len = Array.length c.lits in
          while (not !found) && !k < len do
            if value_lit t c.lits.(!k) <> -1 then found := true else incr k
          done;
          if !found then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- not_p;
            Vec.push t.watches.(c.lits.(1)) { wc = c; wb = first }
          end
          else begin
            Vec.set ws !j { wc = c; wb = first };
            incr j;
            if fval = -1 then begin
              conflict := c;
              t.qhead <- Vec.size t.trail;
              while !i < n_ws do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else enqueue t first c
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

let purge_deleted_watches t =
  Array.iter (fun ws -> Vec.filter_in_place (fun w -> not w.wc.deleted) ws) t.watches

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    let chb = t.config.Config.heuristic = Config.Chb in
    let save_phase = t.config.Config.phase_saving in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Sat.Lit.var l in
      if chb then chb_update t v (t.chb_last_conflict.(v) = t.s_conflicts);
      t.assigns.(v) <- 0;
      t.reason.(v) <- dummy_cls;
      if save_phase then t.polarity.(v) <- Sat.Lit.is_pos l;
      Var_heap.insert t.heap v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

let add_clause t lits =
  match t.status with
  | Unsat -> ()
  | _ ->
      invalidate_sat t;
      cancel_until t 0;
      List.iter
        (fun l ->
          let v = Sat.Lit.var l in
          while t.n <= v do
            ignore (new_var t)
          done)
        lits;
      let taut = ref false and sat_root = ref false in
      let kept = ref [] in
      List.iter
        (fun l ->
          if not (!taut || !sat_root) then
            match value_lit t l with
            | 1 -> sat_root := true
            | -1 -> ()
            | _ ->
                if List.exists (fun k -> k = Sat.Lit.negate l) !kept then taut := true
                else if not (List.mem l !kept) then kept := l :: !kept)
        lits;
      t.num_original <- t.num_original + 1;
      if not (!taut || !sat_root) then begin
        match List.rev !kept with
        | [] -> t.status <- Unsat
        | [ l ] -> enqueue_root t l
        | ls ->
            let arr = Array.of_list ls in
            let c = { lits = arr; activity = 0.; learnt = false; deleted = false } in
            Vec.push t.watches.(arr.(0)) { wc = c; wb = arr.(1) };
            Vec.push t.watches.(arr.(1)) { wc = c; wb = arr.(0) }
      end

let lit_redundant t l =
  let v = Sat.Lit.var l in
  let r = t.reason.(v) in
  r != dummy_cls
  && Array.for_all
       (fun q ->
         let w = Sat.Lit.var q in
         w = v || t.seen.(w) || t.level.(w) = 0)
       r.lits

let analyze t conflict =
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let c = ref conflict in
  let dl = decision_level t in
  let continue = ref true in
  while !continue do
    if !c.learnt then bump_cla t !c;
    Array.iter
      (fun q ->
        let v = Sat.Lit.var q in
        if (!p = -1 || v <> Sat.Lit.var !p) && (not t.seen.(v)) && t.level.(v) > 0 then begin
          t.seen.(v) <- true;
          (match t.config.Config.heuristic with
          | Config.Vsids -> bump_var_internal t v t.var_inc
          | Config.Chb -> t.chb_last_conflict.(v) <- t.s_conflicts);
          if t.level.(v) >= dl then incr path_c else learnt := q :: !learnt
        end)
      !c.lits;
    while not t.seen.(Sat.Lit.var (Vec.get t.trail !index)) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    t.seen.(Sat.Lit.var !p) <- false;
    decr path_c;
    if !path_c <= 0 then continue := false else c := t.reason.(Sat.Lit.var !p)
  done;
  let uip = Sat.Lit.negate !p in
  let tail = List.filter (fun l -> not (lit_redundant t l)) !learnt in
  List.iter (fun l -> t.seen.(Sat.Lit.var l) <- false) !learnt;
  let tail = List.sort (fun a b -> compare t.level.(Sat.Lit.var b) t.level.(Sat.Lit.var a)) tail in
  let back_level = match tail with [] -> 0 | l :: _ -> t.level.(Sat.Lit.var l) in
  (Array.of_list (uip :: tail), back_level)

let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    t.seen.(Sat.Lit.var p) <- true;
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let q = Vec.get t.trail i in
      let v = Sat.Lit.var q in
      if t.seen.(v) then begin
        (if t.reason.(v) == dummy_cls then core := q :: !core
         else
           Array.iter
             (fun r ->
               let w = Sat.Lit.var r in
               if t.level.(w) > 0 then t.seen.(w) <- true)
             t.reason.(v).lits);
        t.seen.(v) <- false
      end
    done;
    t.seen.(Sat.Lit.var p) <- false
  end;
  t.last_core <- Array.of_list !core

let lbd t lits =
  let tbl = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace tbl t.level.(Sat.Lit.var l) ()) lits;
  Hashtbl.length tbl

let record_learnt t lits =
  t.s_learnt_clauses <- t.s_learnt_clauses + 1;
  t.s_learnt_literals <- t.s_learnt_literals + Array.length lits;
  if Array.length lits = 1 then enqueue t lits.(0) dummy_cls
  else begin
    let c = { lits; activity = 0.; learnt = true; deleted = false } in
    bump_cla t c;
    Vec.push t.learnts c;
    Vec.push t.watches.(lits.(0)) { wc = c; wb = lits.(1) };
    Vec.push t.watches.(lits.(1)) { wc = c; wb = lits.(0) };
    enqueue t lits.(0) c
  end

let locked t c =
  Array.length c.lits > 0
  &&
  let v = Sat.Lit.var c.lits.(0) in
  t.reason.(v) == c && value_lit t c.lits.(0) = 1

let reduce_db t =
  let arr = Array.init (Vec.size t.learnts) (fun i -> Vec.get t.learnts i) in
  Array.sort (fun a b -> Float.compare a.activity b.activity) arr;
  let limit = t.cla_inc /. float_of_int (max 1 (Array.length arr)) in
  let n_half = Array.length arr / 2 in
  Array.iteri
    (fun i c ->
      if
        Array.length c.lits > 2
        && (not (locked t c))
        && (i < n_half || c.activity < limit)
      then begin
        c.deleted <- true;
        t.s_deleted <- t.s_deleted + 1
      end)
    arr;
  Vec.filter_in_place (fun c -> not c.deleted) t.learnts;
  purge_deleted_watches t

let simplify_roots t =
  match t.status with
  | Sat _ | Unsat -> ()
  | Unknown _ ->
      if decision_level t = 0 then begin
        if propagate t != dummy_cls then t.status <- Unsat
        else if Vec.size t.trail > t.simp_trail then begin
          let satisfied c = Array.exists (fun l -> value_lit t l = 1) c.lits in
          Vec.iter
            (fun c ->
              if (not c.deleted) && satisfied c then begin
                c.deleted <- true;
                t.s_deleted <- t.s_deleted + 1
              end)
            t.learnts;
          Vec.filter_in_place (fun c -> not c.deleted) t.learnts;
          (* originals satisfied at the root: deactivate them the same way
             (marking via the shared watch purge) *)
          Array.iter
            (fun ws ->
              Vec.iter
                (fun w ->
                  if (not w.wc.deleted) && (not w.wc.learnt) && satisfied w.wc then
                    w.wc.deleted <- true)
                ws)
            t.watches;
          for i = 0 to Vec.size t.trail - 1 do
            t.reason.(Sat.Lit.var (Vec.get t.trail i)) <- dummy_cls
          done;
          purge_deleted_watches t;
          t.simp_trail <- Vec.size t.trail
        end
      end

let note_conflict_for_restarts t clause_lbd =
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  match t.config.Config.restart with
  | Config.No_restarts -> ()
  | Config.Luby_restarts base ->
      if t.conflicts_since_restart >= Luby.restart_limit ~base t.restart_k then
        t.restart_pending <- true
  | Config.Ema_restarts { fast; slow; margin } ->
      let l = float_of_int clause_lbd in
      t.ema_fast <- t.ema_fast +. (fast *. (l -. t.ema_fast));
      t.ema_slow <- t.ema_slow +. (slow *. (l -. t.ema_slow));
      if
        t.conflicts_since_restart > 50
        && t.ema_fast > margin *. t.ema_slow
      then t.restart_pending <- true

let apply_restart t =
  t.restart_pending <- false;
  t.conflicts_since_restart <- 0;
  t.restart_k <- t.restart_k + 1;
  t.ema_fast <- 0.;
  t.ema_slow <- 0.;
  t.s_restarts <- t.s_restarts + 1;
  cancel_until t 0

let pick_branch_var t =
  let rec from_heap () =
    if Var_heap.is_empty t.heap then None
    else
      let v = Var_heap.pop_max t.heap in
      if value_var t v = 0 then Some v else from_heap ()
  in
  from_heap ()

let decide t v =
  t.s_decisions <- t.s_decisions + 1;
  let sign =
    if
      t.config.Config.random_polarity_freq > 0.
      && Stats.Rng.float t.rng 1.0 < t.config.Config.random_polarity_freq
    then Stats.Rng.bool t.rng
    else t.polarity.(v)
  in
  Vec.push t.trail_lim (Vec.size t.trail);
  enqueue t (Sat.Lit.make v sign) dummy_cls;
  if decision_level t > t.s_max_level then t.s_max_level <- decision_level t

let extract_model t = Array.init t.n (fun v -> t.assigns.(v) = 1)

let falsified_assumption t =
  let rec go i =
    if i >= Array.length t.assumptions then None
    else if value_lit t t.assumptions.(i) = -1 then Some t.assumptions.(i)
    else go (i + 1)
  in
  go 0

let step t =
  match t.status with
  | Sat m -> `Sat m
  | Unsat -> `Unsat
  | Unknown _ -> (
      t.s_iterations <- t.s_iterations + 1;
      let confl = propagate t in
      if confl != dummy_cls then begin
        t.s_conflicts <- t.s_conflicts + 1;
        if t.config.Config.heuristic = Config.Chb then
          t.chb_alpha <- Float.max 0.06 (t.chb_alpha -. 1e-6);
        if decision_level t = 0 then begin
          t.status <- Unsat;
          `Unsat
        end
        else begin
          let lits, back_level = analyze t confl in
          note_conflict_for_restarts t (lbd t lits);
          cancel_until t back_level;
          record_learnt t lits;
          decay_var_activity t;
          decay_cla_activity t;
          if
            t.config.Config.reduce_db
            && float_of_int (Vec.size t.learnts) > t.max_learnts
          then begin
            reduce_db t;
            t.max_learnts <- t.max_learnts *. 1.3
          end;
          `Continue
        end
      end
      else if Vec.size t.trail = t.n then
        match falsified_assumption t with
        | Some l ->
            analyze_final t l;
            `Unsat_assumptions
        | None ->
            let m = extract_model t in
            t.status <- Sat m;
            `Sat m
      else begin
        if t.restart_pending then apply_restart t;
        let dl = decision_level t in
        if dl < Array.length t.assumptions then begin
          let l = t.assumptions.(dl) in
          match value_lit t l with
          | 1 ->
              Vec.push t.trail_lim (Vec.size t.trail);
              `Continue
          | -1 ->
              analyze_final t l;
              `Unsat_assumptions
          | _ ->
              t.s_decisions <- t.s_decisions + 1;
              Vec.push t.trail_lim (Vec.size t.trail);
              enqueue t l dummy_cls;
              if decision_level t > t.s_max_level then
                t.s_max_level <- decision_level t;
              `Continue
        end
        else begin
          (match pick_branch_var t with
          | Some v -> decide t v
          | None -> assert false);
          `Continue
        end
      end)

let run_search ?(max_conflicts = max_int) ?(max_iterations = max_int) t =
  simplify_roots t;
  let saturating_add a b = if a > max_int - b then max_int else a + b in
  let conflict_budget = saturating_add t.s_conflicts max_conflicts in
  let iteration_budget = saturating_add t.s_iterations max_iterations in
  let rec loop () =
    if t.s_conflicts >= conflict_budget || t.s_iterations >= iteration_budget then
      `Done (Unknown Sat.Answer.Budget)
    else
      match step t with
      | `Continue -> loop ()
      | `Sat m -> `Done (Sat m)
      | `Unsat -> `Done Unsat
      | `Unsat_assumptions -> `Unsat_assumptions
  in
  match t.status with
  | Sat m -> `Done (Sat m)
  | Unsat -> `Done Unsat
  | Unknown _ -> loop ()

let clear_assumptions t =
  if Array.length t.assumptions > 0 then begin
    cancel_until t 0;
    t.assumptions <- [||]
  end

let set_assumptions t lits =
  let arr = Array.of_list lits in
  if arr <> t.assumptions then begin
    cancel_until t 0;
    t.assumptions <- arr;
    t.last_core <- [||];
    invalidate_sat t
  end

let solve ?max_conflicts ?max_iterations t =
  clear_assumptions t;
  match run_search ?max_conflicts ?max_iterations t with
  | `Done r -> r
  | `Unsat_assumptions -> assert false

let solve_with_assumptions ?max_conflicts ?max_iterations t lits =
  match t.status with
  | Unsat -> `Unsat
  | _ -> (
      set_assumptions t lits;
      match run_search ?max_conflicts ?max_iterations t with
      | `Done (Sat m) -> `Sat m
      | `Done Unsat -> `Unsat
      | `Done (Unknown _) -> `Unknown
      | `Unsat_assumptions ->
          cancel_until t 0;
          t.status <- Unknown Sat.Answer.Budget;
          `Unsat_assumptions)

let unsat_core t = Array.to_list t.last_core

let stats t : Solver.stats =
  {
    Solver.decisions = t.s_decisions;
    propagations = t.s_propagations;
    conflicts = t.s_conflicts;
    restarts = t.s_restarts;
    learnt_clauses = t.s_learnt_clauses;
    learnt_literals = t.s_learnt_literals;
    deleted_clauses = t.s_deleted;
    iterations = t.s_iterations;
    max_decision_level = t.s_max_level;
  }

let model t = match t.status with Sat m -> Some m | _ -> None
