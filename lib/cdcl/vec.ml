type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (Stdlib.max capacity 1) dummy; size = 0; dummy }

let size t = t.size
let is_empty t = t.size = 0

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Vec.set";
  t.data.(i) <- x

(* hot-loop accessors: bounds are the caller's contract, checked only in
   debug builds (asserts compile away under -noassert) *)
let unsafe_get t i =
  assert (i >= 0 && i < t.size);
  Array.unsafe_get t.data i

let unsafe_set t i x =
  assert (i >= 0 && i < t.size);
  Array.unsafe_set t.data i x

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop";
  t.size <- t.size - 1;
  let x = t.data.(t.size) in
  t.data.(t.size) <- t.dummy;
  x

let last t =
  if t.size = 0 then invalid_arg "Vec.last";
  t.data.(t.size - 1)

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

let shrink t n =
  if n < 0 || n > t.size then invalid_arg "Vec.shrink";
  Array.fill t.data n (t.size - n) t.dummy;
  t.size <- n

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let exists p t =
  let rec go i = i < t.size && (p t.data.(i) || go (i + 1)) in
  go 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  shrink t !j
