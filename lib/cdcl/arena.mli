(** Flat clause arena: every clause is a contiguous
    [header | origin | lits...] block in one growable [int array],
    addressed by an integer clause ref ([cref]).

    The header word packs [deleted] (bit 0), [learnt] (bit 1), a GC
    forwarding marker (bit 2) and the clause size (bits 3+); [origin] is
    the original-formula clause index ([-1] for learnt clauses).  Learnt
    activities live in an exact float side array indexed by cref.

    Hot loops are expected to fetch {!data} once and read headers/literals
    with [Array.unsafe_get] using {!lits_offset}/{!size_shift}; everything
    else goes through the checked accessors below. *)

type t
type cref = int

val lits_offset : int
(** Word offset of the first literal within a clause block (= 2). *)

val size_shift : int
(** Bit position of the size field in the header word (= 3). *)

val create : ?capacity:int -> unit -> t

val alloc : t -> learnt:bool -> origin:int -> Sat.Lit.t array -> cref
(** Append a clause (copying the literals).  Requires at least two
    literals: unit and empty clauses live on the trail / in the status, not
    in the arena. *)

val words : t -> int
(** Allocated words (the next fresh cref). *)

val wasted : t -> int
(** Words occupied by deleted clauses; the solver compacts when
    [wasted > garbage_frac * words]. *)

val data : t -> int array
(** The raw word array, valid until the next {!alloc} (growth replaces the
    array).  For the propagate/analyze hot loops. *)

val size : t -> cref -> int
val learnt : t -> cref -> bool
val deleted : t -> cref -> bool
val origin : t -> cref -> int
val lit : t -> cref -> int -> Sat.Lit.t
val set_lit : t -> cref -> int -> Sat.Lit.t -> unit
val activity : t -> cref -> float
val set_activity : t -> cref -> float -> unit

val lits : t -> cref -> Sat.Lit.t array
(** Fresh copy of the literals (cold paths: DRAT logging, export). *)

val lit_list : t -> cref -> Sat.Lit.t list

val delete : t -> cref -> unit
(** Mark deleted and account its words as wasted.  The block stays
    readable until the next GC; relocating a deleted clause is an error. *)

val reloc : t -> into:t -> cref -> cref
(** [reloc from ~into c] copies the live clause [c] into [into] on first
    touch (leaving a forwarding marker behind) and returns its new cref;
    later touches return the same forwarding cref.  The caller walks every
    cref-holding structure (watches, reasons, learnt list, origin map) and
    rewrites refs through this function, then swaps the arenas. *)
