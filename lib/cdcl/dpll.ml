type stats = { decisions : int; propagations : int; backtracks : int }

exception Budget

let solve ?(max_decisions = max_int) f =
  let n = Sat.Cnf.num_vars f in
  let assign = Sat.Assignment.create n in
  let decisions = ref 0 and propagations = ref 0 and backtracks = ref 0 in
  (* returns the literals it assigned, or None on conflict *)
  let propagate () =
    let assigned = ref [] in
    let changed = ref true in
    let conflict = ref false in
    while !changed && not !conflict do
      changed := false;
      Sat.Cnf.iter_clauses
        (fun _ c ->
          if not !conflict then
            match Sat.Assignment.clause_status assign c with
            | `Falsified -> conflict := true
            | `Unit l ->
                Sat.Assignment.set assign (Sat.Lit.var l) (Sat.Lit.is_pos l);
                incr propagations;
                assigned := Sat.Lit.var l :: !assigned;
                changed := true
            | `Satisfied | `Unresolved -> ())
        f
    done;
    if !conflict then begin
      List.iter (Sat.Assignment.unset assign) !assigned;
      None
    end
    else Some !assigned
  in
  (* branching: unassigned variable with the most occurrences *)
  let pick () =
    let best = ref (-1) and best_count = ref (-1) in
    for v = 0 to n - 1 do
      if Sat.Assignment.value assign v = Sat.Assignment.Unassigned then begin
        let count = List.length (Sat.Cnf.clauses_of_var f v) in
        if count > !best_count then begin
          best := v;
          best_count := count
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  let rec search () =
    match propagate () with
    | None -> false
    | Some propagated -> (
        let undo_and_fail () =
          List.iter (Sat.Assignment.unset assign) propagated;
          incr backtracks;
          false
        in
        match pick () with
        | None ->
            if Sat.Assignment.satisfies assign f then true else undo_and_fail ()
        | Some v ->
            incr decisions;
            if !decisions > max_decisions then raise Budget;
            let try_value b =
              Sat.Assignment.set assign v b;
              let ok = search () in
              if not ok then Sat.Assignment.unset assign v;
              ok
            in
            if try_value true || try_value false then true else undo_and_fail ())
  in
  let result =
    try
      if Sat.Cnf.num_clauses f = 0 then Solver.Sat (Array.make n false)
      else if search () then Solver.Sat (Sat.Assignment.to_bools assign ~default:false)
      else Solver.Unsat
    with Budget -> Solver.Unknown Sat.Answer.Budget
  in
  (result, { decisions = !decisions; propagations = !propagations; backtracks = !backtracks })
