(** WalkSAT stochastic local search.

    The classical incomplete baseline (and the flavour of warm-up helper the
    related-work solvers [12] bolt onto CDCL): pick an unsatisfied clause,
    flip either the break-count-minimising variable or a random one.  Cannot
    prove unsatisfiability. *)

type stats = { flips : int; restarts_used : int }

val solve :
  ?max_flips:int ->
  ?restarts:int ->
  ?noise:float ->
  ?should_stop:(unit -> bool) ->
  Stats.Rng.t ->
  Sat.Cnf.t ->
  bool array option * stats
(** [solve rng f] is [Some model] if local search finds one within
    [restarts] × [max_flips] flips ([noise] = random-walk probability,
    default 0.5); [None] is inconclusive.  [should_stop] is polled every
    64 flips and before each restart; when it returns [true] the search
    gives up immediately with [None] (portfolio cancellation). *)
