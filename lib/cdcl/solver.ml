type result = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of Sat.Answer.reason

let is_decided_status = function Unknown _ -> false | _ -> true

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt_clauses : int;
  learnt_literals : int;
  deleted_clauses : int;
  iterations : int;
  max_decision_level : int;
}

(* clauses live in a flat {!Arena}; [no_cref] marks "no clause" in reasons
   and in the original-clause map *)
let no_cref = -1

(* packed watch list of one literal: entry [k] is the pair
   [(cref, blocker)] at words [2k, 2k+1].  The blocker is some literal of
   the clause other than the watched one; when it is satisfied the whole
   clause is, and propagation skips the clause without touching the arena
   (MiniSAT's blocker-literal optimisation). *)
type wlist = { mutable wdata : int array; mutable wsz : int }

let wlist_create () = { wdata = [||]; wsz = 0 }

let wlist_push w c b =
  let cap = Array.length w.wdata in
  if (2 * w.wsz) + 2 > cap then begin
    let d = Array.make (max 8 (2 * cap)) 0 in
    Array.blit w.wdata 0 d 0 (2 * w.wsz);
    w.wdata <- d
  end;
  w.wdata.(2 * w.wsz) <- c;
  w.wdata.((2 * w.wsz) + 1) <- b;
  w.wsz <- w.wsz + 1

(* the per-variable arrays are capacity-managed (length >= n) so [new_var]
   can admit variables without reallocating on every call *)
type t = {
  config : Config.t;
  rng : Stats.Rng.t;
  mutable n : int;
  mutable num_original : int;
  mutable arena : Arena.t;
  (* assignment state: +1 true, -1 false, 0 undef *)
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : int array; (* cref, no_cref = no reason *)
  mutable polarity : bool array;
  trail : int Vec.t; (* literals *)
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable watches : wlist array; (* indexed by the watched literal *)
  learnts : int Vec.t; (* crefs *)
  (* decision heuristics *)
  mutable var_act : float array; (* VSIDS activity or CHB Q score *)
  mutable var_inc : float;
  mutable heap : Var_heap.t;
  (* CHB bookkeeping *)
  mutable chb_alpha : float;
  mutable chb_last_conflict : int array;
  (* clause learning *)
  mutable cla_inc : float;
  mutable seen : bool array;
  (* paper instrumentation (written only under [track_paper_stats]) *)
  mutable clause_score : float array;
  mutable visits_prop : int array;
  mutable visits_confl : int array;
  mutable original_cls : int array; (* original clause index -> cref *)
  (* priority decisions injected by the hybrid backend *)
  forced_queue : int Queue.t;
  (* incremental-solving assumptions: assumption [i] is decided at decision
     level [i+1] (or gets an empty level when already true), so every
     decision below [length assumptions] levels IS an assumption — the
     invariant [analyze_final] relies on to read a sound conflict core off
     the trail *)
  mutable assumptions : int array;
  (* conflict core of the last [`Unsat_assumptions] answer *)
  mutable last_core : int array;
  (* root-trail watermark of the last between-solves simplification *)
  mutable simp_trail : int;
  (* restart control *)
  mutable restart_pending : bool;
  mutable conflicts_since_restart : int;
  mutable restart_k : int;
  mutable ema_fast : float;
  mutable ema_slow : float;
  mutable max_learnts : float;
  (* counters *)
  mutable s_decisions : int;
  mutable s_propagations : int;
  mutable s_conflicts : int;
  mutable s_restarts : int;
  mutable s_learnt_clauses : int;
  mutable s_learnt_literals : int;
  mutable s_deleted : int;
  mutable s_iterations : int;
  mutable s_max_level : int;
  (* DRAT proof, reversed (config.log_proof) *)
  mutable proof_rev : Sat.Drat.step list;
  (* cooperative cancellation, polled between iterations by [solve] *)
  mutable terminate : unit -> bool;
  (* observability; Obs.Ctx.null (the default) makes every hook free *)
  mutable obs : Obs.Ctx.t;
  (* terminal state *)
  mutable status : result;
}

let lit_sign l = if Sat.Lit.is_pos l then 1 else -1
let value_lit t l = t.assigns.(Sat.Lit.var l) * lit_sign l
let value_var t v = t.assigns.(v)
let decision_level t = Vec.size t.trail_lim

let log_proof t step =
  if t.config.Config.log_proof then t.proof_rev <- step :: t.proof_rev

let num_vars t = t.n
let num_original_clauses t = t.num_original

let create ?(config = Config.default) (f : Sat.Cnf.t) =
  let n = Sat.Cnf.num_vars f in
  let m = Sat.Cnf.num_clauses f in
  let var_act = Array.make (max n 1) 0. in
  let t =
    {
      config;
      rng = Stats.Rng.create ~seed:config.Config.seed;
      n;
      num_original = m;
      arena = Arena.create ~capacity:(max 64 (8 * m)) ();
      assigns = Array.make (max n 1) 0;
      level = Array.make (max n 1) 0;
      reason = Array.make (max n 1) no_cref;
      polarity = Array.make (max n 1) false;
      trail = Vec.create ~capacity:(max n 16) ~dummy:0 ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      watches = Array.init (max (2 * n) 1) (fun _ -> wlist_create ());
      learnts = Vec.create ~dummy:no_cref ();
      var_act;
      var_inc = 1.0;
      heap = Var_heap.create n var_act;
      chb_alpha = 0.4;
      chb_last_conflict = Array.make (max n 1) 0;
      cla_inc = 1.0;
      seen = Array.make (max n 1) false;
      clause_score = Array.make (max m 1) 1.0;
      visits_prop = Array.make (max m 1) 0;
      visits_confl = Array.make (max m 1) 0;
      original_cls = Array.make (max m 1) no_cref;
      forced_queue = Queue.create ();
      assumptions = [||];
      last_core = [||];
      simp_trail = 0;
      restart_pending = false;
      conflicts_since_restart = 0;
      restart_k = 1;
      ema_fast = 0.;
      ema_slow = 0.;
      max_learnts = float_of_int m *. config.Config.learntsize_factor;
      s_decisions = 0;
      s_propagations = 0;
      s_conflicts = 0;
      s_restarts = 0;
      s_learnt_clauses = 0;
      s_learnt_literals = 0;
      s_deleted = 0;
      s_iterations = 0;
      s_max_level = 0;
      proof_rev = [];
      terminate = (fun () -> false);
      obs = Obs.Ctx.null;
      status = Unknown Sat.Answer.Budget;
    }
  in
  (* install original clauses *)
  let pending_units = ref [] in
  Sat.Cnf.iter_clauses
    (fun i c ->
      if Sat.Clause.is_tautology c then ()
      else
        let lits = Sat.Clause.to_array c in
        match Array.length lits with
        | 0 ->
            log_proof t (Sat.Drat.Add []);
            t.status <- Unsat
        | 1 -> pending_units := (i, lits.(0)) :: !pending_units
        | _ ->
            let cref = Arena.alloc t.arena ~learnt:false ~origin:i lits in
            t.original_cls.(i) <- cref;
            wlist_push t.watches.(lits.(0)) cref lits.(1);
            wlist_push t.watches.(lits.(1)) cref lits.(0))
    f;
  (* enqueue unit clauses at level 0 *)
  List.iter
    (fun (_, l) ->
      if not (is_decided_status t.status) then
        match value_lit t l with
        | 1 -> ()
        | -1 ->
            log_proof t (Sat.Drat.Add []);
            t.status <- Unsat
        | _ ->
            t.assigns.(Sat.Lit.var l) <- lit_sign l;
            t.level.(Sat.Lit.var l) <- 0;
            Vec.push t.trail l)
    (List.rev !pending_units);
  t

(* ------------------------------------------------------------------ *)
(* capacity growth (incremental API)                                    *)

let grow_int a cap fill =
  let b = Array.make cap fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_var_capacity t n' =
  let cap0 = Array.length t.assigns in
  (* the heap can be smaller than the other arrays (created with exactly
     [n] slots while arrays use [max n 1]) — grow when either is short *)
  if n' > cap0 || n' > Var_heap.capacity t.heap then begin
    let cap = max n' (max 16 (2 * cap0)) in
    t.assigns <- grow_int t.assigns cap 0;
    t.level <- grow_int t.level cap 0;
    t.chb_last_conflict <- grow_int t.chb_last_conflict cap 0;
    t.reason <- grow_int t.reason cap no_cref;
    (let b = Array.make cap false in
     Array.blit t.polarity 0 b 0 cap0;
     t.polarity <- b);
    (let b = Array.make cap false in
     Array.blit t.seen 0 b 0 cap0;
     t.seen <- b);
    (let old = t.watches in
     t.watches <-
       Array.init (2 * cap) (fun i ->
           if i < Array.length old then old.(i) else wlist_create ()));
    let act = Array.make cap 0. in
    Array.blit t.var_act 0 act 0 cap0;
    t.var_act <- act;
    t.heap <- Var_heap.grow t.heap cap act
  end

let ensure_clause_capacity t m' =
  let cap0 = Array.length t.clause_score in
  if m' > cap0 then begin
    let cap = max m' (max 16 (2 * cap0)) in
    (let b = Array.make cap 1.0 in
     Array.blit t.clause_score 0 b 0 cap0;
     t.clause_score <- b);
    t.visits_prop <- grow_int t.visits_prop cap 0;
    t.visits_confl <- grow_int t.visits_confl cap 0;
    t.original_cls <- grow_int t.original_cls cap no_cref
  end

let invalidate_sat t =
  match t.status with Sat _ -> t.status <- Unknown Sat.Answer.Budget | _ -> ()

let new_var t =
  let v = t.n in
  ensure_var_capacity t (v + 1);
  t.n <- v + 1;
  t.assigns.(v) <- 0;
  t.level.(v) <- 0;
  t.reason.(v) <- no_cref;
  t.polarity.(v) <- false;
  t.var_act.(v) <- 0.;
  t.chb_last_conflict.(v) <- 0;
  t.seen.(v) <- false;
  Var_heap.insert t.heap v;
  (* a cached Sat model does not cover the new variable *)
  invalidate_sat t;
  v

(* ------------------------------------------------------------------ *)
(* activity management                                                  *)

let var_rescale t =
  for v = 0 to t.n - 1 do
    t.var_act.(v) <- t.var_act.(v) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100;
  Var_heap.rebuild t.heap

let bump_var_internal t v amount =
  t.var_act.(v) <- t.var_act.(v) +. amount;
  if t.var_act.(v) > 1e100 then var_rescale t;
  Var_heap.notify_increase t.heap v

let bump_var t v amount = bump_var_internal t v (amount *. t.var_inc)

let decay_var_activity t =
  match t.config.Config.heuristic with
  | Config.Vsids -> t.var_inc <- t.var_inc /. t.config.Config.var_decay
  | Config.Chb -> ()

let chb_update t v participated =
  (* conflict-history-based bandit reward (Liang et al., simplified) *)
  let multiplier = if participated then 1.0 else 0.9 in
  let age = float_of_int (t.s_conflicts - t.chb_last_conflict.(v) + 1) in
  let reward = multiplier /. age in
  t.var_act.(v) <- ((1. -. t.chb_alpha) *. t.var_act.(v)) +. (t.chb_alpha *. reward);
  Var_heap.notify_increase t.heap v

let bump_cla t c =
  let a = Arena.activity t.arena c +. t.cla_inc in
  Arena.set_activity t.arena c a;
  if a > 1e20 then begin
    Vec.iter
      (fun cl -> Arena.set_activity t.arena cl (Arena.activity t.arena cl *. 1e-20))
      t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_cla_activity t = t.cla_inc <- t.cla_inc /. t.config.Config.clause_decay

(* paper §IV-A: activity score of clauses involved in conflict resolution *)
let bump_clause_score t c =
  let o = Arena.origin t.arena c in
  if o >= 0 then begin
    t.clause_score.(o) <- t.clause_score.(o) +. 1.0;
    t.visits_confl.(o) <- t.visits_confl.(o) + 1
  end

(* ------------------------------------------------------------------ *)
(* assignment & propagation                                             *)

let enqueue t l reason =
  let v = Sat.Lit.var l in
  t.assigns.(v) <- lit_sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l;
  if reason <> no_cref then begin
    t.s_propagations <- t.s_propagations + 1;
    if t.config.Config.track_paper_stats then begin
      let o = Arena.origin t.arena reason in
      if o >= 0 then t.visits_prop.(o) <- t.visits_prop.(o) + 1
    end
  end

(* level-0 fact installed by the incremental API (add_clause / import);
   only sound when the trail is at decision level 0 *)
let enqueue_root t l =
  let v = Sat.Lit.var l in
  t.assigns.(v) <- lit_sign l;
  t.level.(v) <- 0;
  t.reason.(v) <- no_cref;
  Vec.push t.trail l

(* The propagation hot loop.  Deliberately low-level: literals are raw ints
   ([Sat.Lit] is concrete: lit = 2·var + sign bit, negate = lxor 1), clause
   words are read straight out of the arena array, watch entries out of the
   packed pair array, all via unsafe accessors — the loop allocates nothing
   and every bound is established by the surrounding invariants.  Watch
   lists are compacted in place; a watcher whose blocker is satisfied is
   kept without touching the clause at all.  Returns the conflicting cref
   or [no_cref]. *)
let propagate t =
  let conflict = ref no_cref in
  let assigns = t.assigns in
  (* stable across the loop: propagation never allocates clauses *)
  let ar = Arena.data t.arena in
  let off = Arena.lits_offset in
  let shift = Arena.size_shift in
  let track = t.config.Config.track_paper_stats in
  while !conflict = no_cref && t.qhead < Vec.size t.trail do
    let p = Vec.unsafe_get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let not_p = p lxor 1 in
    let ws = Array.unsafe_get t.watches not_p in
    let wd = ws.wdata in
    let n_ws = ws.wsz in
    let i = ref 0 and j = ref 0 in
    while !i < n_ws do
      let c = Array.unsafe_get wd (2 * !i) in
      let blocker = Array.unsafe_get wd ((2 * !i) + 1) in
      incr i;
      let bval =
        Array.unsafe_get assigns (blocker lsr 1) * (1 - (2 * (blocker land 1)))
      in
      if bval = 1 then begin
        (* blocker satisfied: the clause is satisfied, keep the watch *)
        Array.unsafe_set wd (2 * !j) c;
        Array.unsafe_set wd ((2 * !j) + 1) blocker;
        incr j
      end
      else begin
        if track then begin
          let o = Array.unsafe_get ar (c + 1) in
          if o >= 0 then t.visits_prop.(o) <- t.visits_prop.(o) + 1
        end;
        let base = c + off in
        (* ensure the false literal is at position 1 *)
        if Array.unsafe_get ar base = not_p then begin
          Array.unsafe_set ar base (Array.unsafe_get ar (base + 1));
          Array.unsafe_set ar (base + 1) not_p
        end;
        let first = Array.unsafe_get ar base in
        let fval =
          if first = blocker then bval
          else Array.unsafe_get assigns (first lsr 1) * (1 - (2 * (first land 1)))
        in
        if fval = 1 then begin
          (* clause already satisfied; keep, refreshing the blocker *)
          Array.unsafe_set wd (2 * !j) c;
          Array.unsafe_set wd ((2 * !j) + 1) first;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let size = Array.unsafe_get ar c lsr shift in
          let k = ref 2 and found = ref false in
          while (not !found) && !k < size do
            let q = Array.unsafe_get ar (base + !k) in
            if Array.unsafe_get assigns (q lsr 1) * (1 - (2 * (q land 1))) <> -1
            then found := true
            else incr k
          done;
          if !found then begin
            let newl = Array.unsafe_get ar (base + !k) in
            Array.unsafe_set ar (base + 1) newl;
            Array.unsafe_set ar (base + !k) not_p;
            (* [newl] is non-false while [not_p] is false, so this push can
               never target [ws], the list being compacted *)
            wlist_push (Array.unsafe_get t.watches newl) c first
          end
          else begin
            (* unit or conflicting *)
            Array.unsafe_set wd (2 * !j) c;
            Array.unsafe_set wd ((2 * !j) + 1) first;
            incr j;
            if fval = -1 then begin
              conflict := c;
              t.qhead <- Vec.size t.trail;
              (* copy the remaining watches back *)
              while !i < n_ws do
                Array.unsafe_set wd (2 * !j) (Array.unsafe_get wd (2 * !i));
                Array.unsafe_set wd ((2 * !j) + 1)
                  (Array.unsafe_get wd ((2 * !i) + 1));
                incr i;
                incr j
              done
            end
            else enqueue t first c
          end
        end
      end
    done;
    ws.wsz <- !j
  done;
  !conflict

(* ------------------------------------------------------------------ *)
(* arena garbage collection                                             *)

(* Deleted clauses are purged from every watch list at the point of
   deletion (reduce_db / simplify_roots), so at GC time the watch lists,
   the trail reasons (always locked, hence never deleted), the learnt list
   and the live original map hold exactly the live crefs: relocate each
   through the forwarding map and swap arenas. *)
let garbage_collect t =
  let from = t.arena in
  let live = Arena.words from - Arena.wasted from in
  let into = Arena.create ~capacity:(max 64 live) () in
  Array.iter
    (fun w ->
      for k = 0 to w.wsz - 1 do
        w.wdata.(2 * k) <- Arena.reloc from ~into w.wdata.(2 * k)
      done)
    t.watches;
  for i = 0 to Vec.size t.trail - 1 do
    let v = Sat.Lit.var (Vec.get t.trail i) in
    let r = t.reason.(v) in
    if r <> no_cref then t.reason.(v) <- Arena.reloc from ~into r
  done;
  for i = 0 to Vec.size t.learnts - 1 do
    Vec.set t.learnts i (Arena.reloc from ~into (Vec.get t.learnts i))
  done;
  for i = 0 to t.num_original - 1 do
    let c = t.original_cls.(i) in
    if c <> no_cref then t.original_cls.(i) <- Arena.reloc from ~into c
  done;
  t.arena <- into

let maybe_gc t =
  let wasted = Arena.wasted t.arena in
  if
    wasted > 0
    && float_of_int wasted
       > t.config.Config.garbage_frac *. float_of_int (Arena.words t.arena)
  then garbage_collect t

(* drop watchers of deleted clauses, preserving the order of the live ones
   (count-equivalent to dropping them lazily inside [propagate], and it
   keeps the hot loop free of deleted checks) *)
let purge_deleted_watches t =
  let ar = t.arena in
  Array.iter
    (fun w ->
      let j = ref 0 in
      for i = 0 to w.wsz - 1 do
        let c = w.wdata.(2 * i) in
        if not (Arena.deleted ar c) then begin
          w.wdata.(2 * !j) <- c;
          w.wdata.((2 * !j) + 1) <- w.wdata.((2 * i) + 1);
          incr j
        end
      done;
      w.wsz <- !j)
    t.watches

(* ------------------------------------------------------------------ *)
(* backtracking                                                         *)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    (* hoisted out of the unassignment loop: both are per-solver constants,
       and the heuristic test is a variant comparison *)
    let chb = t.config.Config.heuristic = Config.Chb in
    let save_phase = t.config.Config.phase_saving in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.unsafe_get t.trail i in
      let v = Sat.Lit.var l in
      if chb then chb_update t v (t.chb_last_conflict.(v) = t.s_conflicts);
      t.assigns.(v) <- 0;
      t.reason.(v) <- no_cref;
      if save_phase then t.polarity.(v) <- Sat.Lit.is_pos l;
      Var_heap.insert t.heap v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* ------------------------------------------------------------------ *)
(* incremental clause addition                                          *)

let add_clause t lits =
  match t.status with
  | Unsat -> () (* the instance is already refuted; nothing can relax that *)
  | _ ->
      invalidate_sat t;
      cancel_until t 0;
      List.iter
        (fun l ->
          let v = Sat.Lit.var l in
          while t.n <= v do
            ignore (new_var t)
          done)
        lits;
      (* root-level reduction: drop false literals, detect satisfied /
         tautological clauses, dedupe *)
      let taut = ref false and sat_root = ref false in
      let kept = ref [] in
      List.iter
        (fun l ->
          if not (!taut || !sat_root) then
            match value_lit t l with
            | 1 -> sat_root := true
            | -1 -> ()
            | _ ->
                if List.exists (fun k -> k = Sat.Lit.negate l) !kept then taut := true
                else if not (List.mem l !kept) then kept := l :: !kept)
        lits;
      (* every added clause consumes an original index, installed or not, so
         instrumentation indices match the caller's clause numbering *)
      let i = t.num_original in
      ensure_clause_capacity t (i + 1);
      t.num_original <- i + 1;
      t.clause_score.(i) <- 1.0;
      t.visits_prop.(i) <- 0;
      t.visits_confl.(i) <- 0;
      if not (!taut || !sat_root) then begin
        match List.rev !kept with
        | [] ->
            log_proof t (Sat.Drat.Add []);
            t.status <- Unsat
        | [ l ] -> enqueue_root t l
        | ls ->
            let arr = Array.of_list ls in
            let cref = Arena.alloc t.arena ~learnt:false ~origin:i arr in
            t.original_cls.(i) <- cref;
            wlist_push t.watches.(arr.(0)) cref arr.(1);
            wlist_push t.watches.(arr.(1)) cref arr.(0)
      end

(* ------------------------------------------------------------------ *)
(* conflict analysis (first UIP)                                        *)

let lit_redundant t l =
  (* non-recursive approximation of MiniSAT's minimisation: the literal is
     redundant if its reason exists and all antecedent literals are already
     seen or assigned at level 0 *)
  let v = Sat.Lit.var l in
  let r = t.reason.(v) in
  r <> no_cref
  &&
  let ar = t.arena in
  let sz = Arena.size ar r in
  let rec ok i =
    i >= sz
    ||
    let w = Sat.Lit.var (Arena.lit ar r i) in
    (w = v || t.seen.(w) || t.level.(w) = 0) && ok (i + 1)
  in
  ok 0

let analyze t conflict =
  let ar = t.arena in
  let track = t.config.Config.track_paper_stats in
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let c = ref conflict in
  let dl = decision_level t in
  let continue = ref true in
  while !continue do
    if Arena.learnt ar !c then bump_cla t !c;
    if track then bump_clause_score t !c;
    let sz = Arena.size ar !c in
    for idx = 0 to sz - 1 do
      let q = Arena.lit ar !c idx in
      let v = Sat.Lit.var q in
      if (!p = -1 || v <> Sat.Lit.var !p) && (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        (match t.config.Config.heuristic with
        | Config.Vsids -> bump_var_internal t v t.var_inc
        | Config.Chb -> t.chb_last_conflict.(v) <- t.s_conflicts);
        if t.level.(v) >= dl then incr path_c else learnt := q :: !learnt
      end
    done;
    (* walk the trail back to the next marked literal *)
    while not t.seen.(Sat.Lit.var (Vec.get t.trail !index)) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    t.seen.(Sat.Lit.var !p) <- false;
    decr path_c;
    if !path_c <= 0 then continue := false else c := t.reason.(Sat.Lit.var !p)
  done;
  let uip = Sat.Lit.negate !p in
  (* clause minimisation *)
  let tail = List.filter (fun l -> not (lit_redundant t l)) !learnt in
  (* clear the seen markers *)
  List.iter (fun l -> t.seen.(Sat.Lit.var l) <- false) !learnt;
  (* compute backjump level & put a highest-level literal second *)
  let tail = List.sort (fun a b -> compare t.level.(Sat.Lit.var b) t.level.(Sat.Lit.var a)) tail in
  let back_level = match tail with [] -> 0 | l :: _ -> t.level.(Sat.Lit.var l) in
  (Array.of_list (uip :: tail), back_level)

(* final-conflict analysis (MiniSAT analyzeFinal): [p] is a falsified
   assumption; walk the implication graph of [¬p] down the trail and
   collect the assumptions it rests on.  Sound because of the level-prefix
   invariant: every decision on the trail is itself an assumption. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let ar = t.arena in
    t.seen.(Sat.Lit.var p) <- true;
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let q = Vec.get t.trail i in
      let v = Sat.Lit.var q in
      if t.seen.(v) then begin
        (* [q] can never be [p] itself (p is falsified, so the trail holds
           its negation) — even when [v = var p] the decision found here is
           the {e earlier} assumption contradicting [p], and belongs in the
           core *)
        (let r = t.reason.(v) in
         if r = no_cref then core := q :: !core
         else
           for idx = 0 to Arena.size ar r - 1 do
             let w = Sat.Lit.var (Arena.lit ar r idx) in
             if t.level.(w) > 0 then t.seen.(w) <- true
           done);
        t.seen.(v) <- false
      end
    done;
    t.seen.(Sat.Lit.var p) <- false
  end;
  t.last_core <- Array.of_list !core

(* lbd of a learnt clause: number of distinct decision levels *)
let lbd t lits =
  let tbl = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace tbl t.level.(Sat.Lit.var l) ()) lits;
  Hashtbl.length tbl

let record_learnt t lits =
  if not (Obs.Ctx.is_null t.obs) then
    Obs.Metrics.observe t.obs "cdcl_learnt_clause_size"
      (float_of_int (Array.length lits));
  log_proof t (Sat.Drat.Add (Array.to_list lits));
  t.s_learnt_clauses <- t.s_learnt_clauses + 1;
  t.s_learnt_literals <- t.s_learnt_literals + Array.length lits;
  if Array.length lits = 1 then enqueue t lits.(0) no_cref
  else begin
    let c = Arena.alloc t.arena ~learnt:true ~origin:(-1) lits in
    bump_cla t c;
    Vec.push t.learnts c;
    wlist_push t.watches.(lits.(0)) c lits.(1);
    wlist_push t.watches.(lits.(1)) c lits.(0);
    enqueue t lits.(0) c
  end

let locked t c =
  let l0 = Arena.lit t.arena c 0 in
  let v = Sat.Lit.var l0 in
  t.reason.(v) = c && value_lit t l0 = 1

let reduce_db t =
  (* keep binary, locked and the more active half *)
  let ar = t.arena in
  let arr = Array.init (Vec.size t.learnts) (fun i -> Vec.get t.learnts i) in
  Array.sort (fun a b -> Float.compare (Arena.activity ar a) (Arena.activity ar b)) arr;
  let limit = t.cla_inc /. float_of_int (max 1 (Array.length arr)) in
  let n_half = Array.length arr / 2 in
  Array.iteri
    (fun i c ->
      if
        Arena.size ar c > 2
        && (not (locked t c))
        && (i < n_half || Arena.activity ar c < limit)
      then begin
        log_proof t (Sat.Drat.Delete (Arena.lit_list ar c));
        Arena.delete ar c;
        t.s_deleted <- t.s_deleted + 1
      end)
    arr;
  Vec.filter_in_place (fun c -> not (Arena.deleted ar c)) t.learnts;
  purge_deleted_watches t;
  maybe_gc t

(* ------------------------------------------------------------------ *)
(* root-level simplification (between incremental solves)               *)

let simplify_roots t =
  match t.status with
  | Sat _ | Unsat -> ()
  | Unknown _ ->
      if decision_level t = 0 then begin
        if propagate t <> no_cref then begin
          log_proof t (Sat.Drat.Add []);
          t.status <- Unsat
        end
        else if Vec.size t.trail > t.simp_trail then begin
          (* the root trail grew since the last pass: remove clauses now
             satisfied at level 0 (learnt deletions logged for DRAT;
             original deletions are just deactivation — the proof checker
             keeps the formula) *)
          let ar = t.arena in
          let satisfied c =
            let sz = Arena.size ar c in
            let rec go i = i < sz && (value_lit t (Arena.lit ar c i) = 1 || go (i + 1)) in
            go 0
          in
          Vec.iter
            (fun c ->
              if (not (Arena.deleted ar c)) && satisfied c then begin
                log_proof t (Sat.Drat.Delete (Arena.lit_list ar c));
                Arena.delete ar c;
                t.s_deleted <- t.s_deleted + 1
              end)
            t.learnts;
          Vec.filter_in_place (fun c -> not (Arena.deleted ar c)) t.learnts;
          for i = 0 to t.num_original - 1 do
            let c = t.original_cls.(i) in
            if c <> no_cref && (not (Arena.deleted ar c)) && satisfied c then begin
              Arena.delete ar c;
              t.original_cls.(i) <- no_cref
            end
          done;
          (* root assignments are facts: drop their reasons, which may
             point at clauses deleted above *)
          for i = 0 to Vec.size t.trail - 1 do
            t.reason.(Sat.Lit.var (Vec.get t.trail i)) <- no_cref
          done;
          purge_deleted_watches t;
          t.simp_trail <- Vec.size t.trail;
          maybe_gc t
        end
      end

(* ------------------------------------------------------------------ *)
(* restarts                                                             *)

let note_conflict_for_restarts t clause_lbd =
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  match t.config.Config.restart with
  | Config.No_restarts -> ()
  | Config.Luby_restarts base ->
      if t.conflicts_since_restart >= Luby.restart_limit ~base t.restart_k then
        t.restart_pending <- true
  | Config.Ema_restarts { fast; slow; margin } ->
      let l = float_of_int clause_lbd in
      t.ema_fast <- t.ema_fast +. (fast *. (l -. t.ema_fast));
      t.ema_slow <- t.ema_slow +. (slow *. (l -. t.ema_slow));
      if
        t.conflicts_since_restart > 50
        && t.ema_fast > margin *. t.ema_slow
      then t.restart_pending <- true

let apply_restart t =
  t.restart_pending <- false;
  t.conflicts_since_restart <- 0;
  t.restart_k <- t.restart_k + 1;
  t.ema_fast <- 0.;
  t.ema_slow <- 0.;
  t.s_restarts <- t.s_restarts + 1;
  cancel_until t 0

(* ------------------------------------------------------------------ *)
(* decisions                                                            *)

let pick_branch_var t =
  (* priority queue injected by the hybrid backend first *)
  let rec from_forced () =
    if Queue.is_empty t.forced_queue then None
    else
      let v = Queue.pop t.forced_queue in
      if value_var t v = 0 then Some v else from_forced ()
  in
  match from_forced () with
  | Some v -> Some v
  | None ->
      let rec from_heap () =
        if Var_heap.is_empty t.heap then None
        else
          let v = Var_heap.pop_max t.heap in
          if value_var t v = 0 then Some v else from_heap ()
      in
      from_heap ()

let decide t v =
  t.s_decisions <- t.s_decisions + 1;
  let sign =
    if
      t.config.Config.random_polarity_freq > 0.
      && Stats.Rng.float t.rng 1.0 < t.config.Config.random_polarity_freq
    then Stats.Rng.bool t.rng
    else t.polarity.(v)
  in
  Vec.push t.trail_lim (Vec.size t.trail);
  enqueue t (Sat.Lit.make v sign) no_cref;
  if decision_level t > t.s_max_level then t.s_max_level <- decision_level t

let extract_model t = Array.init t.n (fun v -> t.assigns.(v) = 1)

(* ------------------------------------------------------------------ *)
(* main loop                                                            *)

let falsified_assumption t =
  let rec go i =
    if i >= Array.length t.assumptions then None
    else if value_lit t t.assumptions.(i) = -1 then Some t.assumptions.(i)
    else go (i + 1)
  in
  go 0

let step t =
  match t.status with
  | Sat m -> `Sat m
  | Unsat -> `Unsat
  | Unknown _ -> (
      t.s_iterations <- t.s_iterations + 1;
      let confl = propagate t in
      if confl <> no_cref then begin
        t.s_conflicts <- t.s_conflicts + 1;
        if t.config.Config.heuristic = Config.Chb then
          t.chb_alpha <- Float.max 0.06 (t.chb_alpha -. 1e-6);
        if decision_level t = 0 then begin
          log_proof t (Sat.Drat.Add []);
          t.status <- Unsat;
          `Unsat
        end
        else begin
          let lits, back_level = analyze t confl in
          note_conflict_for_restarts t (lbd t lits);
          cancel_until t back_level;
          record_learnt t lits;
          decay_var_activity t;
          decay_cla_activity t;
          if
            t.config.Config.reduce_db
            && float_of_int (Vec.size t.learnts) > t.max_learnts
          then begin
            reduce_db t;
            t.max_learnts <- t.max_learnts *. 1.3
          end;
          `Continue
        end
      end
      else if Vec.size t.trail = t.n then
        match falsified_assumption t with
        | Some l ->
            analyze_final t l;
            `Unsat_assumptions
        | None ->
            let m = extract_model t in
            t.status <- Sat m;
            `Sat m
      else begin
        if t.restart_pending then apply_restart t;
        let dl = decision_level t in
        if dl < Array.length t.assumptions then begin
          (* assumptions occupy the first decision levels, one each, in
             order (the level-prefix invariant behind [analyze_final]) *)
          let l = t.assumptions.(dl) in
          match value_lit t l with
          | 1 ->
              (* already true: open an empty level so assumption index
                 keeps mapping onto decision level *)
              Vec.push t.trail_lim (Vec.size t.trail);
              `Continue
          | -1 ->
              analyze_final t l;
              `Unsat_assumptions
          | _ ->
              t.s_decisions <- t.s_decisions + 1;
              Vec.push t.trail_lim (Vec.size t.trail);
              enqueue t l no_cref;
              if decision_level t > t.s_max_level then
                t.s_max_level <- decision_level t;
              `Continue
        end
        else begin
          (match pick_branch_var t with
          | Some v -> decide t v
          | None ->
              (* all remaining vars assigned at level 0 but trail < n can
                 not happen: heap holds every unassigned var *)
              assert false);
          `Continue
        end
      end)

let run_search ?(max_conflicts = max_int) ?(max_iterations = max_int) t =
  simplify_roots t;
  let saturating_add a b = if a > max_int - b then max_int else a + b in
  (* budgets are per-call deltas over the cumulative counters, so resuming
     after an [Unknown] grants a fresh budget rather than returning
     immediately *)
  let conflict_budget = saturating_add t.s_conflicts max_conflicts in
  let iteration_budget = saturating_add t.s_iterations max_iterations in
  let rec loop polls =
    if t.s_conflicts >= conflict_budget || t.s_iterations >= iteration_budget then
      `Done (Unknown Sat.Answer.Budget)
    else if polls land 127 = 0 && t.terminate () then `Done (Unknown Sat.Answer.Cancelled)
    else
      match step t with
      | `Continue -> loop (polls + 1)
      | `Sat m -> `Done (Sat m)
      | `Unsat -> `Done Unsat
      | `Unsat_assumptions -> `Unsat_assumptions
  in
  match t.status with
  | Sat m -> `Done (Sat m)
  | Unsat -> `Done Unsat
  | Unknown _ -> loop 0

let clear_assumptions t =
  if Array.length t.assumptions > 0 then begin
    cancel_until t 0;
    t.assumptions <- [||]
  end

let set_assumptions t lits =
  let arr = Array.of_list lits in
  if arr <> t.assumptions then begin
    cancel_until t 0;
    t.assumptions <- arr;
    t.last_core <- [||];
    (* a cached Sat answer may violate the new assumptions *)
    invalidate_sat t
  end

let solve ?max_conflicts ?max_iterations t =
  (* a plain solve is an assumption-free solve: leftover assumption
     decisions from a previous assumption solve must not constrain it *)
  clear_assumptions t;
  match run_search ?max_conflicts ?max_iterations t with
  | `Done r -> r
  | `Unsat_assumptions -> assert false (* no assumptions installed *)

let solve_with_assumptions ?max_conflicts ?max_iterations t lits =
  match t.status with
  | Unsat -> `Unsat
  | _ -> (
      set_assumptions t lits;
      match run_search ?max_conflicts ?max_iterations t with
      | `Done (Sat m) -> `Sat m
      | `Done Unsat -> `Unsat
      | `Done (Unknown _) -> `Unknown
      | `Unsat_assumptions ->
          cancel_until t 0;
          t.status <- Unknown Sat.Answer.Budget;
          `Unsat_assumptions)

let unsat_core t = Array.to_list t.last_core

(* ------------------------------------------------------------------ *)
(* learnt-clause interchange                                            *)

let export_learnts ?(max_len = 4) ?(max_clauses = 512) t =
  (* root facts first: the strongest, cheapest clauses to hand a sibling
     solver working on the same formula *)
  let ar = t.arena in
  let root_end =
    if decision_level t = 0 then Vec.size t.trail else Vec.get t.trail_lim 0
  in
  let count = ref 0 in
  let units = ref [] in
  for i = root_end - 1 downto 0 do
    if !count < max_clauses then begin
      units := [| Vec.get t.trail i |] :: !units;
      incr count
    end
  done;
  (* then the most active short learnt clauses *)
  let arr = Array.init (Vec.size t.learnts) (Vec.get t.learnts) in
  Array.sort (fun a b -> Float.compare (Arena.activity ar b) (Arena.activity ar a)) arr;
  let cls = ref [] in
  Array.iter
    (fun c ->
      if
        (not (Arena.deleted ar c))
        && Arena.size ar c <= max_len
        && !count < max_clauses
      then begin
        cls := Arena.lits ar c :: !cls;
        incr count
      end)
    arr;
  !units @ List.rev !cls

let import_clauses t clauses =
  (* the caller's contract: every clause is a logical consequence of this
     solver's formula (learnt by a solver over the same or a subset clause
     set).  Refused under proof logging — a foreign learnt clause has no
     RUP derivation at this point in the log, so importing would break
     {!proof} checkability. *)
  if t.config.Config.log_proof then 0
  else
    match t.status with
    | Unsat -> 0
    | _ ->
        invalidate_sat t;
        cancel_until t 0;
        let imported = ref 0 in
        List.iter
          (fun lits ->
            if
              (match t.status with Unsat -> false | _ -> true)
              && Array.for_all (fun l -> Sat.Lit.var l < t.n) lits
            then begin
              let taut = ref false and sat_root = ref false in
              let kept = ref [] in
              Array.iter
                (fun l ->
                  if not (!taut || !sat_root) then
                    match value_lit t l with
                    | 1 -> sat_root := true
                    | -1 -> ()
                    | _ ->
                        if List.exists (fun k -> k = Sat.Lit.negate l) !kept then
                          taut := true
                        else if not (List.mem l !kept) then kept := l :: !kept)
                lits;
              if not (!taut || !sat_root) then
                match List.rev !kept with
                | [] -> t.status <- Unsat
                | [ l ] ->
                    enqueue_root t l;
                    incr imported
                | ls ->
                    let arr = Array.of_list ls in
                    let c = Arena.alloc t.arena ~learnt:true ~origin:(-1) arr in
                    bump_cla t c;
                    Vec.push t.learnts c;
                    wlist_push t.watches.(arr.(0)) c arr.(1);
                    wlist_push t.watches.(arr.(1)) c arr.(0);
                    incr imported
            end)
          clauses;
        !imported

(* ------------------------------------------------------------------ *)
(* accessors                                                            *)

let stats t =
  {
    decisions = t.s_decisions;
    propagations = t.s_propagations;
    conflicts = t.s_conflicts;
    restarts = t.s_restarts;
    learnt_clauses = t.s_learnt_clauses;
    learnt_literals = t.s_learnt_literals;
    deleted_clauses = t.s_deleted;
    iterations = t.s_iterations;
    max_decision_level = t.s_max_level;
  }

let clause_activity t i = t.clause_score.(i)
let clause_visits t i = (t.visits_prop.(i), t.visits_confl.(i))
let clause_is_active t i = t.original_cls.(i) <> no_cref
let set_polarity t v b = t.polarity.(v) <- b
let prioritize_vars t vars = List.iter (fun v -> Queue.push v t.forced_queue) vars

let value t v =
  match t.assigns.(v) with
  | 1 -> Sat.Assignment.True
  | -1 -> Sat.Assignment.False
  | _ -> Sat.Assignment.Unassigned

let trail_literals t = Vec.to_list t.trail
let proof t = if t.config.Config.log_proof then Some (List.rev t.proof_rev) else None
let model t = match t.status with Sat m -> Some m | _ -> None

let model_value t v =
  match t.status with
  | Sat m when v < Array.length m -> Some m.(v)
  | _ -> None

let is_decided t = match t.status with Unknown _ -> false | _ -> true

let force_restart t = t.restart_pending <- true
let set_terminate t f = t.terminate <- f
let set_obs t obs = t.obs <- obs

let arena_words t = Arena.words t.arena
let arena_wasted t = Arena.wasted t.arena

let flush_obs t =
  let obs = t.obs in
  if not (Obs.Ctx.is_null obs) then begin
    Obs.Metrics.count obs "cdcl_conflicts_total" t.s_conflicts;
    Obs.Metrics.count obs "cdcl_propagations_total" t.s_propagations;
    Obs.Metrics.count obs "cdcl_decisions_total" t.s_decisions;
    Obs.Metrics.count obs "cdcl_restarts_total" t.s_restarts;
    Obs.Metrics.count obs "cdcl_learnt_clauses_total" t.s_learnt_clauses;
    Obs.Metrics.count obs "cdcl_deleted_clauses_total" t.s_deleted
  end
