(** The pre-arena CDCL core, behaviourally frozen.

    Clause database as it was before {!Arena}: one heap record per clause
    with a boxed literal array, watch lists of clause pointers.  It runs
    the same blocker-literal watch scheme in the same evaluation order as
    {!Solver}, so both engines make bit-identical search decisions — the
    differential tests assert equal answers {e and} equal
    {!Solver.stats}, and [bench cdcl] uses this module as the baseline
    whose speedup isolates the arena representation.

    Deliberately minimal API (no proofs, instrumentation, hybrid hooks or
    clause interchange): enough surface to drive identical searches. *)

type t

type result = Sat.Answer.t =
  | Sat of bool array
  | Unsat
  | Unknown of Sat.Answer.reason

val create : ?config:Config.t -> Sat.Cnf.t -> t
val new_var : t -> Sat.Lit.var
val add_clause : t -> Sat.Lit.t list -> unit
val solve : ?max_conflicts:int -> ?max_iterations:int -> t -> result

val solve_with_assumptions :
  ?max_conflicts:int ->
  ?max_iterations:int ->
  t ->
  Sat.Lit.t list ->
  [ `Sat of bool array | `Unsat | `Unsat_assumptions | `Unknown ]

val unsat_core : t -> Sat.Lit.t list
val num_vars : t -> int

val stats : t -> Solver.stats
(** Shares {!Solver.stats} so differential tests compare records directly. *)

val model : t -> bool array option
