(** Plain DPLL (no clause learning): the pre-CDCL baseline.

    Unit propagation + chronological backtracking with a most-occurrences
    branching rule.  Exists as a reference point for how much conflict
    learning buys, and as a second ground-truth oracle in the test suite for
    instances beyond {!Sat.Brute}'s reach. *)

type stats = { decisions : int; propagations : int; backtracks : int }

val solve : ?max_decisions:int -> Sat.Cnf.t -> Solver.result * stats
(** [Unknown Budget] when the decision budget runs out. *)
