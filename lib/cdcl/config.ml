type heuristic = Vsids | Chb

type restart_policy =
  | Luby_restarts of int
  | Ema_restarts of { fast : float; slow : float; margin : float }
  | No_restarts

type t = {
  heuristic : heuristic;
  restart : restart_policy;
  var_decay : float;
  clause_decay : float;
  phase_saving : bool;
  random_polarity_freq : float;
  reduce_db : bool;
  learntsize_factor : float;
  log_proof : bool;
  track_paper_stats : bool;
  garbage_frac : float;
  seed : int;
}

let minisat_like =
  {
    heuristic = Vsids;
    restart = Luby_restarts 100;
    var_decay = 0.95;
    clause_decay = 0.999;
    phase_saving = true;
    random_polarity_freq = 0.02;
    reduce_db = true;
    learntsize_factor = 1.0 /. 3.0;
    log_proof = false;
    track_paper_stats = false;
    garbage_frac = 0.20;
    seed = 91648253;
  }

let kissat_like =
  {
    heuristic = Chb;
    restart = Ema_restarts { fast = 1. /. 32.; slow = 1. /. 4096.; margin = 1.25 };
    var_decay = 0.95;
    clause_decay = 0.999;
    phase_saving = true;
    random_polarity_freq = 0.0;
    reduce_db = true;
    learntsize_factor = 1.0 /. 3.0;
    log_proof = false;
    track_paper_stats = false;
    garbage_frac = 0.20;
    seed = 91648253;
  }

let default = minisat_like
let with_seed seed t = { t with seed }

let with_proof_logging t = { t with log_proof = true }
let with_paper_stats t = { t with track_paper_stats = true }
