(** Growable array, the workhorse container of the solver hot paths. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity (never observable through the API). *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** {!get} without the bounds check.  The index must satisfy
    [0 <= i < size t]; violated bounds are caught by an [assert] in debug
    builds and are undefined behaviour under [-noassert].  For hot loops
    (trail walks, watch-list scans) only. *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** {!set} without the bounds check; same contract as {!unsafe_get}. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink t n] drops elements so that [size t = n]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)
