(** Solver configuration.

    Two presets model the paper's two classical baselines:
    {!minisat_like} (VSIDS + Luby restarts, MiniSAT 2.2 defaults) and
    {!kissat_like} (CHB-style bandit heuristic + EMA-driven restarts, the
    ingredients the paper attributes to KisSAT [14], [40]). *)

type heuristic =
  | Vsids  (** exponential VSIDS with activity decay *)
  | Chb  (** conflict-history-based multi-armed-bandit scores *)

type restart_policy =
  | Luby_restarts of int  (** base conflict interval *)
  | Ema_restarts of { fast : float; slow : float; margin : float }
      (** restart when fast LBD average exceeds [margin] × slow average *)
  | No_restarts

type t = {
  heuristic : heuristic;
  restart : restart_policy;
  var_decay : float;  (** VSIDS activity decay (e.g. 0.95) *)
  clause_decay : float;  (** learnt-clause activity decay *)
  phase_saving : bool;
  random_polarity_freq : float;  (** probability of a random polarity pick *)
  reduce_db : bool;  (** periodically delete weak learnt clauses *)
  learntsize_factor : float;  (** initial learnt budget = factor × #clauses *)
  log_proof : bool;  (** record a DRAT proof ({!Solver.proof}) *)
  track_paper_stats : bool;
      (** maintain the paper instrumentation ({!Solver.clause_activity},
          {!Solver.clause_visits}): per-clause score and visit counters
          bumped on every propagation/conflict visit.  Off by default so the
          propagate/analyze hot paths skip the array writes; the hybrid
          solver and the figure experiments that consume the counters turn
          it on explicitly.  Never affects answers or search behaviour. *)
  garbage_frac : float;
      (** clause-arena compaction threshold: garbage-collect the arena when
          the fraction of dead words (deleted clauses) exceeds this value
          (MiniSAT's default 0.20).  Compaction relocates clause refs and is
          behaviour-invariant; raise it to trade memory for fewer
          relocation passes on long incremental sessions. *)
  seed : int;
}

val minisat_like : t
val kissat_like : t
val default : t
(** [minisat_like]. *)

val with_seed : int -> t -> t
val with_proof_logging : t -> t

val with_paper_stats : t -> t
(** Enable {!field-track_paper_stats}. *)
