(** Max-heap of variables keyed by a mutable activity array.

    The heap stores variable indices; ordering reads from the activity array
    supplied at creation, so bumping activity only requires a {!decrease}/
    {!increase} notification. *)

type t

val create : int -> float array -> t
(** [create n activity] is a heap over variables [0..n-1] (initially all
    present) ordered by [activity]. *)

val in_heap : t -> int -> bool

(** How many variables the heap's backing arrays can address ([0..cap-1]);
    {!grow} past this before inserting higher indices. *)
val capacity : t -> int
val is_empty : t -> bool
val size : t -> int

val insert : t -> int -> unit
(** No-op when already present. *)

val pop_max : t -> int
(** Removes and returns the variable with maximal activity.
    @raise Not_found if empty. *)

val notify_increase : t -> int -> unit
(** Re-establish heap order after the variable's activity increased. *)

val grow : t -> int -> float array -> t
(** [grow t n' activity] is a heap over variables [0..n'-1] backed by the
    (reallocated) [activity] array, with [t]'s membership and order
    preserved.  Newly admitted variables are absent until {!insert}ed.
    [t] itself must no longer be used. *)

val rebuild : t -> unit
(** Re-heapify everything (after a global rescale, order is preserved, so
    this is rarely needed; provided for decay implementations that do not
    preserve order). *)
