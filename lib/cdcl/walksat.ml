type stats = { flips : int; restarts_used : int }

let solve ?(max_flips = 10_000) ?(restarts = 10) ?(noise = 0.5)
    ?(should_stop = fun () -> false) rng f =
  let n = Sat.Cnf.num_vars f in
  let m = Sat.Cnf.num_clauses f in
  let total_flips = ref 0 in
  let restarts_used = ref 0 in
  let result = ref None in
  let model = Array.make (max n 1) false in
  let lit_true l = if Sat.Lit.is_pos l then model.(Sat.Lit.var l) else not model.(Sat.Lit.var l) in
  let clause_sat k = Array.exists lit_true (Sat.Cnf.clause f k : Sat.Clause.t :> Sat.Lit.t array) in
  let unsat_clauses () =
    let acc = ref [] in
    for k = m - 1 downto 0 do
      if not (clause_sat k) then acc := k :: !acc
    done;
    !acc
  in
  (* break count: satisfied clauses that flipping v would falsify *)
  let break_count v =
    model.(v) <- not model.(v);
    let broken =
      List.fold_left
        (fun acc k -> if clause_sat k then acc else acc + 1)
        0
        (Sat.Cnf.clauses_of_var f v)
    in
    model.(v) <- not model.(v);
    broken
  in
  let attempt () =
    for v = 0 to n - 1 do
      model.(v) <- Stats.Rng.bool rng
    done;
    let flips = ref 0 in
    let solved = ref (unsat_clauses () = []) in
    while (not !solved) && !flips < max_flips && not (!flips land 63 = 0 && should_stop ()) do
      (match unsat_clauses () with
      | [] -> solved := true
      | unsat ->
          let k = List.nth unsat (Stats.Rng.int rng (List.length unsat)) in
          let vars = Sat.Clause.vars (Sat.Cnf.clause f k) in
          let v =
            if Stats.Rng.float rng 1.0 < noise then
              List.nth vars (Stats.Rng.int rng (List.length vars))
            else
              (* greedy: minimal break count *)
              fst
                (List.fold_left
                   (fun (best, best_b) v ->
                     let b = break_count v in
                     if b < best_b then (v, b) else (best, best_b))
                   (List.hd vars, break_count (List.hd vars))
                   (List.tl vars))
          in
          model.(v) <- not model.(v));
      incr flips;
      incr total_flips
    done;
    !solved
  in
  (try
     for _ = 1 to restarts do
       if should_stop () then raise Exit;
       incr restarts_used;
       if attempt () then begin
         result := Some (Array.copy model);
         raise Exit
       end
     done
   with Exit -> ());
  (!result, { flips = !total_flips; restarts_used = !restarts_used })
