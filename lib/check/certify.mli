(** Certified answers: model-checked SAT, proof-checked UNSAT.

    The hybrid pipeline's strategy feedback (paper §IV-C) prunes the CDCL
    search with annealer guidance; this module makes the resulting answers
    independently checkable artifacts rather than trusted outputs.  A [Sat]
    answer is verified against the {e original} formula — before 3-SAT
    conversion, so auxiliary chain variables can never mask a wrong model —
    and an [Unsat] answer must come with a DRAT derivation that passes
    {!Sat.Drat.check} (reverse unit propagation ending in the empty
    clause). *)

(** What was actually verified about an answer. *)
type verdict =
  | Model_verified  (** SAT: the (projected) model satisfies the original formula *)
  | Proof_verified of int  (** UNSAT: the DRAT proof checked; payload = step count *)
  | Nothing_to_certify  (** Unknown outcome: no claim was made *)

val verdict_label : (verdict, string) result -> string
(** Stable telemetry strings: ["model"], ["proof"], [""] (nothing to
    certify) and ["failed: <reason>"]. *)

val check_model : original:Sat.Cnf.t -> bool array -> (unit, string) result
(** [check_model ~original m] succeeds iff [m] — truncated to the original
    variable count when it also assigns 3-SAT auxiliaries (the
    {!Sat.Three_sat.convert} layout keeps original variables first) —
    satisfies every clause of [original].  [Error] names a falsified
    clause. *)

val check_proof : Sat.Cnf.t -> Sat.Drat.t -> (unit, string) result
(** [check_proof solved proof] is {!Sat.Drat.check} against the formula the
    solver actually ran on (post-conversion: UNSAT of the converted formula
    implies UNSAT of the original by equisatisfiability). *)

val certify :
  original:Sat.Cnf.t ->
  solved:Sat.Cnf.t ->
  ?proof:Sat.Drat.t ->
  Cdcl.Solver.result ->
  (verdict, string) result
(** Certify one solver answer.  [solved] is the formula the solver saw
    (equal to [original] when no conversion happened); [proof] is required
    for an [Unsat] answer to certify. *)

(** {2 Optimisation certificates} *)

type opt_verdict =
  | Cost_verified of int
      (** the model satisfies every hard clause and recomputes to the
          claimed cost; the optimality gap was still open *)
  | Optimality_verified of int
      (** additionally, an independent re-solve with the cost forced below
          the claim came back UNSAT — the model is proven optimal *)
  | Infeasibility_verified
      (** the hard clauses were independently re-proven unsatisfiable *)

val opt_verdict_label : (opt_verdict, string) result -> string
(** Stable telemetry strings: ["cost"], ["optimal"], ["infeasible"],
    ["failed: <reason>"]. *)

val certify_opt :
  ?max_conflicts:int ->
  ?should_stop:(unit -> bool) ->
  original:Sat.Wcnf.t ->
  Hyqsat.Optimize.result ->
  (opt_verdict, string) result
(** Certify an optimisation answer against the original WCNF.  The model's
    hard-satisfaction and cost are re-checked directly; an [Optimal] claim
    (gap = 0) is certified by re-encoding "cost ≤ best − 1" from scratch —
    hard clauses, selector-relaxed softs, binary-adder weighted counter
    ({!Sat.Cardinality.at_most_weight}) — and requiring a fresh CDCL solver
    to answer UNSAT.  [max_conflicts] bounds the re-solves and
    [should_stop] is installed as their terminate hook (so a daemon's
    cancel/drain switch reaches the certification re-solves too);
    exhausting either yields an [Error], never a silently weaker
    verdict. *)

(** {2 Certified solving} *)

type t = {
  report : Hyqsat.Hybrid_solver.report;  (** the raw solve report *)
  solved : Sat.Cnf.t;  (** formula the solver ran on (3-SAT-converted if needed) *)
  mapping : Sat.Three_sat.mapping option;  (** [Some] iff conversion happened *)
  model : bool array option;  (** SAT model, projected back to original variables *)
  certificate : (verdict, string) result;
}

val answer : t -> Sat.Answer.t
(** The certified result in the shared answer type: the solver's answer
    when the certificate holds (with [Sat] carrying the model projected to
    the original variables), [Unknown Cert_failed] when the checker
    rejected the claim. *)

val solve :
  ?config:Hyqsat.Hybrid_solver.config ->
  ?max_iterations:int ->
  ?should_stop:(unit -> bool) ->
  Sat.Cnf.t ->
  t
(** Certified hybrid solve: 3-SAT-convert if needed (keeping the map),
    force DRAT logging in the CDCL config, run
    {!Hyqsat.Hybrid_solver.solve}, then certify the answer end to end. *)

val solve_classic :
  ?config:Cdcl.Config.t ->
  ?max_iterations:int ->
  ?should_stop:(unit -> bool) ->
  Sat.Cnf.t ->
  t
(** Same wrapper around the classical baseline. *)
