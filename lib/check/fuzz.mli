(** Differential fuzzing of the hybrid solver against exact references.

    Each round draws a random small instance (uniform 3-SAT at a mix of
    clause/variable ratios, optionally with longer clauses so the 3-SAT
    conversion path is exercised), solves it three ways — certified hybrid
    ({!Certify.solve}), certified classical minisat-config
    ({!Certify.solve_classic}), and exhaustive {!Sat.Brute} — and flags any
    disagreement or uncertifiable answer.  A failing instance is shrunk to
    a minimal CNF reproducer by greedy clause deletion (every removal is
    re-validated against the same differential check). *)

type config = {
  instances : int;  (** rounds to run *)
  min_vars : int;
  max_vars : int;  (** instance size range (kept small: brute is the oracle) *)
  mixed_k : bool;  (** include clauses of length 4–6 (exercises conversion) *)
  max_iterations : int;  (** CDCL budget per solve; exhaustion is not a failure *)
  grid : int;  (** Chimera grid for the hybrid member (small = fast) *)
  seed : int;
}

val default_config : config
(** 200 instances over 4–10 variables, mixed-k on, 4×4 grid. *)

type failure = {
  instance_seed : int;  (** reproduce with [instance ~config ~seed] *)
  instance : Sat.Cnf.t;  (** as generated *)
  shrunk : Sat.Cnf.t;  (** minimal reproducer (clause-deletion fixpoint) *)
  reason : string;  (** first divergence found, human-readable *)
}

type outcome = { ran : int; failures : failure list }

val instance : config:config -> seed:int -> Sat.Cnf.t
(** The deterministic instance a given round draws. *)

val check_instance : config:config -> seed:int -> Sat.Cnf.t -> (unit, string) result
(** One differential round on a given formula: hybrid vs. classic vs.
    brute, all certified.  [Error] describes the first divergence. *)

val shrink : still_fails:(Sat.Cnf.t -> bool) -> Sat.Cnf.t -> Sat.Cnf.t
(** Greedy clause-deletion minimisation: repeatedly drop any clause whose
    removal keeps [still_fails] true, to a fixpoint, then compact away
    unused variables. *)

val reproducer : failure -> string
(** The shrunk instance as a DIMACS document (with the failure reason and
    seed as comments) — paste into a regression test or a CNF file. *)

val run : ?progress:(int -> unit) -> config -> outcome
(** Run the whole campaign.  [progress] is called with each completed round
    index (e.g. to keep CI logs alive). *)
