type verdict =
  | Model_verified
  | Proof_verified of int
  | Nothing_to_certify

let verdict_label = function
  | Ok Model_verified -> "model"
  | Ok (Proof_verified _) -> "proof"
  | Ok Nothing_to_certify -> ""
  | Error reason -> "failed: " ^ reason

let check_model ~original m =
  let n = Sat.Cnf.num_vars original in
  if Array.length m < n then
    Error
      (Printf.sprintf "model assigns %d of %d original variables" (Array.length m) n)
  else begin
    let m = if Array.length m > n then Array.sub m 0 n else m in
    let a = Sat.Assignment.of_bools m in
    let bad = ref None in
    Sat.Cnf.iter_clauses
      (fun i c ->
        if !bad = None && not (Sat.Assignment.satisfies_clause a c) then bad := Some (i, c))
      original;
    match !bad with
    | None -> Ok ()
    | Some (i, c) ->
        Error (Format.asprintf "model falsifies clause %d: %a" i Sat.Clause.pp c)
  end

let check_proof solved proof = Sat.Drat.check solved proof

let certify ~original ~solved ?proof result =
  match result with
  | Cdcl.Solver.Unknown _ -> Ok Nothing_to_certify
  | Cdcl.Solver.Sat m -> (
      match check_model ~original m with
      | Ok () -> Ok Model_verified
      | Error e -> Error e)
  | Cdcl.Solver.Unsat -> (
      match proof with
      | None -> Error "unsat answer carries no proof"
      | Some p -> (
          match check_proof solved p with
          | Ok () -> Ok (Proof_verified (List.length p))
          | Error e -> Error ("proof rejected: " ^ e)))

type t = {
  report : Hyqsat.Hybrid_solver.report;
  solved : Sat.Cnf.t;
  mapping : Sat.Three_sat.mapping option;
  model : bool array option;
  certificate : (verdict, string) result;
}

let convert_if_needed f =
  if Sat.Cnf.is_3sat f then (f, None)
  else
    let g, mapping = Sat.Three_sat.convert f in
    (g, Some mapping)

let finish ~original ~solved ~mapping report =
  let certificate =
    certify ~original ~solved ?proof:report.Hyqsat.Hybrid_solver.proof
      report.Hyqsat.Hybrid_solver.result
  in
  let model =
    match report.Hyqsat.Hybrid_solver.result with
    | Cdcl.Solver.Sat m ->
        Some
          (match mapping with
          | Some map -> Sat.Three_sat.project_model map m
          | None -> m)
    | _ -> None
  in
  { report; solved; mapping; model; certificate }

(* the certified answer in the shared Sat.Answer shape: a claim the checker
   rejected is withheld as Unknown Cert_failed; Sat carries the projected
   model so it speaks the original formula's variables *)
let answer t =
  match (t.certificate, t.report.Hyqsat.Hybrid_solver.result, t.model) with
  | Error _, _, _ -> Sat.Answer.Unknown Sat.Answer.Cert_failed
  | Ok _, Cdcl.Solver.Sat _, Some m -> Sat.Answer.Sat m
  | Ok _, r, _ -> r

let solve ?(config = Hyqsat.Hybrid_solver.default_config) ?max_iterations ?should_stop f =
  let solved, mapping = convert_if_needed f in
  let config =
    Hyqsat.Hybrid_solver.make_config ~base:config
      ~cdcl:(Cdcl.Config.with_proof_logging config.Hyqsat.Hybrid_solver.cdcl)
      ()
  in
  let report =
    Hyqsat.Solve.run ?max_iterations ?should_stop (Hyqsat.Solve.Hybrid config) solved
  in
  finish ~original:f ~solved ~mapping report

let solve_classic ?(config = Cdcl.Config.minisat_like) ?max_iterations ?should_stop f =
  let solved, mapping = convert_if_needed f in
  let config = Cdcl.Config.with_proof_logging config in
  let report =
    Hyqsat.Solve.run ?max_iterations ?should_stop (Hyqsat.Solve.Classic config) solved
  in
  finish ~original:f ~solved ~mapping report
