type verdict =
  | Model_verified
  | Proof_verified of int
  | Nothing_to_certify

let verdict_label = function
  | Ok Model_verified -> "model"
  | Ok (Proof_verified _) -> "proof"
  | Ok Nothing_to_certify -> ""
  | Error reason -> "failed: " ^ reason

let check_model ~original m =
  let n = Sat.Cnf.num_vars original in
  if Array.length m < n then
    Error
      (Printf.sprintf "model assigns %d of %d original variables" (Array.length m) n)
  else begin
    let m = if Array.length m > n then Array.sub m 0 n else m in
    let a = Sat.Assignment.of_bools m in
    let bad = ref None in
    Sat.Cnf.iter_clauses
      (fun i c ->
        if !bad = None && not (Sat.Assignment.satisfies_clause a c) then bad := Some (i, c))
      original;
    match !bad with
    | None -> Ok ()
    | Some (i, c) ->
        Error (Format.asprintf "model falsifies clause %d: %a" i Sat.Clause.pp c)
  end

let check_proof solved proof = Sat.Drat.check solved proof

(* ---- optimisation certificates ---- *)

type opt_verdict =
  | Cost_verified of int
  | Optimality_verified of int
  | Infeasibility_verified

let opt_verdict_label = function
  | Ok (Cost_verified _) -> "cost"
  | Ok (Optimality_verified _) -> "optimal"
  | Ok Infeasibility_verified -> "infeasible"
  | Error reason -> "failed: " ^ reason

(* Independent re-encoding of "some model costs at most [bound]": hard
   clauses, selector-relaxed softs, and a binary-adder weighted counter
   ({!Sat.Cardinality.at_most_weight}, O(softs · log sum_weights) — a unary
   expansion would allocate O(sum_weights) and real WDIMACS weights run to
   the millions).  Built from scratch here — deliberately not shared with
   [Hyqsat.Optimize] — so the certificate does not trust the solver's own
   encoding. *)
let bounded_cost_formula w ~bound =
  let n = Sat.Wcnf.num_vars w in
  let softs = Sat.Wcnf.soft_clauses w in
  let m = List.length softs in
  let relaxed =
    List.mapi
      (fun k (_, c) -> Sat.Clause.make (Sat.Lit.pos (n + k) :: Sat.Clause.lits c))
      softs
  in
  let weighted = List.mapi (fun k (wt, _) -> (wt, Sat.Lit.pos (n + k))) softs in
  let card = Sat.Cardinality.at_most_weight ~num_vars:(n + m) weighted ~k:bound in
  Sat.Cnf.make ~num_vars:card.Sat.Cardinality.num_vars
    (Array.to_list w.Sat.Wcnf.hard @ relaxed @ card.Sat.Cardinality.clauses)

let certify_opt ?max_conflicts ?should_stop ~original (r : Hyqsat.Optimize.result) =
  let w = original in
  let resolve f =
    let solver = Cdcl.Solver.create f in
    (match should_stop with
    | Some stop -> Cdcl.Solver.set_terminate solver stop
    | None -> ());
    Cdcl.Solver.solve ?max_conflicts solver
  in
  match (r.Hyqsat.Optimize.status, r.Hyqsat.Optimize.best) with
  | Hyqsat.Optimize.Infeasible, _ -> (
      match resolve (Sat.Wcnf.hard_cnf w) with
      | Cdcl.Solver.Unsat -> Ok Infeasibility_verified
      | Cdcl.Solver.Sat _ -> Error "claimed infeasible but the hard clauses are satisfiable"
      | Cdcl.Solver.Unknown _ -> Error "infeasibility re-solve inconclusive")
  | Hyqsat.Optimize.Unknown, _ -> Error "no model to certify"
  | (Hyqsat.Optimize.Optimal | Hyqsat.Optimize.Feasible), None ->
      Error "answer claims a model but carries none"
  | (Hyqsat.Optimize.Optimal | Hyqsat.Optimize.Feasible), Some m ->
      let n = Sat.Wcnf.num_vars w in
      if Array.length m < n then
        Error (Printf.sprintf "model assigns %d of %d variables" (Array.length m) n)
      else if not (Sat.Wcnf.hard_satisfied w m) then Error "model falsifies a hard clause"
      else begin
        let cost = Sat.Wcnf.cost w m in
        if cost <> r.Hyqsat.Optimize.best_cost then
          Error
            (Printf.sprintf "claimed cost %d but the model recomputes to %d"
               r.Hyqsat.Optimize.best_cost cost)
        else if r.Hyqsat.Optimize.lower_bound > cost then
          Error
            (Printf.sprintf "lower bound %d exceeds the model cost %d"
               r.Hyqsat.Optimize.lower_bound cost)
        else if r.Hyqsat.Optimize.status = Hyqsat.Optimize.Feasible then Ok (Cost_verified cost)
        else if cost = 0 then Ok (Optimality_verified 0)
        else
          (* optimality: forcing a strictly cheaper model must be UNSAT *)
          match resolve (bounded_cost_formula w ~bound:(cost - 1)) with
          | Cdcl.Solver.Unsat -> Ok (Optimality_verified cost)
          | Cdcl.Solver.Sat _ ->
              Error (Printf.sprintf "a model cheaper than the claimed optimum %d exists" cost)
          | Cdcl.Solver.Unknown _ -> Error "optimality re-solve inconclusive"
      end

let certify ~original ~solved ?proof result =
  match result with
  | Cdcl.Solver.Unknown _ -> Ok Nothing_to_certify
  | Cdcl.Solver.Sat m -> (
      match check_model ~original m with
      | Ok () -> Ok Model_verified
      | Error e -> Error e)
  | Cdcl.Solver.Unsat -> (
      match proof with
      | None -> Error "unsat answer carries no proof"
      | Some p -> (
          match check_proof solved p with
          | Ok () -> Ok (Proof_verified (List.length p))
          | Error e -> Error ("proof rejected: " ^ e)))

type t = {
  report : Hyqsat.Hybrid_solver.report;
  solved : Sat.Cnf.t;
  mapping : Sat.Three_sat.mapping option;
  model : bool array option;
  certificate : (verdict, string) result;
}

let convert_if_needed f =
  if Sat.Cnf.is_3sat f then (f, None)
  else
    let g, mapping = Sat.Three_sat.convert f in
    (g, Some mapping)

let finish ~original ~solved ~mapping report =
  let certificate =
    certify ~original ~solved ?proof:report.Hyqsat.Hybrid_solver.proof
      report.Hyqsat.Hybrid_solver.result
  in
  let model =
    match report.Hyqsat.Hybrid_solver.result with
    | Cdcl.Solver.Sat m ->
        Some
          (match mapping with
          | Some map -> Sat.Three_sat.project_model map m
          | None -> m)
    | _ -> None
  in
  { report; solved; mapping; model; certificate }

(* the certified answer in the shared Sat.Answer shape: a claim the checker
   rejected is withheld as Unknown Cert_failed; Sat carries the projected
   model so it speaks the original formula's variables *)
let answer t =
  match (t.certificate, t.report.Hyqsat.Hybrid_solver.result, t.model) with
  | Error _, _, _ -> Sat.Answer.Unknown Sat.Answer.Cert_failed
  | Ok _, Cdcl.Solver.Sat _, Some m -> Sat.Answer.Sat m
  | Ok _, r, _ -> r

let solve ?(config = Hyqsat.Hybrid_solver.default_config) ?max_iterations ?should_stop f =
  let solved, mapping = convert_if_needed f in
  let config =
    Hyqsat.Hybrid_solver.make_config ~base:config
      ~cdcl:(Cdcl.Config.with_proof_logging config.Hyqsat.Hybrid_solver.cdcl)
      ()
  in
  let report =
    Hyqsat.Solve.run ?max_iterations ?should_stop (Hyqsat.Solve.Hybrid config) solved
  in
  finish ~original:f ~solved ~mapping report

let solve_classic ?(config = Cdcl.Config.minisat_like) ?max_iterations ?should_stop f =
  let solved, mapping = convert_if_needed f in
  let config = Cdcl.Config.with_proof_logging config in
  let report =
    Hyqsat.Solve.run ?max_iterations ?should_stop (Hyqsat.Solve.Classic config) solved
  in
  finish ~original:f ~solved ~mapping report
