type config = {
  instances : int;
  min_vars : int;
  max_vars : int;
  mixed_k : bool;
  max_iterations : int;
  grid : int;
  seed : int;
}

let default_config =
  {
    instances = 200;
    min_vars = 4;
    max_vars = 10;
    mixed_k = true;
    max_iterations = 200_000;
    grid = 4;
    seed = 20230225;
  }

type failure = {
  instance_seed : int;
  instance : Sat.Cnf.t;
  shrunk : Sat.Cnf.t;
  reason : string;
}

type outcome = { ran : int; failures : failure list }

(* ------------------------------------------------------------------ *)
(* instance generation *)

let random_clause rng ~num_vars ~k =
  let k = min k num_vars in
  let vars = Stats.Rng.sample_without_replacement rng k num_vars in
  Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool rng)) vars)

let instance ~config ~seed =
  let rng = Stats.Rng.create ~seed in
  let n = config.min_vars + Stats.Rng.int rng (config.max_vars - config.min_vars + 1) in
  (* alternate the regime: low ratios are almost surely SAT, high ratios
     almost surely UNSAT — both answer paths get fuzzed *)
  let ratio = [| 3.0; 4.3; 6.0; 8.0 |].(Stats.Rng.int rng 4) in
  let m = max 1 (int_of_float (ceil (ratio *. float_of_int n))) in
  let base = Workload.Uniform.generate ~planted:false rng ~num_vars:n ~num_clauses:m in
  if not config.mixed_k then base
  else
    (* splice in a few longer clauses so the 3-SAT conversion path runs *)
    let extra = 1 + Stats.Rng.int rng (max 1 (m / 5)) in
    Sat.Cnf.append base
      (List.init extra (fun _ -> random_clause rng ~num_vars:n ~k:(4 + Stats.Rng.int rng 3)))

(* ------------------------------------------------------------------ *)
(* one differential round *)

let label = function
  | Cdcl.Solver.Sat _ -> "sat"
  | Cdcl.Solver.Unsat -> "unsat"
  | Cdcl.Solver.Unknown _ -> "unknown"

let hybrid_config config ~seed =
  Hyqsat.Hybrid_solver.make_config
    ~graph:(Chimera.Graph.create ~rows:config.grid ~cols:config.grid)
    ~seed ()

let check_instance ~config ~seed f =
  let reference = Sat.Brute.solve f in
  let expected = match reference with Some _ -> "sat" | None -> "unsat" in
  let examine name (c : Certify.t) =
    let answer = c.Certify.report.Hyqsat.Hybrid_solver.result in
    match (answer, c.Certify.certificate) with
    | Cdcl.Solver.Unknown _, _ ->
        (* budget exhaustion is not a soundness failure *)
        Ok ()
    | _, Error why ->
        Error (Printf.sprintf "%s answered %s but is uncertifiable (%s)" name (label answer) why)
    | _, Ok _ ->
        if label answer = expected then Ok ()
        else
          Error
            (Printf.sprintf "%s answered %s, brute force says %s" name (label answer) expected)
  in
  let hybrid =
    Certify.solve
      ~config:(hybrid_config config ~seed:(seed + 1))
      ~max_iterations:config.max_iterations f
  in
  let classic =
    Certify.solve_classic
      ~config:(Cdcl.Config.with_seed (seed + 2) Cdcl.Config.minisat_like)
      ~max_iterations:config.max_iterations f
  in
  match examine "hybrid" hybrid with
  | Error _ as e -> e
  | Ok () -> examine "minisat" classic

(* ------------------------------------------------------------------ *)
(* shrinking *)

let remove_clause f i =
  let clauses = List.filteri (fun j _ -> j <> i) (Sat.Cnf.clauses f) in
  Sat.Cnf.make ~num_vars:(Sat.Cnf.num_vars f) clauses

let compact_vars f =
  let used = Array.make (max 1 (Sat.Cnf.num_vars f)) false in
  List.iter
    (fun c -> List.iter (fun v -> used.(v) <- true) (Sat.Clause.vars c))
    (Sat.Cnf.clauses f);
  let index = Array.make (Array.length used) (-1) in
  let next = ref 0 in
  Array.iteri
    (fun v u ->
      if u then begin
        index.(v) <- !next;
        incr next
      end)
    used;
  let rename c =
    Sat.Clause.make
      (List.map
         (fun l -> Sat.Lit.make index.(Sat.Lit.var l) (Sat.Lit.is_pos l))
         (Sat.Clause.lits c))
  in
  Sat.Cnf.make ~num_vars:(max 1 !next) (List.map rename (Sat.Cnf.clauses f))

let shrink ~still_fails f =
  (* greedy clause-deletion to a fixpoint; each candidate is re-validated,
     so the result still reproduces the failure *)
  let rec pass f i =
    if i >= Sat.Cnf.num_clauses f then f
    else
      let candidate = remove_clause f i in
      if still_fails candidate then pass candidate i else pass f (i + 1)
  in
  let reduced = pass f 0 in
  let compacted = compact_vars reduced in
  if still_fails compacted then compacted else reduced

let reproducer failure =
  Sat.Dimacs.to_string
    ~comments:
      [
        "hyqsat fuzz reproducer";
        Printf.sprintf "seed %d" failure.instance_seed;
        failure.reason;
      ]
    failure.shrunk

(* ------------------------------------------------------------------ *)

let run ?(progress = fun _ -> ()) config =
  let failures = ref [] in
  for round = 0 to config.instances - 1 do
    let seed = config.seed + (7919 * round) in
    let f = instance ~config ~seed in
    (match check_instance ~config ~seed f with
    | Ok () -> ()
    | Error reason ->
        let still_fails g =
          Sat.Cnf.num_clauses g > 0
          && match check_instance ~config ~seed g with Ok () -> false | Error _ -> true
        in
        let shrunk = shrink ~still_fails f in
        failures := { instance_seed = seed; instance = f; shrunk; reason } :: !failures);
    progress round
  done;
  { ran = config.instances; failures = List.rev !failures }
