let incr ctx ?(by = 1.0) name = Ctx.counter_add ctx name by
let count ctx name n = Ctx.counter_add ctx name (float_of_int n)
let gauge ctx name v = Ctx.gauge_set ctx name v
let observe ctx ?bounds name v = Ctx.histogram_observe ctx ?bounds name v

let labelled name labels =
  match labels with
  | [] -> name
  | _ ->
      let pairs =
        List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels
      in
      name ^ "{" ^ String.concat "," pairs ^ "}"
