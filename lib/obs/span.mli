(** Spans: named, nested, timed regions of the pipeline.

    A span started on {!Ctx.null} is the constant {!none} — starting and
    stopping it allocates nothing, so instrumented code needs no
    [if enabled] branches of its own. *)

type t

val none : t
(** The disabled span.  [start Ctx.null _ == none], and [none] is the
    default parent everywhere (meaning "root"). *)

val is_none : t -> bool

val start :
  Ctx.t -> ?parent:t -> ?attrs:(string * string) list -> string -> t
(** Open a span now.  It is delivered to sinks only when stopped. *)

val stop : ?dur_s:float -> t -> unit
(** Close the span and emit its record.  [dur_s] overrides the measured
    wall-clock duration — used for stages whose reported cost is modelled
    (annealer device time) or pre-measured by the caller.  Idempotent. *)

val add_attr : t -> string -> string -> unit
(** Attach a key/value to a live span (no-op after [stop]). *)

val record :
  Ctx.t ->
  ?parent:t ->
  ?attrs:(string * string) list ->
  dur_s:float ->
  string ->
  unit
(** Emit a completed span in one shot, ending now and lasting [dur_s].
    For stages that already measured themselves. *)

val with_ :
  Ctx.t -> ?parent:t -> ?attrs:(string * string) list -> string ->
  (t -> 'a) -> 'a
(** [with_ ctx name f] runs [f span] and stops the span on the way out,
    including on exceptions. *)

(**/**)

val id : t -> int
(** Span id for parent linking (0 for {!none}). *)
