(** Observability context: the single handle the whole pipeline threads.

    A context owns a monotonic clock, a span-id generator, a metrics
    registry and a list of {!sink}s.  Every instrumentation point in the
    code base takes a context and does {e nothing} when handed {!null} —
    the guard is one physical-equality check, so disabled observability
    costs neither time nor allocation on hot paths.

    Contexts are domain-safe: span emission and metric updates are
    serialised on an internal mutex (instrumented code runs in pool
    workers and portfolio racer domains). *)

(** A completed span, as delivered to sinks. *)
type span_record = {
  id : int;  (** unique per context, starting at 1 *)
  parent : int;  (** id of the enclosing span; 0 = root *)
  name : string;
  start_s : float;  (** seconds since the context epoch *)
  dur_s : float;
      (** usually measured wall-clock; stages whose cost is {e modelled}
          (the annealer) report the modelled duration instead *)
  attrs : (string * string) list;
}

type histogram = {
  bounds : float array;  (** inclusive upper bounds, ascending *)
  counts : int array;  (** length [Array.length bounds + 1]; last = overflow *)
  mutable sum : float;
  mutable observations : int;
}

type metric =
  | Counter of { mutable count : float }
  | Gauge of { mutable value : float }
  | Histogram of histogram

(** Pluggable exporter.  [on_span] is called as each span stops (under the
    context mutex — keep it cheap and never raise); [on_metrics] receives
    the final name-sorted registry snapshot exactly once, from {!close},
    followed by [on_close]. *)
type sink = {
  on_span : span_record -> unit;
  on_metrics : (string * metric) list -> unit;
  on_close : unit -> unit;
}

type t

val null : t
(** The disabled context: every operation on it is a no-op.  This is the
    default everywhere, so un-instrumented callers pay only a physical
    equality test. *)

val is_null : t -> bool
(** [t == null]. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live context.  [clock] (default [Unix.gettimeofday]) is read through
    a monotonic clamp — reported times never go backwards even if the wall
    clock does; tests inject a fake clock for deterministic traces. *)

val attach : t -> sink -> unit
(** Add an exporter.  No-op on {!null}. *)

val subscribe : t -> (span_record -> unit) -> int
(** Register a live span listener and return its token.  Unlike a
    {!sink}, a listener can be removed again ({!unsubscribe}) — the
    server uses one per event-streaming client.  Listeners run under the
    context mutex as each span stops (keep them cheap: push to a queue,
    don't do I/O); exceptions they raise are swallowed.  On {!null} this
    is a no-op returning [0]. *)

val unsubscribe : t -> int -> unit
(** Remove a listener by token.  Unknown tokens are ignored. *)

val close : t -> unit
(** Snapshot the metrics, deliver them to every sink, then run the sinks'
    [on_close].  Idempotent; spans stopped after [close] are dropped. *)

val now : t -> float
(** Monotonic seconds since the context epoch (0.0 on {!null}). *)

val snapshot : t -> (string * metric) list
(** Copy of the registry, sorted by name ([[]] on {!null}). *)

val default_buckets : float array
(** The fixed log-scale histogram bounds: a 1–2–5 decade series from 1e-6
    to 1e8 (45 bounds), suitable for both durations in seconds and
    integer sizes. *)

(**/**)

(* internal plumbing for Span and Metrics — not for direct use *)

val next_span_id : t -> int
val emit_span : t -> span_record -> unit
val counter_add : t -> string -> float -> unit
val gauge_set : t -> string -> float -> unit
val histogram_observe : t -> ?bounds:float array -> string -> float -> unit
