(** Name-based convenience wrappers over the {!Ctx} metrics registry.

    Metrics are created lazily on first use; using one name with two
    different kinds raises [Invalid_argument].  All operations are no-ops
    on {!Ctx.null}. *)

val incr : Ctx.t -> ?by:float -> string -> unit
(** Bump a counter (default [by = 1.0]). *)

val count : Ctx.t -> string -> int -> unit
(** Bump a counter by an integer amount. *)

val gauge : Ctx.t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : Ctx.t -> ?bounds:float array -> string -> float -> unit
(** Record one observation into a histogram.  [bounds] (inclusive upper
    edges, ascending; default {!Ctx.default_buckets}) is fixed at the
    histogram's first observation. *)

val labelled : string -> (string * string) list -> string
(** [labelled "strategy_uses_total" ["strategy", "s1"]] is
    ["strategy_uses_total{strategy=\"s1\"}"] — Prometheus-style labels
    encoded into the metric name, understood by the exporters. *)
