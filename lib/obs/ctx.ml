type span_record = {
  id : int;
  parent : int;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type histogram = {
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable observations : int;
}

type metric =
  | Counter of { mutable count : float }
  | Gauge of { mutable value : float }
  | Histogram of histogram

type sink = {
  on_span : span_record -> unit;
  on_metrics : (string * metric) list -> unit;
  on_close : unit -> unit;
}

type t = {
  disabled : bool;
  clock : unit -> float;
  mutex : Mutex.t;
  epoch : float;
  mutable last : float; (* monotonic clamp; protected by [mutex] *)
  next_span : int Atomic.t;
  metrics : (string, metric) Hashtbl.t;
  mutable sinks : sink list;
  mutable listeners : (int * (span_record -> unit)) list;
  next_listener : int Atomic.t;
  mutable closed : bool;
}

let null =
  {
    disabled = true;
    clock = (fun () -> 0.0);
    mutex = Mutex.create ();
    epoch = 0.0;
    last = 0.0;
    next_span = Atomic.make 1;
    metrics = Hashtbl.create 1;
    sinks = [];
    listeners = [];
    next_listener = Atomic.make 1;
    closed = true;
  }

let is_null t = t == null

let create ?(clock = Unix.gettimeofday) () =
  let epoch = clock () in
  {
    disabled = false;
    clock;
    mutex = Mutex.create ();
    epoch;
    last = epoch;
    next_span = Atomic.make 1;
    metrics = Hashtbl.create 64;
    sinks = [];
    listeners = [];
    next_listener = Atomic.make 1;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let now t =
  if is_null t then 0.0
  else
    with_lock t (fun () ->
        let raw = t.clock () in
        if raw > t.last then t.last <- raw;
        t.last -. t.epoch)

let attach t sink =
  if not (is_null t) then with_lock t (fun () -> t.sinks <- t.sinks @ [ sink ])

let next_span_id t = Atomic.fetch_and_add t.next_span 1

let emit_span t r =
  if not (is_null t) then
    with_lock t (fun () ->
        if not t.closed then begin
          List.iter (fun s -> s.on_span r) t.sinks;
          (* live listeners may come and go (server clients subscribe per
             connection) and must never poison instrumented code *)
          List.iter (fun (_, f) -> try f r with _ -> ()) t.listeners
        end)

let subscribe t f =
  if is_null t then 0
  else
    with_lock t (fun () ->
        let token = Atomic.fetch_and_add t.next_listener 1 in
        t.listeners <- t.listeners @ [ (token, f) ];
        token)

let unsubscribe t token =
  if not (is_null t) then
    with_lock t (fun () ->
        t.listeners <- List.filter (fun (id, _) -> id <> token) t.listeners)

(* 1-2-5 series across decades 1e-6 .. 1e8: covers sub-microsecond
   durations up to hours, and small-integer sizes up to 1e8. *)
let default_buckets =
  Array.concat
    (List.map
       (fun e ->
         let d = 10.0 ** float_of_int e in
         [| 1.0 *. d; 2.0 *. d; 5.0 *. d |])
       (List.init 15 (fun i -> i - 6)))

let counter_add t name by =
  if not (is_null t) then
    with_lock t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (Counter c) -> c.count <- c.count +. by
        | Some _ -> invalid_arg ("Obs: metric is not a counter: " ^ name)
        | None -> Hashtbl.replace t.metrics name (Counter { count = by }))

let gauge_set t name v =
  if not (is_null t) then
    with_lock t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (Gauge g) -> g.value <- v
        | Some _ -> invalid_arg ("Obs: metric is not a gauge: " ^ name)
        | None -> Hashtbl.replace t.metrics name (Gauge { value = v }))

let bucket_index bounds v =
  (* first bound >= v (bounds are inclusive upper edges); overflow past the
     end *)
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    incr i
  done;
  !i

let histogram_observe t ?(bounds = default_buckets) name v =
  if not (is_null t) then
    with_lock t (fun () ->
        let h =
          match Hashtbl.find_opt t.metrics name with
          | Some (Histogram h) -> h
          | Some _ -> invalid_arg ("Obs: metric is not a histogram: " ^ name)
          | None ->
              let h =
                {
                  bounds;
                  counts = Array.make (Array.length bounds + 1) 0;
                  sum = 0.0;
                  observations = 0;
                }
              in
              Hashtbl.replace t.metrics name (Histogram h);
              h
        in
        let i = bucket_index h.bounds v in
        h.counts.(i) <- h.counts.(i) + 1;
        h.sum <- h.sum +. v;
        h.observations <- h.observations + 1)

let snapshot t =
  if is_null t then []
  else
    let xs =
      with_lock t (fun () ->
          Hashtbl.fold
            (fun name m acc ->
              let copy =
                match m with
                | Counter c -> Counter { count = c.count }
                | Gauge g -> Gauge { value = g.value }
                | Histogram h -> Histogram { h with counts = Array.copy h.counts }
              in
              (name, copy) :: acc)
            t.metrics [])
    in
    List.sort (fun (a, _) (b, _) -> compare a b) xs

let close t =
  if not (is_null t) then begin
    let sinks =
      with_lock t (fun () ->
          if t.closed then []
          else begin
            t.closed <- true;
            t.sinks
          end)
    in
    if sinks <> [] then begin
      let ms = snapshot t in
      List.iter (fun s -> s.on_metrics ms) sinks;
      List.iter (fun s -> s.on_close ()) sinks
    end
  end
