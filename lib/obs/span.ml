type t =
  | Disabled
  | Span of {
      ctx : Ctx.t;
      id : int;
      parent : int;
      name : string;
      start_s : float;
      mutable attrs : (string * string) list;
      mutable live : bool;
    }

let none = Disabled
let is_none t = t == none
let id = function Disabled -> 0 | Span s -> s.id

let start ctx ?(parent = none) ?(attrs = []) name =
  if Ctx.is_null ctx then none
  else
    Span
      {
        ctx;
        id = Ctx.next_span_id ctx;
        parent = id parent;
        name;
        start_s = Ctx.now ctx;
        (* stored newest-first (add_attr conses); un-reversed at emit *)
        attrs = List.rev attrs;
        live = true;
      }

let stop ?dur_s t =
  match t with
  | Disabled -> ()
  | Span s ->
      if s.live then begin
        s.live <- false;
        let dur_s =
          match dur_s with
          | Some d -> Float.max 0.0 d
          | None -> Float.max 0.0 (Ctx.now s.ctx -. s.start_s)
        in
        Ctx.emit_span s.ctx
          {
            Ctx.id = s.id;
            parent = s.parent;
            name = s.name;
            start_s = s.start_s;
            dur_s;
            attrs = List.rev s.attrs;
          }
      end

let add_attr t k v =
  match t with
  | Disabled -> ()
  | Span s -> if s.live then s.attrs <- (k, v) :: s.attrs

let record ctx ?(parent = none) ?(attrs = []) ~dur_s name =
  if not (Ctx.is_null ctx) then begin
    let dur_s = Float.max 0.0 dur_s in
    let stop_s = Ctx.now ctx in
    Ctx.emit_span ctx
      {
        Ctx.id = Ctx.next_span_id ctx;
        parent = id parent;
        name;
        start_s = Float.max 0.0 (stop_s -. dur_s);
        dur_s;
        attrs;
      }
  end

let with_ ctx ?parent ?attrs name f =
  let s = start ctx ?parent ?attrs name in
  Fun.protect ~finally:(fun () -> stop s) (fun () -> f s)
