(** Exporters: ready-made {!Ctx.sink}s.

    Each constructor takes output primitives rather than file paths so
    tests can capture into buffers; [file_jsonl] is the convenience
    wrapper the CLI uses. *)

val jsonl : write:(string -> unit) -> ?on_close:(unit -> unit) -> unit -> Ctx.sink
(** JSON-lines trace: one [{"type":"span",...}] object per stopped span,
    then one [{"type":"counter"|"gauge"|"histogram",...}] object per
    metric at close.  Every line ends with ['\n']. *)

val file_jsonl : string -> Ctx.sink
(** [jsonl] writing to a fresh file at the given path; the file is closed
    by the sink's [on_close]. *)

val console_tree : Format.formatter -> Ctx.sink
(** Human-readable summary at close: spans aggregated by name path into a
    box-drawing tree (call count and total duration per node), followed by
    the metrics. *)

val prometheus : out_channel -> Ctx.sink
(** Prometheus text exposition format, written once at close. *)

val prometheus_string : (string * Ctx.metric) list -> string
(** The text-format rendering of a metrics snapshot (used by
    [prometheus] and by golden tests). *)
