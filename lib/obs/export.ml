(* JSON string escaping, sufficient for metric/span names and attrs. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Counters are conceptually integers most of the time; print them without
   a fractional part when exact, otherwise with enough digits to
   round-trip. *)
let num x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let span_line (r : Ctx.span_record) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.6f"
       r.id r.parent (escape r.name) r.start_s r.dur_s);
  if r.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      r.attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let metric_line (name, m) =
  match (m : Ctx.metric) with
  | Ctx.Counter c ->
      Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%s}\n"
        (escape name) (num c.count)
  | Ctx.Gauge g ->
      Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n"
        (escape name) (num g.value)
  | Ctx.Histogram h ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"buckets\":["
           (escape name) h.observations (num h.sum));
      let first = ref true in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            let le =
              if i < Array.length h.bounds then num h.bounds.(i) else "\"+Inf\""
            in
            Buffer.add_string buf (Printf.sprintf "{\"le\":%s,\"n\":%d}" le n)
          end)
        h.counts;
      Buffer.add_string buf "]}\n";
      Buffer.contents buf

let jsonl ~write ?(on_close = fun () -> ()) () =
  {
    Ctx.on_span = (fun r -> write (span_line r));
    on_metrics = (fun ms -> List.iter (fun m -> write (metric_line m)) ms);
    on_close;
  }

let file_jsonl path =
  let oc = open_out path in
  jsonl ~write:(output_string oc) ~on_close:(fun () -> close_out oc) ()

(* -- console tree ------------------------------------------------------ *)

type node = {
  mutable n_count : int;
  mutable n_total : float;
  children : (string, node) Hashtbl.t;
}

let fresh_node () = { n_count = 0; n_total = 0.0; children = Hashtbl.create 4 }

let console_tree ppf =
  let spans : Ctx.span_record list ref = ref [] in
  let render ms =
    let records = List.rev !spans in
    let byid = Hashtbl.create 64 in
    List.iter (fun (r : Ctx.span_record) -> Hashtbl.replace byid r.id r) records;
    let root = fresh_node () in
    let memo : (int, node) Hashtbl.t = Hashtbl.create 64 in
    (* map a span id to its aggregation node, following the parent chain;
       a parent that never stopped aggregates its children at the root *)
    let rec node_of id =
      if id = 0 then root
      else
        match Hashtbl.find_opt memo id with
        | Some n -> n
        | None ->
            let n =
              match Hashtbl.find_opt byid id with
              | None -> root
              | Some r ->
                  let parent = node_of r.parent in
                  (match Hashtbl.find_opt parent.children r.name with
                  | Some n -> n
                  | None ->
                      let n = fresh_node () in
                      Hashtbl.replace parent.children r.name n;
                      n)
            in
            Hashtbl.replace memo id n;
            n
    in
    List.iter
      (fun (r : Ctx.span_record) ->
        let n = node_of r.id in
        n.n_count <- n.n_count + 1;
        n.n_total <- n.n_total +. r.dur_s)
      records;
    let sorted_children node =
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) node.children []
      |> List.sort (fun (na, a) (nb, b) ->
             match compare b.n_total a.n_total with
             | 0 -> compare na nb
             | c -> c)
    in
    Format.fprintf ppf "trace summary@.";
    let rec print prefix node =
      let kids = sorted_children node in
      let last = List.length kids - 1 in
      List.iteri
        (fun i (name, n) ->
          let branch, cont = if i = last then ("└─ ", "   ") else ("├─ ", "│  ") in
          Format.fprintf ppf "%s%s%s ×%d — %.3f s@." prefix branch name
            n.n_count n.n_total;
          print (prefix ^ cont) n)
        kids
    in
    print "" root;
    if ms <> [] then begin
      Format.fprintf ppf "metrics@.";
      List.iter
        (fun (name, m) ->
          match (m : Ctx.metric) with
          | Ctx.Counter c -> Format.fprintf ppf "  %s = %s@." name (num c.count)
          | Ctx.Gauge g -> Format.fprintf ppf "  %s = %s@." name (num g.value)
          | Ctx.Histogram h ->
              let mean =
                if h.observations = 0 then 0.0
                else h.sum /. float_of_int h.observations
              in
              Format.fprintf ppf "  %s: n=%d sum=%s mean=%.6g@." name
                h.observations (num h.sum) mean)
        ms
    end
  in
  {
    Ctx.on_span = (fun r -> spans := r :: !spans);
    on_metrics = render;
    on_close = (fun () -> Format.pp_print_flush ppf ());
  }

(* -- prometheus text format -------------------------------------------- *)

(* Metric names may carry labels inline ("name{k=\"v\"}"); split them so
   the TYPE line uses the base name and histogram buckets can merge an
   [le] label in. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i ->
      let base = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      let labels =
        if String.length rest > 0 && rest.[String.length rest - 1] = '}' then
          String.sub rest 0 (String.length rest - 1)
        else rest
      in
      (base, labels)

let prometheus_string ms =
  let buf = Buffer.create 1024 in
  (* Group samples into metric families (base name before any inline
     labels), then sort families by name and label sets within each
     family.  The rendering is byte-stable whatever order the snapshot
     arrives in, and a family's samples are never interleaved with
     another's — raw name sorting would put "foo_bar" between "foo" and
     "foo{...}" ('_' < '{'), splitting the foo family around it. *)
  let families : (string, (string * Ctx.metric) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (name, m) ->
      let base, labels = split_labels name in
      match Hashtbl.find_opt families base with
      | Some l -> l := (labels, m) :: !l
      | None -> Hashtbl.replace families base (ref [ (labels, m) ]))
    ms;
  let sorted =
    Hashtbl.fold
      (fun base l acc ->
        (base, List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !l)) :: acc)
      families []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.replace typed base kind;
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  let with_labels base labels extra =
    let all = List.filter (fun s -> s <> "") [ labels; extra ] in
    match all with
    | [] -> base
    | _ -> base ^ "{" ^ String.concat "," all ^ "}"
  in
  let render base (labels, m) =
    match (m : Ctx.metric) with
      | Ctx.Counter c ->
          type_line base "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_labels base labels "") (num c.count))
      | Ctx.Gauge g ->
          type_line base "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_labels base labels "") (num g.value))
      | Ctx.Histogram h ->
          type_line base "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              let le =
                if i < Array.length h.bounds then
                  Printf.sprintf "%g" h.bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s %d\n"
                   (with_labels (base ^ "_bucket") labels
                      (Printf.sprintf "le=\"%s\"" le))
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n"
               (with_labels (base ^ "_sum") labels "")
               (num h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n"
               (with_labels (base ^ "_count") labels "")
               h.observations)
  in
  List.iter (fun (base, samples) -> List.iter (render base) samples) sorted;
  Buffer.contents buf

let prometheus oc =
  {
    Ctx.on_span = ignore;
    on_metrics = (fun ms -> output_string oc (prometheus_string ms));
    on_close = (fun () -> flush oc);
  }
