(** Deterministic random number generation.

    A thin wrapper around [Random.State] giving every component of the
    reproduction an explicit, splittable seed so each experiment is exactly
    reproducible from the command line. *)

type t

val create : seed:int -> t
(** Fresh generator from an integer seed. *)

val split : t -> t
(** Child generator; advancing the child does not affect the parent. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent child generators, derived from [t]
    with a sequential draw of seed material plus a per-index salt.  The
    children depend only on [t]'s state and [n]-independent draw order, so
    fanning work over them gives results that do not depend on how many
    domains execute the fan-out (the annealer's best-of-k reads). *)

val int : t -> int -> int
(** [int t bound] is uniform over [0 .. bound-1].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform over [0, bound). *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate by the Box–Muller transform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is [k] distinct indices from
    [0 .. n-1], in random order.  Requires [k <= n]. *)
