type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n";
  Array.init n (fun i ->
      Random.State.make
        [|
          Random.State.bits t;
          Random.State.bits t;
          Random.State.bits t;
          0x9e3779b9 * (i + 1);
        |])
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = Random.State.float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let arr = Array.init n Fun.id in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
