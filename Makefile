# Convenience entry points; `make verify` is the tier-1 gate.

.PHONY: all build test verify bench clean

all: build

build:
	dune build

test:
	dune runtest

# one-command tier-1 verification (same as `dune build @verify`)
verify:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
