(* Integer factorisation as SAT (the paper's IF benchmark family): encode an
   array multiplier, force its output to a semiprime, and read the factors
   off the satisfying assignment.

   Run with: dune exec examples/factoring_demo.exe *)

let () =
  let target = 143 in
  let bits = 4 in
  let f = Workload.Factoring.of_target ~target ~bits in
  Format.printf "factoring %d with two %d-bit operands: CNF with %d vars, %d clauses@." target
    bits (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f);

  let report = Hyqsat.Solve.run (Hyqsat.Solve.hybrid ()) f in
  (match report.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat model ->
      (* the multiplier's inputs are the first 2·bits wires: xs then ys *)
      let operand off =
        let v = ref 0 in
        for i = 0 to bits - 1 do
          if model.(off + i) then v := !v + (1 lsl i)
        done;
        !v
      in
      let x = operand 0 and y = operand bits in
      Format.printf "%d = %d x %d@." target x y;
      assert (x * y = target)
  | Cdcl.Solver.Unsat -> Format.printf "%d is prime (within %d-bit operands)@." target bits
  | Cdcl.Solver.Unknown _ -> Format.printf "unknown@.");
  Format.printf "solved in %d CDCL iterations with %d QA calls@."
    report.Hyqsat.Hybrid_solver.iterations report.Hyqsat.Hybrid_solver.qa_calls;

  (* a prime target is UNSAT: no non-trivial factorisation exists *)
  let prime = Workload.Factoring.of_target ~target:127 ~bits:4 in
  match (Hyqsat.Solve.run (Hyqsat.Solve.hybrid ()) prime).Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Unsat -> Format.printf "and 127 is confirmed prime@."
  | _ -> Format.printf "unexpected result for 127@."
