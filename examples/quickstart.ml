(* Quickstart: build a 3-SAT formula, solve it with the hybrid QA+CDCL
   solver, and inspect how the quantum annealer guided the search.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* the paper's running example (Fig. 2):
     C = (x1 ∨ x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) *)
  let f =
    Sat.Cnf.make ~num_vars:4
      [ Sat.Clause.of_dimacs [ 1; 2; 3 ]; Sat.Clause.of_dimacs [ 2; -3; 4 ] ]
  in
  Format.printf "Problem:@.%a@." Sat.Cnf.pp f;

  (* solve with the hybrid solver (noise-free annealer, 16×16 Chimera) *)
  let report = Hyqsat.Solve.run (Hyqsat.Solve.hybrid ()) f in
  (match report.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat model ->
      Format.printf "SATISFIABLE:";
      Array.iteri (fun v b -> Format.printf " x%d=%d" (v + 1) (if b then 1 else 0)) model;
      Format.printf "@."
  | Cdcl.Solver.Unsat -> Format.printf "UNSATISFIABLE@."
  | Cdcl.Solver.Unknown _ -> Format.printf "UNKNOWN@.");

  Format.printf "CDCL iterations: %d   QA calls: %d   modelled QA time: %.0f us@."
    report.Hyqsat.Hybrid_solver.iterations report.Hyqsat.Hybrid_solver.qa_calls
    report.Hyqsat.Hybrid_solver.qa_time_us;
  Format.printf "feedback strategies used: s1=%d s2=%d s3=%d s4=%d@."
    report.Hyqsat.Hybrid_solver.strategy_uses.(0)
    report.Hyqsat.Hybrid_solver.strategy_uses.(1)
    report.Hyqsat.Hybrid_solver.strategy_uses.(2)
    report.Hyqsat.Hybrid_solver.strategy_uses.(3);

  (* the lower-level pieces are also directly accessible: encode the formula
     as a QUBO objective (paper Eq. 3-5) ... *)
  let enc = Qubo.Encode.encode ~num_vars:4 (Sat.Cnf.clauses f) in
  Format.printf "QUBO objective: %a@." Qubo.Pbq.pp (Qubo.Encode.objective enc);

  (* ... embed it on the Chimera hardware graph (paper §IV-B) ... *)
  let graph = Chimera.Graph.standard_2000q () in
  let embedded = Embed.Hyqsat_scheme.embed graph enc in
  Format.printf "embedded %d/2 clauses using %d physical qubits@."
    embedded.Embed.Hyqsat_scheme.embedded_clauses
    (Embed.Embedding.qubits_used embedded.Embed.Hyqsat_scheme.embedding);

  (* ... and run one annealing cycle on the simulated hardware *)
  let rng = Stats.Rng.create ~seed:7 in
  let outcome =
    Anneal.Machine.run rng
      {
        Anneal.Machine.embedding = embedded.Embed.Hyqsat_scheme.embedding;
        objective = Qubo.Encode.objective enc;
        edges = embedded.Embed.Hyqsat_scheme.edges;
      }
  in
  Format.printf "one annealing cycle: energy %.1f in %.0f us@." outcome.Anneal.Machine.energy
    outcome.Anneal.Machine.time_us
