(* MaxSAT through the unified optimisation surface: compare the annealer's
   incumbent and classical local search against the exact core-guided /
   linear-search solver on an over-constrained formula.

   Run with: dune exec examples/maxsat_demo.exe *)

let () =
  let rng = Stats.Rng.create ~seed:7 in
  (* ratio ~8 random 3-SAT: far past the phase transition, so a few clauses
     must stay violated *)
  let f = Workload.Uniform.generate ~planted:false rng ~num_vars:14 ~num_clauses:110 in
  let w = Sat.Wcnf.of_cnf f in
  Format.printf "over-constrained 3-SAT: %d vars, %d clauses (ratio %.1f)@."
    (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f) (Sat.Cnf.clause_to_var_ratio f);

  let graph = Chimera.Graph.standard_2000q () in
  let r = Hyqsat.Optimize.solve ~rng ~graph w in
  (match r.Hyqsat.Optimize.status with
  | Hyqsat.Optimize.Optimal ->
      Format.printf "exact optimum:        %d violated clauses (proven, %d CDCL calls)@."
        r.Hyqsat.Optimize.best_cost r.Hyqsat.Optimize.cdcl_calls
  | _ ->
      Format.printf "exact solver stopped: cost %d, lower bound %d@."
        r.Hyqsat.Optimize.best_cost r.Hyqsat.Optimize.lower_bound);

  (match Hyqsat.Optimize.anneal_incumbent ~samples:10 rng graph w with
  | Some (cost, _) ->
      Format.printf "quantum annealer:     %d violated (best of 10 cycles, ~%.1f ms of QA time)@."
        cost
        (10. *. Anneal.Timing.single_sample_us Anneal.Timing.d_wave_2000q /. 1000.)
  | None -> Format.printf "annealer: nothing embedded@.");

  let ls_cost, _ = Hyqsat.Optimize.incumbent rng w in
  Format.printf "classical local search: %d violated@." ls_cost;

  (* the same surface handles weighted instances: make ten clauses precious *)
  let weighted =
    Sat.Wcnf.make ~num_vars:(Sat.Cnf.num_vars f) ~hard:[]
      ~soft:(List.mapi (fun i c -> ((if i < 10 then 5 else 1), c)) (Sat.Cnf.clauses f))
  in
  let rw = Hyqsat.Optimize.solve ~rng weighted in
  Format.printf "weighted (10 clauses at weight 5): cost %d, lower bound %d (%s)@."
    rw.Hyqsat.Optimize.best_cost rw.Hyqsat.Optimize.lower_bound
    (match rw.Hyqsat.Optimize.algorithm_used with
    | Hyqsat.Optimize.Core_guided -> "core-guided"
    | _ -> "linear")
