(* Certified answers end to end: a k-SAT instance is 3-SAT-converted, solved
   by the hybrid pipeline with DRAT logging, and the answer is checked — the
   model against the ORIGINAL formula, the proof by reverse unit propagation.
   Finishes with a mini differential-fuzzing campaign.

   Run with: dune exec examples/certified_demo.exe *)

let describe (c : Check.Certify.t) =
  (match c.Check.Certify.mapping with
  | Some m ->
      Format.printf "converted: +%d auxiliary chain variables@." m.Sat.Three_sat.aux_vars
  | None -> Format.printf "already 3-SAT, no conversion@.");
  (match c.Check.Certify.report.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat _ -> Format.printf "answer: SATISFIABLE@."
  | Cdcl.Solver.Unsat -> Format.printf "answer: UNSATISFIABLE@."
  | Cdcl.Solver.Unknown _ -> Format.printf "answer: UNKNOWN@.");
  match c.Check.Certify.certificate with
  | Ok Check.Certify.Model_verified ->
      Format.printf "certified: model satisfies the original formula@."
  | Ok (Check.Certify.Proof_verified steps) ->
      Format.printf "certified: %d-step DRAT proof passes the RUP checker@." steps
  | Ok Check.Certify.Nothing_to_certify -> Format.printf "nothing to certify@."
  | Error why -> Format.printf "CERTIFICATION FAILED: %s@." why

let () =
  (* a 5-SAT pigeon-ish instance: SAT, exercises the conversion path *)
  let sat_doc = "p cnf 5 3\n1 2 3 4 5 0\n-1 -2 -3 -4 0\n-5 1 0\n" in
  Format.printf "--- certified hybrid solve (k-SAT, satisfiable)@.";
  describe (Check.Certify.solve (Sat.Dimacs.parse_string sat_doc));

  (* all sign combinations over 4 variables: UNSAT, also k-SAT *)
  let clauses =
    List.init 16 (fun bits ->
        String.concat " "
          (List.init 4 (fun v ->
               string_of_int (if bits land (1 lsl v) = 0 then v + 1 else -(v + 1)))
          @ [ "0" ]))
  in
  let unsat_doc = "p cnf 4 16\n" ^ String.concat "\n" clauses ^ "\n" in
  Format.printf "@.--- certified hybrid solve (k-SAT, unsatisfiable)@.";
  describe (Check.Certify.solve (Sat.Dimacs.parse_string unsat_doc));

  Format.printf "@.--- differential fuzzing (hybrid vs minisat vs brute force)@.";
  let config = { Check.Fuzz.default_config with Check.Fuzz.instances = 25 } in
  let outcome = Check.Fuzz.run config in
  Format.printf "ran %d random instances, %d disagreements@." outcome.Check.Fuzz.ran
    (List.length outcome.Check.Fuzz.failures);
  List.iter
    (fun f -> Format.printf "@.%s@." (Check.Fuzz.reproducer f))
    outcome.Check.Fuzz.failures
