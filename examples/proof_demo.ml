(* UNSAT answers you can check: solve a circuit-fault miter with DRAT proof
   logging and verify the proof independently of the solver.

   Run with: dune exec examples/proof_demo.exe *)

let () =
  let rng = Stats.Rng.create ~seed:21 in
  let f = Workload.Circuit_fault.generate rng ~inputs:7 ~gates:32 in
  Format.printf "circuit-fault miter: %d vars, %d clauses@." (Sat.Cnf.num_vars f)
    (Sat.Cnf.num_clauses f);

  let config = Cdcl.Config.with_proof_logging Cdcl.Config.minisat_like in
  let solver = Cdcl.Solver.create ~config f in
  (match Cdcl.Solver.solve solver with
  | Cdcl.Solver.Unsat -> Format.printf "solver answer: UNSATISFIABLE@."
  | Cdcl.Solver.Sat _ -> Format.printf "solver answer: SATISFIABLE (fault testable)@."
  | Cdcl.Solver.Unknown _ -> Format.printf "unknown@.");

  match Cdcl.Solver.proof solver with
  | None -> Format.printf "(no proof logged)@."
  | Some proof ->
      let adds =
        List.length (List.filter (function Sat.Drat.Add _ -> true | _ -> false) proof)
      in
      let dels = List.length proof - adds in
      Format.printf "DRAT proof: %d clause additions, %d deletions@." adds dels;
      (match Cdcl.Solver.solve solver with
      | Cdcl.Solver.Unsat -> (
          match Sat.Drat.check f proof with
          | Ok () -> Format.printf "proof checks: every step is RUP, empty clause derived@."
          | Error e -> Format.printf "PROOF REJECTED: %s@." e)
      | _ -> (
          match Sat.Drat.check_steps f proof with
          | Ok () -> Format.printf "derivation steps check (SAT run, no empty clause needed)@."
          | Error e -> Format.printf "DERIVATION REJECTED: %s@." e));
      (* the textual format round-trips, e.g. for external drat-trim *)
      let text = Sat.Drat.to_string proof in
      Format.printf "textual proof is %d bytes; parses back: %b@." (String.length text)
        (Sat.Drat.parse_string text = proof)
