(* Graph colouring with HyQSAT: generate a 3-colourable "flat" graph (the
   paper's GC benchmark family), solve the colouring CNF with the hybrid
   solver, and decode the colours back.

   Run with: dune exec examples/graph_coloring_demo.exe *)

let () =
  let rng = Stats.Rng.create ~seed:2023 in
  let nodes = 30 and edges = 72 in
  let f = Workload.Graph_coloring.generate rng ~nodes ~edges in
  Format.printf "3-colouring a flat graph: %d nodes, %d edges -> CNF with %d vars, %d clauses@."
    nodes edges (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f);

  let classic = Hyqsat.Solve.run (Hyqsat.Solve.classic ()) f in
  let hybrid = Hyqsat.Solve.run (Hyqsat.Solve.hybrid ()) f in
  Format.printf "classic CDCL: %d iterations;  HyQSAT: %d iterations (%d QA calls)@."
    classic.Hyqsat.Hybrid_solver.iterations hybrid.Hyqsat.Hybrid_solver.iterations
    hybrid.Hyqsat.Hybrid_solver.qa_calls;

  match hybrid.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat model ->
      (* variable 3·node + colour is true iff the node has that colour *)
      let colour node =
        let rec find c = if c = 3 then '?' else if model.((node * 3) + c) then "RGB".[c] else find (c + 1) in
        find 0
      in
      Format.printf "colouring:";
      for node = 0 to nodes - 1 do
        Format.printf " %d:%c" node (colour node)
      done;
      Format.printf "@.";
      (* sanity: decode is a proper colouring because the CNF was satisfied *)
      Format.printf "model checks out: %b@."
        (Sat.Assignment.satisfies (Sat.Assignment.of_bools model) f)
  | Cdcl.Solver.Unsat -> Format.printf "unexpected UNSAT (flat graphs are 3-colourable)@."
  | Cdcl.Solver.Unknown _ -> Format.printf "unknown@."
