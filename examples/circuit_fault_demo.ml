(* Circuit fault analysis with HyQSAT: prove a stuck-at fault untestable
   (UNSAT) — the workload where the paper's feedback strategy 4 shines,
   steering CDCL straight into the conflicting core.

   Run with: dune exec examples/circuit_fault_demo.exe *)

let () =
  let rng = Stats.Rng.create ~seed:99 in
  let f = Workload.Circuit_fault.generate rng ~inputs:8 ~gates:48 in
  Format.printf
    "miter of a %d-gate circuit vs its NAND-resynthesised copy with a redundant stuck-at fault@."
    48;
  Format.printf "CNF: %d vars, %d clauses@." (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f);

  let classic = Hyqsat.Solve.run (Hyqsat.Solve.classic ()) f in
  let hybrid = Hyqsat.Solve.run (Hyqsat.Solve.hybrid ()) f in
  let verdict = function
    | Cdcl.Solver.Unsat -> "fault is untestable (circuits equivalent)"
    | Cdcl.Solver.Sat _ -> "fault is testable!"
    | Cdcl.Solver.Unknown _ -> "unknown"
  in
  Format.printf "classic CDCL:  %s in %d iterations@."
    (verdict classic.Hyqsat.Hybrid_solver.result) classic.Hyqsat.Hybrid_solver.iterations;
  Format.printf "HyQSAT:        %s in %d iterations@."
    (verdict hybrid.Hyqsat.Hybrid_solver.result) hybrid.Hyqsat.Hybrid_solver.iterations;
  Format.printf
    "strategy 4 (reach-conflict) fired %d times out of %d QA calls — the annealer flags the@."
    hybrid.Hyqsat.Hybrid_solver.strategy_uses.(3) hybrid.Hyqsat.Hybrid_solver.qa_calls;
  Format.printf "embedded clause set as near-unsatisfiable and CDCL dives into it@."
