(* hyqsat-gen: emit benchmark instances from the paper's Table I suite as
   DIMACS (or, with --weighted, WDIMACS) files. *)

let scale_str = function `Small -> "small" | `Paper -> "paper"

let generate bench scale seed weighted output =
  let want = String.lowercase_ascii bench in
  match
    List.find_opt
      (fun s -> String.lowercase_ascii s.Workload.Spec.id = want)
      Workload.Spec.table1
  with
  | None ->
      Printf.eprintf "unknown benchmark %S; available: %s\n" bench
        (String.concat ", " (List.map (fun s -> s.Workload.Spec.id) Workload.Spec.table1));
      2
  | Some spec -> (
      let rng = Stats.Rng.create ~seed in
      let comments =
        [
          Printf.sprintf "benchmark %s (%s) from domain %s" spec.Workload.Spec.id
            spec.Workload.Spec.name spec.Workload.Spec.domain;
          Printf.sprintf "scale=%s seed=%d" (scale_str scale) seed;
        ]
      in
      if weighted then
        match spec.Workload.Spec.generate_weighted with
        | None ->
            Printf.eprintf
              "benchmark %s has no weighted variant; weighted-capable: %s\n"
              spec.Workload.Spec.id
              (String.concat ", "
                 (List.filter_map
                    (fun s ->
                      if s.Workload.Spec.generate_weighted <> None then
                        Some s.Workload.Spec.id
                      else None)
                    Workload.Spec.table1));
            2
        | Some gen ->
            let w = gen rng scale in
            (match output with
            | Some path ->
                Sat.Wcnf.write_file ~comments path w;
                Printf.printf "wrote %s: %d vars, %d hard, %d soft\n" path
                  (Sat.Wcnf.num_vars w) (Sat.Wcnf.num_hard w) (Sat.Wcnf.num_soft w)
            | None -> print_string (Sat.Wcnf.to_string ~comments w));
            0
      else begin
        let f = spec.Workload.Spec.generate rng scale in
        (match output with
        | Some path ->
            Sat.Dimacs.write_file ~comments path f;
            Printf.printf "wrote %s: %d vars, %d clauses\n" path (Sat.Cnf.num_vars f)
              (Sat.Cnf.num_clauses f)
        | None -> print_string (Sat.Dimacs.to_string ~comments f));
        0
      end)

open Cmdliner

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"Benchmark id (GC1..AI5; see Table I).")

let scale_arg =
  Arg.(
    value
    & opt (enum [ ("small", `Small); ("paper", `Paper) ]) `Small
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Instance scale: $(b,small) or $(b,paper).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let weighted_arg =
  Arg.(
    value & flag
    & info [ "weighted" ]
        ~doc:
          "Emit the benchmark's weighted-MaxSAT variant as WDIMACS. Only some \
           benchmarks have one (graph colouring, block planning); others exit \
           with status 2.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")

let cmd =
  let doc = "generate HyQSAT benchmark instances (Table I families)" in
  Cmd.v (Cmd.info "hyqsat-gen" ~doc)
    Term.(const generate $ bench_arg $ scale_arg $ seed_arg $ weighted_arg $ output_arg)

let () = exit (Cmd.eval' cmd)
