(* hyqsat: solve DIMACS CNF files with the hybrid QA+CDCL solver, the
   classical baselines, or a parallel portfolio race — one file or a batch
   across a worker pool.

   Exit codes follow the SAT competition: 10 = SAT, 20 = UNSAT, 0 = unknown.
   For a batch the code is 10 iff every instance is SAT, 20 iff every
   instance is UNSAT, 0 otherwise. *)

let load_formula path =
  let f = Sat.Dimacs.parse_file path in
  if Sat.Cnf.is_3sat f then f
  else begin
    let g, _map = Sat.Three_sat.convert f in
    Printf.eprintf
      "note: %s: converting %d-SAT input to 3-SAT (%d vars, %d clauses -> %d vars, %d clauses)\n%!"
      path (Sat.Cnf.max_clause_size f) (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f)
      (Sat.Cnf.num_vars g) (Sat.Cnf.num_clauses g);
    g
  end

let print_model model =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "v";
  Array.iteri
    (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
    model;
  Buffer.add_string buf " 0";
  print_endline (Buffer.contents buf)

let print_comment_block text =
  String.split_on_char '\n' text
  |> List.iter (fun line -> if line <> "" then print_endline ("c " ^ line))

let exit_code_of_outcomes outcomes =
  let all p = List.for_all p outcomes in
  if outcomes = [] then 0
  else if all (function Service.Job.Sat _ -> true | _ -> false) then 10
  else if all (function Service.Job.Unsat -> true | _ -> false) then 20
  else 0

let main paths solver_kind portfolio noisy grid seed verbose jobs timeout retries
    max_iterations json_out =
  if paths = [] then begin
    Printf.eprintf "hyqsat: no input files\n";
    exit 2
  end;
  let specs =
    List.mapi
      (fun i path ->
        Service.Job.make ~name:path ?timeout_s:timeout ~max_iterations ~retries:(max 0 retries)
          ~seed:(seed + (101 * i)) ~id:i (load_formula path))
      paths
  in
  let members ~seed =
    if portfolio then Service.Portfolio.default_members ~grid ~seed ()
    else
      let name =
        match (solver_kind, noisy) with
        | `Hybrid, false -> "hybrid"
        | `Hybrid, true -> "hybrid-noisy"
        | `Minisat, _ -> "minisat"
        | `Kissat, _ -> "kissat"
      in
      Service.Batch.solo ~grid name ~seed
  in
  let summary, results = Service.Batch.run ~workers:jobs ~members specs in
  let records = List.map (fun r -> r.Service.Batch.record) results in
  if json_out then print_endline (Service.Telemetry.to_json_string summary records)
  else begin
    let single = List.length results = 1 in
    List.iter
      (fun r ->
        if not single then
          Printf.printf "c ---- %s (%s)\n" r.Service.Batch.spec.Service.Job.name
            r.Service.Batch.record.Service.Telemetry.outcome;
        (match r.Service.Batch.outcome with
        | Service.Job.Sat model ->
            print_endline "s SATISFIABLE";
            if single then print_model model
        | Service.Job.Unsat -> print_endline "s UNSATISFIABLE"
        | Service.Job.Unknown _ -> print_endline "s UNKNOWN"))
      results;
    if verbose || not single then begin
      if verbose then print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_table records);
      print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_summary summary)
    end
  end;
  exit_code_of_outcomes (List.map (fun r -> r.Service.Batch.outcome) results)

open Cmdliner

let paths_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"DIMACS CNF input files (one or more).")

let solver_arg =
  let kinds = [ ("hybrid", `Hybrid); ("minisat", `Minisat); ("kissat", `Kissat) ] in
  Arg.(
    value
    & opt (enum kinds) `Hybrid
    & info [ "s"; "solver" ] ~docv:"KIND"
        ~doc:
          "Solver: $(b,hybrid) (QA+CDCL), $(b,minisat) or $(b,kissat) baselines.  Ignored with \
           $(b,--portfolio).")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race all solver configurations (hybrid, hybrid-noisy, minisat, kissat, walksat) per \
           instance; first definite answer wins and cancels the rest.")

let noisy_arg =
  Arg.(value & flag & info [ "noisy" ] ~doc:"Use the D-Wave 2000Q noise model instead of the noise-free simulator.")

let grid_arg =
  Arg.(value & opt int 16 & info [ "grid" ] ~docv:"N" ~doc:"Chimera grid size (N×N cells; 16 = D-Wave 2000Q).")

let seed_arg = Arg.(value & opt int 20230225 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-job telemetry.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains solving instances in parallel.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Per-instance wall-clock deadline; expiry reports $(b,unknown:timeout).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"K"
        ~doc:"Retry an unknown outcome up to K times with reseeded solvers (deadline permitting).")

let max_iterations_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-iterations" ] ~docv:"N" ~doc:"CDCL step budget per solve attempt.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the run telemetry (summary + per-job records) as JSON on stdout.")

let cmd =
  let doc = "hybrid quantum-annealer + CDCL 3-SAT solver (HyQSAT, HPCA'23)" in
  Cmd.v
    (Cmd.info "hyqsat" ~doc)
    Term.(
      const main $ paths_arg $ solver_arg $ portfolio_arg $ noisy_arg $ grid_arg $ seed_arg
      $ verbose_arg $ jobs_arg $ timeout_arg $ retries_arg $ max_iterations_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
