(* hyqsat: solve DIMACS CNF files with the hybrid QA+CDCL solver, the
   classical baselines, or a parallel portfolio race — one file or a batch
   across a worker pool.  A `.wcnf` input (or --maxsat) switches that
   instance to the weighted-MaxSAT objective.

   Exit codes follow the SAT/MaxSAT competitions: 10 = SAT, 20 = UNSAT,
   30 = OPTIMUM FOUND, 0 = unknown.  For a batch the code is the one all
   instances agree on, else 0. *)

(* returns (formula to solve, original formula when a 3-SAT conversion
   happened).  Keeping the original lets the service project models back to
   the input's variables — without it the "v" line would include the
   conversion's auxiliary chain variables — and certify answers against the
   formula the user actually asked about. *)
let load_formula path =
  let f = Sat.Dimacs.parse_file path in
  if Sat.Cnf.is_3sat f then (f, None)
  else begin
    let g, _map = Sat.Three_sat.convert f in
    Printf.eprintf
      "note: %s: converting %d-SAT input to 3-SAT (%d vars, %d clauses -> %d vars, %d clauses)\n%!"
      path (Sat.Cnf.max_clause_size f) (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f)
      (Sat.Cnf.num_vars g) (Sat.Cnf.num_clauses g);
    (g, Some f)
  end

let print_model model =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "v";
  Array.iteri
    (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
    model;
  Buffer.add_string buf " 0";
  print_endline (Buffer.contents buf)

let print_comment_block text =
  String.split_on_char '\n' text
  |> List.iter (fun line -> if line <> "" then print_endline ("c " ^ line))

(* optimisation records carry cost >= 0 (decision jobs write -1); an
   optimum is a closed gap *)
let classify_record (r : Service.Telemetry.record) =
  match r.Service.Telemetry.outcome with
  | "sat" when r.Service.Telemetry.cost >= 0 && r.Service.Telemetry.cost = r.Service.Telemetry.lower_bound ->
      `Optimum
  | "sat" -> `Sat
  | "unsat" -> `Unsat
  | _ -> `Unknown

let exit_code_of_records records =
  let xs = List.map classify_record records in
  let all p = List.for_all p xs in
  if xs = [] then 0
  else if all (fun c -> c = `Optimum) then 30
  else if all (fun c -> c = `Sat || c = `Optimum) then 10
  else if all (fun c -> c = `Unsat) then 20
  else 0

let print_certification (record : Service.Telemetry.record) =
  match record.Service.Telemetry.verified with
  | "" -> ()
  | "model" -> print_endline "c certified: model checked against the original formula"
  | "proof" -> print_endline "c certified: unsat DRAT proof checked (RUP, empty clause derived)"
  | "optimal" -> print_endline "c certified: optimality proven by an independent re-solve"
  | "cost" -> print_endline "c certified: model cost re-checked (optimality gap still open)"
  | "infeasible" -> print_endline "c certified: hard clauses re-proven unsatisfiable"
  | failed -> print_endline ("c CERTIFICATION FAILED — answer withheld: " ^ failed)

(* MaxSAT-evaluation style result lines from a telemetry record *)
let print_opt_status (record : Service.Telemetry.record) =
  Printf.printf "o %d\n" record.Service.Telemetry.cost;
  if record.Service.Telemetry.cost = record.Service.Telemetry.lower_bound then
    print_endline "s OPTIMUM FOUND"
  else begin
    Printf.printf "c optimality gap open: best %d, proven lower bound %d\n"
      record.Service.Telemetry.cost record.Service.Telemetry.lower_bound;
    print_endline "s SATISFIABLE"
  end

let is_wcnf path = Filename.check_suffix path ".wcnf"

let write_proof path (r : Service.Batch.job_result) =
  match r.Service.Batch.race.Service.Portfolio.winner with
  | Some w -> (
      match w.Service.Portfolio.stats.Service.Portfolio.proof with
      | Some proof ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Sat.Drat.to_string proof));
          Printf.printf "c proof: %d steps written to %s\n" (List.length proof) path
      | None -> Printf.eprintf "warning: winner %s logged no proof\n%!" w.Service.Portfolio.member)
  | None -> ()

let main paths solver_kind portfolio noisy grid seed verbose jobs timeout retries
    max_iterations json_out certify proof_file trace_file metrics warm_start maxsat
    gap_limit opt_timeout qa_reads qa_domains qa_backend qa_fault_rate qa_timeout_us
    qa_retries =
  if paths = [] then begin
    Printf.eprintf "hyqsat: no input files\n";
    exit 2
  end;
  if proof_file <> None && List.length paths > 1 then begin
    Printf.eprintf "hyqsat: --proof takes a single input file\n";
    exit 2
  end;
  if qa_fault_rate < 0. || qa_fault_rate > 1. then begin
    Printf.eprintf "hyqsat: --qa-fault-rate must be in [0,1]\n";
    exit 2
  end;
  if gap_limit < 0 then begin
    Printf.eprintf "hyqsat: --gap-limit must be >= 0\n";
    exit 2
  end;
  let log_proof = certify || proof_file <> None in
  let qa =
    {
      Service.Job.backend =
        {
          Anneal.Backend.flavor = qa_backend;
          faults =
            {
              Anneal.Backend.default_faults with
              Anneal.Backend.fail_rate = qa_fault_rate;
              fault_seed = seed + 13;
            };
        };
      supervision =
        Anneal.Supervisor.make_policy ?timeout_us:qa_timeout_us ~retries:(max 0 qa_retries) ();
      reads = qa_reads;
      domains = qa_domains;
    }
  in
  let specs =
    List.mapi
      (fun i path ->
        if maxsat || is_wcnf path then
          (* a .wcnf is WDIMACS; --maxsat on a plain CNF maximises the
             number of satisfied clauses (every clause soft at weight 1) *)
          let w =
            if is_wcnf path then Sat.Wcnf.parse_file path
            else Sat.Wcnf.of_cnf (Sat.Dimacs.parse_file path)
          in
          Service.Job.optimize ~name:path ~gap_limit ~certify
            ?timeout_s:(match opt_timeout with Some _ -> opt_timeout | None -> timeout)
            ~max_iterations ~retries:(max 0 retries) ~qa ~seed:(seed + (101 * i)) ~id:i w
        else
          let formula, original = load_formula path in
          Service.Job.make ~name:path ?original ~certify ?timeout_s:timeout ~max_iterations
            ~retries:(max 0 retries) ~qa ~seed:(seed + (101 * i)) ~id:i formula)
      paths
  in
  let members ~spec ~seed =
    let qa = spec.Service.Job.qa in
    if portfolio then Service.Portfolio.default_members ~grid ~log_proof ~qa ~seed ()
    else
      let name =
        match (solver_kind, noisy) with
        | `Hybrid, false -> "hybrid"
        | `Hybrid, true -> "hybrid-noisy"
        | `Minisat, _ -> "minisat"
        | `Kissat, _ -> "kissat"
      in
      Service.Batch.solo ~grid ~log_proof name ~spec ~seed
  in
  let obs =
    if trace_file = None && not metrics then Obs.Ctx.null
    else begin
      let ctx = Obs.Ctx.create () in
      Option.iter (fun path -> Obs.Ctx.attach ctx (Obs.Export.file_jsonl path)) trace_file;
      ctx
    end
  in
  (* graceful drain on SIGINT/SIGTERM: stop accepting retries, cancel
     in-flight solves cooperatively, and still flush telemetry/trace —
     a second signal exits immediately *)
  let stop = Server.Drain.install_stop_handlers () in
  let summary, results =
    Service.Batch.run ~workers:jobs ~obs ~cancel:(fun () -> Atomic.get stop) ~warm_start
      ~members specs
  in
  if Atomic.get stop then begin
    let cancelled =
      List.length
        (List.filter
           (fun r -> r.Service.Batch.outcome = Service.Job.Unknown Service.Job.Cancelled)
           results)
    in
    Printf.eprintf "hyqsat: interrupted — %d job(s) cancelled, telemetry flushed\n%!" cancelled
  end;
  (* flush spans (and the trace file) before printing; metrics go to stdout
     as comment lines so the "s"/"v" output stays machine-parseable *)
  let metric_snapshot = Obs.Ctx.snapshot obs in
  Obs.Ctx.close obs;
  let records = List.map (fun r -> r.Service.Batch.record) results in
  if json_out then print_endline (Service.Telemetry.to_json_string summary records)
  else begin
    let single = List.length results = 1 in
    List.iter
      (fun r ->
        if not single then
          Printf.printf "c ---- %s (%s)\n" r.Service.Batch.spec.Service.Job.name
            r.Service.Batch.record.Service.Telemetry.outcome;
        print_certification r.Service.Batch.record;
        (match r.Service.Batch.outcome with
        | Service.Job.Sat model ->
            if r.Service.Batch.record.Service.Telemetry.cost >= 0 then
              print_opt_status r.Service.Batch.record
            else print_endline "s SATISFIABLE";
            if single then print_model model
        | Service.Job.Unsat -> print_endline "s UNSATISFIABLE"
        | Service.Job.Unknown _ -> print_endline "s UNKNOWN");
        match proof_file with
        | Some path when r.Service.Batch.outcome = Service.Job.Unsat -> write_proof path r
        | _ -> ())
      results;
    if verbose || not single then begin
      if verbose then print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_table records);
      print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_summary summary)
    end
  end;
  if metrics then print_string (Obs.Export.prometheus_string metric_snapshot);
  exit_code_of_records records

open Cmdliner

let paths_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Input files (one or more): DIMACS CNF decision instances, or WDIMACS $(b,.wcnf) \
           weighted-MaxSAT instances.")

let solver_arg =
  let kinds = [ ("hybrid", `Hybrid); ("minisat", `Minisat); ("kissat", `Kissat) ] in
  Arg.(
    value
    & opt (enum kinds) `Hybrid
    & info [ "s"; "solver" ] ~docv:"KIND"
        ~doc:
          "Solver: $(b,hybrid) (QA+CDCL), $(b,minisat) or $(b,kissat) baselines.  Ignored with \
           $(b,--portfolio).")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race all solver configurations (hybrid, hybrid-noisy, minisat, kissat, walksat) per \
           instance; first definite answer wins and cancels the rest.")

let noisy_arg =
  Arg.(value & flag & info [ "noisy" ] ~doc:"Use the D-Wave 2000Q noise model instead of the noise-free simulator.")

let grid_arg =
  Arg.(value & opt int 16 & info [ "grid" ] ~docv:"N" ~doc:"Chimera grid size (N×N cells; 16 = D-Wave 2000Q).")

let seed_arg = Arg.(value & opt int 20230225 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-job telemetry.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains solving instances in parallel.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Per-instance wall-clock deadline; expiry reports $(b,unknown:timeout).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"K"
        ~doc:"Retry an unknown outcome up to K times with reseeded solvers (deadline permitting).")

let max_iterations_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-iterations" ] ~docv:"N" ~doc:"CDCL step budget per solve attempt.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the run telemetry (summary + per-job records) as JSON on stdout.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Check every answer before reporting it: a SAT model is verified against the \
           $(i,original) formula (pre-3-SAT-conversion), an UNSAT answer must carry a DRAT \
           proof that passes the RUP checker.  A rejected claim is withheld and reported as \
           $(b,unknown:cert-failed).")

let proof_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Write the winner's DRAT proof to $(docv) when the (single) instance is UNSAT.  The \
           proof is stated over the formula the solver ran on (after any 3-SAT conversion).  \
           Implies proof logging.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines trace of the run to $(docv): one span per batch, job, solve \
           attempt and pipeline stage (frontend/embed/anneal/backend/cdcl), plus final metric \
           values.")

let warm_start_arg =
  Arg.(
    value & flag
    & info [ "warm-start" ]
        ~doc:
          "Share learnt clauses across the batch: a job whose formula equals one already \
           solved starts from the earlier race's learnt clauses.  Reuse is gated on formula \
           equality, so answers never change — only the work to reach them (see the \
           $(b,warm)/$(b,reused_clauses) telemetry columns).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump run metrics (counters, gauges, histograms) in Prometheus text format on stdout \
           after the results.")

let maxsat_arg =
  Arg.(
    value & flag
    & info [ "maxsat" ]
        ~doc:
          "Treat every input as a weighted MaxSAT instance and find a provably optimal model.  \
           Implied for $(b,.wcnf) files (WDIMACS, classic and 2022 dialects); on a plain CNF \
           every clause becomes soft at weight 1 (maximise satisfied clauses).  Prints \
           $(b,o <cost>) and $(b,s OPTIMUM FOUND); exit code 30 when the optimum is proven.")

let gap_limit_arg =
  Arg.(
    value & opt int 0
    & info [ "gap-limit" ] ~docv:"G"
        ~doc:
          "Optimisation jobs: accept any model whose cost is within $(docv) of the proven \
           lower bound instead of closing the gap entirely (0 = demand the exact optimum).")

let opt_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "opt-timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline for optimisation jobs only (overrides $(b,--timeout) for \
           them); on expiry the best incumbent and its lower bound are reported.")

let qa_reads_arg =
  Arg.(
    value & opt int 1
    & info [ "qa-reads" ] ~docv:"K"
        ~doc:
          "Annealer samples per QA call (best-of-$(docv) by energy, the multi-sample device \
           mode); 1 = the paper's single-shot protocol.")

let qa_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "qa-domains" ] ~docv:"N"
        ~doc:
          "Worker domains fanning the $(b,--qa-reads) samples of one QA call.  The answer is \
           deterministic in the seed whatever $(docv) is; mind the multiplication with \
           $(b,--jobs) and $(b,--portfolio) domains.")

let qa_backend_arg =
  let flavors =
    [ ("incremental", `Incremental); ("reference", `Reference); ("best-of", `Best_of) ]
  in
  Arg.(
    value
    & opt (enum flavors) `Best_of
    & info [ "qa-backend" ] ~docv:"KIND"
        ~doc:
          "Annealer backend for hybrid solves: $(b,incremental) (O(1)-delta kernel, serial \
           reads), $(b,reference) (field-recomputing kernel, serial reads) or $(b,best-of) \
           (honours $(b,--qa-reads)/$(b,--qa-domains)).  All three return identical answers \
           for a given seed; they differ only in speed.")

let qa_fault_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "qa-fault-rate" ] ~docv:"P"
        ~doc:
          "Wrap the QA backend in the deterministic fault injector: each call fails with \
           probability $(docv) (timeout / unavailable / readout-corrupt / chain-break-storm, \
           equally weighted).  Failed calls are retried and circuit-broken by the supervisor; \
           when they exhaust, the warm-up iteration degrades to pure CDCL — answers are never \
           lost, only slower.")

let qa_timeout_us_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "qa-timeout-us" ] ~docv:"US"
        ~doc:
          "Per-QA-call deadline on the modelled device time, in microseconds; a call past it \
           is discarded as a timeout.  Default: no deadline.")

let qa_retries_arg =
  Arg.(
    value & opt int 2
    & info [ "qa-retries" ] ~docv:"K"
        ~doc:
          "Extra attempts after a failed QA call (deterministic exponential backoff with \
           jitter) before the warm-up iteration degrades to pure CDCL.")

(* ------------------------------------------------------------------ *)
(* serve: the long-lived daemon *)

let serve_main socket port metrics_port workers queue_capacity per_client grace solver grid
    seed trace_file json_out =
  if socket = None && port = None then begin
    Printf.eprintf "hyqsat serve: need --socket PATH and/or --port P\n";
    exit 2
  end;
  (* a live obs context always: the /metrics endpoint and jobs_total
     counters depend on it, trace file or not *)
  let obs = Obs.Ctx.create () in
  Option.iter (fun path -> Obs.Ctx.attach obs (Obs.Export.file_jsonl path)) trace_file;
  let stop = Server.Drain.install_stop_handlers () in
  let config =
    {
      Server.Daemon.unix_socket = socket;
      tcp_port = port;
      metrics_port;
      dispatch =
        {
          Server.Dispatch.workers;
          queue_capacity;
          per_client;
          grace_s = grace;
          solver;
          grid;
          seed;
        };
      max_frame = Server.Codec.default_max_frame;
      events_backlog_bytes = 256 * 1024;
    }
  in
  let report =
    Server.Daemon.run ~obs ~stop
      ~on_ready:(fun r ->
        Option.iter
          (Printf.printf "c listening on unix socket %s\n%!")
          r.Server.Daemon.r_unix_socket;
        Option.iter (Printf.printf "c listening on tcp 127.0.0.1:%d\n%!") r.Server.Daemon.r_tcp_port;
        Option.iter
          (Printf.printf "c metrics on http://127.0.0.1:%d/metrics\n%!")
          r.Server.Daemon.r_metrics_port)
      config
  in
  Obs.Ctx.close obs;
  if json_out then print_endline (Server.Drain.to_json_string report)
  else print_endline (Format.asprintf "c %a" Server.Drain.pp report);
  0

(* ------------------------------------------------------------------ *)
(* submit: the thin client *)

let submit_main paths socket port certify timeout retries max_iterations seed priority
    session events json_out verbose wcnf gap_limit =
  if paths = [] then begin
    Printf.eprintf "hyqsat submit: no input files\n";
    exit 2
  end;
  let t =
    match (socket, port) with
    | Some s, _ -> Server.Client.connect_unix s
    | None, Some p -> Server.Client.connect_tcp ~port:p
    | None, None ->
        Printf.eprintf "hyqsat submit: need --socket PATH or --port P\n";
        exit 2
  in
  let exit_err msg =
    Printf.eprintf "hyqsat submit: %s\n" msg;
    Server.Client.close t;
    exit 2
  in
  (try Server.Client.handshake ~client:"hyqsat-submit" t
   with Server.Client.Protocol_error m -> exit_err m);
  if events then Server.Client.send t (Server.Protocol.Subscribe { events = true });
  List.iteri
    (fun i path ->
      let dimacs = In_channel.with_open_bin path In_channel.input_all in
      (* same per-file seed derivation as the one-shot solver, so a daemon
         answer is reproducible against `hyqsat FILE --seed S` *)
      let format = if wcnf || is_wcnf path then Some "wcnf" else None in
      let spec =
        Server.Protocol.make_job_spec ~name:path ?format ~gap_limit ~certify
          ?timeout_s:timeout ~max_iterations ~retries ~seed:(seed + (101 * i)) ~priority
          ?session ~id:i dimacs
      in
      Server.Client.send t (Server.Protocol.Submit spec))
    paths;
  let n = List.length paths in
  let results = Array.make n None in
  let outstanding = ref n in
  (try
     while !outstanding > 0 do
       match Server.Client.recv t with
       | Server.Protocol.Result { id; record; model } when id >= 0 && id < n ->
           results.(id) <- Some (record, model);
           decr outstanding
       | Server.Protocol.Rejected { id; code; reason; retry_after_s } ->
           Printf.eprintf "hyqsat submit: %s rejected (%s): %s%s\n%!"
             (try List.nth paths id with _ -> string_of_int id)
             code reason
             (match retry_after_s with
             | Some s -> Printf.sprintf " (retry after %.1fs)" s
             | None -> "");
           decr outstanding
       | Server.Protocol.Event { job; name; dur_s; attrs } ->
           if events then
             Printf.printf "c event%s %s %.4fs%s\n%!"
               (match job with Some j -> Printf.sprintf " [job %d]" j | None -> "")
               name dur_s
               (String.concat ""
                  (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) attrs))
       | Server.Protocol.Drained _ -> outstanding := 0
       | Server.Protocol.Error_msg { code; reason } ->
           Printf.eprintf "hyqsat submit: server error (%s): %s\n%!" code reason
       | Server.Protocol.Accepted _ | Server.Protocol.Welcome _ | Server.Protocol.Pong _ -> ()
       | Server.Protocol.Result _ -> ()
     done;
     Server.Client.send t Server.Protocol.Bye
   with Server.Client.Protocol_error m -> exit_err m);
  Server.Client.close t;
  let collected = Array.to_list results |> List.filter_map (fun x -> x) in
  let records = List.map fst collected in
  if json_out then
    print_endline
      (Service.Telemetry.to_json_string
         (Service.Telemetry.summarize ~workers:0 ~wall_time_s:0. records)
         records)
  else begin
    let single = n = 1 in
    Array.iter
      (function
        | None -> ()
        | Some ((record : Service.Telemetry.record), model) ->
            if not single then
              Printf.printf "c ---- %s (%s)\n" record.Service.Telemetry.job_name
                record.Service.Telemetry.outcome;
            print_certification record;
            let label = record.Service.Telemetry.outcome in
            if label = "sat" then begin
              if record.Service.Telemetry.cost >= 0 then print_opt_status record
              else print_endline "s SATISFIABLE";
              match model with Some m when single -> print_model m | _ -> ()
            end
            else if label = "unsat" then print_endline "s UNSATISFIABLE"
            else print_endline "s UNKNOWN")
      results;
    if verbose then
      print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_table records)
  end;
  if List.length collected < n then 0 (* a rejected/unanswered job is an unknown *)
  else exit_code_of_records records

(* ------------------------------------------------------------------ *)
(* command plumbing *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the daemon listens on.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"P" ~doc:"Loopback TCP port for the wire protocol (0 = ephemeral).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"P"
        ~doc:"Loopback HTTP port serving $(b,/metrics) (Prometheus text) and $(b,/healthz).")

let queue_capacity_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Admission queue bound; a submit beyond it is rejected with $(b,queue_full) and a \
           retry-after hint.")

let per_client_arg =
  Arg.(
    value & opt int 16
    & info [ "per-client" ] ~docv:"N" ~doc:"Max jobs one client may have in flight at once.")

let grace_arg =
  Arg.(
    value & opt float 2.0
    & info [ "grace" ] ~docv:"SECS"
        ~doc:
          "Drain grace period: how long running jobs get after SIGTERM/SIGINT before being \
           cancelled cooperatively.")

let serve_solver_arg =
  let names =
    List.map (fun n -> (n, n)) Service.Portfolio.member_names @ [ ("portfolio", "portfolio") ]
  in
  Arg.(
    value
    & opt (enum names) "hybrid"
    & info [ "s"; "solver" ] ~docv:"KIND"
        ~doc:"Solver members run per job: one of the portfolio members, or $(b,portfolio) to \
              race them all.")

let priority_arg =
  Arg.(
    value & opt int 0
    & info [ "priority" ] ~docv:"N"
        ~doc:"Admission priority (higher runs sooner; FIFO within a priority).")

let session_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "session" ] ~docv:"NAME"
        ~doc:
          "Submit every instance under one server-side session: the daemon keeps the learnt \
           clauses (and, when its configuration allows, the embedding cache) from earlier \
           jobs of the session and warm-starts later ones that share clause structure.  The \
           first job of a session answers exactly like a one-shot submit.")

let events_arg =
  Arg.(
    value & flag
    & info [ "events" ] ~doc:"Subscribe to progress events and print them as comment lines.")

let submit_wcnf_arg =
  Arg.(
    value & flag
    & info [ "wcnf" ]
        ~doc:
          "Submit the inputs as WDIMACS weighted-MaxSAT instances (implied for $(b,.wcnf) \
           files).  The daemon answers with the certified cost and lower bound in the \
           result record.")

let serve_cmd =
  let doc = "run the persistent solver daemon" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_main $ socket_arg $ port_arg $ metrics_port_arg $ jobs_arg
      $ queue_capacity_arg $ per_client_arg $ grace_arg $ serve_solver_arg $ grid_arg
      $ seed_arg $ trace_arg $ json_arg)

let submit_cmd =
  let doc = "submit DIMACS instances to a running daemon" in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const submit_main $ paths_arg $ socket_arg $ port_arg $ certify_arg $ timeout_arg
      $ retries_arg $ max_iterations_arg $ seed_arg $ priority_arg $ session_arg $ events_arg
      $ json_arg $ verbose_arg $ submit_wcnf_arg $ gap_limit_arg)

let solve_term =
  Term.(
    const main $ paths_arg $ solver_arg $ portfolio_arg $ noisy_arg $ grid_arg $ seed_arg
    $ verbose_arg $ jobs_arg $ timeout_arg $ retries_arg $ max_iterations_arg $ json_arg
    $ certify_arg $ proof_arg $ trace_arg $ metrics_arg $ warm_start_arg $ maxsat_arg
    $ gap_limit_arg $ opt_timeout_arg $ qa_reads_arg $ qa_domains_arg $ qa_backend_arg
    $ qa_fault_rate_arg $ qa_timeout_us_arg $ qa_retries_arg)

let solve_cmd =
  let doc = "solve DIMACS instances in-process (the default command)" in
  Cmd.v (Cmd.info "solve" ~doc) solve_term

let cmd =
  let doc = "hybrid quantum-annealer + CDCL 3-SAT solver (HyQSAT, HPCA'23)" in
  Cmd.group ~default:solve_term (Cmd.info "hyqsat" ~doc) [ solve_cmd; serve_cmd; submit_cmd ]

(* keep `hyqsat FILE...` working: a first argument that is not a known
   sub-command (or an option) is a CNF path for the default solve command,
   not a command name for Cmd.group to trip over *)
let argv =
  let av = Sys.argv in
  if Array.length av > 1 then
    match av.(1) with
    | "solve" | "serve" | "submit" -> av
    | s when String.length s > 0 && s.[0] <> '-' ->
        Array.append [| av.(0); "solve" |] (Array.sub av 1 (Array.length av - 1))
    | _ -> av
  else av

let () = exit (Cmd.eval' ~argv cmd)
