(* hyqsat: solve DIMACS CNF files with the hybrid QA+CDCL solver, the
   classical baselines, or a parallel portfolio race — one file or a batch
   across a worker pool.

   Exit codes follow the SAT competition: 10 = SAT, 20 = UNSAT, 0 = unknown.
   For a batch the code is 10 iff every instance is SAT, 20 iff every
   instance is UNSAT, 0 otherwise. *)

(* returns (formula to solve, original formula when a 3-SAT conversion
   happened).  Keeping the original lets the service project models back to
   the input's variables — without it the "v" line would include the
   conversion's auxiliary chain variables — and certify answers against the
   formula the user actually asked about. *)
let load_formula path =
  let f = Sat.Dimacs.parse_file path in
  if Sat.Cnf.is_3sat f then (f, None)
  else begin
    let g, _map = Sat.Three_sat.convert f in
    Printf.eprintf
      "note: %s: converting %d-SAT input to 3-SAT (%d vars, %d clauses -> %d vars, %d clauses)\n%!"
      path (Sat.Cnf.max_clause_size f) (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f)
      (Sat.Cnf.num_vars g) (Sat.Cnf.num_clauses g);
    (g, Some f)
  end

let print_model model =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "v";
  Array.iteri
    (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
    model;
  Buffer.add_string buf " 0";
  print_endline (Buffer.contents buf)

let print_comment_block text =
  String.split_on_char '\n' text
  |> List.iter (fun line -> if line <> "" then print_endline ("c " ^ line))

let exit_code_of_outcomes outcomes =
  let all p = List.for_all p outcomes in
  if outcomes = [] then 0
  else if all (function Service.Job.Sat _ -> true | _ -> false) then 10
  else if all (function Service.Job.Unsat -> true | _ -> false) then 20
  else 0

let print_certification (record : Service.Telemetry.record) =
  match record.Service.Telemetry.verified with
  | "" -> ()
  | "model" -> print_endline "c certified: model checked against the original formula"
  | "proof" -> print_endline "c certified: unsat DRAT proof checked (RUP, empty clause derived)"
  | failed -> print_endline ("c CERTIFICATION FAILED — answer withheld: " ^ failed)

let write_proof path (r : Service.Batch.job_result) =
  match r.Service.Batch.race.Service.Portfolio.winner with
  | Some w -> (
      match w.Service.Portfolio.stats.Service.Portfolio.proof with
      | Some proof ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Sat.Drat.to_string proof));
          Printf.printf "c proof: %d steps written to %s\n" (List.length proof) path
      | None -> Printf.eprintf "warning: winner %s logged no proof\n%!" w.Service.Portfolio.member)
  | None -> ()

let main paths solver_kind portfolio noisy grid seed verbose jobs timeout retries
    max_iterations json_out certify proof_file trace_file metrics qa_reads qa_domains
    qa_backend qa_fault_rate qa_timeout_us qa_retries =
  if paths = [] then begin
    Printf.eprintf "hyqsat: no input files\n";
    exit 2
  end;
  if proof_file <> None && List.length paths > 1 then begin
    Printf.eprintf "hyqsat: --proof takes a single input file\n";
    exit 2
  end;
  if qa_fault_rate < 0. || qa_fault_rate > 1. then begin
    Printf.eprintf "hyqsat: --qa-fault-rate must be in [0,1]\n";
    exit 2
  end;
  let log_proof = certify || proof_file <> None in
  let qa =
    {
      Service.Job.backend =
        {
          Anneal.Backend.flavor = qa_backend;
          faults =
            {
              Anneal.Backend.default_faults with
              Anneal.Backend.fail_rate = qa_fault_rate;
              fault_seed = seed + 13;
            };
        };
      supervision =
        Anneal.Supervisor.make_policy ?timeout_us:qa_timeout_us ~retries:(max 0 qa_retries) ();
      reads = qa_reads;
      domains = qa_domains;
    }
  in
  let specs =
    List.mapi
      (fun i path ->
        let formula, original = load_formula path in
        Service.Job.make ~name:path ?original ~certify ?timeout_s:timeout ~max_iterations
          ~retries:(max 0 retries) ~qa ~seed:(seed + (101 * i)) ~id:i formula)
      paths
  in
  let members ~spec ~seed =
    let qa = spec.Service.Job.qa in
    if portfolio then Service.Portfolio.default_members ~grid ~log_proof ~qa ~seed ()
    else
      let name =
        match (solver_kind, noisy) with
        | `Hybrid, false -> "hybrid"
        | `Hybrid, true -> "hybrid-noisy"
        | `Minisat, _ -> "minisat"
        | `Kissat, _ -> "kissat"
      in
      Service.Batch.solo ~grid ~log_proof name ~spec ~seed
  in
  let obs =
    if trace_file = None && not metrics then Obs.Ctx.null
    else begin
      let ctx = Obs.Ctx.create () in
      Option.iter (fun path -> Obs.Ctx.attach ctx (Obs.Export.file_jsonl path)) trace_file;
      ctx
    end
  in
  let summary, results = Service.Batch.run ~workers:jobs ~obs ~members specs in
  (* flush spans (and the trace file) before printing; metrics go to stdout
     as comment lines so the "s"/"v" output stays machine-parseable *)
  let metric_snapshot = Obs.Ctx.snapshot obs in
  Obs.Ctx.close obs;
  let records = List.map (fun r -> r.Service.Batch.record) results in
  if json_out then print_endline (Service.Telemetry.to_json_string summary records)
  else begin
    let single = List.length results = 1 in
    List.iter
      (fun r ->
        if not single then
          Printf.printf "c ---- %s (%s)\n" r.Service.Batch.spec.Service.Job.name
            r.Service.Batch.record.Service.Telemetry.outcome;
        print_certification r.Service.Batch.record;
        (match r.Service.Batch.outcome with
        | Service.Job.Sat model ->
            print_endline "s SATISFIABLE";
            if single then print_model model
        | Service.Job.Unsat -> print_endline "s UNSATISFIABLE"
        | Service.Job.Unknown _ -> print_endline "s UNKNOWN");
        match proof_file with
        | Some path when r.Service.Batch.outcome = Service.Job.Unsat -> write_proof path r
        | _ -> ())
      results;
    if verbose || not single then begin
      if verbose then print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_table records);
      print_comment_block (Format.asprintf "%a" Service.Telemetry.pp_summary summary)
    end
  end;
  if metrics then print_string (Obs.Export.prometheus_string metric_snapshot);
  exit_code_of_outcomes (List.map (fun r -> r.Service.Batch.outcome) results)

open Cmdliner

let paths_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"DIMACS CNF input files (one or more).")

let solver_arg =
  let kinds = [ ("hybrid", `Hybrid); ("minisat", `Minisat); ("kissat", `Kissat) ] in
  Arg.(
    value
    & opt (enum kinds) `Hybrid
    & info [ "s"; "solver" ] ~docv:"KIND"
        ~doc:
          "Solver: $(b,hybrid) (QA+CDCL), $(b,minisat) or $(b,kissat) baselines.  Ignored with \
           $(b,--portfolio).")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race all solver configurations (hybrid, hybrid-noisy, minisat, kissat, walksat) per \
           instance; first definite answer wins and cancels the rest.")

let noisy_arg =
  Arg.(value & flag & info [ "noisy" ] ~doc:"Use the D-Wave 2000Q noise model instead of the noise-free simulator.")

let grid_arg =
  Arg.(value & opt int 16 & info [ "grid" ] ~docv:"N" ~doc:"Chimera grid size (N×N cells; 16 = D-Wave 2000Q).")

let seed_arg = Arg.(value & opt int 20230225 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-job telemetry.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains solving instances in parallel.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Per-instance wall-clock deadline; expiry reports $(b,unknown:timeout).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"K"
        ~doc:"Retry an unknown outcome up to K times with reseeded solvers (deadline permitting).")

let max_iterations_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-iterations" ] ~docv:"N" ~doc:"CDCL step budget per solve attempt.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the run telemetry (summary + per-job records) as JSON on stdout.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Check every answer before reporting it: a SAT model is verified against the \
           $(i,original) formula (pre-3-SAT-conversion), an UNSAT answer must carry a DRAT \
           proof that passes the RUP checker.  A rejected claim is withheld and reported as \
           $(b,unknown:cert-failed).")

let proof_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Write the winner's DRAT proof to $(docv) when the (single) instance is UNSAT.  The \
           proof is stated over the formula the solver ran on (after any 3-SAT conversion).  \
           Implies proof logging.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines trace of the run to $(docv): one span per batch, job, solve \
           attempt and pipeline stage (frontend/embed/anneal/backend/cdcl), plus final metric \
           values.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump run metrics (counters, gauges, histograms) in Prometheus text format on stdout \
           after the results.")

let qa_reads_arg =
  Arg.(
    value & opt int 1
    & info [ "qa-reads" ] ~docv:"K"
        ~doc:
          "Annealer samples per QA call (best-of-$(docv) by energy, the multi-sample device \
           mode); 1 = the paper's single-shot protocol.")

let qa_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "qa-domains" ] ~docv:"N"
        ~doc:
          "Worker domains fanning the $(b,--qa-reads) samples of one QA call.  The answer is \
           deterministic in the seed whatever $(docv) is; mind the multiplication with \
           $(b,--jobs) and $(b,--portfolio) domains.")

let qa_backend_arg =
  let flavors =
    [ ("incremental", `Incremental); ("reference", `Reference); ("best-of", `Best_of) ]
  in
  Arg.(
    value
    & opt (enum flavors) `Best_of
    & info [ "qa-backend" ] ~docv:"KIND"
        ~doc:
          "Annealer backend for hybrid solves: $(b,incremental) (O(1)-delta kernel, serial \
           reads), $(b,reference) (field-recomputing kernel, serial reads) or $(b,best-of) \
           (honours $(b,--qa-reads)/$(b,--qa-domains)).  All three return identical answers \
           for a given seed; they differ only in speed.")

let qa_fault_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "qa-fault-rate" ] ~docv:"P"
        ~doc:
          "Wrap the QA backend in the deterministic fault injector: each call fails with \
           probability $(docv) (timeout / unavailable / readout-corrupt / chain-break-storm, \
           equally weighted).  Failed calls are retried and circuit-broken by the supervisor; \
           when they exhaust, the warm-up iteration degrades to pure CDCL — answers are never \
           lost, only slower.")

let qa_timeout_us_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "qa-timeout-us" ] ~docv:"US"
        ~doc:
          "Per-QA-call deadline on the modelled device time, in microseconds; a call past it \
           is discarded as a timeout.  Default: no deadline.")

let qa_retries_arg =
  Arg.(
    value & opt int 2
    & info [ "qa-retries" ] ~docv:"K"
        ~doc:
          "Extra attempts after a failed QA call (deterministic exponential backoff with \
           jitter) before the warm-up iteration degrades to pure CDCL.")

let cmd =
  let doc = "hybrid quantum-annealer + CDCL 3-SAT solver (HyQSAT, HPCA'23)" in
  Cmd.v
    (Cmd.info "hyqsat" ~doc)
    Term.(
      const main $ paths_arg $ solver_arg $ portfolio_arg $ noisy_arg $ grid_arg $ seed_arg
      $ verbose_arg $ jobs_arg $ timeout_arg $ retries_arg $ max_iterations_arg $ json_arg
      $ certify_arg $ proof_arg $ trace_arg $ metrics_arg $ qa_reads_arg $ qa_domains_arg
      $ qa_backend_arg $ qa_fault_rate_arg $ qa_timeout_us_arg $ qa_retries_arg)

let () = exit (Cmd.eval' cmd)
