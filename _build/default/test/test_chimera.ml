(* Tests for the Chimera hardware-graph model. *)

module G = Chimera.Graph

let counts () =
  let g = G.standard_2000q () in
  Alcotest.(check int) "2000q qubits" 2048 (G.num_qubits g);
  Alcotest.(check int) "vertical lines" 64 (G.num_vertical_lines g);
  Alcotest.(check int) "horizontal lines" 64 (G.num_horizontal_lines g);
  (* 16 per cell + 4 per inter-cell link in each direction *)
  Alcotest.(check int) "couplers" ((256 * 16) + (15 * 16 * 4 * 2)) (G.num_couplers g)

let coords_roundtrip () =
  let g = G.create ~rows:3 ~cols:5 in
  for id = 0 to G.num_qubits g - 1 do
    Alcotest.(check int) "roundtrip" id (G.id_of_coords g (G.coords_of_id g id))
  done

let adjacency_symmetric_and_matches_neighbors () =
  let g = G.create ~rows:3 ~cols:3 in
  let n = G.num_qubits g in
  for a = 0 to n - 1 do
    let nbs = G.neighbors g a in
    List.iter
      (fun b ->
        Alcotest.(check bool) "adjacent" true (G.adjacent g a b);
        Alcotest.(check bool) "symmetric" true (G.adjacent g b a);
        Alcotest.(check bool) "reverse membership" true (List.mem a (G.neighbors g b)))
      nbs;
    (* no self loops *)
    Alcotest.(check bool) "no self loop" false (G.adjacent g a a)
  done

let cell_structure () =
  let g = G.create ~rows:2 ~cols:2 in
  (* vertical qubit 0 of cell (0,0): 4 in-cell + 1 downward neighbour *)
  let v0 = G.id_of_coords g { G.row = 0; col = 0; orientation = G.Vertical; index = 0 } in
  Alcotest.(check int) "corner vertical degree" 5 (List.length (G.neighbors g v0));
  (* in-cell coupling is bipartite: two vertical qubits never adjacent *)
  let v1 = G.id_of_coords g { G.row = 0; col = 0; orientation = G.Vertical; index = 1 } in
  Alcotest.(check bool) "no V-V in cell" false (G.adjacent g v0 v1)

let lines () =
  let g = G.create ~rows:4 ~cols:3 in
  let vl = 5 in
  (* column 1, index 1 *)
  let qubits = G.vertical_line_qubits g vl in
  Alcotest.(check int) "one qubit per row" 4 (List.length qubits);
  Alcotest.(check int) "line column" 1 (G.vline_col g vl);
  List.iter
    (fun q -> Alcotest.(check (option int)) "vline_of_qubit" (Some vl) (G.vline_of_qubit g q))
    qubits;
  (* consecutive qubits of a line are coupled *)
  let rec consecutive = function
    | a :: b :: rest ->
        Alcotest.(check bool) "line coupler" true (G.adjacent g a b);
        consecutive (b :: rest)
    | _ -> ()
  in
  consecutive qubits;
  consecutive (G.horizontal_line_qubits g 6)

let crossings () =
  let g = G.create ~rows:4 ~cols:3 in
  for vl = 0 to G.num_vertical_lines g - 1 do
    for hl = 0 to G.num_horizontal_lines g - 1 do
      let vq, hq = G.crossing g ~vline:vl ~hline:hl in
      Alcotest.(check bool) "crossing coupled" true (G.adjacent g vq hq);
      Alcotest.(check (option int)) "vq on vline" (Some vl) (G.vline_of_qubit g vq);
      Alcotest.(check (option int)) "hq on hline" (Some hl) (G.hline_of_qubit g hq)
    done
  done

let suite =
  [
    ( "chimera.graph",
      [
        Alcotest.test_case "2000q counts" `Quick counts;
        Alcotest.test_case "coords roundtrip" `Quick coords_roundtrip;
        Alcotest.test_case "adjacency symmetric" `Quick adjacency_symmetric_and_matches_neighbors;
        Alcotest.test_case "cell structure" `Quick cell_structure;
        Alcotest.test_case "lines" `Quick lines;
        Alcotest.test_case "crossings" `Quick crossings;
      ] );
  ]
