(* Shared helpers for the test suites. *)

let rng seed = Stats.Rng.create ~seed

(* random k-SAT clause over n vars, distinct variables *)
let random_clause r ~n ~k =
  let vars = Stats.Rng.sample_without_replacement r k n in
  Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool r)) vars)

let random_cnf r ~n ~m ~k =
  Sat.Cnf.make ~num_vars:n (List.init m (fun _ -> random_clause r ~n ~k))

(* qcheck generator of small random 3-SAT formulas (n in [3,10], ratio ~4) *)
let small_cnf_gen =
  QCheck.Gen.(
    int_range 3 10 >>= fun n ->
    int_range 1 (4 * n) >>= fun m ->
    int_bound 1_000_000 >>= fun seed ->
    return
      (let r = rng (seed + (n * 31) + m) in
       random_cnf r ~n ~m ~k:(min 3 n)))

let small_cnf_arb =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Sat.Cnf.pp f)
    small_cnf_gen

let qsuite name cells = (name, List.map QCheck_alcotest.to_alcotest cells)

let check_model f model =
  Sat.Assignment.satisfies (Sat.Assignment.of_bools model) f
