test/test_workload.ml: Alcotest Array Cdcl List Printf Sat Testutil Workload
