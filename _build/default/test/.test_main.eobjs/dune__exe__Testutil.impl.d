test/testutil.ml: Format List QCheck QCheck_alcotest Sat Stats
