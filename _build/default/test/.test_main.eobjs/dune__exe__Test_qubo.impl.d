test/test_qubo.ml: Alcotest Array Float List QCheck QCheck_alcotest Qubo Sat Stats Testutil
