test/test_hyqsat.ml: Alcotest Anneal Array Cdcl Chimera Embed Hyqsat Int List QCheck QCheck_alcotest Sat Stats Testutil Workload
