test/test_cardinality.ml: Alcotest Array Hyqsat List Printf QCheck QCheck_alcotest Sat Stats Testutil
