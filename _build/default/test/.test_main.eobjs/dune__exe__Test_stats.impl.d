test/test_stats.ml: Alcotest Array Float List QCheck QCheck_alcotest Stats
