test/test_sat.ml: Alcotest Array List QCheck QCheck_alcotest Sat Stats Testutil
