test/test_properties.ml: Alcotest Chimera Embed Hashtbl Hyqsat List Option QCheck QCheck_alcotest Qubo Sat Testutil Workload
