test/test_integration.ml: Alcotest Anneal Cdcl Filename Fun Hashtbl Hyqsat List Sat Sys Testutil Workload
