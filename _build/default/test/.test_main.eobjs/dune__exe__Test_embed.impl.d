test/test_embed.ml: Alcotest Array Chimera Embed Fun Int List Printf QCheck QCheck_alcotest Qubo Sat Stats Testutil
