test/test_chimera.ml: Alcotest Chimera List
