test/test_anneal.ml: Alcotest Anneal Array Chimera Embed List Qubo Sat Stats Testutil
