test/test_cdcl.ml: Alcotest Array Cdcl Fun List Printf QCheck QCheck_alcotest Sat Stats Testutil Workload
