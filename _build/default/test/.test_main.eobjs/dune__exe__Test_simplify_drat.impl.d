test/test_simplify_drat.ml: Alcotest Cdcl List QCheck QCheck_alcotest Sat Test_cdcl Testutil
