(* Final widening pass of cross-cutting properties. *)

let queue_deterministic_given_rng () =
  let f = Workload.Uniform.uf (Testutil.rng 501) 80 in
  let q1 = Hyqsat.Clause_queue.generate (Testutil.rng 7) f ~activity:(fun _ -> 1.) ~limit:40 in
  let q2 = Hyqsat.Clause_queue.generate (Testutil.rng 7) f ~activity:(fun _ -> 1.) ~limit:40 in
  Alcotest.(check (list int)) "same rng, same queue" q1 q2

let spec_instances_deterministic () =
  List.iter
    (fun spec ->
      let f1 = spec.Workload.Spec.generate (Testutil.rng 502) `Small in
      let f2 = spec.Workload.Spec.generate (Testutil.rng 502) `Small in
      Alcotest.(check bool) (spec.Workload.Spec.id ^ " deterministic") true
        (Sat.Cnf.equal f1 f2))
    Workload.Spec.table1

let aux_count_matches_three_lit_clauses =
  QCheck.Test.make ~name:"one auxiliary per 3-literal clause" ~count:100
    Testutil.small_cnf_arb (fun f ->
      let enc = Qubo.Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let three_lit =
        List.length (List.filter (fun c -> Sat.Clause.size c = 3) (Sat.Cnf.clauses f))
      in
      enc.Qubo.Encode.num_total_vars - Sat.Cnf.num_vars f = three_lit)

let embedding_qubits_disjoint =
  QCheck.Test.make ~name:"hyqsat chains use disjoint qubits" ~count:20
    (QCheck.make QCheck.Gen.(int_bound 10000))
    (fun seed ->
      let r = Testutil.rng (503 + seed) in
      let f = Workload.Uniform.uf r 60 in
      let q = Hyqsat.Clause_queue.generate r f ~activity:(fun _ -> 1.) ~limit:40 ~var_budget:64 in
      let enc = Qubo.Encode.encode ~num_vars:60 (List.map (Sat.Cnf.clause f) q) in
      let g = Chimera.Graph.standard_2000q () in
      let res = Embed.Hyqsat_scheme.embed g enc in
      let emb = res.Embed.Hyqsat_scheme.embedding in
      let seen = Hashtbl.create 256 in
      List.for_all
        (fun node ->
          List.for_all
            (fun qubit ->
              if Hashtbl.mem seen qubit then false
              else begin
                Hashtbl.replace seen qubit ();
                true
              end)
            (Option.value ~default:[] (Embed.Embedding.chain emb node)))
        (Embed.Embedding.nodes emb))

let warmup_scales_with_sqrt_k () =
  (* 4x the clauses (at fixed ratio) should le roughly double the warm-up *)
  let mk n = Workload.Uniform.uf (Testutil.rng 504) n in
  let k1 = Hyqsat.Hybrid_solver.estimate_iterations (mk 50) in
  let k2 = Hyqsat.Hybrid_solver.estimate_iterations (mk 200) in
  Alcotest.(check bool) "bigger problem, bigger estimate" true (k2 > k1);
  let w1 = sqrt (float_of_int k1) and w2 = sqrt (float_of_int k2) in
  Alcotest.(check bool) "sqrt scaling in a sane band" true (w2 /. w1 > 1.5 && w2 /. w1 < 4.)

let dimacs_of_generated_is_reparseable =
  QCheck.Test.make ~name:"generated benchmarks round-trip through DIMACS" ~count:14
    (QCheck.make QCheck.Gen.(int_bound 13))
    (fun i ->
      let spec = List.nth Workload.Spec.table1 i in
      let f = spec.Workload.Spec.generate (Testutil.rng (505 + i)) `Small in
      Sat.Cnf.equal f (Sat.Dimacs.parse_string (Sat.Dimacs.to_string f)))

let suite =
  [
    ( "properties",
      [
        Alcotest.test_case "queue deterministic" `Quick queue_deterministic_given_rng;
        Alcotest.test_case "spec deterministic" `Quick spec_instances_deterministic;
        QCheck_alcotest.to_alcotest aux_count_matches_three_lit_clauses;
        QCheck_alcotest.to_alcotest embedding_qubits_disjoint;
        Alcotest.test_case "warmup sqrt scaling" `Quick warmup_scales_with_sqrt_k;
        QCheck_alcotest.to_alcotest dimacs_of_generated_is_reparseable;
      ] );
  ]
