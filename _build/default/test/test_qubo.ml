(* Tests for the QUBO encoding, including the paper's worked example. *)

module Pbq = Qubo.Pbq
module Encode = Qubo.Encode
module Normalize = Qubo.Normalize
module Adjust = Qubo.Adjust
module Ising = Qubo.Ising
module Gap = Qubo.Gap

let fcheck = Alcotest.(check (float 1e-9))

let pbq_basics () =
  let h = Pbq.create () in
  Pbq.add_const h 1.5;
  Pbq.add_linear h 0 2.0;
  Pbq.add_linear h 0 (-1.0);
  Pbq.add_quad h 1 0 3.0;
  fcheck "const" 1.5 (Pbq.const h);
  fcheck "linear merged" 1.0 (Pbq.linear h 0);
  fcheck "quad symmetric" 3.0 (Pbq.quad h 0 1);
  fcheck "quad symmetric rev" 3.0 (Pbq.quad h 1 0);
  Alcotest.(check (list int)) "vars" [ 0; 1 ] (Pbq.vars h);
  (* eval: 1.5 + 1*x0 + 3*x0x1 *)
  fcheck "eval 00" 1.5 (Pbq.eval_array h [| false; false |]);
  fcheck "eval 10" 2.5 (Pbq.eval_array h [| true; false |]);
  fcheck "eval 11" 5.5 (Pbq.eval_array h [| true; true |]);
  (* cancellation removes the term *)
  Pbq.add_quad h 0 1 (-3.0);
  Alcotest.(check (list (pair int int))) "edge removed" [] (Pbq.edges h)

let pbq_add_scaled () =
  let a = Pbq.create () and b = Pbq.create () in
  Pbq.add_linear a 0 1.;
  Pbq.add_linear b 0 2.;
  Pbq.add_quad b 0 1 4.;
  Pbq.add_scaled a b 0.5;
  fcheck "linear sum" 2.0 (Pbq.linear a 0);
  fcheck "quad scaled" 2.0 (Pbq.quad a 0 1)

let pbq_diagonal_rejected () =
  let h = Pbq.create () in
  Alcotest.check_raises "diagonal" (Invalid_argument "Pbq.add_quad: diagonal term")
    (fun () -> Pbq.add_quad h 2 2 1.0)

(* H = 0 with optimal aux iff the clause set is satisfied: the core encoding
   soundness property (Equation 5). *)
let encoding_soundness =
  QCheck.Test.make ~name:"H=0 with optimal aux iff clauses satisfied" ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 3 8 >>= fun n ->
         int_range 1 10 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return (Testutil.random_cnf (Testutil.rng (seed + (n * 131) + m)) ~n ~m ~k:3)))
    (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let n = Sat.Cnf.num_vars f in
      let ok = ref true in
      for bits = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun v -> bits land (1 lsl v) <> 0) in
        let e = Encode.min_energy_for enc x in
        let sat = Encode.clauses_satisfied enc x in
        if sat && Float.abs e > 1e-9 then ok := false;
        if (not sat) && e < 0.5 then ok := false
      done;
      !ok)

(* the same property must survive coefficient adjustment *)
let encoding_soundness_adjusted =
  QCheck.Test.make ~name:"adjusted encoding keeps H=0 iff satisfied" ~count:100
    (QCheck.make
       QCheck.Gen.(
         int_range 3 7 >>= fun n ->
         int_range 1 8 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return (Testutil.random_cnf (Testutil.rng (seed + (n * 57) + m)) ~n ~m ~k:3)))
    (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      Adjust.adjust enc;
      let n = Sat.Cnf.num_vars f in
      let ok = ref true in
      for bits = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun v -> bits land (1 lsl v) <> 0) in
        let e = Encode.min_energy_for enc x in
        let sat = Encode.clauses_satisfied enc x in
        if sat && Float.abs e > 1e-9 then ok := false;
        if (not sat) && e < 1e-6 then ok := false
      done;
      !ok)

(* Paper Equation 8: the α=1 objective of c1 = x1 ∨ x2 ∨ x3 *)
let paper_example_objective () =
  (* vars: x1=0 x2=1 x3=2, aux a1=3 *)
  let c = Sat.Clause.of_dimacs [ 1; 2; 3 ] in
  let enc = Encode.encode ~num_vars:3 [ c ] in
  let h = Encode.objective enc in
  fcheck "const" 1.0 (Pbq.const h);
  fcheck "x1" 1.0 (Pbq.linear h 0);
  fcheck "x2" 1.0 (Pbq.linear h 1);
  fcheck "x3" (-1.0) (Pbq.linear h 2);
  fcheck "a1" 0.0 (Pbq.linear h 3);
  fcheck "x1x2" 1.0 (Pbq.quad h 0 1);
  fcheck "a1x1" (-2.0) (Pbq.quad h 3 0);
  fcheck "a1x2" (-2.0) (Pbq.quad h 3 1);
  fcheck "a1x3" 1.0 (Pbq.quad h 3 2);
  fcheck "d*" 2.0 (Normalize.d_star h)

(* Paper Equation 9: after adjustment α'_{1,1}=1, α'_{1,2}=2 *)
let paper_example_adjusted () =
  let c = Sat.Clause.of_dimacs [ 1; 2; 3 ] in
  let enc = Encode.encode ~num_vars:3 [ c ] in
  Adjust.adjust enc;
  (match Array.to_list enc.Encode.subs with
  | [ s1; s2 ] ->
      fcheck "alpha_{1,1}" 1.0 s1.Encode.alpha;
      fcheck "alpha_{1,2}" 2.0 s2.Encode.alpha
  | _ -> Alcotest.fail "expected two sub-clauses");
  let h = Encode.objective enc in
  fcheck "const" 2.0 (Pbq.const h);
  fcheck "x1" 1.0 (Pbq.linear h 0);
  fcheck "x2" 1.0 (Pbq.linear h 1);
  fcheck "x3" (-2.0) (Pbq.linear h 2);
  fcheck "a1" (-1.0) (Pbq.linear h 3);
  fcheck "x1x2" 1.0 (Pbq.quad h 0 1);
  fcheck "a1x1" (-2.0) (Pbq.quad h 3 0);
  fcheck "a1x2" (-2.0) (Pbq.quad h 3 1);
  fcheck "a1x3" 2.0 (Pbq.quad h 3 2);
  fcheck "d* preserved" 2.0 (Normalize.d_star h)

let small_clause_encodings () =
  (* unit clause x1: penalty 1 - x1 *)
  let enc1 = Encode.encode ~num_vars:1 [ Sat.Clause.of_dimacs [ 1 ] ] in
  fcheck "unit satisfied" 0.0 (Encode.min_energy_for enc1 [| true |]);
  fcheck "unit falsified" 1.0 (Encode.min_energy_for enc1 [| false |]);
  (* binary clause ¬x1 ∨ x2 *)
  let enc2 = Encode.encode ~num_vars:2 [ Sat.Clause.of_dimacs [ -1; 2 ] ] in
  fcheck "binary satisfied" 0.0 (Encode.min_energy_for enc2 [| false; false |]);
  fcheck "binary falsified" 1.0 (Encode.min_energy_for enc2 [| true; false |]);
  Alcotest.(check int) "no aux introduced" 2 enc2.Encode.num_total_vars

let normalization_range =
  QCheck.Test.make ~name:"normalised objective fits hardware range" ~count:100
    Testutil.small_cnf_arb (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      Adjust.adjust enc;
      Normalize.within_hardware_range (Normalize.apply (Encode.objective enc)))

let adjustment_helps_gap =
  (* rigorous core of the Fig 15 claim: α ≥ 1 dominates the α = 1 penalty
     pointwise, so the *unnormalised* gap can never shrink.  (The normalised
     gap improves statistically — shared variables can shift d* — which is
     what the fig15 bench measures.) *)
  QCheck.Test.make ~name:"adjustment never lowers the unnormalised gap" ~count:60
    (QCheck.make
       QCheck.Gen.(
         int_range 3 7 >>= fun n ->
         int_range 2 9 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return (Testutil.random_cnf (Testutil.rng (seed + (7 * n) + m)) ~n ~m ~k:3)))
    (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let taut =
        (* gap undefined for clause sets no assignment can falsify *)
        try
          ignore (Gap.energy_gap ~normalized:false enc);
          false
        with Invalid_argument _ -> true
      in
      taut
      ||
      let before = Gap.energy_gap ~normalized:false enc in
      Adjust.adjust enc;
      let after = Gap.energy_gap ~normalized:false enc in
      after >= before -. 1e-9)

let adjustment_boosts_weak_clauses () =
  (* {x1, ¬x1, x2∨x3∨x4} is UNSAT and every assignment violates one of the
     unit clauses.  Their contributions cancel in the global objective
     (B_x1 = -1 + 1 = 0), so d_sub falls back to 1 and the units get α =
     d*/1 = 2, doubling the normalised gap: 0.5 → 1.0. *)
  let enc =
    Encode.encode ~num_vars:4
      [
        Sat.Clause.of_dimacs [ 1 ];
        Sat.Clause.of_dimacs [ -1 ];
        Sat.Clause.of_dimacs [ 2; 3; 4 ];
      ]
  in
  let before = Gap.energy_gap enc in
  Adjust.adjust enc;
  let after = Gap.energy_gap enc in
  fcheck "before" 0.5 before;
  fcheck "after" 1.0 after

let adjustment_preserves_d_star =
  QCheck.Test.make ~name:"adjusted objective never raises d*" ~count:100
    Testutil.small_cnf_arb (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let before = Normalize.d_star (Encode.objective enc) in
      Adjust.adjust enc;
      Normalize.d_star (Encode.objective enc) <= before +. 1e-6)

let adjustment_normalized_gap_never_worse =
  (* with the cap, the normalised gap is now monotone too: numerator can
     only grow (α ≥ 1) while the divisor cannot *)
  QCheck.Test.make ~name:"capped adjustment never lowers the normalised gap" ~count:50
    (QCheck.make
       QCheck.Gen.(
         int_range 3 7 >>= fun n ->
         int_range 2 9 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return (Testutil.random_cnf (Testutil.rng (seed + (13 * n) + m)) ~n ~m ~k:3)))
    (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let taut =
        try
          ignore (Gap.energy_gap enc);
          false
        with Invalid_argument _ -> true
      in
      taut
      ||
      let before = Gap.energy_gap enc in
      Adjust.adjust enc;
      Gap.energy_gap enc >= before -. 1e-6)

let alphas_at_least_one =
  QCheck.Test.make ~name:"adjusted alphas are >= 1" ~count:100 Testutil.small_cnf_arb
    (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      Adjust.adjust enc;
      Array.for_all (fun s -> s.Encode.alpha >= 1. -. 1e-9) enc.Encode.subs)

let ising_roundtrip =
  QCheck.Test.make ~name:"ising energy equals qubo energy" ~count:100
    Testutil.small_cnf_arb (fun f ->
      let enc = Encode.encode ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let q = Encode.objective enc in
      let ising = Ising.of_qubo q in
      let nv = enc.Encode.num_total_vars in
      let r = Testutil.rng 99 in
      let ok = ref true in
      for _ = 1 to 20 do
        let bools = Array.init nv (fun _ -> Stats.Rng.bool r) in
        let spins = Ising.spins_of_bools ising bools in
        let eq = Pbq.eval_array q bools and ei = Ising.energy ising spins in
        if Float.abs (eq -. ei) > 1e-6 then ok := false
      done;
      !ok)

(* ---- K-SAT chain encoding (paper §VII-B) ---- *)

let ksat_aux_count () =
  (* the paper's example: a 26-literal clause needs 24 auxiliaries *)
  let big = Sat.Clause.make (List.init 26 (fun v -> Sat.Lit.pos v)) in
  let enc = Encode.encode_ksat ~num_vars:26 [ big ] in
  Alcotest.(check int) "24 auxiliaries" 24 (enc.Encode.num_total_vars - 26);
  let small = Sat.Clause.of_dimacs [ 1; 2; 3 ] in
  let enc3 = Encode.encode_ksat ~num_vars:3 [ small ] in
  Alcotest.(check int) "3-clause keeps 1 aux" 1 (enc3.Encode.num_total_vars - 3)

let ksat_soundness =
  QCheck.Test.make ~name:"ksat encoding: H=0 with optimal aux iff satisfied" ~count:80
    (QCheck.make
       QCheck.Gen.(
         int_range 4 8 >>= fun n ->
         int_range 1 5 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return
           (let r = Testutil.rng (seed + (n * 43) + m) in
            Sat.Cnf.make ~num_vars:n
              (List.init m (fun _ ->
                   let k = 2 + Stats.Rng.int r (n - 1) in
                   Testutil.random_clause r ~n ~k)))))
    (fun f ->
      let enc = Encode.encode_ksat ~num_vars:(Sat.Cnf.num_vars f) (Sat.Cnf.clauses f) in
      let n = Sat.Cnf.num_vars f in
      let ok = ref true in
      for bits = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun v -> bits land (1 lsl v) <> 0) in
        let e = Encode.min_energy_for enc x in
        let sat = Encode.clauses_satisfied enc x in
        if sat && Float.abs e > 1e-9 then ok := false;
        if (not sat) && e < 1e-6 then ok := false
      done;
      !ok)

let ksat_rejected_by_strict_encode () =
  let big = Sat.Clause.make (List.init 5 (fun v -> Sat.Lit.pos v)) in
  Alcotest.check_raises "strict encode raises"
    (Invalid_argument "Encode.encode: clause with more than 3 literals") (fun () ->
      ignore (Encode.encode ~num_vars:5 [ big ]))

let gap_of_single_clause () =
  (* one 3-clause: falsifying assignment gives energy exactly 1 before
     normalisation; d* = 2 so the normalised gap is 0.5 *)
  let enc = Encode.encode ~num_vars:3 [ Sat.Clause.of_dimacs [ 1; 2; 3 ] ] in
  fcheck "unnormalised gap" 1.0 (Gap.energy_gap ~normalized:false enc);
  fcheck "normalised gap" 0.5 (Gap.energy_gap enc);
  fcheck "min energy" 0.0 (Gap.min_energy enc)

let suite =
  [
    ( "qubo.pbq",
      [
        Alcotest.test_case "basics" `Quick pbq_basics;
        Alcotest.test_case "add_scaled" `Quick pbq_add_scaled;
        Alcotest.test_case "diagonal rejected" `Quick pbq_diagonal_rejected;
      ] );
    ( "qubo.encode",
      [
        Alcotest.test_case "paper equation 8" `Quick paper_example_objective;
        Alcotest.test_case "small clauses" `Quick small_clause_encodings;
        QCheck_alcotest.to_alcotest encoding_soundness;
        QCheck_alcotest.to_alcotest encoding_soundness_adjusted;
      ] );
    ( "qubo.adjust",
      [
        Alcotest.test_case "paper equation 9" `Quick paper_example_adjusted;
        QCheck_alcotest.to_alcotest alphas_at_least_one;
        QCheck_alcotest.to_alcotest adjustment_helps_gap;
        QCheck_alcotest.to_alcotest adjustment_preserves_d_star;
        QCheck_alcotest.to_alcotest adjustment_normalized_gap_never_worse;
        Alcotest.test_case "weak clauses boosted (normalised gap 4x)" `Quick
          adjustment_boosts_weak_clauses;
      ] );
    ( "qubo.ksat",
      [
        Alcotest.test_case "aux counts" `Quick ksat_aux_count;
        QCheck_alcotest.to_alcotest ksat_soundness;
        Alcotest.test_case "strict encode rejects" `Quick ksat_rejected_by_strict_encode;
      ] );
    ("qubo.normalize", [ QCheck_alcotest.to_alcotest normalization_range ]);
    ("qubo.ising", [ QCheck_alcotest.to_alcotest ising_roundtrip ]);
    ("qubo.gap", [ Alcotest.test_case "single clause" `Quick gap_of_single_clause ]);
  ]
