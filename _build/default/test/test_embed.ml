(* Tests for the three embedding schemes. *)

module G = Chimera.Graph
module Embedding = Embed.Embedding
module Hyq = Embed.Hyqsat_scheme
module Mm = Embed.Minorminer_like
module Pr = Embed.Place_route

(* a clause queue with BFS-style variable locality, like the frontend emits *)
let locality_queue r ~n ~m =
  List.init m (fun i ->
      let base = i * 2 mod n in
      let v1 = base
      and v2 = (base + 1 + Stats.Rng.int r 3) mod n
      and v3 = (base + 4 + Stats.Rng.int r 5) mod n in
      let distinct = List.sort_uniq Int.compare [ v1; v2; v3 ] in
      Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool r)) distinct))

let encode_queue ~n clauses = Qubo.Encode.encode ~num_vars:n clauses

let problem_graph_of_prefix enc prefix =
  (* nodes and edges of the embedded prefix, as the embedder sees them *)
  let enc' =
    Qubo.Encode.encode ~num_vars:enc.Qubo.Encode.num_original_vars
      (Array.to_list (Array.sub enc.Qubo.Encode.clauses 0 prefix))
  in
  let obj = Qubo.Encode.objective enc' in
  (Qubo.Pbq.vars obj, Qubo.Pbq.edges obj)

let hyqsat_embeds_and_validates () =
  let r = Testutil.rng 31 in
  let g = G.standard_2000q () in
  List.iter
    (fun m ->
      let n = max 6 (m / 2) in
      let clauses = locality_queue r ~n ~m in
      let enc = encode_queue ~n clauses in
      let res = Hyq.embed g enc in
      Alcotest.(check bool)
        (Printf.sprintf "some clauses embedded (m=%d)" m)
        true (res.Hyq.embedded_clauses > 0);
      let _, edges = problem_graph_of_prefix enc res.Hyq.embedded_clauses in
      (match Embedding.validate res.Hyq.embedding ~edges with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "invalid embedding (m=%d): %s" m e)))
    [ 1; 5; 20; 60 ]

let hyqsat_prefix_monotone () =
  (* a longer queue can only extend the embedded prefix of its own prefix *)
  let r = Testutil.rng 37 in
  let g = G.create ~rows:4 ~cols:4 in
  let n = 12 in
  let clauses = locality_queue r ~n ~m:40 in
  let enc_full = encode_queue ~n clauses in
  let full = (Hyq.embed g enc_full).Hyq.embedded_clauses in
  let shorter =
    (Hyq.embed g (encode_queue ~n (List.filteri (fun i _ -> i < 10) clauses))).Hyq.embedded_clauses
  in
  Alcotest.(check bool) "prefix of prefix" true (full >= min shorter 10 || shorter = 10)

let hyqsat_small_hardware_caps_clauses () =
  let r = Testutil.rng 41 in
  let g = G.create ~rows:2 ~cols:2 in
  (* 8 vertical lines: queues over many variables must be cut off *)
  let clauses = locality_queue r ~n:40 ~m:60 in
  let enc = encode_queue ~n:40 clauses in
  let res = Hyq.embed g enc in
  Alcotest.(check bool) "capped" true (res.Hyq.embedded_clauses < 60);
  let _, edges = problem_graph_of_prefix enc res.Hyq.embedded_clauses in
  match Embedding.validate res.Hyq.embedding ~edges with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let hyqsat_chain_structure () =
  let r = Testutil.rng 43 in
  let g = G.standard_2000q () in
  let clauses = locality_queue r ~n:20 ~m:30 in
  let enc = encode_queue ~n:20 clauses in
  let res = Hyq.embed g enc in
  Alcotest.(check bool) "avg chain >= 1" true (Embedding.avg_chain_length res.Hyq.embedding >= 1.);
  Alcotest.(check bool) "uses fewer qubits than hardware" true
    (Embedding.qubits_used res.Hyq.embedding < G.num_qubits g)

let small_problem_graph r ~nodes ~density =
  let edges = ref [] in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Stats.Rng.float r 1.0 < density then edges := (i, j) :: !edges
    done
  done;
  (List.init nodes Fun.id, !edges)

let minorminer_validates () =
  let r = Testutil.rng 47 in
  let g = G.create ~rows:4 ~cols:4 in
  for seed = 1 to 5 do
    let nodes, edges = small_problem_graph r ~nodes:10 ~density:0.3 in
    match (Mm.embed ~seed g ~nodes ~edges).Mm.embedding with
    | None -> Alcotest.fail "minorminer failed on an easy instance"
    | Some emb -> (
        match Embedding.validate emb ~edges with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
  done

let minorminer_fails_gracefully () =
  (* K9 cannot embed in a single 2x1 Chimera slab (8+8 qubits, treewidth) *)
  let g = G.create ~rows:1 ~cols:1 in
  let nodes = List.init 9 Fun.id in
  let edges = List.concat_map (fun i -> List.init i (fun j -> (j, i))) nodes in
  match (Mm.embed ~max_rounds:4 g ~nodes ~edges).Mm.embedding with
  | None -> ()
  | Some emb -> (
      (* if it claims success it must actually be valid *)
      match Embedding.validate emb ~edges with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("invalid claimed embedding: " ^ e))

let place_route_validates () =
  let r = Testutil.rng 53 in
  let g = G.create ~rows:6 ~cols:6 in
  let nodes, edges = small_problem_graph r ~nodes:8 ~density:0.25 in
  match Pr.embed g ~nodes ~edges with
  | None -> Alcotest.fail "place&route failed on an easy instance"
  | Some emb -> (
      match Embedding.validate emb ~edges with Ok () -> () | Error e -> Alcotest.fail e)

let validate_rejects_broken () =
  let g = G.create ~rows:2 ~cols:2 in
  let emb = Embedding.create g in
  (* disconnected chain: two qubits in different cells, not coupled *)
  Embedding.set_chain emb 0 [ 0; 15 ];
  (match Embedding.validate emb ~edges:[] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "disconnected chain accepted");
  (* overlapping chains *)
  let emb2 = Embedding.create g in
  Embedding.set_chain emb2 0 [ 0 ];
  Embedding.set_chain emb2 1 [ 0 ];
  (match Embedding.validate emb2 ~edges:[] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlap accepted");
  (* missing edge realisation *)
  let emb3 = Embedding.create g in
  Embedding.set_chain emb3 0 [ 0 ];
  Embedding.set_chain emb3 1 [ 1 ];
  (* qubits 0 and 1 are two vertical qubits of one cell: not adjacent *)
  match Embedding.validate emb3 ~edges:[ (0, 1) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unrealised edge accepted"

let embedding_respects_queue_random =
  QCheck.Test.make ~name:"hyqsat embedding always a valid minor" ~count:25
    (QCheck.make
       QCheck.Gen.(
         int_range 5 30 >>= fun m ->
         int_bound 10000 >>= fun seed ->
         return (m, seed)))
    (fun (m, seed) ->
      let r = Testutil.rng seed in
      let n = max 6 (m / 2) in
      let clauses = locality_queue r ~n ~m in
      let enc = encode_queue ~n clauses in
      let g = G.create ~rows:8 ~cols:8 in
      let res = Hyq.embed g enc in
      let _, edges = problem_graph_of_prefix enc res.Hyq.embedded_clauses in
      match Embedding.validate res.Hyq.embedding ~edges with Ok () -> true | Error _ -> false)

let suite =
  [
    ( "embed.hyqsat",
      [
        Alcotest.test_case "embeds and validates" `Quick hyqsat_embeds_and_validates;
        Alcotest.test_case "prefix monotone" `Quick hyqsat_prefix_monotone;
        Alcotest.test_case "small hardware caps clauses" `Quick hyqsat_small_hardware_caps_clauses;
        Alcotest.test_case "chain structure" `Quick hyqsat_chain_structure;
        QCheck_alcotest.to_alcotest embedding_respects_queue_random;
      ] );
    ( "embed.minorminer",
      [
        Alcotest.test_case "validates" `Quick minorminer_validates;
        Alcotest.test_case "fails gracefully" `Quick minorminer_fails_gracefully;
      ] );
    ("embed.place_route", [ Alcotest.test_case "validates" `Quick place_route_validates ]);
    ("embed.validate", [ Alcotest.test_case "rejects broken" `Quick validate_rejects_broken ]);
  ]
