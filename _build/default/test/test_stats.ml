(* Tests for the [stats] library. *)

let rng_determinism () =
  let a = Stats.Rng.create ~seed:1 and b = Stats.Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Stats.Rng.int a 1000) (Stats.Rng.int b 1000)
  done;
  let c = Stats.Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Stats.Rng.int a 1000 <> Stats.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let rng_sample_without_replacement () =
  let r = Stats.Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let s = Stats.Rng.sample_without_replacement r 5 10 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 10)) s
  done

let rng_gaussian_moments () =
  let r = Stats.Rng.create ~seed:4 in
  let xs = Array.init 20000 (fun _ -> Stats.Rng.gaussian r ~mu:3.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean close" true (Float.abs (Stats.Descriptive.mean xs -. 3.0) < 0.1);
  Alcotest.(check bool) "std close" true (Float.abs (Stats.Descriptive.std xs -. 2.0) < 0.1)

let descriptive_basics () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Descriptive.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.Descriptive.median xs);
  Alcotest.(check (float 1e-9)) "variance" 2.0 (Stats.Descriptive.variance xs);
  Alcotest.(check (float 1e-6)) "geomean of powers" 4.0
    (Stats.Descriptive.geomean [| 2.; 8. |]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.Descriptive.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.Descriptive.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.Descriptive.percentile xs 25.)

let descriptive_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  Alcotest.(check (float 1e-9)) "perfect positive" 1.0 (Stats.Descriptive.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  Alcotest.(check (float 1e-9)) "perfect negative" (-1.0) (Stats.Descriptive.correlation xs zs)

let histogram_counts () =
  let xs = [| 0.; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5 |] in
  let h = Stats.Descriptive.histogram ~bins:4 xs in
  Alcotest.(check int) "total preserved" 8 (Array.fold_left ( + ) 0 h.Stats.Descriptive.counts);
  Alcotest.(check int) "bins" 4 (Array.length h.Stats.Descriptive.counts)

let gaussian_pdf_cdf () =
  let g = { Stats.Gaussian.mu = 0.; sigma = 1. } in
  Alcotest.(check (float 1e-4)) "pdf at 0" 0.39894 (Stats.Gaussian.pdf g 0.);
  Alcotest.(check (float 1e-4)) "cdf at 0" 0.5 (Stats.Gaussian.cdf g 0.);
  Alcotest.(check (float 1e-3)) "cdf at 1.96" 0.975 (Stats.Gaussian.cdf g 1.96);
  Alcotest.(check (float 1e-2)) "quantile inverse" 1.96 (Stats.Gaussian.quantile g 0.975)

let gaussian_fit () =
  let r = Stats.Rng.create ~seed:9 in
  let xs = Array.init 20000 (fun _ -> Stats.Rng.gaussian r ~mu:(-1.5) ~sigma:0.7) in
  let g = Stats.Gaussian.fit xs in
  Alcotest.(check bool) "mu" true (Float.abs (g.Stats.Gaussian.mu +. 1.5) < 0.05);
  Alcotest.(check bool) "sigma" true (Float.abs (g.Stats.Gaussian.sigma -. 0.7) < 0.05)

let nb_model () =
  let r = Stats.Rng.create ~seed:10 in
  let sat = Array.init 2000 (fun _ -> Stats.Rng.gaussian r ~mu:2.0 ~sigma:1.0) in
  let unsat = Array.init 2000 (fun _ -> Stats.Rng.gaussian r ~mu:10.0 ~sigma:2.0) in
  let m = Stats.Naive_bayes.fit ~sat ~unsat in
  Alcotest.(check bool) "low energy -> sat" true (Stats.Naive_bayes.predict m 1.0 = `Sat);
  Alcotest.(check bool) "high energy -> unsat" true (Stats.Naive_bayes.predict m 12.0 = `Unsat);
  let acc = Stats.Naive_bayes.accuracy m ~sat ~unsat in
  Alcotest.(check bool) "accuracy high" true (acc > 0.95);
  let p = Stats.Naive_bayes.partition m in
  Alcotest.(check bool) "sat cut below unsat cut" true
    (p.Stats.Naive_bayes.sat_cut <= p.Stats.Naive_bayes.unsat_cut);
  Alcotest.(check bool) "posterior at sat_cut ~confidence" true
    (Stats.Naive_bayes.posterior_sat m p.Stats.Naive_bayes.sat_cut >= 0.88)

let nb_classify_intervals () =
  let m =
    Stats.Naive_bayes.fit
      ~sat:[| 1.0; 2.0; 3.0; 2.5; 1.5 |]
      ~unsat:[| 9.0; 10.0; 11.0; 10.5; 9.5 |]
  in
  let p = Stats.Naive_bayes.partition m in
  Alcotest.(check string) "zero energy" "satisfiable"
    Stats.Naive_bayes.(interval_to_string (classify p 0.0));
  Alcotest.(check string) "far energy" "near-unsatisfiable"
    Stats.Naive_bayes.(interval_to_string (classify p 50.0));
  Alcotest.(check string) "small energy" "near-satisfiable"
    Stats.Naive_bayes.(interval_to_string (classify p 1.0))

let nb_posterior_monotone =
  QCheck.Test.make ~name:"posterior decreases with energy between class means" ~count:50
    QCheck.(pair (float_range 0. 3.) (float_range 0. 3.))
    (fun (a, b) ->
      let m =
        Stats.Naive_bayes.fit
          ~sat:[| a; a +. 1.; a +. 2. |]
          ~unsat:[| b +. 10.; b +. 11.; b +. 12. |]
      in
      let mu_s = m.Stats.Naive_bayes.sat.Stats.Gaussian.mu in
      let mu_u = m.Stats.Naive_bayes.unsat.Stats.Gaussian.mu in
      let e1 = mu_s +. (0.25 *. (mu_u -. mu_s)) in
      let e2 = mu_s +. (0.75 *. (mu_u -. mu_s)) in
      Stats.Naive_bayes.posterior_sat m e1 >= Stats.Naive_bayes.posterior_sat m e2)

let suite =
  [
    ( "stats.rng",
      [
        Alcotest.test_case "determinism" `Quick rng_determinism;
        Alcotest.test_case "sample w/o replacement" `Quick rng_sample_without_replacement;
        Alcotest.test_case "gaussian moments" `Slow rng_gaussian_moments;
      ] );
    ( "stats.descriptive",
      [
        Alcotest.test_case "basics" `Quick descriptive_basics;
        Alcotest.test_case "correlation" `Quick descriptive_correlation;
        Alcotest.test_case "histogram" `Quick histogram_counts;
      ] );
    ( "stats.gaussian",
      [
        Alcotest.test_case "pdf/cdf" `Quick gaussian_pdf_cdf;
        Alcotest.test_case "fit" `Slow gaussian_fit;
      ] );
    ( "stats.naive_bayes",
      [
        Alcotest.test_case "model" `Quick nb_model;
        Alcotest.test_case "intervals" `Quick nb_classify_intervals;
        QCheck_alcotest.to_alcotest nb_posterior_monotone;
      ] );
  ]
