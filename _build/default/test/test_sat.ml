(* Unit and property tests for the [sat] library. *)

let lit_roundtrip () =
  for v = 0 to 20 do
    let p = Sat.Lit.pos v and n = Sat.Lit.neg_of v in
    Alcotest.(check int) "var of pos" v (Sat.Lit.var p);
    Alcotest.(check int) "var of neg" v (Sat.Lit.var n);
    Alcotest.(check bool) "pos sign" true (Sat.Lit.is_pos p);
    Alcotest.(check bool) "neg sign" true (Sat.Lit.is_neg n);
    Alcotest.(check int) "negate pos" n (Sat.Lit.negate p);
    Alcotest.(check int) "negate neg" p (Sat.Lit.negate n);
    Alcotest.(check int) "dimacs roundtrip pos" p (Sat.Lit.of_dimacs (Sat.Lit.to_dimacs p));
    Alcotest.(check int) "dimacs roundtrip neg" n (Sat.Lit.of_dimacs (Sat.Lit.to_dimacs n))
  done

let lit_dimacs_zero () =
  Alcotest.check_raises "zero rejected" (Invalid_argument "Lit.of_dimacs: zero") (fun () ->
      ignore (Sat.Lit.of_dimacs 0))

let clause_normalisation () =
  let c = Sat.Clause.make [ Sat.Lit.pos 2; Sat.Lit.pos 0; Sat.Lit.pos 2; Sat.Lit.neg_of 1 ] in
  Alcotest.(check int) "dedup size" 3 (Sat.Clause.size c);
  Alcotest.(check (list int)) "vars sorted" [ 0; 1; 2 ] (Sat.Clause.vars c)

let clause_tautology () =
  let taut = Sat.Clause.make [ Sat.Lit.pos 0; Sat.Lit.neg_of 0; Sat.Lit.pos 1 ] in
  let plain = Sat.Clause.make [ Sat.Lit.pos 0; Sat.Lit.pos 1 ] in
  Alcotest.(check bool) "tautology" true (Sat.Clause.is_tautology taut);
  Alcotest.(check bool) "not tautology" false (Sat.Clause.is_tautology plain)

let clause_shares_var () =
  let c1 = Sat.Clause.of_dimacs [ 1; -2 ] and c2 = Sat.Clause.of_dimacs [ 2; 3 ] in
  let c3 = Sat.Clause.of_dimacs [ 4; 5 ] in
  Alcotest.(check bool) "shares" true (Sat.Clause.shares_var c1 c2);
  Alcotest.(check bool) "disjoint" false (Sat.Clause.shares_var c1 c3)

let cnf_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cnf.make: literal x5 out of range (num_vars=3)") (fun () ->
      ignore (Sat.Cnf.make ~num_vars:3 [ Sat.Clause.make [ Sat.Lit.pos 5 ] ]))

let cnf_occurrence_lists () =
  let f =
    Sat.Cnf.make ~num_vars:4
      [ Sat.Clause.of_dimacs [ 1; 2 ]; Sat.Clause.of_dimacs [ -2; 3 ]; Sat.Clause.of_dimacs [ 4 ] ]
  in
  Alcotest.(check (list int)) "var 1 occurs in clause 0" [ 0 ] (Sat.Cnf.clauses_of_var f 0);
  Alcotest.(check (list int)) "var 2 occurs in 0,1" [ 0; 1 ] (Sat.Cnf.clauses_of_var f 1);
  Alcotest.(check (list int)) "var 4 occurs in 2" [ 2 ] (Sat.Cnf.clauses_of_var f 3)

let assignment_clause_status () =
  let a = Sat.Assignment.create 3 in
  let c = Sat.Clause.of_dimacs [ 1; 2; 3 ] in
  (match Sat.Assignment.clause_status a c with
  | `Unresolved -> ()
  | _ -> Alcotest.fail "expected unresolved");
  Sat.Assignment.set a 0 false;
  Sat.Assignment.set a 1 false;
  (match Sat.Assignment.clause_status a c with
  | `Unit l -> Alcotest.(check int) "unit literal" (Sat.Lit.pos 2) l
  | _ -> Alcotest.fail "expected unit");
  Sat.Assignment.set a 2 false;
  (match Sat.Assignment.clause_status a c with
  | `Falsified -> ()
  | _ -> Alcotest.fail "expected falsified");
  Sat.Assignment.set a 2 true;
  match Sat.Assignment.clause_status a c with
  | `Satisfied -> ()
  | _ -> Alcotest.fail "expected satisfied"

let dimacs_roundtrip () =
  let r = Testutil.rng 42 in
  for _ = 1 to 20 do
    let f = Testutil.random_cnf r ~n:8 ~m:20 ~k:3 in
    let f' = Sat.Dimacs.parse_string (Sat.Dimacs.to_string f) in
    Alcotest.(check bool) "roundtrip" true (Sat.Cnf.equal f f')
  done

let dimacs_comments_and_layout () =
  let doc = "c a comment\nc another\np cnf 3 2\n1 -2 0\n 3 \n 2 0\n" in
  let f = Sat.Dimacs.parse_string doc in
  Alcotest.(check int) "vars" 3 (Sat.Cnf.num_vars f);
  Alcotest.(check int) "clauses" 2 (Sat.Cnf.num_clauses f)

let dimacs_errors () =
  let bad s = try ignore (Sat.Dimacs.parse_string s); false with Sat.Dimacs.Parse_error _ -> true in
  Alcotest.(check bool) "no header" true (bad "1 2 0");
  Alcotest.(check bool) "bad count" true (bad "p cnf 2 5\n1 0");
  Alcotest.(check bool) "unterminated" true (bad "p cnf 2 1\n1 2");
  Alcotest.(check bool) "var overflow" true (bad "p cnf 1 1\n5 0")

let three_sat_size () =
  let big = Sat.Clause.of_dimacs [ 1; 2; 3; 4; 5; 6 ] in
  let f = Sat.Cnf.make ~num_vars:6 [ big ] in
  let f3, mapping = Sat.Three_sat.convert f in
  Alcotest.(check bool) "is 3sat" true (Sat.Cnf.is_3sat f3);
  Alcotest.(check int) "aux count" 3 mapping.Sat.Three_sat.aux_vars;
  Alcotest.(check int) "aux formula" (Sat.Three_sat.aux_count_for_clause 6)
    mapping.Sat.Three_sat.aux_vars

let three_sat_equisatisfiable =
  QCheck.Test.make ~name:"ksat->3sat preserves satisfiability" ~count:60
    (QCheck.make
       QCheck.Gen.(
         int_range 4 9 >>= fun n ->
         int_range 1 12 >>= fun m ->
         int_bound 100000 >>= fun seed ->
         return
           (let r = Testutil.rng (seed + n + (m * 977)) in
            Sat.Cnf.make ~num_vars:n
              (List.init m (fun _ ->
                   let k = 2 + Stats.Rng.int r 4 in
                   Testutil.random_clause r ~n ~k:(min k n))))))
    (fun f ->
      let f3, _ = Sat.Three_sat.convert f in
      let sat = Sat.Brute.solve f <> None and sat3 = Sat.Brute.solve f3 <> None in
      sat = sat3)

let three_sat_model_projects =
  QCheck.Test.make ~name:"3sat model projects to original model" ~count:40
    Testutil.small_cnf_arb (fun f ->
      let f3, mapping = Sat.Three_sat.convert f in
      match Sat.Brute.solve f3 with
      | None -> true
      | Some m3 ->
          let m = Sat.Three_sat.project_model mapping m3 in
          Testutil.check_model f m)

let brute_simple () =
  let f = Sat.Dimacs.parse_string "p cnf 2 3\n1 2 0\n-1 0\n-1 2 0\n" in
  (match Sat.Brute.solve f with
  | Some m ->
      Alcotest.(check bool) "x1 false" false m.(0);
      Alcotest.(check bool) "x2 true" true m.(1)
  | None -> Alcotest.fail "should be satisfiable");
  let unsat = Sat.Dimacs.parse_string "p cnf 1 2\n1 0\n-1 0\n" in
  Alcotest.(check bool) "unsat" true (Sat.Brute.solve unsat = None);
  Alcotest.(check int) "min unsatisfied" 1 (Sat.Brute.min_unsatisfied unsat)

let brute_count () =
  (* x1 ∨ x2 has 3 models over 2 vars *)
  let f = Sat.Dimacs.parse_string "p cnf 2 1\n1 2 0\n" in
  Alcotest.(check int) "models" 3 (Sat.Brute.count_models f)

let suite =
  [
    ( "sat.lit",
      [
        Alcotest.test_case "roundtrip" `Quick lit_roundtrip;
        Alcotest.test_case "dimacs zero" `Quick lit_dimacs_zero;
      ] );
    ( "sat.clause",
      [
        Alcotest.test_case "normalisation" `Quick clause_normalisation;
        Alcotest.test_case "tautology" `Quick clause_tautology;
        Alcotest.test_case "shares_var" `Quick clause_shares_var;
      ] );
    ( "sat.cnf",
      [
        Alcotest.test_case "bounds" `Quick cnf_bounds;
        Alcotest.test_case "occurrence lists" `Quick cnf_occurrence_lists;
      ] );
    ("sat.assignment", [ Alcotest.test_case "clause status" `Quick assignment_clause_status ]);
    ( "sat.dimacs",
      [
        Alcotest.test_case "roundtrip" `Quick dimacs_roundtrip;
        Alcotest.test_case "comments/layout" `Quick dimacs_comments_and_layout;
        Alcotest.test_case "errors" `Quick dimacs_errors;
      ] );
    ( "sat.three_sat",
      [
        Alcotest.test_case "sizes" `Quick three_sat_size;
        QCheck_alcotest.to_alcotest three_sat_equisatisfiable;
        QCheck_alcotest.to_alcotest three_sat_model_projects;
      ] );
    ( "sat.brute",
      [
        Alcotest.test_case "simple" `Quick brute_simple;
        Alcotest.test_case "count" `Quick brute_count;
      ] );
  ]
