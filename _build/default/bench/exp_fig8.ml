(* Figure 8: energy distribution of satisfiable vs unsatisfiable problems on
   the (simulated) QA hardware, the Gaussian Naive Bayes fit, and the 90%
   confidence-interval cut points.  Paper: cuts at ~4.5 and ~8. *)

let run (ctx : Bench_util.ctx) =
  let problems = match ctx.Bench_util.scale with `Paper -> 200 | `Small -> 40 in
  Bench_util.header "Figure 8 — QA energy distributions + GNB fit"
    "separable classes; 90% confidence cuts near 4.5 (sat) and 8 (unsat)";
  let rng = Bench_util.rng_of ctx 8 in
  let graph = Chimera.Graph.standard_2000q () in
  let calib =
    Hyqsat.Calibration.calibrate ~problems ~noise:Anneal.Noise.default_2000q rng graph
  in
  Printf.printf "satisfiable   energies: n=%-4d %s\n"
    (Array.length calib.Hyqsat.Calibration.sat_energies)
    (Format.asprintf "%a" Stats.Gaussian.pp
       calib.Hyqsat.Calibration.model.Stats.Naive_bayes.sat);
  Printf.printf "unsatisfiable energies: n=%-4d %s\n"
    (Array.length calib.Hyqsat.Calibration.unsat_energies)
    (Format.asprintf "%a" Stats.Gaussian.pp
       calib.Hyqsat.Calibration.model.Stats.Naive_bayes.unsat);
  Printf.printf "confidence cuts: satisfiable <= %.2f < uncertain <= %.2f < unsatisfiable\n"
    calib.Hyqsat.Calibration.partition.Stats.Naive_bayes.sat_cut
    calib.Hyqsat.Calibration.partition.Stats.Naive_bayes.unsat_cut;
  Printf.printf "model accuracy on calibration sample: %.1f%%\n\n"
    (100.
    *. Stats.Naive_bayes.accuracy calib.Hyqsat.Calibration.model
         ~sat:calib.Hyqsat.Calibration.sat_energies
         ~unsat:calib.Hyqsat.Calibration.unsat_energies);
  print_endline "satisfiable-class energy histogram:";
  Format.printf "%a@." Stats.Descriptive.pp_histogram
    (Stats.Descriptive.histogram ~bins:10 calib.Hyqsat.Calibration.sat_energies);
  print_endline "unsatisfiable-class energy histogram:";
  Format.printf "%a@." Stats.Descriptive.pp_histogram
    (Stats.Descriptive.histogram ~bins:10 calib.Hyqsat.Calibration.unsat_energies)
