(* Figure 14: clause-queue generation ablation — the activity-BFS queue vs
   a uniformly random queue, iteration reduction relative to classic CDCL.
   Paper: the activity queue is ~2.77x better on average, more on the
   conflict-heavy second half of the suite. *)

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Figure 14 — activity-BFS clause queue vs random queue"
    "~2.77x better reduction with the activity queue; gap widens on hard benchmarks";
  Printf.printf "%-5s %12s %12s %12s\n" "id" "activity" "random" "advantage";
  Bench_util.hr ();
  let advantages = ref [] in
  List.iter
    (fun spec ->
      let red queue_mode =
        let config = Exp_common.hybrid_config ~queue_mode ctx.Bench_util.seed in
        Bench_util.geomean
          (List.map (fun (_, _, r) -> r) (Exp_common.reductions_for ctx spec ~config))
      in
      let act = red Hyqsat.Frontend.Activity_bfs in
      let rnd = red Hyqsat.Frontend.Random in
      advantages := (act /. rnd) :: !advantages;
      Printf.printf "%-5s %12.2f %12.2f %12.2f\n" spec.Workload.Spec.id act rnd (act /. rnd))
    Workload.Spec.table1;
  Bench_util.hr ();
  Printf.printf "geomean advantage of the activity queue: %.2fx\n"
    (Bench_util.geomean !advantages)
