(* Figure 15: the noise-optimising coefficient adjustment — (a) energy-gap
   increase on random problems, (b) shrink of the uncertain region and GNB
   accuracy gain.  Paper: gap up to 1.8x; uncertainty 28.1% -> 14.0%;
   accuracy 84.76% -> 97.53%.

   The gain regime is mixed-width, moderately-sparse clause sets: 1- and
   2-literal clauses carry small per-clause coefficients (d_sub 0.5 / 1
   against a 3-clause d* of 2), so they are exactly the "weak" sub-clauses
   the adjustment boosts.  Real queue prefixes (circuit benchmarks) are full
   of such clauses. *)

(* a clause set with the paper benchmarks' width mix *)
let mixed_cnf rng ~num_vars ~num_clauses =
  let clause () =
    let width =
      let p = Stats.Rng.float rng 1.0 in
      if p < 0.15 then 1 else if p < 0.55 then 2 else 3
    in
    let vars = Stats.Rng.sample_without_replacement rng (min width num_vars) num_vars in
    Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool rng)) vars)
  in
  Sat.Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let gap_gain (ctx : Bench_util.ctx) salt ~num_vars ~num_clauses =
  let rng = Bench_util.rng_of ctx (1500 + salt) in
  let f = mixed_cnf rng ~num_vars ~num_clauses in
  let enc = Qubo.Encode.encode ~num_vars (Sat.Cnf.clauses f) in
  match Qubo.Gap.energy_gap enc with
  | before when before > 1e-9 ->
      Qubo.Adjust.adjust enc;
      let after = Qubo.Gap.energy_gap enc in
      Some (before, after)
  | _ -> None
  | exception Invalid_argument _ -> None

(* "uncertain" sample: neither class reaches 90% posterior — the paper's
   uncertainty-interval share, robust to a degenerate partition *)
let uncertain_share model samples =
  let uncertain =
    List.length
      (List.filter
         (fun e ->
           let p = Stats.Naive_bayes.posterior_sat model e in
           p > 0.1 && p < 0.9)
         samples)
  in
  100. *. float_of_int uncertain /. float_of_int (max 1 (List.length samples))

let run (ctx : Bench_util.ctx) =
  let gap_problems, cal_problems =
    match ctx.Bench_util.scale with `Paper -> (60, 100) | `Small -> (20, 30)
  in
  Bench_util.header "Figure 15 — noise-optimising coefficient adjustment"
    "energy gap up to 1.8x; uncertain region 28.1% -> 14.0%; GNB accuracy 84.76% -> 97.53%";
  (* (a) energy gap before/after, exhaustive on small mixed-width instances *)
  List.iter
    (fun (nv, nc) ->
      let gains = ref [] in
      for s = 1 to gap_problems do
        match gap_gain ctx ((nv * 1000) + s) ~num_vars:nv ~num_clauses:nc with
        | Some (before, after) -> gains := (after /. before) :: !gains
        | None -> ()
      done;
      if !gains <> [] then
        Printf.printf "gap gain (%2d vars, %3d clauses): avg %.2fx  max %.2fx  (n=%d)\n" nv nc
          (Bench_util.mean !gains) (Bench_util.fmax !gains) (List.length !gains))
    [ (12, 18); (15, 28); (18, 40) ];
  (* (b) GNB accuracy and uncertain-sample share, calibrated with and
     without the adjustment *)
  print_newline ();
  let measure adjust salt =
    let rng = Bench_util.rng_of ctx (1510 + salt) in
    let graph = Chimera.Graph.standard_2000q () in
    let calib = Hyqsat.Calibration.calibrate ~problems:cal_problems ~adjust rng graph in
    let samples =
      Array.to_list calib.Hyqsat.Calibration.sat_energies
      @ Array.to_list calib.Hyqsat.Calibration.unsat_energies
    in
    ( uncertain_share calib.Hyqsat.Calibration.model samples,
      100.
      *. Stats.Naive_bayes.accuracy calib.Hyqsat.Calibration.model
           ~sat:calib.Hyqsat.Calibration.sat_energies
           ~unsat:calib.Hyqsat.Calibration.unsat_energies )
  in
  let u0, a0 = measure false 0 in
  let u1, a1 = measure true 1 in
  Printf.printf "uncertain sample share: %5.1f%% -> %5.1f%% (with adjustment)\n" u0 u1;
  Printf.printf "GNB accuracy:           %5.1f%% -> %5.1f%% (with adjustment)\n" a0 a1
