(* Figure 12: relationship between problem difficulty and speedup —
   (a) speedup vs the conflict proportion of the classical search,
   (b) speedup vs the classical solve time.  Paper: both positively
   correlated; benchmarks with low conflict proportion (II) gain < 1x. *)

module Hybrid = Hyqsat.Hybrid_solver

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Figure 12 — difficulty vs speedup"
    "speedup grows with conflict proportion and with classical solve time";
  Printf.printf "%-5s %12s %14s %10s\n" "id" "conflict%" "classic(ms)" "reduction";
  Bench_util.hr ();
  let rows = ref [] in
  List.iter
    (fun spec ->
      let config = Exp_common.hybrid_config ctx.Bench_util.seed in
      let runs = Exp_common.reductions_for ctx spec ~config in
      let conflict_prop =
        Bench_util.mean
          (List.map
             (fun (c, _, _) ->
               Bench_util.ratio c.Hybrid.solver_stats.Cdcl.Solver.conflicts
                 c.Hybrid.iterations)
             runs)
      in
      let classic_ms =
        Bench_util.mean (List.map (fun (c, _, _) -> c.Hybrid.cdcl_time_s *. 1e3) runs)
      in
      let red = Bench_util.geomean (List.map (fun (_, _, r) -> r) runs) in
      rows := (conflict_prop, classic_ms, red) :: !rows;
      Printf.printf "%-5s %11.1f%% %14.3f %10.2f\n" spec.Workload.Spec.id
        (100. *. conflict_prop) classic_ms red)
    Workload.Spec.table1;
  let xs sel = Array.of_list (List.map sel !rows) in
  Bench_util.hr ();
  Printf.printf "correlation(conflict proportion, log reduction) = %+.2f\n"
    (Stats.Descriptive.correlation
       (xs (fun (c, _, _) -> c))
       (xs (fun (_, _, r) -> log r)));
  Printf.printf "correlation(log classic time,   log reduction) = %+.2f\n"
    (Stats.Descriptive.correlation
       (xs (fun (_, t, _) -> log (Float.max 1e-6 t)))
       (xs (fun (_, _, r) -> log r)))
