(* Table I: iteration counts of classic CDCL vs HyQSAT (noise-free
   simulator) over the 14-benchmark suite, with avg/geomean/max/min
   reduction.  Paper: every benchmark improves; average reduction 14.11x,
   geomean 7.56x, with CFA peaking at 329x. *)

module Hybrid = Hyqsat.Hybrid_solver

let run (ctx : Bench_util.ctx) =
  Bench_util.header "Table I — iteration reduction (noise-free simulator)"
    "avg reduction 14.11x / geomean 7.56x over 14 benchmarks; biggest on conflict-heavy instances";
  Printf.printf "%-5s %-24s %9s %9s %7s %7s %7s %7s\n" "id" "benchmark" "CDCL#it" "HyQ#it"
    "avg" "geo" "max" "min";
  Bench_util.hr ();
  let all_avg = ref [] and all_geo = ref [] and all_max = ref [] and all_min = ref [] in
  List.iter
    (fun spec ->
      let config = Exp_common.hybrid_config ctx.Bench_util.seed in
      let runs = Exp_common.reductions_for ctx spec ~config in
      let reds = List.map (fun (_, _, r) -> r) runs in
      let c_mean =
        Bench_util.mean (List.map (fun (c, _, _) -> float_of_int c.Hybrid.iterations) runs)
      in
      let h_mean =
        Bench_util.mean (List.map (fun (_, h, _) -> float_of_int h.Hybrid.iterations) runs)
      in
      let avg = Bench_util.mean reds
      and geo = Bench_util.geomean reds
      and mx = Bench_util.fmax reds
      and mn = Bench_util.fmin reds in
      all_avg := avg :: !all_avg;
      all_geo := geo :: !all_geo;
      all_max := mx :: !all_max;
      all_min := mn :: !all_min;
      Printf.printf "%-5s %-24s %9.0f %9.0f %7.2f %7.2f %7.2f %7.2f\n" spec.Workload.Spec.id
        spec.Workload.Spec.name c_mean h_mean avg geo mx mn)
    Workload.Spec.table1;
  Bench_util.hr ();
  Printf.printf "%-5s %-24s %9s %9s %7.2f %7.2f %7.2f %7.2f\n" "" "Average" "" ""
    (Bench_util.mean !all_avg) (Bench_util.mean !all_geo) (Bench_util.mean !all_max)
    (Bench_util.mean !all_min)
