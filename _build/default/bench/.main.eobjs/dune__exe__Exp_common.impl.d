bench/exp_common.ml: Anneal Bench_util Cdcl Chimera Hashtbl Hyqsat List Workload
