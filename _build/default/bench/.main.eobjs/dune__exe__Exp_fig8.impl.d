bench/exp_fig8.ml: Anneal Array Bench_util Chimera Format Hyqsat Printf Stats
