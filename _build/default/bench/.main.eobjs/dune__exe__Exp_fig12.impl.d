bench/exp_fig12.ml: Array Bench_util Cdcl Exp_common Float Hyqsat List Printf Stats Workload
