bench/exp_table3.ml: Anneal Bench_util Exp_common Hashtbl Hyqsat List Printf Workload
