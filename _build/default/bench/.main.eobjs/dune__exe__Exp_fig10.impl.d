bench/exp_fig10.ml: Bench_util Exp_common Hyqsat List Printf Workload
