bench/main.mli:
