bench/exp_fig5.ml: Array Bench_util Cdcl Printf Sat Workload
