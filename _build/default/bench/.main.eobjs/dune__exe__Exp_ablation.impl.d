bench/exp_ablation.ml: Anneal Bench_util Exp_common Hashtbl Hyqsat List Printf Workload
