bench/exp_fig11.ml: Anneal Bench_util Exp_common Float Hyqsat List Printf Workload
