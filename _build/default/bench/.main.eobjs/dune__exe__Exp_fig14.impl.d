bench/exp_fig14.ml: Bench_util Exp_common Hyqsat List Printf Workload
