bench/exp_table1.ml: Bench_util Exp_common Hyqsat List Printf Workload
