bench/exp_fig15.ml: Array Bench_util Chimera Hyqsat List Printf Qubo Sat Stats
