bench/main.ml: Arg Bench_util Cmd Cmdliner Exp_ablation Exp_fig1 Exp_fig10 Exp_fig11 Exp_fig12 Exp_fig13 Exp_fig14 Exp_fig15 Exp_fig5 Exp_fig8 Exp_table1 Exp_table2 Exp_table3 List Printf String Term
