bench/bench_util.ml: Analyze Array Bechamel Benchmark Cdcl Float Hashtbl Printf Staged Stats String Test Time Toolkit Unix Workload
