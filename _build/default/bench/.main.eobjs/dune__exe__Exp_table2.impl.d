bench/exp_table2.ml: Anneal Bench_util Cdcl Exp_common Hyqsat List Printf Workload
