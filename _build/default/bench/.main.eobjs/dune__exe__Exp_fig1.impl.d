bench/exp_fig1.ml: Anneal Bench_util Chimera Embed Hyqsat Printf Qubo Sat Workload
