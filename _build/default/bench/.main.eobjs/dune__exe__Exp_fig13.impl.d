bench/exp_fig13.ml: Bench_util Chimera Embed Float Hyqsat List Printf Qubo Sat Workload
