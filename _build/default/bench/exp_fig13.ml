(* Figure 13: embedding efficiency of the HyQSAT scheme vs the
   Minorminer-like and place-and-route baselines — (a) embedding time,
   (b) success rate, (c) average chain length, as functions of the number of
   embedded clauses.  Paper: HyQSAT is ~1e5-1e6x faster, capacity ~170
   clauses vs 180 (Minorminer) and 120 (P&R), chains ~1.59x longer. *)

let queue_for (ctx : Bench_util.ctx) salt k_clauses =
  let rng = Bench_util.rng_of ctx (1300 + salt) in
  let f = Workload.Uniform.uf rng 200 in
  let queue =
    Hyqsat.Clause_queue.generate rng f ~activity:(fun _ -> 1.0) ~limit:k_clauses
      ~var_budget:64
  in
  List.filteri (fun i _ -> i < k_clauses) (List.map (Sat.Cnf.clause f) queue)

let run (ctx : Bench_util.ctx) =
  let n_queues, sizes =
    match ctx.Bench_util.scale with
    | `Paper -> (20, [ 10; 20; 40; 60; 80; 120; 170; 250 ])
    | `Small -> (5, [ 5; 10; 20; 40; 60 ])
  in
  Bench_util.header "Figure 13 — embedding time / success rate / chain length"
    "HyQSAT ~1e5-1e6x faster; capacities ~170 (HyQSAT) / 180 (Minorminer) / 120 (P&R); chains ~1.59x longer";
  Printf.printf "%-9s | %-25s | %-25s | %-25s\n" "" "hyqsat" "minorminer-like" "place&route";
  Printf.printf "%-9s | %8s %7s %7s | %8s %7s %7s | %8s %7s %7s\n" "#clauses" "time" "succ%"
    "chain" "time" "succ%" "chain" "time" "succ%" "chain";
  Bench_util.hr ();
  let graph = Chimera.Graph.standard_2000q () in
  List.iter
    (fun k ->
      let hy_t = ref [] and hy_s = ref 0 and hy_c = ref [] in
      let mm_t = ref [] and mm_s = ref 0 and mm_c = ref [] in
      let pr_t = ref [] and pr_s = ref 0 and pr_c = ref [] in
      for q = 1 to n_queues do
        let clauses = queue_for ctx ((k * 100) + q) k in
        if List.length clauses >= k then begin
          let enc = Qubo.Encode.encode ~num_vars:200 clauses in
          (* hyqsat: microsecond-scale, measured with bechamel *)
          let ns =
            Bench_util.bechamel_ns ~quota_s:0.1
              (Printf.sprintf "hyqsat-embed-%d-%d" k q)
              (fun () -> Embed.Hyqsat_scheme.embed graph enc)
          in
          let res = Embed.Hyqsat_scheme.embed graph enc in
          hy_t := (ns /. 1e3) :: !hy_t;
          if res.Embed.Hyqsat_scheme.embedded_clauses >= k then begin
            incr hy_s;
            hy_c := Embed.Embedding.avg_chain_length res.Embed.Hyqsat_scheme.embedding :: !hy_c
          end;
          (* baselines work on the problem graph *)
          let obj = Qubo.Encode.objective enc in
          let nodes = Qubo.Pbq.vars obj and edges = Qubo.Pbq.edges obj in
          let mm, mm_time =
            Bench_util.wall (fun () ->
                Embed.Minorminer_like.embed ~seed:q ~max_rounds:8 ~timeout_s:30. graph ~nodes
                  ~edges)
          in
          mm_t := (mm_time *. 1e6) :: !mm_t;
          (match mm.Embed.Minorminer_like.embedding with
          | Some emb ->
              incr mm_s;
              mm_c := Embed.Embedding.avg_chain_length emb :: !mm_c
          | None -> ());
          let pr, pr_time =
            Bench_util.wall (fun () ->
                Embed.Place_route.embed ~seed:q ~timeout_s:30. graph ~nodes ~edges)
          in
          pr_t := (pr_time *. 1e6) :: !pr_t;
          match pr with
          | Some emb ->
              incr pr_s;
              pr_c := Embed.Embedding.avg_chain_length emb :: !pr_c
          | None -> ()
        end
      done;
      let pct s = 100. *. float_of_int !s /. float_of_int n_queues in
      let mean_or l = if l = [] then Float.nan else Bench_util.mean l in
      Printf.printf
        "%9d | %7.1fus %6.0f%% %7.2f | %7.0fus %6.0f%% %7.2f | %7.0fus %6.0f%% %7.2f\n" k
        (mean_or !hy_t) (pct hy_s) (mean_or !hy_c) (mean_or !mm_t) (pct mm_s) (mean_or !mm_c)
        (mean_or !pr_t) (pct pr_s) (mean_or !pr_c))
    sizes
