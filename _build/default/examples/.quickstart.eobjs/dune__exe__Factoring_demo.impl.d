examples/factoring_demo.ml: Array Cdcl Format Hyqsat Sat Workload
