examples/quickstart.mli:
