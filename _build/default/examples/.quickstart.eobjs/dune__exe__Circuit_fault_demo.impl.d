examples/circuit_fault_demo.ml: Array Cdcl Format Hyqsat Sat Stats Workload
