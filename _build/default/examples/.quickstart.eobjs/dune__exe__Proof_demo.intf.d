examples/proof_demo.mli:
