examples/graph_coloring_demo.ml: Array Cdcl Format Hyqsat Sat Stats String Workload
