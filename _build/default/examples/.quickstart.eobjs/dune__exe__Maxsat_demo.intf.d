examples/maxsat_demo.mli:
