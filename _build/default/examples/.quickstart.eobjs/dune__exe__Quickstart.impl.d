examples/quickstart.ml: Anneal Array Cdcl Chimera Embed Format Hyqsat Qubo Sat Stats
