examples/graph_coloring_demo.mli:
