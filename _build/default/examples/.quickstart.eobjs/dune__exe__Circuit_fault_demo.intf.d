examples/circuit_fault_demo.mli:
