examples/maxsat_demo.ml: Anneal Chimera Format Hyqsat Sat Stats Workload
