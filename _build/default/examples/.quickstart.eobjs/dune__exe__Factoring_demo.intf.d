examples/factoring_demo.mli:
