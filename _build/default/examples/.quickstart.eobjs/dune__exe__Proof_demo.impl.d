examples/proof_demo.ml: Cdcl Format List Sat Stats String Workload
