(* MAX-SAT through the annealing stack: compare the annealer's approximate
   optimum against local search and the exact cardinality-based solver on an
   over-constrained formula.

   Run with: dune exec examples/maxsat_demo.exe *)

let () =
  let rng = Stats.Rng.create ~seed:7 in
  (* ratio ~8 random 3-SAT: far past the phase transition, so a few clauses
     must stay violated *)
  let f = Workload.Uniform.generate ~planted:false rng ~num_vars:14 ~num_clauses:110 in
  Format.printf "over-constrained 3-SAT: %d vars, %d clauses (ratio %.1f)@."
    (Sat.Cnf.num_vars f) (Sat.Cnf.num_clauses f) (Sat.Cnf.clause_to_var_ratio f);

  (match Hyqsat.Maxsat.exact f with
  | Some r -> Format.printf "exact optimum:        %d violated clauses@." r.Hyqsat.Maxsat.violated
  | None -> Format.printf "exact solver hit its budget@.");

  let graph = Chimera.Graph.standard_2000q () in
  (match Hyqsat.Maxsat.approximate ~samples:10 rng graph f with
  | Some r ->
      Format.printf "quantum annealer:     %d violated (best of 10 cycles, ~%.1f ms of QA time)@."
        r.Hyqsat.Maxsat.violated
        (10. *. Anneal.Timing.single_sample_us Anneal.Timing.d_wave_2000q /. 1000.)
  | None -> Format.printf "annealer: nothing embedded@.");

  let ls = Hyqsat.Maxsat.local_search rng f in
  Format.printf "classical local search: %d violated@." ls.Hyqsat.Maxsat.violated
