(* hyqsat-gen: emit benchmark instances from the paper's Table I suite as
   DIMACS files. *)

let generate bench scale seed output =
  match
    List.find_opt (fun s -> String.lowercase_ascii s.Workload.Spec.id = String.lowercase_ascii bench)
      Workload.Spec.table1
  with
  | None ->
      Printf.eprintf "unknown benchmark %S; available: %s\n" bench
        (String.concat ", " (List.map (fun s -> s.Workload.Spec.id) Workload.Spec.table1));
      1
  | Some spec ->
      let rng = Stats.Rng.create ~seed in
      let f = spec.Workload.Spec.generate rng scale in
      let comments =
        [
          Printf.sprintf "benchmark %s (%s) from domain %s" spec.Workload.Spec.id
            spec.Workload.Spec.name spec.Workload.Spec.domain;
          Printf.sprintf "scale=%s seed=%d" (match scale with `Small -> "small" | `Paper -> "paper") seed;
        ]
      in
      (match output with
      | Some path ->
          Sat.Dimacs.write_file ~comments path f;
          Printf.printf "wrote %s: %d vars, %d clauses\n" path (Sat.Cnf.num_vars f)
            (Sat.Cnf.num_clauses f)
      | None -> print_string (Sat.Dimacs.to_string ~comments f));
      0

open Cmdliner

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"Benchmark id (GC1..AI5; see Table I).")

let scale_arg =
  Arg.(
    value
    & opt (enum [ ("small", `Small); ("paper", `Paper) ]) `Small
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Instance scale: $(b,small) or $(b,paper).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")

let cmd =
  let doc = "generate HyQSAT benchmark instances (Table I families)" in
  Cmd.v (Cmd.info "hyqsat-gen" ~doc)
    Term.(const generate $ bench_arg $ scale_arg $ seed_arg $ output_arg)

let () = exit (Cmd.eval' cmd)
