(* hyqsat: solve DIMACS CNF files with the hybrid QA+CDCL solver or the
   classical baselines. *)

let solve_file path solver_kind noisy grid seed verbose =
  let f = Sat.Dimacs.parse_file path in
  let f =
    if Sat.Cnf.is_3sat f then f
    else begin
      Printf.eprintf "note: converting %d-SAT input to 3-SAT\n%!" (Sat.Cnf.max_clause_size f);
      fst (Sat.Three_sat.convert f)
    end
  in
  let report =
    match solver_kind with
    | `Hybrid ->
        let base = if noisy then Hyqsat.Hybrid_solver.noisy_config else Hyqsat.Hybrid_solver.default_config in
        let config =
          {
            base with
            Hyqsat.Hybrid_solver.graph = Chimera.Graph.create ~rows:grid ~cols:grid;
            seed;
          }
        in
        Hyqsat.Hybrid_solver.solve ~config f
    | `Minisat ->
        Hyqsat.Hybrid_solver.solve_classic ~config:(Cdcl.Config.with_seed seed Cdcl.Config.minisat_like) f
    | `Kissat ->
        Hyqsat.Hybrid_solver.solve_classic ~config:(Cdcl.Config.with_seed seed Cdcl.Config.kissat_like) f
  in
  (match report.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat model ->
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      Array.iteri
        (fun v b -> Buffer.add_string buf (Printf.sprintf " %d" (if b then v + 1 else -(v + 1))))
        model;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf)
  | Cdcl.Solver.Unsat -> print_endline "s UNSATISFIABLE"
  | Cdcl.Solver.Unknown -> print_endline "s UNKNOWN");
  if verbose then begin
    let st = report.Hyqsat.Hybrid_solver.solver_stats in
    Printf.printf "c iterations        %d\n" report.Hyqsat.Hybrid_solver.iterations;
    Printf.printf "c decisions         %d\n" st.Cdcl.Solver.decisions;
    Printf.printf "c conflicts         %d\n" st.Cdcl.Solver.conflicts;
    Printf.printf "c propagations      %d\n" st.Cdcl.Solver.propagations;
    Printf.printf "c restarts          %d\n" st.Cdcl.Solver.restarts;
    Printf.printf "c learnt clauses    %d\n" st.Cdcl.Solver.learnt_clauses;
    Printf.printf "c qa calls          %d\n" report.Hyqsat.Hybrid_solver.qa_calls;
    Printf.printf "c qa time           %.1f us\n" report.Hyqsat.Hybrid_solver.qa_time_us;
    Printf.printf "c strategy uses     s1=%d s2=%d s3=%d s4=%d\n"
      report.Hyqsat.Hybrid_solver.strategy_uses.(0)
      report.Hyqsat.Hybrid_solver.strategy_uses.(1)
      report.Hyqsat.Hybrid_solver.strategy_uses.(2)
      report.Hyqsat.Hybrid_solver.strategy_uses.(3);
    Printf.printf "c end-to-end time   %.3f ms\n"
      (Hyqsat.Hybrid_solver.end_to_end_time_s report *. 1000.)
  end;
  match report.Hyqsat.Hybrid_solver.result with
  | Cdcl.Solver.Sat _ -> 10
  | Cdcl.Solver.Unsat -> 20
  | Cdcl.Solver.Unknown -> 0

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DIMACS CNF input file.")

let solver_arg =
  let kinds = [ ("hybrid", `Hybrid); ("minisat", `Minisat); ("kissat", `Kissat) ] in
  Arg.(
    value
    & opt (enum kinds) `Hybrid
    & info [ "s"; "solver" ] ~docv:"KIND"
        ~doc:"Solver: $(b,hybrid) (QA+CDCL), $(b,minisat) or $(b,kissat) baselines.")

let noisy_arg =
  Arg.(value & flag & info [ "noisy" ] ~doc:"Use the D-Wave 2000Q noise model instead of the noise-free simulator.")

let grid_arg =
  Arg.(value & opt int 16 & info [ "grid" ] ~docv:"N" ~doc:"Chimera grid size (N×N cells; 16 = D-Wave 2000Q).")

let seed_arg = Arg.(value & opt int 20230225 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print solver statistics.")

let cmd =
  let doc = "hybrid quantum-annealer + CDCL 3-SAT solver (HyQSAT, HPCA'23)" in
  Cmd.v
    (Cmd.info "hyqsat" ~doc)
    Term.(const solve_file $ path_arg $ solver_arg $ noisy_arg $ grid_arg $ seed_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
