type t = {
  graph : Chimera.Graph.t;
  chains : (int, int list) Hashtbl.t;
  edge_couplers : (int * int, int * int) Hashtbl.t;
}

let create graph = { graph; chains = Hashtbl.create 64; edge_couplers = Hashtbl.create 64 }

let nodes t = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.chains [])
let chain t node = Hashtbl.find_opt t.chains node
let set_chain t node qubits = Hashtbl.replace t.chains node (List.sort_uniq Int.compare qubits)

let norm i j qi qj = if i < j then ((i, j), (qi, qj)) else ((j, i), (qj, qi))

let set_edge_coupler t i j (qi, qj) =
  let key, v = norm i j qi qj in
  Hashtbl.replace t.edge_couplers key v

let edge_coupler t i j =
  let key = if i < j then (i, j) else (j, i) in
  Hashtbl.find_opt t.edge_couplers key

let qubits_used t = Hashtbl.fold (fun _ c acc -> acc + List.length c) t.chains 0
let chain_lengths t = Hashtbl.fold (fun _ c acc -> List.length c :: acc) t.chains []

let avg_chain_length t =
  let ls = chain_lengths t in
  if ls = [] then 0.
  else float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls)

let max_chain_length t = List.fold_left max 0 (chain_lengths t)

let chain_connected graph qubits =
  match qubits with
  | [] -> false
  | root :: _ ->
      let members = Hashtbl.create 8 in
      List.iter (fun q -> Hashtbl.replace members q ()) qubits;
      let visited = Hashtbl.create 8 in
      let rec dfs q =
        if not (Hashtbl.mem visited q) then begin
          Hashtbl.replace visited q ();
          List.iter
            (fun nb -> if Hashtbl.mem members nb then dfs nb)
            (Chimera.Graph.neighbors graph q)
        end
      in
      dfs root;
      Hashtbl.length visited = List.length qubits

let validate t ~edges =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    (* chains non-empty, disjoint, connected *)
    let owner = Hashtbl.create 64 in
    Hashtbl.iter
      (fun node qubits ->
        if qubits = [] then raise (Bad (Printf.sprintf "node %d has empty chain" node));
        List.iter
          (fun q ->
            match Hashtbl.find_opt owner q with
            | Some other ->
                raise (Bad (Printf.sprintf "qubit %d in chains of %d and %d" q other node))
            | None -> Hashtbl.replace owner q node)
          qubits;
        if not (chain_connected t.graph qubits) then
          raise (Bad (Printf.sprintf "chain of node %d not connected" node)))
      t.chains;
    (* every edge realised *)
    List.iter
      (fun (i, j) ->
        let ci = Hashtbl.find_opt t.chains i and cj = Hashtbl.find_opt t.chains j in
        match (ci, cj) with
        | None, _ -> raise (Bad (Printf.sprintf "edge (%d,%d): node %d unembedded" i j i))
        | _, None -> raise (Bad (Printf.sprintf "edge (%d,%d): node %d unembedded" i j j))
        | Some ci, Some cj -> (
            match edge_coupler t i j with
            | Some (qi, qj) ->
                if not (List.mem qi ci) then
                  raise (Bad (Printf.sprintf "edge (%d,%d): %d not in chain of %d" i j qi i));
                if not (List.mem qj cj) then
                  raise (Bad (Printf.sprintf "edge (%d,%d): %d not in chain of %d" i j qj j));
                if not (Chimera.Graph.adjacent t.graph qi qj) then
                  raise (Bad (Printf.sprintf "edge (%d,%d): %d-%d not a coupler" i j qi qj))
            | None ->
                let ok =
                  List.exists
                    (fun qi -> List.exists (fun qj -> Chimera.Graph.adjacent t.graph qi qj) cj)
                    ci
                in
                if not ok then
                  raise (Bad (Printf.sprintf "edge (%d,%d): no coupler between chains" i j))))
      edges;
    Ok ()
  with Bad s -> err "%s" s
