(** Minorminer-style iterative minor embedding (baseline, paper [11]).

    A simplified reimplementation of the Cai–Macready–Roy heuristic: nodes
    are embedded one at a time by growing a chain from Dijkstra shortest
    paths to the already-embedded neighbour chains, with occupied qubits
    heavily penalised; full rounds of re-embedding repair overlaps.  The
    iterative routing is what gives the polynomial runtime the paper's
    Fig. 13(a) contrasts with HyQSAT's linear scheme. *)

type outcome = { embedding : Embedding.t option; rounds_used : int }

val embed :
  ?seed:int ->
  ?max_rounds:int ->
  ?timeout_s:float ->
  Chimera.Graph.t ->
  nodes:int list ->
  edges:(int * int) list ->
  outcome
(** [embed g ~nodes ~edges] returns a valid embedding or [None] on failure
    (overlaps not resolved within [max_rounds] (default 16) or [timeout_s]
    (default 300 s, the paper's Fig. 13 timeout) exceeded). *)
