type outcome = { embedding : Embedding.t option; rounds_used : int }

(* occupancy-penalised qubit entry cost: free qubits cost 1, every extra
   chain already on the qubit multiplies the cost, pushing routes apart *)
let entry_cost occupancy q =
  let occ = occupancy.(q) in
  if occ = 0 then 1.0 else 16.0 ** float_of_int occ

let neighbors_of edges =
  let tbl = Hashtbl.create 64 in
  let add a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
    if not (List.mem b cur) then Hashtbl.replace tbl a (b :: cur)
  in
  List.iter
    (fun (a, b) ->
      add a b;
      add b a)
    edges;
  tbl

let embed ?(seed = 7) ?(max_rounds = 16) ?(timeout_s = 300.) g ~nodes ~edges =
  let rng = Stats.Rng.create ~seed in
  let t0 = Sys.time () in
  let nq = Chimera.Graph.num_qubits g in
  let occupancy = Array.make nq 0 in
  let chains : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let nbrs = neighbors_of edges in
  let claim q = occupancy.(q) <- occupancy.(q) + 1 in
  let release q = occupancy.(q) <- occupancy.(q) - 1 in
  let set_chain node qubits =
    (match Hashtbl.find_opt chains node with
    | Some old -> List.iter release old
    | None -> ());
    Hashtbl.replace chains node qubits;
    List.iter claim qubits
  in
  (* (re-)embed one node against the current chains of its neighbours *)
  let embed_node node =
    (match Hashtbl.find_opt chains node with
    | Some old ->
        List.iter release old;
        Hashtbl.remove chains node
    | None -> ());
    let embedded_nbrs =
      List.filter_map
        (fun v -> Option.map (fun c -> (v, c)) (Hashtbl.find_opt chains v))
        (Option.value ~default:[] (Hashtbl.find_opt nbrs node))
    in
    if embedded_nbrs = [] then begin
      (* seed somewhere empty-ish *)
      let q = ref (Stats.Rng.int rng nq) in
      let tries = ref 0 in
      while occupancy.(!q) > 0 && !tries < 64 do
        q := Stats.Rng.int rng nq;
        incr tries
      done;
      set_chain node [ !q ]
    end
    else begin
      let runs =
        List.map
          (fun (_, c) -> Route.dijkstra g ~cost:(entry_cost occupancy) ~sources:c)
          embedded_nbrs
      in
      (* root minimising the total distance to every neighbour chain *)
      let best_root = ref (-1) and best_cost = ref infinity in
      for q = 0 to nq - 1 do
        let total =
          List.fold_left (fun acc (dist, _) -> acc +. dist.(q)) (entry_cost occupancy q) runs
        in
        if total < !best_cost then begin
          best_cost := total;
          best_root := q
        end
      done;
      if !best_root < 0 || !best_cost = infinity then ()
      else begin
        let chain = ref [ !best_root ] in
        List.iter
          (fun (_, parent) ->
            (* path from the root back into the neighbour chain; the last
               element lies in the neighbour chain and is not claimed *)
            let path = Route.walk_back ~parent !best_root in
            let path = List.rev path in
            match path with
            | [] -> ()
            | _ :: interior -> chain := interior @ !chain)
          runs;
        set_chain node (List.sort_uniq Int.compare !chain)
      end
    end
  in
  let order = Array.of_list nodes in
  Stats.Rng.shuffle rng order;
  let overlaps () = Array.exists (fun o -> o > 1) occupancy in
  let all_embedded () = List.for_all (Hashtbl.mem chains) nodes in
  let rounds = ref 0 in
  let timed_out = ref false in
  while
    (!rounds = 0 || overlaps () || not (all_embedded ()))
    && !rounds < max_rounds
    && not !timed_out
  do
    incr rounds;
    Array.iter
      (fun node ->
        if Sys.time () -. t0 > timeout_s then timed_out := true else embed_node node)
      order
  done;
  if !timed_out || overlaps () || not (all_embedded ()) then
    { embedding = None; rounds_used = !rounds }
  else begin
    let emb = Embedding.create g in
    Hashtbl.iter (fun node c -> Embedding.set_chain emb node c) chains;
    (* register a physical coupler per problem edge *)
    let ok = ref true in
    List.iter
      (fun (i, j) ->
        let ci = Option.value ~default:[] (Hashtbl.find_opt chains i) in
        let cj = Option.value ~default:[] (Hashtbl.find_opt chains j) in
        let found = ref false in
        List.iter
          (fun qi ->
            List.iter
              (fun qj ->
                if (not !found) && Chimera.Graph.adjacent g qi qj then begin
                  found := true;
                  Embedding.set_edge_coupler emb i j (qi, qj)
                end)
              cj)
          ci;
        if not !found then ok := false)
      edges;
    { embedding = (if !ok then Some emb else None); rounds_used = !rounds }
  end
