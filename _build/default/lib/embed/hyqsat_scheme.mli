(** HyQSAT's linear-time topology-aware embedding (paper §IV-B, Fig. 7).

    Clauses are consumed in queue order.  Step 1 allocates each new SAT
    variable to the next free {e vertical line}.  Step 2 satisfies the
    connection-requirement list (CRL) by placing one horizontal-line segment
    per requirement: a variable-keyed requirement [x:{y,…}] gets a segment
    spanning from x's own column across its targets' columns; an
    auxiliary-keyed requirement gets a segment across its three targets
    (auxiliaries live on horizontal lines only).  Horizontal lines fill
    bottom-up, greedily and out of order, so a line's leftover qubits can
    host later short segments.

    The construction is transactional per clause: if a clause's variables or
    segments do not fit, the clause (and everything after it) is left out
    and the embedding of the preceding prefix stands — this is what bounds
    the QA capacity at roughly 170 clauses on the 16×16 graph.

    Complexity is linear in hardware size: each vertical line is assigned
    once and each horizontal qubit is claimed at most once. *)

type t = {
  embedding : Embedding.t;
  embedded_clauses : int;  (** length of the embedded clause-queue prefix *)
  edges : (int * int) list;
      (** problem-graph edges realised for the prefix (node ids as in the
          {!Qubo.Encode.t} numbering) *)
}

val embed : Chimera.Graph.t -> Qubo.Encode.t -> t
(** Embed the longest prefix of the encoded clause queue that fits. *)

val capacity_estimate : Chimera.Graph.t -> int
(** Rough upper bound on embeddable 3-clauses (vertical lines bound distinct
    variables; horizontal qubits bound segments).  Used by the clause-queue
    generator as its size threshold. *)
