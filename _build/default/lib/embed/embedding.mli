(** Minor embeddings of problem graphs into Chimera hardware.

    A problem-graph node (SAT variable or auxiliary) maps to a {e chain} of
    physical qubits; a problem edge maps to a physical coupler joining the
    two chains.  Paper Fig. 2(e). *)

type t = {
  graph : Chimera.Graph.t;
  chains : (int, int list) Hashtbl.t;  (** node → qubit chain *)
  edge_couplers : (int * int, int * int) Hashtbl.t;
      (** problem edge (i<j) → physical coupler (qubit of i's chain, qubit
          of j's chain) *)
}

val create : Chimera.Graph.t -> t
val nodes : t -> int list
val chain : t -> int -> int list option
val set_chain : t -> int -> int list -> unit
val set_edge_coupler : t -> int -> int -> int * int -> unit
(** [set_edge_coupler t i j (qi, qj)] registers the physical coupler for
    problem edge [(i, j)]; [qi] must lie in [i]'s chain. *)

val edge_coupler : t -> int -> int -> (int * int) option
(** Order-insensitive lookup, result oriented as (qubit of min node's chain,
    qubit of max node's chain). *)

val qubits_used : t -> int
val chain_lengths : t -> int list
val avg_chain_length : t -> float
val max_chain_length : t -> int

val validate : t -> edges:(int * int) list -> (unit, string) result
(** Full minor-embedding check: every chain non-empty, chains pairwise
    disjoint, each chain connected in the hardware graph, and every problem
    edge realised by an existing hardware coupler between the two chains
    (using the registered coupler when present, otherwise any coupler). *)
