(** Place-and-route baseline embedder (paper [8]).

    Mirrors the classical circuit-mapping flow the paper attributes to Bian
    et al.: every problem node is {e placed} on a seed qubit in grid order
    (problem-graph BFS order for locality), then every problem edge is
    {e routed} as a BFS path through free qubits, the interior being absorbed
    into the source chain.  Heavy qubit consumption per route is what caps
    this scheme at the lowest clause capacity in Fig. 13(b). *)

val embed :
  ?seed:int ->
  ?timeout_s:float ->
  Chimera.Graph.t ->
  nodes:int list ->
  edges:(int * int) list ->
  Embedding.t option
(** A valid embedding, or [None] when placement runs out of cells or some
    edge cannot be routed through the remaining free qubits. *)
