(* BFS order over the problem graph, for placement locality *)
let bfs_order nodes edges =
  let nbrs = Hashtbl.create 64 in
  let add a b =
    Hashtbl.replace nbrs a (b :: Option.value ~default:[] (Hashtbl.find_opt nbrs a))
  in
  List.iter
    (fun (a, b) ->
      add a b;
      add b a)
    edges;
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let visit start =
    let q = Queue.create () in
    if not (Hashtbl.mem seen start) then begin
      Hashtbl.replace seen start ();
      Queue.push start q
    end;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      order := u :: !order;
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Queue.push v q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt nbrs u))
    done
  in
  List.iter visit nodes;
  List.rev !order

let embed ?(seed = 7) ?(timeout_s = 300.) g ~nodes ~edges =
  ignore seed;
  let t0 = Sys.time () in
  let nq = Chimera.Graph.num_qubits g in
  let used = Array.make nq false in
  let chains = Hashtbl.create 64 in
  let owner = Array.make nq (-1) in
  let claim node q =
    used.(q) <- true;
    owner.(q) <- node;
    Hashtbl.replace chains node (q :: Option.value ~default:[] (Hashtbl.find_opt chains node))
  in
  (* placement: each node seeds a vertical+horizontal qubit pair of its own
     cell (the pair is coupled, and the horizontal qubit keeps a corridor
     exit open even when neighbouring cells fill up); cells are taken at
     stride 2 while the node count allows, to spread congestion *)
  let order = bfs_order nodes edges in
  let n_cells = nq / 8 in
  let stride = if List.length order * 2 <= n_cells then 2 else 1 in
  let placement_ok =
    let next = ref 0 in
    let rec place = function
      | [] -> true
      | node :: rest ->
          let cell = !next * stride in
          if cell >= n_cells then false
          else begin
            claim node (cell * 8);
            (* first horizontal qubit of the same cell *)
            claim node ((cell * 8) + 4);
            incr next;
            place rest
          end
    in
    place order
  in
  if not placement_ok then None
  else begin
    let failed = ref false in
    List.iter
      (fun (i, j) ->
        if (not !failed) && Sys.time () -. t0 <= timeout_s then begin
          let ci = Hashtbl.find chains i in
          let cj = Hashtbl.find chains j in
          let already =
            List.exists
              (fun qi -> List.exists (fun qj -> Chimera.Graph.adjacent g qi qj) cj)
              ci
          in
          if not already then
            match
              Route.bfs_path g
                ~passable:(fun q -> not used.(q))
                ~sources:ci
                ~targets:(fun q -> used.(q) && owner.(q) = j)
            with
            | None -> failed := true
            | Some path ->
                (* interior of the path joins i's chain; endpoints already
                   belong to the two chains *)
                let interior =
                  List.filter (fun q -> not used.(q)) path
                in
                List.iter (claim i) interior
        end
        else if Sys.time () -. t0 > timeout_s then failed := true)
      edges;
    if !failed then None
    else begin
      let emb = Embedding.create g in
      Hashtbl.iter (fun node c -> Embedding.set_chain emb node c) chains;
      List.iter
        (fun (i, j) ->
          let ci = Hashtbl.find chains i and cj = Hashtbl.find chains j in
          let found = ref false in
          List.iter
            (fun qi ->
              List.iter
                (fun qj ->
                  if (not !found) && Chimera.Graph.adjacent g qi qj then begin
                    found := true;
                    Embedding.set_edge_coupler emb i j (qi, qj)
                  end)
                cj)
            ci)
        edges;
      Some emb
    end
  end
