(** Shortest-path routing over the Chimera qubit graph, shared by the
    Minorminer-like and place-and-route baseline embedders. *)

val dijkstra :
  Chimera.Graph.t -> cost:(int -> float) -> sources:int list -> float array * int array
(** [dijkstra g ~cost ~sources] returns [(dist, parent)] over all qubits,
    where entering qubit [q] costs [cost q] (must be ≥ 0; sources enter free).
    [parent.(q) = -1] for sources and unreachable qubits. *)

val walk_back : parent:int array -> int -> int list
(** Path from a target back to its source (inclusive), using the parent
    array. *)

val bfs_path :
  Chimera.Graph.t -> passable:(int -> bool) -> sources:int list -> targets:(int -> bool) ->
  int list option
(** Unweighted BFS from [sources] through [passable] qubits to the first
    qubit satisfying [targets]; the returned path starts at a source and ends
    at the target.  Targets need not be passable. *)
