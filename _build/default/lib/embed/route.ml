module Pq = struct
  (* tiny binary min-heap of (priority, value) *)
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0., 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio v =
    if h.size = Array.length h.data then begin
      let data = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- (prio, v);
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!best) then best := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          swap h !i !best;
          i := !best
        end
      done;
      Some top
    end
end

let dijkstra g ~cost ~sources =
  let n = Chimera.Graph.num_qubits g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let pq = Pq.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0.;
      Pq.push pq 0. s)
    sources;
  let rec drain () =
    match Pq.pop pq with
    | None -> ()
    | Some (d, q) ->
        if d <= dist.(q) then
          List.iter
            (fun nb ->
              let d' = d +. cost nb in
              if d' < dist.(nb) then begin
                dist.(nb) <- d';
                parent.(nb) <- q;
                Pq.push pq d' nb
              end)
            (Chimera.Graph.neighbors g q);
        drain ()
  in
  drain ();
  (dist, parent)

let walk_back ~parent target =
  let rec go q acc = if q = -1 then acc else go parent.(q) (q :: acc) in
  List.rev (go target [])

let bfs_path g ~passable ~sources ~targets =
  let n = Chimera.Graph.num_qubits g in
  let parent = Array.make n (-2) in
  (* -2 unvisited, -1 source *)
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if parent.(s) = -2 then begin
        parent.(s) <- -1;
        Queue.push s queue
      end)
    sources;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    List.iter
      (fun nb ->
        if !found = None && parent.(nb) = -2 then
          if targets nb then begin
            parent.(nb) <- q;
            found := Some nb
          end
          else if passable nb then begin
            parent.(nb) <- q;
            Queue.push nb queue
          end)
      (Chimera.Graph.neighbors g q)
  done;
  Option.map
    (fun target ->
      let rec collect q acc = if parent.(q) = -1 then q :: acc else collect parent.(q) (q :: acc) in
      collect target [])
    !found
